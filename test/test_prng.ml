open Churnet_util

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_different_seeds () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let equal = ref true in
  for _ = 1 to 10 do
    if Prng.bits64 a <> Prng.bits64 b then equal := false
  done;
  check_bool "different seeds differ" false !equal

let test_copy_preserves_stream () =
  let a = Prng.create 7 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int64) "copy equals original" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_split_independence () =
  let a = Prng.create 7 in
  let b = Prng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  check_bool "split streams differ" true (!same < 2)

let test_int_range () =
  let rng = Prng.create 3 in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_int_bound_one () =
  let rng = Prng.create 3 in
  for _ = 1 to 100 do
    check_int "bound 1 gives 0" 0 (Prng.int rng 1)
  done

let test_int_invalid () =
  let rng = Prng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_int_in_range () =
  let rng = Prng.create 5 in
  for _ = 1 to 1000 do
    let v = Prng.int_in rng (-3) 9 in
    check_bool "in inclusive range" true (v >= -3 && v <= 9)
  done

let test_unit_float_range () =
  let rng = Prng.create 11 in
  for _ = 1 to 10_000 do
    let x = Prng.unit_float rng in
    check_bool "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_uniform_mean () =
  let rng = Prng.create 13 in
  let acc = Stats.Acc.create () in
  for _ = 1 to 50_000 do
    Stats.Acc.add acc (Prng.unit_float rng)
  done;
  check_bool "mean near 0.5" true (Float.abs (Stats.Acc.mean acc -. 0.5) < 0.01)

let test_int_uniformity_chi_square () =
  let rng = Prng.create 17 in
  let k = 10 in
  let counts = Array.make k 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    let v = Prng.int rng k in
    counts.(v) <- counts.(v) + 1
  done;
  let chi = Stats.chi_square_uniform counts in
  (* 9 degrees of freedom: p=0.001 critical value is 27.9. *)
  check_bool "chi-square sane" true (chi < 27.9)

let test_bool_balance () =
  let rng = Prng.create 19 in
  let heads = ref 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    if Prng.bool rng then incr heads
  done;
  let frac = float_of_int !heads /. float_of_int trials in
  check_bool "fair coin" true (Float.abs (frac -. 0.5) < 0.01)

let test_bernoulli_extremes () =
  let rng = Prng.create 23 in
  for _ = 1 to 100 do
    check_bool "p=0 never" false (Prng.bernoulli rng 0.);
    check_bool "p=1 always" true (Prng.bernoulli rng 1.0)
  done

let test_bernoulli_rate () =
  let rng = Prng.create 29 in
  let hits = ref 0 in
  for _ = 1 to 50_000 do
    if Prng.bernoulli rng 0.3 then incr hits
  done;
  let frac = float_of_int !hits /. 50_000. in
  check_bool "rate near 0.3" true (Float.abs (frac -. 0.3) < 0.01)

let test_shuffle_is_permutation () =
  let rng = Prng.create 31 in
  let a = Array.init 100 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted

let test_shuffle_moves_elements () =
  let rng = Prng.create 37 in
  let a = Array.init 100 Fun.id in
  Prng.shuffle rng a;
  check_bool "not identity" true (a <> Array.init 100 Fun.id)

let test_swr_distinct () =
  let rng = Prng.create 41 in
  for _ = 1 to 50 do
    let sample = Prng.sample_without_replacement rng 20 100 in
    check_int "k elements" 20 (Array.length sample);
    let sorted = Array.copy sample in
    Array.sort Int.compare sorted;
    for i = 1 to 19 do
      check_bool "distinct" true (sorted.(i) <> sorted.(i - 1))
    done;
    Array.iter (fun v -> check_bool "in range" true (v >= 0 && v < 100)) sample
  done

let test_swr_full () =
  let rng = Prng.create 43 in
  let sample = Prng.sample_without_replacement rng 10 10 in
  let sorted = Array.copy sample in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "all of 0..9" (Array.init 10 Fun.id) sorted

let test_swr_dense_and_sparse_paths () =
  let rng = Prng.create 47 in
  (* dense path: k*3 >= n *)
  let dense = Prng.sample_without_replacement rng 40 100 in
  check_int "dense size" 40 (Array.length dense);
  (* sparse path: k*3 < n *)
  let sparse = Prng.sample_without_replacement rng 5 1000 in
  check_int "sparse size" 5 (Array.length sparse)

let test_choose () =
  let rng = Prng.create 53 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = Prng.choose rng a in
    check_bool "member" true (Array.mem v a)
  done

let qcheck_props =
  [
    QCheck.Test.make ~name:"int always in bound" ~count:500
      QCheck.(pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let rng = Prng.create seed in
        let v = Prng.int rng bound in
        v >= 0 && v < bound);
    QCheck.Test.make ~name:"int_in always inclusive" ~count:500
      QCheck.(triple small_int (int_range (-100) 100) (int_range 0 200))
      (fun (seed, lo, span) ->
        let rng = Prng.create seed in
        let v = Prng.int_in rng lo (lo + span) in
        v >= lo && v <= lo + span);
    QCheck.Test.make ~name:"sample_without_replacement distinct" ~count:200
      QCheck.(pair small_int (int_range 1 50))
      (fun (seed, n) ->
        let rng = Prng.create seed in
        let k = 1 + (seed mod n) in
        let s = Prng.sample_without_replacement rng k n in
        let sorted = Array.copy s in
        Array.sort Int.compare sorted;
        let distinct = ref true in
        for i = 1 to k - 1 do
          if sorted.(i) = sorted.(i - 1) then distinct := false
        done;
        !distinct && Array.length s = k);
  ]

let suite =
  [
    ("determinism", `Quick, test_determinism);
    ("different seeds", `Quick, test_different_seeds);
    ("copy preserves stream", `Quick, test_copy_preserves_stream);
    ("split independence", `Quick, test_split_independence);
    ("int range", `Quick, test_int_range);
    ("int bound one", `Quick, test_int_bound_one);
    ("int invalid bound", `Quick, test_int_invalid);
    ("int_in range", `Quick, test_int_in_range);
    ("unit_float range", `Quick, test_unit_float_range);
    ("uniform mean", `Quick, test_uniform_mean);
    ("chi-square uniformity", `Quick, test_int_uniformity_chi_square);
    ("bool balance", `Quick, test_bool_balance);
    ("bernoulli extremes", `Quick, test_bernoulli_extremes);
    ("bernoulli rate", `Quick, test_bernoulli_rate);
    ("shuffle permutation", `Quick, test_shuffle_is_permutation);
    ("shuffle moves", `Quick, test_shuffle_moves_elements);
    ("sample w/o replacement distinct", `Quick, test_swr_distinct);
    ("sample w/o replacement full", `Quick, test_swr_full);
    ("sample paths", `Quick, test_swr_dense_and_sparse_paths);
    ("choose membership", `Quick, test_choose);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~verbose:false) qcheck_props
