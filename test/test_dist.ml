open Churnet_util

let check_bool = Alcotest.(check bool)
let close ?(eps = 1e-9) msg a b = check_bool msg true (Float.abs (a -. b) < eps)

let sample_stats f count =
  let acc = Stats.Acc.create () in
  for _ = 1 to count do
    Stats.Acc.add acc (f ())
  done;
  acc

let test_exponential_mean () =
  let rng = Prng.create 101 in
  let acc = sample_stats (fun () -> Dist.exponential rng 2.0) 100_000 in
  check_bool "mean near 1/2" true (Float.abs (Stats.Acc.mean acc -. 0.5) < 0.01)

let test_exponential_positive () =
  let rng = Prng.create 103 in
  for _ = 1 to 10_000 do
    check_bool "positive" true (Dist.exponential rng 0.3 >= 0.)
  done

let test_exponential_memoryless_tail () =
  (* P(X > 1) should be e^{-lambda}. *)
  let rng = Prng.create 107 in
  let lambda = 1.5 in
  let hits = ref 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    if Dist.exponential rng lambda > 1.0 then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int trials in
  check_bool "tail matches" true (Float.abs (frac -. exp (-.lambda)) < 0.01)

let test_exponential_invalid () =
  let rng = Prng.create 109 in
  Alcotest.check_raises "lambda <= 0" (Invalid_argument "Dist.exponential: lambda <= 0")
    (fun () -> ignore (Dist.exponential rng 0.))

let test_poisson_mean_small () =
  let rng = Prng.create 113 in
  let acc = sample_stats (fun () -> float_of_int (Dist.poisson rng 3.5)) 100_000 in
  check_bool "mean near 3.5" true (Float.abs (Stats.Acc.mean acc -. 3.5) < 0.05)

let test_poisson_variance_small () =
  let rng = Prng.create 127 in
  let acc = sample_stats (fun () -> float_of_int (Dist.poisson rng 4.0)) 100_000 in
  check_bool "variance near mean" true (Float.abs (Stats.Acc.variance acc -. 4.0) < 0.15)

let test_poisson_mean_large () =
  let rng = Prng.create 131 in
  let acc = sample_stats (fun () -> float_of_int (Dist.poisson rng 120.)) 20_000 in
  check_bool "large mean near 120" true (Float.abs (Stats.Acc.mean acc -. 120.) < 1.0)

let test_poisson_mean_huge () =
  (* Regression: single-stage Knuth underflows exp(-mean) for mean ≳ 1400
     and silently capped every sample near 745.  With chunked ≤30 stages
     the sample mean and variance must both sit within 5 sigma of 2000. *)
  let rng = Prng.create 211 in
  let samples = 20_000 in
  let mean = 2000. in
  let acc = sample_stats (fun () -> float_of_int (Dist.poisson rng mean)) samples in
  let n = float_of_int samples in
  (* sd of the sample mean: sqrt(mean / n) *)
  let se_mean = sqrt (mean /. n) in
  check_bool "huge mean within 5 sigma" true
    (Float.abs (Stats.Acc.mean acc -. mean) < 5. *. se_mean);
  (* Var(S^2) for Poisson ≈ (mu + 2 mu^2) / n *)
  let se_var = sqrt ((mean +. (2. *. mean *. mean)) /. n) in
  check_bool "huge mean variance within 5 sigma" true
    (Float.abs (Stats.Acc.variance acc -. mean) < 5. *. se_var)

let test_poisson_zero_mean () =
  let rng = Prng.create 137 in
  for _ = 1 to 100 do
    Alcotest.(check int) "Poisson(0) = 0" 0 (Dist.poisson rng 0.)
  done

let test_poisson_pmf_sums_to_one () =
  let total = ref 0. in
  for k = 0 to 60 do
    total := !total +. Dist.poisson_pmf 5.0 k
  done;
  close ~eps:1e-9 "pmf sums to 1" 1.0 !total

let test_poisson_pmf_known_value () =
  (* P(X=0 | mean=2) = e^-2 *)
  close ~eps:1e-12 "pmf(2,0)" (exp (-2.)) (Dist.poisson_pmf 2.0 0)

let test_geometric_mean () =
  let rng = Prng.create 139 in
  let p = 0.25 in
  let acc = sample_stats (fun () -> float_of_int (Dist.geometric rng p)) 100_000 in
  (* failures-before-success mean = (1-p)/p = 3 *)
  check_bool "mean near 3" true (Float.abs (Stats.Acc.mean acc -. 3.0) < 0.05)

let test_geometric_p_one () =
  let rng = Prng.create 149 in
  for _ = 1 to 100 do
    Alcotest.(check int) "p=1 gives 0" 0 (Dist.geometric rng 1.0)
  done

let test_binomial_mean () =
  let rng = Prng.create 151 in
  let acc = sample_stats (fun () -> float_of_int (Dist.binomial rng 100 0.3)) 50_000 in
  check_bool "mean near 30" true (Float.abs (Stats.Acc.mean acc -. 30.) < 0.2)

let test_binomial_extremes () =
  let rng = Prng.create 157 in
  Alcotest.(check int) "p=0" 0 (Dist.binomial rng 50 0.);
  Alcotest.(check int) "p=1" 50 (Dist.binomial rng 50 1.)

let test_binomial_bounds () =
  let rng = Prng.create 163 in
  for _ = 1 to 5000 do
    let v = Dist.binomial rng 20 0.5 in
    check_bool "in [0,20]" true (v >= 0 && v <= 20)
  done

let test_binomial_small_np_path () =
  let rng = Prng.create 167 in
  (* n*p < 32 triggers the waiting-time method *)
  let acc = sample_stats (fun () -> float_of_int (Dist.binomial rng 1000 0.01)) 50_000 in
  check_bool "waiting-time mean near 10" true (Float.abs (Stats.Acc.mean acc -. 10.) < 0.15)

let test_std_normal_moments () =
  let rng = Prng.create 173 in
  let acc = sample_stats (fun () -> Dist.std_normal rng) 100_000 in
  check_bool "mean near 0" true (Float.abs (Stats.Acc.mean acc) < 0.02);
  check_bool "variance near 1" true (Float.abs (Stats.Acc.variance acc -. 1.) < 0.03)

let test_log_factorial_small () =
  close ~eps:1e-12 "0!" 0. (Dist.log_factorial 0);
  close ~eps:1e-12 "1!" 0. (Dist.log_factorial 1);
  close ~eps:1e-9 "5!" (log 120.) (Dist.log_factorial 5);
  close ~eps:1e-6 "20!" (log 2.43290200817664e18) (Dist.log_factorial 20)

let test_log_factorial_stirling_consistency () =
  (* The table path at 255 and the Stirling path at 256 must agree through
     the recurrence ln(256!) = ln(255!) + ln 256. *)
  let lhs = Dist.log_factorial 256 in
  let rhs = Dist.log_factorial 255 +. log 256. in
  close ~eps:1e-6 "table/Stirling junction" lhs rhs

let test_exponential_pdf () =
  close ~eps:1e-12 "pdf at 0" 2.0 (Dist.exponential_pdf 2.0 0.);
  close ~eps:1e-12 "pdf negative x" 0. (Dist.exponential_pdf 2.0 (-1.));
  close ~eps:1e-12 "pdf at 1" (2.0 *. exp (-2.)) (Dist.exponential_pdf 2.0 1.)

let suite =
  [
    ("exponential mean", `Quick, test_exponential_mean);
    ("exponential positive", `Quick, test_exponential_positive);
    ("exponential tail", `Quick, test_exponential_memoryless_tail);
    ("exponential invalid", `Quick, test_exponential_invalid);
    ("poisson mean (small)", `Quick, test_poisson_mean_small);
    ("poisson variance", `Quick, test_poisson_variance_small);
    ("poisson mean (large)", `Quick, test_poisson_mean_large);
    ("poisson mean (huge, underflow regression)", `Quick, test_poisson_mean_huge);
    ("poisson zero mean", `Quick, test_poisson_zero_mean);
    ("poisson pmf sums", `Quick, test_poisson_pmf_sums_to_one);
    ("poisson pmf known", `Quick, test_poisson_pmf_known_value);
    ("geometric mean", `Quick, test_geometric_mean);
    ("geometric p=1", `Quick, test_geometric_p_one);
    ("binomial mean", `Quick, test_binomial_mean);
    ("binomial extremes", `Quick, test_binomial_extremes);
    ("binomial bounds", `Quick, test_binomial_bounds);
    ("binomial small np", `Quick, test_binomial_small_np_path);
    ("std normal moments", `Quick, test_std_normal_moments);
    ("log factorial small", `Quick, test_log_factorial_small);
    ("log factorial junction", `Quick, test_log_factorial_stirling_consistency);
    ("exponential pdf", `Quick, test_exponential_pdf);
  ]
