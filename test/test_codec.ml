(* Tests for the checkpoint codec: primitive round-trips, frame
   integrity (schema, length, CRC), and a state round-trip for every
   serialized module — PRNG, Intvec, Bitset, the graph arena (including
   a populated free list and a slid id window), the Poisson churn clock,
   both models, and the in-flight Flood and Onion states.

   The strongest check used throughout is re-encode byte equality:
   [decode] then [encode] must reproduce the exact bytes, so nothing is
   lost or renormalized in either direction. *)

open Churnet_util
module Dyngraph = Churnet_graph.Dyngraph
module Streaming_model = Churnet_core.Streaming_model
module Poisson_model = Churnet_core.Poisson_model
module Models = Churnet_core.Models
module Flood = Churnet_core.Flood
module Onion = Churnet_core.Onion
module Poisson_churn = Churnet_churn.Poisson_churn

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let encode_bytes enc v =
  let w = Codec.writer () in
  enc w v;
  Codec.contents w

let roundtrip enc dec v =
  let r = Codec.reader (encode_bytes enc v) in
  let v' = dec r in
  Codec.expect_end r;
  v'

(* --- primitives --- *)

let test_varint_roundtrip () =
  List.iter
    (fun v -> check_int (string_of_int v) v (roundtrip Codec.varint Codec.read_varint v))
    [ 0; 1; -1; 63; 64; -64; -65; 127; 128; 12345; -98765; max_int; min_int ]

let test_i64_f64_bool () =
  check_bool "i64" true
    (Int64.equal 0x1234_5678_9abc_def0L
       (roundtrip Codec.i64 Codec.read_i64 0x1234_5678_9abc_def0L));
  check_bool "i64 negative" true
    (Int64.equal Int64.min_int (roundtrip Codec.i64 Codec.read_i64 Int64.min_int));
  check_bool "f64 pi" true (roundtrip Codec.f64 Codec.read_f64 Float.pi = Float.pi);
  check_bool "f64 neg zero keeps sign" true
    (1. /. roundtrip Codec.f64 Codec.read_f64 (-0.) = Float.neg_infinity);
  check_bool "f64 nan stays nan" true
    (Float.is_nan (roundtrip Codec.f64 Codec.read_f64 Float.nan));
  check_bool "bool true" true (roundtrip Codec.bool Codec.read_bool true);
  check_bool "bool false" false (roundtrip Codec.bool Codec.read_bool false)

let test_string_option_containers () =
  check_string "string" "hello \x00 world"
    (roundtrip Codec.string Codec.read_string "hello \x00 world");
  check_string "empty string" "" (roundtrip Codec.string Codec.read_string "");
  check_bool "option none" true
    (roundtrip (Codec.option Codec.varint) (Codec.read_option Codec.read_varint) None
    = None);
  check_bool "option some" true
    (roundtrip (Codec.option Codec.varint) (Codec.read_option Codec.read_varint)
       (Some (-7))
    = Some (-7));
  check_bool "int_array" true
    (roundtrip Codec.int_array Codec.read_int_array [| 3; -1; 4; 1; 5; max_int |]
    = [| 3; -1; 4; 1; 5; max_int |]);
  check_bool "int_array empty" true
    (roundtrip Codec.int_array Codec.read_int_array [||] = [||]);
  check_bool "int_list order" true
    (roundtrip Codec.int_list Codec.read_int_list [ 9; 8; 7; -6 ] = [ 9; 8; 7; -6 ]);
  check_bool "nested array of arrays" true
    (roundtrip (Codec.array Codec.int_array)
       (Codec.read_array Codec.read_int_array)
       [| [| 1 |]; [||]; [| 2; 3 |] |]
    = [| [| 1 |]; [||]; [| 2; 3 |] |])

let test_crc32_check_value () =
  (* The standard CRC-32 check value over "123456789". *)
  check_int "crc32" 0xCBF43926 (Codec.crc32 "123456789")

(* --- framing --- *)

let frame_payload () = Codec.frame ~schema:Codec.schema (fun w -> Codec.varint w 4242)

let test_frame_roundtrip () =
  let data = frame_payload () in
  let r = Codec.unframe ~schema:Codec.schema data in
  check_int "payload" 4242 (Codec.read_varint r);
  Codec.expect_end r

let expect_codec_error name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Codec.Error" name
  | exception Codec.Error _ -> ()

let test_frame_rejects_corruption () =
  let data = frame_payload () in
  (* Flip one payload byte: CRC must catch it. *)
  let corrupt = Bytes.of_string data in
  let last = Bytes.length corrupt - 5 in
  Bytes.set corrupt last (Char.chr (Char.code (Bytes.get corrupt last) lxor 0xff));
  expect_codec_error "bit flip" (fun () ->
      Codec.unframe ~schema:Codec.schema (Bytes.to_string corrupt));
  (* Truncation. *)
  expect_codec_error "truncated" (fun () ->
      Codec.unframe ~schema:Codec.schema (String.sub data 0 (String.length data - 3)));
  (* Wrong schema line. *)
  expect_codec_error "wrong schema" (fun () ->
      Codec.unframe ~schema:"churnet-ckpt/999" data);
  (* Trailing garbage after the CRC. *)
  expect_codec_error "trailing bytes" (fun () ->
      Codec.unframe ~schema:Codec.schema (data ^ "x"))

(* --- Prng --- *)

let test_prng_roundtrip () =
  let rng = Prng.create 99 in
  for _ = 1 to 17 do
    ignore (Prng.int rng 1000)
  done;
  let rng' = roundtrip Prng.encode Prng.decode rng in
  for i = 1 to 50 do
    check_int (Printf.sprintf "draw %d" i) (Prng.int rng 1_000_000)
      (Prng.int rng' 1_000_000)
  done

(* --- Intvec / Bitset --- *)

let test_intvec_roundtrip () =
  let v = Intvec.create ~capacity:4 () in
  for i = 0 to 99 do
    Intvec.push v (i * 3)
  done;
  let v' = roundtrip Intvec.encode Intvec.decode v in
  check_int "length" (Intvec.length v) (Intvec.length v');
  for i = 0 to Intvec.length v - 1 do
    check_int "elt" (Intvec.get v i) (Intvec.get v' i)
  done;
  let empty = Intvec.create () in
  check_int "empty" 0 (Intvec.length (roundtrip Intvec.encode Intvec.decode empty));
  (* A decoded empty vector must still accept pushes. *)
  let e' = roundtrip Intvec.encode Intvec.decode empty in
  Intvec.push e' 7;
  check_int "push after decode" 7 (Intvec.get e' 0)

let test_bitset_roundtrip () =
  let b = Bitset.create 77 in
  List.iter (fun i -> Bitset.add b i) [ 0; 1; 13; 31; 32; 33; 76 ];
  let b' = roundtrip Bitset.encode Bitset.decode b in
  check_int "capacity" (Bitset.capacity b) (Bitset.capacity b');
  check_int "cardinal" (Bitset.cardinal b) (Bitset.cardinal b');
  for i = 0 to 76 do
    check_bool (Printf.sprintf "mem %d" i) (Bitset.mem b i) (Bitset.mem b' i)
  done

let test_bitset_rejects_bad_words () =
  (* capacity says 9 bits (2 bytes) but the words string has 1 byte. *)
  let w = Codec.writer () in
  Codec.varint w 9;
  Codec.varint w 0;
  Codec.string w "\x00";
  expect_codec_error "short words" (fun () ->
      Bitset.decode (Codec.reader (Codec.contents w)))

let test_bitset_rejects_cardinal_mismatch () =
  (* Structurally valid payloads whose recorded cardinal disagrees with
     the popcount of the words — a flipped count or a flipped bit in a
     checkpoint must not produce a bitset that silently miscounts. *)
  let payload ~cardinal ~words ~capacity =
    let w = Codec.writer () in
    Codec.varint w capacity;
    Codec.varint w cardinal;
    Codec.string w words;
    Codec.contents w
  in
  (* 3 bits set, cardinal claims 2 *)
  expect_codec_error "cardinal too small" (fun () ->
      Bitset.decode (Codec.reader (payload ~capacity:16 ~cardinal:2 ~words:"\x07\x00")));
  (* 1 bit set, cardinal claims 4 *)
  expect_codec_error "cardinal too large" (fun () ->
      Bitset.decode (Codec.reader (payload ~capacity:16 ~cardinal:4 ~words:"\x10\x00")));
  (* the agreeing payload decodes fine, so the two above failed on the
     count check and not on something structural *)
  let b = Bitset.decode (Codec.reader (payload ~capacity:16 ~cardinal:3 ~words:"\x07\x00")) in
  check_int "control payload decodes" 3 (Bitset.cardinal b)

(* --- Dyngraph --- *)

let graph_bytes g = encode_bytes Dyngraph.encode g

(* Drive a graph through scripted churn with its own PRNG state; kills
   leave recycled slots on the free list. *)
let scripted_graph ~seed ~births ~p_kill =
  let g = Dyngraph.create ~rng:(Prng.create seed) ~d:4 ~regenerate:true () in
  let script = Prng.create (seed + 1) in
  for i = 1 to births do
    if Dyngraph.alive_count g > 5 && Prng.bernoulli script p_kill then
      Dyngraph.kill g (Dyngraph.random_alive g)
    else ignore (Dyngraph.add_node g ~birth:i)
  done;
  (g, script)

let test_dyngraph_roundtrip_free_list () =
  let g, script = scripted_graph ~seed:11 ~births:400 ~p_kill:0.45 in
  let bytes = graph_bytes g in
  let g' = Dyngraph.decode (Codec.reader bytes) in
  check_string "re-encode is byte-identical" (String.escaped bytes)
    (String.escaped (graph_bytes g'));
  (* The decoded arena must evolve identically: same churn script, same
     internal PRNG state, so the same draws and the same recycled slots. *)
  let script' = roundtrip Prng.encode Prng.decode script in
  for i = 1 to 200 do
    if Dyngraph.alive_count g > 5 && Prng.bernoulli script 0.45 then
      Dyngraph.kill g (Dyngraph.random_alive g)
    else ignore (Dyngraph.add_node g ~birth:(1000 + i));
    if Dyngraph.alive_count g' > 5 && Prng.bernoulli script' 0.45 then
      Dyngraph.kill g' (Dyngraph.random_alive g')
    else ignore (Dyngraph.add_node g' ~birth:(1000 + i))
  done;
  check_string "still identical after 200 more churn events"
    (String.escaped (graph_bytes g))
    (String.escaped (graph_bytes g'))

let test_dyngraph_roundtrip_slid_window () =
  (* More than 1024 births forces the id->slot window to slide past its
     initial base. *)
  let g, _ = scripted_graph ~seed:12 ~births:3000 ~p_kill:0.48 in
  let bytes = graph_bytes g in
  let g' = Dyngraph.decode (Codec.reader bytes) in
  check_string "slid window re-encodes byte-identical" (String.escaped bytes)
    (String.escaped (graph_bytes g'));
  check_int "alive counts agree" (Dyngraph.alive_count g) (Dyngraph.alive_count g')

let test_dyngraph_decode_rejects_corruption () =
  let g, _ = scripted_graph ~seed:13 ~births:50 ~p_kill:0.3 in
  let bytes = graph_bytes g in
  (* Truncated payload must not decode. *)
  expect_codec_error "truncated graph" (fun () ->
      let r = Codec.reader (String.sub bytes 0 (String.length bytes / 2)) in
      Dyngraph.decode r)

(* --- churn + models --- *)

let test_poisson_churn_roundtrip () =
  let c = Poisson_churn.create ~rng:(Prng.create 21) ~n:500 () in
  for _ = 1 to 300 do
    ignore (Poisson_churn.decide c ~alive:480)
  done;
  let c' = roundtrip Poisson_churn.encode Poisson_churn.decode c in
  check_int "round" (Poisson_churn.round c) (Poisson_churn.round c');
  for i = 1 to 100 do
    let d1, dt1 = Poisson_churn.decide c ~alive:470 in
    let d2, dt2 = Poisson_churn.decide c' ~alive:470 in
    check_bool (Printf.sprintf "decision %d" i) true (d1 = d2 && dt1 = dt2)
  done

let model_bytes m = encode_bytes Models.encode m

let test_streaming_model_roundtrip () =
  let m = Streaming_model.create ~rng:(Prng.create 31) ~n:120 ~d:6 ~regenerate:true () in
  Streaming_model.warm_up m;
  Streaming_model.run m 37;
  let bytes = encode_bytes Streaming_model.encode m in
  let m' = Streaming_model.decode (Codec.reader bytes) in
  check_string "re-encode byte-identical" (String.escaped bytes)
    (String.escaped (encode_bytes Streaming_model.encode m'));
  Streaming_model.run m 100;
  Streaming_model.run m' 100;
  check_string "identical after 100 more rounds"
    (String.escaped (encode_bytes Streaming_model.encode m))
    (String.escaped (encode_bytes Streaming_model.encode m'))

let test_poisson_model_roundtrip () =
  let m = Poisson_model.create ~rng:(Prng.create 32) ~n:120 ~d:6 ~regenerate:true () in
  Poisson_model.warm_up m;
  (* Materialize the lazily pre-drawn jump so the pending field is Some. *)
  ignore (Poisson_model.next_jump_time m);
  let bytes = encode_bytes Poisson_model.encode m in
  let m' = Poisson_model.decode (Codec.reader bytes) in
  check_string "re-encode byte-identical" (String.escaped bytes)
    (String.escaped (encode_bytes Poisson_model.encode m'));
  Poisson_model.run_rounds m 400;
  Poisson_model.run_rounds m' 400;
  check_string "identical after 400 more jumps"
    (String.escaped (encode_bytes Poisson_model.encode m))
    (String.escaped (encode_bytes Poisson_model.encode m'))

let test_models_dispatch () =
  let s = Models.create ~rng:(Prng.create 33) Models.SDGR ~n:80 ~d:4 in
  Models.warm_up s;
  let s' = roundtrip Models.encode Models.decode s in
  check_string "kind preserved" (Models.kind_name (Models.kind s))
    (Models.kind_name (Models.kind s'));
  check_string "payload identical" (String.escaped (model_bytes s))
    (String.escaped (model_bytes s'));
  expect_codec_error "bad model tag" (fun () ->
      let w = Codec.writer () in
      Codec.u8 w 9;
      Models.decode (Codec.reader (Codec.contents w)))

(* --- in-flight Flood state --- *)

let flood_state_bytes st = encode_bytes Flood.encode_state st

let sync_harness seed =
  let m = Streaming_model.create ~rng:(Prng.create seed) ~n:150 ~d:6 ~regenerate:true () in
  Streaming_model.warm_up m;
  ( (fun () -> Streaming_model.step m),
    (fun () -> Streaming_model.newest m),
    Streaming_model.graph m )

let test_flood_sync_inflight_roundtrip () =
  let step_a, newest_a, graph_a = sync_harness 41 in
  let step_b, newest_b, graph_b = sync_harness 41 in
  let st_a = Flood.sync_start ~max_rounds:600 ~graph:graph_a ~step:step_a ~newest:newest_a in
  let st_b = Flood.sync_start ~max_rounds:600 ~graph:graph_b ~step:step_b ~newest:newest_b in
  for _ = 1 to 3 do
    if not (Flood.state_finished st_a) then begin
      Flood.sync_round ~graph:graph_a ~step:step_a ~newest:newest_a st_a;
      Flood.sync_round ~graph:graph_b ~step:step_b ~newest:newest_b st_b
    end
  done;
  let bytes = flood_state_bytes st_a in
  let st' = Flood.decode_state (Codec.reader bytes) in
  check_string "re-encode byte-identical" (String.escaped bytes)
    (String.escaped (flood_state_bytes st'));
  check_int "round preserved" (Flood.state_round st_a) (Flood.state_round st');
  (* Continue the original on model A and the decoded state on the
     identical twin model B: the final traces must agree. *)
  while not (Flood.state_finished st_a) do
    Flood.sync_round ~graph:graph_a ~step:step_a ~newest:newest_a st_a
  done;
  while not (Flood.state_finished st') do
    Flood.sync_round ~graph:graph_b ~step:step_b ~newest:newest_b st'
  done;
  let tr = Flood.finish_state st_a and tr' = Flood.finish_state st' in
  check_bool "identical traces" true (tr = tr')

let test_flood_poisson_inflight_roundtrip () =
  let make () =
    let m = Poisson_model.create ~rng:(Prng.create 42) ~n:150 ~d:6 ~regenerate:true () in
    Poisson_model.warm_up m;
    m
  in
  let m_a = make () and m_b = make () in
  let st_a = Flood.poisson_start ~max_rounds:100 m_a in
  let st_b = Flood.poisson_start ~max_rounds:100 m_b in
  for _ = 1 to 2 do
    if not (Flood.state_finished st_a) then begin
      Flood.poisson_round m_a st_a;
      Flood.poisson_round m_b st_b
    end
  done;
  let bytes = flood_state_bytes st_a in
  let st' = Flood.decode_state (Codec.reader bytes) in
  check_string "re-encode byte-identical" (String.escaped bytes)
    (String.escaped (flood_state_bytes st'));
  while not (Flood.state_finished st_a) do
    Flood.poisson_round m_a st_a
  done;
  while not (Flood.state_finished st') do
    Flood.poisson_round m_b st'
  done;
  check_bool "identical traces" true (Flood.finish_state st_a = Flood.finish_state st')

let test_flood_state_rejects_inconsistency () =
  let step, newest, graph = sync_harness 43 in
  let st = Flood.sync_start ~max_rounds:600 ~graph ~step ~newest in
  Flood.sync_round ~graph ~step ~newest st;
  let bytes = flood_state_bytes st in
  expect_codec_error "truncated flood state" (fun () ->
      Flood.decode_state (Codec.reader (String.sub bytes 0 (String.length bytes - 2))))

(* --- in-flight Onion state --- *)

let onion_state_bytes st = encode_bytes Onion.encode_state st

let test_onion_inflight_roundtrip () =
  let st = Onion.start ~rng:(Prng.create 51) ~n:400 ~d:6 () in
  for _ = 1 to 2 do
    if not (Onion.state_finished st) then Onion.phase_step st
  done;
  let bytes = onion_state_bytes st in
  let st' = Onion.decode_state (Codec.reader bytes) in
  check_string "re-encode byte-identical" (String.escaped bytes)
    (String.escaped (onion_state_bytes st'));
  check_int "phase preserved" (Onion.state_phase st) (Onion.state_phase st');
  (* The phase loop is deterministic (all randomness was consumed at
     start), so both copies must finish identically. *)
  while not (Onion.state_finished st) do
    Onion.phase_step st
  done;
  while not (Onion.state_finished st') do
    Onion.phase_step st'
  done;
  check_bool "identical results" true (Onion.finish_state st = Onion.finish_state st')

(* --- write_file durability hygiene --- *)

let fresh_dir =
  let seq = ref 0 in
  fun () ->
    incr seq;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "churnet-codec-%d-%d" (Unix.getpid ()) !seq)
    in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o700;
    dir

let tmp_leftovers dir =
  Array.to_list (Sys.readdir dir)
  |> List.filter (fun f ->
         let rec has_sub i =
           i + 4 <= String.length f && (String.sub f i 4 = ".tmp" || has_sub (i + 1))
         in
         has_sub 0)

(* A successful write leaves exactly the target file: the staging temp
   must have been renamed away, never left as a sibling. *)
let test_write_file_leaves_no_tmp () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "state.ckpt" in
  Codec.write_file ~schema:Codec.schema path (fun w -> Codec.varint w 42);
  let r = Codec.read_file ~schema:Codec.schema path in
  check_int "payload survives" 42 (Codec.read_varint r);
  Codec.expect_end r;
  check_int "no tmp leftovers" 0 (List.length (tmp_leftovers dir))

(* A failed write (here: the rename refused because the target is a
   directory) must raise Codec.Error and unlink its temp file instead of
   leaking it next to the checkpoint path. *)
let test_write_file_failure_removes_tmp () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "occupied" in
  Sys.mkdir path 0o700;
  check_bool "write into a directory path is refused" true
    (match Codec.write_file ~schema:Codec.schema path (fun w -> Codec.varint w 1) with
    | () -> false
    | exception Codec.Error _ -> true);
  check_int "failed write leaves no tmp file" 0 (List.length (tmp_leftovers dir))

(* An unwritable destination fails before any temp file exists. *)
let test_write_file_unwritable_dir () =
  let dir = fresh_dir () in
  let path = Filename.concat (Filename.concat dir "missing") "state.ckpt" in
  check_bool "missing directory is a clean Codec.Error" true
    (match Codec.write_file ~schema:Codec.schema path (fun w -> Codec.varint w 1) with
    | () -> false
    | exception Codec.Error _ -> true)

(* Concurrent writers to the same path (sweep worker domains share a
   pid!) must not clobber each other's staging bytes: every temp name is
   unique, the surviving file is one of the complete payloads, and no
   temp files are left behind. *)
let test_write_file_concurrent_same_path () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "shared.ckpt" in
  let writers = 4 and rounds = 8 in
  let handles =
    List.init writers (fun w ->
        Domain.spawn (fun () ->
            for r = 1 to rounds do
              Codec.write_file ~schema:Codec.schema path (fun wr ->
                  Codec.varint wr w;
                  Codec.varint wr r;
                  (* bulk payload so staged writes overlap in time *)
                  Codec.int_array wr (Array.make 4096 (w * 1000 + r)))
            done))
  in
  List.iter Domain.join handles;
  let r = Codec.read_file ~schema:Codec.schema path in
  let w = Codec.read_varint r in
  let rnd = Codec.read_varint r in
  let bulk = Codec.read_int_array r in
  Codec.expect_end r;
  check_bool "winning writer id in range" true (w >= 0 && w < writers);
  check_bool "winning round in range" true (rnd >= 1 && rnd <= rounds);
  check_bool "payload internally consistent" true
    (Array.for_all (fun v -> v = (w * 1000) + rnd) bulk && Array.length bulk = 4096);
  check_int "no tmp leftovers" 0 (List.length (tmp_leftovers dir))

let qcheck_props =
  [
    QCheck.Test.make ~name:"varint round-trips any int" ~count:500 QCheck.int (fun v ->
        roundtrip Codec.varint Codec.read_varint v = v);
    QCheck.Test.make ~name:"int_array round-trips" ~count:100
      QCheck.(array small_signed_int)
      (fun a -> roundtrip Codec.int_array Codec.read_int_array a = a);
  ]

let suite =
  [
    ("varint round-trip", `Quick, test_varint_roundtrip);
    ("i64/f64/bool round-trip", `Quick, test_i64_f64_bool);
    ("string/option/containers", `Quick, test_string_option_containers);
    ("crc32 check value", `Quick, test_crc32_check_value);
    ("frame round-trip", `Quick, test_frame_roundtrip);
    ("frame rejects corruption", `Quick, test_frame_rejects_corruption);
    ("prng round-trip", `Quick, test_prng_roundtrip);
    ("intvec round-trip", `Quick, test_intvec_roundtrip);
    ("bitset round-trip", `Quick, test_bitset_roundtrip);
    ("bitset rejects bad words", `Quick, test_bitset_rejects_bad_words);
    ("bitset rejects cardinal mismatch", `Quick, test_bitset_rejects_cardinal_mismatch);
    ("dyngraph round-trip with free list", `Quick, test_dyngraph_roundtrip_free_list);
    ("dyngraph round-trip with slid window", `Quick, test_dyngraph_roundtrip_slid_window);
    ("dyngraph rejects corruption", `Quick, test_dyngraph_decode_rejects_corruption);
    ("poisson churn round-trip", `Quick, test_poisson_churn_roundtrip);
    ("streaming model round-trip", `Quick, test_streaming_model_roundtrip);
    ("poisson model round-trip", `Quick, test_poisson_model_roundtrip);
    ("models dispatch", `Quick, test_models_dispatch);
    ("flood sync in-flight round-trip", `Quick, test_flood_sync_inflight_roundtrip);
    ("flood poisson in-flight round-trip", `Quick, test_flood_poisson_inflight_roundtrip);
    ("flood state rejects inconsistency", `Quick, test_flood_state_rejects_inconsistency);
    ("onion in-flight round-trip", `Quick, test_onion_inflight_roundtrip);
    ("write_file leaves no tmp", `Quick, test_write_file_leaves_no_tmp);
    ("write_file failure removes tmp", `Quick, test_write_file_failure_removes_tmp);
    ("write_file unwritable dir", `Quick, test_write_file_unwritable_dir);
    ("write_file concurrent same path", `Quick, test_write_file_concurrent_same_path);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~verbose:false) qcheck_props
