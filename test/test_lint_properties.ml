(* Property tests for the churnet-lint structural parser (Lint_tree):
   the two guarantees its interface promises.

   - Totality: [parse] never raises, on arbitrary token soup generated
     from the OCaml keyword vocabulary (qcheck) and on every real [.ml]
     file in the repository (self-host sweep).
   - Validity: every recorded span is a well-formed inclusive range into
     the lexer's token array, a binding's name and body lie inside its
     binding span, and any two binding spans are either disjoint or
     properly nested — the invariant the call graph's innermost-wins
     attribution rests on. *)

open Churnet_util

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Shared invariant checker                                            *)
(* ------------------------------------------------------------------ *)

let span_ok n (s : Lint_tree.span) =
  s.Lint_tree.s_first >= 0 && s.Lint_tree.s_last < n

let spans_nest (a : Lint_tree.span) (b : Lint_tree.span) =
  Lint_tree.span_within a b
  || Lint_tree.span_within b a
  || a.Lint_tree.s_last < b.Lint_tree.s_first
  || b.Lint_tree.s_last < a.Lint_tree.s_first

(* Raises [Failure] with a description when an invariant is violated;
   used both by the qcheck properties and the repo sweep. *)
let check_invariants ~what (lex : Lint_lexer.t) (tree : Lint_tree.t) =
  let tks = lex.Lint_lexer.tokens in
  let n = Array.length tks in
  let fail fmt = Printf.ksprintf (fun m -> failwith (what ^ ": " ^ m)) fmt in
  let check_span label (s : Lint_tree.span) =
    if s.Lint_tree.s_first <= s.Lint_tree.s_last && not (span_ok n s) then
      fail "%s span %d..%d outside 0..%d" label s.Lint_tree.s_first
        s.Lint_tree.s_last (n - 1)
  in
  Array.iter
    (fun (b : Lint_tree.binding) ->
      let sp = b.Lint_tree.b_span in
      check_span ("binding " ^ b.Lint_tree.b_name) sp;
      if sp.Lint_tree.s_first > sp.Lint_tree.s_last then
        fail "binding %s has an empty binding span" b.Lint_tree.b_name;
      if
        b.Lint_tree.b_name_index >= 0
        && not (Lint_tree.span_contains sp b.Lint_tree.b_name_index)
      then
        fail "binding %s: name index %d outside span %d..%d"
          b.Lint_tree.b_name b.Lint_tree.b_name_index sp.Lint_tree.s_first
          sp.Lint_tree.s_last;
      let body = b.Lint_tree.b_body in
      if
        body.Lint_tree.s_first <= body.Lint_tree.s_last
        && not (Lint_tree.span_within body sp)
      then
        fail "binding %s: body %d..%d escapes span %d..%d" b.Lint_tree.b_name
          body.Lint_tree.s_first body.Lint_tree.s_last sp.Lint_tree.s_first
          sp.Lint_tree.s_last;
      (* Spans map back to exact lexer positions. *)
      if n > 0 then begin
        let first = tks.(sp.Lint_tree.s_first) in
        if first.Lint_lexer.line < 1 || first.Lint_lexer.col < 1 then
          fail "binding %s: span start has no lexer position"
            b.Lint_tree.b_name
      end)
    tree.Lint_tree.bindings;
  Array.iter (check_span "lambda") tree.Lint_tree.lambdas;
  Array.iter (check_span "loop") tree.Lint_tree.loops;
  Array.iter
    (fun (o : Lint_tree.open_decl) -> check_span "open scope" o.Lint_tree.o_scope)
    tree.Lint_tree.opens;
  (* Binding spans form a forest: disjoint or nested, never partially
     overlapping. *)
  let bs = tree.Lint_tree.bindings in
  Array.iteri
    (fun i (a : Lint_tree.binding) ->
      for j = i + 1 to Array.length bs - 1 do
        let b = bs.(j) in
        if not (spans_nest a.Lint_tree.b_span b.Lint_tree.b_span) then
          fail "bindings %s (%d..%d) and %s (%d..%d) partially overlap"
            a.Lint_tree.b_name a.Lint_tree.b_span.Lint_tree.s_first
            a.Lint_tree.b_span.Lint_tree.s_last b.Lint_tree.b_name
            b.Lint_tree.b_span.Lint_tree.s_first
            b.Lint_tree.b_span.Lint_tree.s_last
      done)
    bs

(* ------------------------------------------------------------------ *)
(* qcheck: token soup                                                  *)
(* ------------------------------------------------------------------ *)

let vocab =
  [|
    "let"; "in"; "="; "fun"; "function"; "->"; "("; ")"; "match"; "with";
    "|"; "x"; "f"; "g"; "1"; "if"; "then"; "else"; "module"; "open";
    "struct"; "sig"; "end"; "["; "]"; "{"; "}"; ";"; ";;"; "and"; "rec";
    "type"; "*"; ","; ":"; "B"; "M"; "."; "begin"; "done"; "do"; "for";
    "while"; "to"; "~rng"; "?opt"; "try"; "exception"; "include"; "'";
  |]

let gen_source =
  QCheck.Gen.(
    let word = map (fun i -> vocab.(i)) (int_bound (Array.length vocab - 1)) in
    map (String.concat " ") (list_size (int_bound 200) word))

let arb_source =
  QCheck.make ~print:(fun s -> s) gen_source

let prop_parse_total =
  QCheck.Test.make ~name:"parse is total and spans are valid" ~count:1000
    arb_source (fun src ->
      let lex = Lint_lexer.lex src in
      let tree = Lint_tree.parse lex in
      check_invariants ~what:"fuzz" lex tree;
      true)

let prop_helpers_consistent =
  QCheck.Test.make ~name:"helper queries agree with recorded spans" ~count:300
    arb_source (fun src ->
      let lex = Lint_lexer.lex src in
      let tree = Lint_tree.parse lex in
      let n = Array.length lex.Lint_lexer.tokens in
      for i = 0 to n - 1 do
        (* enclosing_binding must return a span containing i, and be the
           innermost such binding *)
        (match Lint_tree.enclosing_binding tree i with
        | Some b ->
            if not (Lint_tree.span_contains b.Lint_tree.b_span i) then
              failwith "enclosing_binding returned a non-containing span"
        | None ->
            if
              Array.exists
                (fun (b : Lint_tree.binding) ->
                  Lint_tree.span_contains b.Lint_tree.b_span i)
                tree.Lint_tree.bindings
            then failwith "enclosing_binding missed a containing binding");
        (* in_lambda / in_loop must agree with the recorded spans *)
        let some_lambda =
          Array.exists (fun s -> Lint_tree.span_contains s i) tree.Lint_tree.lambdas
        in
        if Lint_tree.in_lambda tree i <> some_lambda then
          failwith "in_lambda disagrees with lambda spans";
        let some_loop =
          Array.exists (fun s -> Lint_tree.span_contains s i) tree.Lint_tree.loops
        in
        if Lint_tree.in_loop tree i <> some_loop then
          failwith "in_loop disagrees with loop spans"
      done;
      true)

(* ------------------------------------------------------------------ *)
(* Self-host sweep: every .ml in the repository                        *)
(* ------------------------------------------------------------------ *)

let rec ml_files_under dir =
  match Sys.readdir dir with
  | entries ->
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          if String.length entry > 0 && (entry.[0] = '.' || entry.[0] = '_')
          then acc
          else if Sys.is_directory path then acc @ ml_files_under path
          else if Filename.check_suffix entry ".ml" then acc @ [ path ]
          else acc)
        [] entries
  | exception Sys_error _ -> []

let test_selfhost_sweep () =
  (* Under [dune runtest] the binary runs from _build/default/test/ and
     the dune deps materialize the source trees as siblings; under
     [dune exec] from the project root they are direct children. *)
  let prefix = if Sys.file_exists "../lib" then ".." else "." in
  let roots =
    List.map (Filename.concat prefix) [ "lib"; "bin"; "bench" ]
  in
  let files = List.concat_map ml_files_under roots in
  check_bool
    (Printf.sprintf "sweep found a real source tree (%d files)"
       (List.length files))
    true
    (List.length files > 50);
  List.iter
    (fun path ->
      let src = In_channel.with_open_bin path In_channel.input_all in
      let lex = Lint_lexer.lex src in
      match Lint_tree.parse lex with
      | tree -> check_invariants ~what:path lex tree
      | exception e ->
          Alcotest.failf "parse raised on %s: %s" path (Printexc.to_string e))
    files

let suite =
  [ Alcotest.test_case "self-host sweep" `Quick test_selfhost_sweep ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~verbose:false)
      [ prop_parse_total; prop_helpers_consistent ]
