open Churnet_p2p
module Dyngraph = Churnet_graph.Dyngraph
module Snapshot = Churnet_graph.Snapshot
module Prng = Churnet_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Bitcoin-like --- *)

let test_bitcoin_reaches_target_degree () =
  let m = Bitcoin_like.create ~rng:(Prng.create 1) ~n:300 () in
  Bitcoin_like.warm_up m;
  (* Mean out-degree should approach the target 8. *)
  check_bool "mean out-degree near target" true (Bitcoin_like.mean_out_degree m > 6.5)

let test_bitcoin_respects_in_degree_cap () =
  let m = Bitcoin_like.create ~rng:(Prng.create 2) ~max_in:5 ~n:200 () in
  Bitcoin_like.warm_up m;
  let g = Bitcoin_like.graph m in
  let worst = ref 0 in
  Dyngraph.iter_alive g (fun id ->
      let indeg = Dyngraph.in_degree g id in
      if indeg > !worst then worst := indeg);
  (* Cap can be transiently exceeded only by at most the newborn's seeds;
     enforce a small slack. *)
  check_bool "in-degree capped" true (!worst <= 6)

let test_bitcoin_population_band () =
  let m = Bitcoin_like.create ~rng:(Prng.create 3) ~n:300 () in
  Bitcoin_like.warm_up m;
  let pop = Dyngraph.alive_count (Bitcoin_like.graph m) in
  check_bool "population near n" true (pop > 200 && pop < 400)

let test_bitcoin_graph_invariants () =
  let m = Bitcoin_like.create ~rng:(Prng.create 4) ~n:200 () in
  Bitcoin_like.warm_up m;
  match Dyngraph.check_invariants (Bitcoin_like.graph m) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" e

let test_bitcoin_mostly_connected () =
  let m = Bitcoin_like.create ~rng:(Prng.create 5) ~n:300 () in
  Bitcoin_like.warm_up m;
  let s = Bitcoin_like.snapshot m in
  let frac =
    float_of_int (Snapshot.largest_component s) /. float_of_int (Snapshot.n s)
  in
  check_bool "giant component" true (frac > 0.95)

let test_bitcoin_flood_completes () =
  let m = Bitcoin_like.create ~rng:(Prng.create 6) ~n:300 () in
  Bitcoin_like.warm_up m;
  let tr = Bitcoin_like.flood m in
  check_bool "high coverage" true (tr.Churnet_core.Flood.peak_coverage > 0.9)

let test_bitcoin_tables_fill () =
  let m = Bitcoin_like.create ~rng:(Prng.create 7) ~n:200 () in
  Bitcoin_like.warm_up m;
  check_bool "address tables populated" true (Bitcoin_like.mean_table_fill m > 8.)

let test_bitcoin_time_advances () =
  let m = Bitcoin_like.create ~rng:(Prng.create 8) ~n:100 () in
  Bitcoin_like.advance_time m 5.;
  check_bool "time >= 5" true (Bitcoin_like.time m >= 5.)

(* --- Random-walk streaming --- *)

let test_rw_population () =
  let m = Rw_streaming.create ~rng:(Prng.create 11) ~n:150 ~d:3 () in
  Rw_streaming.warm_up m;
  check_int "population n" 150 (Dyngraph.alive_count (Rw_streaming.graph m))

let test_rw_connected () =
  let m = Rw_streaming.create ~rng:(Prng.create 12) ~n:300 ~d:3 () in
  Rw_streaming.warm_up m;
  let s = Rw_streaming.snapshot m in
  let frac = float_of_int (Snapshot.largest_component s) /. float_of_int (Snapshot.n s) in
  (* The simplified token protocol (no constant recirculation) still loses
     a few old nodes; it must keep a giant component nonetheless. *)
  check_bool "giant component" true (frac > 0.8)

let test_rw_flood_completes () =
  let m = Rw_streaming.create ~rng:(Prng.create 13) ~n:250 ~d:4 () in
  Rw_streaming.warm_up m;
  let tr = Rw_streaming.flood ~max_rounds:120 m in
  check_bool "high coverage" true (tr.Churnet_core.Flood.peak_coverage > 0.85)

let test_rw_degree_bias () =
  (* Walk endpoints are degree-biased: the degree distribution should be
     more skewed than the uniform model's.  Smoke check: max degree is
     noticeably above d+average. *)
  let m = Rw_streaming.create ~rng:(Prng.create 14) ~n:400 ~d:3 () in
  Rw_streaming.warm_up m;
  let s = Rw_streaming.snapshot m in
  check_bool "skewed degrees" true (Snapshot.max_degree s >= 10)

let test_rw_invariants () =
  let m = Rw_streaming.create ~rng:(Prng.create 15) ~n:150 ~d:3 () in
  Rw_streaming.warm_up m;
  match Dyngraph.check_invariants (Rw_streaming.graph m) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" e

(* --- Cache protocol --- *)

let test_cache_population () =
  let m = Cache_protocol.create ~rng:(Prng.create 21) ~n:150 ~d:3 () in
  Cache_protocol.warm_up m;
  check_int "population n" 150 (Dyngraph.alive_count (Cache_protocol.graph m))

let test_cache_connected_core () =
  let m = Cache_protocol.create ~rng:(Prng.create 22) ~n:300 ~d:3 () in
  Cache_protocol.warm_up m;
  let s = Cache_protocol.snapshot m in
  let frac = float_of_int (Snapshot.largest_component s) /. float_of_int (Snapshot.n s) in
  check_bool "giant component" true (frac > 0.8)

let test_cache_flood_mostly_covers () =
  let m = Cache_protocol.create ~rng:(Prng.create 23) ~n:250 ~d:4 () in
  Cache_protocol.warm_up m;
  let tr = Cache_protocol.flood ~max_rounds:120 m in
  check_bool "high coverage" true (tr.Churnet_core.Flood.peak_coverage > 0.75)

let test_cache_invariants () =
  let m = Cache_protocol.create ~rng:(Prng.create 24) ~n:150 ~d:3 () in
  Cache_protocol.warm_up m;
  match Dyngraph.check_invariants (Cache_protocol.graph m) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" e

let test_cache_newborn_targets_from_cache () =
  (* With cache_size 1 the newborn always connects to the cached node. *)
  let m = Cache_protocol.create ~rng:(Prng.create 25) ~cache_size:1 ~n:50 ~d:2 () in
  Cache_protocol.run m 30;
  let g = Cache_protocol.graph m in
  let newest = Cache_protocol.newest m in
  let targets = Dyngraph.out_targets g newest in
  check_bool "targets identical" true
    (match targets with
    | [] -> false
    | t :: rest -> List.for_all (fun x -> x = t) rest)

let suite =
  [
    ("bitcoin target degree", `Quick, test_bitcoin_reaches_target_degree);
    ("bitcoin in-degree cap", `Quick, test_bitcoin_respects_in_degree_cap);
    ("bitcoin population", `Quick, test_bitcoin_population_band);
    ("bitcoin invariants", `Quick, test_bitcoin_graph_invariants);
    ("bitcoin giant component", `Quick, test_bitcoin_mostly_connected);
    ("bitcoin flood", `Quick, test_bitcoin_flood_completes);
    ("bitcoin address tables", `Quick, test_bitcoin_tables_fill);
    ("bitcoin time", `Quick, test_bitcoin_time_advances);
    ("rw population", `Quick, test_rw_population);
    ("rw connected", `Quick, test_rw_connected);
    ("rw flood", `Quick, test_rw_flood_completes);
    ("rw degree bias", `Quick, test_rw_degree_bias);
    ("rw invariants", `Quick, test_rw_invariants);
    ("cache population", `Quick, test_cache_population);
    ("cache connected", `Quick, test_cache_connected_core);
    ("cache flood", `Quick, test_cache_flood_mostly_covers);
    ("cache invariants", `Quick, test_cache_invariants);
    ("cache newborn targets", `Quick, test_cache_newborn_targets_from_cache);
  ]

(* --- Local update protocol (Duchon-Duvignau flavour) --- *)

let test_local_update_degree_conservation () =
  let m = Local_update.create ~rng:(Prng.create 41) ~n:300 ~d:4 () in
  Local_update.warm_up m;
  let g = Local_update.graph m in
  (* Takeover conserves out-degrees: everyone sits at exactly d, except
     possibly a couple of nodes hit by donor collisions. *)
  let below = ref 0 in
  Dyngraph.iter_alive g (fun id ->
      let od = Dyngraph.out_degree g id in
      check_bool "out-degree at most d" true (od <= 4);
      if od < 4 then incr below);
  check_bool "almost all at exactly d" true (!below <= 6)

let test_local_update_bounded_in_degree () =
  (* The takeover dynamics also keep in-degrees small (no Theta(log n)
     hubs) — the interesting contrast with SDGR. *)
  let m = Local_update.create ~rng:(Prng.create 42) ~n:400 ~d:4 () in
  Local_update.warm_up m;
  let s = Local_update.snapshot m in
  check_bool "max degree stays ~ 2d + slack" true (Snapshot.max_degree s <= 16)

let test_local_update_connected () =
  let m = Local_update.create ~rng:(Prng.create 43) ~n:400 ~d:4 () in
  Local_update.warm_up m;
  let s = Local_update.snapshot m in
  let frac = float_of_int (Snapshot.largest_component s) /. float_of_int (Snapshot.n s) in
  check_bool "giant component" true (frac > 0.95)

let test_local_update_flood () =
  let m = Local_update.create ~rng:(Prng.create 44) ~n:300 ~d:5 () in
  Local_update.warm_up m;
  let tr = Local_update.flood ~max_rounds:120 m in
  check_bool "high coverage" true (tr.Churnet_core.Flood.peak_coverage > 0.9)

let test_local_update_invariants () =
  let m = Local_update.create ~rng:(Prng.create 45) ~n:200 ~d:3 () in
  Local_update.warm_up m;
  match Dyngraph.check_invariants (Local_update.graph m) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" e

let test_disconnect_primitive () =
  let g = Dyngraph.create ~rng:(Prng.create 46) ~d:2 ~regenerate:false () in
  let a = Dyngraph.add_node g ~birth:1 in
  let b = Dyngraph.add_node g ~birth:2 in
  (* b points at a twice. *)
  check_bool "disconnect succeeds" true (Dyngraph.disconnect g ~src:b ~dst:a);
  Alcotest.(check int) "one slot cleared" 1 (Dyngraph.out_degree g b);
  check_bool "second disconnect" true (Dyngraph.disconnect g ~src:b ~dst:a);
  check_bool "third fails" false (Dyngraph.disconnect g ~src:b ~dst:a);
  Alcotest.(check int) "a isolated" 0 (Dyngraph.degree g a);
  match Dyngraph.check_invariants g with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" e

let suite =
  suite
  @ [
      ("local update degree conservation", `Quick, test_local_update_degree_conservation);
      ("local update bounded in-degree", `Quick, test_local_update_bounded_in_degree);
      ("local update connected", `Quick, test_local_update_connected);
      ("local update flood", `Quick, test_local_update_flood);
      ("local update invariants", `Quick, test_local_update_invariants);
      ("disconnect primitive", `Quick, test_disconnect_primitive);
    ]
