(* fixture interface: intentionally empty *)
