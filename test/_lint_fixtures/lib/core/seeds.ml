(* prng-flow: a literal-seeded, module-level stream shared by callers. *)
let rng = Prng.create 42
let draw () = Prng.int rng 8
