(* hot-path-alloc: a List combinator inside a kernel entry point. *)
let expand_informed informed = List.map succ informed
