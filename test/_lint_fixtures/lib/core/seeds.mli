(* fixture interface: intentionally empty *)
