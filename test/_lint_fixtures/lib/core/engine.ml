(* no-io-transitive: advance reaches a console writer through Printer. *)
let advance () = Printer.shout "tick"
