(* fixture interface: intentionally empty *)
