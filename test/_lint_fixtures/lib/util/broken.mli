(* fixture interface: intentionally empty *)
