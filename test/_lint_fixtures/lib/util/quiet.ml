(* lint: allow no-wallclock -- unused-pragma: nothing below reads time *)
let calm = 1
