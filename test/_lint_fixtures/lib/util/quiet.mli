(* fixture interface: intentionally empty *)
