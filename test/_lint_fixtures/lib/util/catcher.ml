(* no-wildcard-exn: the handler swallows every exception. *)
let safe f = try f () with _ -> 0
