(* no-print-in-lib: a direct console write outside the report layer. *)
let shout s = print_endline s
