(* lint: allow no-wallclock *)
let hazy = 1
