(* no-polymorphic-sort: bare polymorphic compare in a sort. *)
let sorted = List.sort compare [ 3; 1; 2 ]
