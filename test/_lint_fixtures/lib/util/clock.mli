(* fixture interface: intentionally empty *)
