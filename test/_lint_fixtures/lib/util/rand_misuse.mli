(* fixture interface: intentionally empty *)
