(* no-wallclock: simulation code observing real time. *)
let now () = Unix.gettimeofday ()
