let unused_thing = 1
