(* fixture interface: intentionally empty *)
