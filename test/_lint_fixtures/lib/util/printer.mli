(* fixture interface: intentionally empty *)
