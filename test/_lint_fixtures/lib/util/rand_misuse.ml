(* no-stdlib-random: global Random breaks seed-reproducibility. *)
let roll () = Random.int 6
