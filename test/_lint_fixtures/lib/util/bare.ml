(* mli-coverage: this module deliberately ships no interface file. *)
let answer = 1
