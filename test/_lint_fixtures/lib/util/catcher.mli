(* fixture interface: intentionally empty *)
