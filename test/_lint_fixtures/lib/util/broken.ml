let ok = 1
(* bad-syntax: this comment never closes
