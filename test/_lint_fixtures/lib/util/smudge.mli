(* fixture interface: intentionally empty *)
