(* dead-export: nothing outside this module references the val. *)
val unused_thing : int
