(* fixture interface: intentionally empty *)
