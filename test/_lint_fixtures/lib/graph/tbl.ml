(* no-hashtbl-order: folding a Hashtbl leaks insertion history. *)
let total t = Hashtbl.fold (fun _ v acc -> v + acc) t 0
