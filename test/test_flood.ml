open Churnet_core
module Prng = Churnet_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sdgr ?(seed = 1) ?(n = 300) ?(d = 8) () =
  let m = Streaming_model.create ~rng:(Prng.create seed) ~n ~d ~regenerate:true () in
  Streaming_model.warm_up m;
  m

let sdg ?(seed = 1) ?(n = 300) ?(d = 3) () =
  let m = Streaming_model.create ~rng:(Prng.create seed) ~n ~d ~regenerate:false () in
  Streaming_model.warm_up m;
  m

let pdgr ?(seed = 1) ?(n = 300) ?(d = 8) () =
  let m = Poisson_model.create ~rng:(Prng.create seed) ~n ~d ~regenerate:true () in
  Poisson_model.warm_up m;
  m

let test_sdgr_flood_completes_fast () =
  let m = sdgr ~seed:3 () in
  let tr = Flood.run_streaming m in
  check_bool "completed" true tr.completed;
  (* Theorem 3.16: O(log n); allow a generous constant. *)
  check_bool "logarithmic rounds" true
    (match tr.completion_round with Some r -> r <= 40 | None -> false)

let test_sdgr_flood_informs_everyone () =
  let m = sdgr ~seed:5 () in
  let tr = Flood.run_streaming m in
  check_bool "full coverage at end" true
    (tr.final_informed >= tr.final_population - 1)

let test_trace_consistency () =
  let m = sdgr ~seed:7 () in
  let tr = Flood.run_streaming m in
  check_int "rounds matches log length" (Array.length tr.informed_per_round - 1) tr.rounds;
  check_int "same log lengths"
    (Array.length tr.informed_per_round)
    (Array.length tr.population_per_round);
  check_int "starts with single source" 1 tr.informed_per_round.(0);
  Array.iteri
    (fun i inf ->
      check_bool "informed <= population" true (inf <= tr.population_per_round.(i)))
    tr.informed_per_round;
  check_bool "peak >= final" true (tr.peak_informed >= tr.final_informed);
  check_bool "peak coverage in [0,1]" true (tr.peak_coverage >= 0. && tr.peak_coverage <= 1.)

let test_informed_can_shrink_only_by_one_per_round () =
  (* Streaming churn kills exactly one node per round, so |I| drops by at
     most 1 between consecutive rounds (before additions). *)
  let m = sdgr ~seed:11 () in
  let tr = Flood.run_streaming m in
  let ok = ref true in
  for i = 1 to Array.length tr.informed_per_round - 1 do
    if tr.informed_per_round.(i) < tr.informed_per_round.(i - 1) - 1 then ok := false
  done;
  check_bool "bounded shrink" true !ok

let test_sdg_flood_reaches_most_nodes () =
  (* Theorem 3.8 direction: with a healthy d, most nodes get informed
     within O(log n) rounds (not all: isolated nodes exist). *)
  let successes = ref 0 in
  for seed = 1 to 10 do
    let m = sdg ~seed ~n:400 ~d:8 () in
    let tr = Flood.run_streaming ~max_rounds:80 m in
    if tr.peak_coverage > 0.7 then incr successes
  done;
  check_bool "most floods reach most nodes" true (!successes >= 7)

let test_sdg_flood_can_stall () =
  (* Theorem 3.7 direction: with small d some floods die early. *)
  let stalled = ref 0 in
  for seed = 1 to 40 do
    let m = sdg ~seed ~n:200 ~d:1 () in
    let tr = Flood.run_streaming ~max_rounds:60 m in
    if tr.peak_informed <= 2 then incr stalled
  done;
  check_bool "some floods stall at <= d+1 nodes" true (!stalled >= 1)

let test_sdg_flood_does_not_complete_quickly () =
  (* Isolated nodes make full completion impossible within o(n) rounds. *)
  let m = sdg ~seed:13 ~n:500 ~d:3 () in
  let tr = Flood.run_streaming ~max_rounds:60 m in
  check_bool "no fast completion in SDG" true (not tr.completed)

let test_pdgr_discretized_completes () =
  let m = pdgr ~seed:17 () in
  let tr = Flood.run_poisson_discretized m in
  check_bool "completed" true tr.completed;
  check_bool "logarithmic rounds" true
    (match tr.completion_round with Some r -> r <= 60 | None -> false)

let test_pdgr_discretized_coverage () =
  let m = pdgr ~seed:19 () in
  let tr = Flood.run_poisson_discretized m in
  check_bool "peak coverage > 0.95" true (tr.peak_coverage > 0.95)

let test_pdg_flood_partial_coverage () =
  (* PDG (no regeneration): flooding should still reach a large constant
     fraction (Theorem 4.13) but full completion is blocked by isolated
     nodes. *)
  let m = Poisson_model.create ~rng:(Prng.create 23) ~n:400 ~d:10 ~regenerate:false () in
  Poisson_model.warm_up m;
  let tr = Flood.run_poisson_discretized ~max_rounds:60 m in
  check_bool "large coverage" true (tr.peak_coverage > 0.6)

let test_async_completes_on_pdgr () =
  let m = pdgr ~seed:29 ~n:200 () in
  let r = Flood.Async.run m in
  check_bool "completed" true r.completed;
  (match r.completion_time with
  | Some t -> check_bool "O(log n) time" true (t < 40.)
  | None -> Alcotest.fail "no completion time");
  check_bool "coverage 1" true (r.final_coverage > 0.999)

let test_async_faster_or_equal_discretized () =
  (* Async flooding (Def 4.2) dominates discretized (Def 4.3): on the same
     parameters its completion time should not be dramatically larger. *)
  let async_times = ref [] and disc_rounds = ref [] in
  for seed = 31 to 35 do
    let m1 = pdgr ~seed ~n:200 () in
    let r = Flood.Async.run m1 in
    (match r.completion_time with Some t -> async_times := t :: !async_times | None -> ());
    let m2 = pdgr ~seed:(seed + 100) ~n:200 () in
    let tr = Flood.run_poisson_discretized m2 in
    match tr.completion_round with
    | Some r -> disc_rounds := float_of_int r :: !disc_rounds
    | None -> ()
  done;
  check_bool "both complete mostly" true
    (List.length !async_times >= 4 && List.length !disc_rounds >= 4);
  let mean l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
  check_bool "async not slower than 2x discretized" true
    (mean !async_times <= 2. *. mean !disc_rounds +. 5.)

let test_async_extinction_possible_pdg_small_d () =
  (* With d = 1 and no regeneration, some async floods go extinct. *)
  let extinct = ref 0 in
  for seed = 1 to 15 do
    let m = Poisson_model.create ~rng:(Prng.create seed) ~n:150 ~d:1 ~regenerate:false () in
    Poisson_model.warm_up m;
    let r = Flood.Async.run ~max_time:80. m in
    if (not r.completed) && r.informed_total <= 6 then incr extinct
  done;
  check_bool "some extinctions" true (!extinct >= 1)

let test_coverage_at () =
  let m = sdgr ~seed:37 () in
  let tr = Flood.run_streaming m in
  let c0 = Flood.coverage_at tr 0 in
  check_bool "initial coverage tiny" true (c0 < 0.01);
  let cend = Flood.coverage_at tr 10_000 in
  check_bool "clamps to final" true (cend > 0.9)

let test_run_custom_static_semantics () =
  (* On a custom stepper that never churns after planting the source,
     flooding is exactly BFS layer expansion. *)
  let g = Churnet_graph.Dyngraph.create ~rng:(Prng.create 41) ~d:2 ~regenerate:false () in
  (* Build a path: b -> a, c -> b, ... each newborn connects to previous. *)
  let prev = ref (-1) in
  let first = ref true in
  let mk i =
    let targets = if !prev < 0 then [||] else [| !prev |] in
    prev := Churnet_graph.Dyngraph.add_node_with_targets g ~birth:i ~targets
  in
  for i = 1 to 6 do
    mk i
  done;
  let step () =
    if !first then begin
      first := false;
      mk 7 (* source joins the end of the path *)
    end
    (* afterwards: no churn at all *)
  in
  let tr =
    Flood.run_custom ~graph:g ~step ~newest:(fun () -> !prev) ~default_max_rounds:20 ()
  in
  check_bool "completed" true tr.completed;
  (* Source sits at one end of a 7-node path: needs exactly 6 rounds. *)
  check_int "path flooding time" 6 (Option.get tr.completion_round)

let suite =
  [
    ("SDGR completes fast (Thm 3.16)", `Quick, test_sdgr_flood_completes_fast);
    ("SDGR informs everyone", `Quick, test_sdgr_flood_informs_everyone);
    ("trace consistency", `Quick, test_trace_consistency);
    ("bounded shrink", `Quick, test_informed_can_shrink_only_by_one_per_round);
    ("SDG reaches most nodes (Thm 3.8)", `Slow, test_sdg_flood_reaches_most_nodes);
    ("SDG can stall (Thm 3.7)", `Slow, test_sdg_flood_can_stall);
    ("SDG no fast completion", `Quick, test_sdg_flood_does_not_complete_quickly);
    ("PDGR discretized completes (Thm 4.20)", `Quick, test_pdgr_discretized_completes);
    ("PDGR discretized coverage", `Quick, test_pdgr_discretized_coverage);
    ("PDG partial coverage (Thm 4.13)", `Quick, test_pdg_flood_partial_coverage);
    ("async completes on PDGR", `Quick, test_async_completes_on_pdgr);
    ("async vs discretized", `Slow, test_async_faster_or_equal_discretized);
    ("async extinction possible", `Slow, test_async_extinction_possible_pdg_small_d);
    ("coverage_at", `Quick, test_coverage_at);
    ("run_custom = BFS on static path", `Quick, test_run_custom_static_semantics);
  ]

let test_max_rounds_respected () =
  let m = sdg ~seed:53 ~n:300 ~d:2 () in
  let tr = Flood.run_streaming ~max_rounds:7 m in
  check_bool "stops at budget" true (tr.rounds <= 7);
  check_int "log length" (tr.rounds + 1) (Array.length tr.informed_per_round)

let test_discretized_max_rounds () =
  let m = Poisson_model.create ~rng:(Prng.create 59) ~n:300 ~d:2 ~regenerate:false () in
  Poisson_model.warm_up m;
  let tr = Flood.run_poisson_discretized ~max_rounds:5 m in
  check_bool "stops at budget" true (tr.rounds <= 5)

let test_async_max_time_respected () =
  let m = Poisson_model.create ~rng:(Prng.create 61) ~n:200 ~d:1 ~regenerate:false () in
  Poisson_model.warm_up m;
  let t0 = Poisson_model.time m in
  let r = Flood.Async.run ~max_time:10. m in
  ignore r;
  (* The simulation clock cannot run far past the deadline. *)
  check_bool "clock bounded" true (Poisson_model.time m -. t0 <= 13.)

let test_streaming_population_constant_during_flood () =
  let m = sdgr ~seed:67 () in
  let tr = Flood.run_streaming m in
  Array.iter
    (fun pop -> check_int "population pinned at n" 300 pop)
    tr.population_per_round

(* An extinct trace must stop at the extinction round (not run on to the
   round budget), flag [extinct], and end with zero informed nodes. *)
let check_extinct_trace (tr : Flood.trace) =
  check_bool "not completed" true (not tr.completed);
  check_bool "no completion round" true (tr.completion_round = None);
  check_int "last log entry is 0 informed" 0
    tr.informed_per_round.(Array.length tr.informed_per_round - 1);
  match tr.extinction_round with
  | None -> Alcotest.fail "extinct trace without extinction_round"
  | Some r -> check_int "trace ends at extinction round" r tr.rounds

let test_streaming_extinction_trace () =
  (* SDG with d = 1: some floods die out entirely (Theorem 3.7 regime). *)
  let extinct = ref 0 in
  for seed = 1 to 40 do
    let m = sdg ~seed ~n:200 ~d:1 () in
    let tr = Flood.run_streaming ~max_rounds:400 m in
    if tr.extinct then begin
      incr extinct;
      check_extinct_trace tr;
      check_bool "stopped before budget" true (tr.rounds < 400)
    end
  done;
  check_bool "saw at least one extinction" true (!extinct >= 1)

let test_discretized_extinction_trace () =
  (* PDG with d = 1 and no regeneration: the flood stalls in the source's
     small component, whose members all die within O(n log) time (node
     lifetimes are ~n time units), so the informed set dies out. *)
  let extinct = ref 0 in
  for seed = 1 to 30 do
    let m = Poisson_model.create ~rng:(Prng.create seed) ~n:40 ~d:1 ~regenerate:false () in
    Poisson_model.warm_up m;
    let tr = Flood.run_poisson_discretized ~max_rounds:800 m in
    if tr.extinct then begin
      incr extinct;
      check_extinct_trace tr
    end
  done;
  check_bool "saw at least one extinction" true (!extinct >= 1)

let test_async_no_delivery_past_deadline () =
  (* The earliest possible delivery is at source time + 1, so with a
     deadline of 0.5 nobody besides the source can ever be informed. *)
  for seed = 1 to 5 do
    let m = pdgr ~seed ~n:150 () in
    let r = Flood.Async.run ~max_time:0.5 m in
    check_bool "not completed" true (not r.completed);
    check_int "only the source informed" 1 r.informed_total
  done

let test_coverage_nan_on_empty_population () =
  (* Regression: a mass-death step drives the population to 0 while the
     flood is in flight.  Coverage of an empty round must come back as a
     deliberate nan — never an inf or a junk ratio — and peak_coverage
     must skip the empty rounds instead of being poisoned by them. *)
  let g = Churnet_graph.Dyngraph.create ~rng:(Prng.create 71) ~d:2 ~regenerate:false () in
  let prev = ref (-1) in
  let mk i =
    let targets = if !prev < 0 then [||] else [| !prev |] in
    prev := Churnet_graph.Dyngraph.add_node_with_targets g ~birth:i ~targets
  in
  for i = 1 to 4 do
    mk i
  done;
  let round = ref 0 in
  let step () =
    incr round;
    if !round = 1 then mk 5 (* the source joins the end of the path *)
    else if !round = 3 then
      Array.iter (Churnet_graph.Dyngraph.kill g) (Churnet_graph.Dyngraph.alive_ids g)
  in
  let tr =
    Flood.run_custom ~graph:g ~step ~newest:(fun () -> !prev) ~default_max_rounds:20 ()
  in
  check_int "population emptied" 0 tr.final_population;
  check_int "no informed survivors" 0 tr.final_informed;
  check_bool "coverage of the empty round is nan" true
    (Float.is_nan (Flood.coverage_at tr tr.rounds));
  check_bool "peak coverage finite despite empty rounds" true
    (Float.is_finite tr.peak_coverage);
  check_bool "peak coverage in [0,1]" true (tr.peak_coverage >= 0. && tr.peak_coverage <= 1.)

let test_frontier_flood_equals_full_rescan () =
  (* The driver floods through the adaptive frontier kernel; the paper's
     definition is the full per-round rescan.  Replay the historical
     rescan loop (expand, churn, prune) on an equal-seeded model and
     demand the identical per-round trace, churn included. *)
  let module Dyngraph = Churnet_graph.Dyngraph in
  let module Bitset = Churnet_util.Bitset in
  let module Intvec = Churnet_util.Intvec in
  let reference_trace m max_rounds =
    let g = Streaming_model.graph m in
    Streaming_model.step m;
    let src = Streaming_model.newest m in
    let informed = Bitset.create (src + 64) in
    Bitset.add informed src;
    let scratch = Intvec.create ~capacity:64 () in
    let log = ref [ (1, Dyngraph.alive_count g) ] in
    let finished = ref false in
    let round = ref 0 in
    while (not !finished) && !round < max_rounds do
      incr round;
      Flood.expand_informed g informed scratch;
      Streaming_model.step m;
      let dead = ref [] in
      Bitset.iter (fun v -> if not (Dyngraph.is_alive g v) then dead := v :: !dead) informed;
      List.iter (Bitset.remove informed) !dead;
      let alive = Dyngraph.alive_count g in
      let inf = Bitset.cardinal informed in
      log := (inf, alive) :: !log;
      let newborn = Streaming_model.newest m in
      let newborn_informed =
        newborn < Bitset.capacity informed && Bitset.mem informed newborn
      in
      let uninformed = alive - inf in
      if uninformed = 0 || (uninformed = 1 && not newborn_informed) then finished := true
      else if inf = 0 then finished := true
    done;
    List.rev !log
  in
  let runs =
    [ (fun seed -> sdgr ~seed ~n:200 ()); (fun seed -> sdg ~seed ~n:200 ~d:3 ()) ]
  in
  List.iteri
    (fun kind make ->
      for seed = 101 to 103 do
        let tr = Flood.run_streaming ~max_rounds:150 (make seed) in
        let got =
          Array.to_list
            (Array.mapi
               (fun i inf -> (inf, tr.population_per_round.(i)))
               tr.informed_per_round)
        in
        let expected = reference_trace (make seed) 150 in
        if got <> expected then
          Alcotest.failf "model %d seed %d: frontier trace diverged from full rescan" kind
            seed
      done)
    runs

let test_async_completion_time_from_completing_event () =
  (* completion_time is stamped by the event that completed coverage, so
     it is at least one delivery delay and never past the deadline. *)
  let max_time = 100. in
  for seed = 28 to 32 do
    let m = pdgr ~seed ~n:200 () in
    let r = Flood.Async.run ~max_time m in
    if r.completed then
      match r.completion_time with
      | None -> Alcotest.fail "completed without completion time"
      | Some t ->
          check_bool "at least one delivery delay" true (t >= 1.);
          check_bool "within deadline" true (t <= max_time)
  done

let suite =
  suite
  @ [
      ("max_rounds respected", `Quick, test_max_rounds_respected);
      ("discretized max_rounds", `Quick, test_discretized_max_rounds);
      ("async max_time", `Quick, test_async_max_time_respected);
      ("population constant during flood", `Quick, test_streaming_population_constant_during_flood);
      ("streaming extinction trace", `Slow, test_streaming_extinction_trace);
      ("discretized extinction trace", `Slow, test_discretized_extinction_trace);
      ("async: no delivery past deadline", `Quick, test_async_no_delivery_past_deadline);
      ("coverage nan on empty population", `Quick, test_coverage_nan_on_empty_population);
      ("frontier flood = full rescan", `Quick, test_frontier_flood_equals_full_rescan);
      ("async: completion time from completing event", `Quick,
       test_async_completion_time_from_completing_event);
    ]
