(* An independent, deliberately naive re-implementation of the
   no-regeneration dynamic graph, used as a differential-testing oracle
   for Dyngraph (test_differential.ml).

   To make runs bit-for-bit comparable it consumes randomness exactly the
   way Dyngraph does: a dense alive array with append-on-birth and
   swap-remove-on-death, and per-slot rejection sampling
   (Prng.int rng alive_len, retry while the sample equals the newborn).
   Everything else — edge bookkeeping in particular — is implemented
   differently (a flat list of directed edges, no slots, no in-edge
   multisets), so agreement between the two implementations exercises the
   part of Dyngraph most likely to harbour bugs. *)

module Prng = Churnet_util.Prng

type t = {
  d : int;
  rng : Prng.t;
  mutable alive : int array;
  mutable alive_len : int;
  mutable edges : (int * int) list; (* directed src -> dst, multiset *)
  births : (int, int) Hashtbl.t;
  mutable next_id : int;
}

let create ~rng ~d =
  {
    d;
    rng;
    alive = Array.make 16 (-1);
    alive_len = 0;
    edges = [];
    births = Hashtbl.create 64;
    next_id = 0;
  }

let alive_count t = t.alive_len

let is_alive t id =
  let found = ref false in
  for i = 0 to t.alive_len - 1 do
    if t.alive.(i) = id then found := true
  done;
  !found

let push t id =
  if t.alive_len = Array.length t.alive then begin
    let bigger = Array.make (2 * t.alive_len) (-1) in
    Array.blit t.alive 0 bigger 0 t.alive_len;
    t.alive <- bigger
  end;
  t.alive.(t.alive_len) <- id;
  t.alive_len <- t.alive_len + 1

let add_node t ~birth =
  let id = t.next_id in
  t.next_id <- id + 1;
  (* Mirror Dyngraph's sampling *before* the newborn joins the array. *)
  for _ = 1 to t.d do
    if t.alive_len > 0 && not (t.alive_len = 1 && t.alive.(0) = id) then begin
      let rec go () =
        let cand = t.alive.(Prng.int t.rng t.alive_len) in
        if cand = id then go () else cand
      in
      let target = go () in
      t.edges <- (id, target) :: t.edges
    end
  done;
  Hashtbl.replace t.births id birth;
  push t id;
  id

let kill t id =
  (* swap-remove, same as Dyngraph *)
  let pos = ref (-1) in
  for i = 0 to t.alive_len - 1 do
    if t.alive.(i) = id then pos := i
  done;
  if !pos < 0 then invalid_arg "Reference_graph.kill: not alive";
  let last = t.alive_len - 1 in
  t.alive.(!pos) <- t.alive.(last);
  t.alive_len <- last;
  Hashtbl.remove t.births id;
  t.edges <- List.filter (fun (a, b) -> a <> id && b <> id) t.edges

(* Distinct undirected neighbor sets per alive node, as sorted arrays —
   comparable to Snapshot adjacency. *)
let snapshot t =
  let ids = Array.sub t.alive 0 t.alive_len in
  Array.sort Int.compare ids;
  let index_of = Hashtbl.create 64 in
  Array.iteri (fun i id -> Hashtbl.replace index_of id i) ids;
  let n = Array.length ids in
  let sets = Array.make n [] in
  List.iter
    (fun (a, b) ->
      match (Hashtbl.find_opt index_of a, Hashtbl.find_opt index_of b) with
      | Some ia, Some ib ->
          sets.(ia) <- ib :: sets.(ia);
          sets.(ib) <- ia :: sets.(ib)
      | _ -> ())
    t.edges;
  let adj = Array.map (fun l -> Array.of_list (List.sort_uniq Int.compare l)) sets in
  let births = Array.map (fun id -> Hashtbl.find t.births id) ids in
  Churnet_graph.Snapshot.make ~ids ~births ~adj ~out_deg:(Array.make n 0)
