(* Tests for Bounds: the paper's closed-form bounds and the numeric
   verification of its calculus steps. *)
open Churnet_core
module Bounds = Churnet_core.Bounds

let check_bool = Alcotest.(check bool)
let close ?(eps = 1e-9) msg a b = check_bool msg true (Float.abs (a -. b) < eps)

let test_headline_formulas () =
  close "sdg isolated" (1000. *. exp (-6.) /. 6.) (Bounds.isolated_lower_sdg ~n:1000 ~d:3);
  close "pdg isolated" (1000. *. exp (-6.) /. 18.) (Bounds.isolated_lower_pdg ~n:1000 ~d:3);
  close "sdg coverage" (1. -. exp (-1.)) (Bounds.coverage_target_sdg ~d:10);
  close "pdg coverage" (1. -. exp (-1.)) (Bounds.coverage_target_pdg ~d:20);
  close "onion bound clamps" 0. (Bounds.onion_success_lower ~d:10)

let test_bounds_match_isolated_module () =
  close "sdg agrees" (Isolated.paper_bound_sdg ~n:500 ~d:4) (Bounds.isolated_lower_sdg ~n:500 ~d:4);
  close "pdg agrees" (Isolated.paper_bound_pdg ~n:500 ~d:4) (Bounds.isolated_lower_pdg ~n:500 ~d:4)

let test_edge_prob_formulas () =
  (* age 1 (k = 0): exactly 1/(n-1). *)
  close "age-1 edge prob" (1. /. 999.) (Bounds.edge_prob_older_sdgr ~n:1000 ~age:1);
  (* age n: about e/(n-1). *)
  let v = Bounds.edge_prob_older_sdgr ~n:1000 ~age:1000 in
  check_bool "age-n approx e/(n-1)" true
    (Float.abs (v -. (Float.exp 1. /. 999.)) < 0.0002);
  close "pdgr bound at age 0" (1. /. 800.) (Bounds.edge_prob_older_pdgr_bound ~n:1000 ~age_rounds:0)

let test_claim_3_11 () =
  (* The paper asserts product >= 1 - 4e^{-d/100} for d >= 200. *)
  List.iter
    (fun d ->
      check_bool
        (Printf.sprintf "claim 3.11 at d=%d" d)
        true
        (Bounds.claim_3_11_product ~d >= Bounds.onion_success_lower ~d))
    [ 200; 250; 400; 800 ];
  (* Monotone in d. *)
  check_bool "monotone" true
    (Bounds.claim_3_11_product ~d:400 > Bounds.claim_3_11_product ~d:200);
  (* Tiny d collapses the product. *)
  check_bool "tiny d collapses" true (Bounds.claim_3_11_product ~d:10 < 0.5)

let test_log_binomial () =
  close ~eps:1e-9 "C(5,2)" (log 10.) (Bounds.log_binomial 5 2);
  close ~eps:1e-9 "C(n,0)" 0. (Bounds.log_binomial 7 0);
  close ~eps:1e-9 "C(n,n)" 0. (Bounds.log_binomial 7 7);
  check_bool "out of range" true (Bounds.log_binomial 5 6 = neg_infinity);
  (* symmetry *)
  close ~eps:1e-6 "symmetry" (Bounds.log_binomial 100 30) (Bounds.log_binomial 100 70)

let test_union_bound_static () =
  (* Lemma B.1: <= n^{-(d-2)} for d >= 3; diverges for d = 2. *)
  let n = 1000 in
  List.iter
    (fun d ->
      let v = Bounds.union_bound_static ~n ~d in
      check_bool
        (Printf.sprintf "static bound d=%d" d)
        true
        (v <= float_of_int n ** float_of_int (-(d - 2))))
    [ 3; 4; 5 ];
  check_bool "d=2 diverges" true (Bounds.union_bound_static ~n ~d:2 > 1.)

let test_union_bound_sdgr_small () =
  let n = 1000 in
  check_bool "d=21 below 1/n^4" true
    (Bounds.union_bound_sdgr_small ~n ~d:21 <= float_of_int n ** -4.);
  (* Larger d only helps. *)
  check_bool "monotone in d" true
    (Bounds.union_bound_sdgr_small ~n ~d:30 <= Bounds.union_bound_sdgr_small ~n ~d:21)

let test_union_bound_sdg_large () =
  let n = 1000 in
  check_bool "d=20 below 1/n^4" true
    (Bounds.union_bound_sdg_large ~n ~d:20 <= float_of_int n ** -4.)

let test_qm_total_mass () =
  let n = 10000 in
  (* d >= 30, k <= n/14: mass <= 1 (the paper's requirement). *)
  List.iter
    (fun (k, d) ->
      check_bool
        (Printf.sprintf "qm mass k=%d d=%d" k d)
        true
        (Bounds.qm_total_mass ~n ~k ~d <= 1.))
    [ (n / 14, 30); (n / 14, 40); (n / 20, 30); (n / 100, 30) ];
  (* The bound is tight at the boundary: at k = n/14, d = 30 the mass is
     close to 1 (paper computes ~ 1), confirming the constants matter. *)
  let boundary = Bounds.qm_total_mass ~n ~k:(n / 14) ~d:30 in
  check_bool "boundary mass near 1" true (boundary > 0.5 && boundary <= 1.)

let suite =
  [
    ("headline formulas", `Quick, test_headline_formulas);
    ("matches Isolated module", `Quick, test_bounds_match_isolated_module);
    ("edge prob formulas", `Quick, test_edge_prob_formulas);
    ("claim 3.11 product", `Quick, test_claim_3_11);
    ("log binomial", `Quick, test_log_binomial);
    ("union bound static (Lemma B.1)", `Quick, test_union_bound_static);
    ("union bound SDGR small (Lemma 6.4)", `Quick, test_union_bound_sdgr_small);
    ("union bound SDG large (Lemma 3.6)", `Quick, test_union_bound_sdg_large);
    ("q_m total mass (Section 4.3.1)", `Quick, test_qm_total_mass);
  ]
