open Churnet_graph
module Prng = Churnet_util.Prng
module Bitset = Churnet_util.Bitset

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fresh ?(seed = 7) ?(d = 3) ?(regenerate = false) () =
  Dyngraph.create ~rng:(Prng.create seed) ~d ~regenerate ()

let assert_invariants g =
  match Dyngraph.check_invariants g with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariant violated: %s" e

(* --- Dyngraph --- *)

let test_empty () =
  let g = fresh () in
  check_int "no nodes" 0 (Dyngraph.alive_count g);
  check_bool "oldest none" true (Dyngraph.oldest_alive g = None);
  assert_invariants g

let test_first_node_has_no_edges () =
  let g = fresh () in
  let id = Dyngraph.add_node g ~birth:1 in
  check_int "alive" 1 (Dyngraph.alive_count g);
  check_int "no out edges" 0 (Dyngraph.out_degree g id);
  check_int "degree 0" 0 (Dyngraph.degree g id);
  assert_invariants g

let test_second_node_connects_to_first () =
  let g = fresh ~d:3 () in
  let a = Dyngraph.add_node g ~birth:1 in
  let b = Dyngraph.add_node g ~birth:2 in
  check_int "b has 3 out-slots filled" 3 (Dyngraph.out_degree g b);
  check_bool "all target a" true (List.for_all (fun t -> t = a) (Dyngraph.out_targets g b));
  check_int "a degree 1 (distinct)" 1 (Dyngraph.degree g a);
  assert_invariants g

let test_no_self_loops () =
  let g = fresh ~d:4 () in
  for i = 1 to 50 do
    let id = Dyngraph.add_node g ~birth:i in
    check_bool "no self target" true
      (List.for_all (fun t -> t <> id) (Dyngraph.out_targets g id))
  done;
  assert_invariants g

let test_kill_removes_edges () =
  let g = fresh ~d:2 () in
  let a = Dyngraph.add_node g ~birth:1 in
  let b = Dyngraph.add_node g ~birth:2 in
  Dyngraph.kill g b;
  check_int "a isolated again" 0 (Dyngraph.degree g a);
  check_bool "b gone" false (Dyngraph.is_alive g b);
  assert_invariants g

let test_kill_dead_raises () =
  let g = fresh () in
  let a = Dyngraph.add_node g ~birth:1 in
  Dyngraph.kill g a;
  check_bool "killing dead raises" true
    (try
       Dyngraph.kill g a;
       false
     with Invalid_argument _ -> true)

let test_regeneration_keeps_out_degree () =
  let g = fresh ~d:3 ~regenerate:true () in
  for i = 1 to 30 do
    ignore (Dyngraph.add_node g ~birth:i)
  done;
  (* Kill several nodes; every survivor born when the graph was already
     populated must keep out-degree 3. *)
  for _ = 1 to 10 do
    let victim = Dyngraph.random_alive g in
    Dyngraph.kill g victim
  done;
  Dyngraph.iter_alive g (fun id ->
      if id >= 4 then check_int "out-degree preserved" 3 (Dyngraph.out_degree g id));
  assert_invariants g

let test_no_regeneration_loses_edges () =
  let g = fresh ~d:2 ~regenerate:false () in
  let a = Dyngraph.add_node g ~birth:1 in
  let b = Dyngraph.add_node g ~birth:2 in
  let c = Dyngraph.add_node g ~birth:3 in
  ignore c;
  Dyngraph.kill g a;
  (* b pointed only at a; without regeneration its out-degree drops. *)
  check_bool "b lost out-edges" true (Dyngraph.out_degree g b < 2);
  assert_invariants g

let test_random_churn_invariants_no_regen () =
  let g = fresh ~seed:11 ~d:4 ~regenerate:false () in
  let rng = Prng.create 99 in
  for i = 1 to 300 do
    if Dyngraph.alive_count g > 0 && Prng.bernoulli rng 0.45 then
      Dyngraph.kill g (Dyngraph.random_alive g)
    else ignore (Dyngraph.add_node g ~birth:i)
  done;
  assert_invariants g

let test_random_churn_invariants_regen () =
  let g = fresh ~seed:13 ~d:4 ~regenerate:true () in
  let rng = Prng.create 101 in
  for i = 1 to 300 do
    if Dyngraph.alive_count g > 0 && Prng.bernoulli rng 0.45 then
      Dyngraph.kill g (Dyngraph.random_alive g)
    else ignore (Dyngraph.add_node g ~birth:i)
  done;
  assert_invariants g

let test_neighbors_symmetry () =
  let g = fresh ~seed:17 ~d:3 () in
  for i = 1 to 60 do
    ignore (Dyngraph.add_node g ~birth:i)
  done;
  Dyngraph.iter_alive g (fun u ->
      List.iter
        (fun v ->
          check_bool "symmetric neighborhood" true (List.mem u (Dyngraph.neighbors g v)))
        (Dyngraph.neighbors g u))

let test_edge_count_matches_out_degrees () =
  let g = fresh ~seed:19 ~d:5 () in
  for i = 1 to 50 do
    ignore (Dyngraph.add_node g ~birth:i)
  done;
  let sum = ref 0 in
  Dyngraph.iter_alive g (fun id -> sum := !sum + Dyngraph.out_degree g id);
  check_int "edge count" !sum (Dyngraph.edge_count g)

let test_oldest_alive () =
  let g = fresh () in
  let a = Dyngraph.add_node g ~birth:1 in
  let _b = Dyngraph.add_node g ~birth:2 in
  check_bool "oldest is a" true (Dyngraph.oldest_alive g = Some a);
  Dyngraph.kill g a;
  check_bool "oldest moves on" true (Dyngraph.oldest_alive g <> Some a)

let test_edge_hook_on_birth () =
  let g = fresh ~d:3 () in
  ignore (Dyngraph.add_node g ~birth:1);
  let fired = ref 0 in
  Dyngraph.set_edge_hook g (Some (fun ~src:_ ~dst:_ -> incr fired));
  ignore (Dyngraph.add_node g ~birth:2);
  check_int "3 edges announced" 3 !fired

let test_edge_hook_on_regeneration () =
  let g = fresh ~d:2 ~regenerate:true () in
  for i = 1 to 10 do
    ignore (Dyngraph.add_node g ~birth:i)
  done;
  let fired = ref 0 in
  Dyngraph.set_edge_hook g (Some (fun ~src:_ ~dst:_ -> incr fired));
  let victim = Dyngraph.random_alive g in
  let lost_slots =
    (* Count slots across survivors pointing at the victim. *)
    let count = ref 0 in
    Dyngraph.iter_alive g (fun u ->
        if u <> victim then
          List.iter (fun t -> if t = victim then incr count) (Dyngraph.out_targets g u));
    !count
  in
  Dyngraph.kill g victim;
  check_int "regenerated edges announced" lost_slots !fired

let test_death_hook () =
  let g = fresh ~d:2 () in
  let a = Dyngraph.add_node g ~birth:1 in
  let seen = ref [] in
  Dyngraph.set_death_hook g (Some (fun id -> seen := id :: !seen));
  Dyngraph.kill g a;
  Alcotest.(check (list int)) "death announced" [ a ] !seen

let test_connect () =
  let g = fresh ~d:2 () in
  let a = Dyngraph.add_node g ~birth:1 in
  let b = Dyngraph.add_node g ~birth:2 in
  let c = Dyngraph.add_node g ~birth:3 in
  ignore c;
  (* a was born first so has empty slots. *)
  check_bool "connect succeeds" true (Dyngraph.connect g ~src:a ~dst:b);
  check_bool "edge exists" true (List.mem b (Dyngraph.out_targets g a));
  check_bool "self connect fails" false (Dyngraph.connect g ~src:a ~dst:a);
  assert_invariants g

let test_connect_full_slots_fails () =
  let g = fresh ~d:1 () in
  let _a = Dyngraph.add_node g ~birth:1 in
  let b = Dyngraph.add_node g ~birth:2 in
  let c = Dyngraph.add_node g ~birth:3 in
  (* b's single slot is full (points at a). *)
  check_bool "no empty slot" false (Dyngraph.connect g ~src:b ~dst:c)

let test_add_node_with_targets () =
  let g = fresh ~d:3 () in
  let a = Dyngraph.add_node g ~birth:1 in
  let b = Dyngraph.add_node g ~birth:2 in
  let c = Dyngraph.add_node_with_targets g ~birth:3 ~targets:[| a; b; a; b |] in
  check_int "only d targets used" 3 (Dyngraph.out_degree g c);
  check_bool "targets respected" true
    (List.for_all (fun t -> t = a || t = b) (Dyngraph.out_targets g c));
  assert_invariants g

let test_add_node_with_dead_targets_skipped () =
  let g = fresh ~d:3 () in
  let a = Dyngraph.add_node g ~birth:1 in
  let b = Dyngraph.add_node g ~birth:2 in
  Dyngraph.kill g a;
  let c = Dyngraph.add_node_with_targets g ~birth:3 ~targets:[| a; b |] in
  check_int "dead target skipped" 1 (Dyngraph.out_degree g c);
  assert_invariants g

let test_in_degree () =
  let g = fresh ~d:2 () in
  let a = Dyngraph.add_node g ~birth:1 in
  ignore (Dyngraph.add_node g ~birth:2);
  (* second node's 2 slots both point at a -> distinct in-degree 1 *)
  check_int "distinct in-degree" 1 (Dyngraph.in_degree g a)

let test_peek_next_id () =
  let g = fresh () in
  let next = Dyngraph.peek_next_id g in
  let id = Dyngraph.add_node g ~birth:1 in
  check_int "peek matches" next id

(* --- Snapshot --- *)

let path_graph n = Snapshot.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let cycle_graph n =
  Snapshot.of_edges ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let test_snapshot_of_edges () =
  let s = path_graph 4 in
  check_int "n" 4 (Snapshot.n s);
  check_int "edges" 3 (Snapshot.edge_count s);
  check_int "degree of end" 1 (Snapshot.degree s 0);
  check_int "degree of middle" 2 (Snapshot.degree s 1)

let test_snapshot_bfs () =
  let s = path_graph 5 in
  let dist = Snapshot.bfs s 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4 |] dist

let test_snapshot_bfs_unreachable () =
  let s = Snapshot.of_edges ~n:4 [ (0, 1) ] in
  let dist = Snapshot.bfs s 0 in
  check_int "unreachable" (-1) dist.(3)

let test_snapshot_components () =
  let s = Snapshot.of_edges ~n:6 [ (0, 1); (1, 2); (3, 4) ] in
  let _, k = Snapshot.components s in
  check_int "3 components" 3 k;
  check_int "largest" 3 (Snapshot.largest_component s)

let test_snapshot_isolated () =
  let s = Snapshot.of_edges ~n:4 [ (0, 1) ] in
  Alcotest.(check (list int)) "isolated" [ 2; 3 ] (Snapshot.isolated s)

let test_boundary_identities () =
  let s = cycle_graph 8 in
  let set = Snapshot.set_of_indices s [| 0; 1; 2 |] in
  let b = Snapshot.boundary s set in
  Array.sort Int.compare b;
  Alcotest.(check (array int)) "cycle arc boundary" [| 3; 7 |] b;
  Alcotest.(check int) "boundary size" 2 (Snapshot.boundary_size s set);
  (* boundary of everything is empty *)
  let all = Snapshot.set_of_indices s (Array.init 8 Fun.id) in
  Alcotest.(check int) "full set boundary" 0 (Snapshot.boundary_size s all)

let test_expansion_values () =
  let s = cycle_graph 10 in
  let arc = Snapshot.set_of_indices s [| 0; 1; 2; 3; 4 |] in
  Alcotest.(check (float 1e-9)) "arc expansion 2/5" 0.4 (Snapshot.expansion s arc);
  let single = Snapshot.set_of_indices s [| 0 |] in
  Alcotest.(check (float 1e-9)) "singleton expansion = degree" 2.0
    (Snapshot.expansion s single)

let test_expansion_empty_nan () =
  let s = cycle_graph 4 in
  let empty = Bitset.create (Snapshot.n s) in
  check_bool "empty nan" true (Float.is_nan (Snapshot.expansion s empty))

let test_degree_histogram () =
  let s = path_graph 4 in
  let h = Snapshot.degree_histogram s in
  Alcotest.(check (array int)) "histogram" [| 0; 2; 2 |] h

let test_degree_histogram_edge_cases () =
  (* Empty graph: no degrees at all, but the histogram still has its
     degree-0 bucket. *)
  let empty = Snapshot.of_edges ~n:0 [] in
  Alcotest.(check (array int)) "empty graph" [| 0 |] (Snapshot.degree_histogram empty);
  (* All-isolated population: everyone lands in the one bucket. *)
  let isolated = Snapshot.of_edges ~n:5 [] in
  Alcotest.(check (array int))
    "all isolated" [| 5 |]
    (Snapshot.degree_histogram isolated);
  (* Single max-degree hub: the histogram stretches to the hub's degree
     with empty buckets in between. *)
  let star = Snapshot.of_edges ~n:6 [ (0, 1); (0, 2); (0, 3); (0, 4); (0, 5) ] in
  Alcotest.(check (array int))
    "star hub" [| 0; 5; 0; 0; 0; 1 |]
    (Snapshot.degree_histogram star)

let test_snapshot_from_dyngraph_symmetry () =
  let g = fresh ~seed:23 ~d:3 ~regenerate:true () in
  for i = 1 to 80 do
    ignore (Dyngraph.add_node g ~birth:i)
  done;
  for _ = 1 to 20 do
    Dyngraph.kill g (Dyngraph.random_alive g)
  done;
  let s = Dyngraph.snapshot g in
  check_int "size matches" (Dyngraph.alive_count g) (Snapshot.n s);
  for u = 0 to Snapshot.n s - 1 do
    Array.iter
      (fun v ->
        check_bool "adjacency symmetric" true (Array.mem u (Snapshot.neighbors s v)))
      (Snapshot.neighbors s u)
  done

let test_snapshot_age_order () =
  let g = fresh ~seed:29 ~d:2 () in
  for i = 1 to 20 do
    ignore (Dyngraph.add_node g ~birth:i)
  done;
  let s = Dyngraph.snapshot g in
  let births = Array.init (Snapshot.n s) (Snapshot.birth_of_index s) in
  let sorted = Array.copy births in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "index 0 = oldest" sorted births

let test_snapshot_index_mapping () =
  let g = fresh ~seed:31 ~d:2 () in
  let ids = Array.init 10 (fun i -> Dyngraph.add_node g ~birth:(i + 1)) in
  let s = Dyngraph.snapshot g in
  Array.iter
    (fun id ->
      match Snapshot.index_of_id s id with
      | Some i -> check_int "roundtrip" id (Snapshot.id_of_index s i)
      | None -> Alcotest.fail "id missing from snapshot")
    ids

(* Regression for the alive-array swap-remove corner: killing the node
   that sits in the *last* position removes it without corrupting the
   dense array (the "moved" element is the victim itself). *)
let test_kill_last_alive_position () =
  let g = fresh ~d:2 () in
  let a = Dyngraph.add_node g ~birth:1 in
  let b = Dyngraph.add_node g ~birth:2 in
  let c = Dyngraph.add_node g ~birth:3 in
  (* c was pushed last, so it occupies the final alive position. *)
  Dyngraph.kill g c;
  check_bool "victim gone" false (Dyngraph.is_alive g c);
  check_int "two survivors" 2 (Dyngraph.alive_count g);
  check_bool "a still alive" true (Dyngraph.is_alive g a);
  check_bool "b still alive" true (Dyngraph.is_alive g b);
  let seen = ref [] in
  Dyngraph.iter_alive g (fun id -> seen := id :: !seen);
  Alcotest.(check (list int))
    "alive array holds exactly the survivors" [ a; b ]
    (List.sort Int.compare !seen);
  assert_invariants g;
  (* Same corner via the churn path: repeatedly kill the newest node. *)
  let g = fresh ~d:3 ~regenerate:true () in
  for i = 1 to 10 do
    ignore (Dyngraph.add_node g ~birth:i)
  done;
  for _ = 1 to 5 do
    match Dyngraph.newest_alive g with
    | Some id -> Dyngraph.kill g id
    | None -> Alcotest.fail "newest_alive empty on populated graph"
  done;
  check_int "five survivors" 5 (Dyngraph.alive_count g);
  assert_invariants g

(* Slot recycling across generations: kills free arena slots, rebirths
   reuse them, and nothing leaks between occupants — ids stay globally
   unique, hooks report the original (external) ids, and the alive
   bookkeeping stays exact. *)
let test_slot_recycling_generations () =
  let g = fresh ~seed:43 ~d:3 ~regenerate:true () in
  let born = ref [] and died = ref [] in
  Dyngraph.set_birth_hook g (Some (fun id ~birth:_ -> born := id :: !born));
  Dyngraph.set_death_hook g (Some (fun id -> died := id :: !died));
  let all_ids = Hashtbl.create 256 in
  let record id =
    check_bool "id never reused" false (Hashtbl.mem all_ids id);
    Hashtbl.replace all_ids id ()
  in
  for i = 1 to 20 do
    record (Dyngraph.add_node g ~birth:i)
  done;
  (* Three full generations: each kills every current node (freeing all
     slots) and then repopulates, forcing the free list to recycle. *)
  for gen = 1 to 3 do
    let victims = Array.to_list (Dyngraph.alive_ids g) in
    List.iter (fun id -> Dyngraph.kill g id) victims;
    check_int "graph emptied" 0 (Dyngraph.alive_count g);
    List.iter
      (fun id -> check_bool "killed id stays dead" false (Dyngraph.is_alive g id))
      victims;
    for i = 1 to 20 do
      record (Dyngraph.add_node g ~birth:((100 * gen) + i))
    done;
    check_int "repopulated" 20 (Dyngraph.alive_count g);
    assert_invariants g
  done;
  (* Hooks saw exactly the external ids we recorded, each once. *)
  let sorted l = List.sort Int.compare l in
  let every_id = sorted (Hashtbl.fold (fun id () acc -> id :: acc) all_ids []) in
  Alcotest.(check (list int)) "birth hook ids = allocated ids" every_id (sorted !born);
  let expected_deaths =
    List.filter (fun id -> not (Dyngraph.is_alive g id)) every_id
  in
  Alcotest.(check (list int)) "death hook ids = killed ids" expected_deaths
    (sorted !died);
  (* iter_alive agrees with is_alive after all the recycling. *)
  let from_iter = ref [] in
  Dyngraph.iter_alive g (fun id -> from_iter := id :: !from_iter);
  Alcotest.(check (list int))
    "iter_alive = { id | is_alive }"
    (List.filter (Dyngraph.is_alive g) every_id)
    (sorted !from_iter)

let test_newest_alive () =
  let g = fresh ~d:2 () in
  check_bool "empty -> none" true (Dyngraph.newest_alive g = None);
  let a = Dyngraph.add_node g ~birth:1 in
  let b = Dyngraph.add_node g ~birth:2 in
  check_bool "newest is b" true (Dyngraph.newest_alive g = Some b);
  Dyngraph.kill g b;
  check_bool "falls back to a" true (Dyngraph.newest_alive g = Some a);
  let c = Dyngraph.add_node g ~birth:3 in
  check_bool "advances to c" true (Dyngraph.newest_alive g = Some c);
  Dyngraph.kill g a;
  check_bool "unaffected by old deaths" true (Dyngraph.newest_alive g = Some c)

(* Exercise the non-dense id path of Snapshot.index_of_id: killing
   interior nodes leaves id gaps, forcing the binary search. *)
let test_snapshot_index_mapping_with_gaps () =
  let g = fresh ~seed:37 ~d:2 ~regenerate:true () in
  let ids = Array.init 20 (fun i -> Dyngraph.add_node g ~birth:(i + 1)) in
  Array.iteri (fun i id -> if i mod 3 = 1 then Dyngraph.kill g id) ids;
  let s = Dyngraph.snapshot g in
  Array.iteri
    (fun i id ->
      match Snapshot.index_of_id s id with
      | Some k ->
          check_bool "only alive ids resolve" true (i mod 3 <> 1);
          check_int "roundtrip" id (Snapshot.id_of_index s k)
      | None -> check_bool "dead ids resolve to None" true (i mod 3 = 1))
    ids;
  check_bool "unknown id" true (Snapshot.index_of_id s 10_000 = None)

let qcheck_props =
  [
    QCheck.Test.make ~name:"dyngraph invariants under arbitrary churn" ~count:60
      QCheck.(pair small_int (list_of_size (Gen.int_range 10 120) bool))
      (fun (seed, script) ->
        let g = fresh ~seed ~d:3 ~regenerate:(seed mod 2 = 0) () in
        List.iteri
          (fun i kill ->
            if kill && Dyngraph.alive_count g > 0 then
              Dyngraph.kill g (Dyngraph.random_alive g)
            else ignore (Dyngraph.add_node g ~birth:i))
          script;
        Dyngraph.check_invariants g = Ok ());
    QCheck.Test.make ~name:"snapshot boundary disjoint from set" ~count:60
      QCheck.small_int
      (fun seed ->
        let g = fresh ~seed ~d:3 () in
        for i = 1 to 40 do
          ignore (Dyngraph.add_node g ~birth:i)
        done;
        let s = Dyngraph.snapshot g in
        let rng = Prng.create seed in
        let size = 1 + Prng.int rng (Snapshot.n s / 2) in
        let idx = Prng.sample_without_replacement rng size (Snapshot.n s) in
        let set = Snapshot.set_of_indices s idx in
        let b = Snapshot.boundary s set in
        Array.for_all (fun v -> not (Bitset.mem set v)) b);
  ]

let suite =
  [
    ("empty graph", `Quick, test_empty);
    ("first node isolated", `Quick, test_first_node_has_no_edges);
    ("second node connects", `Quick, test_second_node_connects_to_first);
    ("no self loops", `Quick, test_no_self_loops);
    ("kill removes edges", `Quick, test_kill_removes_edges);
    ("kill dead raises", `Quick, test_kill_dead_raises);
    ("regeneration keeps out-degree", `Quick, test_regeneration_keeps_out_degree);
    ("no regeneration loses edges", `Quick, test_no_regeneration_loses_edges);
    ("churn invariants (no regen)", `Quick, test_random_churn_invariants_no_regen);
    ("churn invariants (regen)", `Quick, test_random_churn_invariants_regen);
    ("neighbor symmetry", `Quick, test_neighbors_symmetry);
    ("edge count", `Quick, test_edge_count_matches_out_degrees);
    ("oldest alive", `Quick, test_oldest_alive);
    ("edge hook on birth", `Quick, test_edge_hook_on_birth);
    ("edge hook on regeneration", `Quick, test_edge_hook_on_regeneration);
    ("death hook", `Quick, test_death_hook);
    ("connect", `Quick, test_connect);
    ("connect full fails", `Quick, test_connect_full_slots_fails);
    ("targeted birth", `Quick, test_add_node_with_targets);
    ("targeted birth skips dead", `Quick, test_add_node_with_dead_targets_skipped);
    ("in-degree", `Quick, test_in_degree);
    ("peek next id", `Quick, test_peek_next_id);
    ("kill last alive position", `Quick, test_kill_last_alive_position);
    ("slot recycling generations", `Quick, test_slot_recycling_generations);
    ("newest alive", `Quick, test_newest_alive);
    ("snapshot index mapping with gaps", `Quick, test_snapshot_index_mapping_with_gaps);
    ("snapshot of_edges", `Quick, test_snapshot_of_edges);
    ("snapshot bfs", `Quick, test_snapshot_bfs);
    ("snapshot bfs unreachable", `Quick, test_snapshot_bfs_unreachable);
    ("snapshot components", `Quick, test_snapshot_components);
    ("snapshot isolated", `Quick, test_snapshot_isolated);
    ("boundary identities", `Quick, test_boundary_identities);
    ("expansion values", `Quick, test_expansion_values);
    ("expansion empty nan", `Quick, test_expansion_empty_nan);
    ("degree histogram", `Quick, test_degree_histogram);
    ("degree histogram edge cases", `Quick, test_degree_histogram_edge_cases);
    ("dyngraph snapshot symmetry", `Quick, test_snapshot_from_dyngraph_symmetry);
    ("snapshot age order", `Quick, test_snapshot_age_order);
    ("snapshot index mapping", `Quick, test_snapshot_index_mapping);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~verbose:false) qcheck_props

let test_to_dot () =
  let s = cycle_graph 4 in
  let dot = Snapshot.to_dot ~name:"g" ~highlight:[ 0 ] s in
  let contains needle hay =
    let found = ref false in
    for i = 0 to String.length hay - String.length needle do
      if String.sub hay i (String.length needle) = needle then found := true
    done;
    !found
  in
  check_bool "graph header" true (contains "graph g {" dot);
  check_bool "highlight" true (contains "fillcolor=red" dot);
  check_bool "edge rendered" true (contains "n0 -- n1;" dot);
  (* Undirected edges appear once: 4 edges for C4. *)
  let count needle hay =
    let c = ref 0 in
    for i = 0 to String.length hay - String.length needle do
      if String.sub hay i (String.length needle) = needle then incr c
    done;
    !c
  in
  check_int "4 edges" 4 (count " -- " dot)

let suite = suite @ [ ("snapshot to_dot", `Quick, test_to_dot) ]
