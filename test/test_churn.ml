open Churnet_churn
module Prng = Churnet_util.Prng
module Stats = Churnet_util.Stats

let check_bool = Alcotest.(check bool)

let test_create_invalid () =
  Alcotest.check_raises "n <= 0"
    (Invalid_argument "Poisson_churn.create: n must be positive") (fun () ->
      ignore (Poisson_churn.create ~rng:(Prng.create 0xCAFE) ~n:0 ()))

let test_rates () =
  let c = Poisson_churn.create ~rng:(Prng.create 0xCAFE) ~n:100 () in
  Alcotest.(check (float 1e-12)) "lambda" 1.0 (Poisson_churn.lambda c);
  Alcotest.(check (float 1e-12)) "mu" 0.01 (Poisson_churn.mu c)

let test_empty_population_always_birth () =
  let c = Poisson_churn.create ~rng:(Prng.create 1) ~n:50 () in
  for _ = 1 to 100 do
    match Poisson_churn.decide c ~alive:0 with
    | Poisson_churn.Birth, dt -> check_bool "positive dt" true (dt > 0.)
    | Poisson_churn.Death, _ -> Alcotest.fail "death with empty population"
  done

let test_counters () =
  let c = Poisson_churn.create ~rng:(Prng.create 2) ~n:50 () in
  for _ = 1 to 1000 do
    ignore (Poisson_churn.decide c ~alive:50)
  done;
  Alcotest.(check int) "round counter" 1000 (Poisson_churn.round c);
  Alcotest.(check int) "births+deaths" 1000 (Poisson_churn.births c + Poisson_churn.deaths c);
  check_bool "time advanced" true (Poisson_churn.time c > 0.)

let test_event_balance_at_stationarity () =
  (* Lemma 4.7: with |N| = n the next event is a death with probability in
     [0.47, 0.53] (it is exactly 1/2 at N = n). *)
  let c = Poisson_churn.create ~rng:(Prng.create 3) ~n:1000 () in
  let deaths = ref 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    match Poisson_churn.decide c ~alive:1000 with
    | Poisson_churn.Death, _ -> incr deaths
    | Poisson_churn.Birth, _ -> ()
  done;
  let frac = float_of_int !deaths /. float_of_int trials in
  check_bool "death fraction in Lemma 4.7 band" true (frac > 0.47 && frac < 0.53)

let test_interevent_time_mean () =
  (* With N = n: total rate = n*mu + lambda = 2, so mean dt = 0.5. *)
  let c = Poisson_churn.create ~rng:(Prng.create 5) ~n:200 () in
  let acc = Stats.Acc.create () in
  for _ = 1 to 50_000 do
    let _, dt = Poisson_churn.decide c ~alive:200 in
    Stats.Acc.add acc dt
  done;
  check_bool "mean dt near 0.5" true (Float.abs (Stats.Acc.mean acc -. 0.5) < 0.01)

let test_birth_bias_when_small () =
  (* With N << n births dominate: p_birth = 1 / (N/n + 1). *)
  let c = Poisson_churn.create ~rng:(Prng.create 7) ~n:1000 () in
  let births = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    match Poisson_churn.decide c ~alive:100 with
    | Poisson_churn.Birth, _ -> incr births
    | Poisson_churn.Death, _ -> ()
  done;
  let frac = float_of_int !births /. float_of_int trials in
  (* expected 1/(0.1+1) = 0.909 *)
  check_bool "birth-dominant regime" true (Float.abs (frac -. 0.909) < 0.02)

(* --- Population simulation (E12 machinery) --- *)

let test_population_concentration () =
  let stats =
    Population.simulate ~rng:(Prng.create 11) ~n:2000 ~rounds:40_000 ()
  in
  (* Lemma 4.4: population concentrates in [0.9 n, 1.1 n]. *)
  check_bool "mean near n" true (Float.abs (stats.pop_mean -. 2000.) < 150.);
  check_bool "mostly in band" true (stats.frac_in_09_11 > 0.95)

let test_population_death_fraction () =
  let stats =
    Population.simulate ~rng:(Prng.create 13) ~n:2000 ~rounds:40_000 ()
  in
  (* Lemma 4.7: deaths make up 47-53% of jumps at stationarity. *)
  check_bool "death fraction band" true
    (stats.death_frac > 0.45 && stats.death_frac < 0.55)

let test_population_lifetime_mean () =
  let stats =
    Population.simulate ~rng:(Prng.create 17) ~n:1000 ~rounds:60_000 ()
  in
  (* Lifetimes are Exp(1/n): mean n in continuous time.  The sample is
     biased towards short lives early on, so allow slack. *)
  check_bool "lifetime mean near n" true
    (stats.lifetime_mean > 700. && stats.lifetime_mean < 1300.)

let test_population_max_age_bound () =
  let n = 1000 in
  let stats = Population.simulate ~rng:(Prng.create 19) ~n ~rounds:(20 * n) () in
  (* Lemma 4.8: no node is older than 7 n log n jumps, w.h.p. *)
  let bound = 7. *. float_of_int n *. log (float_of_int n) in
  check_bool "max age below 7 n log n" true (float_of_int stats.max_age_rounds < bound)

let test_population_invalid_args () =
  Alcotest.check_raises "bad args" (Invalid_argument "Population.simulate") (fun () ->
      ignore (Population.simulate ~rng:(Prng.create 0xBEEF) ~n:0 ~rounds:10 ()))

let suite =
  [
    ("create invalid", `Quick, test_create_invalid);
    ("rates", `Quick, test_rates);
    ("empty population births", `Quick, test_empty_population_always_birth);
    ("counters", `Quick, test_counters);
    ("event balance (Lemma 4.7)", `Quick, test_event_balance_at_stationarity);
    ("inter-event time", `Quick, test_interevent_time_mean);
    ("birth bias when small", `Quick, test_birth_bias_when_small);
    ("population concentration (Lemma 4.4)", `Slow, test_population_concentration);
    ("death fraction (Lemma 4.7)", `Slow, test_population_death_fraction);
    ("lifetime mean", `Slow, test_population_lifetime_mean);
    ("max age bound (Lemma 4.8)", `Slow, test_population_max_age_bound);
    ("invalid args", `Quick, test_population_invalid_args);
  ]

let test_lambda_parameter () =
  let c = Poisson_churn.create ~rng:(Prng.create 81) ~lambda:4.0 ~n:100 () in
  Alcotest.(check (float 1e-12)) "lambda" 4.0 (Poisson_churn.lambda c);
  Alcotest.(check (float 1e-12)) "mu scales" 0.04 (Poisson_churn.mu c);
  (* Event balance at stationarity is lambda-independent. *)
  let deaths = ref 0 in
  for _ = 1 to 20_000 do
    match Poisson_churn.decide c ~alive:100 with
    | Poisson_churn.Death, _ -> incr deaths
    | Poisson_churn.Birth, _ -> ()
  done;
  let frac = float_of_int !deaths /. 20_000. in
  check_bool "balance at lambda=4" true (frac > 0.45 && frac < 0.55);
  (* Time runs 4x faster: mean dt = 1/(2 lambda). *)
  check_bool "clock rescaled" true
    (Poisson_churn.time c > 0.
    && Float.abs ((Poisson_churn.time c /. 20_000.) -. 0.125) < 0.01)

let test_lambda_invalid () =
  Alcotest.check_raises "lambda 0"
    (Invalid_argument "Poisson_churn.create: lambda must be positive") (fun () ->
      ignore (Poisson_churn.create ~rng:(Prng.create 0xCAFE) ~lambda:0. ~n:10 ()))

let suite =
  suite
  @ [
      ("lambda parameter", `Quick, test_lambda_parameter);
      ("lambda invalid", `Quick, test_lambda_invalid);
    ]
