open Churnet_util

let check_bool = Alcotest.(check bool)
let close ?(eps = 1e-9) msg a b = check_bool msg true (Float.abs (a -. b) < eps)

let test_acc_basic () =
  let acc = Stats.Acc.create () in
  List.iter (Stats.Acc.add acc) [ 1.; 2.; 3.; 4.; 5. ];
  Alcotest.(check int) "count" 5 (Stats.Acc.count acc);
  close "mean" 3.0 (Stats.Acc.mean acc);
  close "variance" 2.5 (Stats.Acc.variance acc);
  close "min" 1.0 (Stats.Acc.min acc);
  close "max" 5.0 (Stats.Acc.max acc)

let test_acc_empty () =
  let acc = Stats.Acc.create () in
  check_bool "empty mean is nan" true (Float.is_nan (Stats.Acc.mean acc));
  check_bool "empty variance is nan" true (Float.is_nan (Stats.Acc.variance acc))

let test_acc_single () =
  let acc = Stats.Acc.create () in
  Stats.Acc.add acc 7.;
  close "mean" 7. (Stats.Acc.mean acc);
  check_bool "variance nan with one point" true (Float.is_nan (Stats.Acc.variance acc))

let test_acc_merge_matches_batch () =
  let a = Stats.Acc.create () and b = Stats.Acc.create () and whole = Stats.Acc.create () in
  let xs = [ 1.; 5.; 2.; 8.; 3.; 9.; 4.; 0.5 ] in
  List.iteri
    (fun i x ->
      Stats.Acc.add whole x;
      if i < 4 then Stats.Acc.add a x else Stats.Acc.add b x)
    xs;
  let merged = Stats.Acc.merge a b in
  close ~eps:1e-12 "merged mean" (Stats.Acc.mean whole) (Stats.Acc.mean merged);
  close ~eps:1e-9 "merged variance" (Stats.Acc.variance whole) (Stats.Acc.variance merged);
  close "merged min" (Stats.Acc.min whole) (Stats.Acc.min merged);
  close "merged max" (Stats.Acc.max whole) (Stats.Acc.max merged)

let test_acc_merge_with_empty () =
  let a = Stats.Acc.create () and b = Stats.Acc.create () in
  Stats.Acc.add b 3.;
  Stats.Acc.add b 5.;
  let m1 = Stats.Acc.merge a b and m2 = Stats.Acc.merge b a in
  close "empty+b mean" 4. (Stats.Acc.mean m1);
  close "b+empty mean" 4. (Stats.Acc.mean m2)

let test_acc_merge_never_aliases () =
  (* Regression: merge used to return its first argument itself when the
     second was empty, so adding to the merge result mutated the input. *)
  let a = Stats.Acc.create () and empty = Stats.Acc.create () in
  Stats.Acc.add a 1.;
  Stats.Acc.add a 3.;
  let merged = Stats.Acc.merge a empty in
  Stats.Acc.add merged 100.;
  Alcotest.(check int) "a count untouched" 2 (Stats.Acc.count a);
  close "a mean untouched" 2. (Stats.Acc.mean a);
  close "a max untouched" 3. (Stats.Acc.max a);
  Alcotest.(check int) "merged took the add" 3 (Stats.Acc.count merged);
  (* and the symmetric branch *)
  let merged2 = Stats.Acc.merge empty a in
  Stats.Acc.add merged2 100.;
  Alcotest.(check int) "a count still untouched" 2 (Stats.Acc.count a)

let test_batch_mean_variance () =
  close "mean" 2. (Stats.mean [| 1.; 2.; 3. |]);
  close "variance" 1. (Stats.variance [| 1.; 2.; 3. |]);
  close "stddev" 1. (Stats.stddev [| 1.; 2.; 3. |]);
  check_bool "empty mean nan" true (Float.is_nan (Stats.mean [||]))

let test_median_quantiles () =
  close "odd median" 3. (Stats.median [| 5.; 1.; 3.; 2.; 4. |]);
  close "even median" 2.5 (Stats.median [| 1.; 2.; 3.; 4. |]);
  close "q0" 1. (Stats.quantile [| 1.; 2.; 3.; 4. |] 0.);
  close "q1" 4. (Stats.quantile [| 1.; 2.; 3.; 4. |] 1.);
  close "q0.25 interp" 1.75 (Stats.quantile [| 1.; 2.; 3.; 4. |] 0.25)

let test_quantile_does_not_mutate () =
  let xs = [| 3.; 1.; 2. |] in
  ignore (Stats.median xs);
  Alcotest.(check (array (float 0.))) "unchanged" [| 3.; 1.; 2. |] xs

let test_fraction_where () =
  close "half" 0.5 (Stats.fraction_where (fun x -> x > 0) [| 1; -1; 2; -2 |]);
  check_bool "empty nan" true (Float.is_nan (Stats.fraction_where (fun _ -> true) [||]))

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 2.5; 9.9; 15.; -3. ];
  Alcotest.(check int) "total" 6 (Stats.Histogram.total h);
  let counts = Stats.Histogram.counts h in
  Alcotest.(check int) "first bin has 0.5, 1.5 and clamped -3" 3 counts.(0);
  Alcotest.(check int) "last bin has 9.9 and clamped 15" 2 counts.(4);
  close "bin mid" 1.0 (Stats.Histogram.bin_mid h 0);
  let nd = Stats.Histogram.normalized h in
  close "normalized sums to 1" 1.0 (Array.fold_left ( +. ) 0. nd)

let test_histogram_nan_input () =
  (* Regression: a NaN sample used to be clamped into the last bin
     (every comparison with NaN is false, so the clamp chain fell
     through), quietly inflating the tail of coverage histograms.  NaN is
     now skipped and counted separately. *)
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  List.iter (Stats.Histogram.add h) [ 1.; nan; 9.; nan; nan ];
  Alcotest.(check int) "total counts only finite samples" 2 (Stats.Histogram.total h);
  Alcotest.(check int) "nan samples tracked" 3 (Stats.Histogram.nan_count h);
  let counts = Stats.Histogram.counts h in
  Alcotest.(check int) "last bin holds only the real 9." 1 counts.(4);
  Alcotest.(check int) "first bin holds only the real 1." 1 counts.(0);
  let nd = Stats.Histogram.normalized h in
  close "normalized still sums to 1" 1.0 (Array.fold_left ( +. ) 0. nd)

let test_linear_fit_exact () =
  let pts = Array.init 10 (fun i -> (float_of_int i, (2.5 *. float_of_int i) +. 1.)) in
  let fit = Stats.linear_fit pts in
  close ~eps:1e-9 "slope" 2.5 fit.slope;
  close ~eps:1e-9 "intercept" 1.0 fit.intercept;
  close ~eps:1e-9 "r2" 1.0 fit.r2

let test_log_fit_exact () =
  (* y = 3 ln x + 2 *)
  let pts = Array.init 20 (fun i ->
      let x = float_of_int (i + 1) in
      (x, (3. *. log x) +. 2.))
  in
  let fit = Stats.log_fit pts in
  close ~eps:1e-9 "slope" 3.0 fit.slope;
  close ~eps:1e-9 "intercept" 2.0 fit.intercept

let test_fit_degenerate () =
  let fit = Stats.linear_fit [| (1., 1.) |] in
  check_bool "single point nan" true (Float.is_nan fit.slope);
  let fit2 = Stats.linear_fit [| (1., 1.); (1., 2.) |] in
  check_bool "vertical nan" true (Float.is_nan fit2.slope)

let test_pearson () =
  let pts = Array.init 50 (fun i -> (float_of_int i, float_of_int (2 * i))) in
  close ~eps:1e-9 "perfect correlation" 1.0 (Stats.pearson pts);
  let anti = Array.init 50 (fun i -> (float_of_int i, float_of_int (-i))) in
  close ~eps:1e-9 "perfect anticorrelation" (-1.0) (Stats.pearson anti)

let test_binomial_ci95 () =
  let lo, hi = Stats.binomial_ci95 ~successes:50 ~trials:100 in
  check_bool "contains p-hat" true (lo < 0.5 && hi > 0.5);
  check_bool "reasonable width" true (hi -. lo < 0.25);
  let lo0, hi0 = Stats.binomial_ci95 ~successes:0 ~trials:100 in
  check_bool "zero successes lo=0" true (lo0 >= 0. && lo0 < 1e-9);
  check_bool "zero successes hi small" true (hi0 < 0.08)

let test_chi_square_uniform () =
  close ~eps:1e-9 "exactly uniform" 0. (Stats.chi_square_uniform [| 10; 10; 10 |]);
  check_bool "skewed is large" true (Stats.chi_square_uniform [| 30; 0; 0 |] > 50.)

let qcheck_props =
  [
    QCheck.Test.make ~name:"acc mean within [min,max]" ~count:300
      QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1000.) 1000.))
      (fun xs ->
        let acc = Stats.Acc.create () in
        List.iter (Stats.Acc.add acc) xs;
        let m = Stats.Acc.mean acc in
        m >= Stats.Acc.min acc -. 1e-9 && m <= Stats.Acc.max acc +. 1e-9);
    QCheck.Test.make ~name:"variance non-negative" ~count:300
      QCheck.(list_of_size (Gen.int_range 2 50) (float_range (-100.) 100.))
      (fun xs ->
        let acc = Stats.Acc.create () in
        List.iter (Stats.Acc.add acc) xs;
        Stats.Acc.variance acc >= -1e-9);
    QCheck.Test.make ~name:"quantile monotone in q" ~count:200
      QCheck.(list_of_size (Gen.int_range 2 30) (float_range (-100.) 100.))
      (fun xs ->
        let a = Array.of_list xs in
        Stats.quantile a 0.25 <= Stats.quantile a 0.75 +. 1e-9);
  ]

let suite =
  [
    ("acc basic", `Quick, test_acc_basic);
    ("acc empty", `Quick, test_acc_empty);
    ("acc single", `Quick, test_acc_single);
    ("acc merge", `Quick, test_acc_merge_matches_batch);
    ("acc merge empty", `Quick, test_acc_merge_with_empty);
    ("acc merge never aliases", `Quick, test_acc_merge_never_aliases);
    ("batch mean/variance", `Quick, test_batch_mean_variance);
    ("median/quantiles", `Quick, test_median_quantiles);
    ("quantile pure", `Quick, test_quantile_does_not_mutate);
    ("fraction where", `Quick, test_fraction_where);
    ("histogram", `Quick, test_histogram);
    ("histogram skips NaN", `Quick, test_histogram_nan_input);
    ("linear fit exact", `Quick, test_linear_fit_exact);
    ("log fit exact", `Quick, test_log_fit_exact);
    ("fit degenerate", `Quick, test_fit_degenerate);
    ("pearson", `Quick, test_pearson);
    ("binomial ci", `Quick, test_binomial_ci95);
    ("chi-square", `Quick, test_chi_square_uniform);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~verbose:false) qcheck_props

let test_ks_statistic () =
  (* Perfect uniform grid against the uniform CDF: tiny statistic. *)
  let n = 1000 in
  let xs = Array.init n (fun i -> (float_of_int i +. 0.5) /. float_of_int n) in
  let ks = Stats.ks_statistic xs (fun x -> Float.max 0. (Float.min 1. x)) in
  check_bool "grid vs uniform small" true (ks < 0.001);
  (* Exponential samples against the exponential CDF: below the 5% critical
     value 1.36/sqrt n. *)
  let rng = Churnet_util.Prng.create 77 in
  let lambda = 2.0 in
  let samples = Array.init 2000 (fun _ -> Churnet_util.Dist.exponential rng lambda) in
  let cdf x = 1. -. exp (-.lambda *. x) in
  let ks2 = Stats.ks_statistic samples cdf in
  check_bool "exponential sampler passes KS" true (ks2 < 1.36 /. sqrt 2000.);
  (* Wrong model is strongly rejected. *)
  let ks3 = Stats.ks_statistic samples (fun x -> Float.max 0. (Float.min 1. x)) in
  check_bool "wrong model rejected" true (ks3 > 0.1);
  check_bool "empty nan" true (Float.is_nan (Stats.ks_statistic [||] cdf))

let suite = suite @ [ ("KS statistic", `Quick, test_ks_statistic) ]
