let () =
  Alcotest.run "churnet"
    [
      ("prng", Test_prng.suite);
      ("dist", Test_dist.suite);
      ("stats", Test_stats.suite);
      ("json", Test_json.suite);
      ("util-structures", Test_util_structures.suite);
      ("codec", Test_codec.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("lint", Test_lint.suite);
      ("lint-properties", Test_lint_properties.suite);
      ("graph", Test_graph.suite);
      ("churn", Test_churn.suite);
      ("models", Test_models.suite);
      ("flood", Test_flood.suite);
      ("core-analysis", Test_core_analysis.suite);
      ("expansion", Test_expansion.suite);
      ("p2p", Test_p2p.suite);
      ("extensions", Test_extensions.suite);
      ("bounds", Test_bounds.suite);
      ("event-log", Test_event_log.suite);
      ("api-surface", Test_api_surface.suite);
      ("experiments", Test_experiments.suite);
      ("sweep", Test_sweep.suite);
      ("differential", Test_differential.suite);
      ("byte-equality", Test_byte_equality.suite);
    ]
