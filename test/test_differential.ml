(* Differential testing: Dyngraph (optimized, slot-based) vs
   Reference_graph (naive, list-based) on identical operation scripts and
   identical PRNG streams.  Any divergence in the resulting topology is a
   bug in one of the two edge-bookkeeping implementations. *)

module Dyngraph = Churnet_graph.Dyngraph
module Snapshot = Churnet_graph.Snapshot
module Prng = Churnet_util.Prng

let check_bool = Alcotest.(check bool)

let snapshots_equal a b =
  Snapshot.n a = Snapshot.n b
  && Snapshot.ids a = Snapshot.ids b
  &&
  let ok = ref true in
  for i = 0 to Snapshot.n a - 1 do
    if Snapshot.neighbors a i <> Snapshot.neighbors b i then ok := false;
    if Snapshot.birth_of_index a i <> Snapshot.birth_of_index b i then ok := false
  done;
  !ok

(* Drive both implementations with the same script.  Kills are chosen by
   a third rng over the *sorted* alive-id list, so the graphs' internal
   rngs are consumed by birth sampling only — identically, as long as
   both maintain the same dense-array order. *)
let run_pair ~seed ~script =
  let g = Dyngraph.create ~rng:(Prng.create seed) ~d:3 ~regenerate:false () in
  let r = Reference_graph.create ~rng:(Prng.create seed) ~d:3 in
  let chooser = Prng.create (seed + 1000) in
  List.iteri
    (fun i kill ->
      if kill && Dyngraph.alive_count g > 1 then begin
        let ids = Dyngraph.alive_ids g in
        Array.sort Int.compare ids;
        let victim = ids.(Prng.int chooser (Array.length ids)) in
        Dyngraph.kill g victim;
        Reference_graph.kill r victim
      end
      else begin
        let a = Dyngraph.add_node g ~birth:i in
        let b = Reference_graph.add_node r ~birth:i in
        Alcotest.(check int) "same id allocated" a b
      end)
    script;
  (g, r)

let test_pure_births () =
  let script = List.init 60 (fun _ -> false) in
  let g, r = run_pair ~seed:11 ~script in
  check_bool "equal after births" true
    (snapshots_equal (Dyngraph.snapshot g) (Reference_graph.snapshot r))

let test_mixed_script () =
  let rng = Prng.create 5 in
  let script = List.init 250 (fun _ -> Prng.bernoulli rng 0.4) in
  let g, r = run_pair ~seed:13 ~script in
  check_bool "equal after mixed churn" true
    (snapshots_equal (Dyngraph.snapshot g) (Reference_graph.snapshot r))

let test_heavy_deaths () =
  let rng = Prng.create 6 in
  (* Long birth phase then a death-heavy phase. *)
  let script =
    List.init 80 (fun _ -> false) @ List.init 200 (fun _ -> Prng.bernoulli rng 0.7)
  in
  let g, r = run_pair ~seed:17 ~script in
  check_bool "equal after heavy deaths" true
    (snapshots_equal (Dyngraph.snapshot g) (Reference_graph.snapshot r))

(* The allocation-free neighbor iterators must visit exactly the distinct
   neighbor set of the list-returning queries — same elements, no
   duplicates — on every alive node of an arbitrarily churned graph. *)
let iterators_agree g =
  let ok = ref true in
  Dyngraph.iter_alive g (fun id ->
      let via_iter = ref [] in
      Dyngraph.iter_neighbors g id (fun v -> via_iter := v :: !via_iter);
      let no_dups =
        List.length (List.sort_uniq Int.compare !via_iter) = List.length !via_iter
      in
      if not no_dups then ok := false;
      if List.sort Int.compare !via_iter <> List.sort Int.compare (Dyngraph.neighbors g id)
      then ok := false;
      let via_in = ref [] in
      Dyngraph.iter_in_neighbors g id (fun v -> via_in := v :: !via_in);
      let in_no_dups =
        List.length (List.sort_uniq Int.compare !via_in) = List.length !via_in
      in
      if not in_no_dups then ok := false;
      if List.sort Int.compare !via_in <> List.sort Int.compare (Dyngraph.in_neighbors g id)
      then ok := false);
  !ok

let test_iter_neighbors_mixed_script () =
  let rng = Prng.create 8 in
  let script = List.init 250 (fun _ -> Prng.bernoulli rng 0.4) in
  let g, _ = run_pair ~seed:19 ~script in
  check_bool "iterators agree with list queries" true (iterators_agree g)

let test_iter_neighbors_heavy_deaths () =
  let rng = Prng.create 9 in
  let script =
    List.init 80 (fun _ -> false) @ List.init 200 (fun _ -> Prng.bernoulli rng 0.7)
  in
  let g, _ = run_pair ~seed:23 ~script in
  check_bool "iterators agree after heavy deaths" true (iterators_agree g)

let qcheck_props =
  [
    QCheck.Test.make ~name:"dyngraph == reference oracle on random scripts" ~count:60
      QCheck.(pair small_int (list_of_size (Gen.int_range 10 150) bool))
      (fun (seed, script) ->
        let g, r = run_pair ~seed ~script in
        snapshots_equal (Dyngraph.snapshot g) (Reference_graph.snapshot r));
    QCheck.Test.make ~name:"iter_neighbors == neighbors on random scripts" ~count:60
      QCheck.(pair small_int (list_of_size (Gen.int_range 10 150) bool))
      (fun (seed, script) ->
        let g, _ = run_pair ~seed ~script in
        iterators_agree g);
  ]

let suite =
  [
    ("pure births", `Quick, test_pure_births);
    ("mixed churn", `Quick, test_mixed_script);
    ("heavy deaths", `Quick, test_heavy_deaths);
    ("iter_neighbors mixed churn", `Quick, test_iter_neighbors_mixed_script);
    ("iter_neighbors heavy deaths", `Quick, test_iter_neighbors_heavy_deaths);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~verbose:false) qcheck_props
