(* Differential testing: Dyngraph (optimized, slot-based) vs
   Reference_graph (naive, list-based) on identical operation scripts and
   identical PRNG streams.  Any divergence in the resulting topology is a
   bug in one of the two edge-bookkeeping implementations. *)

module Dyngraph = Churnet_graph.Dyngraph
module Snapshot = Churnet_graph.Snapshot
module Prng = Churnet_util.Prng

let check_bool = Alcotest.(check bool)

let snapshots_equal a b =
  Snapshot.n a = Snapshot.n b
  && Snapshot.ids a = Snapshot.ids b
  &&
  let ok = ref true in
  for i = 0 to Snapshot.n a - 1 do
    if Snapshot.neighbors a i <> Snapshot.neighbors b i then ok := false;
    if Snapshot.birth_of_index a i <> Snapshot.birth_of_index b i then ok := false
  done;
  !ok

(* Drive both implementations with the same script.  Kills are chosen by
   a third rng over the *sorted* alive-id list, so the graphs' internal
   rngs are consumed by birth sampling only — identically, as long as
   both maintain the same dense-array order. *)
let run_pair ~seed ~script =
  let g = Dyngraph.create ~rng:(Prng.create seed) ~d:3 ~regenerate:false () in
  let r = Reference_graph.create ~rng:(Prng.create seed) ~d:3 in
  let chooser = Prng.create (seed + 1000) in
  List.iteri
    (fun i kill ->
      if kill && Dyngraph.alive_count g > 1 then begin
        let ids = Dyngraph.alive_ids g in
        Array.sort Int.compare ids;
        let victim = ids.(Prng.int chooser (Array.length ids)) in
        Dyngraph.kill g victim;
        Reference_graph.kill r victim
      end
      else begin
        let a = Dyngraph.add_node g ~birth:i in
        let b = Reference_graph.add_node r ~birth:i in
        Alcotest.(check int) "same id allocated" a b
      end)
    script;
  (g, r)

let test_pure_births () =
  let script = List.init 60 (fun _ -> false) in
  let g, r = run_pair ~seed:11 ~script in
  check_bool "equal after births" true
    (snapshots_equal (Dyngraph.snapshot g) (Reference_graph.snapshot r))

let test_mixed_script () =
  let rng = Prng.create 5 in
  let script = List.init 250 (fun _ -> Prng.bernoulli rng 0.4) in
  let g, r = run_pair ~seed:13 ~script in
  check_bool "equal after mixed churn" true
    (snapshots_equal (Dyngraph.snapshot g) (Reference_graph.snapshot r))

let test_heavy_deaths () =
  let rng = Prng.create 6 in
  (* Long birth phase then a death-heavy phase. *)
  let script =
    List.init 80 (fun _ -> false) @ List.init 200 (fun _ -> Prng.bernoulli rng 0.7)
  in
  let g, r = run_pair ~seed:17 ~script in
  check_bool "equal after heavy deaths" true
    (snapshots_equal (Dyngraph.snapshot g) (Reference_graph.snapshot r))

(* The allocation-free neighbor iterators must visit exactly the distinct
   neighbor set of the list-returning queries — same elements, no
   duplicates — on every alive node of an arbitrarily churned graph. *)
let iterators_agree g =
  let ok = ref true in
  Dyngraph.iter_alive g (fun id ->
      let via_iter = ref [] in
      Dyngraph.iter_neighbors g id (fun v -> via_iter := v :: !via_iter);
      let no_dups =
        List.length (List.sort_uniq Int.compare !via_iter) = List.length !via_iter
      in
      if not no_dups then ok := false;
      if List.sort Int.compare !via_iter <> List.sort Int.compare (Dyngraph.neighbors g id)
      then ok := false;
      let via_in = ref [] in
      Dyngraph.iter_in_neighbors g id (fun v -> via_in := v :: !via_in);
      let in_no_dups =
        List.length (List.sort_uniq Int.compare !via_in) = List.length !via_in
      in
      if not in_no_dups then ok := false;
      if List.sort Int.compare !via_in <> List.sort Int.compare (Dyngraph.in_neighbors g id)
      then ok := false);
  !ok

let test_iter_neighbors_mixed_script () =
  let rng = Prng.create 8 in
  let script = List.init 250 (fun _ -> Prng.bernoulli rng 0.4) in
  let g, _ = run_pair ~seed:19 ~script in
  check_bool "iterators agree with list queries" true (iterators_agree g)

let test_iter_neighbors_heavy_deaths () =
  let rng = Prng.create 9 in
  let script =
    List.init 80 (fun _ -> false) @ List.init 200 (fun _ -> Prng.bernoulli rng 0.7)
  in
  let g, _ = run_pair ~seed:23 ~script in
  check_bool "iterators agree after heavy deaths" true (iterators_agree g)

(* --- Batched churn vs per-jump: byte-identical model evolution ------ *)
(* The batched runners claim bit-identical state — PRNG streams, clock,
   pending jump, topology.  The strongest possible assertion is equality
   of the full checkpoint encoding, which serializes all of it. *)

module Poisson_model = Churnet_core.Poisson_model
module Codec = Churnet_util.Codec

let encoded m =
  let w = Codec.writer () in
  Poisson_model.encode w m;
  Codec.contents w

let pm seed ~regenerate =
  Poisson_model.create ~rng:(Prng.create seed) ~n:300 ~d:3 ~regenerate ()

let test_batched_run_rounds () =
  List.iter
    (fun regenerate ->
      let a = pm 7 ~regenerate and b = pm 7 ~regenerate in
      Poisson_model.run_rounds a 9000;
      Poisson_model.run_rounds_batched b 9000;
      check_bool "run_rounds == run_rounds_batched" true (encoded a = encoded b))
    [ false; true ]

let test_batched_warm_up () =
  let a = pm 11 ~regenerate:true and b = pm 11 ~regenerate:true in
  Poisson_model.warm_up a;
  Poisson_model.warm_up_batched b;
  check_bool "warm_up == warm_up_batched" true (encoded a = encoded b)

(* Interleave deadline runs with per-jump segments so the pending jump is
   handed in both directions across the batched/per-jump boundary. *)
let test_batched_run_until_time () =
  let a = pm 13 ~regenerate:false and b = pm 13 ~regenerate:false in
  Poisson_model.warm_up a;
  Poisson_model.warm_up_batched b;
  for k = 1 to 25 do
    let deadline = Poisson_model.time a +. (0.37 *. float_of_int k) in
    Poisson_model.run_until_time a deadline;
    Poisson_model.run_until_time_batched b deadline;
    check_bool "deadline runs stay byte-identical" true (encoded a = encoded b);
    Poisson_model.run_rounds a 13;
    Poisson_model.run_rounds_batched b 13;
    check_bool "per-jump after pending stays byte-identical" true (encoded a = encoded b)
  done;
  (* A deadline below the next jump: both paths must draw (and keep) the
     crossing jump without executing anything. *)
  let deadline = Poisson_model.time a in
  Poisson_model.run_until_time a deadline;
  Poisson_model.run_until_time_batched b deadline;
  check_bool "no-op deadline stays byte-identical" true (encoded a = encoded b)

(* --- Stream_stats vs Snapshot / Metrics ----------------------------- *)

module Stream_stats = Churnet_graph.Stream_stats
module Metrics = Churnet_graph.Metrics
module Bitset = Churnet_util.Bitset

let bits = Int64.bits_of_float

let stream_stats_agree g =
  let snap = Dyngraph.snapshot g in
  let st = Stream_stats.collect g in
  st.Stream_stats.population = Snapshot.n snap
  && st.Stream_stats.isolated = List.length (Snapshot.isolated snap)
  && st.Stream_stats.max_degree = Snapshot.max_degree snap
  && bits st.Stream_stats.mean_degree = bits (Snapshot.mean_degree snap)
  && st.Stream_stats.degree_histogram = Snapshot.degree_histogram snap
  && bits st.Stream_stats.degree_gini = bits (Metrics.degree_gini snap)

let boundary_agrees ~seed g =
  let snap = Dyngraph.snapshot g in
  let n = Snapshot.n snap in
  let rng = Prng.create seed in
  let ok = ref true in
  for _ = 1 to 5 do
    let id_set = Bitset.create 1 in
    let idx_set = Bitset.create (max 1 n) in
    for i = 0 to n - 1 do
      if Prng.bernoulli rng 0.3 then begin
        let id = Snapshot.id_of_index snap i in
        Bitset.ensure_capacity id_set (id + 1);
        Bitset.add id_set id;
        Bitset.add idx_set i
      end
    done;
    if Stream_stats.boundary_size g id_set <> Snapshot.boundary_size snap idx_set then
      ok := false;
    if bits (Stream_stats.expansion g id_set) <> bits (Snapshot.expansion snap idx_set)
    then ok := false
  done;
  !ok

let test_stream_stats_empty () =
  let g = Dyngraph.create ~rng:(Prng.create 3) ~d:3 ~regenerate:false () in
  check_bool "stream stats on the empty graph" true (stream_stats_agree g)

let test_stream_stats_churned () =
  let rng = Prng.create 31 in
  let script =
    List.init 80 (fun _ -> false) @ List.init 300 (fun _ -> Prng.bernoulli rng 0.55)
  in
  let g, _ = run_pair ~seed:37 ~script in
  check_bool "stream stats after churn" true (stream_stats_agree g);
  check_bool "boundary/expansion after churn" true (boundary_agrees ~seed:41 g)

let test_stream_stats_poisson () =
  List.iter
    (fun regenerate ->
      let m = pm 43 ~regenerate in
      Poisson_model.warm_up_batched m;
      let g = Poisson_model.graph m in
      check_bool "stream stats on a warmed Poisson graph" true (stream_stats_agree g);
      check_bool "boundary/expansion on a warmed Poisson graph" true
        (boundary_agrees ~seed:47 g))
    [ false; true ]

let qcheck_props =
  [
    QCheck.Test.make ~name:"stream_stats == snapshot stats on random scripts" ~count:40
      QCheck.(pair small_int (list_of_size (Gen.int_range 10 150) bool))
      (fun (seed, script) ->
        let g, _ = run_pair ~seed ~script in
        stream_stats_agree g);
  ]
  @ [
    QCheck.Test.make ~name:"dyngraph == reference oracle on random scripts" ~count:60
      QCheck.(pair small_int (list_of_size (Gen.int_range 10 150) bool))
      (fun (seed, script) ->
        let g, r = run_pair ~seed ~script in
        snapshots_equal (Dyngraph.snapshot g) (Reference_graph.snapshot r));
    QCheck.Test.make ~name:"iter_neighbors == neighbors on random scripts" ~count:60
      QCheck.(pair small_int (list_of_size (Gen.int_range 10 150) bool))
      (fun (seed, script) ->
        let g, _ = run_pair ~seed ~script in
        iterators_agree g);
  ]

let suite =
  [
    ("pure births", `Quick, test_pure_births);
    ("mixed churn", `Quick, test_mixed_script);
    ("heavy deaths", `Quick, test_heavy_deaths);
    ("iter_neighbors mixed churn", `Quick, test_iter_neighbors_mixed_script);
    ("iter_neighbors heavy deaths", `Quick, test_iter_neighbors_heavy_deaths);
    ("batched run_rounds byte-identical", `Quick, test_batched_run_rounds);
    ("batched warm_up byte-identical", `Quick, test_batched_warm_up);
    ("batched run_until_time byte-identical", `Quick, test_batched_run_until_time);
    ("stream stats: empty graph", `Quick, test_stream_stats_empty);
    ("stream stats: churned graph", `Quick, test_stream_stats_churned);
    ("stream stats: warmed Poisson graph", `Quick, test_stream_stats_poisson);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~verbose:false) qcheck_props
