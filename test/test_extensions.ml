(* Tests for the extension modules: Gossip, Capped_model,
   Lazy_regen_model, Burst_model. *)
open Churnet_core
module Dyngraph = Churnet_graph.Dyngraph
module Snapshot = Churnet_graph.Snapshot
module Prng = Churnet_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Gossip --- *)

let gossip_on kind ~strategy ~seed =
  let rng = Prng.create seed in
  let grng = Prng.split rng in
  let m = Models.create ~rng kind ~n:250 ~d:8 in
  Models.warm_up m;
  Gossip.run ~rng:grng ~strategy m

let test_gossip_push_pull_completes_sdgr () =
  let tr = gossip_on Models.SDGR ~strategy:Gossip.Push_pull ~seed:1 in
  check_bool "completed" true tr.completed;
  check_bool "O(log n) rounds" true
    (match tr.completion_round with Some r -> r <= 40 | None -> false)

let test_gossip_push_pull_completes_pdgr () =
  let tr = gossip_on Models.PDGR ~strategy:Gossip.Push_pull ~seed:2 in
  check_bool "completed" true tr.completed

let test_gossip_slower_than_flooding () =
  (* Gossip contacts one neighbor per round, so it cannot beat flooding. *)
  let m1 = Models.create ~rng:(Prng.create 3) Models.SDGR ~n:250 ~d:8 in
  Models.warm_up m1;
  let flood_tr = Models.flood m1 in
  let gossip_tr = gossip_on Models.SDGR ~strategy:Gossip.Push ~seed:3 in
  match (flood_tr.completion_round, gossip_tr.completion_round) with
  | Some f, Some g -> check_bool "gossip >= flooding rounds" true (g >= f)
  | _ -> Alcotest.fail "both should complete"

let test_gossip_trace_consistency () =
  let tr = gossip_on Models.SDGR ~strategy:Gossip.Pull ~seed:4 in
  check_int "log lengths" (Array.length tr.informed_per_round)
    (Array.length tr.population_per_round);
  check_int "starts at 1" 1 tr.informed_per_round.(0);
  check_bool "messages counted" true (tr.messages_sent > 0);
  check_bool "peak coverage sane" true (tr.peak_coverage > 0. && tr.peak_coverage <= 1.)

let test_gossip_message_budgets () =
  (* Push sends at most one message per informed node per round; pull at
     most one per uninformed node per round. *)
  let tr = gossip_on Models.SDGR ~strategy:Gossip.Push ~seed:5 in
  let bound =
    Array.fold_left ( + ) 0 tr.informed_per_round + Array.length tr.informed_per_round
  in
  check_bool "push message bound" true (tr.messages_sent <= bound)

let test_gossip_strategy_names () =
  Alcotest.(check string) "push" "push" (Gossip.strategy_name Gossip.Push);
  Alcotest.(check string) "pull" "pull" (Gossip.strategy_name Gossip.Pull);
  Alcotest.(check string) "push-pull" "push-pull" (Gossip.strategy_name Gossip.Push_pull)

(* Gossip determinism: the model and the protocol own separate PRNG
   streams, so the caller controls each independently. *)

let gossip_seeded kind ~strategy ~model_seed ~gossip_seed ~n ~d =
  let m = Models.create ~rng:(Prng.create model_seed) kind ~n ~d in
  Models.warm_up m;
  Gossip.run ~rng:(Prng.create gossip_seed) ~strategy m

let test_gossip_deterministic () =
  let run () =
    gossip_seeded Models.SDGR ~strategy:Gossip.Push_pull ~model_seed:6 ~gossip_seed:60
      ~n:250 ~d:8
  in
  check_bool "same seeds give the identical trace" true (run () = run ())

let test_gossip_uses_caller_rng () =
  (* Regression: Gossip.run used to hard-code its own PRNG seed, so the
     caller's generator was ignored and every trial made the same random
     neighbor choices.  Same model, different gossip seeds must differ. *)
  let with_gossip_seed gossip_seed =
    gossip_seeded Models.SDGR ~strategy:Gossip.Push_pull ~model_seed:6 ~gossip_seed
      ~n:250 ~d:8
  in
  check_bool "different gossip seeds give different traces" true
    (with_gossip_seed 60 <> with_gossip_seed 61)

let test_gossip_trials_draw_distinct_randomness () =
  (* The replication idiom: a fixed model seed with per-trial split gossip
     generators.  Under the old hard-coded seed all eight trials were
     bit-identical; now they must actually sample the protocol's
     randomness. *)
  let rng = Prng.create 77 in
  let traces =
    Churnet_util.Parallel.replicate ~domains:2 ~rng ~trials:8 (fun grng ->
        let m = Models.create ~rng:(Prng.create 123) Models.SDGR ~n:200 ~d:6 in
        Models.warm_up m;
        Gossip.run ~rng:grng ~strategy:Gossip.Push m)
  in
  let distinct =
    Array.fold_left
      (fun acc tr -> if List.exists (fun t -> t = tr) acc then acc else tr :: acc)
      [] traces
  in
  check_bool "trials draw distinct gossip randomness" true (List.length distinct >= 2)

let test_gossip_extinction_fields () =
  (* A tiny non-regenerating streaming model with d = 1 and push gossip:
     the rumor regularly strands on dead-end nodes and the informed set
     dies of old age.  Extinct traces must carry a consistent
     extinction_round instead of masquerading as a run that hit the
     round bound (the old [r := max_rounds] hack). *)
  let extinct_seen = ref 0 in
  for seed = 1 to 40 do
    let tr =
      gossip_seeded Models.SDG ~strategy:Gossip.Push ~model_seed:seed
        ~gossip_seed:(1000 + seed) ~n:40 ~d:1
    in
    if tr.extinct then begin
      incr extinct_seen;
      check_bool "extinct trace not completed" false tr.completed;
      check_bool "extinction round matches the trace length" true
        (match tr.extinction_round with Some r -> r = tr.rounds && r >= 1 | None -> false);
      check_int "informed set ends empty" 0
        tr.informed_per_round.(Array.length tr.informed_per_round - 1)
    end
    else
      check_bool "non-extinct trace has no extinction round" true
        (tr.extinction_round = None)
  done;
  check_bool "the seed sweep exhibits extinction" true (!extinct_seen > 0)

(* --- Capped model --- *)

let test_capped_respects_cap () =
  let cap = 10 in
  let m = Capped_model.create ~rng:(Prng.create 11) ~n:300 ~d:6 ~cap () in
  Capped_model.warm_up m;
  check_bool "max in-degree <= cap" true (Capped_model.max_in_degree m <= cap)

let test_capped_keeps_out_degree () =
  let m = Capped_model.create ~rng:(Prng.create 12) ~n:300 ~d:6 ~cap:24 () in
  Capped_model.warm_up m;
  check_bool "mean out-degree ~ d" true (Capped_model.mean_out_degree m > 5.5)

let test_capped_tight_cap_parks_requests () =
  (* cap = d exactly forces average in-degree = average out-degree = d,
     so some requests must wait. *)
  let m = Capped_model.create ~rng:(Prng.create 13) ~retries:4 ~n:300 ~d:6 ~cap:6 () in
  Capped_model.warm_up m;
  check_bool "in-degree still capped" true (Capped_model.max_in_degree m <= 6);
  check_bool "out-degree slightly below d or parked requests exist" true
    (Capped_model.mean_out_degree m <= 6.0)

let test_capped_flood_completes () =
  let m = Capped_model.create ~rng:(Prng.create 14) ~n:300 ~d:8 ~cap:16 () in
  Capped_model.warm_up m;
  let tr = Capped_model.flood m in
  check_bool "high coverage" true (tr.peak_coverage > 0.95)

let test_capped_invalid_cap () =
  Alcotest.check_raises "cap 0" (Invalid_argument "Capped_model.create: cap must be >= 1")
    (fun () -> ignore (Capped_model.create ~rng:(Prng.create 0xCA9) ~n:100 ~d:4 ~cap:0 ()))

let test_capped_invariants () =
  let m = Capped_model.create ~rng:(Prng.create 15) ~n:200 ~d:5 ~cap:10 () in
  Capped_model.warm_up m;
  match Dyngraph.check_invariants (Capped_model.graph m) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" e

(* --- Lazy regeneration --- *)

let test_lazy_regen_fast_period_like_pdgr () =
  let m = Lazy_regen_model.create ~rng:(Prng.create 21) ~n:300 ~d:5 ~period:0.2 () in
  Lazy_regen_model.warm_up m;
  (* With near-instant repair, almost no slot stays broken. *)
  check_bool "few broken slots" true (Lazy_regen_model.broken_slots m < 10)

let test_lazy_regen_slow_period_degrades () =
  let fast = Lazy_regen_model.create ~rng:(Prng.create 22) ~n:300 ~d:5 ~period:0.2 () in
  Lazy_regen_model.warm_up fast;
  let slow = Lazy_regen_model.create ~rng:(Prng.create 22) ~n:300 ~d:5 ~period:50. () in
  Lazy_regen_model.warm_up slow;
  (* Average over several instants to dodge repair-phase effects. *)
  let avg m =
    let acc = ref 0 in
    for _ = 1 to 6 do
      Lazy_regen_model.advance_time m 17.;
      acc := !acc + Lazy_regen_model.broken_slots m
    done;
    !acc
  in
  check_bool "slow repair has more broken slots" true (avg slow > avg fast)

let test_lazy_regen_flood () =
  let m = Lazy_regen_model.create ~rng:(Prng.create 23) ~n:300 ~d:8 ~period:2.0 () in
  Lazy_regen_model.warm_up m;
  let tr = Lazy_regen_model.flood m in
  check_bool "high coverage" true (tr.peak_coverage > 0.9)

let test_lazy_regen_invalid_period () =
  Alcotest.check_raises "period 0"
    (Invalid_argument "Lazy_regen_model.create: period must be positive") (fun () ->
      ignore (Lazy_regen_model.create ~rng:(Prng.create 0x1A2) ~n:100 ~d:4 ~period:0. ()))

let test_lazy_regen_invariants () =
  let m = Lazy_regen_model.create ~rng:(Prng.create 24) ~n:200 ~d:4 ~period:3. () in
  Lazy_regen_model.warm_up m;
  match Dyngraph.check_invariants (Lazy_regen_model.graph m) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" e

(* --- Burst model --- *)

let test_burst_population_stays_n () =
  let n = 200 in
  let m = Burst_model.create ~rng:(Prng.create 31) ~n ~d:6 ~burst_every:5 ~burst_size:20 () in
  Burst_model.warm_up m;
  check_int "population n" n (Dyngraph.alive_count (Burst_model.graph m))

let test_burst_fires () =
  let m = Burst_model.create ~rng:(Prng.create 32) ~n:100 ~d:4 ~burst_every:10 ~burst_size:5 () in
  Burst_model.run m 100;
  check_bool "bursts fired" true (Burst_model.bursts_fired m >= 9)

let test_burst_zero_size_is_plain_sdgr () =
  let m = Burst_model.create ~rng:(Prng.create 33) ~n:150 ~d:8 ~burst_every:3 ~burst_size:0 () in
  Burst_model.warm_up m;
  check_int "no bursts" 0 (Burst_model.bursts_fired m);
  let tr = Burst_model.flood m in
  check_bool "completes" true tr.completed

let test_burst_flood_survives_moderate_bursts () =
  let m = Burst_model.create ~rng:(Prng.create 34) ~n:300 ~d:10 ~burst_every:4 ~burst_size:15 () in
  Burst_model.warm_up m;
  let tr = Burst_model.flood ~max_rounds:120 m in
  check_bool "high coverage under bursts" true (tr.peak_coverage > 0.9)

let test_burst_invalid_args () =
  check_bool "burst_size >= n rejected" true
    (try
       ignore (Burst_model.create ~rng:(Prng.create 0xB0B) ~n:100 ~d:4 ~burst_every:5 ~burst_size:100 ());
       false
     with Invalid_argument _ -> true);
  check_bool "burst_every 0 rejected" true
    (try
       ignore (Burst_model.create ~rng:(Prng.create 0xB0B) ~n:100 ~d:4 ~burst_every:0 ~burst_size:5 ());
       false
     with Invalid_argument _ -> true)

let test_burst_invariants () =
  let m = Burst_model.create ~rng:(Prng.create 35) ~n:150 ~d:5 ~burst_every:4 ~burst_size:10 () in
  Burst_model.warm_up m;
  match Dyngraph.check_invariants (Burst_model.graph m) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" e

let suite =
  [
    ("gossip push-pull SDGR", `Quick, test_gossip_push_pull_completes_sdgr);
    ("gossip push-pull PDGR", `Quick, test_gossip_push_pull_completes_pdgr);
    ("gossip slower than flooding", `Quick, test_gossip_slower_than_flooding);
    ("gossip trace consistency", `Quick, test_gossip_trace_consistency);
    ("gossip message budget", `Quick, test_gossip_message_budgets);
    ("gossip names", `Quick, test_gossip_strategy_names);
    ("gossip deterministic", `Quick, test_gossip_deterministic);
    ("gossip uses caller rng", `Quick, test_gossip_uses_caller_rng);
    ("gossip trials distinct", `Quick, test_gossip_trials_draw_distinct_randomness);
    ("gossip extinction fields", `Quick, test_gossip_extinction_fields);
    ("capped respects cap", `Quick, test_capped_respects_cap);
    ("capped keeps out-degree", `Quick, test_capped_keeps_out_degree);
    ("capped tight cap", `Quick, test_capped_tight_cap_parks_requests);
    ("capped flood", `Quick, test_capped_flood_completes);
    ("capped invalid", `Quick, test_capped_invalid_cap);
    ("capped invariants", `Quick, test_capped_invariants);
    ("lazy regen fast period", `Quick, test_lazy_regen_fast_period_like_pdgr);
    ("lazy regen slow degrades", `Quick, test_lazy_regen_slow_period_degrades);
    ("lazy regen flood", `Quick, test_lazy_regen_flood);
    ("lazy regen invalid", `Quick, test_lazy_regen_invalid_period);
    ("lazy regen invariants", `Quick, test_lazy_regen_invariants);
    ("burst population", `Quick, test_burst_population_stays_n);
    ("burst fires", `Quick, test_burst_fires);
    ("burst zero size", `Quick, test_burst_zero_size_is_plain_sdgr);
    ("burst flood", `Quick, test_burst_flood_survives_moderate_bursts);
    ("burst invalid", `Quick, test_burst_invalid_args);
    ("burst invariants", `Quick, test_burst_invariants);
  ]
