open Churnet_core
module Dyngraph = Churnet_graph.Dyngraph
module Snapshot = Churnet_graph.Snapshot
module Prng = Churnet_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Streaming model --- *)

let test_streaming_population_pins_at_n () =
  let m = Streaming_model.create ~rng:(Prng.create 1) ~n:50 ~d:3 ~regenerate:false () in
  Streaming_model.run m 49;
  check_int "before steady state" 49 (Dyngraph.alive_count (Streaming_model.graph m));
  Streaming_model.run m 1;
  check_int "at n" 50 (Dyngraph.alive_count (Streaming_model.graph m));
  Streaming_model.run m 100;
  check_int "still n" 50 (Dyngraph.alive_count (Streaming_model.graph m))

let test_streaming_oldest_dies () =
  let m = Streaming_model.create ~rng:(Prng.create 2) ~n:10 ~d:2 ~regenerate:false () in
  Streaming_model.run m 10;
  let oldest = Option.get (Dyngraph.oldest_alive (Streaming_model.graph m)) in
  Streaming_model.step m;
  check_bool "oldest gone" false (Dyngraph.is_alive (Streaming_model.graph m) oldest)

let test_streaming_lifetime_exactly_n () =
  let n = 12 in
  let m = Streaming_model.create ~rng:(Prng.create 3) ~n ~d:2 ~regenerate:false () in
  Streaming_model.run m 20;
  let id = Streaming_model.newest m in
  (* Born at round 20; must be alive through round 20 + n - 1 and dead at
     round 20 + n. *)
  Streaming_model.run m (n - 1);
  check_bool "alive at age n-1" true (Dyngraph.is_alive (Streaming_model.graph m) id);
  Streaming_model.step m;
  check_bool "dead at age n" false (Dyngraph.is_alive (Streaming_model.graph m) id)

let test_streaming_ages_range () =
  let n = 30 in
  let m = Streaming_model.create ~rng:(Prng.create 5) ~n ~d:2 ~regenerate:false () in
  Streaming_model.warm_up m;
  let g = Streaming_model.graph m in
  Dyngraph.iter_alive g (fun id ->
      let age = Streaming_model.age_of m id in
      check_bool "age in [0, n-1]" true (age >= 0 && age < n))

let test_streaming_newest_age_zero () =
  let m = Streaming_model.create ~rng:(Prng.create 7) ~n:20 ~d:2 ~regenerate:false () in
  Streaming_model.warm_up m;
  check_int "newest age" 0 (Streaming_model.age_of m (Streaming_model.newest m))

let test_sdgr_out_degree_always_d () =
  let d = 4 in
  let m = Streaming_model.create ~rng:(Prng.create 11) ~n:60 ~d ~regenerate:true () in
  Streaming_model.warm_up m;
  let g = Streaming_model.graph m in
  Dyngraph.iter_alive g (fun id -> check_int "out-degree d" d (Dyngraph.out_degree g id));
  (* Paper: SDGR has exactly d*n edges at all times. *)
  check_int "dn edges" (d * 60) (Dyngraph.edge_count g)

let test_sdg_out_degree_at_most_d () =
  let d = 4 in
  let m = Streaming_model.create ~rng:(Prng.create 13) ~n:60 ~d ~regenerate:false () in
  Streaming_model.warm_up m;
  let g = Streaming_model.graph m in
  let some_below = ref false in
  Dyngraph.iter_alive g (fun id ->
      let od = Dyngraph.out_degree g id in
      check_bool "at most d" true (od <= d);
      if od < d then some_below := true);
  check_bool "some node lost an edge" true !some_below

let test_sdg_mean_degree_near_d () =
  (* Lemma 6.1: expected degree of each node is d. *)
  let d = 5 and n = 2000 in
  let m = Streaming_model.create ~rng:(Prng.create 17) ~n ~d ~regenerate:false () in
  Streaming_model.warm_up m;
  let s = Streaming_model.snapshot m in
  (* mean_degree counts distinct neighbors so is slightly below d due to
     parallel requests; allow a small deficit. *)
  check_bool "mean degree near d" true
    (Snapshot.mean_degree s > float_of_int d *. 0.9
    && Snapshot.mean_degree s < float_of_int d *. 1.1)

let test_streaming_invariants_after_warmup () =
  let m = Streaming_model.create ~rng:(Prng.create 19) ~n:80 ~d:3 ~regenerate:true () in
  Streaming_model.warm_up m;
  match Dyngraph.check_invariants (Streaming_model.graph m) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" e

let test_streaming_create_invalid () =
  Alcotest.check_raises "n too small"
    (Invalid_argument "Streaming_model.create: n must be >= 2") (fun () ->
      ignore (Streaming_model.create ~rng:(Prng.create 0x5eed) ~n:1 ~d:2 ~regenerate:false ()))

(* --- Poisson model --- *)

let test_poisson_population_band () =
  let n = 1000 in
  let m = Poisson_model.create ~rng:(Prng.create 23) ~n ~d:3 ~regenerate:false () in
  Poisson_model.warm_up m;
  let pop = Poisson_model.population m in
  check_bool "population in wide band" true
    (float_of_int pop > 0.8 *. float_of_int n && float_of_int pop < 1.2 *. float_of_int n)

let test_poisson_time_advances () =
  let m = Poisson_model.create ~rng:(Prng.create 29) ~n:100 ~d:3 ~regenerate:false () in
  Poisson_model.run_rounds m 500;
  check_bool "time positive" true (Poisson_model.time m > 0.);
  check_int "round counter" 500 (Poisson_model.round m)

let test_poisson_run_until_time () =
  let m = Poisson_model.create ~rng:(Prng.create 31) ~n:100 ~d:3 ~regenerate:false () in
  Poisson_model.run_rounds m 300;
  let t = Poisson_model.time m in
  Poisson_model.run_until_time m (t +. 10.);
  check_bool "does not overshoot" true (Poisson_model.time m <= t +. 10.);
  (* The next jump crosses the deadline. *)
  check_bool "close to deadline" true (Poisson_model.next_jump_time m > t +. 10.)

let test_poisson_next_jump_idempotent () =
  let m = Poisson_model.create ~rng:(Prng.create 37) ~n:100 ~d:3 ~regenerate:false () in
  Poisson_model.run_rounds m 10;
  let a = Poisson_model.next_jump_time m in
  let b = Poisson_model.next_jump_time m in
  Alcotest.(check (float 1e-12)) "idempotent" a b;
  Poisson_model.step m;
  Alcotest.(check (float 1e-9)) "step lands on it" a (Poisson_model.time m)

let test_pdgr_out_degree_after_warmup () =
  let d = 4 in
  let m = Poisson_model.create ~rng:(Prng.create 41) ~n:300 ~d ~regenerate:true () in
  Poisson_model.warm_up m;
  let g = Poisson_model.graph m in
  (* All but the very first few nodes (born into a tiny graph) keep
     out-degree d; after 12n jumps those founders are dead w.h.p. *)
  let bad = ref 0 in
  Dyngraph.iter_alive g (fun id -> if Dyngraph.out_degree g id <> d then incr bad);
  check_bool "almost all have out-degree d" true (!bad <= 2)

let test_poisson_newest () =
  let m = Poisson_model.create ~rng:(Prng.create 43) ~n:100 ~d:3 ~regenerate:false () in
  Poisson_model.run_rounds m 1000;
  match Poisson_model.newest m with
  | Some id -> check_bool "newest alive" true (Dyngraph.is_alive (Poisson_model.graph m) id)
  | None -> Alcotest.fail "no newest after 1000 rounds"

let test_poisson_invariants () =
  let m = Poisson_model.create ~rng:(Prng.create 47) ~n:200 ~d:3 ~regenerate:true () in
  Poisson_model.warm_up m;
  match Dyngraph.check_invariants (Poisson_model.graph m) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" e

(* --- Models wrapper --- *)

let test_kind_roundtrip () =
  List.iter
    (fun k ->
      Alcotest.(check (option string))
        "name roundtrip"
        (Some (Models.kind_name k))
        (Option.map Models.kind_name (Models.kind_of_string (Models.kind_name k))))
    Models.all_kinds;
  check_bool "unknown" true (Models.kind_of_string "FOO" = None)

let test_wrapper_dispatch () =
  List.iter
    (fun k ->
      let m = Models.create ~rng:(Prng.create 53) k ~n:60 ~d:3 in
      check_bool "kind preserved" true (Models.kind m = k);
      check_int "n" 60 (Models.n m);
      check_int "d" 3 (Models.d m);
      Models.warm_up m;
      let pop = Dyngraph.alive_count (Models.graph m) in
      check_bool "population reasonable" true (pop > 30 && pop < 90);
      Models.advance m 5;
      let s = Models.snapshot m in
      check_bool "snapshot non-empty" true (Snapshot.n s > 0))
    Models.all_kinds

let test_regeneration_flags () =
  check_bool "SDG" false (Models.regenerates Models.SDG);
  check_bool "SDGR" true (Models.regenerates Models.SDGR);
  check_bool "PDG" false (Models.regenerates Models.PDG);
  check_bool "PDGR" true (Models.regenerates Models.PDGR);
  check_bool "SDG streaming" true (Models.is_streaming Models.SDG);
  check_bool "PDGR not streaming" false (Models.is_streaming Models.PDGR)

(* --- Static baseline --- *)

let test_static_dout_shape () =
  let s = Static_dout.generate ~rng:(Prng.create 59) ~n:200 ~d:4 () in
  check_int "n nodes" 200 (Snapshot.n s);
  check_bool "about nd edges" true
    (Snapshot.edge_count s > 700 && Snapshot.edge_count s <= 800)

let test_static_dout_connected_for_d3 () =
  (* Lemma B.1: d >= 3 gives an expander, in particular connected, w.h.p. *)
  let s = Static_dout.generate ~rng:(Prng.create 61) ~n:500 ~d:3 () in
  check_int "single component" (Snapshot.n s) (Snapshot.largest_component s)

let test_static_dout_flooding_logarithmic () =
  match Static_dout.flooding_rounds ~rng:(Prng.create 67) ~n:2000 ~d:4 () with
  | Some rounds -> check_bool "O(log n) rounds" true (rounds <= 14)
  | None -> Alcotest.fail "static graph not connected"

let suite =
  [
    ("streaming population", `Quick, test_streaming_population_pins_at_n);
    ("streaming oldest dies", `Quick, test_streaming_oldest_dies);
    ("streaming lifetime exactly n", `Quick, test_streaming_lifetime_exactly_n);
    ("streaming ages range", `Quick, test_streaming_ages_range);
    ("streaming newest age", `Quick, test_streaming_newest_age_zero);
    ("SDGR out-degree = d", `Quick, test_sdgr_out_degree_always_d);
    ("SDG out-degree <= d", `Quick, test_sdg_out_degree_at_most_d);
    ("SDG mean degree (Lemma 6.1)", `Quick, test_sdg_mean_degree_near_d);
    ("streaming invariants", `Quick, test_streaming_invariants_after_warmup);
    ("streaming invalid create", `Quick, test_streaming_create_invalid);
    ("poisson population band", `Quick, test_poisson_population_band);
    ("poisson time advances", `Quick, test_poisson_time_advances);
    ("poisson run_until_time", `Quick, test_poisson_run_until_time);
    ("poisson next jump idempotent", `Quick, test_poisson_next_jump_idempotent);
    ("PDGR out-degree", `Quick, test_pdgr_out_degree_after_warmup);
    ("poisson newest", `Quick, test_poisson_newest);
    ("poisson invariants", `Quick, test_poisson_invariants);
    ("kind roundtrip", `Quick, test_kind_roundtrip);
    ("wrapper dispatch", `Quick, test_wrapper_dispatch);
    ("regeneration flags", `Quick, test_regeneration_flags);
    ("static d-out shape", `Quick, test_static_dout_shape);
    ("static d-out connected", `Quick, test_static_dout_connected_for_d3);
    ("static d-out flooding", `Quick, test_static_dout_flooding_logarithmic);
  ]

let test_advance_poisson_time_units () =
  let m = Models.create ~rng:(Prng.create 71) Models.PDGR ~n:200 ~d:4 in
  Models.warm_up m;
  match m with
  | Models.Poisson pm ->
      let t0 = Poisson_model.time pm in
      Models.advance m 7;
      check_bool "advanced ~7 time units" true
        (Poisson_model.time pm >= t0 +. 6.0 && Poisson_model.time pm <= t0 +. 7.0)
  | Models.Streaming _ -> Alcotest.fail "expected a Poisson model"

let test_advance_streaming_rounds () =
  let m = Models.create ~rng:(Prng.create 73) Models.SDGR ~n:100 ~d:3 in
  Models.warm_up m;
  match m with
  | Models.Streaming sm ->
      let r0 = Streaming_model.round sm in
      Models.advance m 5;
      check_int "advanced 5 rounds" (r0 + 5) (Streaming_model.round sm)
  | Models.Poisson _ -> Alcotest.fail "expected a streaming model"

let suite =
  suite
  @ [
      ("advance poisson time", `Quick, test_advance_poisson_time_units);
      ("advance streaming rounds", `Quick, test_advance_streaming_rounds);
    ]
