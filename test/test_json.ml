(* Round-trip and parser tests for the dependency-free Json module. *)
open Churnet_util

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let roundtrip v = Json.of_string_exn (Json.to_string v)
let roundtrip_pretty v = Json.of_string_exn (Json.to_string ~pretty:true v)

let test_scalars () =
  List.iter
    (fun v -> check_bool "scalar roundtrip" true (roundtrip v = v))
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Int 0;
      Json.Int (-42);
      Json.Int max_int;
      Json.Float 0.5;
      Json.Float (-1.25e-9);
      Json.Float 3.141592653589793;
      Json.Float 1e300;
      Json.String "";
      Json.String "plain";
    ]

let test_float_exact_roundtrip () =
  (* Floats must round-trip bit-exactly, and must re-parse as Float (not
     Int) even when the value is integral. *)
  List.iter
    (fun f ->
      match roundtrip (Json.Float f) with
      | Json.Float g ->
          check_bool (Printf.sprintf "float %h exact" f) true (Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float g))
      | _ -> Alcotest.fail "float did not come back as Float")
    [ 2.0; -0.0; 0.1; 1. /. 3.; 6.02214076e23; 5e-324; 1234567890.0 ]

let test_nan_inf_become_null () =
  check_string "nan" "null" (Json.to_string (Json.Float nan));
  check_string "inf" "null" (Json.to_string (Json.Float infinity));
  check_string "-inf" "null" (Json.to_string (Json.Float neg_infinity));
  check_bool "nan in array parses back as Null" true
    (roundtrip (Json.Arr [ Json.Float nan; Json.Int 1 ])
    = Json.Arr [ Json.Null; Json.Int 1 ]);
  check_bool "float_opt None" true (Json.float_opt None = Json.Null);
  check_bool "of_finite nan" true (Json.of_finite nan = Json.Null);
  check_bool "of_finite finite" true (Json.of_finite 2.5 = Json.Float 2.5)

let test_string_escaping () =
  List.iter
    (fun s ->
      check_bool (Printf.sprintf "escape roundtrip %S" s) true
        (roundtrip (Json.String s) = Json.String s))
    [
      "quote \" backslash \\";
      "newline \n tab \t return \r";
      "control \x01\x02\x1f";
      "backspace \b formfeed \012";
      "utf8 déjà vu — ✓";
      "slash / stays";
    ]

let test_escaped_output_form () =
  check_string "escapes" "\"a\\\"b\\\\c\\nd\"" (Json.to_string (Json.String "a\"b\\c\nd"));
  check_string "control" "\"\\u0001\"" (Json.to_string (Json.String "\x01"))

let test_unicode_escapes_parse () =
  check_bool "bmp" true (Json.of_string_exn {|"\u00e9"|} = Json.String "\xc3\xa9");
  check_bool "surrogate pair" true
    (Json.of_string_exn {|"\ud83d\ude00"|} = Json.String "\xf0\x9f\x98\x80");
  check_bool "escaped solidus" true (Json.of_string_exn {|"\/"|} = Json.String "/")

let test_nesting () =
  let v =
    Json.Obj
      [
        ("id", Json.String "E1");
        ("holds", Json.Bool true);
        ( "checks",
          Json.Arr
            [
              Json.Obj
                [
                  ("expected_value", Json.Float 3.5);
                  ("measured_value", Json.Null);
                  ("deep", Json.Arr [ Json.Arr [ Json.Int 1; Json.Int 2 ]; Json.Obj [] ]);
                ];
            ] );
        ("empty_arr", Json.Arr []);
        ("empty_obj", Json.Obj []);
      ]
  in
  check_bool "compact roundtrip" true (roundtrip v = v);
  check_bool "pretty roundtrip" true (roundtrip_pretty v = v);
  check_bool "pretty and compact agree" true
    (Json.of_string_exn (Json.to_string v)
    = Json.of_string_exn (Json.to_string ~pretty:true v))

let test_accessors () =
  let v = Json.of_string_exn {|{"a": 1, "b": "two", "c": [true, null], "d": 2.5}|} in
  check_bool "member a" true (Json.member "a" v = Some (Json.Int 1));
  check_bool "member missing" true (Json.member "zz" v = None);
  check_bool "as_string" true
    (Option.bind (Json.member "b" v) Json.as_string = Some "two");
  check_bool "as_float of int" true
    (Option.bind (Json.member "a" v) Json.as_float = Some 1.);
  check_bool "as_float of float" true
    (Option.bind (Json.member "d" v) Json.as_float = Some 2.5);
  check_bool "as_list" true
    (List.length (Json.as_list (Option.get (Json.member "c" v))) = 2);
  check_bool "as_bool" true
    (Json.as_bool (List.hd (Json.as_list (Option.get (Json.member "c" v)))) = Some true)

let test_number_parsing () =
  check_bool "int" true (Json.of_string_exn "17" = Json.Int 17);
  check_bool "negative int" true (Json.of_string_exn "-3" = Json.Int (-3));
  check_bool "float dot" true (Json.of_string_exn "2.5" = Json.Float 2.5);
  check_bool "float exp" true (Json.of_string_exn "1e3" = Json.Float 1000.);
  check_bool "float neg exp" true (Json.of_string_exn "-2.5E-1" = Json.Float (-0.25));
  check_bool "huge int falls back to float" true
    (match Json.of_string_exn "123456789012345678901234567890" with
    | Json.Float _ -> true
    | _ -> false)

let test_whitespace_tolerated () =
  check_bool "padded" true
    (Json.of_string_exn "  { \"a\" : [ 1 , 2 ] }\n" = Json.Obj [ ("a", Json.Arr [ Json.Int 1; Json.Int 2 ]) ])

let test_malformed_rejected () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" s))
    [
      "";
      "{";
      "[1, 2";
      "{\"a\" 1}";
      "{\"a\": 1,}";
      "tru";
      "nul";
      "1.2.3";
      "\"unterminated";
      "\"bad \\q escape\"";
      "\"lone \\ud800 surrogate\"";
      "[1] trailing";
      "'single'";
      "+1";
      "01e";
    ]

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let found = ref false in
  for i = 0 to hl - nl do
    if String.sub hay i nl = needle then found := true
  done;
  !found

let test_error_mentions_offset () =
  match Json.of_string "[1, oops]" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error msg -> check_bool "mentions offset" true (contains "offset" msg)

let suite =
  [
    ("scalar roundtrip", `Quick, test_scalars);
    ("float exact roundtrip", `Quick, test_float_exact_roundtrip);
    ("nan/inf become null", `Quick, test_nan_inf_become_null);
    ("string escaping", `Quick, test_string_escaping);
    ("escaped output form", `Quick, test_escaped_output_form);
    ("unicode escapes", `Quick, test_unicode_escapes_parse);
    ("nesting", `Quick, test_nesting);
    ("accessors", `Quick, test_accessors);
    ("number parsing", `Quick, test_number_parsing);
    ("whitespace", `Quick, test_whitespace_tolerated);
    ("malformed rejected", `Quick, test_malformed_rejected);
    ("error mentions offset", `Quick, test_error_mentions_offset);
  ]
