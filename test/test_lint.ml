(* churnet-lint: lexer corner cases, rule detection, pragma suppression
   and baseline round-trips.  Every synthetic bad sample lives inside a
   string literal, so the repo's own lint pass (which scans test/ too)
   never sees it as code. *)

open Churnet_util

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_strings = Alcotest.(check (list string))

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let texts src =
  let lex = Lint_lexer.lex src in
  Array.to_list (Array.map (fun t -> t.Lint_lexer.text) lex.Lint_lexer.tokens)

let comments src =
  let lex = Lint_lexer.lex src in
  Array.to_list
    (Array.map (fun c -> c.Lint_lexer.c_text) lex.Lint_lexer.comments)

let rule name =
  List.find (fun r -> r.Lint_rules.name = name) Lint_rules.all

(* Run one file rule over a synthetic file at a chosen fake path. *)
let run_rule ?(has_mli = true) name ~path src =
  let ctx = { Lint_rules.path; lex = Lint_lexer.lex src; has_mli } in
  match (rule name).Lint_rules.check with
  | Lint_rules.File check -> check ctx
  | Lint_rules.Project _ | Lint_rules.Synthetic ->
      Alcotest.failf "%s is not a file rule" name

(* Run one project rule over a set of synthetic (path, source) units
   and (path, source) interfaces. *)
let run_project_rule name ~units ~interfaces =
  let parsed =
    List.map
      (fun (path, src) ->
        let lex = Lint_lexer.lex src in
        (path, lex, Lint_tree.parse lex))
      units
  in
  let project =
    {
      Lint_rules.p_graph = Lint_graph.build parsed;
      p_interfaces =
        List.map (fun (path, src) -> (path, Lint_lexer.lex src)) interfaces;
    }
  in
  match (rule name).Lint_rules.check with
  | Lint_rules.Project check -> check project
  | Lint_rules.File _ | Lint_rules.Synthetic ->
      Alcotest.failf "%s is not a project rule" name

let rules_fired ?has_mli name ~path src =
  List.length (run_rule ?has_mli name ~path src)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let test_nested_comments () =
  let src = "(* a (* b (* c *) *) d *) let x = 1" in
  check_strings "code tokens only" [ "let"; "x"; "="; "1" ] (texts src);
  match comments src with
  | [ body ] ->
      check_bool "inner comment kept in body" true
        (String.length body > 0
        && body = " a (* b (* c *) *) d ")
  | other -> Alcotest.failf "expected 1 comment, got %d" (List.length other)

let test_strings_hide_code () =
  let src = "let s = \"Hashtbl.iter (* not a comment *) compare\" let t = 2" in
  check_strings "string content invisible"
    [ "let"; "s"; "="; "let"; "t"; "="; "2" ]
    (texts src);
  check_int "no comments from string" 0 (List.length (comments src))

let test_quoted_strings () =
  let src = "let s = {|no (* comment *) \"quotes\" compare|} let u = 4" in
  check_strings "quoted string invisible"
    [ "let"; "s"; "="; "let"; "u"; "="; "4" ]
    (texts src);
  let src2 = "let s = {foo|bar |} still inside|foo} let v = 5" in
  check_strings "custom delimiter respected"
    [ "let"; "s"; "="; "let"; "v"; "="; "5" ]
    (texts src2);
  check_int "no comments in quoted strings" 0 (List.length (comments src2))

let test_char_literals () =
  (* A double-quote char literal must not open a string... *)
  let src = "let c = '\"' let d = 1 (* real *) let e = 2" in
  check_strings "quote char literal"
    [ "let"; "c"; "="; "let"; "d"; "="; "1"; "let"; "e"; "="; "2" ]
    (texts src);
  check_int "comment after char literal found" 1 (List.length (comments src));
  (* ...nor must parenthesis/star char literals open a comment. *)
  let src2 = "let p = '(' let q = '*' let r = 3" in
  check_strings "paren and star char literals"
    [ "let"; "p"; "="; "let"; "q"; "="; "let"; "r"; "="; "3" ]
    (texts src2);
  (* Escapes: newline, escaped quote, decimal escape. *)
  let src3 = "let a = '\\n' let b = '\\'' let c = '\\065' let d = 4" in
  check_strings "escaped char literals"
    [ "let"; "a"; "="; "let"; "b"; "="; "let"; "c"; "="; "let"; "d"; "="; "4" ]
    (texts src3)

let test_type_variables () =
  let src = "let f (x : 'a) (y : 'b) = x let x' = 1 let g = x' + 2" in
  check_strings "type vars and primed idents"
    [ "let"; "f"; "("; "x"; ":"; "a"; ")"; "("; "y"; ":"; "b"; ")"; "="; "x";
      "let"; "x'"; "="; "1"; "let"; "g"; "="; "x'"; "+"; "2" ]
    (texts src)

let test_comment_with_string_containing_closer () =
  let src = "(* has \"*)\" inside *) let ok = 1" in
  check_strings "string inside comment protects closer"
    [ "let"; "ok"; "="; "1" ]
    (texts src)

let test_token_positions () =
  let lex = Lint_lexer.lex "let x = 1\n  let y = 2" in
  let tk i = lex.Lint_lexer.tokens.(i) in
  check_int "line of first token" 1 (tk 0).Lint_lexer.line;
  check_int "col of first token" 1 (tk 0).Lint_lexer.col;
  check_int "line after newline" 2 (tk 4).Lint_lexer.line;
  check_int "col respects indent" 3 (tk 4).Lint_lexer.col

let test_crlf_positions () =
  (* CRLF line endings must produce exactly the same lines and columns
     as LF: the \r is part of the terminator, not a column. *)
  let unix = Lint_lexer.lex "let x = 1\nlet y = 2\n" in
  let dos = Lint_lexer.lex "let x = 1\r\nlet y = 2\r\n" in
  check_int "same token count" (Array.length unix.Lint_lexer.tokens)
    (Array.length dos.Lint_lexer.tokens);
  Array.iteri
    (fun i (u : Lint_lexer.token) ->
      let d = dos.Lint_lexer.tokens.(i) in
      check_int "same line" u.Lint_lexer.line d.Lint_lexer.line;
      check_int "same col" u.Lint_lexer.col d.Lint_lexer.col)
    unix.Lint_lexer.tokens;
  (* A bare \r (legacy Mac ending) still separates lines. *)
  let mac = Lint_lexer.lex "let x = 1\rlet y = 2" in
  check_int "bare CR counts as a newline" 2
    mac.Lint_lexer.tokens.(4).Lint_lexer.line

let test_unterminated_diagnostics () =
  let lex = Lint_lexer.lex "let x = 1\n(* never closed" in
  (match lex.Lint_lexer.diagnostics with
  | [| d |] ->
      check_int "comment diagnostic line" 2 d.Lint_lexer.d_line;
      check_int "comment diagnostic col" 1 d.Lint_lexer.d_col
  | other ->
      Alcotest.failf "expected 1 diagnostic, got %d" (Array.length other));
  let lex2 = Lint_lexer.lex "let s = \"runs off the end" in
  (match lex2.Lint_lexer.diagnostics with
  | [| d |] ->
      check_int "string diagnostic line" 1 d.Lint_lexer.d_line;
      check_int "string diagnostic col" 9 d.Lint_lexer.d_col
  | other ->
      Alcotest.failf "expected 1 diagnostic, got %d" (Array.length other));
  let clean = Lint_lexer.lex "let s = \"closed\" (* fine *)" in
  check_int "clean input has no diagnostics" 0
    (Array.length clean.Lint_lexer.diagnostics)

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)
(* ------------------------------------------------------------------ *)

let test_polymorphic_sort_detected () =
  (* The regression the issue asks for: a synthetic Array.sort compare
     sample must be caught. *)
  let bad = "let xs = [| 3; 1 |] let () = Array.sort compare xs" in
  check_int "Array.sort compare caught" 1
    (rules_fired "no-polymorphic-sort" ~path:"lib/core/fake.ml" bad);
  let bad2 = "let ys = List.sort compare [ 2; 1 ]" in
  check_int "List.sort compare caught" 1
    (rules_fired "no-polymorphic-sort" ~path:"test/fake.ml" bad2);
  let bad3 = "let o = Stdlib.compare a b" in
  check_int "Stdlib.compare caught" 1
    (rules_fired "no-polymorphic-sort" ~path:"lib/core/fake.ml" bad3);
  let bad4 = "let s = Array.sort (fun a b -> compare a.x b.x) arr" in
  check_int "bare compare in lambda caught" 1
    (rules_fired "no-polymorphic-sort" ~path:"lib/core/fake.ml" bad4)

let test_polymorphic_sort_clean_code () =
  let ok = "let () = Array.sort Int.compare xs" in
  check_int "Int.compare fine" 0
    (rules_fired "no-polymorphic-sort" ~path:"lib/core/fake.ml" ok);
  let ok2 = "module M = struct type t = int let compare = Int.compare end" in
  check_int "defining compare fine" 0
    (rules_fired "no-polymorphic-sort" ~path:"lib/core/fake.ml" ok2);
  let ok3 = "let c = String.compare a b" in
  check_int "qualified compare fine" 0
    (rules_fired "no-polymorphic-sort" ~path:"lib/core/fake.ml" ok3);
  let ok4 = "(* mentions Array.sort compare in prose *) let x = 1" in
  check_int "comment mention fine" 0
    (rules_fired "no-polymorphic-sort" ~path:"lib/core/fake.ml" ok4)

let test_stdlib_random () =
  let bad = "let r = Random.int 5" in
  check_int "Random.int caught" 1
    (rules_fired "no-stdlib-random" ~path:"lib/core/fake.ml" bad);
  check_int "prng.ml exempt" 0
    (rules_fired "no-stdlib-random" ~path:"lib/util/prng.ml" bad);
  let bad2 = "let r = Stdlib.Random.bits ()" in
  check_int "Stdlib.Random caught" 1
    (rules_fired "no-stdlib-random" ~path:"lib/core/fake.ml" bad2);
  let ok = "let r = Myapp.Random.next st" in
  check_int "non-Stdlib qualifier fine" 0
    (rules_fired "no-stdlib-random" ~path:"lib/core/fake.ml" ok)

let test_hashtbl_order () =
  let bad = "let () = Hashtbl.iter f tbl" in
  check_int "Hashtbl.iter caught in lib/graph" 1
    (rules_fired "no-hashtbl-order" ~path:"lib/graph/fake.ml" bad);
  check_int "Hashtbl.iter caught in lib/core" 1
    (rules_fired "no-hashtbl-order" ~path:"lib/core/fake.ml" bad);
  check_int "lib/util not restricted" 0
    (rules_fired "no-hashtbl-order" ~path:"lib/util/fake.ml" bad);
  let ok = "let v = Hashtbl.find_opt tbl k" in
  check_int "lookups fine" 0
    (rules_fired "no-hashtbl-order" ~path:"lib/graph/fake.ml" ok)

let test_wildcard_exn () =
  let bad = "let f () = try g () with _ -> 0" in
  check_int "try-with wildcard caught" 1
    (rules_fired "no-wildcard-exn" ~path:"lib/util/fake.ml" bad);
  let ok = "let f x = match x with _ -> 0" in
  check_int "match wildcard fine" 0
    (rules_fired "no-wildcard-exn" ~path:"lib/util/fake.ml" ok);
  let ok2 = "let f () = try g () with Not_found -> 0" in
  check_int "named exception fine" 0
    (rules_fired "no-wildcard-exn" ~path:"lib/util/fake.ml" ok2);
  (* A match nested inside the try body must not steal the pop. *)
  let bad2 = "let f x = try (match x with [] -> 0 | _ -> 1) with _ -> 2" in
  check_int "nested match, outer wildcard caught" 1
    (rules_fired "no-wildcard-exn" ~path:"lib/util/fake.ml" bad2);
  (* Record update inside a try body must not steal the pop either. *)
  let bad3 = "let f r = try { r with n = r.n + 1 } with _ -> r" in
  check_int "record update then wildcard caught" 1
    (rules_fired "no-wildcard-exn" ~path:"lib/util/fake.ml" bad3)

let test_wallclock () =
  let bad = "let t = Unix.gettimeofday ()" in
  check_int "gettimeofday caught" 1
    (rules_fired "no-wallclock" ~path:"lib/core/fake.ml" bad);
  check_int "telemetry exempt" 0
    (rules_fired "no-wallclock" ~path:"lib/experiments/telemetry.ml" bad);
  check_int "bench exempt" 0
    (rules_fired "no-wallclock" ~path:"bench/fake.ml" bad);
  let bad2 = "let t = Sys.time ()" in
  check_int "Sys.time caught" 1
    (rules_fired "no-wallclock" ~path:"lib/core/fake.ml" bad2);
  let ok = "let a = Sys.argv" in
  check_int "other Sys fine" 0
    (rules_fired "no-wallclock" ~path:"lib/core/fake.ml" ok)

let test_mli_coverage () =
  check_int "missing mli caught" 1
    (rules_fired ~has_mli:false "mli-coverage" ~path:"lib/core/fake.ml" "let x = 1");
  check_int "mli present fine" 0
    (rules_fired ~has_mli:true "mli-coverage" ~path:"lib/core/fake.ml" "let x = 1");
  check_int "outside lib fine" 0
    (rules_fired ~has_mli:false "mli-coverage" ~path:"bin/fake.ml" "let x = 1")

let test_print_in_lib () =
  let bad = "let () = print_endline msg" in
  check_int "print_endline caught in lib" 1
    (rules_fired "no-print-in-lib" ~path:"lib/core/fake.ml" bad);
  check_int "table.ml exempt" 0
    (rules_fired "no-print-in-lib" ~path:"lib/util/table.ml" bad);
  check_int "outside lib fine" 0
    (rules_fired "no-print-in-lib" ~path:"bin/fake.ml" bad);
  let bad2 = "let () = Printf.printf \"%d\" n" in
  check_int "Printf.printf caught" 1
    (rules_fired "no-print-in-lib" ~path:"lib/core/fake.ml" bad2);
  let ok = "let s = Printf.sprintf \"%d\" n" in
  check_int "sprintf fine" 0
    (rules_fired "no-print-in-lib" ~path:"lib/core/fake.ml" ok);
  let ok2 = "let print_alloc x = x" in
  check_int "unrelated identifier fine" 0
    (rules_fired "no-print-in-lib" ~path:"lib/core/fake.ml" ok2)

(* ------------------------------------------------------------------ *)
(* Project rules: the semantic pass                                    *)
(* ------------------------------------------------------------------ *)

let finding_rules fs = List.map (fun f -> f.Lint_rules.rule) fs

let test_prng_flow_literal () =
  let src =
    "let simulate () =\n  let rng = Prng.create 0xBAD in\n  Prng.int rng 10\n"
  in
  match
    run_project_rule "prng-flow"
      ~units:[ ("lib/core/trial.ml", src) ]
      ~interfaces:[]
  with
  | [ f ] ->
      check_int "finding on the create line" 2 f.Lint_rules.line;
      check_strings "witness names the enclosing function"
        [ "Trial.simulate" ] f.Lint_rules.witness
  | other ->
      Alcotest.failf "expected 1 prng-flow finding, got %d" (List.length other)

let test_prng_flow_module_level () =
  (* The PR 5 Gossip.run bug class: a module-level stream shared by
     every caller.  Both the literal seed and the module-level sharing
     must be reported, and the witness must walk from the stream to its
     consumer. *)
  let src =
    "let rng = Prng.create 0x9055\nlet run () =\n  Prng.int rng 8\n"
  in
  let fs =
    run_project_rule "prng-flow"
      ~units:[ ("lib/core/gossip.ml", src) ]
      ~interfaces:[]
  in
  check_int "literal + module-level findings" 2 (List.length fs);
  let module_level =
    List.find
      (fun f ->
        String.length f.Lint_rules.message > 5
        && String.sub f.Lint_rules.message 0 6 = "module")
      fs
  in
  check_strings "witness walks stream -> consumer"
    [ "Gossip.rng"; "Gossip.run" ]
    module_level.Lint_rules.witness

let test_prng_flow_clean_threading () =
  let src = "let simulate ~rng n =\n  Prng.int rng n\n" in
  check_int "threaded rng is clean" 0
    (List.length
       (run_project_rule "prng-flow"
          ~units:[ ("lib/core/trial.ml", src) ]
          ~interfaces:[]));
  (* Outside lib/ the rule does not apply (bench may pin seeds). *)
  let bad = "let rng = Prng.create 0x1\nlet go () = Prng.int rng 2\n" in
  check_int "bench exempt" 0
    (List.length
       (run_project_rule "prng-flow" ~units:[ ("bench/fake.ml", bad) ]
          ~interfaces:[]))

let test_no_io_transitive () =
  let helper = "let log m =\n  print_endline m\n" in
  let engine = "let advance x =\n  Helper.log x\n" in
  let fs =
    run_project_rule "no-io-transitive"
      ~units:[ ("lib/core/helper.ml", helper); ("lib/core/engine.ml", engine) ]
      ~interfaces:[]
  in
  match fs with
  | [ f ] ->
      check_bool "the transitive caller is flagged" true
        (f.Lint_rules.file = "lib/core/engine.ml");
      check_strings "witness reads caller -> writer"
        [ "Engine.advance"; "Helper.log" ]
        f.Lint_rules.witness
  | other ->
      Alcotest.failf "expected 1 no-io-transitive finding, got %d"
        (List.length other)

let test_no_io_transitive_report_layer_ok () =
  (* Reaching the report layer is the sanctioned way to print. *)
  let report = "let emit m =\n  print_endline m\n" in
  let engine = "let advance x =\n  Report.emit x\n" in
  check_int "report layer is not a taint root" 0
    (List.length
       (run_project_rule "no-io-transitive"
          ~units:
            [
              ("lib/experiments/report.ml", report);
              ("lib/core/engine.ml", engine);
            ]
          ~interfaces:[]))

let test_hot_path_alloc () =
  let src =
    "let helper xs =\n  List.map succ xs\nlet pair a b =\n  (a, b)\n\
     let expand_informed g =\n  ignore (helper g);\n  pair g g\n"
  in
  let fs =
    run_project_rule "hot-path-alloc"
      ~units:[ ("lib/core/flood.ml", src) ]
      ~interfaces:[]
  in
  let rules = List.sort_uniq String.compare (finding_rules fs) in
  check_strings "only hot-path-alloc fires" [ "hot-path-alloc" ] rules;
  check_bool "List.map in a reachable helper flagged" true
    (List.exists (fun f -> f.Lint_rules.line = 2) fs);
  check_bool "tuple construction flagged" true
    (List.exists (fun f -> f.Lint_rules.line = 4) fs);
  check_bool "witness starts at the kernel entry" true
    (List.for_all
       (fun f ->
         match f.Lint_rules.witness with
         | first :: _ -> first = "Flood.expand_informed"
         | [] -> false)
       fs)

let test_hot_path_alloc_unreachable_ok () =
  (* The same allocation patterns outside the kernel cone are fine. *)
  let src = "let report xs =\n  List.map succ xs\n" in
  check_int "unreachable code not flagged" 0
    (List.length
       (run_project_rule "hot-path-alloc"
          ~units:[ ("lib/core/flood.ml", src) ]
          ~interfaces:[]))

let test_dead_export () =
  let thing = "let used x = x\nlet unused x = x\n" in
  let user = "let go x =\n  Thing.used x\n" in
  let fs =
    run_project_rule "dead-export"
      ~units:[ ("lib/util/thing.ml", thing); ("lib/core/user.ml", user) ]
      ~interfaces:
        [ ("lib/util/thing.mli", "val used : int -> int\nval unused : int -> int\n") ]
  in
  match fs with
  | [ f ] ->
      check_bool "unused export flagged in the mli" true
        (f.Lint_rules.file = "lib/util/thing.mli");
      check_int "at the val keyword" 2 f.Lint_rules.line
  | other ->
      Alcotest.failf "expected 1 dead-export finding, got %d"
        (List.length other)

(* ------------------------------------------------------------------ *)
(* Engine: temp trees, pragmas, baseline                               *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let write_file path content =
  let rec ensure dir =
    if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
      ensure (Filename.dirname dir);
      Sys.mkdir dir 0o755
    end
  in
  ensure (Filename.dirname path);
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc content)

let scratch_counter = ref 0

(* Engine rules key off repo-relative paths (lib/..., test/...), so each
   scenario builds a scratch tree and chdirs into it. *)
let in_temp_tree f =
  incr scratch_counter;
  let root = Printf.sprintf "lint_scratch_%d" !scratch_counter in
  if Sys.file_exists root then rm_rf root;
  Sys.mkdir root 0o755;
  let home = Sys.getcwd () in
  Sys.chdir root;
  Fun.protect
    ~finally:(fun () ->
      Sys.chdir home;
      rm_rf root)
    f

let run_engine ?baseline ?json ?root ?(update_baseline = false) paths =
  match
    Lint_engine.run
      { Lint_engine.paths; root; baseline_path = baseline; json_path = json;
        update_baseline }
  with
  | Ok outcome -> outcome
  | Error msg -> Alcotest.failf "engine error: %s" msg

let bad_sort_ml = "let xs = [| 3; 1 |]\nlet () = Array.sort compare xs\n"
let good_sort_ml = "let xs = [| 3; 1 |]\nlet () = Array.sort Int.compare xs\n"

let test_engine_finds_and_sorts () =
  in_temp_tree (fun () ->
      write_file "lib/core/bad.ml" bad_sort_ml;
      write_file "lib/core/bad.mli" "";
      let outcome = run_engine [ "lib" ] in
      check_int "one finding" 1 (List.length outcome.Lint_engine.findings);
      match outcome.Lint_engine.findings with
      | [ f ] ->
          check_bool "rule name" true (f.Lint_rules.rule = "no-polymorphic-sort");
          check_bool "file path" true (f.Lint_rules.file = "lib/core/bad.ml");
          check_int "line" 2 f.Lint_rules.line
      | _ -> Alcotest.fail "expected exactly one finding")

let test_pragma_suppression () =
  in_temp_tree (fun () ->
      write_file "lib/core/bad.ml"
        ("let xs = [| 3; 1 |]\n"
        ^ "(* lint: allow no-polymorphic-sort -- ints, order irrelevant *)\n"
        ^ "let () = Array.sort compare xs\n");
      write_file "lib/core/bad.mli" "";
      let outcome = run_engine [ "lib" ] in
      check_int "suppressed by preceding-line pragma" 0
        (List.length outcome.Lint_engine.findings);
      check_int "counted as suppressed" 1 outcome.Lint_engine.suppressed)

let test_pragma_allow_file () =
  in_temp_tree (fun () ->
      write_file "lib/core/bad.ml"
        ("(* lint: allow-file no-polymorphic-sort -- synthetic fixture *)\n"
        ^ bad_sort_ml ^ "let () = Array.sort compare xs\n");
      write_file "lib/core/bad.mli" "";
      let outcome = run_engine [ "lib" ] in
      check_int "file pragma suppresses all" 0
        (List.length outcome.Lint_engine.findings);
      check_int "both occurrences suppressed" 2 outcome.Lint_engine.suppressed)

let test_pragma_needs_reason () =
  in_temp_tree (fun () ->
      write_file "lib/core/bad.ml"
        ("let xs = [| 3; 1 |]\n"
        ^ "(* lint: allow no-polymorphic-sort *)\n"
        ^ "let () = Array.sort compare xs\n");
      write_file "lib/core/bad.mli" "";
      let outcome = run_engine [ "lib" ] in
      let rules =
        List.map (fun f -> f.Lint_rules.rule) outcome.Lint_engine.findings
      in
      check_bool "bad-pragma reported" true (List.mem "bad-pragma" rules);
      check_bool "finding not suppressed" true
        (List.mem "no-polymorphic-sort" rules))

let test_pragma_unknown_rule () =
  in_temp_tree (fun () ->
      write_file "lib/core/ok.ml"
        "(* lint: allow no-such-rule -- whatever *)\nlet x = 1\n";
      write_file "lib/core/ok.mli" "";
      let outcome = run_engine [ "lib" ] in
      match outcome.Lint_engine.findings with
      | [ f ] -> check_bool "bad-pragma" true (f.Lint_rules.rule = "bad-pragma")
      | other -> Alcotest.failf "expected 1 finding, got %d" (List.length other))

let test_baseline_roundtrip () =
  in_temp_tree (fun () ->
      write_file "lib/core/bad.ml" bad_sort_ml;
      write_file "lib/core/bad.mli" "";
      (* 1. Finding fires with an empty baseline. *)
      write_file "baseline.txt" "# empty\n";
      let before = run_engine ~baseline:"baseline.txt" [ "lib" ] in
      check_int "fires before baselining" 1
        (List.length before.Lint_engine.findings);
      (* 2. Record it. *)
      let updated =
        run_engine ~baseline:"baseline.txt" ~update_baseline:true [ "lib" ]
      in
      check_int "update leaves no findings" 0
        (List.length updated.Lint_engine.findings);
      check_int "update counts baselined" 1 updated.Lint_engine.baselined;
      (* 3. Grandfathered now. *)
      let after = run_engine ~baseline:"baseline.txt" [ "lib" ] in
      check_int "baselined finding does not fire" 0
        (List.length after.Lint_engine.findings);
      check_int "absorbed by baseline" 1 after.Lint_engine.baselined;
      (* 4. Fix the file: the entry expires. *)
      write_file "lib/core/bad.ml" good_sort_ml;
      let fixed = run_engine ~baseline:"baseline.txt" [ "lib" ] in
      check_int "no findings after fix" 0
        (List.length fixed.Lint_engine.findings);
      check_int "entry expired" 1 (List.length fixed.Lint_engine.expired);
      check_int "exit code stays 0" 0 (Lint_engine.exit_code fixed);
      (* 5. --update-baseline drops the expired entry. *)
      let _ =
        run_engine ~baseline:"baseline.txt" ~update_baseline:true [ "lib" ]
      in
      let final = run_engine ~baseline:"baseline.txt" [ "lib" ] in
      check_int "baseline empty again" 0 (List.length final.Lint_engine.expired))

let test_json_report () =
  in_temp_tree (fun () ->
      write_file "lib/core/bad.ml" bad_sort_ml;
      write_file "lib/core/bad.mli" "";
      let _ = run_engine ~json:"lint-report.json" [ "lib" ] in
      let doc =
        Json.of_string_exn
          (In_channel.with_open_bin "lint-report.json" In_channel.input_all)
      in
      check_bool "schema tag" true
        (Json.member "schema" doc
         |> Option.map Json.as_string
         |> Option.join
         = Some "churnet-lint/2");
      match Json.member "findings" doc with
      | Some (Json.Arr [ f ]) ->
          check_bool "finding rule in json" true
            (Json.member "rule" f |> Option.map Json.as_string |> Option.join
            = Some "no-polymorphic-sort")
      | _ -> Alcotest.fail "expected one finding in json")

let test_exit_codes () =
  in_temp_tree (fun () ->
      write_file "lib/core/bad.ml" bad_sort_ml;
      write_file "lib/core/bad.mli" "";
      let dirty = run_engine [ "lib" ] in
      check_int "dirty tree exits 1" 1 (Lint_engine.exit_code dirty);
      write_file "lib/core/bad.ml" good_sort_ml;
      let clean = run_engine [ "lib" ] in
      check_int "clean tree exits 0" 0 (Lint_engine.exit_code clean))

let test_unused_pragma () =
  in_temp_tree (fun () ->
      (* A pragma above clean code suppresses nothing: stale. *)
      write_file "lib/core/ok.ml"
        ("(* lint: allow no-polymorphic-sort -- fixed long ago *)\n"
        ^ "let x = 1\n");
      write_file "lib/core/ok.mli" "";
      let outcome = run_engine [ "lib" ] in
      (match outcome.Lint_engine.findings with
      | [ f ] ->
          check_bool "unused-pragma reported" true
            (f.Lint_rules.rule = "unused-pragma");
          check_int "at the pragma line" 1 f.Lint_rules.line
      | other ->
          Alcotest.failf "expected 1 finding, got %d" (List.length other));
      (* The same pragma above an actual finding earns its keep. *)
      write_file "lib/core/ok.ml"
        ("(* lint: allow no-polymorphic-sort -- ints, order irrelevant *)\n"
        ^ "let () = Array.sort compare [| 2; 1 |]\n");
      let outcome = run_engine [ "lib" ] in
      check_int "pragma that suppresses is not stale" 0
        (List.length outcome.Lint_engine.findings))

let test_unused_pragma_in_mli () =
  in_temp_tree (fun () ->
      write_file "lib/core/ok.ml" "let x = 1\n";
      write_file "lib/core/ok.mli"
        "(* lint: allow dead-export -- reserved for callers *)\nval x : int\n";
      let outcome = run_engine [ "lib" ] in
      (* x IS dead (nothing references it), so the pragma suppresses a
         real finding and must not be reported as stale. *)
      check_int "mli pragma suppresses dead-export" 0
        (List.length outcome.Lint_engine.findings);
      check_int "counted as suppressed" 1 outcome.Lint_engine.suppressed)

let test_bad_syntax () =
  in_temp_tree (fun () ->
      write_file "lib/core/broken.ml" "let x = 1\n(* never closed\n";
      write_file "lib/core/broken.mli" "";
      let outcome = run_engine [ "lib" ] in
      match outcome.Lint_engine.findings with
      | [ f ] ->
          check_bool "bad-syntax reported" true
            (f.Lint_rules.rule = "bad-syntax");
          check_int "positioned at the opener" 2 f.Lint_rules.line;
          check_int "exit 1" 1 (Lint_engine.exit_code outcome)
      | other ->
          Alcotest.failf "expected 1 finding, got %d" (List.length other))

let test_root_flag () =
  in_temp_tree (fun () ->
      (* The tree lives under fixture/, not the cwd; --root makes paths
         inside it resolve as repo-relative (lib/...), so lib-only rules
         apply to the fixture's own lib/. *)
      write_file "fixture/lib/core/bad.ml" bad_sort_ml;
      write_file "fixture/lib/core/bad.mli" "";
      let outcome = run_engine ~root:"fixture" [ "lib" ] in
      match outcome.Lint_engine.findings with
      | [ f ] ->
          check_bool "findings reported root-relative" true
            (f.Lint_rules.file = "lib/core/bad.ml")
      | other ->
          Alcotest.failf "expected 1 finding, got %d" (List.length other))

let test_to_json_witness_and_doc () =
  in_temp_tree (fun () ->
      write_file "lib/core/gossip.ml"
        "let rng = Prng.create 0x9055\nlet run () =\n  Prng.int rng 8\n";
      write_file "lib/core/gossip.mli" "";
      let outcome = run_engine [ "lib" ] in
      let doc = Lint_engine.to_json outcome in
      check_bool "schema is churnet-lint/2" true
        (Json.member "schema" doc
         |> Option.map Json.as_string
         |> Option.join
        = Some "churnet-lint/2");
      match Json.member "findings" doc with
      | Some (Json.Arr fs) ->
          check_bool "at least one finding serialized" true (fs <> []);
          List.iter
            (fun f ->
              check_bool "every finding carries its rule doc" true
                (match Json.member "doc" f with
                | Some (Json.String s) -> String.length s > 0
                | _ -> false))
            fs;
          check_bool "some finding carries a witness path" true
            (List.exists
               (fun f ->
                 match Json.member "witness" f with
                 | Some (Json.Arr (_ :: _)) -> true
                 | _ -> false)
               fs)
      | _ -> Alcotest.fail "expected findings array in json")

let suite =
  [
    ("lexer: nested comments", `Quick, test_nested_comments);
    ("lexer: strings hide code", `Quick, test_strings_hide_code);
    ("lexer: quoted strings", `Quick, test_quoted_strings);
    ("lexer: char literals", `Quick, test_char_literals);
    ("lexer: type variables", `Quick, test_type_variables);
    ( "lexer: comment-with-closer string",
      `Quick,
      test_comment_with_string_containing_closer );
    ("lexer: token positions", `Quick, test_token_positions);
    ("lexer: crlf positions", `Quick, test_crlf_positions);
    ("lexer: unterminated diagnostics", `Quick, test_unterminated_diagnostics);
    ("rule: polymorphic sort detected", `Quick, test_polymorphic_sort_detected);
    ("rule: clean code passes", `Quick, test_polymorphic_sort_clean_code);
    ("rule: stdlib random", `Quick, test_stdlib_random);
    ("rule: hashtbl order", `Quick, test_hashtbl_order);
    ("rule: wildcard exn", `Quick, test_wildcard_exn);
    ("rule: wallclock", `Quick, test_wallclock);
    ("rule: mli coverage", `Quick, test_mli_coverage);
    ("rule: print in lib", `Quick, test_print_in_lib);
    ("rule: prng-flow literal", `Quick, test_prng_flow_literal);
    ("rule: prng-flow module-level", `Quick, test_prng_flow_module_level);
    ("rule: prng-flow clean threading", `Quick, test_prng_flow_clean_threading);
    ("rule: no-io-transitive", `Quick, test_no_io_transitive);
    ( "rule: no-io-transitive report layer",
      `Quick,
      test_no_io_transitive_report_layer_ok );
    ("rule: hot-path-alloc", `Quick, test_hot_path_alloc);
    ("rule: hot-path-alloc unreachable", `Quick, test_hot_path_alloc_unreachable_ok);
    ("rule: dead-export", `Quick, test_dead_export);
    ("engine: finds and locates", `Quick, test_engine_finds_and_sorts);
    ("engine: pragma suppression", `Quick, test_pragma_suppression);
    ("engine: allow-file pragma", `Quick, test_pragma_allow_file);
    ("engine: pragma needs reason", `Quick, test_pragma_needs_reason);
    ("engine: unknown rule pragma", `Quick, test_pragma_unknown_rule);
    ("engine: baseline roundtrip", `Quick, test_baseline_roundtrip);
    ("engine: json report", `Quick, test_json_report);
    ("engine: exit codes", `Quick, test_exit_codes);
    ("engine: unused pragma", `Quick, test_unused_pragma);
    ("engine: mli pragma", `Quick, test_unused_pragma_in_mli);
    ("engine: bad syntax", `Quick, test_bad_syntax);
    ("engine: root flag", `Quick, test_root_flag);
    ("engine: json witness and doc", `Quick, test_to_json_witness_and_doc);
  ]
