(* churnet-lint: lexer corner cases, rule detection, pragma suppression
   and baseline round-trips.  Every synthetic bad sample lives inside a
   string literal, so the repo's own lint pass (which scans test/ too)
   never sees it as code. *)

open Churnet_util

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_strings = Alcotest.(check (list string))

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let texts src =
  let lex = Lint_lexer.lex src in
  Array.to_list (Array.map (fun t -> t.Lint_lexer.text) lex.Lint_lexer.tokens)

let comments src =
  let lex = Lint_lexer.lex src in
  Array.to_list
    (Array.map (fun c -> c.Lint_lexer.c_text) lex.Lint_lexer.comments)

let rule name =
  List.find (fun r -> r.Lint_rules.name = name) Lint_rules.all

(* Run one rule over a synthetic file at a chosen fake path. *)
let run_rule ?(has_mli = true) name ~path src =
  let ctx = { Lint_rules.path; lex = Lint_lexer.lex src; has_mli } in
  (rule name).Lint_rules.check ctx

let rules_fired ?has_mli name ~path src =
  List.length (run_rule ?has_mli name ~path src)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let test_nested_comments () =
  let src = "(* a (* b (* c *) *) d *) let x = 1" in
  check_strings "code tokens only" [ "let"; "x"; "="; "1" ] (texts src);
  match comments src with
  | [ body ] ->
      check_bool "inner comment kept in body" true
        (String.length body > 0
        && body = " a (* b (* c *) *) d ")
  | other -> Alcotest.failf "expected 1 comment, got %d" (List.length other)

let test_strings_hide_code () =
  let src = "let s = \"Hashtbl.iter (* not a comment *) compare\" let t = 2" in
  check_strings "string content invisible"
    [ "let"; "s"; "="; "let"; "t"; "="; "2" ]
    (texts src);
  check_int "no comments from string" 0 (List.length (comments src))

let test_quoted_strings () =
  let src = "let s = {|no (* comment *) \"quotes\" compare|} let u = 4" in
  check_strings "quoted string invisible"
    [ "let"; "s"; "="; "let"; "u"; "="; "4" ]
    (texts src);
  let src2 = "let s = {foo|bar |} still inside|foo} let v = 5" in
  check_strings "custom delimiter respected"
    [ "let"; "s"; "="; "let"; "v"; "="; "5" ]
    (texts src2);
  check_int "no comments in quoted strings" 0 (List.length (comments src2))

let test_char_literals () =
  (* A double-quote char literal must not open a string... *)
  let src = "let c = '\"' let d = 1 (* real *) let e = 2" in
  check_strings "quote char literal"
    [ "let"; "c"; "="; "let"; "d"; "="; "1"; "let"; "e"; "="; "2" ]
    (texts src);
  check_int "comment after char literal found" 1 (List.length (comments src));
  (* ...nor must parenthesis/star char literals open a comment. *)
  let src2 = "let p = '(' let q = '*' let r = 3" in
  check_strings "paren and star char literals"
    [ "let"; "p"; "="; "let"; "q"; "="; "let"; "r"; "="; "3" ]
    (texts src2);
  (* Escapes: newline, escaped quote, decimal escape. *)
  let src3 = "let a = '\\n' let b = '\\'' let c = '\\065' let d = 4" in
  check_strings "escaped char literals"
    [ "let"; "a"; "="; "let"; "b"; "="; "let"; "c"; "="; "let"; "d"; "="; "4" ]
    (texts src3)

let test_type_variables () =
  let src = "let f (x : 'a) (y : 'b) = x let x' = 1 let g = x' + 2" in
  check_strings "type vars and primed idents"
    [ "let"; "f"; "("; "x"; ":"; "a"; ")"; "("; "y"; ":"; "b"; ")"; "="; "x";
      "let"; "x'"; "="; "1"; "let"; "g"; "="; "x'"; "+"; "2" ]
    (texts src)

let test_comment_with_string_containing_closer () =
  let src = "(* has \"*)\" inside *) let ok = 1" in
  check_strings "string inside comment protects closer"
    [ "let"; "ok"; "="; "1" ]
    (texts src)

let test_token_positions () =
  let lex = Lint_lexer.lex "let x = 1\n  let y = 2" in
  let tk i = lex.Lint_lexer.tokens.(i) in
  check_int "line of first token" 1 (tk 0).Lint_lexer.line;
  check_int "col of first token" 1 (tk 0).Lint_lexer.col;
  check_int "line after newline" 2 (tk 4).Lint_lexer.line;
  check_int "col respects indent" 3 (tk 4).Lint_lexer.col

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)
(* ------------------------------------------------------------------ *)

let test_polymorphic_sort_detected () =
  (* The regression the issue asks for: a synthetic Array.sort compare
     sample must be caught. *)
  let bad = "let xs = [| 3; 1 |] let () = Array.sort compare xs" in
  check_int "Array.sort compare caught" 1
    (rules_fired "no-polymorphic-sort" ~path:"lib/core/fake.ml" bad);
  let bad2 = "let ys = List.sort compare [ 2; 1 ]" in
  check_int "List.sort compare caught" 1
    (rules_fired "no-polymorphic-sort" ~path:"test/fake.ml" bad2);
  let bad3 = "let o = Stdlib.compare a b" in
  check_int "Stdlib.compare caught" 1
    (rules_fired "no-polymorphic-sort" ~path:"lib/core/fake.ml" bad3);
  let bad4 = "let s = Array.sort (fun a b -> compare a.x b.x) arr" in
  check_int "bare compare in lambda caught" 1
    (rules_fired "no-polymorphic-sort" ~path:"lib/core/fake.ml" bad4)

let test_polymorphic_sort_clean_code () =
  let ok = "let () = Array.sort Int.compare xs" in
  check_int "Int.compare fine" 0
    (rules_fired "no-polymorphic-sort" ~path:"lib/core/fake.ml" ok);
  let ok2 = "module M = struct type t = int let compare = Int.compare end" in
  check_int "defining compare fine" 0
    (rules_fired "no-polymorphic-sort" ~path:"lib/core/fake.ml" ok2);
  let ok3 = "let c = String.compare a b" in
  check_int "qualified compare fine" 0
    (rules_fired "no-polymorphic-sort" ~path:"lib/core/fake.ml" ok3);
  let ok4 = "(* mentions Array.sort compare in prose *) let x = 1" in
  check_int "comment mention fine" 0
    (rules_fired "no-polymorphic-sort" ~path:"lib/core/fake.ml" ok4)

let test_stdlib_random () =
  let bad = "let r = Random.int 5" in
  check_int "Random.int caught" 1
    (rules_fired "no-stdlib-random" ~path:"lib/core/fake.ml" bad);
  check_int "prng.ml exempt" 0
    (rules_fired "no-stdlib-random" ~path:"lib/util/prng.ml" bad);
  let bad2 = "let r = Stdlib.Random.bits ()" in
  check_int "Stdlib.Random caught" 1
    (rules_fired "no-stdlib-random" ~path:"lib/core/fake.ml" bad2);
  let ok = "let r = Myapp.Random.next st" in
  check_int "non-Stdlib qualifier fine" 0
    (rules_fired "no-stdlib-random" ~path:"lib/core/fake.ml" ok)

let test_hashtbl_order () =
  let bad = "let () = Hashtbl.iter f tbl" in
  check_int "Hashtbl.iter caught in lib/graph" 1
    (rules_fired "no-hashtbl-order" ~path:"lib/graph/fake.ml" bad);
  check_int "Hashtbl.iter caught in lib/core" 1
    (rules_fired "no-hashtbl-order" ~path:"lib/core/fake.ml" bad);
  check_int "lib/util not restricted" 0
    (rules_fired "no-hashtbl-order" ~path:"lib/util/fake.ml" bad);
  let ok = "let v = Hashtbl.find_opt tbl k" in
  check_int "lookups fine" 0
    (rules_fired "no-hashtbl-order" ~path:"lib/graph/fake.ml" ok)

let test_wildcard_exn () =
  let bad = "let f () = try g () with _ -> 0" in
  check_int "try-with wildcard caught" 1
    (rules_fired "no-wildcard-exn" ~path:"lib/util/fake.ml" bad);
  let ok = "let f x = match x with _ -> 0" in
  check_int "match wildcard fine" 0
    (rules_fired "no-wildcard-exn" ~path:"lib/util/fake.ml" ok);
  let ok2 = "let f () = try g () with Not_found -> 0" in
  check_int "named exception fine" 0
    (rules_fired "no-wildcard-exn" ~path:"lib/util/fake.ml" ok2);
  (* A match nested inside the try body must not steal the pop. *)
  let bad2 = "let f x = try (match x with [] -> 0 | _ -> 1) with _ -> 2" in
  check_int "nested match, outer wildcard caught" 1
    (rules_fired "no-wildcard-exn" ~path:"lib/util/fake.ml" bad2);
  (* Record update inside a try body must not steal the pop either. *)
  let bad3 = "let f r = try { r with n = r.n + 1 } with _ -> r" in
  check_int "record update then wildcard caught" 1
    (rules_fired "no-wildcard-exn" ~path:"lib/util/fake.ml" bad3)

let test_wallclock () =
  let bad = "let t = Unix.gettimeofday ()" in
  check_int "gettimeofday caught" 1
    (rules_fired "no-wallclock" ~path:"lib/core/fake.ml" bad);
  check_int "telemetry exempt" 0
    (rules_fired "no-wallclock" ~path:"lib/experiments/telemetry.ml" bad);
  check_int "bench exempt" 0
    (rules_fired "no-wallclock" ~path:"bench/fake.ml" bad);
  let bad2 = "let t = Sys.time ()" in
  check_int "Sys.time caught" 1
    (rules_fired "no-wallclock" ~path:"lib/core/fake.ml" bad2);
  let ok = "let a = Sys.argv" in
  check_int "other Sys fine" 0
    (rules_fired "no-wallclock" ~path:"lib/core/fake.ml" ok)

let test_mli_coverage () =
  check_int "missing mli caught" 1
    (rules_fired ~has_mli:false "mli-coverage" ~path:"lib/core/fake.ml" "let x = 1");
  check_int "mli present fine" 0
    (rules_fired ~has_mli:true "mli-coverage" ~path:"lib/core/fake.ml" "let x = 1");
  check_int "outside lib fine" 0
    (rules_fired ~has_mli:false "mli-coverage" ~path:"bin/fake.ml" "let x = 1")

let test_print_in_lib () =
  let bad = "let () = print_endline msg" in
  check_int "print_endline caught in lib" 1
    (rules_fired "no-print-in-lib" ~path:"lib/core/fake.ml" bad);
  check_int "table.ml exempt" 0
    (rules_fired "no-print-in-lib" ~path:"lib/util/table.ml" bad);
  check_int "outside lib fine" 0
    (rules_fired "no-print-in-lib" ~path:"bin/fake.ml" bad);
  let bad2 = "let () = Printf.printf \"%d\" n" in
  check_int "Printf.printf caught" 1
    (rules_fired "no-print-in-lib" ~path:"lib/core/fake.ml" bad2);
  let ok = "let s = Printf.sprintf \"%d\" n" in
  check_int "sprintf fine" 0
    (rules_fired "no-print-in-lib" ~path:"lib/core/fake.ml" ok);
  let ok2 = "let print_alloc x = x" in
  check_int "unrelated identifier fine" 0
    (rules_fired "no-print-in-lib" ~path:"lib/core/fake.ml" ok2)

(* ------------------------------------------------------------------ *)
(* Engine: temp trees, pragmas, baseline                               *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let write_file path content =
  let rec ensure dir =
    if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
      ensure (Filename.dirname dir);
      Sys.mkdir dir 0o755
    end
  in
  ensure (Filename.dirname path);
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc content)

let scratch_counter = ref 0

(* Engine rules key off repo-relative paths (lib/..., test/...), so each
   scenario builds a scratch tree and chdirs into it. *)
let in_temp_tree f =
  incr scratch_counter;
  let root = Printf.sprintf "lint_scratch_%d" !scratch_counter in
  if Sys.file_exists root then rm_rf root;
  Sys.mkdir root 0o755;
  let home = Sys.getcwd () in
  Sys.chdir root;
  Fun.protect
    ~finally:(fun () ->
      Sys.chdir home;
      rm_rf root)
    f

let run_engine ?baseline ?json ?(update_baseline = false) paths =
  match
    Lint_engine.run
      { Lint_engine.paths; baseline_path = baseline; json_path = json;
        update_baseline }
  with
  | Ok outcome -> outcome
  | Error msg -> Alcotest.failf "engine error: %s" msg

let bad_sort_ml = "let xs = [| 3; 1 |]\nlet () = Array.sort compare xs\n"
let good_sort_ml = "let xs = [| 3; 1 |]\nlet () = Array.sort Int.compare xs\n"

let test_engine_finds_and_sorts () =
  in_temp_tree (fun () ->
      write_file "lib/core/bad.ml" bad_sort_ml;
      write_file "lib/core/bad.mli" "";
      let outcome = run_engine [ "lib" ] in
      check_int "one finding" 1 (List.length outcome.Lint_engine.findings);
      match outcome.Lint_engine.findings with
      | [ f ] ->
          check_bool "rule name" true (f.Lint_rules.rule = "no-polymorphic-sort");
          check_bool "file path" true (f.Lint_rules.file = "lib/core/bad.ml");
          check_int "line" 2 f.Lint_rules.line
      | _ -> Alcotest.fail "expected exactly one finding")

let test_pragma_suppression () =
  in_temp_tree (fun () ->
      write_file "lib/core/bad.ml"
        ("let xs = [| 3; 1 |]\n"
        ^ "(* lint: allow no-polymorphic-sort -- ints, order irrelevant *)\n"
        ^ "let () = Array.sort compare xs\n");
      write_file "lib/core/bad.mli" "";
      let outcome = run_engine [ "lib" ] in
      check_int "suppressed by preceding-line pragma" 0
        (List.length outcome.Lint_engine.findings);
      check_int "counted as suppressed" 1 outcome.Lint_engine.suppressed)

let test_pragma_allow_file () =
  in_temp_tree (fun () ->
      write_file "lib/core/bad.ml"
        ("(* lint: allow-file no-polymorphic-sort -- synthetic fixture *)\n"
        ^ bad_sort_ml ^ "let () = Array.sort compare xs\n");
      write_file "lib/core/bad.mli" "";
      let outcome = run_engine [ "lib" ] in
      check_int "file pragma suppresses all" 0
        (List.length outcome.Lint_engine.findings);
      check_int "both occurrences suppressed" 2 outcome.Lint_engine.suppressed)

let test_pragma_needs_reason () =
  in_temp_tree (fun () ->
      write_file "lib/core/bad.ml"
        ("let xs = [| 3; 1 |]\n"
        ^ "(* lint: allow no-polymorphic-sort *)\n"
        ^ "let () = Array.sort compare xs\n");
      write_file "lib/core/bad.mli" "";
      let outcome = run_engine [ "lib" ] in
      let rules =
        List.map (fun f -> f.Lint_rules.rule) outcome.Lint_engine.findings
      in
      check_bool "bad-pragma reported" true (List.mem "bad-pragma" rules);
      check_bool "finding not suppressed" true
        (List.mem "no-polymorphic-sort" rules))

let test_pragma_unknown_rule () =
  in_temp_tree (fun () ->
      write_file "lib/core/ok.ml"
        "(* lint: allow no-such-rule -- whatever *)\nlet x = 1\n";
      write_file "lib/core/ok.mli" "";
      let outcome = run_engine [ "lib" ] in
      match outcome.Lint_engine.findings with
      | [ f ] -> check_bool "bad-pragma" true (f.Lint_rules.rule = "bad-pragma")
      | other -> Alcotest.failf "expected 1 finding, got %d" (List.length other))

let test_baseline_roundtrip () =
  in_temp_tree (fun () ->
      write_file "lib/core/bad.ml" bad_sort_ml;
      write_file "lib/core/bad.mli" "";
      (* 1. Finding fires with an empty baseline. *)
      write_file "baseline.txt" "# empty\n";
      let before = run_engine ~baseline:"baseline.txt" [ "lib" ] in
      check_int "fires before baselining" 1
        (List.length before.Lint_engine.findings);
      (* 2. Record it. *)
      let updated =
        run_engine ~baseline:"baseline.txt" ~update_baseline:true [ "lib" ]
      in
      check_int "update leaves no findings" 0
        (List.length updated.Lint_engine.findings);
      check_int "update counts baselined" 1 updated.Lint_engine.baselined;
      (* 3. Grandfathered now. *)
      let after = run_engine ~baseline:"baseline.txt" [ "lib" ] in
      check_int "baselined finding does not fire" 0
        (List.length after.Lint_engine.findings);
      check_int "absorbed by baseline" 1 after.Lint_engine.baselined;
      (* 4. Fix the file: the entry expires. *)
      write_file "lib/core/bad.ml" good_sort_ml;
      let fixed = run_engine ~baseline:"baseline.txt" [ "lib" ] in
      check_int "no findings after fix" 0
        (List.length fixed.Lint_engine.findings);
      check_int "entry expired" 1 (List.length fixed.Lint_engine.expired);
      check_int "exit code stays 0" 0 (Lint_engine.exit_code fixed);
      (* 5. --update-baseline drops the expired entry. *)
      let _ =
        run_engine ~baseline:"baseline.txt" ~update_baseline:true [ "lib" ]
      in
      let final = run_engine ~baseline:"baseline.txt" [ "lib" ] in
      check_int "baseline empty again" 0 (List.length final.Lint_engine.expired))

let test_json_report () =
  in_temp_tree (fun () ->
      write_file "lib/core/bad.ml" bad_sort_ml;
      write_file "lib/core/bad.mli" "";
      let _ = run_engine ~json:"lint-report.json" [ "lib" ] in
      let doc =
        Json.of_string_exn
          (In_channel.with_open_bin "lint-report.json" In_channel.input_all)
      in
      check_bool "schema tag" true
        (Json.member "schema" doc
         |> Option.map Json.as_string
         |> Option.join
         = Some "churnet-lint/1");
      match Json.member "findings" doc with
      | Some (Json.Arr [ f ]) ->
          check_bool "finding rule in json" true
            (Json.member "rule" f |> Option.map Json.as_string |> Option.join
            = Some "no-polymorphic-sort")
      | _ -> Alcotest.fail "expected one finding in json")

let test_exit_codes () =
  in_temp_tree (fun () ->
      write_file "lib/core/bad.ml" bad_sort_ml;
      write_file "lib/core/bad.mli" "";
      let dirty = run_engine [ "lib" ] in
      check_int "dirty tree exits 1" 1 (Lint_engine.exit_code dirty);
      write_file "lib/core/bad.ml" good_sort_ml;
      let clean = run_engine [ "lib" ] in
      check_int "clean tree exits 0" 0 (Lint_engine.exit_code clean))

let suite =
  [
    ("lexer: nested comments", `Quick, test_nested_comments);
    ("lexer: strings hide code", `Quick, test_strings_hide_code);
    ("lexer: quoted strings", `Quick, test_quoted_strings);
    ("lexer: char literals", `Quick, test_char_literals);
    ("lexer: type variables", `Quick, test_type_variables);
    ( "lexer: comment-with-closer string",
      `Quick,
      test_comment_with_string_containing_closer );
    ("lexer: token positions", `Quick, test_token_positions);
    ("rule: polymorphic sort detected", `Quick, test_polymorphic_sort_detected);
    ("rule: clean code passes", `Quick, test_polymorphic_sort_clean_code);
    ("rule: stdlib random", `Quick, test_stdlib_random);
    ("rule: hashtbl order", `Quick, test_hashtbl_order);
    ("rule: wildcard exn", `Quick, test_wildcard_exn);
    ("rule: wallclock", `Quick, test_wallclock);
    ("rule: mli coverage", `Quick, test_mli_coverage);
    ("rule: print in lib", `Quick, test_print_in_lib);
    ("engine: finds and locates", `Quick, test_engine_finds_and_sorts);
    ("engine: pragma suppression", `Quick, test_pragma_suppression);
    ("engine: allow-file pragma", `Quick, test_pragma_allow_file);
    ("engine: pragma needs reason", `Quick, test_pragma_needs_reason);
    ("engine: unknown rule pragma", `Quick, test_pragma_unknown_rule);
    ("engine: baseline roundtrip", `Quick, test_baseline_roundtrip);
    ("engine: json report", `Quick, test_json_report);
    ("engine: exit codes", `Quick, test_exit_codes);
  ]
