(* Tests for Kl, Heap, Union_find, Bitset, Table, Asciiplot. *)
open Churnet_util

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let close ?(eps = 1e-9) msg a b = check_bool msg true (Float.abs (a -. b) < eps)

(* --- Kl --- *)

let test_entropy_uniform () =
  close "H(uniform 4) = ln 4" (log 4.) (Kl.entropy [| 0.25; 0.25; 0.25; 0.25 |])

let test_entropy_point_mass () = close "H(delta) = 0" 0. (Kl.entropy [| 1.; 0.; 0. |])

let test_kl_self_zero () =
  let p = [| 0.2; 0.3; 0.5 |] in
  close "KL(p||p) = 0" 0. (Kl.kl_divergence p p)

let test_kl_known_value () =
  let p = [| 0.5; 0.5 |] and q = [| 0.25; 0.75 |] in
  let expected = (0.5 *. log (0.5 /. 0.25)) +. (0.5 *. log (0.5 /. 0.75)) in
  close "KL known" expected (Kl.kl_divergence p q)

let test_kl_infinite_when_unsupported () =
  check_bool "infinite" true
    (Float.is_integer (Kl.kl_divergence [| 1.; 0. |] [| 0.; 1. |]) = false
    || Kl.kl_divergence [| 1.; 0. |] [| 0.; 1. |] = infinity)

let test_kl_length_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Kl: length mismatch") (fun () ->
      ignore (Kl.kl_divergence [| 1. |] [| 0.5; 0.5 |]))

let test_normalize () =
  let p = Kl.normalize [| 2.; 2.; 4. |] in
  close "sums to one" 1. (Array.fold_left ( +. ) 0. p);
  close "ratio preserved" 0.5 p.(2)

let test_of_counts () =
  let p = Kl.of_counts [| 1; 3 |] in
  close "first" 0.25 p.(0);
  close "second" 0.75 p.(1)

let test_total_variation () =
  close "TV identical" 0. (Kl.total_variation [| 0.5; 0.5 |] [| 0.5; 0.5 |]);
  close "TV disjoint" 1. (Kl.total_variation [| 1.; 0. |] [| 0.; 1. |])

let kl_qcheck =
  let dist_gen =
    QCheck.map
      (fun xs ->
        let a = Array.of_list (List.map (fun x -> Float.abs x +. 0.01) xs) in
        Kl.normalize a)
      QCheck.(list_of_size (Gen.int_range 2 10) (float_range 0. 10.))
  in
  [
    QCheck.Test.make ~name:"KL non-negative (Theorem A.3)" ~count:300
      QCheck.(pair dist_gen dist_gen)
      (fun (p, q) ->
        if Array.length p <> Array.length q then QCheck.assume_fail ()
        else Kl.kl_divergence p q >= -1e-9);
    QCheck.Test.make ~name:"TV symmetric and bounded" ~count:300
      QCheck.(pair dist_gen dist_gen)
      (fun (p, q) ->
        if Array.length p <> Array.length q then QCheck.assume_fail ()
        else begin
          let tv = Kl.total_variation p q in
          Float.abs (tv -. Kl.total_variation q p) < 1e-9 && tv >= 0. && tv <= 1. +. 1e-9
        end);
  ]

(* --- Heap --- *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k k) [ 5.; 1.; 4.; 2.; 3. ];
  let popped = List.init 5 (fun _ -> fst (Option.get (Heap.pop h))) in
  Alcotest.(check (list (float 0.))) "sorted" [ 1.; 2.; 3.; 4.; 5. ] popped

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  check_bool "empty" true (Heap.is_empty h);
  check_bool "pop none" true (Heap.pop h = None);
  check_bool "peek none" true (Heap.peek h = None)

let test_heap_peek () =
  let h = Heap.create () in
  Heap.push h 2. "b";
  Heap.push h 1. "a";
  check_bool "peek min" true (Heap.peek h = Some (1., "a"));
  check_int "peek does not remove" 2 (Heap.length h)

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h 1. 1;
  Heap.clear h;
  check_bool "cleared" true (Heap.is_empty h)

let test_heap_growth () =
  let h = Heap.create () in
  for i = 1000 downto 1 do
    Heap.push h (float_of_int i) i
  done;
  check_int "length" 1000 (Heap.length h);
  let prev = ref neg_infinity in
  let sorted = ref true in
  for _ = 1 to 1000 do
    let k, _ = Option.get (Heap.pop h) in
    if k < !prev then sorted := false;
    prev := k
  done;
  check_bool "1000 items sorted" true !sorted

let test_heap_fifo_interleaved_growth () =
  (* Tied keys across the 16-slot growth boundary, with pops interleaved
     between the waves: values with equal keys must come back in push
     order (the async flood replays depend on this). *)
  let h = Heap.create () in
  for i = 0 to 23 do
    Heap.push h (float_of_int (i mod 3)) i
  done;
  (* Pop the whole key-0 class: pushed at 0, 3, 6, ..., 21. *)
  for j = 0 to 7 do
    match Heap.pop h with
    | Some (0., v) -> check_int "key-0 FIFO" (3 * j) v
    | other ->
        Alcotest.failf "expected key-0 value %d, got %s" (3 * j)
          (match other with
          | None -> "empty"
          | Some (k, v) -> Printf.sprintf "(%g, %d)" k v)
  done;
  (* A second wave with key 1 lands behind the first wave's key-1 class. *)
  for i = 24 to 31 do
    Heap.push h 1. i
  done;
  let popped = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (k, v) ->
        popped := (k, v) :: !popped;
        drain ()
  in
  drain ();
  let expected =
    List.map (fun v -> (1., v)) [ 1; 4; 7; 10; 13; 16; 19; 22; 24; 25; 26; 27; 28; 29; 30; 31 ]
    @ List.map (fun v -> (2., v)) [ 2; 5; 8; 11; 14; 17; 20; 23 ]
  in
  check_bool "interleaved waves drain in (key, push-order)" true
    (List.rev !popped = expected);
  Heap.clear h;
  Heap.push h 0.5 99;
  check_bool "usable after clear" true (Heap.pop h = Some (0.5, 99))

let heap_qcheck =
  [
    QCheck.Test.make ~name:"heap pops sorted" ~count:300
      QCheck.(list (float_range (-1000.) 1000.))
      (fun keys ->
        let h = Heap.create () in
        List.iter (fun k -> Heap.push h k ()) keys;
        let rec drain prev =
          match Heap.pop h with
          | None -> true
          | Some (k, ()) -> if k < prev then false else drain k
        in
        drain neg_infinity);
    QCheck.Test.make ~name:"heap FIFO among equal keys" ~count:300
      QCheck.(list_of_size (Gen.int_range 0 60) (int_bound 2))
      (fun prios ->
        (* Priorities from {0,1,2} force many ties; values record push
           order, so pops must ascend lexicographically in (key, value). *)
        let h = Heap.create () in
        List.iteri (fun i p -> Heap.push h (float_of_int p) i) prios;
        let rec drain prev =
          match Heap.pop h with
          | None -> true
          | Some (k, v) -> (
              match prev with
              | Some (pk, pv) when k < pk || (k = pk && v < pv) -> false
              | _ -> drain (Some (k, v)))
        in
        drain None);
    QCheck.Test.make ~name:"heap matches a stable reference model" ~count:200
      QCheck.(list (option (int_bound 3)))
      (fun ops ->
        (* Some p = push with priority p, None = pop; the reference keeps
           (key, seq) pairs and removes the lexicographic minimum. *)
        let h = Heap.create () in
        let model = ref [] in
        let seq = ref 0 in
        let ok = ref true in
        List.iter
          (fun op ->
            match op with
            | Some p ->
                let k = float_of_int p in
                Heap.push h k !seq;
                model := (k, !seq) :: !model;
                incr seq
            | None -> (
                let best =
                  List.fold_left
                    (fun acc (k, s) ->
                      match acc with
                      | Some (bk, bs) when bk < k || (bk = k && bs < s) -> acc
                      | _ -> Some (k, s))
                    None (List.rev !model)
                in
                match (Heap.pop h, best) with
                | None, None -> ()
                | Some (k, v), Some (bk, bs) when k = bk && v = bs ->
                    model := List.filter (fun (_, s) -> s <> bs) !model
                | _ -> ok := false))
          ops;
        !ok && Heap.length h = List.length !model);
  ]

(* --- Union_find --- *)

let test_uf_basic () =
  let uf = Union_find.create 5 in
  check_int "initial count" 5 (Union_find.count uf);
  check_bool "union new" true (Union_find.union uf 0 1);
  check_bool "union repeat" false (Union_find.union uf 0 1);
  check_bool "same" true (Union_find.same uf 0 1);
  check_bool "not same" false (Union_find.same uf 0 2);
  check_int "count after union" 4 (Union_find.count uf)

let test_uf_transitivity () =
  let uf = Union_find.create 6 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 1 2);
  check_bool "transitive" true (Union_find.same uf 0 2)

let test_uf_component_sizes () =
  let uf = Union_find.create 5 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 2 3);
  let sizes = List.sort Int.compare (Union_find.component_sizes uf) in
  Alcotest.(check (list int)) "sizes" [ 1; 2; 2 ] sizes

(* --- Bitset --- *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  check_int "capacity" 100 (Bitset.capacity b);
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 99;
  check_bool "mem 0" true (Bitset.mem b 0);
  check_bool "mem 63" true (Bitset.mem b 63);
  check_bool "not mem 50" false (Bitset.mem b 50);
  check_int "cardinal" 3 (Bitset.cardinal b);
  Bitset.add b 0;
  check_int "idempotent add" 3 (Bitset.cardinal b);
  Bitset.remove b 0;
  check_int "after remove" 2 (Bitset.cardinal b);
  Bitset.remove b 0;
  check_int "idempotent remove" 2 (Bitset.cardinal b)

let test_bitset_iter () =
  let b = Bitset.create 50 in
  List.iter (Bitset.add b) [ 3; 17; 44 ];
  let seen = ref [] in
  Bitset.iter (fun i -> seen := i :: !seen) b;
  Alcotest.(check (list int)) "iter ascending" [ 3; 17; 44 ] (List.rev !seen)

let test_bitset_clear () =
  let b = Bitset.create 10 in
  Bitset.add b 5;
  Bitset.clear b;
  check_int "cleared" 0 (Bitset.cardinal b);
  check_bool "not mem" false (Bitset.mem b 5)

let test_bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: index out of range") (fun () ->
      Bitset.add b 10)

let test_bitset_iter_words () =
  (* 70 bits → 9 store bytes → two 64-bit words, the second zero-padded. *)
  let b = Bitset.create 70 in
  List.iter (Bitset.add b) [ 0; 7; 63; 64; 69 ];
  let words = ref [] in
  Bitset.iter_words (fun off w -> words := (off, w) :: !words) b;
  let expected0 = Int64.(logor 1L (logor (shift_left 1L 7) (shift_left 1L 63))) in
  let expected1 = Int64.(logor 1L (shift_left 1L 5)) in
  check_bool "two words, LE bit layout, padded tail" true
    (List.rev !words = [ (0, expected0); (64, expected1) ])

let bitset_qcheck =
  (* Random add/remove/grow schedules, with capacities straddling word and
     byte boundaries, checked against the naive 0..capacity-1 mem scan the
     word-level iter replaced. *)
  let ops_gen =
    QCheck.(
      pair (int_range 1 300) (list_of_size (Gen.int_range 0 120) (pair bool (int_bound 599))))
  in
  let build (cap0, ops) =
    let b = Bitset.create cap0 in
    List.iter
      (fun (add, i) ->
        Bitset.ensure_capacity b (i + 1);
        if add then Bitset.add b i else Bitset.remove b i)
      ops;
    b
  in
  [
    QCheck.Test.make ~name:"bitset word-level iter = naive mem scan" ~count:500 ops_gen
      (fun spec ->
        let b = build spec in
        let via_iter = ref [] in
        Bitset.iter (fun i -> via_iter := i :: !via_iter) b;
        let naive = ref [] in
        for i = Bitset.capacity b - 1 downto 0 do
          if Bitset.mem b i then naive := i :: !naive
        done;
        List.rev !via_iter = !naive && Bitset.cardinal b = List.length !naive);
    QCheck.Test.make ~name:"bitset iter_words agrees with mem" ~count:300 ops_gen
      (fun spec ->
        let b = build spec in
        let cap = Bitset.capacity b in
        let ok = ref true in
        let next_off = ref 0 in
        Bitset.iter_words
          (fun off w ->
            if off <> !next_off then ok := false;
            next_off := off + 64;
            for j = 0 to 63 do
              let bit = Int64.logand (Int64.shift_right_logical w j) 1L = 1L in
              let expect = off + j < cap && Bitset.mem b (off + j) in
              if bit <> expect then ok := false
            done)
          b;
        (* every store byte was covered *)
        !ok && !next_off >= cap);
  ]

(* --- Table --- *)

let test_table_render () =
  let t = Table.create [ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333" ];
  let s = Table.render t in
  check_bool "contains header" true
    (String.length s > 0
    && (let re_ok = ref false in
        String.split_on_char '\n' s
        |> List.iter (fun line ->
               if String.length line > 0 && String.contains line 'a' then re_ok := true);
        !re_ok))

let test_table_csv () =
  let t = Table.create [ "x"; "y" ] in
  Table.add_row t [ "hello"; "a,b" ];
  let csv = Table.to_csv t in
  let contains needle hay =
    let found = ref false in
    for i = 0 to String.length hay - String.length needle do
      if String.sub hay i (String.length needle) = needle then found := true
    done;
    !found
  in
  check_bool "quoted comma cell" true (contains "\"a,b\"" csv);
  check_bool "header line" true (contains "x,y" csv)

let test_table_fmt () =
  Alcotest.(check string) "float" "3.1416" (Table.fmt_float ~digits:4 3.14159265);
  Alcotest.(check string) "pct" "50.00%" (Table.fmt_pct 0.5);
  Alcotest.(check string) "nan" "nan" (Table.fmt_float nan)

(* --- Asciiplot --- *)

let test_plot_renders () =
  let series =
    [ Asciiplot.{ label = "s"; points = Array.init 10 (fun i -> (float_of_int i, float_of_int (i * i))) } ]
  in
  let s = Asciiplot.plot ~title:"t" ~xlabel:"x" ~ylabel:"y" series in
  check_bool "non-empty" true (String.length s > 100)

let test_plot_empty () =
  let s = Asciiplot.plot ~title:"t" ~xlabel:"x" ~ylabel:"y" [] in
  check_bool "no data message" true
    (let needle = "(no data)" in
     let found = ref false in
     for i = 0 to String.length s - String.length needle do
       if String.sub s i (String.length needle) = needle then found := true
     done;
     !found)

let test_plot_log_drops_nonpositive () =
  let series = [ Asciiplot.{ label = "s"; points = [| (0., 1.); (10., 100.) |] } ] in
  let s = Asciiplot.plot ~logx:true ~title:"t" ~xlabel:"x" ~ylabel:"y" series in
  check_bool "renders" true (String.length s > 0)

let test_bar () =
  let s = Asciiplot.bar ~title:"b" [ ("one", 1.); ("two", 2.) ] in
  check_bool "renders bars" true (String.contains s '#')

let test_bar_mixed_signs () =
  (* Regression: a negative entry (e.g. a negative assortativity) used to
     make String.make crash with a negative length. *)
  let s =
    Asciiplot.bar ~title:"b"
      [ ("pos", 0.5); ("neg", -1.0); ("zero", 0.); ("nan", nan) ]
  in
  check_bool "renders" true (String.length s > 0);
  check_bool "positive bar uses #" true (String.contains s '#');
  (* the negative bar is drawn distinctly and at full scale (|−1| is the max) *)
  check_bool "negative bar uses -" true
    (let found = ref false in
     String.iteri
       (fun i c ->
         if c = '-' && i + 1 < String.length s && s.[i + 1] = '-' then found := true)
       s;
     !found)

let test_bar_all_negative () =
  let s = Asciiplot.bar ~title:"b" [ ("a", -2.); ("b", -4.) ] in
  check_bool "renders without crash" true (String.length s > 0);
  check_bool "no # bars" true (not (String.contains s '#'))

let suite =
  [
    ("entropy uniform", `Quick, test_entropy_uniform);
    ("entropy point mass", `Quick, test_entropy_point_mass);
    ("KL self zero", `Quick, test_kl_self_zero);
    ("KL known value", `Quick, test_kl_known_value);
    ("KL infinite unsupported", `Quick, test_kl_infinite_when_unsupported);
    ("KL length mismatch", `Quick, test_kl_length_mismatch);
    ("normalize", `Quick, test_normalize);
    ("of_counts", `Quick, test_of_counts);
    ("total variation", `Quick, test_total_variation);
    ("heap ordering", `Quick, test_heap_ordering);
    ("heap empty", `Quick, test_heap_empty);
    ("heap peek", `Quick, test_heap_peek);
    ("heap clear", `Quick, test_heap_clear);
    ("heap growth", `Quick, test_heap_growth);
    ("heap FIFO across growth boundary", `Quick, test_heap_fifo_interleaved_growth);
    ("union-find basic", `Quick, test_uf_basic);
    ("union-find transitivity", `Quick, test_uf_transitivity);
    ("union-find sizes", `Quick, test_uf_component_sizes);
    ("bitset basic", `Quick, test_bitset_basic);
    ("bitset iter", `Quick, test_bitset_iter);
    ("bitset clear", `Quick, test_bitset_clear);
    ("bitset bounds", `Quick, test_bitset_bounds);
    ("bitset iter_words layout", `Quick, test_bitset_iter_words);
    ("table render", `Quick, test_table_render);
    ("table csv", `Quick, test_table_csv);
    ("table fmt", `Quick, test_table_fmt);
    ("plot renders", `Quick, test_plot_renders);
    ("plot empty", `Quick, test_plot_empty);
    ("plot log scale", `Quick, test_plot_log_drops_nonpositive);
    ("bar", `Quick, test_bar);
    ("bar mixed signs", `Quick, test_bar_mixed_signs);
    ("bar all negative", `Quick, test_bar_all_negative);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~verbose:false)
      (kl_qcheck @ heap_qcheck @ bitset_qcheck)

(* --- Parallel --- *)

let test_parallel_matches_sequential () =
  let xs = Array.init 237 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (array int)) "same results" (Array.map f xs) (Parallel.map ~domains:4 f xs)

let test_parallel_order_preserved () =
  let xs = Array.init 50 string_of_int in
  let out = Parallel.map ~domains:3 (fun s -> s ^ "!") xs in
  Alcotest.(check string) "first" "0!" out.(0);
  Alcotest.(check string) "last" "49!" out.(49)

let test_parallel_empty_and_single () =
  Alcotest.(check (array int)) "empty" [||] (Parallel.map ~domains:4 (fun x -> x) [||]);
  Alcotest.(check (array int)) "single" [| 7 |] (Parallel.map ~domains:4 (fun x -> x + 1) [| 6 |])

let test_parallel_exception_propagates () =
  check_bool "raises" true
    (try
       ignore (Parallel.map ~domains:2 (fun x -> if x = 3 then failwith "boom" else x)
                 [| 1; 2; 3; 4 |]);
       false
     with Failure _ -> true)

let test_parallel_init () =
  Alcotest.(check (array int)) "init" [| 0; 2; 4; 6 |] (Parallel.init ~domains:2 4 (fun i -> 2 * i))

let test_parallel_recommended () =
  let d = Parallel.recommended_domains () in
  check_bool "within [1,8]" true (d >= 1 && d <= 8)

let test_replicate_bit_identical_across_domains () =
  (* The replication layer pre-splits one PRNG per trial in trial order,
     so the results must be bit-identical at any domain count — and equal
     to the historical serial loop (split then run, one trial at a
     time). *)
  let trial r = Array.init 16 (fun _ -> Prng.int r 1_000_000) in
  let run domains =
    let rng = Prng.create 2024 in
    Parallel.replicate ~domains ~rng ~trials:32 trial
  in
  let reference =
    let rng = Prng.create 2024 in
    let out = Array.make 32 [||] in
    for i = 0 to 31 do
      let r = Prng.split rng in
      out.(i) <- trial r
    done;
    out
  in
  let serial = run 1 in
  let par = run 4 in
  check_int "same trial count" (Array.length serial) (Array.length par);
  Array.iteri
    (fun i xs ->
      Alcotest.(check (array int)) "domains:1 = serial loop" reference.(i) xs;
      Alcotest.(check (array int)) "domains:1 = domains:4" xs par.(i))
    serial

let test_replicate_consumes_rng_like_serial_loop () =
  (* After [replicate ~trials:k] the caller's rng must be in the same
     state as after k serial splits, so code following a converted trial
     loop sees an unchanged stream. *)
  let rng_a = Prng.create 7 in
  ignore (Parallel.replicate ~domains:3 ~rng:rng_a ~trials:5 (fun r -> Prng.int r 100));
  let rng_b = Prng.create 7 in
  for _ = 1 to 5 do
    ignore (Prng.split rng_b)
  done;
  Alcotest.(check (list int)) "same downstream stream"
    (List.init 10 (fun _ -> Prng.int rng_b 1_000_000))
    (List.init 10 (fun _ -> Prng.int rng_a 1_000_000))

let suite =
  suite
  @ [
      ("parallel = sequential", `Quick, test_parallel_matches_sequential);
      ("parallel order", `Quick, test_parallel_order_preserved);
      ("parallel empty/single", `Quick, test_parallel_empty_and_single);
      ("parallel exceptions", `Quick, test_parallel_exception_propagates);
      ("parallel init", `Quick, test_parallel_init);
      ("parallel recommended", `Quick, test_parallel_recommended);
      ("replicate bit-identical across domains", `Quick,
       test_replicate_bit_identical_across_domains);
      ("replicate consumes rng like serial loop", `Quick,
       test_replicate_consumes_rng_like_serial_loop);
    ]
