(* Tests for the work-unit checkpoint journal: file round-trips, the
   meta identity guard, Parallel.map memoization (resumed runs take
   cache hits instead of recomputing), call-site numbering, invariance
   of both results and journal bytes under the domain count, and the
   crash_after fault-injection hook. *)

open Churnet_util

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let with_tmp f =
  let path = Filename.temp_file "churnet-ckpt-test" ".ckpt" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* Every test leaves the ambient journal slot empty, even on failure. *)
let with_installed j f =
  Checkpoint.install j;
  Fun.protect ~finally:Checkpoint.uninstall f

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_journal_roundtrip () =
  with_tmp (fun path ->
      let j = Checkpoint.create ~path ~every:1 ~meta:"test meta v1" in
      (* create writes an empty-but-valid journal immediately. *)
      let meta0, units0 = Checkpoint.inspect path in
      check_string "meta persisted at create" "test meta v1" meta0;
      check_int "no units yet" 0 units0;
      Checkpoint.record j ~site:0 ~index:0 [| 1; 2; 3 |];
      Checkpoint.record j ~site:0 ~index:1 [| 4 |];
      Checkpoint.record j ~site:1 ~index:0 "a string result";
      Checkpoint.flush j;
      let j' = Checkpoint.load ~path ~every:1 ~meta:"test meta v1" in
      check_int "units reloaded" 3 (Checkpoint.units j');
      check_bool "unit (0,0)" true
        (Checkpoint.find j' ~site:0 ~index:0 = Some [| 1; 2; 3 |]);
      check_bool "unit (0,1)" true (Checkpoint.find j' ~site:0 ~index:1 = Some [| 4 |]);
      check_bool "unit (1,0)" true
        (Checkpoint.find j' ~site:1 ~index:0 = Some "a string result");
      check_bool "absent unit" true
        (Checkpoint.find j' ~site:2 ~index:0 = (None : int option)))

let test_meta_mismatch () =
  with_tmp (fun path ->
      let j = Checkpoint.create ~path ~every:1 ~meta:"run A" in
      Checkpoint.record j ~site:0 ~index:0 42;
      Checkpoint.flush j;
      (match Checkpoint.load ~path ~every:1 ~meta:"run B" with
      | _ -> Alcotest.fail "load with wrong meta should raise Mismatch"
      | exception Checkpoint.Mismatch _ -> ());
      (* The file itself is fine: the right meta still loads. *)
      check_int "right meta loads" 1
        (Checkpoint.units (Checkpoint.load ~path ~every:1 ~meta:"run A")))

let test_corrupt_file_rejected () =
  with_tmp (fun path ->
      let j = Checkpoint.create ~path ~every:1 ~meta:"m" in
      Checkpoint.record j ~site:0 ~index:0 7;
      Checkpoint.flush j;
      let bytes = read_file path in
      let oc = open_out_bin path in
      output_string oc (String.sub bytes 0 (String.length bytes - 2));
      close_out oc;
      match Checkpoint.load ~path ~every:1 ~meta:"m" with
      | _ -> Alcotest.fail "truncated journal should raise Codec.Error"
      | exception Codec.Error _ -> ())

let test_parallel_memoizes () =
  with_tmp (fun path ->
      let input = Array.init 12 (fun i -> i) in
      let calls = Atomic.make 0 in
      let f x =
        Atomic.incr calls;
        (x * x) + 1
      in
      let j = Checkpoint.create ~path ~every:1 ~meta:"memo" in
      let first = with_installed j (fun () -> Parallel.map ~domains:1 f input) in
      Checkpoint.finalize j;
      check_int "computed every unit once" 12 (Atomic.get calls);
      (* Resume: same site (first map call after install), so every unit
         is a cache hit and [f] never runs again. *)
      let j' = Checkpoint.load ~path ~every:1 ~meta:"memo" in
      let again = with_installed j' (fun () -> Parallel.map ~domains:1 f input) in
      check_int "no recomputation on resume" 12 (Atomic.get calls);
      check_bool "identical results" true (first = again);
      check_int "restored count" 12 (Checkpoint.stats j').units_restored)

let test_site_numbering_counts_empty_calls () =
  (* Sites are allocated per map call in execution order, including calls
     over empty arrays — otherwise a crashed run that died before an
     empty call and a resumed run that skips it would number later sites
     differently and mispair cached results. *)
  with_tmp (fun path ->
      let j = Checkpoint.create ~path ~every:1 ~meta:"sites" in
      with_installed j (fun () ->
          ignore (Parallel.map ~domains:1 (fun x -> x + 1) [| 10 |]);
          ignore (Parallel.map ~domains:1 (fun x -> x) ([||] : int array));
          ignore (Parallel.map ~domains:1 (fun x -> x * 2) [| 5 |]));
      Checkpoint.finalize j;
      let j' = Checkpoint.load ~path ~every:1 ~meta:"sites" in
      check_bool "site 0 holds first call" true
        (Checkpoint.find j' ~site:0 ~index:0 = Some 11);
      check_bool "site 1 (the empty call) holds nothing" true
        (Checkpoint.find j' ~site:1 ~index:0 = (None : int option));
      check_bool "site 2 holds third call" true
        (Checkpoint.find j' ~site:2 ~index:0 = Some 10);
      (* A replay that performs the same three calls takes its hits at
         the right sites. *)
      let r =
        with_installed j' (fun () ->
            let a = Parallel.map ~domains:1 (fun _ -> 0) [| 10 |] in
            let b = Parallel.map ~domains:1 (fun x -> x) ([||] : int array) in
            let c = Parallel.map ~domains:1 (fun _ -> 0) [| 5 |] in
            (a.(0), Array.length b, c.(0)))
      in
      check_bool "replay hits, not the stub function" true (r = (11, 0, 10)))

let test_domains_invariance () =
  (* Same computation at 1 and 4 domains: identical results and
     byte-identical journal files (modulo field order, which the journal
     fixes by sorting on write). *)
  let compute path domains =
    let j = Checkpoint.create ~path ~every:1 ~meta:"domains" in
    let out =
      with_installed j (fun () ->
          Parallel.map ~domains
            (fun x ->
              let rng = Prng.create (1000 + x) in
              Array.init 8 (fun _ -> Prng.int rng 1_000_000))
            (Array.init 20 (fun i -> i)))
    in
    Checkpoint.finalize j;
    out
  in
  with_tmp (fun path1 ->
      with_tmp (fun path4 ->
          let r1 = compute path1 1 in
          let r4 = compute path4 4 in
          check_bool "results identical across domain counts" true (r1 = r4);
          check_string "journal files byte-identical"
            (Digest.to_hex (Digest.string (read_file path1)))
            (Digest.to_hex (Digest.string (read_file path4)))))

let test_crash_after_fires_at_kth_tick () =
  let fired_at = ref 0 in
  let ticks = ref 0 in
  Checkpoint.crash_after 5 (fun () -> fired_at := !ticks + 1);
  for _ = 1 to 9 do
    Checkpoint.crash_tick ();
    incr ticks
  done;
  (* Disarm: a huge threshold this process will never reach. *)
  Checkpoint.crash_after max_int ignore;
  check_int "hook fired exactly at the 5th tick" 5 !fired_at

let test_cache_hits_do_not_tick () =
  (* Restored units must not advance the crash counter, or a resumed run
     armed with the same --crash-at would die at a different unit than
     the fresh run. *)
  with_tmp (fun path ->
      let input = Array.init 6 (fun i -> i) in
      let j = Checkpoint.create ~path ~every:1 ~meta:"tick" in
      ignore (with_installed j (fun () -> Parallel.map ~domains:1 (fun x -> x) input));
      Checkpoint.finalize j;
      let fired = ref false in
      Checkpoint.crash_after 1 (fun () -> fired := true);
      let j' = Checkpoint.load ~path ~every:1 ~meta:"tick" in
      ignore (with_installed j' (fun () -> Parallel.map ~domains:1 (fun x -> x) input));
      Checkpoint.finalize j';
      Checkpoint.crash_after max_int ignore;
      check_bool "no tick on an all-cache-hit replay" false !fired)

let suite =
  [
    ("journal round-trip", `Quick, test_journal_roundtrip);
    ("meta mismatch rejected", `Quick, test_meta_mismatch);
    ("corrupt file rejected", `Quick, test_corrupt_file_rejected);
    ("parallel map memoizes", `Quick, test_parallel_memoizes);
    ("site numbering counts empty calls", `Quick, test_site_numbering_counts_empty_calls);
    ("results and journal invariant in domains", `Quick, test_domains_invariance);
    ("crash_after fires at kth tick", `Quick, test_crash_after_fires_at_kth_tick);
    ("cache hits do not tick", `Quick, test_cache_hits_do_not_tick);
  ]
