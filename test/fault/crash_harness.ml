(* Crash-fault injection harness for the checkpoint/resume guarantee.

   For each target the harness first probes a full checkpointed run to
   learn how many work units it journals, then for several randomized
   kill points k:

     1. runs a fresh child with [--ckpt F --checkpoint-every 1
        --crash-at k] and requires it to die by SIGKILL (the CLI arms a
        self-kill as the k-th fresh unit completes);
     2. resumes with [--resume F] and requires the resumed stdout to be
        byte-identical to the checked-in golden of an uninterrupted run.

   The record-replay target exercises the full-state codecs instead of
   the work-unit journal: its kill points are step numbers
   ([--crash-at-step]) and its golden is the event-stream + replay DOT.

   Kill points are drawn from the repo's own PRNG, so a given --seed
   reproduces the exact same schedule.  On failure the offending
   checkpoint file is preserved (copied into --artifacts when given) so
   CI can upload it. *)

module Prng = Churnet_util.Prng
module Checkpoint = Churnet_util.Checkpoint

let experiment_ids = [ "E1"; "E10"; "F4"; "F6"; "F8"; "F14" ]
let record_replay_steps = 150

(* The sweep target reads its grid from the checked-in smoke config and
   must reproduce both checked-in outputs: the rendered text (stdout)
   and the churnet-sweep/1 trajectory file (--json). *)
let sweep_config = "sweep_smoke_config.json"
let sweep_golden = "sweep_smoke"

(* --- tiny arg parser (the harness must not depend on cmdliner) ------- *)

type config = {
  mutable bin : string;
  mutable golden : string;
  mutable kills : int;
  mutable seed : int;
  mutable artifacts : string option;
  mutable ids : string list;
}

let usage () =
  prerr_endline
    "usage: crash_harness --bin CLI --golden DIR [--kills N] [--seed N]\n\
    \       [--artifacts DIR] [--ids E1,F4,record-replay]";
  exit 2

let parse_args () =
  let cfg =
    {
      bin = "";
      golden = "";
      kills = 3;
      seed = 42;
      artifacts = None;
      ids = experiment_ids @ [ "record-replay"; "sweep" ];
    }
  in
  let rec go = function
    | [] -> ()
    | "--bin" :: v :: rest ->
        cfg.bin <- v;
        go rest
    | "--golden" :: v :: rest ->
        cfg.golden <- v;
        go rest
    | "--kills" :: v :: rest ->
        cfg.kills <- int_of_string v;
        go rest
    | "--seed" :: v :: rest ->
        cfg.seed <- int_of_string v;
        go rest
    | "--artifacts" :: v :: rest ->
        cfg.artifacts <- Some v;
        go rest
    | "--ids" :: v :: rest ->
        cfg.ids <- String.split_on_char ',' v;
        go rest
    | arg :: _ ->
        Printf.eprintf "unknown argument %S\n" arg;
        usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  if cfg.bin = "" || cfg.golden = "" then usage ();
  cfg

(* --- child processes -------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let copy_file src dst =
  let oc = open_out_bin dst in
  output_string oc (read_file src);
  close_out oc

(* Run [bin args], stdout to [out] (stderr discarded), return the wait
   status. *)
let run_child bin args ~out =
  let out_fd = Unix.openfile out [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let null_fd = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process bin (Array.of_list (bin :: args)) Unix.stdin out_fd null_fd
  in
  Unix.close out_fd;
  Unix.close null_fd;
  let _, status = Unix.waitpid [] pid in
  status

let status_name = function
  | Unix.WEXITED c -> Printf.sprintf "exit %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s

(* --- the checks ------------------------------------------------------- *)

type outcome = { mutable failures : int; mutable checks : int }

let fail cfg outcome ~ckpt fmt =
  Printf.ksprintf
    (fun msg ->
      outcome.failures <- outcome.failures + 1;
      Printf.eprintf "FAIL: %s\n%!" msg;
      match cfg.artifacts with
      | Some dir when Sys.file_exists ckpt ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let dst = Filename.concat dir (Filename.basename ckpt) in
          copy_file ckpt dst;
          Printf.eprintf "  checkpoint preserved at %s\n%!" dst
      | _ -> ())
    fmt

let check_bytes cfg outcome ~ckpt ~golden_path ~out ~what =
  outcome.checks <- outcome.checks + 1;
  let expected = read_file golden_path in
  let actual = read_file out in
  if String.equal expected actual then
    Printf.printf "  ok: %s byte-identical (%d bytes)\n%!" what (String.length actual)
  else
    fail cfg outcome ~ckpt "%s: output differs from %s (%d vs %d bytes)" what
      golden_path (String.length actual) (String.length expected)

let expect_sigkill cfg outcome ~ckpt ~what status =
  outcome.checks <- outcome.checks + 1;
  match status with
  | Unix.WSIGNALED s when s = Sys.sigkill ->
      Printf.printf "  ok: %s died by SIGKILL as armed\n%!" what
  | other -> fail cfg outcome ~ckpt "%s: expected SIGKILL, got %s" what (status_name other)

(* Distinct kill points in [1, hi], uniformly drawn; fewer when the range
   is too small to hold [wanted] distinct values. *)
let kill_points rng ~wanted ~hi =
  let hi = max hi 1 in
  let points = ref [] in
  let attempts = ref 0 in
  while List.length !points < min wanted hi && !attempts < 100 * wanted do
    incr attempts;
    let k = 1 + Prng.int rng hi in
    if not (List.mem k !points) then points := k :: !points
  done;
  List.sort Int.compare !points

let run_experiment cfg outcome rng tmp id =
  let golden_path = Filename.concat cfg.golden (id ^ ".txt") in
  let ckpt = Filename.concat tmp (Printf.sprintf "%s.ckpt" id) in
  let out k tag = Filename.concat tmp (Printf.sprintf "%s.%d.%s" id k tag) in
  let base_args = [ "run"; id; "--seed"; "42"; "--scale"; "smoke" ] in
  (* Probe: a full checkpointed run tells us how many units there are. *)
  let probe_status =
    run_child cfg.bin
      (base_args @ [ "--ckpt"; ckpt; "--checkpoint-every"; "1" ])
      ~out:(out 0 "probe")
  in
  (match probe_status with
  | Unix.WEXITED 0 | Unix.WEXITED 2 -> ()
  | other -> fail cfg outcome ~ckpt "%s probe run: %s" id (status_name other));
  check_bytes cfg outcome ~ckpt ~golden_path ~out:(out 0 "probe")
    ~what:(id ^ " probe run");
  let _, units = Checkpoint.inspect ckpt in
  if units < 1 then fail cfg outcome ~ckpt "%s journaled no work units" id
  else begin
    Printf.printf "%s: %d work units, kill points from [1, %d]\n%!" id units units;
    List.iter
      (fun k ->
        Sys.remove ckpt;
        let what = Printf.sprintf "%s --crash-at %d" id k in
        let status =
          run_child cfg.bin
            (base_args
            @ [
                "--ckpt"; ckpt; "--checkpoint-every"; "1"; "--crash-at"; string_of_int k;
              ])
            ~out:(out k "crash")
        in
        expect_sigkill cfg outcome ~ckpt ~what status;
        let resume_status =
          run_child cfg.bin (base_args @ [ "--resume"; ckpt ]) ~out:(out k "resumed")
        in
        (match resume_status with
        | Unix.WEXITED 0 | Unix.WEXITED 2 -> ()
        | other ->
            fail cfg outcome ~ckpt "%s resume after kill at %d: %s" id k
              (status_name other));
        check_bytes cfg outcome ~ckpt ~golden_path ~out:(out k "resumed")
          ~what:(Printf.sprintf "%s resumed after kill at unit %d" id k))
      (kill_points rng ~wanted:cfg.kills ~hi:units)
  end

(* Sweep crash/resume: like run_experiment but the unit of work is a
   grid cell (or an inner unit of an experiment cell), and on top of the
   stdout golden the aggregated trajectory file must also come out
   byte-identical after a mid-sweep SIGKILL. *)
let run_sweep cfg outcome rng tmp =
  let id = sweep_golden in
  let config_path = Filename.concat cfg.golden sweep_config in
  let golden_txt = Filename.concat cfg.golden (sweep_golden ^ ".txt") in
  let golden_json = Filename.concat cfg.golden (sweep_golden ^ ".json") in
  let ckpt = Filename.concat tmp "sweep.ckpt" in
  let out k tag = Filename.concat tmp (Printf.sprintf "%s.%d.%s" id k tag) in
  let base_args = [ "sweep"; "--config"; config_path ] in
  let probe_status =
    run_child cfg.bin
      (base_args
      @ [ "--ckpt"; ckpt; "--checkpoint-every"; "1"; "--json"; out 0 "probe.json" ])
      ~out:(out 0 "probe")
  in
  (match probe_status with
  | Unix.WEXITED 0 | Unix.WEXITED 2 -> ()
  | other -> fail cfg outcome ~ckpt "sweep probe run: %s" (status_name other));
  check_bytes cfg outcome ~ckpt ~golden_path:golden_txt ~out:(out 0 "probe")
    ~what:"sweep probe stdout";
  check_bytes cfg outcome ~ckpt ~golden_path:golden_json ~out:(out 0 "probe.json")
    ~what:"sweep probe trajectory file";
  let _, units = Checkpoint.inspect ckpt in
  if units < 1 then fail cfg outcome ~ckpt "sweep journaled no work units"
  else begin
    Printf.printf "sweep: %d work units, kill points from [1, %d]\n%!" units units;
    List.iter
      (fun k ->
        Sys.remove ckpt;
        let what = Printf.sprintf "sweep --crash-at %d" k in
        let status =
          run_child cfg.bin
            (base_args
            @ [
                "--ckpt"; ckpt; "--checkpoint-every"; "1"; "--crash-at"; string_of_int k;
              ])
            ~out:(out k "crash")
        in
        expect_sigkill cfg outcome ~ckpt ~what status;
        let resume_status =
          run_child cfg.bin
            (base_args @ [ "--resume"; ckpt; "--json"; out k "resumed.json" ])
            ~out:(out k "resumed")
        in
        (match resume_status with
        | Unix.WEXITED 0 | Unix.WEXITED 2 -> ()
        | other ->
            fail cfg outcome ~ckpt "sweep resume after kill at %d: %s" k
              (status_name other));
        check_bytes cfg outcome ~ckpt ~golden_path:golden_txt ~out:(out k "resumed")
          ~what:(Printf.sprintf "sweep stdout resumed after kill at unit %d" k);
        check_bytes cfg outcome ~ckpt ~golden_path:golden_json
          ~out:(out k "resumed.json")
          ~what:(Printf.sprintf "sweep trajectory resumed after kill at unit %d" k))
      (kill_points rng ~wanted:cfg.kills ~hi:units)
  end

let run_record_replay cfg outcome rng tmp =
  let id = "record_replay" in
  let golden_path = Filename.concat cfg.golden (id ^ ".txt") in
  let ckpt = Filename.concat tmp "record_replay.ckpt" in
  let out k tag = Filename.concat tmp (Printf.sprintf "%s.%d.%s" id k tag) in
  (* Kill strictly before the last step so the resume has work left. *)
  List.iter
    (fun k ->
      if Sys.file_exists ckpt then Sys.remove ckpt;
      let what = Printf.sprintf "record-replay --crash-at-step %d" k in
      let status =
        run_child cfg.bin
          [ "record-replay"; "--ckpt"; ckpt; "--crash-at-step"; string_of_int k ]
          ~out:(out k "crash")
      in
      expect_sigkill cfg outcome ~ckpt ~what status;
      let resume_status =
        run_child cfg.bin [ "record-replay"; "--resume"; ckpt ] ~out:(out k "resumed")
      in
      (match resume_status with
      | Unix.WEXITED 0 -> ()
      | other ->
          fail cfg outcome ~ckpt "record-replay resume after step %d: %s" k
            (status_name other));
      check_bytes cfg outcome ~ckpt ~golden_path ~out:(out k "resumed")
        ~what:(Printf.sprintf "record-replay resumed after step %d" k))
    (kill_points rng ~wanted:cfg.kills ~hi:(record_replay_steps - 1))

let () =
  let cfg = parse_args () in
  let rng = Prng.create cfg.seed in
  let tmp =
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "churnet-fault-%d" (Unix.getpid ()))
    in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o700;
    dir
  in
  let outcome = { failures = 0; checks = 0 } in
  List.iter
    (fun id ->
      if id = "record-replay" || id = "record_replay" then
        run_record_replay cfg outcome rng tmp
      else if id = "sweep" then run_sweep cfg outcome rng tmp
      else run_experiment cfg outcome rng tmp id)
    cfg.ids;
  Printf.printf "crash harness: %d checks, %d failures\n%!" outcome.checks
    outcome.failures;
  if outcome.failures > 0 then exit 1
