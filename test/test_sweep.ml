(* Sweep config parsing/validation and grid expansion.

   The determinism contract (serial == --domains 4 == crash/resumed, byte
   for byte) is covered by the golden rules in test/dune and the fault
   harness; here we pin down the planner itself: which configs are
   accepted, which are refused with a diagnostic, and the expansion
   order that doubles as the journal's work-unit numbering. *)

module Sweep = Churnet_experiments.Sweep
module Models = Churnet_core.Models
module Scale = Churnet_experiments.Scale
module Json = Churnet_util.Json

let parse text = Sweep.config_of_json (Json.of_string_exn text)

let ok text =
  match parse text with
  | Ok cfg -> cfg
  | Error e -> Alcotest.failf "expected config to parse, got: %s" e

let rejected ~needle text =
  match parse text with
  | Ok _ -> Alcotest.failf "config unexpectedly accepted (wanted error about %S)" needle
  | Error e ->
      let lower = String.lowercase_ascii e in
      let needle_l = String.lowercase_ascii needle in
      let contains hay sub =
        let nh = String.length hay and ns = String.length sub in
        let rec go i = i + ns <= nh && (String.sub hay i ns = sub || go (i + 1)) in
        go 0
      in
      if not (contains lower needle_l) then
        Alcotest.failf "error %S does not mention %S" e needle

let smoke_grid =
  {|{"schema": "churnet-sweep-config/1", "name": "t",
     "grid": {"models": ["SDGR"], "n": [120, 240], "d": [3],
              "lambda": [1.0], "seeds": [7, 8]}}|}

let test_parse_and_expand () =
  let cfg = ok smoke_grid in
  let cells = Sweep.cells cfg in
  Alcotest.(check int) "4 cells" 4 (List.length cells);
  (* Expansion order is models -> n -> d -> lambda -> seeds: it numbers
     the journal's work units, so it is part of the on-disk format. *)
  let expect =
    [ (120, 7); (120, 8); (240, 7); (240, 8) ]
  in
  List.iter2
    (fun (n, seed) (c : Sweep.cell) ->
      Alcotest.(check int) "cell n" n c.Sweep.n;
      Alcotest.(check int) "cell seed" seed c.Sweep.cell_seed;
      Alcotest.(check int) "cell d" 3 c.Sweep.d)
    expect cells

let test_defaults () =
  let cfg =
    ok
      {|{"schema": "churnet-sweep-config/1", "name": "t",
         "grid": {"models": ["PDG"], "n": [100], "d": [2], "seeds": [1]},
         "experiments": {"ids": ["E1"]}}|}
  in
  (match cfg.Sweep.grid with
  | Some g -> Alcotest.(check (list (float 0.))) "lambda defaults to [1]" [ 1.0 ] g.Sweep.lambdas
  | None -> Alcotest.fail "grid missing");
  match cfg.Sweep.experiments with
  | Some e ->
      Alcotest.(check (list int)) "seeds default to [42]" [ 42 ] e.Sweep.exp_seeds;
      Alcotest.(check bool) "scale defaults to smoke" true (e.Sweep.exp_scale = Scale.Smoke)
  | None -> Alcotest.fail "experiments missing"

let test_config_roundtrip () =
  (* The canonical form re-parses to the same plan: what the journal
     identity digests is a fixed point of the parser. *)
  let cfg = ok smoke_grid in
  let cfg' =
    match Sweep.config_of_json (Sweep.config_to_json cfg) with
    | Ok c -> c
    | Error e -> Alcotest.failf "canonical form failed to re-parse: %s" e
  in
  Alcotest.(check bool) "same expansion" true (Sweep.cells cfg = Sweep.cells cfg')

let test_rejects_unknown_model () =
  rejected ~needle:"unknown model"
    {|{"schema": "churnet-sweep-config/1", "name": "t",
       "grid": {"models": ["QDG"], "n": [100], "d": [2], "seeds": [1]}}|}

let test_rejects_empty_axis () =
  rejected ~needle:"empty"
    {|{"schema": "churnet-sweep-config/1", "name": "t",
       "grid": {"models": ["SDG"], "n": [], "d": [2], "seeds": [1]}}|}

let test_rejects_duplicate_axis_value () =
  rejected ~needle:"repeats"
    {|{"schema": "churnet-sweep-config/1", "name": "t",
       "grid": {"models": ["SDG"], "n": [100], "d": [2], "seeds": [5, 5]}}|}

let test_rejects_unknown_experiment () =
  rejected ~needle:"unknown experiment"
    {|{"schema": "churnet-sweep-config/1", "name": "t",
       "experiments": {"ids": ["E999"]}}|}

let test_rejects_streaming_lambda () =
  rejected ~needle:"streaming"
    {|{"schema": "churnet-sweep-config/1", "name": "t",
       "grid": {"models": ["SDGR"], "n": [100], "d": [2],
                "lambda": [0.5], "seeds": [1]}}|}

let test_rejects_bad_schema () =
  rejected ~needle:"schema"
    {|{"schema": "churnet-sweep-config/2", "name": "t",
       "grid": {"models": ["SDG"], "n": [100], "d": [2], "seeds": [1]}}|};
  rejected ~needle:"schema" {|{"name": "t", "grid": {}}|}

let test_rejects_empty_config () =
  rejected ~needle:"neither"
    {|{"schema": "churnet-sweep-config/1", "name": "t"}|}

let test_rejects_bad_scale () =
  rejected ~needle:"unknown scale"
    {|{"schema": "churnet-sweep-config/1", "name": "t",
       "experiments": {"ids": ["E1"], "scale": "galactic"}}|}

let test_rejects_nonpositive () =
  rejected ~needle:"n"
    {|{"schema": "churnet-sweep-config/1", "name": "t",
       "grid": {"models": ["SDG"], "n": [1], "d": [2], "seeds": [1]}}|};
  rejected ~needle:"degree"
    {|{"schema": "churnet-sweep-config/1", "name": "t",
       "grid": {"models": ["SDG"], "n": [100], "d": [0], "seeds": [1]}}|};
  rejected ~needle:"lambda"
    {|{"schema": "churnet-sweep-config/1", "name": "t",
       "grid": {"models": ["PDG"], "n": [100], "d": [2],
                "lambda": [-1.0], "seeds": [1]}}|}

let test_config_of_file_missing () =
  match Sweep.config_of_file "no-such-sweep-config.json" with
  | Ok _ -> Alcotest.fail "missing file unexpectedly parsed"
  | Error e ->
      Alcotest.(check bool) "mentions the problem" true
        (String.length e > 0 && String.sub e 0 12 = "sweep config")

let test_grid_run_deterministic () =
  (* Two in-process runs of a tiny grid agree exactly — the cheap
     in-harness face of the golden determinism contract. *)
  let cfg =
    ok
      {|{"schema": "churnet-sweep-config/1", "name": "t",
         "grid": {"models": ["SDG", "PDGR"], "n": [80], "d": [2, 4],
                  "seeds": [3]}}|}
  in
  let o1 = Sweep.run cfg and o2 = Sweep.run cfg in
  Alcotest.(check int) "4 cells" 4 (Array.length o1.Sweep.cell_results);
  Alcotest.(check bool) "metrics identical" true
    (Json.to_string (Sweep.to_json o1) = Json.to_string (Sweep.to_json o2));
  Alcotest.(check bool) "render identical" true (Sweep.render o1 = Sweep.render o2)

let suite =
  [
    ("parse and expand", `Quick, test_parse_and_expand);
    ("defaults", `Quick, test_defaults);
    ("canonical form round-trips", `Quick, test_config_roundtrip);
    ("rejects unknown model", `Quick, test_rejects_unknown_model);
    ("rejects empty axis", `Quick, test_rejects_empty_axis);
    ("rejects duplicate axis value", `Quick, test_rejects_duplicate_axis_value);
    ("rejects unknown experiment id", `Quick, test_rejects_unknown_experiment);
    ("rejects lambda on streaming model", `Quick, test_rejects_streaming_lambda);
    ("rejects bad schema", `Quick, test_rejects_bad_schema);
    ("rejects empty config", `Quick, test_rejects_empty_config);
    ("rejects bad scale", `Quick, test_rejects_bad_scale);
    ("rejects non-positive axes", `Quick, test_rejects_nonpositive);
    ("config_of_file missing file", `Quick, test_config_of_file_missing);
    ("grid run deterministic", `Quick, test_grid_run_deterministic);
  ]
