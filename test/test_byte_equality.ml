(* Byte-equality harness for the graph-core swap.

   The golden files under test/golden/ were rendered by the
   hashtable-backed Dyngraph *before* the slot-arena rewrite, with the
   regeneration draw order already canonicalized (in-neighbors ascending,
   slots in index order — see Dyngraph.kill's doc).  The arena core must
   consume the PRNG in exactly the same sequence, so every experiment
   report and the full record/replay event stream must match those files
   byte for byte.  Any drift here means the graph rewrite changed the
   simulated trajectories, not just their cost.

   Regenerating (only after an *intentional* behavior change):
     CHURNET_GOLDEN_OUT=$PWD/test/golden dune exec test/test_main.exe -- \
       test byte-equality *)

open Churnet_graph
module Registry = Churnet_experiments.Registry
module Report = Churnet_experiments.Report
module Scale = Churnet_experiments.Scale
module Prng = Churnet_util.Prng

let golden_seed = 42
let experiment_ids = [ "E1"; "E10"; "F4"; "F6"; "F8"; "F14" ]

let experiment_render id =
  match Registry.find id with
  | Some e -> Report.render (e.Registry.run ~seed:golden_seed ~scale:Scale.Smoke)
  | None -> Alcotest.failf "unknown experiment %s" id

let snapshots_equal a b =
  Snapshot.n a = Snapshot.n b
  && Snapshot.ids a = Snapshot.ids b
  &&
  let ok = ref true in
  for i = 0 to Snapshot.n a - 1 do
    if Snapshot.neighbors a i <> Snapshot.neighbors b i then ok := false;
    if Snapshot.birth_of_index a i <> Snapshot.birth_of_index b i then ok := false
  done;
  !ok

(* A full record/replay cycle on a regenerating graph under scripted
   churn: the event-log text captures the exact hook sequence (births
   with their sampled targets, every regeneration edge, deaths), i.e.
   the complete observable draw history of the run. *)
let record_replay_text () =
  let g = Dyngraph.create ~rng:(Prng.create 4242) ~d:3 ~regenerate:true () in
  let log = Event_log.create () in
  Event_log.attach log g;
  let rng = Prng.create 999 in
  for i = 1 to 150 do
    if Dyngraph.alive_count g > 3 && Prng.bernoulli rng 0.4 then
      Dyngraph.kill g (Dyngraph.random_alive g)
    else ignore (Dyngraph.add_node g ~birth:i)
  done;
  Event_log.detach log g;
  let live = Dyngraph.snapshot g in
  let replayed = Event_log.replay log in
  Alcotest.(check bool) "replay reconstructs the live topology" true
    (snapshots_equal live replayed);
  Event_log.to_string log ^ "-- replay --\n" ^ Snapshot.to_dot ~name:"replay" replayed

let cases = List.map (fun id -> (id, fun () -> experiment_render id)) experiment_ids

let all_cases = cases @ [ ("record_replay", record_replay_text) ]

let golden_path name = Filename.concat "golden" (name ^ ".txt")

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let check_case (name, produce) () =
  match Sys.getenv_opt "CHURNET_GOLDEN_OUT" with
  | Some dir ->
      write_file (Filename.concat dir (name ^ ".txt")) (produce ());
      Printf.printf "wrote %s/%s.txt\n%!" dir name
  | None ->
      let expected =
        try read_file (golden_path name)
        with Sys_error e -> Alcotest.failf "missing golden file for %s: %s" name e
      in
      let actual = produce () in
      if not (String.equal expected actual) then
        Alcotest.failf
          "%s output drifted from its golden file (%d bytes vs %d): the graph \
           core changed the PRNG draw sequence"
          name (String.length expected) (String.length actual)

let suite =
  List.map (fun case -> (fst case, `Quick, check_case case)) all_cases
