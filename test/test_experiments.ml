(* Integration tests: the whole experiment registry at smoke scale, the
   report rendering machinery, and the Scale helpers. *)
module Registry = Churnet_experiments.Registry
module Report = Churnet_experiments.Report
module Scale = Churnet_experiments.Scale

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_scale_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check (option string))
        "roundtrip"
        (Some (Scale.to_string s))
        (Option.map Scale.to_string (Scale.of_string (Scale.to_string s))))
    [ Scale.Smoke; Scale.Standard; Scale.Full ];
  check_bool "unknown" true (Scale.of_string "banana" = None)

let test_scale_pick () =
  check_int "picks smoke" 1 (Scale.pick Scale.Smoke ~smoke:1 ~standard:2 ~full:3);
  check_int "picks standard" 2 (Scale.pick Scale.Standard ~smoke:1 ~standard:2 ~full:3);
  check_int "picks full" 3 (Scale.pick Scale.Full ~smoke:1 ~standard:2 ~full:3)

let test_registry_lookup () =
  check_bool "finds E1" true (Registry.find "E1" <> None);
  check_bool "case insensitive" true (Registry.find "e10" <> None);
  check_bool "unknown" true (Registry.find "Z9" = None);
  check_int "twelve table1 cells" 12 (List.length Registry.table1);
  check_bool "figures present" true (List.length Registry.figures >= 11);
  check_bool "extensions present" true (List.length Registry.extensions >= 4);
  check_bool "theory present" true (List.length Registry.theory >= 1)

let test_registry_ids_unique () =
  let ids = List.map (fun (e : Registry.entry) -> e.id) Registry.all in
  check_int "no duplicate ids" (List.length ids) (List.length (List.sort_uniq compare ids))

let test_report_rendering () =
  let r =
    Report.make ~id:"Z0" ~title:"demo"
      [
        Report.check ~claim:"c" ~expected:"e" ~measured:"m" ~holds:true;
        Report.check ~claim:"c2" ~expected:"e2" ~measured:"m2" ~holds:false;
      ]
  in
  check_bool "not all hold" false (Report.all_hold r);
  let s = Report.render r in
  let contains needle hay =
    let found = ref false in
    for i = 0 to String.length hay - String.length needle do
      if String.sub hay i (String.length needle) = needle then found := true
    done;
    !found
  in
  check_bool "has PASS" true (contains "PASS" s);
  check_bool "has FAIL" true (contains "FAIL" s);
  Alcotest.(check (list string)) "summary row" [ "Z0"; "demo"; "1/2 checks hold" ]
    (Report.summary_row r)

(* The heavyweight one: every registered experiment must run at smoke
   scale and every paper-direction check must hold (fixed seed). *)
let test_every_experiment_smoke () =
  List.iter
    (fun (e : Registry.entry) ->
      let r = e.run ~seed:2024 ~scale:Scale.Smoke in
      check_bool (Printf.sprintf "%s id matches" e.id) true (r.Report.id = e.id);
      check_bool
        (Printf.sprintf "%s all checks hold at smoke scale" e.id)
        true (Report.all_hold r))
    Registry.all

let test_run_all_subset () =
  let reports = Registry.run_all ~ids:[ "E12"; "T1" ] ~seed:7 ~scale:Scale.Smoke () in
  check_int "two reports" 2 (List.length reports);
  let summary = Registry.summary reports in
  check_bool "summary renders" true (String.length (Churnet_util.Table.render summary) > 0)

let suite =
  [
    ("scale roundtrip", `Quick, test_scale_roundtrip);
    ("scale pick", `Quick, test_scale_pick);
    ("registry lookup", `Quick, test_registry_lookup);
    ("registry ids unique", `Quick, test_registry_ids_unique);
    ("report rendering", `Quick, test_report_rendering);
    ("every experiment at smoke scale", `Slow, test_every_experiment_smoke);
    ("run_all subset", `Quick, test_run_all_subset);
  ]
