(* Integration tests: the whole experiment registry at smoke scale, the
   report rendering machinery, the JSON observability layer, and the
   Scale helpers. *)
module Registry = Churnet_experiments.Registry
module Report = Churnet_experiments.Report
module Scale = Churnet_experiments.Scale
module Telemetry = Churnet_experiments.Telemetry
module Json = Churnet_util.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_scale_roundtrip () =
  (* Exhaustive over [Scale.all] so a new tier cannot dodge the test. *)
  List.iter
    (fun s ->
      Alcotest.(check (option string))
        "roundtrip"
        (Some (Scale.to_string s))
        (Option.map Scale.to_string (Scale.of_string (Scale.to_string s))))
    Scale.all;
  check_int "all tiers present" 4 (List.length Scale.all);
  Alcotest.(check (list string))
    "names in all order" [ "smoke"; "standard"; "full"; "xl" ] Scale.names;
  check_bool "case insensitive" true (Scale.of_string "XL" = Some Scale.XL);
  check_bool "unknown" true (Scale.of_string "banana" = None)

let test_scale_pick () =
  check_int "picks smoke" 1 (Scale.pick Scale.Smoke ~smoke:1 ~standard:2 ~full:3);
  check_int "picks standard" 2 (Scale.pick Scale.Standard ~smoke:1 ~standard:2 ~full:3);
  check_int "picks full" 3 (Scale.pick Scale.Full ~smoke:1 ~standard:2 ~full:3);
  check_int "picks xl" 4 (Scale.pick ~xl:4 Scale.XL ~smoke:1 ~standard:2 ~full:3);
  check_int "xl defaults to full" 3 (Scale.pick Scale.XL ~smoke:1 ~standard:2 ~full:3)

let test_registry_lookup () =
  check_bool "finds E1" true (Registry.find "E1" <> None);
  check_bool "case insensitive" true (Registry.find "e10" <> None);
  check_bool "unknown" true (Registry.find "Z9" = None);
  check_int "twelve table1 cells" 12 (List.length Registry.table1);
  check_bool "figures present" true (List.length Registry.figures >= 11);
  check_bool "extensions present" true (List.length Registry.extensions >= 4);
  check_bool "theory present" true (List.length Registry.theory >= 1)

let test_registry_ids_unique () =
  let ids = List.map (fun (e : Registry.entry) -> e.id) Registry.all in
  check_int "no duplicate ids" (List.length ids) (List.length (List.sort_uniq String.compare ids))

let test_report_rendering () =
  let r =
    Report.make ~id:"Z0" ~title:"demo"
      [
        Report.check ~claim:"c" ~expected:"e" ~measured:"m" ~holds:true;
        Report.check ~claim:"c2" ~expected:"e2" ~measured:"m2" ~holds:false;
      ]
  in
  check_bool "not all hold" false (Report.all_hold r);
  let s = Report.render r in
  let contains needle hay =
    let found = ref false in
    for i = 0 to String.length hay - String.length needle do
      if String.sub hay i (String.length needle) = needle then found := true
    done;
    !found
  in
  check_bool "has PASS" true (contains "PASS" s);
  check_bool "has FAIL" true (contains "FAIL" s);
  Alcotest.(check (list string)) "summary row" [ "Z0"; "demo"; "1/2 checks hold" ]
    (Report.summary_row r)

(* The heavyweight one: every registered experiment must run at smoke
   scale and every paper-direction check must hold (fixed seed). *)
let test_every_experiment_smoke () =
  List.iter
    (fun (e : Registry.entry) ->
      let r = e.run ~seed:2024 ~scale:Scale.Smoke in
      check_bool (Printf.sprintf "%s id matches" e.id) true (r.Report.id = e.id);
      check_bool
        (Printf.sprintf "%s all checks hold at smoke scale" e.id)
        true (Report.all_hold r))
    Registry.all

let test_run_all_subset () =
  let reports = Registry.run_all ~ids:[ "E12"; "T1" ] ~seed:7 ~scale:Scale.Smoke () in
  check_int "two reports" 2 (List.length reports);
  let summary = Registry.summary reports in
  check_bool "summary renders" true (String.length (Churnet_util.Table.render summary) > 0)

let contains needle hay =
  let nl = String.length needle in
  let found = ref false in
  for i = 0 to String.length hay - nl do
    if String.sub hay i nl = needle then found := true
  done;
  !found

(* Regression: a misspelled id used to be dropped silently, so the caller
   simply got fewer reports.  Now every unknown id must be named. *)
let test_run_all_unknown_ids_raise () =
  let expect_invalid ids expected_fragments =
    match Registry.run_all ~ids ~seed:7 ~scale:Scale.Smoke () with
    | _ -> Alcotest.fail "unknown id accepted silently"
    | exception Invalid_argument msg ->
        List.iter
          (fun frag ->
            check_bool (Printf.sprintf "error mentions %s" frag) true (contains frag msg))
          expected_fragments
  in
  (* unknown alone, and mixed with perfectly valid ids *)
  expect_invalid [ "Z9" ] [ "Z9"; "E1" ];
  expect_invalid [ "E12"; "NOPE"; "T1"; "ALSO_BAD" ] [ "NOPE"; "ALSO_BAD" ];
  (* run_timed validates identically *)
  (match Registry.run_timed ~ids:[ "Z9" ] ~seed:7 ~scale:Scale.Smoke () with
  | _ -> Alcotest.fail "run_timed accepted unknown id"
  | exception Invalid_argument _ -> ());
  (* and valid ids still work, case-insensitively *)
  check_int "valid subset unaffected" 1
    (List.length (Registry.run_all ~ids:[ "t1" ] ~seed:7 ~scale:Scale.Smoke ()))

(* The --json schema: run one real experiment, serialize through the
   CLI's envelope, parse it back with our own parser, and verify every
   check carries holds plus the nullable typed payloads. *)
let test_json_schema_smoke () =
  let timed = Registry.run_timed ~ids:[ "E1" ] ~seed:2024 ~scale:Scale.Smoke () in
  let doc = Registry.reports_to_json ~seed:2024 ~scale:Scale.Smoke ~domains:1 timed in
  let parsed = Json.of_string_exn (Json.to_string ~pretty:true doc) in
  check_bool "schema tag" true
    (Option.bind (Json.member "schema" parsed) Json.as_string
    = Some "churnet-report/1");
  check_bool "seed" true (Option.bind (Json.member "seed" parsed) Json.as_int = Some 2024);
  let reports = Json.as_list (Option.get (Json.member "reports" parsed)) in
  check_int "one report" 1 (List.length reports);
  let report = List.hd reports in
  check_bool "id" true
    (Option.bind (Json.member "id" report) Json.as_string = Some "E1");
  check_bool "all_hold present" true
    (Option.bind (Json.member "all_hold" report) Json.as_bool <> None);
  let checks = Json.as_list (Option.get (Json.member "checks" report)) in
  let (r, _) = List.hd timed in
  check_int "every check serialized" (List.length r.Report.checks) (List.length checks);
  check_bool "checks nonempty" true (checks <> []);
  List.iter
    (fun c ->
      check_bool "check has holds" true
        (Option.bind (Json.member "holds" c) Json.as_bool <> None);
      check_bool "check has claim" true
        (Option.bind (Json.member "claim" c) Json.as_string <> None);
      (* typed payloads are present as keys (value may be null) *)
      check_bool "check has expected_value key" true (Json.member "expected_value" c <> None);
      check_bool "check has measured_value key" true (Json.member "measured_value" c <> None))
    checks;
  (* E1's first check carries the typed scalar pair *)
  let first = List.hd checks in
  check_bool "typed expected_value" true
    (Option.bind (Json.member "expected_value" first) Json.as_float <> None);
  check_bool "typed measured_value" true
    (Option.bind (Json.member "measured_value" first) Json.as_float <> None);
  (* telemetry rides along with sane fields *)
  let tele = Option.get (Json.member "telemetry" report) in
  check_bool "wall_seconds >= 0" true
    (match Option.bind (Json.member "wall_seconds" tele) Json.as_float with
    | Some w -> w >= 0.
    | None -> false);
  check_bool "minor_words present" true
    (Option.bind (Json.member "minor_words" tele) Json.as_float <> None);
  check_bool "scale string" true
    (Option.bind (Json.member "scale" tele) Json.as_string = Some "smoke");
  (* tables survive as headers + rows *)
  let tables = Json.as_list (Option.get (Json.member "tables" report)) in
  check_int "table count" (List.length r.Report.tables) (List.length tables)

(* Per-cell RSS attribution: VmHWM is process-wide and monotone, so in a
   multi-cell run every cell after the first inherits the maximum of its
   predecessors.  Two dummy cells of very different footprints: the big
   one must claim the watermark (cell_peak_rss_kb set), the tiny one
   that follows must inherit the absolute number but NOT claim it. *)
let test_cell_peak_rss_attribution () =
  match Telemetry.peak_rss_kb () with
  | None -> () (* no procfs: nothing to attribute *)
  | Some baseline_kb when baseline_kb > 2_000_000 ->
      (* pathological watermark (> 2 GB): pushing past it would OOM the
         test runner, and the attribution logic is watermark-relative
         anyway *)
      ()
  | Some baseline_kb ->
      let big_bytes = (baseline_kb * 1024) + (96 * 1024 * 1024) in
      let _, t1 =
        Telemetry.measure ~seed:0 ~scale:Scale.Smoke ~domains:1 (fun () ->
            (* Bytes.make touches every page, so RSS really reaches the
               target and the watermark must rise during this cell *)
            Sys.opaque_identity (Bytes.length (Bytes.make big_bytes 'x')))
      in
      let _, t2 =
        Telemetry.measure ~seed:0 ~scale:Scale.Smoke ~domains:1 (fun () ->
            Sys.opaque_identity (Array.length (Array.make 8 0)))
      in
      check_bool "big cell claims the watermark" true (t1.Telemetry.cell_peak_rss_kb <> None);
      check_bool "big cell per-cell equals absolute" true
        (t1.Telemetry.cell_peak_rss_kb = t1.Telemetry.peak_rss_kb);
      check_bool "tiny cell does not claim the inherited watermark" true
        (t2.Telemetry.cell_peak_rss_kb = None);
      check_bool "tiny cell still reports the absolute watermark" true
        (match (t1.Telemetry.peak_rss_kb, t2.Telemetry.peak_rss_kb) with
        | Some big, Some after -> after >= big
        | _ -> false)

(* Text rendering must be byte-identical whether or not JSON is emitted:
   same seed, one run through run_all, one through run_timed (+ to_json),
   identical bytes. *)
let test_render_unchanged_by_json_emission () =
  let plain = Registry.run_all ~ids:[ "T1" ] ~seed:2024 ~scale:Scale.Smoke () in
  let timed = Registry.run_timed ~ids:[ "T1" ] ~seed:2024 ~scale:Scale.Smoke () in
  (* emit JSON from the timed run before rendering, to prove emission
     does not disturb the text *)
  let _json =
    Json.to_string (Registry.reports_to_json ~seed:2024 ~scale:Scale.Smoke ~domains:1 timed)
  in
  let render reports = String.concat "" (List.map Report.render reports) in
  Alcotest.(check string)
    "byte-identical rendering" (render plain)
    (render (List.map fst timed))

let suite =
  [
    ("scale roundtrip", `Quick, test_scale_roundtrip);
    ("scale pick", `Quick, test_scale_pick);
    ("registry lookup", `Quick, test_registry_lookup);
    ("registry ids unique", `Quick, test_registry_ids_unique);
    ("report rendering", `Quick, test_report_rendering);
    ("every experiment at smoke scale", `Slow, test_every_experiment_smoke);
    ("run_all subset", `Quick, test_run_all_subset);
    ("run_all unknown ids raise", `Quick, test_run_all_unknown_ids_raise);
    ("json schema smoke", `Quick, test_json_schema_smoke);
    ("cell peak rss attribution", `Quick, test_cell_peak_rss_attribution);
    ("render unchanged by json emission", `Quick, test_render_unchanged_by_json_emission);
  ]
