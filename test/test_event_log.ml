(* Tests for Event_log (capture / replay / serialize) and Metrics. *)
open Churnet_graph
module Prng = Churnet_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let close ?(eps = 1e-9) msg a b = check_bool msg true (Float.abs (a -. b) < eps)

(* --- Event_log --- *)

let snapshots_equal a b =
  Snapshot.n a = Snapshot.n b
  && Array.for_all2 (fun x y -> x = y) (Snapshot.ids a) (Snapshot.ids b)
  &&
  let ok = ref true in
  for i = 0 to Snapshot.n a - 1 do
    if Snapshot.neighbors a i <> Snapshot.neighbors b i then ok := false
  done;
  !ok

let run_logged ~regenerate ~seed ~ops =
  let g = Dyngraph.create ~rng:(Prng.create seed) ~d:3 ~regenerate () in
  let log = Event_log.create () in
  Event_log.attach log g;
  let rng = Prng.create (seed + 1) in
  for i = 1 to ops do
    if Dyngraph.alive_count g > 3 && Prng.bernoulli rng 0.45 then
      Dyngraph.kill g (Dyngraph.random_alive g)
    else ignore (Dyngraph.add_node g ~birth:i)
  done;
  Event_log.detach log g;
  (g, log)

let test_capture_counts () =
  let g = Dyngraph.create ~rng:(Prng.create 1) ~d:2 ~regenerate:false () in
  let log = Event_log.create () in
  Event_log.attach log g;
  let a = Dyngraph.add_node g ~birth:1 in
  let _b = Dyngraph.add_node g ~birth:2 in
  Dyngraph.kill g a;
  Event_log.detach log g;
  let evts = Event_log.events log in
  check_int "3 events" 3 (Array.length evts);
  (match evts.(0) with
  | Event_log.Birth { id; targets; _ } ->
      check_int "first birth id" a id;
      check_int "no targets for founder" 0 (Array.length targets)
  | _ -> Alcotest.fail "expected birth");
  match evts.(2) with
  | Event_log.Death { id } -> check_int "death id" a id
  | _ -> Alcotest.fail "expected death"

let test_replay_matches_live_no_regen () =
  let g, log = run_logged ~regenerate:false ~seed:3 ~ops:120 in
  let live = Dyngraph.snapshot g in
  let replayed = Event_log.replay log in
  check_bool "replayed topology equals live" true (snapshots_equal live replayed)

let test_replay_matches_live_regen () =
  let g, log = run_logged ~regenerate:true ~seed:5 ~ops:120 in
  let live = Dyngraph.snapshot g in
  let replayed = Event_log.replay log in
  check_bool "replayed topology equals live (regeneration)" true
    (snapshots_equal live replayed)

let test_replay_prefix () =
  let _, log = run_logged ~regenerate:true ~seed:7 ~ops:60 in
  let series = Event_log.population_series log in
  (* Population after k events equals the replayed snapshot size. *)
  List.iter
    (fun k ->
      let snap = Event_log.replay ~upto:k log in
      check_int
        (Printf.sprintf "population at %d" k)
        series.(k - 1) (Snapshot.n snap))
    [ 1; 10; Event_log.length log / 2; Event_log.length log ]

let test_roundtrip_serialization () =
  let _, log = run_logged ~regenerate:true ~seed:9 ~ops:80 in
  let text = Event_log.to_string log in
  match Event_log.of_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok log2 ->
      check_int "same length" (Event_log.length log) (Event_log.length log2);
      check_bool "same replay" true
        (snapshots_equal (Event_log.replay log) (Event_log.replay log2))

let test_parse_errors () =
  (match Event_log.of_string "B 1 2\nnonsense\n" with
  | Error e -> check_bool "mentions line 2" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "should fail");
  match Event_log.of_string "E 1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short edge line should fail"

let test_parse_empty_ok () =
  match Event_log.of_string "\n\n" with
  | Ok log -> check_int "empty" 0 (Event_log.length log)
  | Error e -> Alcotest.failf "unexpected error %s" e

(* --- Metrics --- *)

let clique n =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j) :: !edges
    done
  done;
  Snapshot.of_edges ~n !edges

let path n = Snapshot.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))
let star n = Snapshot.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let test_clustering_clique () =
  close "clique transitivity 1" 1.0 (Metrics.global_clustering (clique 8));
  close "clique local clustering 1" 1.0 (Metrics.mean_local_clustering (clique 8))

let test_clustering_tree () =
  close "path has no triangles" 0. (Metrics.global_clustering (path 10));
  check_bool "star has no triangles" true (Metrics.global_clustering (star 10) = 0.)

let test_clustering_triangle_plus_edge () =
  (* Triangle 0-1-2 plus pendant 3 on 0: 1 triangle, wedges = C(3,2)+1+1 = 5. *)
  let s = Snapshot.of_edges ~n:4 [ (0, 1); (1, 2); (2, 0); (0, 3) ] in
  close "transitivity 3/5" 0.6 (Metrics.global_clustering s)

let test_assortativity_star_negative () =
  (* Stars are maximally disassortative. *)
  check_bool "star assortativity negative" true
    (Metrics.degree_assortativity (star 12) < -0.9)

let test_mean_distance_path () =
  (* Exact: all sources used since n <= default sample count. *)
  let s = path 5 in
  (* Sum of distances over ordered reachable pairs: 2*(sum over pairs). *)
  let expected = 2. *. (4. +. 3. +. 2. +. 1. +. 3. +. 2. +. 1. +. 2. +. 1. +. 1.) /. 20. in
  close ~eps:1e-9 "path mean distance" expected (Metrics.mean_distance ~rng:(Prng.create 0x3E7) ~sources:5 s)

let test_diameter_path () =
  check_int "path diameter" 9 (Metrics.diameter_estimate ~rng:(Prng.create 0x3E7) ~sources:10 (path 10))

let test_gini_regular_zero () =
  let s = clique 6 in
  close ~eps:1e-9 "regular graph gini 0" 0. (Metrics.degree_gini s)

let test_gini_star_high () =
  check_bool "star gini high" true (Metrics.degree_gini (star 20) > 0.4)

let test_fingerprint_fields () =
  let fp = Metrics.fingerprint ~rng:(Prng.create 0xF19) (clique 10) in
  check_int "nodes" 10 fp.nodes;
  check_int "edges" 45 fp.edges;
  close "giant" 1.0 fp.giant_fraction;
  close ~eps:1e-9 "mean degree 9" 9. fp.mean_degree

let suite =
  [
    ("capture counts", `Quick, test_capture_counts);
    ("replay = live (no regen)", `Quick, test_replay_matches_live_no_regen);
    ("replay = live (regen)", `Quick, test_replay_matches_live_regen);
    ("replay prefix population", `Quick, test_replay_prefix);
    ("serialize roundtrip", `Quick, test_roundtrip_serialization);
    ("parse errors", `Quick, test_parse_errors);
    ("parse empty", `Quick, test_parse_empty_ok);
    ("clustering clique", `Quick, test_clustering_clique);
    ("clustering tree", `Quick, test_clustering_tree);
    ("clustering triangle+edge", `Quick, test_clustering_triangle_plus_edge);
    ("assortativity star", `Quick, test_assortativity_star_negative);
    ("mean distance path", `Quick, test_mean_distance_path);
    ("diameter path", `Quick, test_diameter_path);
    ("gini regular", `Quick, test_gini_regular_zero);
    ("gini star", `Quick, test_gini_star_high);
    ("fingerprint fields", `Quick, test_fingerprint_fields);
  ]

(* --- property tests --- *)

let qcheck_props =
  [
    QCheck.Test.make ~name:"replay equals live under arbitrary churn" ~count:40
      QCheck.(pair small_int (list_of_size (Gen.int_range 5 80) bool))
      (fun (seed, script) ->
        let g = Dyngraph.create ~rng:(Prng.create seed) ~d:3 ~regenerate:(seed mod 2 = 0) () in
        let log = Event_log.create () in
        Event_log.attach log g;
        List.iteri
          (fun i kill ->
            if kill && Dyngraph.alive_count g > 2 then
              Dyngraph.kill g (Dyngraph.random_alive g)
            else ignore (Dyngraph.add_node g ~birth:i))
          script;
        Event_log.detach log g;
        snapshots_equal (Dyngraph.snapshot g) (Event_log.replay log));
    QCheck.Test.make ~name:"metrics stay in their ranges" ~count:40
      QCheck.(pair small_int (int_range 6 40))
      (fun (seed, n) ->
        let rng = Prng.create seed in
        let edges = ref [] in
        for _ = 1 to 3 * n do
          let u = Prng.int rng n and v = Prng.int rng n in
          if u <> v then edges := (u, v) :: !edges
        done;
        let s = Snapshot.of_edges ~n !edges in
        let c = Metrics.global_clustering s in
        let gini = Metrics.degree_gini s in
        let a = Metrics.degree_assortativity s in
        (Float.is_nan c || (c >= 0. && c <= 1.))
        && gini >= -1e-9
        && gini < 1.
        && (Float.is_nan a || (a >= -1.0001 && a <= 1.0001)));
    QCheck.Test.make ~name:"serialization roundtrip is lossless" ~count:40
      QCheck.small_int
      (fun seed ->
        let _, log = run_logged ~regenerate:true ~seed ~ops:50 in
        match Event_log.of_string (Event_log.to_string log) with
        | Ok log2 -> Event_log.events log = Event_log.events log2
        | Error _ -> false);
  ]

let suite = suite @ List.map (QCheck_alcotest.to_alcotest ~verbose:false) qcheck_props
