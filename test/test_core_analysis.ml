(* Tests for Onion, Isolated, Edge_prob. *)
open Churnet_core
module Prng = Churnet_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Onion-skin process --- *)

let test_onion_validates_args () =
  Alcotest.check_raises "odd d" (Invalid_argument "Onion.run: d must be even and >= 2")
    (fun () -> ignore (Onion.run ~rng:(Prng.create 0x0910) ~n:100 ~d:3 ()));
  Alcotest.check_raises "tiny n" (Invalid_argument "Onion.run: n too small") (fun () ->
      ignore (Onion.run ~rng:(Prng.create 0x0910) ~n:8 ~d:4 ()))

let test_onion_layers_consistent () =
  let r = Onion.run ~rng:(Prng.create 1) ~n:2000 ~d:40 () in
  check_int "young total = sum of layers" r.total_young
    (Array.fold_left ( + ) 0 r.y_layer_sizes);
  check_int "old total = sum of layers" r.total_old
    (Array.fold_left ( + ) 0 r.o_layer_sizes);
  check_bool "phases positive" true (r.phases >= 0)

let test_onion_members_within_classes () =
  (* Totals can never exceed the class sizes. *)
  let n = 1500 in
  let r = Onion.run ~rng:(Prng.create 2) ~n ~d:20 () in
  check_bool "young bounded" true (r.total_young <= n / 2);
  check_bool "old bounded" true (r.total_old <= n / 2)

let test_onion_succeeds_for_large_d () =
  (* Lemma 3.9: success probability >= 1 - 4 e^{-d/100}; for d = 64 the
     empirical rate should be high at moderate n. *)
  let p = Onion.success_probability ~rng:(Prng.create 3) ~n:4000 ~d:64 ~trials:20 () in
  check_bool "mostly succeeds" true (p >= 0.8)

let test_onion_fails_more_for_small_d () =
  let p_small = Onion.success_probability ~rng:(Prng.create 4) ~n:2000 ~d:2 ~trials:30 () in
  let p_large = Onion.success_probability ~rng:(Prng.create 5) ~n:2000 ~d:32 ~trials:30 () in
  check_bool "monotone-ish in d" true (p_large >= p_small)

let test_onion_growth_factor_scales_with_d () =
  (* Claim 3.10: layers grow by ~ d/20 per step while small. *)
  let r = Onion.run ~rng:(Prng.create 6) ~n:20000 ~d:100 () in
  check_bool "reached target" true r.reached_target;
  (* The first growth steps should exceed 1 clearly. *)
  check_bool "early growth > 1.5" true
    (Array.length r.growth_factors = 0 || r.growth_factors.(0) > 1.5)

let test_onion_deterministic_with_seed () =
  let a = Onion.run ~rng:(Prng.create 7) ~n:1000 ~d:16 () in
  let b = Onion.run ~rng:(Prng.create 7) ~n:1000 ~d:16 () in
  check_int "same young" a.total_young b.total_young;
  check_int "same old" a.total_old b.total_old

(* --- Isolated nodes --- *)

let test_paper_bounds () =
  Alcotest.(check (float 1e-9))
    "sdg bound" (1000. *. exp (-4.) /. 6.)
    (Isolated.paper_bound_sdg ~n:1000 ~d:2);
  Alcotest.(check (float 1e-9))
    "pdg bound" (1000. *. exp (-4.) /. 18.)
    (Isolated.paper_bound_pdg ~n:1000 ~d:2)

let test_sdg_has_isolated_nodes () =
  (* Lemma 3.5 at d = 2: at least n e^{-4} / 6 ~ 0.3% isolated. *)
  let n = 3000 and d = 2 in
  let m = Streaming_model.create ~rng:(Prng.create 11) ~n ~d ~regenerate:false () in
  Streaming_model.warm_up m;
  let c = Isolated.census_streaming m in
  check_bool "isolated count >= paper bound" true
    (float_of_int c.isolated_now >= Isolated.paper_bound_sdg ~n ~d);
  check_bool "most tracked isolated stay so" true (c.forever_frac_of_tracked > 0.3)

let test_sdgr_has_no_isolated_nodes () =
  let m = Streaming_model.create ~rng:(Prng.create 13) ~n:500 ~d:3 ~regenerate:true () in
  Streaming_model.warm_up m;
  let g = Streaming_model.graph m in
  let isolated = ref 0 in
  Churnet_graph.Dyngraph.iter_alive g (fun id ->
      if Churnet_graph.Dyngraph.degree g id = 0 then incr isolated);
  check_int "no isolated nodes with regeneration" 0 !isolated

let test_pdg_has_isolated_nodes () =
  let n = 2000 and d = 2 in
  let m = Poisson_model.create ~rng:(Prng.create 17) ~n ~d ~regenerate:false () in
  Poisson_model.warm_up m;
  let c = Isolated.census_poisson ~max_track:300 m in
  check_bool "isolated count >= paper bound" true
    (float_of_int c.isolated_now >= Isolated.paper_bound_pdg ~n ~d)

let test_census_fields_consistent () =
  let m = Streaming_model.create ~rng:(Prng.create 19) ~n:800 ~d:2 ~regenerate:false () in
  Streaming_model.warm_up m;
  let c = Isolated.census_streaming ~max_track:50 m in
  check_bool "tracked bounded" true (c.tracked <= 50);
  check_bool "forever <= tracked" true (c.isolated_forever <= c.tracked);
  Alcotest.(check (float 1e-9))
    "frac consistent"
    (float_of_int c.isolated_now /. float_of_int c.population)
    c.isolated_frac

(* --- Edge probabilities --- *)

let test_edge_prob_streaming_uniform_for_sdg () =
  (* Without regeneration every request is uniform at birth: both p_older
     and p_younger stay near 1/(n-1). *)
  let n = 600 in
  let buckets =
    Edge_prob.measure_streaming ~rng:(Prng.create 23) ~n ~d:4 ~regenerate:false
      ~snapshots:20 ~buckets:4 ()
  in
  Array.iter
    (fun (b : Edge_prob.bucket) ->
      if b.samples > 200 && not (Float.is_nan b.p_older) then begin
        let ratio = b.p_older /. (1. /. float_of_int (n - 1)) in
        check_bool
          (Printf.sprintf "SDG p_older ratio sane (ages %d-%d): %f" b.age_lo b.age_hi
             ratio)
          true
          (ratio > 0.6 && ratio < 1.6)
      end)
    buckets

let test_edge_prob_sdgr_increases_with_age () =
  (* Lemma 3.14: p_older grows like (1+1/(n-1))^k — monotone in age. *)
  let n = 600 in
  let buckets =
    Edge_prob.measure_streaming ~rng:(Prng.create 29) ~n ~d:4 ~regenerate:true
      ~snapshots:30 ~buckets:3 ()
  in
  let valid = Array.to_list buckets |> List.filter (fun (b : Edge_prob.bucket) -> b.samples > 500) in
  (match valid with
  | first :: _ :: _ ->
      let last = List.nth valid (List.length valid - 1) in
      check_bool "p_older increases with age" true (last.p_older > first.p_older *. 1.05)
  | _ -> Alcotest.fail "not enough populated buckets");
  (* And matches the prediction within a factor. *)
  List.iter
    (fun (b : Edge_prob.bucket) ->
      let ratio = b.p_older /. b.predicted_older in
      check_bool "prediction within 40%" true (ratio > 0.6 && ratio < 1.4))
    valid

let test_edge_prob_younger_bounded () =
  let n = 600 in
  let buckets =
    Edge_prob.measure_streaming ~rng:(Prng.create 31) ~n ~d:4 ~regenerate:true
      ~snapshots:20 ~buckets:3 ()
  in
  Array.iter
    (fun (b : Edge_prob.bucket) ->
      if b.samples > 500 && not (Float.is_nan b.p_younger) then
        check_bool "p_younger <= bound * 1.25" true (b.p_younger <= b.bound_younger *. 1.25))
    buckets

let test_edge_prob_poisson_runs () =
  let buckets =
    Edge_prob.measure_poisson ~rng:(Prng.create 37) ~n:300 ~d:4 ~regenerate:true
      ~snapshots:5 ~buckets:4 ()
  in
  check_int "bucket count" 4 (Array.length buckets);
  let populated = Array.exists (fun (b : Edge_prob.bucket) -> b.samples > 0) buckets in
  check_bool "some buckets populated" true populated

let suite =
  [
    ("onion validates args", `Quick, test_onion_validates_args);
    ("onion layers consistent", `Quick, test_onion_layers_consistent);
    ("onion class bounds", `Quick, test_onion_members_within_classes);
    ("onion succeeds for large d", `Slow, test_onion_succeeds_for_large_d);
    ("onion monotone in d", `Slow, test_onion_fails_more_for_small_d);
    ("onion growth (Claim 3.10)", `Slow, test_onion_growth_factor_scales_with_d);
    ("onion deterministic", `Quick, test_onion_deterministic_with_seed);
    ("paper bounds", `Quick, test_paper_bounds);
    ("SDG isolated (Lemma 3.5)", `Slow, test_sdg_has_isolated_nodes);
    ("SDGR no isolated", `Quick, test_sdgr_has_no_isolated_nodes);
    ("PDG isolated (Lemma 4.10)", `Slow, test_pdg_has_isolated_nodes);
    ("census fields", `Quick, test_census_fields_consistent);
    ("edge prob SDG uniform", `Slow, test_edge_prob_streaming_uniform_for_sdg);
    ("edge prob SDGR age growth (Lemma 3.14)", `Slow, test_edge_prob_sdgr_increases_with_age);
    ("edge prob younger bounded", `Slow, test_edge_prob_younger_bounded);
    ("edge prob poisson runs", `Slow, test_edge_prob_poisson_runs);
  ]

(* --- Extended (Poisson) onion-skin, Section 7.2.4 --- *)

let test_onion_poisson_validates_args () =
  Alcotest.check_raises "odd d"
    (Invalid_argument "Onion.run_poisson: d must be even and >= 2") (fun () ->
      ignore (Onion.run_poisson ~rng:(Prng.create 0x0912) ~n:100 ~d:3 ()))

let test_onion_poisson_layers_consistent () =
  let r = Onion.run_poisson ~rng:(Prng.create 41) ~n:2000 ~d:40 () in
  check_int "young total" r.total_young (Array.fold_left ( + ) 0 r.y_layer_sizes);
  check_int "old total" r.total_old (Array.fold_left ( + ) 0 r.o_layer_sizes);
  check_bool "bounded by classes" true
    (r.total_young <= 1000 && r.total_old <= 1000)

let test_onion_poisson_succeeds () =
  let p =
    Onion.success_probability_poisson ~rng:(Prng.create 43) ~n:3000 ~d:64 ~trials:15 ()
  in
  check_bool "mostly succeeds" true (p >= 0.8)

let test_onion_poisson_deterministic () =
  let a = Onion.run_poisson ~rng:(Prng.create 47) ~n:1000 ~d:16 () in
  let b = Onion.run_poisson ~rng:(Prng.create 47) ~n:1000 ~d:16 () in
  check_int "same young" a.total_young b.total_young;
  check_int "same old" a.total_old b.total_old

let poisson_suite =
  [
    ("onion poisson args", `Quick, test_onion_poisson_validates_args);
    ("onion poisson layers", `Quick, test_onion_poisson_layers_consistent);
    ("onion poisson succeeds", `Slow, test_onion_poisson_succeeds);
    ("onion poisson deterministic", `Quick, test_onion_poisson_deterministic);
  ]

let suite = suite @ poisson_suite
