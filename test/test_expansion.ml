open Churnet_expansion
module Snapshot = Churnet_graph.Snapshot
module Prng = Churnet_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let close ?(eps = 1e-9) msg a b = check_bool msg true (Float.abs (a -. b) < eps)

let clique n =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j) :: !edges
    done
  done;
  Snapshot.of_edges ~n !edges

let cycle n = Snapshot.of_edges ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))
let star n = Snapshot.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))
let path n = Snapshot.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

(* --- Exact --- *)

let test_exact_clique () =
  (* K6: any S with |S| = 3 has boundary 3, ratio 1; smaller S even
     higher.  h_out = 1. *)
  close "clique h_out" 1.0 (Exact.h_out (clique 6))

let test_exact_cycle () =
  (* C8: worst set is a half-arc of 4 nodes: boundary 2, ratio 0.5. *)
  close "cycle h_out" 0.5 (Exact.h_out (cycle 8))

let test_exact_path () =
  (* P8: prefix of 4 has boundary 1 -> 0.25. *)
  close "path h_out" 0.25 (Exact.h_out (path 8))

let test_exact_star () =
  (* Star on 9: leaves-only sets of size 4 have boundary {center}: 0.25. *)
  close "star h_out" 0.25 (Exact.h_out (star 9))

let test_exact_disconnected () =
  let s = Snapshot.of_edges ~n:6 [ (0, 1); (1, 2); (3, 4); (4, 5) ] in
  close "disconnected h_out = 0" 0. (Exact.h_out s)

let test_exact_isolated_vertex () =
  let s = Snapshot.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3) ] in
  close "isolated vertex gives 0" 0. (Exact.h_out s)

let test_exact_witness () =
  let s = Snapshot.of_edges ~n:6 [ (0, 1); (1, 2); (3, 4); (4, 5) ] in
  let h, witness = Exact.h_out_with_witness s in
  close "witness ratio" h
    (let set = Snapshot.set_of_indices s (Array.of_list witness) in
     Snapshot.expansion s set);
  check_bool "witness size <= n/2" true (List.length witness <= 3)

let test_exact_too_large () =
  check_bool "raises" true
    (try
       ignore (Exact.h_out (cycle 30));
       false
     with Invalid_argument _ -> true)

let test_is_expander () =
  check_bool "clique is 0.9-expander" true (Exact.is_expander (clique 6) ~epsilon:0.9);
  check_bool "path is not 0.3-expander" false (Exact.is_expander (path 8) ~epsilon:0.3)

(* --- Probe --- *)

let test_probe_finds_isolated () =
  let s = Snapshot.of_edges ~n:10 [ (0, 1); (1, 2); (2, 3); (4, 5); (5, 6) ] in
  let r = Probe.probe ~rng:(Prng.create 1) s in
  close "finds a zero-expansion set" 0. r.min_expansion

let test_probe_on_clique () =
  let r = Probe.probe ~rng:(Prng.create 2) (clique 12) in
  close "clique min expansion is 1" 1.0 r.min_expansion

let test_probe_respects_size_range () =
  (* On a graph with one isolated vertex, restricting min_size above 1
     (and above the small component count) hides the zero. *)
  let edges = (10, 11) :: List.init 9 (fun i -> (i, i + 1)) in
  let s = Snapshot.of_edges ~n:12 edges in
  let r = Probe.probe ~rng:(Prng.create 3) ~min_size:5 s in
  check_bool "no zero found above min_size" true (r.min_expansion > 0.)

let test_probe_matches_exact_on_small_graphs () =
  (* The probe is an upper bound on h_out and on small structured graphs
     it should actually attain it. *)
  List.iter
    (fun snap ->
      let exact = Exact.h_out snap in
      let probed = (Probe.probe ~rng:(Prng.create 5) snap).min_expansion in
      check_bool "probe >= exact (upper bound)" true (probed >= exact -. 1e-9);
      check_bool "probe close to exact here" true (probed <= exact +. 0.51))
    [ cycle 12; path 12; star 13; clique 8 ]

let test_probe_reports_families () =
  let r = Probe.probe ~rng:(Prng.create 7) (cycle 20) in
  check_bool "tested candidates" true (r.candidates_tested > 10);
  check_bool "families recorded" true (List.length r.per_family >= 3);
  check_bool "witness has family name" true (String.length r.witness.family > 0)

let test_expansion_profile () =
  let profile = Probe.expansion_profile ~rng:(Prng.create 9) (cycle 40) ~sizes:[| 2; 5; 10 |] in
  check_int "3 sizes" 3 (Array.length profile);
  Array.iter
    (fun (s, e) ->
      check_bool "size echoed" true (s = 2 || s = 5 || s = 10);
      check_bool "expansion positive on cycle" true (e > 0.))
    profile

(* --- Spectral --- *)

let test_spectral_clique_gap () =
  let r = Spectral.analyze (clique 20) in
  (* Lazy walk on K_n: lambda2 = 1/2 + (lambda2(walk))/2 where walk
     lambda2 = -1/(n-1); so close to 0.47.  Large gap regardless. *)
  check_bool "large gap" true (r.spectral_gap > 0.4);
  check_int "whole graph" 20 r.component_size

let test_spectral_path_small_gap () =
  let r = Spectral.analyze (path 60) in
  check_bool "tiny gap on a path" true (r.spectral_gap < 0.05);
  check_bool "sweep finds a bad cut" true (r.sweep_conductance < 0.1)

let test_spectral_sweep_on_dumbbell () =
  (* Two cliques joined by one edge: sweep must find conductance ~ 1/k². *)
  let k = 8 in
  let edges = ref [ (0, k) ] in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      edges := (i, j) :: !edges;
      edges := (k + i, k + j) :: !edges
    done
  done;
  let s = Snapshot.of_edges ~n:(2 * k) !edges in
  let r = Spectral.analyze s in
  check_bool "dumbbell cut found" true (r.sweep_conductance < 0.08);
  check_bool "half split" true (abs (r.sweep_set_size - k) <= 1)

let test_spectral_sweep_sets_usable () =
  let sets = Spectral.sweep_sets (cycle 30) in
  check_bool "non-empty" true (List.length sets > 0);
  List.iter
    (fun set ->
      check_bool "set size <= n/2" true (Array.length set <= 15);
      Array.iter (fun v -> check_bool "valid index" true (v >= 0 && v < 30)) set)
    sets

let test_spectral_tiny_graph () =
  let r = Spectral.analyze (Snapshot.of_edges ~n:1 []) in
  check_int "degenerate" 1 r.component_size

(* --- Cross-validation: probe against exact on random graphs --- *)

let qcheck_props =
  [
    QCheck.Test.make ~name:"probe upper-bounds exact h_out" ~count:25
      QCheck.(int_range 0 10_000)
      (fun seed ->
        let rng = Prng.create seed in
        let n = 8 + Prng.int rng 8 in
        (* random graph with ~2n edges *)
        let edges = ref [] in
        for _ = 1 to 2 * n do
          let u = Prng.int rng n and v = Prng.int rng n in
          if u <> v then edges := (u, v) :: !edges
        done;
        let snap = Snapshot.of_edges ~n !edges in
        let exact = Exact.h_out snap in
        let probed = (Probe.probe ~rng ~samples_per_size:12 snap).min_expansion in
        probed >= exact -. 1e-9);
  ]

let suite =
  [
    ("exact clique", `Quick, test_exact_clique);
    ("exact cycle", `Quick, test_exact_cycle);
    ("exact path", `Quick, test_exact_path);
    ("exact star", `Quick, test_exact_star);
    ("exact disconnected", `Quick, test_exact_disconnected);
    ("exact isolated vertex", `Quick, test_exact_isolated_vertex);
    ("exact witness", `Quick, test_exact_witness);
    ("exact too large", `Quick, test_exact_too_large);
    ("is_expander", `Quick, test_is_expander);
    ("probe finds isolated", `Quick, test_probe_finds_isolated);
    ("probe on clique", `Quick, test_probe_on_clique);
    ("probe size range", `Quick, test_probe_respects_size_range);
    ("probe vs exact", `Quick, test_probe_matches_exact_on_small_graphs);
    ("probe families", `Quick, test_probe_reports_families);
    ("expansion profile", `Quick, test_expansion_profile);
    ("spectral clique", `Quick, test_spectral_clique_gap);
    ("spectral path", `Quick, test_spectral_path_small_gap);
    ("spectral dumbbell", `Quick, test_spectral_sweep_on_dumbbell);
    ("spectral sweep sets", `Quick, test_spectral_sweep_sets_usable);
    ("spectral tiny", `Quick, test_spectral_tiny_graph);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~verbose:false) qcheck_props

let test_probe_empty_range () =
  (* An empty size range yields no candidates: min_expansion is +inf. *)
  let r = Probe.probe ~rng:(Prng.create 91) ~min_size:100 ~max_size:5 (cycle 20) in
  check_bool "no candidates" true (r.candidates_tested = 0);
  check_bool "min is infinity" true (r.min_expansion = infinity)

let suite = suite @ [ ("probe empty range", `Quick, test_probe_empty_range) ]
