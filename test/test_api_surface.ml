(* Exercises the exported API surface that no experiment driver happens
   to touch: the uniform model accessors (n / d / step / newest / ...),
   the frontier flooding kernel against the full-rescan reference, and
   the small utility entry points (codec reader introspection, JSON
   channel output, cross-entropy, union-find representatives).  Beyond
   the direct coverage, these tests are what keeps churnet-lint's
   dead-export rule honest: every val exported for callers outside the
   repo's own drivers is referenced here, so a *truly* dead export still
   fails the lint gate. *)

open Churnet_util
module Dyngraph = Churnet_graph.Dyngraph
module Snapshot = Churnet_graph.Snapshot
module Event_log = Churnet_graph.Event_log
module Flood = Churnet_core.Flood
module Burst_model = Churnet_core.Burst_model
module Capped_model = Churnet_core.Capped_model
module Lazy_regen_model = Churnet_core.Lazy_regen_model
module Bitcoin_like = Churnet_p2p.Bitcoin_like
module Cache_protocol = Churnet_p2p.Cache_protocol
module Local_update = Churnet_p2p.Local_update
module Rw_streaming = Churnet_p2p.Rw_streaming
module Report = Churnet_experiments.Report

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let close ?(eps = 1e-9) msg a b = Alcotest.(check (float eps)) msg a b

(* --- model accessor surface ------------------------------------------ *)

let test_burst_model_accessors () =
  let m =
    Burst_model.create ~rng:(Prng.create 41) ~n:80 ~d:4 ~burst_every:7
      ~burst_size:5 ()
  in
  check_int "n" 80 (Burst_model.n m);
  check_int "d" 4 (Burst_model.d m);
  Burst_model.warm_up m;
  let r0 = Burst_model.round m in
  Burst_model.step m;
  check_int "round advances" (r0 + 1) (Burst_model.round m);
  check_bool "newest is alive" true
    (Dyngraph.is_alive (Burst_model.graph m) (Burst_model.newest m));
  let s = Burst_model.snapshot m in
  check_int "snapshot covers the alive population"
    (Dyngraph.alive_count (Burst_model.graph m))
    (Snapshot.n s)

let test_capped_model_accessors () =
  let m =
    Capped_model.create ~rng:(Prng.create 42) ~n:120 ~d:5 ~cap:10 ()
  in
  check_int "n" 120 (Capped_model.n m);
  check_int "d" 5 (Capped_model.d m);
  check_int "cap" 10 (Capped_model.cap m);
  let t0 = Capped_model.time m in
  Capped_model.step m;
  check_bool "step advances time" true (Capped_model.time m > t0);
  Capped_model.advance_time m 2.5;
  check_bool "advance_time moves the clock" true
    (Capped_model.time m >= t0 +. 2.5);
  match Capped_model.newest m with
  | Some id ->
      check_bool "newest alive" true (Dyngraph.is_alive (Capped_model.graph m) id)
  | None -> Alcotest.fail "expected a newborn after churn steps"

let test_lazy_regen_accessors () =
  let m =
    Lazy_regen_model.create ~rng:(Prng.create 43) ~n:100 ~d:4 ~period:0.5 ()
  in
  check_int "n" 100 (Lazy_regen_model.n m);
  check_int "d" 4 (Lazy_regen_model.d m);
  close "period" 0.5 (Lazy_regen_model.period m);
  let t0 = Lazy_regen_model.time m in
  Lazy_regen_model.step m;
  check_bool "step advances time" true (Lazy_regen_model.time m > t0);
  match Lazy_regen_model.newest m with
  | Some id ->
      check_bool "newest alive" true
        (Dyngraph.is_alive (Lazy_regen_model.graph m) id)
  | None -> Alcotest.fail "expected a newborn after a churn step"

let test_p2p_accessors () =
  let btc = Bitcoin_like.create ~rng:(Prng.create 44) ~n:60 () in
  check_int "bitcoin n" 60 (Bitcoin_like.n btc);
  Bitcoin_like.step btc;
  (match Bitcoin_like.newest btc with
  | Some id ->
      check_bool "bitcoin newest alive" true
        (Dyngraph.is_alive (Bitcoin_like.graph btc) id)
  | None -> Alcotest.fail "expected a newborn after a churn step");
  let cp = Cache_protocol.create ~rng:(Prng.create 45) ~n:60 ~d:4 () in
  check_int "cache n" 60 (Cache_protocol.n cp);
  check_int "cache d" 4 (Cache_protocol.d cp);
  Cache_protocol.step cp;
  check_bool "cache newest alive" true
    (Dyngraph.is_alive (Cache_protocol.graph cp) (Cache_protocol.newest cp));
  let lu = Local_update.create ~rng:(Prng.create 46) ~n:60 ~d:4 () in
  check_int "local n" 60 (Local_update.n lu);
  check_int "local d" 4 (Local_update.d lu);
  Local_update.step lu;
  Local_update.run lu 5;
  check_bool "local newest alive" true
    (Dyngraph.is_alive (Local_update.graph lu) (Local_update.newest lu));
  let rw = Rw_streaming.create ~rng:(Prng.create 47) ~n:60 ~d:3 () in
  check_int "rw n" 60 (Rw_streaming.n rw);
  check_int "rw d" 3 (Rw_streaming.d rw);
  Rw_streaming.step rw;
  Rw_streaming.run rw 5;
  check_bool "rw newest alive" true
    (Dyngraph.is_alive (Rw_streaming.graph rw) (Rw_streaming.newest rw))

(* --- frontier kernel vs full rescan ---------------------------------- *)

(* On a static graph (no churn, so the frontier invariant is trivially
   maintained) the frontier hop must inform exactly the set the full
   rescan informs, round for round. *)
let test_frontier_matches_full_rescan () =
  let g = Dyngraph.create ~rng:(Prng.create 48) ~d:3 ~regenerate:false () in
  let n = 64 in
  for _ = 1 to n do
    ignore (Dyngraph.add_node g ~birth:0)
  done;
  let informed_a = Bitset.create n and informed_b = Bitset.create n in
  let frontier = Bitset.create n in
  let scratch = Intvec.create () in
  Bitset.add informed_a 0;
  Bitset.add informed_b 0;
  Bitset.add frontier 0;
  for round = 1 to 12 do
    Flood.expand_informed g informed_a scratch;
    Flood.expand_informed_frontier g informed_b frontier scratch;
    check_int
      (Printf.sprintf "round %d cardinal" round)
      (Bitset.cardinal informed_a)
      (Bitset.cardinal informed_b);
    for v = 0 to n - 1 do
      if Bitset.mem informed_a v <> Bitset.mem informed_b v then
        Alcotest.failf "round %d: node %d informed in one kernel only" round v
    done
  done;
  check_bool "flood made progress" true (Bitset.cardinal informed_a > 1)

(* --- graph-side accessors -------------------------------------------- *)

let test_graph_accessors () =
  let g = Dyngraph.create ~rng:(Prng.create 49) ~d:3 ~regenerate:false () in
  for _ = 1 to 10 do
    ignore (Dyngraph.add_node g ~birth:0)
  done;
  let raw = Dyngraph.out_slots_raw g 5 in
  check_int "raw slot array has d entries" 3 (Array.length raw);
  Array.iter
    (fun dst ->
      check_bool "raw slot is -1 or alive" true (dst = -1 || Dyngraph.is_alive g dst))
    raw;
  let snap = Dyngraph.snapshot g in
  let ages = Snapshot.indices_by_age snap in
  check_int "indices_by_age covers all indices" (Snapshot.n snap)
    (Array.length ages);
  Array.iteri (fun i idx -> check_int "oldest-first identity" i idx) ages;
  let total_out =
    let acc = ref 0 in
    for i = 0 to Snapshot.n snap - 1 do
      acc := !acc + Snapshot.out_degree snap i
    done;
    !acc
  in
  check_bool "out-degrees bounded by d per node" true
    (total_out <= 3 * Snapshot.n snap)

let test_event_log_record () =
  let log = Event_log.create () in
  Event_log.record log (Event_log.Birth { id = 0; birth = 0; targets = [||] });
  Event_log.record log (Event_log.Death { id = 0 });
  check_int "two synthetic events recorded" 2 (Event_log.length log);
  match (Event_log.events log).(1) with
  | Event_log.Death { id } -> check_int "death id" 0 id
  | _ -> Alcotest.fail "expected the death event last"

(* --- utility odds and ends ------------------------------------------- *)

let test_codec_reader_introspection () =
  let r = Codec.reader "abc" in
  check_int "remaining before reads" 3 (Codec.remaining r);
  check_bool "not at end" false (Codec.at_end r);
  ignore (Codec.read_u8 r);
  ignore (Codec.read_u8 r);
  check_int "remaining mid-stream" 1 (Codec.remaining r);
  ignore (Codec.read_u8 r);
  check_bool "at end after consuming" true (Codec.at_end r);
  check_int "nothing remaining" 0 (Codec.remaining r)

let test_json_to_channel () =
  let doc = Json.Obj [ ("a", Json.Int 1); ("b", Json.String "x") ] in
  let path = Filename.temp_file "churnet_json" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Json.to_channel oc doc;
      close_out oc;
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let got = really_input_string ic len in
      close_in ic;
      Alcotest.(check string)
        "channel output matches to_string" (Json.to_string doc) got)

let test_cross_entropy () =
  let p = [| 0.5; 0.5 |] in
  close "H(p,p) = ln 2" (log 2.) (Kl.cross_entropy p p);
  let q = [| 0.25; 0.75 |] in
  check_bool "Gibbs: H(p,q) >= H(p,p)" true
    (Kl.cross_entropy p q >= Kl.cross_entropy p p)

let test_acc_interval () =
  let acc = Stats.Acc.create () in
  List.iter (Stats.Acc.add acc) [ 1.; 2.; 3.; 4.; 5. ];
  close "stderr of the mean" (Stats.Acc.stddev acc /. sqrt 5.)
    (Stats.Acc.stderr_mean acc);
  let lo, hi = Stats.Acc.ci95 acc in
  check_bool "ci95 brackets the mean" true
    (lo < Stats.Acc.mean acc && Stats.Acc.mean acc < hi)

let test_union_find_find () =
  let uf = Union_find.create 4 in
  check_int "singleton is its own representative" 2 (Union_find.find uf 2);
  ignore (Union_find.union uf 0 1);
  check_int "merged elements share a representative"
    (Union_find.find uf 0) (Union_find.find uf 1)

let test_prng_float () =
  let rng = Prng.create 50 in
  for _ = 1 to 100 do
    let x = Prng.float rng 10. in
    check_bool "float in [0, bound)" true (x >= 0. && x < 10.)
  done

let test_report_check_to_json () =
  let c =
    Report.check ~claim:"coverage is total" ~expected:"1.0" ~measured:"1.0"
      ~holds:true
  in
  let s = Json.to_string (Report.check_to_json c) in
  check_bool "claim serialized" true
    (String.length s > 0
    &&
    let re = "coverage is total" in
    let rec contains i =
      i + String.length re <= String.length s
      && (String.sub s i (String.length re) = re || contains (i + 1))
    in
    contains 0)

let suite =
  [
    Alcotest.test_case "burst model accessors" `Quick test_burst_model_accessors;
    Alcotest.test_case "capped model accessors" `Quick test_capped_model_accessors;
    Alcotest.test_case "lazy-regen accessors" `Quick test_lazy_regen_accessors;
    Alcotest.test_case "p2p accessors" `Quick test_p2p_accessors;
    Alcotest.test_case "frontier kernel = full rescan" `Quick
      test_frontier_matches_full_rescan;
    Alcotest.test_case "graph accessors" `Quick test_graph_accessors;
    Alcotest.test_case "event log record" `Quick test_event_log_record;
    Alcotest.test_case "codec reader introspection" `Quick
      test_codec_reader_introspection;
    Alcotest.test_case "json to_channel" `Quick test_json_to_channel;
    Alcotest.test_case "cross entropy" `Quick test_cross_entropy;
    Alcotest.test_case "acc stderr and ci95" `Quick test_acc_interval;
    Alcotest.test_case "union-find representatives" `Quick test_union_find_find;
    Alcotest.test_case "prng float" `Quick test_prng_float;
    Alcotest.test_case "report check_to_json" `Quick test_report_check_to_json;
  ]
