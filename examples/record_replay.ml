(* Record a dynamic-graph run as an event log, save it, parse it back and
   replay it to an arbitrary point — the forensic workflow for inspecting
   the exact topology a flood traversed.

     dune exec examples/record_replay.exe *)

open Churnet_graph
open Churnet_core

let () =
  let n = 300 and d = 4 in
  Printf.printf "Recording %d rounds of SDGR churn (n = %d, d = %d)...\n" (3 * n) n d;
  let model =
    Streaming_model.create ~rng:(Churnet_util.Prng.create 99) ~n ~d ~regenerate:true ()
  in
  let log = Event_log.create () in
  Event_log.attach log (Streaming_model.graph model);
  Streaming_model.run model (3 * n);
  Event_log.detach log (Streaming_model.graph model);
  Printf.printf "  captured %d events\n" (Event_log.length log);

  (* Serialize and parse back. *)
  let text = Event_log.to_string log in
  Printf.printf "  serialized to %d bytes; first lines:\n" (String.length text);
  String.split_on_char '\n' text
  |> List.filteri (fun i _ -> i < 3)
  |> List.iter (fun line -> Printf.printf "    %s\n" line);
  (match Event_log.of_string text with
  | Ok log2 ->
      Printf.printf "  parsed back: %d events (round-trip ok)\n" (Event_log.length log2)
  | Error e -> Printf.printf "  parse error: %s\n" e);

  (* Replay to several points in time and watch the topology mature. *)
  print_newline ();
  Printf.printf "Topology while the network filled up:\n";
  let total = Event_log.length log in
  List.iter
    (fun frac ->
      let upto = total * frac / 100 in
      let snap = Event_log.replay ~upto log in
      Printf.printf
        "  after %3d%% of events: %4d nodes, %5d edges, largest component %4d\n" frac
        (Snapshot.n snap) (Snapshot.edge_count snap)
        (Snapshot.largest_component snap))
    [ 5; 20; 50; 100 ];

  (* The final replay matches the live graph exactly. *)
  let live = Streaming_model.snapshot model in
  let replayed = Event_log.replay log in
  let same =
    Snapshot.n live = Snapshot.n replayed
    && Snapshot.edge_count live = Snapshot.edge_count replayed
  in
  Printf.printf "\nReplayed final state matches the live graph: %b\n" same
