(* Flooding sends to every neighbor each round; gossip contacts one.
   This example compares the spread curves of flooding, push, pull and
   push-pull gossip on the same PDGR network — showing the Table 1
   behaviour survives the weaker communication primitive.

     dune exec examples/gossip_vs_flooding.exe *)

open Churnet_core

let spread_curve label points =
  Churnet_util.Asciiplot.{ label; points }

let () =
  let n = 2000 and d = 8 in
  Printf.printf "Spreading one rumor over PDGR (n = %d, d = %d)\n\n%!" n d;
  let curve_of_informed informed population =
    Array.mapi
      (fun i inf ->
        (float_of_int i, float_of_int inf /. float_of_int population.(i)))
      informed
  in
  let flood_curve =
    let m = Models.create ~rng:(Churnet_util.Prng.create 5) Models.PDGR ~n ~d in
    Models.warm_up m;
    let tr = Models.flood m in
    curve_of_informed tr.Flood.informed_per_round tr.Flood.population_per_round
  in
  let gossip_curve strategy =
    let rng = Churnet_util.Prng.create 5 in
    let grng = Churnet_util.Prng.split rng in
    let m = Models.create ~rng Models.PDGR ~n ~d in
    Models.warm_up m;
    let tr = Gossip.run ~rng:grng ~strategy m in
    ( curve_of_informed tr.Gossip.informed_per_round tr.Gossip.population_per_round,
      tr.Gossip.completion_round,
      tr.Gossip.messages_sent )
  in
  let push, push_done, push_msgs = gossip_curve Gossip.Push in
  let pull, pull_done, pull_msgs = gossip_curve Gossip.Pull in
  let pp, pp_done, pp_msgs = gossip_curve Gossip.Push_pull in
  print_string
    (Churnet_util.Asciiplot.plot ~title:"rumor coverage over time" ~xlabel:"round"
       ~ylabel:"coverage"
       [
         spread_curve "flooding" flood_curve;
         spread_curve "push" push;
         spread_curve "pull" pull;
         spread_curve "push-pull" pp;
       ]);
  let show name done_round msgs =
    Printf.printf "  %-10s %s rounds, %d messages\n" name
      (match done_round with Some r -> string_of_int r | None -> ">budget")
      msgs
  in
  print_newline ();
  show "push" push_done push_msgs;
  show "pull" pull_done pull_msgs;
  show "push-pull" pp_done pp_msgs;
  Printf.printf
    "\nPush-pull completes almost as fast as full flooding while sending\n\
     one message per node per round — the classic rumor-spreading picture,\n\
     here under continuous node churn.\n"
