(* A Bitcoin-flavoured peer-to-peer network under churn: nodes join via
   DNS seeds, maintain 8 outbound connections from gossiped address
   tables, and we broadcast a "transaction" by flooding — the scenario
   that motivates the paper's PDGR model (Sections 1.1 and 5).

     dune exec examples/p2p_gossip.exe *)

open Churnet_p2p

let () =
  let n = 2000 in
  Printf.printf "Bootstrapping a Bitcoin-like P2P network (stationary size ~%d)...\n%!" n;
  let net = Bitcoin_like.create ~rng:(Churnet_util.Prng.create 2021) ~n () in
  Bitcoin_like.warm_up net;
  let snapshot = Bitcoin_like.snapshot net in
  Printf.printf "  peers alive:      %d\n" (Churnet_graph.Snapshot.n snapshot);
  Printf.printf "  mean out-degree:  %.2f (target 8)\n" (Bitcoin_like.mean_out_degree net);
  Printf.printf "  max degree:       %d (in-degree cap 125)\n"
    (Churnet_graph.Snapshot.max_degree snapshot);
  Printf.printf "  giant component:  %d peers\n"
    (Churnet_graph.Snapshot.largest_component snapshot);
  Printf.printf "  mean addr table:  %.1f entries\n\n" (Bitcoin_like.mean_table_fill net);
  Printf.printf "Broadcasting a transaction from a freshly joined peer...\n%!";
  let trace = Bitcoin_like.flood net in
  Array.iteri
    (fun i informed ->
      let pop = trace.Churnet_core.Flood.population_per_round.(i) in
      if i <= 12 || informed = pop then
        Printf.printf "  t = %2d: %5d / %5d peers have the transaction\n" i informed pop)
    trace.Churnet_core.Flood.informed_per_round;
  (match trace.Churnet_core.Flood.completion_round with
  | Some r -> Printf.printf "\nFull propagation in %d time units.\n" r
  | None ->
      Printf.printf "\nPeak coverage %.1f%% within the budget.\n"
        (100. *. trace.Churnet_core.Flood.peak_coverage));
  Printf.printf
    "\nCompare with the paper's idealized PDGR model (uniform neighbor\n\
     re-sampling): run `dune exec examples/quickstart.exe`.\n"
