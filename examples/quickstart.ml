(* Quickstart: build each of the paper's four dynamic-graph models, let it
   churn, and flood a message from a newborn node — once with a small
   degree (where the models without edge regeneration break down) and
   once with a comfortable degree.

     dune exec examples/quickstart.exe *)

open Churnet_core

let run_at ~d ~n ~seed =
  Printf.printf "--- d = %d ---\n" d;
  List.iter
    (fun kind ->
      let rng = Churnet_util.Prng.create seed in
      let model = Models.create ~rng kind ~n ~d in
      Models.warm_up model;
      let snapshot = Models.snapshot model in
      let isolated = List.length (Churnet_graph.Snapshot.isolated snapshot) in
      let trace = Models.flood ~max_rounds:60 model in
      Printf.printf
        "%-5s population %4d | edges %5d | isolated %3d | peak coverage %5.1f%% | %s\n"
        (Models.kind_name kind)
        (Churnet_graph.Snapshot.n snapshot)
        (Churnet_graph.Snapshot.edge_count snapshot)
        isolated
        (100. *. trace.Flood.peak_coverage)
        (match trace.Flood.completion_round with
        | Some r -> Printf.sprintf "flood completed in %d rounds" r
        | None -> "flood did NOT complete"))
    Models.all_kinds;
  print_newline ()

let () =
  let n = 1000 in
  Printf.printf "churnet quickstart: n = %d\n\n" n;
  run_at ~d:2 ~n ~seed:7;
  run_at ~d:10 ~n ~seed:7;
  Printf.printf
    "At d = 2 the models without edge regeneration (SDG, PDG) carry isolated\n\
     nodes (Lemmas 3.5 / 4.10), so flooding cannot complete; the regenerating\n\
     models (SDGR, PDGR) stay expanders (Theorems 3.15 / 4.16) and complete\n\
     in O(log n) rounds (Theorems 3.16 / 4.20).  At d = 10 isolated nodes\n\
     all but vanish (their density is ~ e^{-2d}/6) and every model floods\n\
     quickly — exactly the Table 1 picture.\n"
