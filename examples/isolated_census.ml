(* Why flooding cannot complete in the models without edge regeneration:
   a census of isolated nodes in SDG snapshots (Lemma 3.5), across d.

     dune exec examples/isolated_census.exe *)

open Churnet_core
module Table = Churnet_util.Table

let () =
  let n = 5000 in
  Printf.printf
    "Isolated nodes in the streaming model without edge regeneration\n\
     (n = %d; Lemma 3.5 predicts at least (1/6) n e^{-2d} of them).\n\n" n;
  let table =
    Table.create [ "d"; "isolated now"; "paper lower bound"; "stay isolated until death" ]
  in
  List.iter
    (fun d ->
      let m =
        Streaming_model.create ~rng:(Churnet_util.Prng.create (100 + d)) ~n ~d
          ~regenerate:false ()
      in
      Streaming_model.warm_up m;
      let census = Isolated.census_streaming ~max_track:500 m in
      Table.add_row table
        [
          string_of_int d;
          string_of_int census.isolated_now;
          Table.fmt_float ~digits:1 (Isolated.paper_bound_sdg ~n ~d);
          Table.fmt_pct census.forever_frac_of_tracked;
        ])
    [ 1; 2; 3; 4; 5 ];
  Table.print table;
  Printf.printf
    "\nWith edge regeneration (SDGR) every node keeps out-degree d, so no\n\
     node is ever isolated — that is why Table 1's negative results only\n\
     apply to the left column.\n"
