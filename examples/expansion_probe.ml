(* Probing the vertex expansion of live snapshots: the candidate-family
   search plus the spectral certificate, on SDGR vs SDG (Theorems 3.15 /
   Lemma 3.6).

     dune exec examples/expansion_probe.exe *)

open Churnet_core
module Probe = Churnet_expansion.Probe
module Spectral = Churnet_expansion.Spectral
module Table = Churnet_util.Table

let () =
  let n = 2000 in
  Printf.printf "Expansion of snapshots at n = %d.\n\n" n;
  let table =
    Table.create
      [ "model"; "d"; "min expansion (probe)"; "worst family"; "spectral gap"; "candidates" ]
  in
  List.iter
    (fun (kind, d) ->
      let m = Models.create ~rng:(Churnet_util.Prng.create 33) kind ~n ~d in
      Models.warm_up m;
      let snap = Models.snapshot m in
      let probe = Probe.probe ~rng:(Churnet_util.Prng.create 34) snap in
      let spectral = Spectral.analyze snap in
      Table.add_row table
        [
          Models.kind_name kind;
          string_of_int d;
          Table.fmt_float ~digits:3 probe.min_expansion;
          Printf.sprintf "%s (size %d)" probe.witness.family probe.witness.size;
          Table.fmt_float ~digits:3 spectral.spectral_gap;
          string_of_int probe.candidates_tested;
        ])
    [ (Models.SDGR, 14); (Models.SDG, 14); (Models.SDG, 2); (Models.PDGR, 35) ];
  Table.print table;
  Printf.printf
    "\nSDGR and PDGR snapshots expand everywhere (Theorems 3.15 / 4.16).\n\
     SDG at the same d expands only because isolated nodes are rare at\n\
     d = 14; at d = 2 the probe finds zero-expansion sets immediately\n\
     (the isolated nodes of Lemma 3.5).\n"
