(* churnet-lint: determinism & hygiene linter for the churnet sources.

   Usage: churnet-lint [--root DIR] [--baseline FILE] [--json FILE]
                       [--update-baseline] [--list-rules] [--quiet]
                       [PATHS...]

   Exit status: 0 when no new findings, 1 when any rule fires outside
   the baseline, 2 on usage or I/O errors.  Dependency-free by design
   (stdlib [Arg] only): the linter is part of the correctness gate and
   must never be the thing that fails to build. *)

module Lint_engine = Churnet_util.Lint_engine
module Lint_rules = Churnet_util.Lint_rules

let default_paths = [ "lib"; "bin"; "test"; "bench"; "examples" ]

let usage =
  "churnet-lint [--root DIR] [--baseline FILE] [--json FILE] \
   [--update-baseline] [--list-rules] [--quiet] [PATHS...]\n\
   Static determinism & hygiene checks over the churnet OCaml sources."

let () =
  let baseline = ref None in
  let json = ref None in
  let root = ref None in
  let update_baseline = ref false in
  let list_rules = ref false in
  let quiet = ref false in
  let paths = ref [] in
  let spec =
    [
      ( "--root",
        Arg.String (fun s -> root := Some s),
        "DIR interpret PATHS (and report findings) relative to DIR; rules \
         key off repo-relative prefixes like lib/, so fixture trees lint \
         with their own root" );
      ( "--baseline",
        Arg.String (fun s -> baseline := Some s),
        "FILE baseline of grandfathered findings (they do not fail the run)" );
      ( "--json",
        Arg.String (fun s -> json := Some s),
        "FILE write a churnet-lint/2 JSON report to FILE" );
      ( "--update-baseline",
        Arg.Set update_baseline,
        " rewrite the baseline file to the current findings and exit 0" );
      ( "--list-rules",
        Arg.Set list_rules,
        " print the rule catalogue and exit" );
      ("--quiet", Arg.Set quiet, " only print findings, no summary line");
    ]
  in
  (try Arg.parse spec (fun p -> paths := p :: !paths) usage
   with Arg.Bad msg ->
     prerr_string msg;
     exit 2);
  if !list_rules then begin
    List.iter
      (fun (r : Lint_rules.rule) ->
        print_endline (Printf.sprintf "%-22s %s" r.Lint_rules.name r.Lint_rules.doc))
      Lint_rules.all;
    exit 0
  end;
  if !update_baseline && !baseline = None then begin
    prerr_endline "churnet-lint: --update-baseline requires --baseline FILE";
    exit 2
  end;
  let exists p =
    Sys.file_exists
      (match !root with Some r -> Filename.concat r p | None -> p)
  in
  let paths =
    match List.rev !paths with
    | [] ->
        let found = List.filter exists default_paths in
        if found = [] then begin
          prerr_endline
            "churnet-lint: no paths given and none of lib/ bin/ test/ bench/ \
             examples/ exist here";
          exit 2
        end
        else found
    | ps -> ps
  in
  let config =
    {
      Lint_engine.paths;
      root = !root;
      baseline_path = !baseline;
      json_path = !json;
      update_baseline = !update_baseline;
    }
  in
  match Lint_engine.run config with
  | Error msg ->
      prerr_endline ("churnet-lint: " ^ msg);
      exit 2
  | Ok outcome ->
      let report = Lint_engine.render outcome in
      if !quiet then
        List.iter
          (fun (f : Lint_rules.finding) ->
            let base =
              Printf.sprintf "%s:%d:%d: [%s] %s" f.Lint_rules.file
                f.Lint_rules.line f.Lint_rules.col f.Lint_rules.rule
                f.Lint_rules.message
            in
            print_endline
              (match f.Lint_rules.witness with
              | [] -> base
              | w -> base ^ " [path: " ^ String.concat " -> " w ^ "]"))
          outcome.Lint_engine.findings
      else print_string report;
      exit (Lint_engine.exit_code outcome)
