(* churnet command-line interface: list / run / all / demo. *)

open Cmdliner
module Registry = Churnet_experiments.Registry
module Report = Churnet_experiments.Report
module Scale = Churnet_experiments.Scale
module Telemetry = Churnet_experiments.Telemetry

let seed_arg =
  let doc = "PRNG seed (every run is deterministic given the seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let domains_arg =
  let doc =
    "Worker domains for the trial-parallel experiments (overrides \
     $(b,CHURNET_DOMAINS)).  Per-trial PRNGs are pre-split \
     deterministically, so results are bit-identical whatever the value."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let apply_domains = function
  | None -> (
      (* Validate an inherited CHURNET_DOMAINS up front so a typo fails
         with a clean message, not mid-experiment. *)
      try ignore (Churnet_util.Parallel.domains_from_env ())
      with Invalid_argument msg ->
        Printf.eprintf "%s\n" msg;
        exit 1)
  | Some d ->
      if d < 1 then begin
        Printf.eprintf "--domains must be a positive integer\n";
        exit 1
      end;
      Unix.putenv "CHURNET_DOMAINS" (string_of_int d)

let csv_arg =
  let doc = "Also write every table of the report(s) as CSV files into $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let json_arg =
  let doc =
    "Also write the structured report(s) — checks with typed \
     expected/measured values, tables, figures and per-experiment \
     telemetry (wall-clock, GC deltas) — as JSON to $(docv).  The text \
     rendering is unchanged."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let write_json path ~seed ~scale timed =
  let domains = Churnet_util.Parallel.domains_from_env () in
  let doc = Registry.reports_to_json ~seed ~scale ~domains timed in
  Churnet_util.Json.write_file ~pretty:true path doc;
  Printf.printf "wrote %s\n" path

let write_csvs dir (report : Report.t) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iteri
    (fun i table ->
      let path = Filename.concat dir (Printf.sprintf "%s_table%d.csv" report.id (i + 1)) in
      let oc = open_out path in
      output_string oc (Churnet_util.Table.to_csv table);
      close_out oc;
      Printf.printf "wrote %s\n" path)
    report.tables

let scale_arg =
  let doc = "Effort level: smoke, standard or full." in
  let parse s =
    match Scale.of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "unknown scale %S" s))
  in
  let print fmt v = Format.pp_print_string fmt (Scale.to_string v) in
  Arg.(
    value
    & opt (conv (parse, print)) Scale.Standard
    & info [ "scale" ] ~docv:"SCALE" ~doc)

let list_cmd =
  let run () =
    let table = Churnet_util.Table.create [ "id"; "group"; "title" ] in
    List.iter
      (fun (e : Registry.entry) ->
        Churnet_util.Table.add_row table [ e.id; e.group; e.title ])
      Registry.all;
    Churnet_util.Table.print table
  in
  Cmd.v (Cmd.info "list" ~doc:"List all experiments (Table 1 cells and figures).")
    Term.(const run $ const ())

let run_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id (e.g. E1, F3).")
  in
  let run id seed scale csv json domains =
    apply_domains domains;
    match Registry.find id with
    | None ->
        Printf.eprintf "unknown experiment %S; try `churnet list`\n" id;
        exit 1
    | Some e ->
        let report, telemetry =
          Telemetry.measure ~seed ~scale (fun () -> e.run ~seed ~scale)
        in
        print_string (Report.render report);
        (match csv with Some dir -> write_csvs dir report | None -> ());
        (match json with
        | Some path -> write_json path ~seed ~scale [ (report, telemetry) ]
        | None -> ());
        if not (Report.all_hold report) then exit 2
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment and print its paper-vs-measured report.")
    Term.(const run $ id_arg $ seed_arg $ scale_arg $ csv_arg $ json_arg $ domains_arg)

let all_cmd =
  let group_arg =
    let doc = "Restrict to a group: table1, figures, extensions or theory." in
    Arg.(value & opt (some string) None & info [ "group" ] ~docv:"GROUP" ~doc)
  in
  let run group seed scale csv json domains =
    apply_domains domains;
    let entries =
      match group with
      | Some "table1" -> Registry.table1
      | Some "figures" -> Registry.figures
      | Some "extensions" -> Registry.extensions
      | Some "theory" -> Registry.theory
      | Some other ->
          Printf.eprintf "unknown group %S (use table1, figures, extensions or theory)\n" other;
          exit 1
      | None -> Registry.all
    in
    let timed =
      List.map
        (fun (e : Registry.entry) ->
          Printf.printf "... running %s (%s)\n%!" e.id e.title;
          Telemetry.measure ~seed ~scale (fun () -> e.run ~seed ~scale))
        entries
    in
    let reports = List.map fst timed in
    List.iter (fun r -> print_string (Report.render r)) reports;
    (match csv with
    | Some dir -> List.iter (write_csvs dir) reports
    | None -> ());
    (match json with
    | Some path -> write_json path ~seed ~scale timed
    | None -> ());
    print_newline ();
    Churnet_util.Table.print (Registry.summary reports);
    if not (List.for_all Report.all_hold reports) then exit 2
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment and print a roll-up summary.")
    Term.(const run $ group_arg $ seed_arg $ scale_arg $ csv_arg $ json_arg $ domains_arg)

let demo_cmd =
  let run seed =
    let rng = Churnet_util.Prng.create seed in
    Printf.printf "Building a PDGR network (n = 1000, d = 8) and flooding it...\n%!";
    let m =
      Churnet_core.Poisson_model.create ~rng ~n:1000 ~d:8 ~regenerate:true ()
    in
    Churnet_core.Poisson_model.warm_up m;
    let tr = Churnet_core.Flood.run_poisson_discretized m in
    Printf.printf "population %d, informed %d, completed %b in %s rounds\n"
      tr.final_population tr.final_informed tr.completed
      (match tr.completion_round with Some r -> string_of_int r | None -> "-");
    Array.iteri
      (fun i inf -> Printf.printf "  round %2d: %4d informed / %4d alive\n" i inf
          tr.population_per_round.(i))
      tr.informed_per_round
  in
  Cmd.v (Cmd.info "demo" ~doc:"Tiny end-to-end demo: flood a PDGR network.")
    Term.(const run $ seed_arg)

let fingerprint_cmd =
  let kind_arg =
    let doc = "Model kind: SDG, SDGR, PDG or PDGR." in
    Arg.(value & opt string "PDGR" & info [ "kind" ] ~docv:"KIND" ~doc)
  in
  let n_arg = Arg.(value & opt int 2000 & info [ "n"; "size" ] ~docv:"N" ~doc:"Stationary population.") in
  let d_arg = Arg.(value & opt int 8 & info [ "d"; "degree" ] ~docv:"D" ~doc:"Out-degree.") in
  let dot_arg =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc:"Also write a Graphviz DOT rendering of the snapshot.")
  in
  let run kind n d seed dot =
    match Churnet_core.Models.kind_of_string kind with
    | None ->
        Printf.eprintf "unknown model kind %S (use SDG/SDGR/PDG/PDGR)\n" kind;
        exit 1
    | Some k ->
        let rng = Churnet_util.Prng.create seed in
        let m = Churnet_core.Models.create ~rng k ~n ~d in
        Churnet_core.Models.warm_up m;
        let snap = Churnet_core.Models.snapshot m in
        let fp = Churnet_graph.Metrics.fingerprint ~rng snap in
        let table = Churnet_util.Table.create [ "metric"; "value" ] in
        let add l v = Churnet_util.Table.add_row table [ l; v ] in
        add "model" (Churnet_core.Models.kind_name k);
        add "nodes" (string_of_int fp.nodes);
        add "edges" (string_of_int fp.edges);
        add "mean degree" (Churnet_util.Table.fmt_float ~digits:2 fp.mean_degree);
        add "max degree" (string_of_int fp.max_degree);
        add "degree gini" (Churnet_util.Table.fmt_float ~digits:3 fp.degree_gini);
        add "global clustering" (Churnet_util.Table.fmt_float ~digits:4 fp.global_clustering);
        add "assortativity" (Churnet_util.Table.fmt_float ~digits:3 fp.assortativity);
        add "mean distance" (Churnet_util.Table.fmt_float ~digits:2 fp.mean_distance);
        add "diameter >=" (string_of_int fp.diameter_lb);
        add "giant component" (Churnet_util.Table.fmt_pct fp.giant_fraction);
        Churnet_util.Table.print table;
        match dot with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            output_string oc (Churnet_graph.Snapshot.to_dot snap);
            close_out oc;
            Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "fingerprint" ~doc:"Print the topology fingerprint of a warmed-up model snapshot.")
    Term.(const run $ kind_arg $ n_arg $ d_arg $ seed_arg $ dot_arg)

let flood_cmd =
  let kind_arg =
    let doc = "Model kind: SDG, SDGR, PDG or PDGR." in
    Arg.(value & opt string "SDGR" & info [ "kind" ] ~docv:"KIND" ~doc)
  in
  let n_arg = Arg.(value & opt int 1000 & info [ "n"; "size" ] ~docv:"N" ~doc:"Stationary population.") in
  let d_arg = Arg.(value & opt int 8 & info [ "d"; "degree" ] ~docv:"D" ~doc:"Out-degree.") in
  let run kind n d seed =
    match Churnet_core.Models.kind_of_string kind with
    | None ->
        Printf.eprintf "unknown model kind %S (use SDG/SDGR/PDG/PDGR)\n" kind;
        exit 1
    | Some k ->
        let rng = Churnet_util.Prng.create seed in
        let m = Churnet_core.Models.create ~rng k ~n ~d in
        Churnet_core.Models.warm_up m;
        let tr = Churnet_core.Models.flood m in
        Printf.printf "flooding a %s network (n = %d, d = %d, seed %d)\n\n"
          (Churnet_core.Models.kind_name k) n d seed;
        Array.iteri
          (fun i inf ->
            let pop = tr.Churnet_core.Flood.population_per_round.(i) in
            Printf.printf "  round %3d: %6d / %6d informed (%.1f%%)\n" i inf pop
              (100. *. float_of_int inf /. float_of_int pop))
          tr.Churnet_core.Flood.informed_per_round;
        (match tr.Churnet_core.Flood.completion_round with
        | Some r -> Printf.printf "\ncompleted in %d rounds\n" r
        | None when tr.Churnet_core.Flood.extinct ->
            Printf.printf "\nrumor went extinct at round %s (peak coverage %.1f%%)\n"
              (match tr.Churnet_core.Flood.extinction_round with
              | Some r -> string_of_int r
              | None -> "?")
              (100. *. tr.Churnet_core.Flood.peak_coverage)
        | None ->
            Printf.printf "\ndid not complete (peak coverage %.1f%%)\n"
              (100. *. tr.Churnet_core.Flood.peak_coverage))
  in
  Cmd.v
    (Cmd.info "flood" ~doc:"Run one flooding experiment and print the round-by-round trace.")
    Term.(const run $ kind_arg $ n_arg $ d_arg $ seed_arg)

let () =
  let doc =
    "Reproduction of `Expansion and Flooding in Dynamic Random Networks with Node \
     Churn' (Becchetti et al., ICDCS 2021)."
  in
  let info = Cmd.info "churnet" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; all_cmd; demo_cmd; fingerprint_cmd; flood_cmd ]))
