(* churnet command-line interface: list / run / all / demo. *)

open Cmdliner
module Registry = Churnet_experiments.Registry
module Report = Churnet_experiments.Report
module Scale = Churnet_experiments.Scale
module Telemetry = Churnet_experiments.Telemetry
module Checkpoint = Churnet_util.Checkpoint
module Codec = Churnet_util.Codec

let seed_arg =
  let doc = "PRNG seed (every run is deterministic given the seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let domains_arg =
  let doc =
    "Worker domains for the trial-parallel experiments (overrides \
     $(b,CHURNET_DOMAINS)).  Per-trial PRNGs are pre-split \
     deterministically, so results are bit-identical whatever the value."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let apply_domains = function
  | None -> (
      (* Validate an inherited CHURNET_DOMAINS up front so a typo fails
         with a clean message, not mid-experiment — and with the same
         exit code (124) cmdliner uses for a malformed option, since a
         bad env var is the same class of usage error as a bad flag. *)
      try ignore (Churnet_util.Parallel.domains_from_env ())
      with Invalid_argument msg ->
        Printf.eprintf "churnet: %s\n" msg;
        exit 124)
  | Some d ->
      if d < 1 then begin
        Printf.eprintf "--domains must be a positive integer\n";
        exit 1
      end;
      Unix.putenv "CHURNET_DOMAINS" (string_of_int d)

let csv_arg =
  let doc = "Also write every table of the report(s) as CSV files into $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let json_arg =
  let doc =
    "Also write the structured report(s) — checks with typed \
     expected/measured values, tables, figures and per-experiment \
     telemetry (wall-clock, GC deltas) — as JSON to $(docv).  The text \
     rendering is unchanged."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let write_json path ~seed ~scale timed =
  let domains = Churnet_util.Parallel.domains_from_env () in
  let doc = Registry.reports_to_json ~seed ~scale ~domains timed in
  Churnet_util.Json.write_file ~pretty:true path doc;
  Printf.printf "wrote %s\n" path

let write_csvs dir (report : Report.t) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iteri
    (fun i table ->
      let path = Filename.concat dir (Printf.sprintf "%s_table%d.csv" report.id (i + 1)) in
      let oc = open_out path in
      output_string oc (Churnet_util.Table.to_csv table);
      close_out oc;
      Printf.printf "wrote %s\n" path)
    report.tables

(* --- checkpoint/resume ------------------------------------------------ *)

let ckpt_arg =
  let doc =
    "Journal completed work units to $(docv) so a killed run can be \
     resumed with $(b,--resume).  Starts a fresh journal, overwriting \
     any existing file."
  in
  Arg.(value & opt (some string) None & info [ "ckpt" ] ~docv:"FILE" ~doc)

let every_arg =
  let doc = "Persist the checkpoint journal after every $(docv) completed work units." in
  Arg.(value & opt int 1 & info [ "checkpoint-every" ] ~docv:"K" ~doc)

let resume_arg =
  let doc =
    "Resume from the checkpoint journal at $(docv): cached work units \
     are restored, the rest recomputed, and the output is byte-identical \
     to an uninterrupted run.  The journal must come from the same \
     binary, command, seed and scale.  Continues journaling to the same \
     file unless $(b,--ckpt) overrides the path."
  in
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE" ~doc)

let crash_at_arg =
  let doc =
    "Fault injection: SIGKILL this process as the $(docv)-th freshly \
     computed work unit completes.  Exercises the crash/resume \
     guarantee; used by the fault harness."
  in
  Arg.(value & opt (some int) None & info [ "crash-at" ] ~docv:"K" ~doc)

let exe_digest () = Digest.to_hex (Digest.file Sys.executable_name)

let arm_crash = function
  | None -> ()
  | Some k ->
      if k < 1 then begin
        Printf.eprintf "--crash-at must be >= 1\n";
        exit 1
      end;
      Checkpoint.crash_after k (fun () -> Unix.kill (Unix.getpid ()) Sys.sigkill)

(* The meta line ties a journal to (binary, command, seed, scale): its
   payloads are Marshal data, only safe to decode in the exact context
   that wrote them.  Crash flags are deliberately excluded — a resumed
   run drops them. *)
let journal_meta ~cmd ~seed ~scale =
  Printf.sprintf "churnet exe=%s cmd=%s seed=%d scale=%s" (exe_digest ()) cmd seed
    (Scale.to_string scale)

let setup_journal ~ckpt ~resume ~every ~meta =
  if every < 1 then begin
    Printf.eprintf "--checkpoint-every must be >= 1\n";
    exit 1
  end;
  Checkpoint.set_clock Telemetry.now;
  match
    match (resume, ckpt) with
    | Some path, _ -> Some (Checkpoint.load ~path ~every ~meta)
    | None, Some path -> Some (Checkpoint.create ~path ~every ~meta)
    | None, None -> None
  with
  | None -> None
  | Some j ->
      Checkpoint.install j;
      Some j
  | exception Checkpoint.Mismatch msg ->
      Printf.eprintf "%s\n" msg;
      exit 1
  | exception Codec.Error msg ->
      Printf.eprintf "corrupt checkpoint: %s\n" msg;
      exit 1
  | exception Sys_error msg ->
      Printf.eprintf "checkpoint error: %s\n" msg;
      exit 1

(* Checkpoint chatter goes to stderr: stdout must stay byte-identical to
   an uncheckpointed run (that is the whole guarantee). *)
let finish_journal = function
  | None -> ()
  | Some j ->
      Checkpoint.finalize j;
      let s = Checkpoint.stats j in
      Printf.eprintf "checkpoint: %d units stored, %d restored, %d writes (%.3fs)\n%!"
        s.Checkpoint.units_stored s.Checkpoint.units_restored s.Checkpoint.writes
        s.Checkpoint.write_seconds

let scale_arg =
  let doc = "Effort level: smoke, standard, full or xl." in
  let parse s =
    match Scale.of_string s with
    | Some v -> Ok v
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown scale %S (valid: %s)" s
               (String.concat ", " Scale.names)))
  in
  let print fmt v = Format.pp_print_string fmt (Scale.to_string v) in
  Arg.(
    value
    & opt (conv (parse, print)) Scale.Standard
    & info [ "scale" ] ~docv:"SCALE" ~doc)

let list_cmd =
  let run () =
    let table = Churnet_util.Table.create [ "id"; "group"; "title" ] in
    List.iter
      (fun (e : Registry.entry) ->
        Churnet_util.Table.add_row table [ e.id; e.group; e.title ])
      Registry.all;
    Churnet_util.Table.print table
  in
  Cmd.v (Cmd.info "list" ~doc:"List all experiments (Table 1 cells and figures).")
    Term.(const run $ const ())

let run_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id (e.g. E1, F3).")
  in
  let run id seed scale csv json domains ckpt resume every crash_at =
    apply_domains domains;
    match Registry.find id with
    | None ->
        Printf.eprintf "unknown experiment %S; try `churnet list`\n" id;
        exit 1
    | Some e ->
        arm_crash crash_at;
        let meta = journal_meta ~cmd:("run:" ^ e.id) ~seed ~scale in
        let journal = setup_journal ~ckpt ~resume ~every ~meta in
        let report, telemetry =
          Telemetry.measure ~seed ~scale (fun () -> e.run ~seed ~scale)
        in
        finish_journal journal;
        print_string (Report.render report);
        (match csv with Some dir -> write_csvs dir report | None -> ());
        (match json with
        | Some path -> write_json path ~seed ~scale [ (report, telemetry) ]
        | None -> ());
        if not (Report.all_hold report) then exit 2
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment and print its paper-vs-measured report.")
    Term.(
      const run $ id_arg $ seed_arg $ scale_arg $ csv_arg $ json_arg $ domains_arg
      $ ckpt_arg $ resume_arg $ every_arg $ crash_at_arg)

let all_cmd =
  let group_arg =
    let doc = "Restrict to a group: table1, figures, extensions or theory." in
    Arg.(value & opt (some string) None & info [ "group" ] ~docv:"GROUP" ~doc)
  in
  let run group seed scale csv json domains ckpt resume every crash_at =
    apply_domains domains;
    let entries =
      match group with
      | Some "table1" -> Registry.table1
      | Some "figures" -> Registry.figures
      | Some "extensions" -> Registry.extensions
      | Some "theory" -> Registry.theory
      | Some other ->
          Printf.eprintf "unknown group %S (use table1, figures, extensions or theory)\n" other;
          exit 1
      | None -> Registry.all
    in
    arm_crash crash_at;
    let meta =
      journal_meta ~cmd:("all:" ^ Option.value ~default:"all" group) ~seed ~scale
    in
    let journal = setup_journal ~ckpt ~resume ~every ~meta in
    let timed =
      List.map
        (fun (e : Registry.entry) ->
          Printf.printf "... running %s (%s)\n%!" e.id e.title;
          Telemetry.measure ~seed ~scale (fun () -> e.run ~seed ~scale))
        entries
    in
    finish_journal journal;
    let reports = List.map fst timed in
    List.iter (fun r -> print_string (Report.render r)) reports;
    (match csv with
    | Some dir -> List.iter (write_csvs dir) reports
    | None -> ());
    (match json with
    | Some path -> write_json path ~seed ~scale timed
    | None -> ());
    print_newline ();
    Churnet_util.Table.print (Registry.summary reports);
    if not (List.for_all Report.all_hold reports) then exit 2
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment and print a roll-up summary.")
    Term.(
      const run $ group_arg $ seed_arg $ scale_arg $ csv_arg $ json_arg $ domains_arg
      $ ckpt_arg $ resume_arg $ every_arg $ crash_at_arg)

let demo_cmd =
  let run seed =
    let rng = Churnet_util.Prng.create seed in
    Printf.printf "Building a PDGR network (n = 1000, d = 8) and flooding it...\n%!";
    let m =
      Churnet_core.Poisson_model.create ~rng ~n:1000 ~d:8 ~regenerate:true ()
    in
    Churnet_core.Poisson_model.warm_up m;
    let tr = Churnet_core.Flood.run_poisson_discretized m in
    Printf.printf "population %d, informed %d, completed %b in %s rounds\n"
      tr.final_population tr.final_informed tr.completed
      (match tr.completion_round with Some r -> string_of_int r | None -> "-");
    Array.iteri
      (fun i inf -> Printf.printf "  round %2d: %4d informed / %4d alive\n" i inf
          tr.population_per_round.(i))
      tr.informed_per_round
  in
  Cmd.v (Cmd.info "demo" ~doc:"Tiny end-to-end demo: flood a PDGR network.")
    Term.(const run $ seed_arg)

let fingerprint_cmd =
  let kind_arg =
    let doc = "Model kind: SDG, SDGR, PDG or PDGR." in
    Arg.(value & opt string "PDGR" & info [ "kind" ] ~docv:"KIND" ~doc)
  in
  let n_arg = Arg.(value & opt int 2000 & info [ "n"; "size" ] ~docv:"N" ~doc:"Stationary population.") in
  let d_arg = Arg.(value & opt int 8 & info [ "d"; "degree" ] ~docv:"D" ~doc:"Out-degree.") in
  let dot_arg =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc:"Also write a Graphviz DOT rendering of the snapshot.")
  in
  let run kind n d seed dot =
    match Churnet_core.Models.kind_of_string kind with
    | None ->
        Printf.eprintf "unknown model kind %S (use SDG/SDGR/PDG/PDGR)\n" kind;
        exit 1
    | Some k ->
        let rng = Churnet_util.Prng.create seed in
        let m = Churnet_core.Models.create ~rng k ~n ~d in
        Churnet_core.Models.warm_up m;
        let snap = Churnet_core.Models.snapshot m in
        let fp = Churnet_graph.Metrics.fingerprint ~rng snap in
        let table = Churnet_util.Table.create [ "metric"; "value" ] in
        let add l v = Churnet_util.Table.add_row table [ l; v ] in
        add "model" (Churnet_core.Models.kind_name k);
        add "nodes" (string_of_int fp.nodes);
        add "edges" (string_of_int fp.edges);
        add "mean degree" (Churnet_util.Table.fmt_float ~digits:2 fp.mean_degree);
        add "max degree" (string_of_int fp.max_degree);
        add "degree gini" (Churnet_util.Table.fmt_float ~digits:3 fp.degree_gini);
        add "global clustering" (Churnet_util.Table.fmt_float ~digits:4 fp.global_clustering);
        add "assortativity" (Churnet_util.Table.fmt_float ~digits:3 fp.assortativity);
        add "mean distance" (Churnet_util.Table.fmt_float ~digits:2 fp.mean_distance);
        add "diameter >=" (string_of_int fp.diameter_lb);
        add "giant component" (Churnet_util.Table.fmt_pct fp.giant_fraction);
        Churnet_util.Table.print table;
        match dot with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            output_string oc (Churnet_graph.Snapshot.to_dot snap);
            close_out oc;
            Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "fingerprint" ~doc:"Print the topology fingerprint of a warmed-up model snapshot.")
    Term.(const run $ kind_arg $ n_arg $ d_arg $ seed_arg $ dot_arg)

let flood_cmd =
  let kind_arg =
    let doc = "Model kind: SDG, SDGR, PDG or PDGR." in
    Arg.(value & opt string "SDGR" & info [ "kind" ] ~docv:"KIND" ~doc)
  in
  let n_arg = Arg.(value & opt int 1000 & info [ "n"; "size" ] ~docv:"N" ~doc:"Stationary population.") in
  let d_arg = Arg.(value & opt int 8 & info [ "d"; "degree" ] ~docv:"D" ~doc:"Out-degree.") in
  let run kind n d seed =
    match Churnet_core.Models.kind_of_string kind with
    | None ->
        Printf.eprintf "unknown model kind %S (use SDG/SDGR/PDG/PDGR)\n" kind;
        exit 1
    | Some k ->
        let rng = Churnet_util.Prng.create seed in
        let m = Churnet_core.Models.create ~rng k ~n ~d in
        Churnet_core.Models.warm_up m;
        let tr = Churnet_core.Models.flood m in
        Printf.printf "flooding a %s network (n = %d, d = %d, seed %d)\n\n"
          (Churnet_core.Models.kind_name k) n d seed;
        Array.iteri
          (fun i inf ->
            let pop = tr.Churnet_core.Flood.population_per_round.(i) in
            Printf.printf "  round %3d: %6d / %6d informed (%.1f%%)\n" i inf pop
              (100. *. float_of_int inf /. float_of_int pop))
          tr.Churnet_core.Flood.informed_per_round;
        (match tr.Churnet_core.Flood.completion_round with
        | Some r -> Printf.printf "\ncompleted in %d rounds\n" r
        | None when tr.Churnet_core.Flood.extinct ->
            Printf.printf "\nrumor went extinct at round %s (peak coverage %.1f%%)\n"
              (match tr.Churnet_core.Flood.extinction_round with
              | Some r -> string_of_int r
              | None -> "?")
              (100. *. tr.Churnet_core.Flood.peak_coverage)
        | None ->
            Printf.printf "\ndid not complete (peak coverage %.1f%%)\n"
              (100. *. tr.Churnet_core.Flood.peak_coverage))
  in
  Cmd.v
    (Cmd.info "flood" ~doc:"Run one flooding experiment and print the round-by-round trace.")
    Term.(const run $ kind_arg $ n_arg $ d_arg $ seed_arg)

(* Declarative grid sweeps.  stdout (the rendered sweep) and the --json
   trajectory file are pure functions of the config: telemetry, progress
   and checkpoint chatter all go to stderr, so a serial, a --domains 4
   and a crash/resumed run of the same config are byte-comparable. *)
let sweep_cmd =
  let module Sweep = Churnet_experiments.Sweep in
  let config_arg =
    let doc =
      "Sweep grid config (JSON, schema churnet-sweep-config/1): a \
       \"grid\" of model/n/d/lambda/seeds axes and/or an \"experiments\" \
       list of registry ids with seeds and a scale."
    in
    Arg.(required & opt (some string) None & info [ "config" ] ~docv:"FILE" ~doc)
  in
  let sweep_json_arg =
    let doc =
      "Write the aggregated churnet-sweep/1 trajectory document (config \
       echo, per-experiment reports, per-cell metrics, figures) to \
       $(docv).  Byte-identical for a given config whatever the domain \
       count or crash/resume history."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let run config json domains ckpt resume every crash_at =
    apply_domains domains;
    match Sweep.config_of_file config with
    | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
    | Ok cfg ->
        arm_crash crash_at;
        (* The journal identity is the canonical config digest: resuming
           under an edited grid must be refused (cell index = work-unit
           index), while an irrelevant CLI detail like the config's path
           must not invalidate the journal. *)
        let meta =
          Printf.sprintf "churnet exe=%s cmd=sweep:%s" (exe_digest ())
            (Digest.to_hex
               (Digest.string (Churnet_util.Json.to_string (Sweep.config_to_json cfg))))
        in
        let journal = setup_journal ~ckpt ~resume ~every ~meta in
        let progress line = Printf.eprintf "... %s\n%!" line in
        let outcome = Sweep.run ~progress cfg in
        finish_journal journal;
        print_string (Sweep.render outcome);
        List.iter
          (fun (e : Sweep.exp_result) ->
            Printf.eprintf "telemetry %s seed %d: %.3fs%s\n%!" e.exp_id e.exp_seed
              e.telemetry.Telemetry.wall_seconds
              (match e.telemetry.Telemetry.cell_peak_rss_kb with
              | Some kb -> Printf.sprintf ", cell peak rss %d kB" kb
              | None -> ""))
          outcome.Sweep.exp_results;
        (match json with
        | Some path ->
            Churnet_util.Json.write_file ~pretty:true path (Sweep.to_json outcome);
            Printf.eprintf "wrote %s\n%!" path
        | None -> ());
        if not (Sweep.all_hold outcome) then exit 2
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run a declarative parameter sweep from a grid config and \
          aggregate one churnet-sweep/1 trajectory document (resumable \
          with --ckpt/--resume).")
    Term.(
      const run $ config_arg $ sweep_json_arg $ domains_arg $ ckpt_arg $ resume_arg
      $ every_arg $ crash_at_arg)

(* State-level checkpointing demo: the scripted record/replay run of the
   byte-equality suite (graph seed 4242, script seed 999, d = 3, 150
   steps), checkpointed as a full state snapshot — step counter, script
   PRNG, graph arena, event log — rather than a work-unit journal.  This
   exercises every state codec end-to-end: a run killed at any step and
   resumed must print the identical event stream and replay DOT. *)
let record_replay_cmd =
  let module Dyngraph = Churnet_graph.Dyngraph in
  let module Event_log = Churnet_graph.Event_log in
  let module Snapshot = Churnet_graph.Snapshot in
  let module Prng = Churnet_util.Prng in
  let steps = 150 in
  (* State codecs are binary-portable (no Marshal), so unlike the
     work-unit journal this meta carries no executable digest. *)
  let meta = "churnet-record-replay graph-seed=4242 script-seed=999 d=3 steps=150" in
  let save path ~step ~script g log =
    Codec.write_file ~schema:Codec.schema path (fun w ->
        Codec.string w meta;
        Codec.varint w step;
        Prng.encode w script;
        Dyngraph.encode w g;
        Codec.string w (Event_log.to_string log))
  in
  let load path =
    let r = Codec.read_file ~schema:Codec.schema path in
    let stored = Codec.read_string r in
    if stored <> meta then begin
      Printf.eprintf
        "checkpoint %s is not a record-replay state\n  stored:  %s\n  current: %s\n"
        path stored meta;
      exit 1
    end;
    let step = Codec.read_varint r in
    let script = Prng.decode r in
    let g = Dyngraph.decode r in
    let log_text = Codec.read_string r in
    Codec.expect_end r;
    match Event_log.of_string log_text with
    | Ok log -> (step, script, g, log)
    | Error e ->
        Printf.eprintf "corrupt event log in checkpoint %s: %s\n" path e;
        exit 1
  in
  let crash_at_step_arg =
    let doc = "Fault injection: SIGKILL after completing (and checkpointing) step $(docv)." in
    Arg.(value & opt (some int) None & info [ "crash-at-step" ] ~docv:"K" ~doc)
  in
  let run ckpt resume every crash_at_step =
    if every < 1 then begin
      Printf.eprintf "--checkpoint-every must be >= 1\n";
      exit 1
    end;
    let ckpt = match ckpt with Some _ -> ckpt | None -> resume in
    let step0, script, g, log =
      match resume with
      | Some path -> (
          try load path with
          | Codec.Error msg ->
              Printf.eprintf "corrupt checkpoint %s: %s\n" path msg;
              exit 1
          | Sys_error msg ->
              Printf.eprintf "checkpoint error: %s\n" msg;
              exit 1)
      | None ->
          ( 0,
            Prng.create 999,
            Dyngraph.create ~rng:(Prng.create 4242) ~d:3 ~regenerate:true (),
            Event_log.create () )
    in
    Event_log.attach log g;
    for i = step0 + 1 to steps do
      if Dyngraph.alive_count g > 3 && Prng.bernoulli script 0.4 then
        Dyngraph.kill g (Dyngraph.random_alive g)
      else ignore (Dyngraph.add_node g ~birth:i);
      (match ckpt with
      | Some path when i mod every = 0 || i = steps -> save path ~step:i ~script g log
      | _ -> ());
      match crash_at_step with
      | Some k when i = k -> Unix.kill (Unix.getpid ()) Sys.sigkill
      | _ -> ()
    done;
    Event_log.detach log g;
    let replayed = Event_log.replay log in
    print_string (Event_log.to_string log);
    print_string "-- replay --\n";
    print_string (Snapshot.to_dot ~name:"replay" replayed)
  in
  Cmd.v
    (Cmd.info "record-replay"
       ~doc:
         "Run the scripted record/replay churn sequence with full-state \
          checkpointing (exercises the state codecs; output matches the \
          byte-equality golden).")
    Term.(const run $ ckpt_arg $ resume_arg $ every_arg $ crash_at_step_arg)

let () =
  let doc =
    "Reproduction of `Expansion and Flooding in Dynamic Random Networks with Node \
     Churn' (Becchetti et al., ICDCS 2021)."
  in
  let info = Cmd.info "churnet" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            run_cmd;
            all_cmd;
            demo_cmd;
            sweep_cmd;
            fingerprint_cmd;
            flood_cmd;
            record_replay_cmd;
          ]))
