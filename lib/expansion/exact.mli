(** Exact vertex isoperimetric number by exhaustive enumeration.

    h_out(G) = min over non-empty S with |S| <= n/2 of |boundary(S)|/|S|
    (Definition 3.1).  Exponential in n — usable for n <= ~22, which is
    what the unit tests and tiny sanity checks need. *)

val h_out : Churnet_graph.Snapshot.t -> float
(** Raises [Invalid_argument] when the snapshot has more than 22 vertices
    or fewer than 2. *)

val h_out_with_witness : Churnet_graph.Snapshot.t -> float * int list
(** Also return one minimizing set (as snapshot indices). *)

val is_expander : Churnet_graph.Snapshot.t -> epsilon:float -> bool
