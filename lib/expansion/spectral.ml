module Snapshot = Churnet_graph.Snapshot

type report = {
  lambda2 : float;
  spectral_gap : float;
  cheeger_lower : float;
  sweep_conductance : float;
  sweep_set_size : int;
  component_size : int;
}

(* Extract the largest component as (members, local adjacency). *)
let largest_component_graph snap =
  let label, k = Snapshot.components snap in
  if k = 0 then ([||], [||])
  else begin
    let sizes = Array.make k 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) label;
    let best = ref 0 in
    Array.iteri (fun c s -> if s > sizes.(!best) then best := c) sizes;
    let members =
      Array.of_list
        (List.filter (fun v -> label.(v) = !best)
           (List.init (Snapshot.n snap) Fun.id))
    in
    let local_of = Array.make (Snapshot.n snap) (-1) in
    Array.iteri (fun i v -> local_of.(v) <- i) members;
    let adj =
      Array.map
        (fun v ->
          let row = Array.make (Snapshot.degree snap v) 0 in
          let k = ref 0 in
          Snapshot.iter_neighbors snap v (fun w ->
              row.(!k) <- local_of.(w);
              incr k);
          row)
        members
    in
    (members, adj)
  end

(* Second eigenvector of the lazy walk W = (I + D^-1 A)/2 by power
   iteration with deflation against the stationary distribution (which is
   degree-proportional for a reversible chain). *)
let second_eigen adj iters =
  let m = Array.length adj in
  if m < 2 then (1., [||])
  else begin
    let deg = Array.map (fun a -> float_of_int (max 1 (Array.length a))) adj in
    let total_deg = Array.fold_left ( +. ) 0. deg in
    let x = Array.init m (fun i -> Float.sin (float_of_int ((i * 7919) mod 104729))) in
    let deflate v =
      (* Remove the component along the constant (right) eigenvector in
         the degree-weighted inner product. *)
      let proj = ref 0. in
      Array.iteri (fun i vi -> proj := !proj +. (deg.(i) *. vi)) v;
      let c = !proj /. total_deg in
      Array.iteri (fun i vi -> v.(i) <- vi -. c) v
    in
    let normalize v =
      let norm = sqrt (Array.fold_left (fun acc vi -> acc +. (vi *. vi)) 0. v) in
      if norm > 0. then Array.iteri (fun i vi -> v.(i) <- vi /. norm) v
    in
    deflate x;
    normalize x;
    let y = Array.make m 0. in
    let lambda = ref 1. in
    for _ = 1 to iters do
      for i = 0 to m - 1 do
        let acc = ref 0. in
        Array.iter (fun j -> acc := !acc +. x.(j)) adj.(i);
        y.(i) <- 0.5 *. (x.(i) +. (!acc /. deg.(i)))
      done;
      (* Rayleigh quotient in the degree-weighted inner product. *)
      let num = ref 0. and den = ref 0. in
      for i = 0 to m - 1 do
        num := !num +. (deg.(i) *. y.(i) *. x.(i));
        den := !den +. (deg.(i) *. x.(i) *. x.(i))
      done;
      if !den > 0. then lambda := !num /. !den;
      Array.blit y 0 x 0 m;
      deflate x;
      normalize x
    done;
    (!lambda, x)
  end

let conductance_of_sweep adj order =
  let m = Array.length adj in
  let deg = Array.map Array.length adj in
  let total_vol = Array.fold_left ( + ) 0 deg in
  let in_set = Array.make m false in
  let vol = ref 0 and cut = ref 0 in
  let best = ref infinity and best_size = ref 0 in
  Array.iteri
    (fun idx v ->
      in_set.(v) <- true;
      vol := !vol + deg.(v);
      Array.iter (fun w -> if in_set.(w) then cut := !cut - 1 else cut := !cut + 1) adj.(v);
      if idx < m - 1 then begin
        let denom = min !vol (total_vol - !vol) in
        if denom > 0 then begin
          let phi = float_of_int !cut /. float_of_int denom in
          if phi < !best then begin
            best := phi;
            best_size := idx + 1
          end
        end
      end)
    order;
  (!best, !best_size)

let sorted_order vec =
  let order = Array.init (Array.length vec) Fun.id in
  Array.sort (fun a b -> Float.compare vec.(a) vec.(b)) order;
  order

let analyze ?(iters = 300) snap =
  let members, adj = largest_component_graph snap in
  let m = Array.length members in
  if m < 2 then
    { lambda2 = 1.; spectral_gap = 0.; cheeger_lower = 0.; sweep_conductance = nan;
      sweep_set_size = 0; component_size = m }
  else begin
    let lambda2, vec = second_eigen adj iters in
    let order = sorted_order vec in
    let sweep_conductance, sweep_set_size = conductance_of_sweep adj order in
    {
      lambda2;
      spectral_gap = 1. -. lambda2;
      cheeger_lower = (1. -. lambda2) /. 2.;
      sweep_conductance;
      sweep_set_size;
      component_size = m;
    }
  end

let sweep_sets snap =
  let members, adj = largest_component_graph snap in
  let m = Array.length members in
  if m < 4 then []
  else begin
    let _, vec = second_eigen adj 150 in
    let order = sorted_order vec in
    (* Prefixes at geometric sizes up to half the component. *)
    let sets = ref [] in
    let size = ref 2 in
    while !size <= m / 2 do
      let prefix = Array.sub order 0 !size in
      sets := Array.map (fun local -> members.(local)) prefix :: !sets;
      size := max (!size + 1) (!size * 3 / 2)
    done;
    List.rev !sets
  end
