module Snapshot = Churnet_graph.Snapshot

let h_out_with_witness snap =
  let n = Snapshot.n snap in
  if n < 2 then invalid_arg "Exact.h_out: need at least 2 vertices";
  if n > 22 then invalid_arg "Exact.h_out: snapshot too large for enumeration";
  (* Neighborhood masks: bit v of mask.(u) set iff {u,v} is an edge. *)
  let masks = Array.make n 0 in
  for u = 0 to n - 1 do
    Snapshot.iter_neighbors snap u (fun v -> masks.(u) <- masks.(u) lor (1 lsl v))
  done;
  let best = ref infinity and witness = ref 0 in
  let full = (1 lsl n) - 1 in
  for s = 1 to full do
    let size = ref 0 and nbr = ref 0 in
    for v = 0 to n - 1 do
      if s land (1 lsl v) <> 0 then begin
        incr size;
        nbr := !nbr lor masks.(v)
      end
    done;
    if 2 * !size <= n then begin
      let boundary = !nbr land lnot s land full in
      let out = ref 0 and b = ref boundary in
      while !b <> 0 do
        b := !b land (!b - 1);
        incr out
      done;
      let ratio = float_of_int !out /. float_of_int !size in
      if ratio < !best then begin
        best := ratio;
        witness := s
      end
    end
  done;
  let set = ref [] in
  for v = n - 1 downto 0 do
    if !witness land (1 lsl v) <> 0 then set := v :: !set
  done;
  (!best, !set)

let h_out snap = fst (h_out_with_witness snap)
let is_expander snap ~epsilon = h_out snap > epsilon
