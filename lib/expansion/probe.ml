module Snapshot = Churnet_graph.Snapshot
module Bitset = Churnet_util.Bitset
module Prng = Churnet_util.Prng

type witness = { family : string; size : int; expansion : float }

type report = {
  min_expansion : float;
  witness : witness;
  per_family : (string * float) list;
  candidates_tested : int;
}

(* Accumulator over candidates.  The two scratch bitsets (candidate set
   and boundary dedup, both capacity n) are reused across every candidate
   so the probe allocates nothing per set tested. *)
type acc = {
  mutable best : witness;
  families : (string, float) Hashtbl.t;
  mutable tested : int;
  set_scratch : Bitset.t;
  boundary_scratch : Bitset.t;
}

let new_acc snap =
  let n = Snapshot.n snap in
  {
    best = { family = "none"; size = 0; expansion = infinity };
    families = Hashtbl.create 16;
    tested = 0;
    set_scratch = Bitset.create n;
    boundary_scratch = Bitset.create n;
  }

let consider acc snap ~family ~min_size ~max_size indices =
  let size = Array.length indices in
  if size >= min_size && size <= max_size && size > 0 then begin
    let set = acc.set_scratch in
    Bitset.clear set;
    Array.iter (fun i -> Bitset.add set i) indices;
    let e = Snapshot.expansion ~scratch:acc.boundary_scratch snap set in
    acc.tested <- acc.tested + 1;
    let prev = Option.value ~default:infinity (Hashtbl.find_opt acc.families family) in
    if e < prev then Hashtbl.replace acc.families family e;
    if e < acc.best.expansion then acc.best <- { family; size; expansion = e }
  end

let size_ladder ~min_size ~max_size =
  let sizes = ref [] in
  let s = ref (max 1 min_size) in
  while !s <= max_size do
    sizes := !s :: !sizes;
    s := max (!s + 1) (!s * 3 / 2)
  done;
  if not (List.mem max_size !sizes) && max_size >= min_size then
    sizes := max_size :: !sizes;
  List.rev !sizes

let bfs_ball snap seed ~max_size =
  (* Return the list of balls B(seed, r) for growing r, each as indices. *)
  let dist = Snapshot.bfs snap seed in
  let n = Snapshot.n snap in
  let by_dist = Hashtbl.create 64 in
  for v = 0 to n - 1 do
    if dist.(v) >= 0 then
      Hashtbl.replace by_dist dist.(v)
        (v :: Option.value ~default:[] (Hashtbl.find_opt by_dist dist.(v)))
  done;
  let balls = ref [] in
  let current = ref [] in
  let r = ref 0 in
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt by_dist !r with
    | None -> continue := false
    | Some layer ->
        current := layer @ !current;
        let size = List.length !current in
        if size <= max_size then balls := Array.of_list !current :: !balls;
        if size > max_size then continue := false;
        incr r
  done;
  List.rev !balls

let component_unions snap ~max_size =
  let label, k = Snapshot.components snap in
  if k <= 1 then []
  else begin
    let buckets = Array.make k [] in
    Array.iteri (fun v c -> buckets.(c) <- v :: buckets.(c)) label;
    let comps = Array.to_list (Array.map Array.of_list buckets) in
    let sorted = List.sort (fun a b -> Int.compare (Array.length a) (Array.length b)) comps in
    (* Prefix unions of components, smallest first, skipping the largest
       (which would exceed n/2 anyway in a connected-ish graph). *)
    let unions = ref [] in
    let acc = ref [||] in
    List.iteri
      (fun i comp ->
        if i < List.length sorted - 1 then begin
          let next = Array.append !acc comp in
          if Array.length next <= max_size then begin
            acc := next;
            unions := next :: !unions
          end
        end)
      sorted;
    List.rev !unions
  end

let age_prefixes snap ~sizes =
  (* Index order IS age order (oldest = index 0). *)
  let n = Snapshot.n snap in
  List.concat_map
    (fun s ->
      if s <= n then
        [ Array.init s Fun.id; (* oldest s *)
          Array.init s (fun i -> n - 1 - i) (* youngest s *) ]
      else [])
    sizes

let degree_prefixes snap ~sizes =
  let n = Snapshot.n snap in
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Int.compare (Snapshot.degree snap a) (Snapshot.degree snap b)) order;
  List.filter_map (fun s -> if s <= n then Some (Array.sub order 0 s) else None) sizes

let random_sets rng snap ~sizes ~samples =
  let n = Snapshot.n snap in
  List.concat_map
    (fun s ->
      if s > n then []
      else
        List.init samples (fun _ -> Prng.sample_without_replacement rng s n))
    sizes

let probe ~rng ?(min_size = 1) ?max_size ?(samples_per_size = 8) snap =
  let n = Snapshot.n snap in
  let max_size = Option.value ~default:(n / 2) max_size in
  let acc = new_acc snap in
  let consider ~family indices = consider acc snap ~family ~min_size ~max_size indices in
  let sizes = size_ladder ~min_size ~max_size in
  (* Singletons: exactly the per-vertex degrees. *)
  if min_size <= 1 then
    for v = 0 to n - 1 do
      consider ~family:"singleton" [| v |]
    done;
  (* Small components and their unions: expansion exactly 0. *)
  List.iter (consider ~family:"component-union") (component_unions snap ~max_size);
  (* BFS balls from random seeds and from the lowest-degree seeds. *)
  let seeds =
    let random = Array.to_list (Prng.sample_without_replacement rng (min 12 n) n) in
    let by_degree = Array.init n Fun.id in
    Array.sort
      (fun a b -> Int.compare (Snapshot.degree snap a) (Snapshot.degree snap b))
      by_degree;
    let low = Array.to_list (Array.sub by_degree 0 (min 6 n)) in
    List.sort_uniq Int.compare (random @ low)
  in
  List.iter
    (fun seed -> List.iter (consider ~family:"bfs-ball") (bfs_ball snap seed ~max_size))
    seeds;
  (* Age prefixes: the paper's worst cases live among the oldest nodes. *)
  List.iter (consider ~family:"age-prefix") (age_prefixes snap ~sizes);
  (* Lowest-degree-first prefixes. *)
  List.iter (consider ~family:"degree-prefix") (degree_prefixes snap ~sizes);
  (* Uniform random sets. *)
  List.iter (consider ~family:"random")
    (random_sets rng snap ~sizes ~samples:samples_per_size);
  (* Spectral sweep cuts. *)
  List.iter (consider ~family:"sweep-cut") (Spectral.sweep_sets snap);
  {
    min_expansion = acc.best.expansion;
    witness = acc.best;
    per_family =
      Hashtbl.fold (fun fam e l -> (fam, e) :: l) acc.families []
      |> List.sort (fun (_, a) (_, b) -> Float.compare a b);
    candidates_tested = acc.tested;
  }

let expansion_profile ~rng snap ~sizes =
  let n = Snapshot.n snap in
  Array.map
    (fun s ->
      if s < 1 || s > n then (s, nan)
      else begin
        let acc = new_acc snap in
        let consider ~family indices =
          consider acc snap ~family ~min_size:s ~max_size:s indices
        in
        List.iter (consider ~family:"age-prefix") (age_prefixes snap ~sizes:[ s ]);
        List.iter (consider ~family:"degree-prefix") (degree_prefixes snap ~sizes:[ s ]);
        List.iter (consider ~family:"random") (random_sets rng snap ~sizes:[ s ] ~samples:8);
        (s, acc.best.expansion)
      end)
    sizes
