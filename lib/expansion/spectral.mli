(** Spectral certificates for expansion.

    Power iteration estimates the second eigenvalue of the lazy random
    walk on the largest connected component; Cheeger's inequality then
    gives a conductance lower bound, and a sweep cut over the eigenvector
    embedding yields candidate low-expansion sets (the classic way to
    {e find} bad cuts if they exist). *)

type report = {
  lambda2 : float;  (** second eigenvalue of the lazy walk (in [1/2, 1]) *)
  spectral_gap : float;  (** 1 - lambda2 *)
  cheeger_lower : float;  (** conductance >= gap / 2 (edge conductance) *)
  sweep_conductance : float;  (** best conductance found by the sweep cut *)
  sweep_set_size : int;
  component_size : int;  (** vertices in the component analyzed *)
}

val analyze : ?iters:int -> Churnet_graph.Snapshot.t -> report
(** Analyze the largest component.  [iters] defaults to 300 power-iteration
    steps. *)

val sweep_sets : Churnet_graph.Snapshot.t -> int array list
(** Prefix sets (component indices, mapped back to snapshot indices) of
    the eigenvector sweep, for use as vertex-expansion candidates. *)
