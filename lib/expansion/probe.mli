(** Adversarial candidate-family search for low-expansion vertex sets.

    Exact h_out is NP-hard; the theorems (3.6, 3.15, 4.11, 4.16) claim
    expansion >= 0.1 w.h.p. over the relevant size ranges.  The probe
    evaluates |boundary(S)|/|S| on a family of candidate sets engineered
    to contain the low-expansion sets these models can have:

    - singletons (catches isolated nodes exactly),
    - unions of small connected components (expansion exactly 0),
    - BFS balls around random and low-degree seeds,
    - age prefixes (oldest-k / youngest-k — the paper's own worst cases),
    - lowest-degree-first prefixes,
    - uniformly random sets across a geometric size ladder,
    - spectral sweep-cut prefixes.

    The minimum found is an {e upper bound} on h_out restricted to the
    size range; finding nothing below epsilon is the empirical evidence
    the benches report. *)

type witness = { family : string; size : int; expansion : float }

type report = {
  min_expansion : float;
  witness : witness;
  per_family : (string * float) list;  (** min expansion per family *)
  candidates_tested : int;
}

val probe :
  rng:Churnet_util.Prng.t ->
  ?min_size:int ->
  ?max_size:int ->
  ?samples_per_size:int ->
  Churnet_graph.Snapshot.t ->
  report
(** [probe snap] searches sets with [min_size <= |S| <= max_size]
    (defaults 1 and n/2).  [samples_per_size] (default 8) controls the
    random-family effort. *)

val expansion_profile :
  rng:Churnet_util.Prng.t ->
  Churnet_graph.Snapshot.t ->
  sizes:int array ->
  (int * float) array
(** For figure F6: for each requested size, the minimum expansion found
    among that size's candidates (all families restricted to the size). *)
