(** A Bitcoin-Core-flavoured peer-to-peer network (paper Sections 1.1 and
    5): Poisson node churn, a target out-degree, a maximum in-degree, and
    fully decentralized neighbor selection from locally gossiped address
    tables — the mechanism the paper argues PDGR approximates.

    Concretely (mirroring the Bitcoin Core behaviour the paper describes):
    - a joining node bootstraps its address table from a "DNS seed"
      (a uniform sample of alive nodes);
    - whenever a node's out-degree is below the target it tries to open
      connections to addresses from its table, skipping dead peers and
      peers at their in-degree cap;
    - connected peers periodically advertise random entries of their
      tables to each other.

    Defaults follow Bitcoin Core: target out-degree 8, max in-degree 125. *)

type t

val create :
  rng:Churnet_util.Prng.t ->
  ?target_out:int ->
  ?max_in:int ->
  ?table_size:int ->
  ?seed_size:int ->
  ?gossip_size:int ->
  n:int ->
  unit ->
  t
(** [n] is the stationary population (lambda = 1, mu = 1/n). *)

val n : t -> int
val graph : t -> Churnet_graph.Dyngraph.t
val step : t -> unit
(** One churn jump followed by one maintenance pass over deficient nodes. *)

val advance_time : t -> float -> unit
(** Advance continuous churn time by the given amount. *)

val warm_up : t -> unit
val time : t -> float
val snapshot : t -> Churnet_graph.Snapshot.t
val newest : t -> Churnet_graph.Dyngraph.node_id option

val flood : ?max_rounds:int -> t -> Churnet_core.Flood.trace
(** Synchronous flooding with one round per unit of continuous time,
    starting from the next newborn — comparable to the PDGR discretized
    flooding of F10. *)

val mean_out_degree : t -> float
val mean_table_fill : t -> float
