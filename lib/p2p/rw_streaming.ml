module Dyngraph = Churnet_graph.Dyngraph
module Prng = Churnet_util.Prng

type t = {
  n : int;
  d : int;
  walk_length : int;
  rng : Prng.t;
  graph : Dyngraph.t;
  mutable round : int;
  birth_ids : int array;
  mutable newest : int;
}

let create ~rng ?walk_length ~n ~d () =
  if n < 2 then invalid_arg "Rw_streaming.create: n must be >= 2";
  let walk_length =
    match walk_length with
    | Some l -> l
    | None -> 2 * int_of_float (Float.ceil (log (float_of_int n) /. log 2.))
  in
  let graph_rng = Prng.split rng in
  {
    n;
    d;
    walk_length;
    rng;
    graph = Dyngraph.create ~rng:graph_rng ~d ~regenerate:false ();
    round = 0;
    birth_ids = Array.make n (-1);
    newest = -1;
  }

let n t = t.n
let d t = t.d
let graph t = t.graph

(* One token walk: start uniform, take [walk_length] uniform-neighbor
   steps (restarting from a uniform node when stuck on a degree-0 node). *)
let walk t =
  if Dyngraph.alive_count t.graph = 0 then -1
  else begin
    let pos = ref (Dyngraph.random_alive t.graph) in
    for _ = 1 to t.walk_length do
      match Dyngraph.neighbors t.graph !pos with
      | [] -> pos := Dyngraph.random_alive t.graph
      | neigh ->
          let arr = Array.of_list neigh in
          pos := Prng.choose t.rng arr
    done;
    !pos
  end

let step t =
  t.round <- t.round + 1;
  let slot = t.round mod t.n in
  let dying = t.birth_ids.(slot) in
  if dying >= 0 && Dyngraph.is_alive t.graph dying then Dyngraph.kill t.graph dying;
  let targets = Array.init t.d (fun _ -> walk t) in
  let id = Dyngraph.add_node_with_targets t.graph ~birth:t.round ~targets in
  t.birth_ids.(slot) <- id;
  t.newest <- id

let run t k =
  for _ = 1 to k do
    step t
  done

let warm_up t = run t (2 * t.n)

let newest t =
  if t.newest < 0 then invalid_arg "Rw_streaming.newest: no rounds executed";
  t.newest

let snapshot t = Dyngraph.snapshot t.graph

let flood ?max_rounds t =
  Churnet_core.Flood.run_custom ?max_rounds ~graph:t.graph
    ~step:(fun () -> step t)
    ~newest:(fun () -> newest t)
    ~default_max_rounds:(4 * t.n) ()
