module Dyngraph = Churnet_graph.Dyngraph
module Poisson_churn = Churnet_churn.Poisson_churn
module Prng = Churnet_util.Prng

type peer_state = {
  table : int array; (* known addresses; -1 = empty entry *)
  mutable fill : int;
}

type t = {
  n : int;
  target_out : int;
  max_in : int;
  table_size : int;
  seed_size : int;
  gossip_size : int;
  rng : Prng.t;
  graph : Dyngraph.t;
  churn : Poisson_churn.t;
  peers : (int, peer_state) Hashtbl.t;
  deficient : (int, unit) Hashtbl.t; (* nodes below target out-degree *)
  mutable time : float;
  mutable newest : int;
}

let create ~rng ?(target_out = 8) ?(max_in = 125) ?(table_size = 64) ?(seed_size = 16)
    ?(gossip_size = 8) ~n () =
  let graph_rng = Prng.split rng in
  let churn_rng = Prng.split rng in
  {
    n;
    target_out;
    max_in;
    table_size;
    seed_size;
    gossip_size;
    rng;
    graph = Dyngraph.create ~rng:graph_rng ~d:target_out ~regenerate:false ();
    churn = Poisson_churn.create ~rng:churn_rng ~n ();
    peers = Hashtbl.create 1024;
    deficient = Hashtbl.create 256;
    time = 0.;
    newest = -1;
  }

let n t = t.n
let graph t = t.graph
let time t = t.time

let table_insert t peer addr =
  if addr >= 0 then begin
    let exists = Array.exists (fun a -> a = addr) peer.table in
    if not exists then
      if peer.fill < t.table_size then begin
        peer.table.(peer.fill) <- addr;
        peer.fill <- peer.fill + 1
      end
      else begin
        (* Random replacement keeps the table a moving sample. *)
        let i = Prng.int t.rng t.table_size in
        peer.table.(i) <- addr
      end
  end

let table_random t peer =
  if peer.fill = 0 then None else Some peer.table.(Prng.int t.rng peer.fill)

let peer_of t id = Hashtbl.find_opt t.peers id

(* Connected peers advertise a few random table entries to each other. *)
let gossip t a b =
  match (peer_of t a, peer_of t b) with
  | Some pa, Some pb ->
      for _ = 1 to t.gossip_size do
        (match table_random t pa with Some addr -> table_insert t pb addr | None -> ());
        match table_random t pb with Some addr -> table_insert t pa addr | None -> ()
      done;
      table_insert t pa b;
      table_insert t pb a
  | _ -> ()

let try_fill t id =
  match peer_of t id with
  | None -> ()
  | Some peer ->
      let missing () = t.target_out - Dyngraph.out_degree t.graph id in
      let attempts = ref (4 * t.target_out) in
      while missing () > 0 && !attempts > 0 do
        decr attempts;
        match table_random t peer with
        | None -> attempts := 0
        | Some cand ->
            if
              cand <> id
              && Dyngraph.is_alive t.graph cand
              && Dyngraph.in_degree t.graph cand < t.max_in
              && not (List.mem cand (Dyngraph.out_targets t.graph id))
            then begin
              if Dyngraph.connect t.graph ~src:id ~dst:cand then gossip t id cand
            end
            else if not (Dyngraph.is_alive t.graph cand) then begin
              (* Forget a dead address. *)
              let idx = ref (-1) in
              Array.iteri (fun i a -> if a = cand then idx := i) peer.table;
              if !idx >= 0 then begin
                peer.table.(!idx) <- peer.table.(peer.fill - 1);
                peer.table.(peer.fill - 1) <- -1;
                peer.fill <- peer.fill - 1
              end
            end
      done;
      if missing () > 0 then Hashtbl.replace t.deficient id ()
      else Hashtbl.remove t.deficient id

let birth t =
  let id = Dyngraph.add_node_with_targets t.graph ~birth:(Poisson_churn.round t.churn) ~targets:[||] in
  let peer = { table = Array.make t.table_size (-1); fill = 0 } in
  Hashtbl.replace t.peers id peer;
  (* DNS-seed bootstrap: a uniform sample of alive nodes. *)
  let alive = Dyngraph.alive_count t.graph in
  for _ = 1 to min t.seed_size (alive - 1) do
    let cand = Dyngraph.random_alive t.graph in
    if cand <> id then table_insert t peer cand
  done;
  Hashtbl.replace t.deficient id ();
  t.newest <- id

let death t =
  let victim = Dyngraph.random_alive t.graph in
  (* Whoever pointed at the victim becomes deficient. *)
  let orphans = Dyngraph.in_neighbors t.graph victim in
  Dyngraph.kill t.graph victim;
  Hashtbl.remove t.peers victim;
  Hashtbl.remove t.deficient victim;
  List.iter (fun u -> if Dyngraph.is_alive t.graph u then Hashtbl.replace t.deficient u ())
    orphans;
  if victim = t.newest then t.newest <- -1

let maintenance t =
  let pending = Hashtbl.fold (fun id () acc -> id :: acc) t.deficient [] in
  List.iter
    (fun id -> if Dyngraph.is_alive t.graph id then try_fill t id else Hashtbl.remove t.deficient id)
    pending

let step t =
  let alive = Dyngraph.alive_count t.graph in
  let decision, dt = Poisson_churn.decide t.churn ~alive in
  t.time <- t.time +. dt;
  (match decision with
  | Poisson_churn.Birth -> birth t
  | Poisson_churn.Death -> death t);
  maintenance t

let advance_time t span =
  let deadline = t.time +. span in
  (* Conservative: execute jumps until the clock passes the deadline. *)
  while t.time < deadline do
    step t
  done

let warm_up t =
  for _ = 1 to 12 * t.n do
    step t
  done

let snapshot t = Dyngraph.snapshot t.graph

let newest t =
  if t.newest >= 0 && Dyngraph.is_alive t.graph t.newest then Some t.newest
  else begin
    let best = ref (-1) in
    Dyngraph.iter_alive t.graph (fun id -> if id > !best then best := id);
    if !best >= 0 then Some !best else None
  end

let flood ?max_rounds t =
  let default = int_of_float (8. *. log (float_of_int t.n)) + 60 in
  let rec until_birth () =
    let before = Dyngraph.alive_count t.graph in
    step t;
    if Dyngraph.alive_count t.graph <= before then until_birth ()
  in
  let first = ref true in
  Churnet_core.Flood.run_custom ?max_rounds ~graph:t.graph
    ~step:(fun () ->
      (* The first "step" plants the source via a birth; afterwards one
         round is one unit of continuous time. *)
      if !first then begin
        first := false;
        until_birth ()
      end
      else advance_time t 1.0)
    ~newest:(fun () -> match newest t with Some id -> id | None -> -1)
    ~default_max_rounds:default ()

let mean_out_degree t =
  let acc = ref 0 and count = ref 0 in
  Dyngraph.iter_alive t.graph (fun id ->
      acc := !acc + Dyngraph.out_degree t.graph id;
      incr count);
  if !count = 0 then nan else float_of_int !acc /. float_of_int !count

let mean_table_fill t =
  let acc = ref 0 and count = ref 0 in
  Hashtbl.iter
    (fun _ peer ->
      acc := !acc + peer.fill;
      incr count)
    t.peers;
  if !count = 0 then nan else float_of_int !acc /. float_of_int !count
