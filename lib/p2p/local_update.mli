(** A local-update protocol in the streaming churn model, in the spirit of
    Duchon and Duvignau [12]: the network maintains (near-)d-out-regularity
    through {e edge takeover} instead of fresh uniform sampling.

    - Insertion: the newborn [u] picks d uniformly random "donor" nodes;
      each donor redirects one uniformly-chosen out-link to [u], and [u]
      adopts the donor's old target as its own out-link.  Degrees are
      conserved exactly: every insertion moves d link endpoints and
      creates d new ones.
    - Deletion: the dying node's out-targets are handed over to its
      in-neighbors (whose links pointed at it), pairing them up; leftover
      in-neighbors re-sample uniformly.

    Compared to the paper's SDGR (fresh uniform re-sampling) this shows a
    second, equally decentralized way to keep the topology well-connected
    under churn — and its fingerprint differences (F10/F12). *)

type t

val create : rng:Churnet_util.Prng.t -> n:int -> d:int -> unit -> t
val n : t -> int
val d : t -> int
val graph : t -> Churnet_graph.Dyngraph.t
val step : t -> unit
val run : t -> int -> unit
val warm_up : t -> unit
val newest : t -> Churnet_graph.Dyngraph.node_id
val snapshot : t -> Churnet_graph.Snapshot.t
val flood : ?max_rounds:int -> t -> Churnet_core.Flood.trace
