module Dyngraph = Churnet_graph.Dyngraph
module Prng = Churnet_util.Prng

type t = {
  n : int;
  d : int;
  cache_size : int;
  join_probability : float;
  rng : Prng.t;
  graph : Dyngraph.t;
  cache : int array; (* -1 = empty entry *)
  mutable round : int;
  birth_ids : int array;
  mutable newest : int;
}

let create ~rng ?(cache_size = 32) ?(join_probability = 0.5) ~n ~d () =
  if n < 2 then invalid_arg "Cache_protocol.create: n must be >= 2";
  let graph_rng = Prng.split rng in
  {
    n;
    d;
    cache_size;
    join_probability;
    rng;
    graph = Dyngraph.create ~rng:graph_rng ~d ~regenerate:false ();
    cache = Array.make cache_size (-1);
    round = 0;
    birth_ids = Array.make n (-1);
    newest = -1;
  }

let n t = t.n
let d t = t.d
let graph t = t.graph

let refresh_cache t =
  (* Replace dead (or empty) entries with uniform alive nodes. *)
  if Dyngraph.alive_count t.graph > 0 then
    Array.iteri
      (fun i entry ->
        if entry < 0 || not (Dyngraph.is_alive t.graph entry) then
          t.cache.(i) <- Dyngraph.random_alive t.graph)
      t.cache

let step t =
  t.round <- t.round + 1;
  let slot = t.round mod t.n in
  let dying = t.birth_ids.(slot) in
  if dying >= 0 && Dyngraph.is_alive t.graph dying then Dyngraph.kill t.graph dying;
  refresh_cache t;
  let targets =
    Array.init t.d (fun _ ->
        let entry = t.cache.(Prng.int t.rng t.cache_size) in
        entry)
  in
  let id = Dyngraph.add_node_with_targets t.graph ~birth:t.round ~targets in
  if Prng.bernoulli t.rng t.join_probability then
    t.cache.(Prng.int t.rng t.cache_size) <- id;
  t.birth_ids.(slot) <- id;
  t.newest <- id

let run t k =
  for _ = 1 to k do
    step t
  done

let warm_up t = run t (2 * t.n)

let newest t =
  if t.newest < 0 then invalid_arg "Cache_protocol.newest: no rounds executed";
  t.newest

let snapshot t = Dyngraph.snapshot t.graph

let flood ?max_rounds t =
  Churnet_core.Flood.run_custom ?max_rounds ~graph:t.graph
    ~step:(fun () -> step t)
    ~newest:(fun () -> newest t)
    ~default_max_rounds:(4 * t.n) ()
