(** A centralized-cache attachment protocol in the streaming churn model,
    in the spirit of Pandurangan, Raghavan and Upfal [23]: the system
    maintains a small cache of node addresses; a joining node connects to
    [d] nodes sampled from the cache, joins the cache with a fixed
    probability, and dead cache entries are replaced by uniform alive
    nodes.  The cache keeps the attachment targets young, which maintains
    connectivity and low diameter with O(1) shared state — the classic
    algorithmic alternative the paper contrasts with its algorithm-free
    models. *)

type t

val create :
  rng:Churnet_util.Prng.t ->
  ?cache_size:int ->
  ?join_probability:float ->
  n:int ->
  d:int ->
  unit ->
  t
(** Defaults: [cache_size = 32], [join_probability = 0.5]. *)

val n : t -> int
val d : t -> int
val graph : t -> Churnet_graph.Dyngraph.t
val step : t -> unit
val run : t -> int -> unit
val warm_up : t -> unit
val newest : t -> Churnet_graph.Dyngraph.node_id
val snapshot : t -> Churnet_graph.Snapshot.t
val flood : ?max_rounds:int -> t -> Churnet_core.Flood.trace
