module Dyngraph = Churnet_graph.Dyngraph
module Prng = Churnet_util.Prng

type t = {
  n : int;
  d : int;
  rng : Prng.t;
  graph : Dyngraph.t;
  mutable round : int;
  birth_ids : int array;
  mutable newest : int;
}

let create ~rng ~n ~d () =
  if n < 2 then invalid_arg "Local_update.create: n must be >= 2";
  let graph_rng = Prng.split rng in
  {
    n;
    d;
    rng;
    graph = Dyngraph.create ~rng:graph_rng ~d ~regenerate:false ();
    round = 0;
    birth_ids = Array.make n (-1);
    newest = -1;
  }

let n t = t.n
let d t = t.d
let graph t = t.graph

(* Birth by takeover: each donor picks one of its out-links, disconnects
   it, redirects it to the newborn; the newborn adopts the donor's old
   target.  Out-degrees are conserved exactly (the donor keeps d links,
   the newborn ends with up to d).  Deletion hands the dying node's
   out-targets over to its orphaned in-neighbors. *)

let random_alive_other t self =
  let g = t.graph in
  if Dyngraph.alive_count g < 2 then None
  else begin
    let rec go tries =
      if tries = 0 then None
      else begin
        let cand = Dyngraph.random_alive g in
        if cand = self then go (tries - 1) else Some cand
      end
    in
    go 16
  end

let step t =
  t.round <- t.round + 1;
  let g = t.graph in
  (* Death first (streaming schedule), with edge takeover. *)
  let slot = t.round mod t.n in
  let dying = t.birth_ids.(slot) in
  if dying >= 0 && Dyngraph.is_alive g dying then begin
    let inherited = Dyngraph.out_targets g dying in
    let orphans = Dyngraph.in_neighbors g dying in
    Dyngraph.kill g dying;
    (* Pair orphaned in-neighbors with the dead node's former targets. *)
    let rec pair orphans targets =
      match (orphans, targets) with
      | [], _ -> ()
      | w :: ws, t0 :: ts ->
          if Dyngraph.is_alive g w && Dyngraph.is_alive g t0 && w <> t0 then
            ignore (Dyngraph.connect g ~src:w ~dst:t0);
          pair ws ts
      | w :: ws, [] ->
          (match random_alive_other t w with
          | Some cand when Dyngraph.is_alive g w ->
              ignore (Dyngraph.connect g ~src:w ~dst:cand)
          | _ -> ());
          pair ws []
    in
    pair orphans inherited
  end;
  (* Birth by takeover. *)
  let newborn_id = Dyngraph.peek_next_id g in
  let alive = Dyngraph.alive_count g in
  let adopt = ref [] in
  let donors = ref [] in
  if alive > 0 then
    for _ = 1 to t.d do
      let donor = Dyngraph.random_alive g in
      match Dyngraph.out_targets g donor with
      | [] -> adopt := donor :: !adopt (* donor has nothing to give: link to it *)
      | targets ->
          let target = Prng.choose t.rng (Array.of_list targets) in
          if Dyngraph.disconnect g ~src:donor ~dst:target then begin
            adopt := target :: !adopt;
            donors := donor :: !donors
          end
    done;
  let id =
    Dyngraph.add_node_with_targets g ~birth:t.round
      ~targets:(Array.of_list (List.filter (fun x -> x <> newborn_id) !adopt))
  in
  assert (id = newborn_id);
  List.iter
    (fun donor ->
      if Dyngraph.is_alive g donor && donor <> id then
        ignore (Dyngraph.connect g ~src:donor ~dst:id))
    !donors;
  t.birth_ids.(slot) <- id;
  t.newest <- id

let run t k =
  for _ = 1 to k do
    step t
  done

let warm_up t = run t (2 * t.n)

let newest t =
  if t.newest < 0 then invalid_arg "Local_update.newest: no rounds executed";
  t.newest

let snapshot t = Dyngraph.snapshot t.graph

let flood ?max_rounds t =
  Churnet_core.Flood.run_custom ?max_rounds ~graph:t.graph
    ~step:(fun () -> step t)
    ~newest:(fun () -> newest t)
    ~default_max_rounds:(4 * t.n) ()
