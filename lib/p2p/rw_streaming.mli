(** A random-walk-token attachment protocol in the streaming churn model,
    in the spirit of Cooper, Dyer and Greenhill [8]: instead of uniform
    sampling, a joining node connects to the endpoints of [d] independent
    random walks (approximating well-mixed ID tokens).  The resulting
    attachment is degree-biased, which is exactly what keeps the topology
    connected without edge regeneration — the algorithmic contrast the
    paper's related-work section draws. *)

type t

val create :
  rng:Churnet_util.Prng.t ->
  ?walk_length:int ->
  n:int ->
  d:int ->
  unit ->
  t
(** [walk_length] defaults to [2 * ceil(log2 n)] steps — enough mixing on
    a low-diameter graph. *)

val n : t -> int
val d : t -> int
val graph : t -> Churnet_graph.Dyngraph.t
val step : t -> unit
val run : t -> int -> unit
val warm_up : t -> unit
val newest : t -> Churnet_graph.Dyngraph.node_id
val snapshot : t -> Churnet_graph.Snapshot.t
val flood : ?max_rounds:int -> t -> Churnet_core.Flood.trace
