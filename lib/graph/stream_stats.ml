module Bitset = Churnet_util.Bitset

type t = {
  population : int;
  isolated : int;
  max_degree : int;
  mean_degree : float;
  degree_histogram : int array;
  degree_gini : float;
}

(* Gini over a degree histogram, reproducing [Metrics.degree_gini]
   bitwise: that function sorts the per-node degrees ascending and folds
   them left-to-right, and expanding the histogram in ascending degree
   order replays the exact same sequence of float additions and
   multiplications. *)
let gini_of_histogram ~population hist =
  if population = 0 then nan
  else begin
    let total = ref 0. in
    Array.iteri
      (fun deg c ->
        let d = float_of_int deg in
        for _ = 1 to c do
          total := !total +. d
        done)
      hist;
    if !total <= 0. then 0.
    else begin
      let weighted = ref 0. in
      let rank = ref 0 in
      Array.iteri
        (fun deg c ->
          let d = float_of_int deg in
          for _ = 1 to c do
            weighted := !weighted +. (float_of_int (!rank + 1) *. d);
            incr rank
          done)
        hist;
      let fn = float_of_int population in
      ((2. *. !weighted) /. (fn *. !total)) -. ((fn +. 1.) /. fn)
    end
  end

let collect g =
  let population = Dyngraph.alive_count g in
  let counts = ref (Array.make 8 0) in
  let max_degree = ref 0 in
  let degree_sum = ref 0 in
  let isolated = ref 0 in
  Dyngraph.iter_alive g (fun id ->
      let deg = Dyngraph.degree g id in
      if deg >= Array.length !counts then begin
        let len = ref (Array.length !counts) in
        while deg >= !len do
          len := 2 * !len
        done;
        let bigger = Array.make !len 0 in
        Array.blit !counts 0 bigger 0 (Array.length !counts);
        counts := bigger
      end;
      !counts.(deg) <- !counts.(deg) + 1;
      if deg > !max_degree then max_degree := deg;
      degree_sum := !degree_sum + deg;
      if deg = 0 then incr isolated);
  {
    population;
    isolated = !isolated;
    max_degree = !max_degree;
    (* [Snapshot.mean_degree] divides the CSR adjacency length — the sum
       of distinct degrees — by n; same two integers here. *)
    mean_degree =
      (if population = 0 then nan
       else float_of_int !degree_sum /. float_of_int population);
    degree_histogram = Array.sub !counts 0 (!max_degree + 1);
    degree_gini = gini_of_histogram ~population !counts;
  }

(* [Bitset.mem] raises outside [0, capacity); neighbor ids keep growing
   under churn, so membership of an id beyond a set's capacity just means
   "not a member". *)
let bs_mem b i = i < Bitset.capacity b && Bitset.mem b i

let boundary_size ?scratch g set =
  let seen =
    match scratch with
    | Some b ->
        Bitset.clear b;
        b
    | None -> Bitset.create 1024
  in
  let count = ref 0 in
  (* Hoisted for the same reason as in [Snapshot.boundary_size]: a
     closure per frontier node would dominate the probe's allocation. *)
  let visit v =
    if (not (bs_mem set v)) && not (bs_mem seen v) then begin
      Bitset.ensure_capacity seen (v + 1);
      Bitset.add seen v;
      incr count
    end
  in
  Bitset.iter
    (fun u -> if Dyngraph.is_alive g u then Dyngraph.iter_neighbors g u visit)
    set;
  !count

let expansion ?scratch g set =
  let s = Bitset.cardinal set in
  if s = 0 then nan
  else float_of_int (boundary_size ?scratch g set) /. float_of_int s
