(** The mutable dynamic multigraph underlying all four models of the paper.

    Every node owns [d] {e out-slots}: connection requests whose
    destinations were chosen uniformly at random among the alive nodes at
    request time (Definitions 3.4, 3.13, 4.9, 4.14).  The graph is
    undirected — a node's neighborhood is the union of its out-slot targets
    and its in-neighbors — but, as in the paper's analysis, the out/in
    distinction is kept because only out-slots are (re)generated.

    Deaths remove all incident edges.  With [regenerate = true] (the SDGR /
    PDGR topology dynamics), each alive in-neighbor of a dying node
    immediately re-samples the lost slot uniformly over the current alive
    set, keeping every node's out-degree pinned at [d]. *)

type t

type node_id = int
(** Node identifiers are globally unique, monotonically increasing with
    birth order (so [u < v] iff [u] is older than [v]). *)

val create : rng:Churnet_util.Prng.t -> d:int -> regenerate:bool -> unit -> t
(** [create ~rng ~d ~regenerate ()] makes an empty graph.  [rng] is the
    graph's private generator — every topology draw (slot targets,
    regeneration, victim sampling) consumes it and nothing else, so two
    graphs given independently split generators evolve independently. *)

val d : t -> int
val regenerate : t -> bool

val set_edge_hook : t -> (src:node_id -> dst:node_id -> unit) option -> unit
(** Install a callback fired once per out-slot edge creation (both at node
    birth and at regeneration).  Used by the flooding processes to notice
    fresh edges towards informed nodes. *)

val edge_hook : t -> (src:node_id -> dst:node_id -> unit) option
(** The currently installed edge hook.  Lets a temporary observer (e.g.
    the synchronous flooding frontier) chain to — and later restore — a
    hook installed by someone else instead of silently clobbering it. *)

val set_birth_hook : t -> (node_id -> birth:int -> unit) option -> unit
(** Install a callback fired right after a node is created (before its
    edge hooks fire).  Used by {!Event_log} to capture full runs. *)

val set_death_hook : t -> (node_id -> unit) option -> unit
(** Install a callback fired at the start of every {!kill}, before any
    edge is removed.  Lets observers (e.g. the flooding simulators)
    maintain exact informed/alive counters in O(1). *)

val add_node : t -> birth:int -> node_id
(** Birth: allocate a node stamped [birth] and create its [d] connection
    requests among the currently alive nodes (excluding itself; with
    replacement, so parallel edges are possible).  If no other node is
    alive the slots stay empty. *)

val add_node_with_targets : t -> birth:int -> targets:node_id array -> node_id
(** Birth with caller-chosen destinations (used by the protocol baselines
    in [churnet_p2p], whose connection rules are not uniform sampling).
    At most [d] targets are used; dead or self targets are skipped.  The
    regeneration machinery applies to these slots exactly as to sampled
    ones. *)

val peek_next_id : t -> node_id
(** The id the next [add_node*] call will allocate (lets callers compute
    targets that must exclude the newborn). *)

val connect : t -> src:node_id -> dst:node_id -> bool
(** Point the first empty out-slot of [src] at [dst] (both must be alive,
    [src <> dst]).  Returns [false] — and changes nothing — if [src] has
    no empty slot or the endpoints are invalid.  Fires the edge hook.
    Used by protocol baselines that refill lost connections by their own
    rules instead of uniform regeneration. *)

val disconnect : t -> src:node_id -> dst:node_id -> bool
(** Clear one out-slot of [src] that points at [dst] (and the matching
    in-edge record).  Returns [false] if no such slot exists.  Does not
    trigger regeneration.  Used by takeover-style protocols
    ([churnet_p2p.Local_update]); note that {!Event_log} replay assumes
    edges die only with an endpoint, so do not log runs that disconnect. *)

val in_degree : t -> node_id -> int
(** Number of distinct alive in-neighbors. *)

val kill : t -> node_id -> unit
(** Death: remove the node and all incident edges; trigger regeneration on
    surviving in-neighbors if enabled.  In-neighbors regenerate
    oldest-first (ascending id), slots in increasing index order — a fixed
    part of the interface, so the PRNG draw sequence of a run never
    depends on the graph's internal layout.  (Each in-neighbor's slot scan
    stops once its known multiplicity of edges to the dead node has been
    handled, which changes nothing observable — the draws still happen in
    ascending slot order.)  Raises [Invalid_argument] if the node is not
    alive. *)

val churn_batch : t -> decisions:Bytes.t -> count:int -> birth0:int -> unit
(** [churn_batch t ~decisions ~count ~birth0] applies the first [count]
    pre-drawn churn decisions in one arena pass: byte [i] of [decisions]
    births a node stamped [birth0 + i] when ['\000'], and otherwise kills
    a uniformly random alive node ({!kill} semantics, regeneration
    included).  The graph PRNG draws happen in batch order, byte-identical
    to the equivalent {!add_node} / {!kill} sequence — batching only
    amortizes per-jump bookkeeping (redundant slot re-clearing, boxed
    sampling).  Typically driven by [Poisson_churn.decide_batch], whose
    decision bytes use the same encoding. *)

val alive_count : t -> int
val is_alive : t -> node_id -> bool
val random_alive : t -> node_id
(** Uniform alive node; raises if the graph is empty. *)

val iter_alive : t -> (node_id -> unit) -> unit
val alive_ids : t -> node_id array
(** Fresh array of alive ids in unspecified order. *)

val birth_of : t -> node_id -> int
(** Birth stamp of an alive node. *)

val out_targets : t -> node_id -> node_id list
(** Current non-empty out-slot targets (with multiplicity). *)

val out_slots_raw : t -> node_id -> node_id array
(** Copy of the raw slot array (length [d], -1 = empty slot).  Slot
    indices are stable, which lets the discretized flooding process of
    Definition 4.3 verify that a specific edge survived a whole unit
    time interval. *)

val out_slot : t -> node_id -> int -> node_id
(** [out_slot t id i] is the current target of slot [i] of [id] (-1 =
    empty), without copying the slot array.  Raises [Invalid_argument] on
    a slot index outside [0, d). *)

val in_neighbors : t -> node_id -> node_id list
(** Distinct alive in-neighbors, sorted ascending. *)

val neighbors : t -> node_id -> node_id list
(** Distinct neighbors = out targets U in-neighbors, sorted ascending. *)

val iter_neighbors : t -> node_id -> (node_id -> unit) -> unit
(** [iter_neighbors t id f] calls [f] exactly once per distinct neighbor
    of [id] (same set as {!neighbors}, unspecified order) without
    allocating.  [f] must not mutate the graph. *)

val iter_in_neighbors : t -> node_id -> (node_id -> unit) -> unit
(** Allocation-free {!in_neighbors} (distinct, unspecified order).  [f]
    must not mutate the graph. *)

val degree : t -> node_id -> int
(** Number of distinct neighbors. *)

val out_degree : t -> node_id -> int
(** Number of filled out-slots (<= d). *)

val edge_count : t -> int
(** Number of out-slot edges currently alive (with multiplicity). *)

val oldest_alive : t -> node_id option
(** Minimum id among alive nodes, i.e. the oldest node.  O(1): the arena
    threads a birth-ordered list through the alive slots. *)

val newest_alive : t -> node_id option
(** Maximum id among alive nodes, i.e. the youngest node.  O(1); the
    churn models use it to report the newest vertex without scanning
    the alive set. *)

val snapshot : t -> Snapshot.t
(** Freeze the current topology for analysis. *)

val check_invariants : t -> (unit, string) result
(** Internal-consistency audit used by the test-suite: slot/in-edge
    symmetry, alive-index integrity, degree bounds. *)

val encode : Churnet_util.Codec.writer -> t -> unit
(** Serialize the full arena for checkpoints: topology, PRNG state,
    free-list order (decides slot recycling), dense-alive order (decides
    {!random_alive} indexing) and the id window.  The three hooks and
    internal scratch space are deliberately not state — observers
    re-attach after {!decode}. *)

val decode : Churnet_util.Codec.reader -> t
(** Rebuild a graph that continues bit-identically to the encoded one.
    Runs {!check_invariants} and raises [Churnet_util.Codec.Error] on
    structurally inconsistent input. *)
