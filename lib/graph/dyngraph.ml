module Prng = Churnet_util.Prng
module Intvec = Churnet_util.Intvec

type node_id = int

(* Slot-arena representation.  Node ids are external, monotone, never
   reused; slots are internal, dense, recycled through a free list.  All
   per-node state lives in parallel arrays indexed by slot, so the churn
   hot path (kill + regeneration + birth) walks flat int arrays instead
   of chasing hashtable buckets, and steady-state operation allocates
   nothing.

     id_of_slot.(s)    id living in slot s, -1 when s is free
     birth_of_slot.(s) its birth stamp
     out.(s*d + i)     target id of out-slot i, -1 = empty
     in_edges.(s)      in-neighbor ids, duplicates = edge multiplicity
     alive_pos.(s)     position of the id in the dense [alive] array
     prev/next_slot    doubly-linked list of alive slots in birth order
                       (oldest_slot .. youngest_slot), giving O(1)
                       oldest_alive / newest_alive

   The id -> slot map is a plain array over the window
   [base, base + length slot_of_id): ids below [base] are dead forever
   (ids are monotone), so the window slides forward and is compacted or
   doubled only when a new id falls off its end — amortized O(1) per
   birth.  See DESIGN.md, "Graph arena & CSR snapshots". *)
type t = {
  d : int;
  regenerate : bool;
  rng : Prng.t;
  mutable cap : int; (* slots allocated in the arena *)
  mutable used : int; (* high-water mark: slots ever handed out *)
  free : Intvec.t; (* recycled slots, reused LIFO *)
  mutable id_of_slot : int array;
  mutable birth_of_slot : int array;
  mutable out : int array; (* flat [cap * d] out-slot matrix *)
  mutable in_edges : Intvec.t array;
  mutable alive_pos : int array;
  mutable prev_slot : int array;
  mutable next_slot : int array;
  mutable oldest_slot : int;
  mutable youngest_slot : int;
  mutable base : int; (* smallest id the slot map can still resolve *)
  mutable slot_of_id : int array; (* (id - base) -> slot, -1 = dead *)
  mutable alive : int array; (* dense array of alive ids, for O(1) sampling *)
  mutable alive_len : int;
  mutable next_id : int;
  mutable kill_srcs : int array; (* scratch for kill's canonical regen order *)
  mutable kill_cnts : int array; (* per-src slot multiplicity, parallel to kill_srcs *)
  mutable edge_hook : (src:node_id -> dst:node_id -> unit) option;
  mutable death_hook : (node_id -> unit) option;
  mutable birth_hook : (node_id -> birth:int -> unit) option;
}

let initial_cap = 256

let create ~rng ~d ~regenerate () =
  if d <= 0 then invalid_arg "Dyngraph.create: d must be positive";
  {
    d;
    regenerate;
    rng;
    cap = initial_cap;
    used = 0;
    free = Intvec.create ~capacity:64 ();
    id_of_slot = Array.make initial_cap (-1);
    birth_of_slot = Array.make initial_cap 0;
    out = Array.make (initial_cap * d) (-1);
    in_edges = Array.init initial_cap (fun _ -> Intvec.create ~capacity:4 ());
    alive_pos = Array.make initial_cap (-1);
    prev_slot = Array.make initial_cap (-1);
    next_slot = Array.make initial_cap (-1);
    oldest_slot = -1;
    youngest_slot = -1;
    base = 0;
    slot_of_id = Array.make 1024 (-1);
    alive = Array.make 1024 (-1);
    alive_len = 0;
    next_id = 0;
    kill_srcs = Array.make 16 0;
    kill_cnts = Array.make 16 0;
    edge_hook = None;
    death_hook = None;
    birth_hook = None;
  }

let d t = t.d
let regenerate t = t.regenerate
let set_edge_hook t hook = t.edge_hook <- hook
let edge_hook t = t.edge_hook
let set_death_hook t hook = t.death_hook <- hook
let set_birth_hook t hook = t.birth_hook <- hook
let alive_count t = t.alive_len

let[@inline] slot_of t id =
  if id < t.base || id >= t.next_id then -1 else t.slot_of_id.(id - t.base)

let is_alive t id = slot_of t id >= 0

let get_slot t id =
  let s = slot_of t id in
  if s < 0 then invalid_arg (Printf.sprintf "Dyngraph: node %d is not alive" id);
  s

let grow_arena t =
  let old_cap = t.cap in
  let cap = 2 * old_cap in
  let grow a fill =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 old_cap;
    b
  in
  t.id_of_slot <- grow t.id_of_slot (-1);
  t.birth_of_slot <- grow t.birth_of_slot 0;
  t.alive_pos <- grow t.alive_pos (-1);
  t.prev_slot <- grow t.prev_slot (-1);
  t.next_slot <- grow t.next_slot (-1);
  let out = Array.make (cap * t.d) (-1) in
  Array.blit t.out 0 out 0 (old_cap * t.d);
  t.out <- out;
  let inn = Array.make cap t.in_edges.(0) in
  Array.blit t.in_edges 0 inn 0 old_cap;
  for s = old_cap to cap - 1 do
    inn.(s) <- Intvec.create ~capacity:4 ()
  done;
  t.in_edges <- inn;
  t.cap <- cap

let alloc_slot t =
  if Intvec.length t.free > 0 then Intvec.pop t.free
  else begin
    if t.used = t.cap then grow_arena t;
    let s = t.used in
    t.used <- t.used + 1;
    s
  end

(* Slide / grow the id -> slot window so [id] (= the id being born) has a
   cell.  Every id below the oldest alive id is dead forever, so the
   window can drop that prefix.  Both branches leave at least half the
   window free ahead of [id], which amortizes the O(window) move to O(1)
   per birth. *)
let ensure_id_window t id =
  let len = Array.length t.slot_of_id in
  if id - t.base >= len then begin
    let new_base = if t.alive_len = 0 then id else t.id_of_slot.(t.oldest_slot) in
    let keep = id - new_base in
    if 2 * (keep + 1) <= len then begin
      Array.blit t.slot_of_id (new_base - t.base) t.slot_of_id 0 keep;
      Array.fill t.slot_of_id keep (len - keep) (-1);
      t.base <- new_base
    end
    else begin
      let nlen = ref len in
      while 2 * (keep + 1) > !nlen do
        nlen := 2 * !nlen
      done;
      let arr = Array.make !nlen (-1) in
      Array.blit t.slot_of_id (new_base - t.base) arr 0 keep;
      t.slot_of_id <- arr;
      t.base <- new_base
    end
  end

let alive_push t id s =
  if t.alive_len = Array.length t.alive then begin
    let bigger = Array.make (2 * t.alive_len) (-1) in
    Array.blit t.alive 0 bigger 0 t.alive_len;
    t.alive <- bigger
  end;
  t.alive.(t.alive_len) <- id;
  t.alive_pos.(s) <- t.alive_len;
  t.alive_len <- t.alive_len + 1

(* Swap-remove from the dense alive array.  When the victim is the last
   element, [moved = id] and the writes below are self-assignments — the
   uniform special case needs no branch. *)
let alive_remove t s =
  let pos = t.alive_pos.(s) in
  if pos < 0 then invalid_arg "Dyngraph: removing a node that is not alive";
  let last = t.alive_len - 1 in
  let moved = t.alive.(last) in
  t.alive.(pos) <- moved;
  t.alive_pos.(slot_of t moved) <- pos;
  t.alive_len <- last;
  t.alive_pos.(s) <- -1

let random_alive t =
  if t.alive_len = 0 then invalid_arg "Dyngraph.random_alive: empty graph";
  t.alive.(Prng.int t.rng t.alive_len)

(* Uniform alive node distinct from [self]; -1 when no such node exists.
   Returned unboxed (rather than as an option) because this runs once per
   out-slot on every birth and regeneration — the churn hot path must not
   allocate.  The rejection loop's draw sequence is part of the
   interface. *)
let random_alive_excluding t self =
  if t.alive_len = 0 then -1
  else if t.alive_len = 1 && t.alive.(0) = self then -1
  else begin
    let rec go () =
      let cand = t.alive.(Prng.int t.rng t.alive_len) in
      if cand = self then go () else cand
    in
    go ()
  end

let fire_hook t ~src ~dst =
  match t.edge_hook with None -> () | Some f -> f ~src ~dst

(* Link a fresh slot at the young end of the birth-order list. *)
let birth_link t s =
  t.prev_slot.(s) <- t.youngest_slot;
  t.next_slot.(s) <- -1;
  if t.youngest_slot >= 0 then t.next_slot.(t.youngest_slot) <- s
  else t.oldest_slot <- s;
  t.youngest_slot <- s

let birth_unlink t s =
  let p = t.prev_slot.(s) and nx = t.next_slot.(s) in
  if p >= 0 then t.next_slot.(p) <- nx else t.oldest_slot <- nx;
  if nx >= 0 then t.prev_slot.(nx) <- p else t.youngest_slot <- p;
  t.prev_slot.(s) <- -1;
  t.next_slot.(s) <- -1

(* Returns the slot only (the fresh id is [id_of_slot.(s)]): a tuple
   return here would allocate on every churn jump. *)
let begin_birth t ~birth =
  let id = t.next_id in
  t.next_id <- id + 1;
  let s = alloc_slot t in
  ensure_id_window t id;
  t.slot_of_id.(id - t.base) <- s;
  t.id_of_slot.(s) <- id;
  t.birth_of_slot.(s) <- birth;
  Array.fill t.out (s * t.d) t.d (-1);
  Intvec.clear t.in_edges.(s);
  s

let finish_birth t id s ~birth =
  birth_link t s;
  alive_push t id s;
  (match t.birth_hook with None -> () | Some f -> f id ~birth);
  let row = s * t.d in
  for i = 0 to t.d - 1 do
    let dst = t.out.(row + i) in
    if dst >= 0 then fire_hook t ~src:id ~dst
  done;
  id

let add_node t ~birth =
  let s = begin_birth t ~birth in
  let id = t.id_of_slot.(s) in
  (* Sample destinations among nodes alive *before* this birth. *)
  let row = s * t.d in
  for slot = 0 to t.d - 1 do
    let target_id = random_alive_excluding t id in
    if target_id >= 0 then begin
      t.out.(row + slot) <- target_id;
      Intvec.push t.in_edges.(slot_of t target_id) id
    end
  done;
  finish_birth t id s ~birth

let add_node_with_targets t ~birth ~targets =
  let s = begin_birth t ~birth in
  let id = t.id_of_slot.(s) in
  let row = s * t.d in
  let slot = ref 0 in
  Array.iter
    (fun target_id ->
      if !slot < t.d && target_id <> id && is_alive t target_id then begin
        t.out.(row + !slot) <- target_id;
        Intvec.push t.in_edges.(slot_of t target_id) id;
        incr slot
      end)
    targets;
  finish_birth t id s ~birth

let peek_next_id t = t.next_id

let connect t ~src ~dst =
  if src = dst then false
  else
    let ss = slot_of t src and ds = slot_of t dst in
    if ss < 0 || ds < 0 then false
    else begin
      let row = ss * t.d in
      let slot = ref (-1) in
      for i = t.d - 1 downto 0 do
        if t.out.(row + i) < 0 then slot := i
      done;
      if !slot < 0 then false
      else begin
        t.out.(row + !slot) <- dst;
        Intvec.push t.in_edges.(ds) src;
        fire_hook t ~src ~dst;
        true
      end
    end

let disconnect t ~src ~dst =
  let ss = slot_of t src and ds = slot_of t dst in
  if ss < 0 || ds < 0 then false
  else begin
    let row = ss * t.d in
    let slot = ref (-1) in
    for i = t.d - 1 downto 0 do
      if t.out.(row + i) = dst then slot := i
    done;
    if !slot < 0 then false
    else begin
      t.out.(row + !slot) <- -1;
      ignore (Intvec.swap_remove_first t.in_edges.(ds) src);
      true
    end
  end

(* Number of distinct values in [v]; O(k^2) backward scan with k of the
   order of d, where it beats any allocated dedup structure. *)
let distinct_count v =
  let k = Intvec.length v in
  let c = ref 0 in
  for i = 0 to k - 1 do
    let x = Intvec.get v i in
    let dup = ref false in
    for j = 0 to i - 1 do
      if Intvec.get v j = x then dup := true
    done;
    if not !dup then incr c
  done;
  !c

let in_degree t id = distinct_count t.in_edges.(get_slot t id)

let sort_range a lo n =
  for i = lo + 1 to lo + n - 1 do
    let v = a.(i) in
    let j = ref (i - 1) in
    while !j >= lo && a.(!j) > v do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- v
  done

let kill t id =
  let s = get_slot t id in
  (match t.death_hook with None -> () | Some f -> f id);
  (* Remove from the alive set first so regeneration cannot choose [id]. *)
  alive_remove t s;
  t.slot_of_id.(id - t.base) <- -1;
  birth_unlink t s;
  (* Drop this node's out-edges from its targets' in-edge lists. *)
  let row = s * t.d in
  for i = 0 to t.d - 1 do
    let target = t.out.(row + i) in
    if target >= 0 then begin
      let ts = slot_of t target in
      if ts >= 0 then ignore (Intvec.swap_remove_first t.in_edges.(ts) id)
    end
  done;
  (* Each surviving in-neighbor loses the slots that pointed here and, with
     regeneration, immediately re-samples them over the current alive set.
     In-neighbors are processed oldest-first (ascending id) so the mapping
     of PRNG draws to regenerated slots is a fixed, documented order — not
     an artifact of the in-edge container's internal layout.  The in-edge
     list is copied to scratch, sorted, and deduped (duplicates encode
     multiplicity) without allocating. *)
  let inv = t.in_edges.(s) in
  let k = Intvec.length inv in
  if k > 0 then begin
    if Array.length t.kill_srcs < k then begin
      let n = ref (Array.length t.kill_srcs) in
      while !n < k do
        n := 2 * !n
      done;
      t.kill_srcs <- Array.make !n 0;
      t.kill_cnts <- Array.make !n 0
    end;
    let srcs = t.kill_srcs and cnts = t.kill_cnts in
    for i = 0 to k - 1 do
      srcs.(i) <- Intvec.get inv i
    done;
    sort_range srcs 0 k;
    (* Duplicates are adjacent after the sort; fold each run into a count
       so the slot scan below can stop after that many matches instead of
       always walking all [d] slots (most in-neighbors point here once). *)
    let m = ref 0 in
    for i = 0 to k - 1 do
      if i = 0 || srcs.(i) <> srcs.(i - 1) then begin
        srcs.(!m) <- srcs.(i);
        cnts.(!m) <- 1;
        incr m
      end
      else cnts.(!m - 1) <- cnts.(!m - 1) + 1
    done;
    for i = 0 to !m - 1 do
      let src = srcs.(i) in
      let ss = slot_of t src in
      if ss >= 0 then begin
        let srow = ss * t.d in
        let remaining = ref cnts.(i) in
        let slot = ref 0 in
        while !remaining > 0 && !slot < t.d do
          if t.out.(srow + !slot) = id then begin
            decr remaining;
            t.out.(srow + !slot) <- -1;
            if t.regenerate then begin
              let fresh = random_alive_excluding t src in
              if fresh >= 0 then begin
                t.out.(srow + !slot) <- fresh;
                Intvec.push t.in_edges.(slot_of t fresh) src;
                fire_hook t ~src ~dst:fresh
              end
            end
          end;
          incr slot
        done
      end
    done
  end;
  (* Recycle the slot: clear everything so the next occupant starts
     pristine, then push it on the free list. *)
  t.id_of_slot.(s) <- -1;
  Array.fill t.out row t.d (-1);
  Intvec.clear t.in_edges.(s);
  Intvec.push t.free s

(* Apply a pre-drawn run of churn decisions in one arena pass.  The graph
   operations — and hence the draws they take from the graph PRNG — happen
   in batch order, exactly as the equivalent add_node/kill loop would make
   them, so the resulting arena (including its serialized bytes) is
   identical.  What the batch path saves is per-jump overhead: [add_node]'s
   call through [begin_birth] re-clears an out-row and in-edge list that
   are already pristine ([kill] scrubs slots before recycling them, fresh
   slots start cleared, and [check_invariants] enforces free-slot
   cleanliness), which at scale is the dominant constant cost of a birth. *)
let churn_batch t ~decisions ~count ~birth0 =
  if count < 0 || count > Bytes.length decisions then
    invalid_arg "Dyngraph.churn_batch: count out of range";
  for i = 0 to count - 1 do
    if Bytes.get decisions i = '\000' then begin
      let birth = birth0 + i in
      let id = t.next_id in
      t.next_id <- id + 1;
      let s = alloc_slot t in
      ensure_id_window t id;
      t.slot_of_id.(id - t.base) <- s;
      t.id_of_slot.(s) <- id;
      t.birth_of_slot.(s) <- birth;
      let row = s * t.d in
      for slot = 0 to t.d - 1 do
        let target_id = random_alive_excluding t id in
        if target_id >= 0 then begin
          t.out.(row + slot) <- target_id;
          Intvec.push t.in_edges.(slot_of t target_id) id
        end
      done;
      ignore (finish_birth t id s ~birth)
    end
    else kill t (random_alive t)
  done

let iter_alive t f =
  for i = 0 to t.alive_len - 1 do
    f t.alive.(i)
  done

let alive_ids t = Array.sub t.alive 0 t.alive_len
let birth_of t id = t.birth_of_slot.(get_slot t id)

let out_targets t id =
  let s = get_slot t id in
  let row = s * t.d in
  let acc = ref [] in
  for i = t.d - 1 downto 0 do
    let target = t.out.(row + i) in
    if target >= 0 then acc := target :: !acc
  done;
  !acc

let out_slots_raw t id =
  let s = get_slot t id in
  Array.sub t.out (s * t.d) t.d

let out_slot t id slot =
  let s = get_slot t id in
  if slot < 0 || slot >= t.d then invalid_arg "Dyngraph.out_slot: slot out of range";
  t.out.((s * t.d) + slot)

let in_neighbors t id =
  let s = get_slot t id in
  let acc = ref [] in
  Intvec.iter (fun src -> acc := src :: !acc) t.in_edges.(s);
  List.sort_uniq Int.compare !acc

let neighbors t id =
  let s = get_slot t id in
  let acc = ref [] in
  let row = s * t.d in
  for i = 0 to t.d - 1 do
    let target = t.out.(row + i) in
    if target >= 0 then acc := target :: !acc
  done;
  Intvec.iter (fun src -> acc := src :: !acc) t.in_edges.(s);
  List.sort_uniq Int.compare !acc

(* Allocation-free neighborhood iteration for the simulation hot loops.
   Distinctness without a scratch set: an out-slot target is skipped when
   it is also an in-neighbor (the in-edge pass will visit it) or when an
   earlier slot already holds it; an in-edge entry is visited only at its
   first occurrence.  Both scans are O(k^2) with k of the order of d. *)
let iter_neighbors t id f =
  let s = get_slot t id in
  let row = s * t.d in
  let inv = t.in_edges.(s) in
  for i = 0 to t.d - 1 do
    let v = t.out.(row + i) in
    if v >= 0 && not (Intvec.mem inv v) then begin
      let dup = ref false in
      for j = 0 to i - 1 do
        if t.out.(row + j) = v then dup := true
      done;
      if not !dup then f v
    end
  done;
  let k = Intvec.length inv in
  for i = 0 to k - 1 do
    let src = Intvec.get inv i in
    let dup = ref false in
    for j = 0 to i - 1 do
      if Intvec.get inv j = src then dup := true
    done;
    if not !dup then f src
  done

let iter_in_neighbors t id f =
  let s = get_slot t id in
  let inv = t.in_edges.(s) in
  let k = Intvec.length inv in
  for i = 0 to k - 1 do
    let src = Intvec.get inv i in
    let dup = ref false in
    for j = 0 to i - 1 do
      if Intvec.get inv j = src then dup := true
    done;
    if not !dup then f src
  done

let degree t id =
  let count = ref 0 in
  iter_neighbors t id (fun _ -> incr count);
  !count

let out_degree t id =
  let s = get_slot t id in
  let row = s * t.d in
  let count = ref 0 in
  for i = 0 to t.d - 1 do
    if t.out.(row + i) >= 0 then incr count
  done;
  !count

let edge_count t =
  let total = ref 0 in
  iter_alive t (fun id -> total := !total + out_degree t id);
  !total

let oldest_alive t = if t.oldest_slot < 0 then None else Some t.id_of_slot.(t.oldest_slot)

let newest_alive t =
  if t.youngest_slot < 0 then None else Some t.id_of_slot.(t.youngest_slot)

(* Snapshot straight from the arena into CSR form: one growable flat
   buffer, rows gathered per node then sorted + deduped in place.  The
   id -> index translation is an O(1) slot-indexed lookup, not a search. *)
let snapshot t =
  let n = t.alive_len in
  let ids = alive_ids t in
  Array.sort Int.compare ids;
  let births = Array.make n 0 in
  let out_deg = Array.make n 0 in
  let index_of_slot = Array.make (max 1 t.used) (-1) in
  for i = 0 to n - 1 do
    let s = slot_of t ids.(i) in
    index_of_slot.(s) <- i;
    births.(i) <- t.birth_of_slot.(s)
  done;
  let offsets = Array.make (n + 1) 0 in
  let buf = ref (Array.make (max 16 (4 * n)) 0) in
  let len = ref 0 in
  let push v =
    let b = !buf in
    if !len = Array.length b then begin
      let bigger = Array.make (2 * !len) 0 in
      Array.blit b 0 bigger 0 !len;
      buf := bigger
    end;
    !buf.(!len) <- v;
    incr len
  in
  for i = 0 to n - 1 do
    let s = slot_of t ids.(i) in
    let start = !len in
    let row = s * t.d in
    let odeg = ref 0 in
    for k = 0 to t.d - 1 do
      let target = t.out.(row + k) in
      if target >= 0 then begin
        incr odeg;
        push index_of_slot.(slot_of t target)
      end
    done;
    out_deg.(i) <- !odeg;
    Intvec.iter (fun src -> push index_of_slot.(slot_of t src)) t.in_edges.(s);
    let b = !buf in
    sort_range b start (!len - start);
    let w = ref start in
    for r = start to !len - 1 do
      if r = start || b.(r) <> b.(r - 1) then begin
        b.(!w) <- b.(r);
        incr w
      end
    done;
    len := !w;
    offsets.(i + 1) <- !len
  done;
  Snapshot.of_csr ~ids ~births ~offsets ~adj:(Array.sub !buf 0 !len) ~out_deg

let check_invariants t =
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
  (* alive array, alive_pos and the id map agree *)
  for i = 0 to t.alive_len - 1 do
    let id = t.alive.(i) in
    let s = slot_of t id in
    if s < 0 then fail "alive node %d not mapped to a slot" id
    else begin
      if t.alive_pos.(s) <> i then fail "alive index mismatch for node %d" id;
      if t.id_of_slot.(s) <> id then fail "slot %d does not map back to node %d" s id
    end
  done;
  let mapped = ref 0 in
  Array.iter (fun s -> if s >= 0 then incr mapped) t.slot_of_id;
  if !mapped <> t.alive_len then fail "alive index size mismatch";
  (* used slots partition into alive slots and the free list *)
  if Intvec.length t.free + t.alive_len <> t.used then fail "slot accounting mismatch";
  Intvec.iter
    (fun s ->
      if t.id_of_slot.(s) >= 0 then fail "free slot %d still mapped" s;
      if t.alive_pos.(s) >= 0 then fail "free slot %d still in alive array" s;
      if Intvec.length t.in_edges.(s) <> 0 then fail "free slot %d keeps in-edges" s;
      for i = 0 to t.d - 1 do
        if t.out.((s * t.d) + i) >= 0 then fail "free slot %d keeps out-edges" s
      done)
    t.free;
  (* birth-order list covers exactly the alive slots, ids ascending *)
  let steps = ref 0 in
  let prev_id = ref (-1) in
  let cursor = ref t.oldest_slot in
  let broken = ref false in
  while !cursor >= 0 && not !broken do
    let s = !cursor in
    let id = t.id_of_slot.(s) in
    if id < 0 then begin
      fail "birth list visits free slot %d" s;
      broken := true
    end
    else begin
      if id <= !prev_id then fail "birth list not ascending at node %d" id;
      prev_id := id;
      let nx = t.next_slot.(s) in
      if nx >= 0 && t.prev_slot.(nx) <> s then fail "birth list links broken at slot %d" s;
      incr steps;
      if !steps > t.alive_len then begin
        fail "birth list longer than the alive set";
        broken := true
      end;
      cursor := nx
    end
  done;
  if (not !broken) && !steps <> t.alive_len then fail "birth list length mismatch";
  if t.alive_len > 0 && t.youngest_slot >= 0 && t.next_slot.(t.youngest_slot) >= 0 then
    fail "youngest slot has a successor";
  (* slot / in-edge symmetry, counted in both directions *)
  let count_row s v =
    let row = s * t.d in
    let c = ref 0 in
    for i = 0 to t.d - 1 do
      if t.out.(row + i) = v then incr c
    done;
    !c
  in
  let count_in s v =
    let c = ref 0 in
    Intvec.iter (fun x -> if x = v then incr c) t.in_edges.(s);
    !c
  in
  iter_alive t (fun id ->
      let s = slot_of t id in
      let row = s * t.d in
      for i = 0 to t.d - 1 do
        let target = t.out.(row + i) in
        if target >= 0 then begin
          if target = id then fail "self-loop at node %d" id;
          let ts = slot_of t target in
          if ts < 0 then fail "node %d has slot to dead node %d" id target
          else if count_in ts id <> count_row s target then
            fail "multiplicity mismatch %d->%d: slots %d, recorded %d" id target
              (count_row s target) (count_in ts id)
        end
      done;
      Intvec.iter
        (fun src ->
          let ss = slot_of t src in
          if ss < 0 then fail "in-edge from dead node %d at %d" src id
          else if count_row ss id <> count_in s src then
            fail "multiplicity mismatch %d->%d: slots %d, recorded %d" src id
              (count_row ss id) (count_in s src))
        t.in_edges.(s));
  match !err with None -> Ok () | Some e -> Error e

(* ------------------------------------------------------------------ *)
(* Checkpoint support                                                  *)
(* ------------------------------------------------------------------ *)

module Codec = Churnet_util.Codec

(* Everything observable is serialized verbatim: besides the obvious
   topology, the free list's LIFO order decides which slot the next
   birth recycles, the dense alive array's order is what random_alive
   indexes into, and the id-window base shifts nothing observable but is
   kept so a decode/encode cycle is byte-identical.  Deliberately NOT
   serialized: the three hooks (observers re-attach after resume) and
   the kill_srcs scratch buffer (rebuilt empty). *)
let encode w t =
  Codec.varint w t.d;
  Codec.bool w t.regenerate;
  Prng.encode w t.rng;
  Codec.varint w t.cap;
  Codec.varint w t.used;
  Intvec.encode w t.free;
  let prefix a = for s = 0 to t.used - 1 do Codec.varint w a.(s) done in
  prefix t.id_of_slot;
  prefix t.birth_of_slot;
  prefix t.alive_pos;
  prefix t.prev_slot;
  prefix t.next_slot;
  for i = 0 to (t.used * t.d) - 1 do
    Codec.varint w t.out.(i)
  done;
  for s = 0 to t.used - 1 do
    Intvec.encode w t.in_edges.(s)
  done;
  Codec.varint w t.oldest_slot;
  Codec.varint w t.youngest_slot;
  Codec.varint w t.base;
  Codec.varint w (Array.length t.slot_of_id);
  let window = max 0 (t.next_id - t.base) in
  Codec.varint w window;
  for i = 0 to window - 1 do
    Codec.varint w t.slot_of_id.(i)
  done;
  Codec.varint w t.alive_len;
  for i = 0 to t.alive_len - 1 do
    Codec.varint w t.alive.(i)
  done;
  Codec.varint w t.next_id

let decode r =
  let fail msg = raise (Codec.Error ("Dyngraph.decode: " ^ msg)) in
  let d = Codec.read_varint r in
  if d <= 0 then fail "non-positive degree";
  let regenerate = Codec.read_bool r in
  let rng = Prng.decode r in
  let cap = Codec.read_varint r in
  let used = Codec.read_varint r in
  if cap < 1 || used < 0 || used > cap then fail "bad arena bounds";
  let free = Intvec.decode r in
  let prefix fill =
    let a = Array.make cap fill in
    for s = 0 to used - 1 do
      a.(s) <- Codec.read_varint r
    done;
    a
  in
  let id_of_slot = prefix (-1) in
  let birth_of_slot = prefix 0 in
  let alive_pos = prefix (-1) in
  let prev_slot = prefix (-1) in
  let next_slot = prefix (-1) in
  let out = Array.make (cap * d) (-1) in
  for i = 0 to (used * d) - 1 do
    out.(i) <- Codec.read_varint r
  done;
  let in_edges =
    Array.init cap (fun s ->
        if s < used then Intvec.decode r else Intvec.create ~capacity:4 ())
  in
  let oldest_slot = Codec.read_varint r in
  let youngest_slot = Codec.read_varint r in
  let base = Codec.read_varint r in
  let window_len = Codec.read_varint r in
  let window = Codec.read_varint r in
  if window_len < 1 || window < 0 || window > window_len then fail "bad id window";
  let slot_of_id = Array.make window_len (-1) in
  for i = 0 to window - 1 do
    slot_of_id.(i) <- Codec.read_varint r
  done;
  let alive_len = Codec.read_varint r in
  if alive_len < 0 || alive_len > used then fail "bad alive count";
  let alive = Array.make (max 1024 alive_len) (-1) in
  for i = 0 to alive_len - 1 do
    alive.(i) <- Codec.read_varint r
  done;
  let next_id = Codec.read_varint r in
  if next_id < base || next_id - base <> window then fail "id window out of sync";
  let t =
    {
      d;
      regenerate;
      rng;
      cap;
      used;
      free;
      id_of_slot;
      birth_of_slot;
      out;
      in_edges;
      alive_pos;
      prev_slot;
      next_slot;
      oldest_slot;
      youngest_slot;
      base;
      slot_of_id;
      alive;
      alive_len;
      next_id;
      kill_srcs = Array.make 16 0;
      kill_cnts = Array.make 16 0;
      edge_hook = None;
      death_hook = None;
      birth_hook = None;
    }
  in
  (* The CRC catches corruption; this catches a structurally valid file
     whose fields contradict each other (schema drift, hand editing). *)
  (match check_invariants t with
  | Ok () -> ()
  | Error e -> fail ("invariant violation after decode: " ^ e));
  t
