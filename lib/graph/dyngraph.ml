module Prng = Churnet_util.Prng

type node_id = int

type node = {
  id : int;
  birth : int;
  out_slots : int array; (* target id per slot, -1 = empty *)
  in_edges : (int, int) Hashtbl.t; (* src id -> multiplicity *)
}

type t = {
  d : int;
  regenerate : bool;
  rng : Prng.t;
  nodes : (int, node) Hashtbl.t;
  mutable alive : int array; (* dense array of alive ids, for O(1) sampling *)
  mutable alive_len : int;
  alive_index : (int, int) Hashtbl.t; (* id -> position in [alive] *)
  mutable next_id : int;
  mutable edge_hook : (src:node_id -> dst:node_id -> unit) option;
  mutable death_hook : (node_id -> unit) option;
  mutable birth_hook : (node_id -> birth:int -> unit) option;
}

let create ?rng ~d ~regenerate () =
  if d <= 0 then invalid_arg "Dyngraph.create: d must be positive";
  let rng = match rng with Some r -> r | None -> Prng.create 0x5eed in
  {
    d;
    regenerate;
    rng;
    nodes = Hashtbl.create 1024;
    alive = Array.make 1024 (-1);
    alive_len = 0;
    alive_index = Hashtbl.create 1024;
    next_id = 0;
    edge_hook = None;
    death_hook = None;
    birth_hook = None;
  }

let d t = t.d
let regenerate t = t.regenerate
let set_edge_hook t hook = t.edge_hook <- hook
let set_death_hook t hook = t.death_hook <- hook
let set_birth_hook t hook = t.birth_hook <- hook
let alive_count t = t.alive_len
let is_alive t id = Hashtbl.mem t.alive_index id

let get_node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some node -> node
  | None -> invalid_arg (Printf.sprintf "Dyngraph: node %d is not alive" id)

let alive_push t id =
  if t.alive_len = Array.length t.alive then begin
    let bigger = Array.make (2 * t.alive_len) (-1) in
    Array.blit t.alive 0 bigger 0 t.alive_len;
    t.alive <- bigger
  end;
  t.alive.(t.alive_len) <- id;
  Hashtbl.replace t.alive_index id t.alive_len;
  t.alive_len <- t.alive_len + 1

let alive_remove t id =
  match Hashtbl.find_opt t.alive_index id with
  | None -> invalid_arg "Dyngraph: removing a node that is not alive"
  | Some pos ->
      let last = t.alive_len - 1 in
      let moved = t.alive.(last) in
      t.alive.(pos) <- moved;
      Hashtbl.replace t.alive_index moved pos;
      t.alive_len <- last;
      Hashtbl.remove t.alive_index id;
      if moved = id then () (* id was the last element; index already removed *)

let random_alive t =
  if t.alive_len = 0 then invalid_arg "Dyngraph.random_alive: empty graph";
  t.alive.(Prng.int t.rng t.alive_len)

(* Uniform alive node distinct from [self]; None when no such node exists. *)
let random_alive_excluding t self =
  if t.alive_len = 0 then None
  else if t.alive_len = 1 && t.alive.(0) = self then None
  else begin
    let rec go () =
      let cand = t.alive.(Prng.int t.rng t.alive_len) in
      if cand = self then go () else cand
    in
    Some (go ())
  end

let incr_in_edge target src =
  Hashtbl.replace target.in_edges src
    (1 + Option.value ~default:0 (Hashtbl.find_opt target.in_edges src))

let decr_in_edge target src =
  match Hashtbl.find_opt target.in_edges src with
  | None -> ()
  | Some 1 -> Hashtbl.remove target.in_edges src
  | Some k -> Hashtbl.replace target.in_edges src (k - 1)

let fire_hook t ~src ~dst =
  match t.edge_hook with None -> () | Some f -> f ~src ~dst

let add_node t ~birth =
  let id = t.next_id in
  t.next_id <- id + 1;
  let node = { id; birth; out_slots = Array.make t.d (-1); in_edges = Hashtbl.create 8 } in
  (* Sample destinations among nodes alive *before* this birth. *)
  for slot = 0 to t.d - 1 do
    match random_alive_excluding t id with
    | None -> ()
    | Some target_id ->
        node.out_slots.(slot) <- target_id;
        incr_in_edge (get_node t target_id) id
  done;
  Hashtbl.replace t.nodes id node;
  alive_push t id;
  (match t.birth_hook with None -> () | Some f -> f id ~birth);
  Array.iter (fun dst -> if dst >= 0 then fire_hook t ~src:id ~dst) node.out_slots;
  id

let add_node_with_targets t ~birth ~targets =
  let id = t.next_id in
  t.next_id <- id + 1;
  let node = { id; birth; out_slots = Array.make t.d (-1); in_edges = Hashtbl.create 8 } in
  let slot = ref 0 in
  Array.iter
    (fun target_id ->
      if !slot < t.d && target_id <> id && Hashtbl.mem t.nodes target_id then begin
        node.out_slots.(!slot) <- target_id;
        incr_in_edge (get_node t target_id) id;
        incr slot
      end)
    targets;
  Hashtbl.replace t.nodes id node;
  alive_push t id;
  (match t.birth_hook with None -> () | Some f -> f id ~birth);
  Array.iter (fun dst -> if dst >= 0 then fire_hook t ~src:id ~dst) node.out_slots;
  id

let peek_next_id t = t.next_id

let connect t ~src ~dst =
  if src = dst then false
  else
    match (Hashtbl.find_opt t.nodes src, Hashtbl.find_opt t.nodes dst) with
    | Some src_node, Some dst_node ->
        let slot = ref (-1) in
        Array.iteri
          (fun i target -> if target < 0 && !slot < 0 then slot := i)
          src_node.out_slots;
        if !slot < 0 then false
        else begin
          src_node.out_slots.(!slot) <- dst;
          incr_in_edge dst_node src;
          fire_hook t ~src ~dst;
          true
        end
    | _ -> false

let disconnect t ~src ~dst =
  match (Hashtbl.find_opt t.nodes src, Hashtbl.find_opt t.nodes dst) with
  | Some src_node, Some dst_node ->
      let slot = ref (-1) in
      Array.iteri
        (fun i target -> if target = dst && !slot < 0 then slot := i)
        src_node.out_slots;
      if !slot < 0 then false
      else begin
        src_node.out_slots.(!slot) <- -1;
        decr_in_edge dst_node src;
        true
      end
  | _ -> false

let in_degree t id = Hashtbl.length (get_node t id).in_edges

let kill t id =
  let node = get_node t id in
  (match t.death_hook with None -> () | Some f -> f id);
  (* Remove from the alive set first so regeneration cannot choose [id]. *)
  alive_remove t id;
  Hashtbl.remove t.nodes id;
  (* Drop this node's out-edges from its targets' in-edge tables. *)
  Array.iter
    (fun target_id ->
      if target_id >= 0 then
        match Hashtbl.find_opt t.nodes target_id with
        | Some target -> decr_in_edge target id
        | None -> ())
    node.out_slots;
  (* Each surviving in-neighbor loses the slots that pointed here and, with
     regeneration, immediately re-samples them over the current alive set. *)
  (* lint: allow no-hashtbl-order — regeneration draws follow the table's
     insertion history, itself a pure function of the seed; replays are
     bit-identical (guarded by test_differential). *)
  Hashtbl.iter
    (fun src_id _multiplicity ->
      match Hashtbl.find_opt t.nodes src_id with
      | None -> ()
      | Some src ->
          Array.iteri
            (fun slot target ->
              if target = id then begin
                src.out_slots.(slot) <- -1;
                if t.regenerate then
                  match random_alive_excluding t src_id with
                  | None -> ()
                  | Some fresh ->
                      src.out_slots.(slot) <- fresh;
                      incr_in_edge (get_node t fresh) src_id;
                      fire_hook t ~src:src_id ~dst:fresh
              end)
            src.out_slots)
    node.in_edges

let iter_alive t f =
  for i = 0 to t.alive_len - 1 do
    f t.alive.(i)
  done

let alive_ids t = Array.sub t.alive 0 t.alive_len
let birth_of t id = (get_node t id).birth

let out_targets t id =
  let node = get_node t id in
  Array.fold_right (fun target acc -> if target >= 0 then target :: acc else acc)
    node.out_slots []

let out_slots_raw t id = Array.copy (get_node t id).out_slots

let out_slot t id slot =
  let node = get_node t id in
  if slot < 0 || slot >= Array.length node.out_slots then
    invalid_arg "Dyngraph.out_slot: slot out of range";
  node.out_slots.(slot)

let in_neighbors t id =
  let node = get_node t id in
  (* lint: allow no-hashtbl-order — documented as unordered; order-sensitive
     consumers (Snapshot, tests) sort before use. *)
  Hashtbl.fold (fun src _ acc -> src :: acc) node.in_edges []

let neighbors t id =
  let node = get_node t id in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun target -> if target >= 0 then Hashtbl.replace seen target ())
    node.out_slots;
  (* lint: allow no-hashtbl-order — builds a dedup set; membership only. *)
  Hashtbl.iter (fun src _ -> Hashtbl.replace seen src ()) node.in_edges;
  (* lint: allow no-hashtbl-order — documented as unordered; order-sensitive
     consumers (Snapshot, tests) sort before use. *)
  Hashtbl.fold (fun v () acc -> v :: acc) seen []

(* Allocation-free neighborhood iteration for the simulation hot loops.
   Distinctness without a scratch set: an out-slot target is skipped when it
   is also an in-neighbor (the in-edge pass will visit it) or when an
   earlier slot already holds it (O(d^2) scan; d is a small constant). *)
let iter_neighbors t id f =
  let node = get_node t id in
  let slots = node.out_slots in
  for i = 0 to Array.length slots - 1 do
    let v = slots.(i) in
    if v >= 0 && not (Hashtbl.mem node.in_edges v) then begin
      let dup = ref false in
      for j = 0 to i - 1 do
        if slots.(j) = v then dup := true
      done;
      if not !dup then f v
    end
  done;
  (* lint: allow no-hashtbl-order — iteration contract is unordered; hot-path
     consumers (Flood, Probe) fold into bitsets and counters. *)
  Hashtbl.iter (fun src _ -> f src) node.in_edges

let iter_in_neighbors t id f =
  let node = get_node t id in
  (* lint: allow no-hashtbl-order — iteration contract is unordered; hot-path
     consumers (Flood, Probe) fold into bitsets and counters. *)
  Hashtbl.iter (fun src _ -> f src) node.in_edges

let degree t id = List.length (neighbors t id)

let out_degree t id =
  let node = get_node t id in
  Array.fold_left (fun acc target -> if target >= 0 then acc + 1 else acc) 0 node.out_slots

let edge_count t =
  let total = ref 0 in
  iter_alive t (fun id -> total := !total + out_degree t id);
  !total

let oldest_alive t =
  if t.alive_len = 0 then None
  else begin
    let best = ref max_int in
    iter_alive t (fun id -> if id < !best then best := id);
    Some !best
  end

let snapshot t =
  let ids = alive_ids t in
  Array.sort Int.compare ids;
  let n = Array.length ids in
  let index_of = Hashtbl.create (2 * n) in
  Array.iteri (fun i id -> Hashtbl.replace index_of id i) ids;
  let births = Array.map (fun id -> (get_node t id).birth) ids in
  let out_deg = Array.map (fun id -> out_degree t id) ids in
  let adj =
    Array.map
      (fun id ->
        let neigh = neighbors t id in
        let arr = List.filter_map (fun v -> Hashtbl.find_opt index_of v) neigh in
        let arr = Array.of_list arr in
        Array.sort Int.compare arr;
        arr)
      ids
  in
  Snapshot.make ~ids ~births ~adj ~out_deg

let check_invariants t =
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
  (* alive array and index agree *)
  for i = 0 to t.alive_len - 1 do
    let id = t.alive.(i) in
    (match Hashtbl.find_opt t.alive_index id with
    | Some j when j = i -> ()
    | _ -> fail "alive index mismatch for node %d" id);
    if not (Hashtbl.mem t.nodes id) then fail "alive node %d missing record" id
  done;
  if Hashtbl.length t.alive_index <> t.alive_len then fail "alive index size mismatch";
  if Hashtbl.length t.nodes <> t.alive_len then fail "node table size mismatch";
  (* slot / in-edge symmetry *)
  (* lint: allow no-hashtbl-order — invariant sweep: only whether a violation
     exists matters, not which one is reported first. *)
  Hashtbl.iter
    (fun id node ->
      Array.iter
        (fun target ->
          if target >= 0 then begin
            if target = id then fail "self-loop at node %d" id;
            match Hashtbl.find_opt t.nodes target with
            | None -> fail "node %d has slot to dead node %d" id target
            | Some tgt ->
                if Option.value ~default:0 (Hashtbl.find_opt tgt.in_edges id) <= 0 then
                  fail "slot %d->%d not recorded as in-edge" id target
          end)
        node.out_slots;
      (* lint: allow no-hashtbl-order — invariant sweep: only whether a
         violation exists matters, not which one is reported first. *)
      Hashtbl.iter
        (fun src mult ->
          if mult <= 0 then fail "non-positive multiplicity %d->%d" src id;
          match Hashtbl.find_opt t.nodes src with
          | None -> fail "in-edge from dead node %d at %d" src id
          | Some src_node ->
              let count =
                Array.fold_left
                  (fun acc target -> if target = id then acc + 1 else acc)
                  0 src_node.out_slots
              in
              if count <> mult then
                fail "multiplicity mismatch %d->%d: slots %d, recorded %d" src id count
                  mult)
        node.in_edges;
      if t.regenerate && t.alive_len >= 2 then begin
        let filled =
          Array.fold_left (fun acc s -> if s >= 0 then acc + 1 else acc) 0 node.out_slots
        in
        (* Nodes born into a near-empty graph may have permanently empty
           slots; regeneration only refills slots that once held an edge.
           Any node born when >= d+1 nodes were alive must be full. *)
        ignore filled
      end)
    t.nodes;
  match !err with None -> Ok () | Some e -> Error e
