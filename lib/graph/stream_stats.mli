(** Snapshot-grade statistics computed directly off the arena.

    {!Snapshot} freezes the topology into a flat CSR before anything can
    be measured — an O(n·d) copy that dominates peak RSS once n reaches
    the XL tier (10⁶ nodes and up).  This module computes the statistics
    the experiment checks actually consume by row-local iteration
    ([Dyngraph.iter_alive] + [Dyngraph.iter_neighbors]), holding only
    O(n) counters.

    Every field is {e bit-identical} to the corresponding CSR-side
    computation ([Snapshot.mean_degree], [Snapshot.degree_histogram],
    [Metrics.degree_gini], …) — the float operations are replayed in the
    same order — and a differential test asserts so on every scale where
    the CSR is still affordable. *)

type t = {
  population : int;  (** [Dyngraph.alive_count]. *)
  isolated : int;  (** Nodes with no distinct neighbor. *)
  max_degree : int;
  mean_degree : float;  (** nan when the graph is empty. *)
  degree_histogram : int array;
      (** Index = distinct-neighbor degree; length [max_degree + 1]
          ([\[|0|\]] for the empty graph), as [Snapshot.degree_histogram]. *)
  degree_gini : float;
      (** Bitwise [Metrics.degree_gini] of the same population: nan when
          empty, 0 when all degrees are 0. *)
}

val collect : Dyngraph.t -> t
(** One pass over the alive set; O(n) time and counters, no CSR. *)

val boundary_size :
  ?scratch:Churnet_util.Bitset.t -> Dyngraph.t -> Churnet_util.Bitset.t -> int
(** [boundary_size g set] counts the distinct alive nodes adjacent to —
    but outside — [set], which here holds {e node ids} (not snapshot
    indices).  Dead ids in [set] are ignored.  [?scratch] is cleared and
    reused as the seen-set, saving the allocation when probing many sets
    of similar size. *)

val expansion :
  ?scratch:Churnet_util.Bitset.t -> Dyngraph.t -> Churnet_util.Bitset.t -> float
(** [boundary_size / cardinal]; nan for the empty set — mirroring
    [Snapshot.expansion]. *)
