(** Capture, serialize and replay dynamic-graph runs.

    Attaching a log to a {!Dyngraph.t} records every birth (with the
    newborn's request targets), regeneration edge, and death.  The log can
    then be replayed to rebuild the topology at any event index — e.g. to
    inspect the exact snapshot on which a flood behaved unexpectedly —
    and round-trips through a simple line-based text format.

    Replay correctness rests on a model invariant: an out-slot edge
    disappears only when one of its endpoints dies (Definitions 3.4/3.13
    rule 2), so the alive-edge set at any instant is exactly the set of
    logged edges whose endpoints are both still alive.

    Note: attaching claims the graph's birth/edge/death hooks, so do not
    log a run while the asynchronous flooding simulator (which also uses
    the hooks) is active. *)

type event =
  | Birth of { id : int; birth : int; targets : int array }
      (** node [id] joined at stamp [birth], requesting [targets] *)
  | Edge of { src : int; dst : int }  (** regeneration / repair edge *)
  | Death of { id : int }

type t

val create : unit -> t
val length : t -> int
val events : t -> event array
(** Copy of the recorded events, in order. *)

val record : t -> event -> unit
(** Append one event (used by the hooks, and by tests building synthetic
    logs). *)

val attach : t -> Dyngraph.t -> unit
(** Start recording the graph's births, deaths and regeneration edges
    into [t]. *)

val detach : t -> Dyngraph.t -> unit
(** Flush any buffered birth and clear the three hooks. *)

val replay : ?upto:int -> t -> Snapshot.t
(** Rebuild the topology after the first [upto] events (default: all).
    Nodes are indexed as in any snapshot: oldest first. *)

val population_series : t -> int array
(** Alive-node count after each event. *)

val to_string : t -> string
(** Line-based format: [B id birth t1,t2,...], [E src dst], [D id]. *)

val of_string : string -> (t, string) result
(** Parse the {!to_string} format; reports the first offending line. *)
