type event =
  | Birth of { id : int; birth : int; targets : int array }
  | Edge of { src : int; dst : int }
  | Death of { id : int }

type t = {
  mutable events : event list;
  mutable length : int;
  mutable flush_pending : unit -> unit;
}

let create () = { events = []; length = 0; flush_pending = (fun () -> ()) }
let length t = t.length

let record t e =
  t.events <- e :: t.events;
  t.length <- t.length + 1

let events t =
  t.flush_pending ();
  Array.of_list (List.rev t.events)

(* The birth hook fires before the newborn's edge hooks; buffer the birth
   and collect its initial edges until the next non-edge-of-newborn event. *)
let attach t graph =
  let current_birth : (int * int * int list ref) option ref = ref None in
  let flush () =
    match !current_birth with
    | None -> ()
    | Some (id, birth, targets) ->
        record t (Birth { id; birth; targets = Array.of_list (List.rev !targets) });
        current_birth := None
  in
  Dyngraph.set_birth_hook graph
    (Some
       (fun id ~birth ->
         flush ();
         current_birth := Some (id, birth, ref [])));
  Dyngraph.set_edge_hook graph
    (Some
       (fun ~src ~dst ->
         match !current_birth with
         | Some (id, _, targets) when id = src -> targets := dst :: !targets
         | _ ->
             flush ();
             record t (Edge { src; dst })));
  Dyngraph.set_death_hook graph
    (Some
       (fun id ->
         flush ();
         record t (Death { id })));
  t.flush_pending <- flush

let detach t graph =
  t.flush_pending ();
  t.flush_pending <- (fun () -> ());
  Dyngraph.set_birth_hook graph None;
  Dyngraph.set_edge_hook graph None;
  Dyngraph.set_death_hook graph None

(* Replay into a plain adjacency structure. *)
module Int_set = Set.Make (Int)

let replay ?upto t =
  let evts = events t in
  let upto = match upto with Some k -> min k (Array.length evts) | None -> Array.length evts in
  let alive : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  (* id -> birth *)
  let adj : (int, Int_set.t) Hashtbl.t = Hashtbl.create 1024 in
  let adj_of id = Option.value ~default:Int_set.empty (Hashtbl.find_opt adj id) in
  let add_edge u v =
    if u <> v && Hashtbl.mem alive u && Hashtbl.mem alive v then begin
      Hashtbl.replace adj u (Int_set.add v (adj_of u));
      Hashtbl.replace adj v (Int_set.add u (adj_of v))
    end
  in
  for i = 0 to upto - 1 do
    match evts.(i) with
    | Birth { id; birth; targets } ->
        Hashtbl.replace alive id birth;
        Array.iter (fun v -> add_edge id v) targets
    | Edge { src; dst } -> add_edge src dst
    | Death { id } ->
        Int_set.iter
          (fun v -> Hashtbl.replace adj v (Int_set.remove id (adj_of v)))
          (adj_of id);
        Hashtbl.remove adj id;
        Hashtbl.remove alive id
  done;
  (* lint: allow no-hashtbl-order — collected ids are sorted on the next
     line, so table order cannot reach the snapshot. *)
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) alive [] in
  let ids = Array.of_list (List.sort Int.compare ids) in
  let index_of = Hashtbl.create (2 * Array.length ids) in
  Array.iteri (fun i id -> Hashtbl.replace index_of id i) ids;
  let births = Array.map (fun id -> Hashtbl.find alive id) ids in
  let adj_arrays =
    Array.map
      (fun id ->
        let arr =
          Int_set.elements (adj_of id)
          |> List.filter_map (fun v -> Hashtbl.find_opt index_of v)
          |> Array.of_list
        in
        Array.sort Int.compare arr;
        arr)
      ids
  in
  Snapshot.make ~ids ~births ~adj:adj_arrays ~out_deg:(Array.make (Array.length ids) 0)

let population_series t =
  let evts = events t in
  let pop = ref 0 in
  Array.map
    (fun e ->
      (match e with
      | Birth _ -> incr pop
      | Death _ -> decr pop
      | Edge _ -> ());
      !pop)
    evts

let to_string t =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun e ->
      (match e with
      | Birth { id; birth; targets } ->
          Buffer.add_string buf
            (Printf.sprintf "B %d %d %s" id birth
               (String.concat "," (Array.to_list (Array.map string_of_int targets))))
      | Edge { src; dst } -> Buffer.add_string buf (Printf.sprintf "E %d %d" src dst)
      | Death { id } -> Buffer.add_string buf (Printf.sprintf "D %d" id));
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

let of_string s =
  let t = create () in
  let error = ref None in
  let lines = String.split_on_char '\n' s in
  List.iteri
    (fun lineno line ->
      if !error = None && String.trim line <> "" then begin
        let fail () = error := Some (Printf.sprintf "line %d: %S" (lineno + 1) line) in
        match String.split_on_char ' ' (String.trim line) with
        | [ "B"; id; birth; targets ] -> (
            match (int_of_string_opt id, int_of_string_opt birth) with
            | Some id, Some birth -> (
                let parts =
                  if targets = "" then []
                  else String.split_on_char ',' targets
                in
                let parsed = List.map int_of_string_opt parts in
                if List.exists (fun x -> x = None) parsed then fail ()
                else
                  record t
                    (Birth { id; birth; targets = Array.of_list (List.map Option.get parsed) }))
            | _ -> fail ())
        | [ "B"; id; birth ] -> (
            match (int_of_string_opt id, int_of_string_opt birth) with
            | Some id, Some birth -> record t (Birth { id; birth; targets = [||] })
            | _ -> fail ())
        | [ "E"; src; dst ] -> (
            match (int_of_string_opt src, int_of_string_opt dst) with
            | Some src, Some dst -> record t (Edge { src; dst })
            | _ -> fail ())
        | [ "D"; id ] -> (
            match int_of_string_opt id with
            | Some id -> record t (Death { id })
            | None -> fail ())
        | _ -> fail ()
      end)
    lines;
  match !error with Some e -> Error e | None -> Ok t
