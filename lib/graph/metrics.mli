(** Classic topology metrics over snapshots, used to characterize how
    closely the paper's random models resemble protocol-built P2P
    topologies (experiment F12): clustering, degree assortativity,
    typical distances and degree-distribution summaries. *)

val global_clustering : Snapshot.t -> float
(** Transitivity: 3 x (number of triangles) / (number of wedges);
    [nan] when the graph has no wedge. *)

val mean_local_clustering : Snapshot.t -> float
(** Watts-Strogatz average of per-vertex clustering coefficients over
    vertices of degree >= 2. *)

val degree_assortativity : Snapshot.t -> float
(** Pearson correlation of the degrees at the two endpoints of a uniform
    random edge (Newman's r); [nan] for degree-regular or empty graphs. *)

val mean_distance :
  rng:Churnet_util.Prng.t -> ?sources:int -> Snapshot.t -> float
(** Average shortest-path distance estimated by BFS from [sources]
    (default 16) random vertices, over reachable pairs. *)

val diameter_estimate :
  rng:Churnet_util.Prng.t -> ?sources:int -> Snapshot.t -> int
(** Max eccentricity observed over the sampled BFS sources — a lower
    bound on the true diameter of the largest component. *)

val degree_gini : Snapshot.t -> float
(** Gini coefficient of the degree sequence: 0 = perfectly regular,
    towards 1 = extremely skewed. *)

type fingerprint = {
  nodes : int;
  edges : int;
  mean_degree : float;
  max_degree : int;
  degree_gini : float;
  global_clustering : float;
  assortativity : float;
  mean_distance : float;
  diameter_lb : int;
  giant_fraction : float;
}

val fingerprint : rng:Churnet_util.Prng.t -> Snapshot.t -> fingerprint
(** All of the above in one pass (sampling-based entries use [rng]). *)
