module Prng = Churnet_util.Prng

(* Count triangles and wedges.  CSR rows are sorted, so common neighbors
   are found by merge directly on the flat adjacency; each triangle is
   counted once per corner and divided out at the end. *)
let triangles_and_wedges snap =
  let n = Snapshot.n snap in
  let triangles = ref 0 and wedges = ref 0 in
  for v = 0 to n - 1 do
    let deg = Snapshot.degree snap v in
    wedges := !wedges + (deg * (deg - 1) / 2);
    Snapshot.iter_neighbors snap v (fun w ->
        if w > v then triangles := !triangles + Snapshot.common_neighbors snap v w)
  done;
  (* Each triangle contributes one common-neighbor hit per edge (v < w),
     i.e. 3 hits total. *)
  (!triangles / 3, !wedges)

let global_clustering snap =
  let tri, wedges = triangles_and_wedges snap in
  if wedges = 0 then nan else 3. *. float_of_int tri /. float_of_int wedges

let mean_local_clustering snap =
  let n = Snapshot.n snap in
  let acc = ref 0. and count = ref 0 in
  for v = 0 to n - 1 do
    let deg = Snapshot.degree snap v in
    if deg >= 2 then begin
      let links = ref 0 in
      for i = 0 to deg - 1 do
        let a = Snapshot.neighbor snap v i in
        for j = i + 1 to deg - 1 do
          if Snapshot.mem_edge snap a (Snapshot.neighbor snap v j) then incr links
        done
      done;
      acc := !acc +. (2. *. float_of_int !links /. float_of_int (deg * (deg - 1)));
      incr count
    end
  done;
  if !count = 0 then nan else !acc /. float_of_int !count

let degree_assortativity snap =
  let pairs = ref [] in
  let n = Snapshot.n snap in
  for v = 0 to n - 1 do
    Snapshot.iter_neighbors snap v (fun w ->
        if w > v then begin
          let dv = float_of_int (Snapshot.degree snap v) in
          let dw = float_of_int (Snapshot.degree snap w) in
          (* An undirected edge contributes both orientations to Newman's
             correlation. *)
          pairs := (dv, dw) :: (dw, dv) :: !pairs
        end)
  done;
  Churnet_util.Stats.pearson (Array.of_list !pairs)

let sample_bfs ~rng ?(sources = 16) snap =
  let n = Snapshot.n snap in
  let sources = min sources n in
  let picks =
    if sources = n then Array.init n Fun.id
    else Prng.sample_without_replacement rng sources n
  in
  Array.map (fun s -> Snapshot.bfs snap s) picks

let mean_distance ~rng ?sources snap =
  let runs = sample_bfs ~rng ?sources snap in
  let acc = ref 0. and count = ref 0 in
  Array.iter
    (fun dist ->
      Array.iter
        (fun d ->
          if d > 0 then begin
            acc := !acc +. float_of_int d;
            incr count
          end)
        dist)
    runs;
  if !count = 0 then nan else !acc /. float_of_int !count

let diameter_estimate ~rng ?sources snap =
  let runs = sample_bfs ~rng ?sources snap in
  Array.fold_left
    (fun best dist -> Array.fold_left (fun b d -> if d > b then d else b) best dist)
    0 runs

let degree_gini snap =
  let n = Snapshot.n snap in
  if n = 0 then nan
  else begin
    let degs = Array.init n (fun v -> float_of_int (Snapshot.degree snap v)) in
    Array.sort Float.compare degs;
    let total = Array.fold_left ( +. ) 0. degs in
    if total <= 0. then 0.
    else begin
      let weighted = ref 0. in
      Array.iteri (fun i d -> weighted := !weighted +. (float_of_int (i + 1) *. d)) degs;
      let fn = float_of_int n in
      ((2. *. !weighted) /. (fn *. total)) -. ((fn +. 1.) /. fn)
    end
  end

type fingerprint = {
  nodes : int;
  edges : int;
  mean_degree : float;
  max_degree : int;
  degree_gini : float;
  global_clustering : float;
  assortativity : float;
  mean_distance : float;
  diameter_lb : int;
  giant_fraction : float;
}

let fingerprint ~rng snap =
  {
    nodes = Snapshot.n snap;
    edges = Snapshot.edge_count snap;
    mean_degree = Snapshot.mean_degree snap;
    max_degree = Snapshot.max_degree snap;
    degree_gini = degree_gini snap;
    global_clustering = global_clustering snap;
    assortativity = degree_assortativity snap;
    mean_distance = mean_distance ~rng snap;
    diameter_lb = diameter_estimate ~rng snap;
    giant_fraction =
      (if Snapshot.n snap = 0 then nan
       else float_of_int (Snapshot.largest_component snap) /. float_of_int (Snapshot.n snap));
  }
