module Bitset = Churnet_util.Bitset

type t = {
  ids : int array;
  births : int array;
  adj : int array array;
  out_deg : int array;
  index_of : (int, int) Hashtbl.t;
}

let make ~ids ~births ~adj ~out_deg =
  let n = Array.length ids in
  if Array.length births <> n || Array.length adj <> n || Array.length out_deg <> n then
    invalid_arg "Snapshot.make: length mismatch";
  let index_of = Hashtbl.create (2 * n) in
  Array.iteri (fun i id -> Hashtbl.replace index_of id i) ids;
  { ids; births; adj; out_deg; index_of }

let of_edges ~n edges =
  let tmp = Array.make n [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Snapshot.of_edges";
      if u <> v then begin
        tmp.(u) <- v :: tmp.(u);
        tmp.(v) <- u :: tmp.(v)
      end)
    edges;
  let adj =
    Array.map
      (fun l ->
        let a = Array.of_list (List.sort_uniq Int.compare l) in
        a)
      tmp
  in
  make ~ids:(Array.init n Fun.id) ~births:(Array.init n Fun.id) ~adj
    ~out_deg:(Array.make n 0)

let n t = Array.length t.ids
let ids t = Array.copy t.ids
let id_of_index t i = t.ids.(i)
let index_of_id t id = Hashtbl.find_opt t.index_of id
let birth_of_index t i = t.births.(i)
let neighbors t i = t.adj.(i)
let degree t i = Array.length t.adj.(i)
let out_degree t i = t.out_deg.(i)

let edge_count t =
  let total = Array.fold_left (fun acc a -> acc + Array.length a) 0 t.adj in
  total / 2

let max_degree t = Array.fold_left (fun acc a -> max acc (Array.length a)) 0 t.adj

let mean_degree t =
  let nn = n t in
  if nn = 0 then nan
  else
    float_of_int (Array.fold_left (fun acc a -> acc + Array.length a) 0 t.adj)
    /. float_of_int nn

let isolated t =
  let acc = ref [] in
  for i = n t - 1 downto 0 do
    if Array.length t.adj.(i) = 0 then acc := i :: !acc
  done;
  !acc

let bfs t src =
  let nn = n t in
  let dist = Array.make nn (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      t.adj.(u)
  done;
  dist

let components t =
  let nn = n t in
  let label = Array.make nn (-1) in
  let next = ref 0 in
  let queue = Queue.create () in
  for s = 0 to nn - 1 do
    if label.(s) < 0 then begin
      let c = !next in
      incr next;
      label.(s) <- c;
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Array.iter
          (fun v ->
            if label.(v) < 0 then begin
              label.(v) <- c;
              Queue.add v queue
            end)
          t.adj.(u)
      done
    end
  done;
  (label, !next)

let largest_component t =
  let label, k = components t in
  if k = 0 then 0
  else begin
    let sizes = Array.make k 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) label;
    Array.fold_left max 0 sizes
  end

let boundary t set =
  let acc = ref [] in
  let seen = Bitset.create (n t) in
  Bitset.iter
    (fun u ->
      Array.iter
        (fun v ->
          if (not (Bitset.mem set v)) && not (Bitset.mem seen v) then begin
            Bitset.add seen v;
            acc := v :: !acc
          end)
        t.adj.(u))
    set;
  Array.of_list !acc

let boundary_size ?scratch t set =
  let seen =
    match scratch with
    | Some b ->
        if Bitset.capacity b < n t then
          invalid_arg "Snapshot.boundary_size: scratch capacity below n";
        Bitset.clear b;
        b
    | None -> Bitset.create (n t)
  in
  let count = ref 0 in
  Bitset.iter
    (fun u ->
      Array.iter
        (fun v ->
          if (not (Bitset.mem set v)) && not (Bitset.mem seen v) then begin
            Bitset.add seen v;
            incr count
          end)
        t.adj.(u))
    set;
  !count

let expansion ?scratch t set =
  let s = Bitset.cardinal set in
  if s = 0 then nan
  else float_of_int (boundary_size ?scratch t set) /. float_of_int s

let set_of_indices t indices =
  let set = Bitset.create (n t) in
  Array.iter (fun i -> Bitset.add set i) indices;
  set

let indices_by_age t = Array.init (n t) Fun.id

let degree_histogram t =
  let h = Array.make (max_degree t + 1) 0 in
  Array.iter (fun a -> h.(Array.length a) <- h.(Array.length a) + 1) t.adj;
  h

let to_dot ?(name = "snapshot") ?(highlight = []) t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  Buffer.add_string buf "  node [shape=circle, fontsize=8];\n";
  let hl = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace hl i ()) highlight;
  Array.iteri
    (fun i id ->
      if Hashtbl.mem hl i then
        Buffer.add_string buf
          (Printf.sprintf "  n%d [label=\"%d\", style=filled, fillcolor=red];\n" i id)
      else Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%d\"];\n" i id))
    t.ids;
  Array.iteri
    (fun u neigh ->
      Array.iter (fun v -> if v > u then Buffer.add_string buf (Printf.sprintf "  n%d -- n%d;\n" u v)) neigh)
    t.adj;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
