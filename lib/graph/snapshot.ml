module Bitset = Churnet_util.Bitset

(* CSR (compressed sparse row) layout: row i of the adjacency is
   adj.[offsets.(i) .. offsets.(i+1)), sorted ascending and distinct.
   Two flat arrays replace the array-of-arrays + id hashtable of the
   original representation: neighbor scans are cache-linear, degree is a
   subtraction, and [index_of_id] is a branch on the dense-id fast path
   (a contiguous id range, the common case under FIFO churn) or a binary
   search otherwise. *)
type t = {
  ids : int array;
  births : int array;
  offsets : int array; (* length n + 1; offsets.(0) = 0 *)
  adj : int array; (* flat rows, each sorted + distinct *)
  out_deg : int array;
  dense : bool; (* ids.(i) = ids.(0) + i for all i *)
}

let ids_dense ids =
  let n = Array.length ids in
  n = 0 || ids.(n - 1) - ids.(0) = n - 1

let of_csr ~ids ~births ~offsets ~adj ~out_deg =
  let n = Array.length ids in
  if Array.length births <> n || Array.length out_deg <> n || Array.length offsets <> n + 1
  then invalid_arg "Snapshot.of_csr: length mismatch";
  if offsets.(0) <> 0 || offsets.(n) <> Array.length adj then
    invalid_arg "Snapshot.of_csr: offsets do not cover adj";
  { ids; births; offsets; adj; out_deg; dense = ids_dense ids }

let make ~ids ~births ~adj ~out_deg =
  let n = Array.length ids in
  if Array.length births <> n || Array.length adj <> n || Array.length out_deg <> n then
    invalid_arg "Snapshot.make: length mismatch";
  let offsets = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    offsets.(i + 1) <- offsets.(i) + Array.length adj.(i)
  done;
  let flat = Array.make offsets.(n) 0 in
  Array.iteri (fun i row -> Array.blit row 0 flat offsets.(i) (Array.length row)) adj;
  { ids; births; offsets; adj = flat; out_deg; dense = ids_dense ids }

let of_edges ~n edges =
  let tmp = Array.make n [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Snapshot.of_edges";
      if u <> v then begin
        tmp.(u) <- v :: tmp.(u);
        tmp.(v) <- u :: tmp.(v)
      end)
    edges;
  let adj = Array.map (fun l -> Array.of_list (List.sort_uniq Int.compare l)) tmp in
  make ~ids:(Array.init n Fun.id) ~births:(Array.init n Fun.id) ~adj
    ~out_deg:(Array.make n 0)

let n t = Array.length t.ids
let ids t = Array.copy t.ids
let id_of_index t i = t.ids.(i)

let index_of_id t id =
  let nn = Array.length t.ids in
  if nn = 0 then None
  else if t.dense then begin
    let i = id - t.ids.(0) in
    if i >= 0 && i < nn then Some i else None
  end
  else begin
    let lo = ref 0 and hi = ref (nn - 1) and found = ref (-1) in
    while !lo <= !hi && !found < 0 do
      let mid = (!lo + !hi) / 2 in
      let v = t.ids.(mid) in
      if v = id then found := mid else if v < id then lo := mid + 1 else hi := mid - 1
    done;
    if !found < 0 then None else Some !found
  end

let birth_of_index t i = t.births.(i)
let degree t i = t.offsets.(i + 1) - t.offsets.(i)
let neighbors t i = Array.sub t.adj t.offsets.(i) (degree t i)

let iter_neighbors t i f =
  for k = t.offsets.(i) to t.offsets.(i + 1) - 1 do
    f t.adj.(k)
  done

let neighbor t i k =
  if k < 0 || k >= degree t i then invalid_arg "Snapshot.neighbor: rank out of range";
  t.adj.(t.offsets.(i) + k)

let mem_edge t i j =
  let lo = ref t.offsets.(i) and hi = ref (t.offsets.(i + 1) - 1) in
  let found = ref false in
  while !lo <= !hi && not !found do
    let mid = (!lo + !hi) / 2 in
    let v = t.adj.(mid) in
    if v = j then found := true else if v < j then lo := mid + 1 else hi := mid - 1
  done;
  !found

let common_neighbors t i j =
  let ai = ref t.offsets.(i) and bi = ref t.offsets.(j) in
  let ae = t.offsets.(i + 1) and be = t.offsets.(j + 1) in
  let c = ref 0 in
  while !ai < ae && !bi < be do
    let x = t.adj.(!ai) and y = t.adj.(!bi) in
    if x = y then begin
      incr c;
      incr ai;
      incr bi
    end
    else if x < y then incr ai
    else incr bi
  done;
  !c

let out_degree t i = t.out_deg.(i)
let edge_count t = Array.length t.adj / 2

let max_degree t =
  let best = ref 0 in
  for i = 0 to n t - 1 do
    if degree t i > !best then best := degree t i
  done;
  !best

let mean_degree t =
  let nn = n t in
  if nn = 0 then nan else float_of_int (Array.length t.adj) /. float_of_int nn

let isolated t =
  let acc = ref [] in
  for i = n t - 1 downto 0 do
    if degree t i = 0 then acc := i :: !acc
  done;
  !acc

let bfs t src =
  let nn = n t in
  let dist = Array.make nn (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    iter_neighbors t u (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
  done;
  dist

let components t =
  let nn = n t in
  let label = Array.make nn (-1) in
  let next = ref 0 in
  let queue = Queue.create () in
  for s = 0 to nn - 1 do
    if label.(s) < 0 then begin
      let c = !next in
      incr next;
      label.(s) <- c;
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        iter_neighbors t u (fun v ->
            if label.(v) < 0 then begin
              label.(v) <- c;
              Queue.add v queue
            end)
      done
    end
  done;
  (label, !next)

let largest_component t =
  let label, k = components t in
  if k = 0 then 0
  else begin
    let sizes = Array.make k 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) label;
    Array.fold_left max 0 sizes
  end

let boundary t set =
  let acc = ref [] in
  let seen = Bitset.create (n t) in
  Bitset.iter
    (fun u ->
      iter_neighbors t u (fun v ->
          if (not (Bitset.mem set v)) && not (Bitset.mem seen v) then begin
            Bitset.add seen v;
            acc := v :: !acc
          end))
    set;
  Array.of_list !acc

let boundary_size ?scratch t set =
  let seen =
    match scratch with
    | Some b ->
        if Bitset.capacity b < n t then
          invalid_arg "Snapshot.boundary_size: scratch capacity below n";
        Bitset.clear b;
        b
    | None -> Bitset.create (n t)
  in
  let count = ref 0 in
  (* Hoisted: allocating this closure per frontier node would swamp the
     probe kernel's allocation budget. *)
  let visit v =
    if (not (Bitset.mem set v)) && not (Bitset.mem seen v) then begin
      Bitset.add seen v;
      incr count
    end
  in
  Bitset.iter (fun u -> iter_neighbors t u visit) set;
  !count

let expansion ?scratch t set =
  let s = Bitset.cardinal set in
  if s = 0 then nan
  else float_of_int (boundary_size ?scratch t set) /. float_of_int s

let set_of_indices t indices =
  let set = Bitset.create (n t) in
  Array.iter (fun i -> Bitset.add set i) indices;
  set

let indices_by_age t = Array.init (n t) Fun.id

let degree_histogram t =
  let h = Array.make (max_degree t + 1) 0 in
  for i = 0 to n t - 1 do
    h.(degree t i) <- h.(degree t i) + 1
  done;
  h

let to_dot ?(name = "snapshot") ?(highlight = []) t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  Buffer.add_string buf "  node [shape=circle, fontsize=8];\n";
  let hl = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace hl i ()) highlight;
  Array.iteri
    (fun i id ->
      if Hashtbl.mem hl i then
        Buffer.add_string buf
          (Printf.sprintf "  n%d [label=\"%d\", style=filled, fillcolor=red];\n" i id)
      else Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%d\"];\n" i id))
    t.ids;
  for u = 0 to n t - 1 do
    iter_neighbors t u (fun v ->
        if v > u then Buffer.add_string buf (Printf.sprintf "  n%d -- n%d;\n" u v))
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
