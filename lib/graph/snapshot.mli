(** Immutable snapshot G_t = (N_t, E_t) of a dynamic graph, re-indexed to
    0..n-1, with the graph algorithms used by the expansion and flooding
    analyses (BFS, components, set boundaries, degree census).

    Index 0..n-1 ordering follows increasing node id, hence increasing
    birth time: index 0 is the oldest alive node.

    The adjacency is stored in CSR form (flat [offsets]/[neighbors]
    arrays): rows are sorted, distinct, and cache-linear to scan, and the
    analysis kernels (BFS, boundary, triangle counting) should iterate
    with {!iter_neighbors} / {!neighbor} / {!common_neighbors} rather than
    materializing per-row arrays with {!neighbors}. *)

type t

val make :
  ids:int array -> births:int array -> adj:int array array -> out_deg:int array -> t
(** Build a snapshot from raw arrays (used by tests and {!Event_log}
    replay).  [adj] rows must be sorted, symmetric and deduplicated;
    [ids] must be strictly increasing.  The rows are flattened into the
    CSR layout. *)

val of_csr :
  ids:int array ->
  births:int array ->
  offsets:int array ->
  adj:int array ->
  out_deg:int array ->
  t
(** Zero-copy constructor from an already-flat CSR adjacency (used by
    {!Dyngraph.snapshot}): row i is [adj.(offsets.(i)) ..
    adj.(offsets.(i+1) - 1)], sorted and distinct; [offsets] has length
    n+1 with [offsets.(0) = 0] and [offsets.(n) = Array.length adj].
    The arrays are owned by the snapshot afterwards — do not mutate. *)

val of_edges : n:int -> (int * int) list -> t
(** Convenience constructor for tests: nodes 0..n-1 with the given
    undirected edges (ids = indices, births = ids, out_deg = 0). *)

val n : t -> int
val ids : t -> int array
val id_of_index : t -> int -> int
val index_of_id : t -> int -> int option
val birth_of_index : t -> int -> int
val neighbors : t -> int -> int array
(** Adjacency of a snapshot index (distinct, sorted) as a fresh array —
    this copies the CSR row; hot paths should use {!iter_neighbors} or
    {!neighbor} instead. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Apply a function to each neighbor of an index, ascending, without
    allocating. *)

val neighbor : t -> int -> int -> int
(** [neighbor t i k] is the k-th smallest neighbor of index [i]
    (0 <= k < [degree t i]); O(1) CSR access. *)

val mem_edge : t -> int -> int -> bool
(** [mem_edge t i j] iff {i, j} is an edge — binary search in row [i],
    O(log degree). *)

val common_neighbors : t -> int -> int -> int
(** Number of shared neighbors of two indices, by sorted-row merge —
    the triangle-counting kernel of {!Metrics}. *)

val degree : t -> int -> int
val out_degree : t -> int -> int
val edge_count : t -> int
(** Number of undirected edges. *)

val max_degree : t -> int
val mean_degree : t -> float
val isolated : t -> int list
(** Snapshot indices with no neighbors. *)

val bfs : t -> int -> int array
(** [bfs t src] = distance array from snapshot index [src]; -1 means
    unreachable. *)

val components : t -> int array * int
(** Component label per index and the number of components. *)

val largest_component : t -> int
(** Size of the largest connected component. *)

val boundary : t -> Churnet_util.Bitset.t -> int array
(** Outer boundary of a set of snapshot indices:
    [∂out(S) = { v ∉ S : ∃ u ∈ S, {u,v} ∈ E }]. *)

val boundary_size : ?scratch:Churnet_util.Bitset.t -> t -> Churnet_util.Bitset.t -> int
(** [scratch], when given, is cleared and used as the dedup set instead of
    allocating a fresh bitset per call (its capacity must be >= [n]).
    The expansion probe calls this once per candidate set, so the reuse
    matters. *)

val expansion : ?scratch:Churnet_util.Bitset.t -> t -> Churnet_util.Bitset.t -> float
(** [|∂out(S)| / |S|]; [nan] on the empty set.  [scratch] as in
    {!boundary_size}. *)

val set_of_indices : t -> int array -> Churnet_util.Bitset.t
(** Bitset over snapshot indices. *)

val indices_by_age : t -> int array
(** All indices ordered oldest first (i.e. identity, by construction —
    provided for clarity at call sites). *)

val degree_histogram : t -> int array
(** [h.(k)] = number of vertices with degree [k]. *)

val to_dot : ?name:string -> ?highlight:int list -> t -> string
(** Graphviz DOT rendering (undirected).  Vertices are labelled by node
    id; indices in [highlight] are filled red — handy to visualize
    informed sets or low-expansion witnesses. *)
