(** Immutable snapshot G_t = (N_t, E_t) of a dynamic graph, re-indexed to
    0..n-1, with the graph algorithms used by the expansion and flooding
    analyses (BFS, components, set boundaries, degree census).

    Index 0..n-1 ordering follows increasing node id, hence increasing
    birth time: index 0 is the oldest alive node. *)

type t

val make :
  ids:int array -> births:int array -> adj:int array array -> out_deg:int array -> t
(** Build a snapshot from raw arrays (used by {!Dyngraph.snapshot} and by
    tests).  [adj] must be symmetric and deduplicated; [ids] must be
    strictly increasing. *)

val of_edges : n:int -> (int * int) list -> t
(** Convenience constructor for tests: nodes 0..n-1 with the given
    undirected edges (ids = indices, births = ids, out_deg = 0). *)

val n : t -> int
val ids : t -> int array
val id_of_index : t -> int -> int
val index_of_id : t -> int -> int option
val birth_of_index : t -> int -> int
val neighbors : t -> int -> int array
(** Adjacency of a snapshot index (distinct, sorted). *)

val degree : t -> int -> int
val out_degree : t -> int -> int
val edge_count : t -> int
(** Number of undirected edges. *)

val max_degree : t -> int
val mean_degree : t -> float
val isolated : t -> int list
(** Snapshot indices with no neighbors. *)

val bfs : t -> int -> int array
(** [bfs t src] = distance array from snapshot index [src]; -1 means
    unreachable. *)

val components : t -> int array * int
(** Component label per index and the number of components. *)

val largest_component : t -> int
(** Size of the largest connected component. *)

val boundary : t -> Churnet_util.Bitset.t -> int array
(** Outer boundary of a set of snapshot indices:
    [∂out(S) = { v ∉ S : ∃ u ∈ S, {u,v} ∈ E }]. *)

val boundary_size : ?scratch:Churnet_util.Bitset.t -> t -> Churnet_util.Bitset.t -> int
(** [scratch], when given, is cleared and used as the dedup set instead of
    allocating a fresh bitset per call (its capacity must be >= [n]).
    The expansion probe calls this once per candidate set, so the reuse
    matters. *)

val expansion : ?scratch:Churnet_util.Bitset.t -> t -> Churnet_util.Bitset.t -> float
(** [|∂out(S)| / |S|]; [nan] on the empty set.  [scratch] as in
    {!boundary_size}. *)

val set_of_indices : t -> int array -> Churnet_util.Bitset.t
(** Bitset over snapshot indices. *)

val indices_by_age : t -> int array
(** All indices ordered oldest first (i.e. identity, by construction —
    provided for clarity at call sites). *)

val degree_histogram : t -> int array
(** [h.(k)] = number of vertices with degree [k]. *)

val to_dot : ?name:string -> ?highlight:int list -> t -> string
(** Graphviz DOT rendering (undirected).  Vertices are labelled by node
    id; indices in [highlight] are filled red — handy to visualize
    informed sets or low-expansion witnesses. *)
