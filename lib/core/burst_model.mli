(** Adversarial burst churn on top of SDGR — a stress test in the spirit
    of the oblivious-adversary churn of Augustine et al. [2, 4] that the
    related-work section contrasts with the paper's random churn.

    The base process is the streaming model with edge regeneration
    (Definition 3.13).  Every [burst_every] rounds an oblivious adversary
    additionally removes [burst_size] uniformly random nodes and inserts
    the same number of newborns within the round, so the population stays
    n while the churn rate spikes to [burst_size] per round.  The X3
    experiment measures how far the O(log n) flooding of Theorem 3.16
    survives as the burst size grows towards n/polylog(n) — the regime
    where [2]'s protocol-based guarantees stop.

    Note on lifetimes: burst-inserted nodes are outside the deterministic
    streaming schedule, so they only leave the network through later
    bursts (which remove uniformly random nodes).  With periodic bursts
    this keeps the population exactly n while mixing deterministic and
    adversarial lifetimes — a strictly harsher regime than
    Definition 3.2. *)

type t

val create :
  rng:Churnet_util.Prng.t ->
  n:int ->
  d:int ->
  burst_every:int ->
  burst_size:int ->
  unit ->
  t

val n : t -> int
val d : t -> int
val graph : t -> Churnet_graph.Dyngraph.t
val step : t -> unit
(** One base streaming round; additionally fires a burst when the round
    counter hits a multiple of [burst_every]. *)

val run : t -> int -> unit
val warm_up : t -> unit
val round : t -> int
val newest : t -> Churnet_graph.Dyngraph.node_id
val snapshot : t -> Churnet_graph.Snapshot.t
val flood : ?max_rounds:int -> t -> Flood.trace
val bursts_fired : t -> int
