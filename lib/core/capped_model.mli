(** Bounded-degree dynamics — the paper's open question (Section 5).

    The PDGR model keeps out-degrees at d but lets in-degrees grow to
    Theta(log n); the paper closes by asking whether {e natural,
    fully-random} topology dynamics with bounded-degree snapshots can
    retain good expansion.  This model explores the simplest candidate:
    PDGR whose connection requests are {e rejected} by nodes already at an
    in-degree cap [c].  A request samples uniform alive nodes until it
    finds one below the cap (up to a retry budget; the slot is parked and
    retried at the next repair opportunity otherwise).

    With c = infinity this is exactly PDGR.  The X1 experiment measures
    how expansion and flooding degrade as [c] approaches [d]. *)

type t

val create :
  rng:Churnet_util.Prng.t ->
  ?retries:int ->
  n:int ->
  d:int ->
  cap:int ->
  unit ->
  t
(** [cap] is the maximum in-degree (distinct in-neighbors) a node accepts;
    must be >= 1.  [retries] bounds sampling attempts per request
    (default 16). *)

val n : t -> int
val d : t -> int
val cap : t -> int
val graph : t -> Churnet_graph.Dyngraph.t
val step : t -> unit
(** One churn jump plus a repair pass over nodes with parked slots. *)

val advance_time : t -> float -> unit
val warm_up : t -> unit
val time : t -> float
val snapshot : t -> Churnet_graph.Snapshot.t
val newest : t -> Churnet_graph.Dyngraph.node_id option

val flood : ?max_rounds:int -> t -> Flood.trace
(** Synchronous flooding with one round per unit of time, from the next
    newborn. *)

val max_in_degree : t -> int
val mean_out_degree : t -> float
val parked_slots : t -> int
(** Requests currently waiting because every sampled candidate was at the
    cap. *)
