module Dyngraph = Churnet_graph.Dyngraph
module Prng = Churnet_util.Prng

type strategy = Push | Pull | Push_pull

let strategy_name = function
  | Push -> "push"
  | Pull -> "pull"
  | Push_pull -> "push-pull"

type trace = {
  rounds : int;
  informed_per_round : int array;
  population_per_round : int array;
  completed : bool;
  completion_round : int option;
  peak_coverage : float;
  messages_sent : int;
  extinct : bool;
  extinction_round : int option;
}

(* Plant a source: advance churn until a birth happens, return the id. *)
let plant_source model =
  match model with
  | Models.Streaming m ->
      Streaming_model.step m;
      Streaming_model.newest m
  | Models.Poisson m ->
      let graph = Poisson_model.graph m in
      let rec until_birth () =
        let before = Dyngraph.alive_count graph in
        Poisson_model.step m;
        if Dyngraph.alive_count graph <= before then until_birth ()
      in
      until_birth ();
      (match Poisson_model.newest m with Some s -> s | None -> assert false)

let advance_one_round model = Models.advance_batch model 1

let newest_of model =
  match model with
  | Models.Streaming m -> Streaming_model.newest m
  | Models.Poisson m -> (
      match Poisson_model.newest m with Some s -> s | None -> -1)

let run ?max_rounds ~rng ~strategy model =
  let n = Models.n model in
  let max_rounds =
    Option.value ~default:(int_of_float (30. *. log (float_of_int n)) + 60) max_rounds
  in
  let graph = Models.graph model in
  let source = plant_source model in
  let informed : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  Hashtbl.replace informed source ();
  let informed_log = ref [ 1 ] in
  let population_log = ref [ Dyngraph.alive_count graph ] in
  let messages = ref 0 in
  let completed = ref false in
  let completion_round = ref None in
  let extinct = ref false in
  let extinction_round = ref None in
  let r = ref 0 in
  let random_neighbor id =
    match Dyngraph.neighbors graph id with
    | [] -> None
    | neigh -> Some (Prng.choose rng (Array.of_list neigh))
  in
  while (not !completed) && (not !extinct) && !r < max_rounds do
    incr r;
    (* Exchanges happen on the snapshot at the start of the round. *)
    let newly = ref [] in
    if strategy = Push || strategy = Push_pull then
      (* lint: allow no-hashtbl-order — push order follows the informed set's
         insertion history, itself a pure function of the seed; newly-informed
         nodes are applied in one batch after the sweep. *)
      Hashtbl.iter
        (fun u () ->
          if Dyngraph.is_alive graph u then begin
            match random_neighbor u with
            | Some v ->
                incr messages;
                if not (Hashtbl.mem informed v) then newly := v :: !newly
            | None -> ()
          end)
        informed;
    if strategy = Pull || strategy = Push_pull then
      Dyngraph.iter_alive graph (fun v ->
          if not (Hashtbl.mem informed v) then begin
            match random_neighbor v with
            | Some u ->
                incr messages;
                if Hashtbl.mem informed u then newly := v :: !newly
            | None -> ()
          end);
    List.iter (fun v -> Hashtbl.replace informed v ()) !newly;
    (* Churn advances one round / unit of time. *)
    advance_one_round model;
    (* Drop the dead. *)
    let dead = ref [] in
    (* lint: allow no-hashtbl-order — collects dead members for removal;
       removals commute. *)
    Hashtbl.iter
      (fun id () -> if not (Dyngraph.is_alive graph id) then dead := id :: !dead)
      informed;
    List.iter (Hashtbl.remove informed) !dead;
    let alive = Dyngraph.alive_count graph in
    let inf = Hashtbl.length informed in
    informed_log := inf :: !informed_log;
    population_log := alive :: !population_log;
    let newborn = newest_of model in
    let uninformed = alive - inf in
    if uninformed = 0 || (uninformed = 1 && not (Hashtbl.mem informed newborn)) then begin
      completed := true;
      completion_round := Some !r
    end
    else if inf = 0 then begin
      (* Extinction: every informed node died before passing the rumor
         on.  Stop at this round — clobbering the loop counter (the old
         [r := max_rounds] hack) both misreported [rounds] and silently
         conflated extinction with hitting the round bound. *)
      extinct := true;
      extinction_round := Some !r
    end
  done;
  let informed_per_round = Array.of_list (List.rev !informed_log) in
  let population_per_round = Array.of_list (List.rev !population_log) in
  let peak_coverage =
    let best = ref 0. in
    Array.iteri
      (fun i inf ->
        let pop = population_per_round.(i) in
        if pop > 0 then best := Float.max !best (float_of_int inf /. float_of_int pop))
      informed_per_round;
    !best
  in
  {
    rounds = Array.length informed_per_round - 1;
    informed_per_round;
    population_per_round;
    completed = !completed;
    completion_round = !completion_round;
    peak_coverage;
    messages_sent = !messages;
    extinct = !extinct;
    extinction_round = !extinction_round;
  }
