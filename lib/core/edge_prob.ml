module Dyngraph = Churnet_graph.Dyngraph
module Prng = Churnet_util.Prng

type bucket = {
  age_lo : int;
  age_hi : int;
  p_older : float;
  p_younger : float;
  predicted_older : float;
  bound_younger : float;
  samples : int;
}

type raw = {
  mutable slots_to_older : int;
  mutable slots_to_younger : int;
  mutable pair_slots_older : float; (* sum over sampled u of d * #older(u) *)
  mutable pair_slots_younger : float;
  mutable count : int;
}

let new_raw () =
  { slots_to_older = 0; slots_to_younger = 0; pair_slots_older = 0.;
    pair_slots_younger = 0.; count = 0 }

(* Aggregate one snapshot of [graph] into [raws], bucketing node ages with
   [bucket_of].  [age_of] gives a node's age; [older_count age] the number
   of alive nodes strictly older. *)
let aggregate graph ~bucket_of ~age_of =
  let ids = Dyngraph.alive_ids graph in
  Array.sort Int.compare ids;
  let total = Array.length ids in
  (* ids sorted ascending = youngest last; index i has (total - 1 - i)
     younger nodes?  ids ascend with birth order, so smaller id = older.
     For node at sorted position p (0 = oldest), #older = p. *)
  Array.iteri
    (fun pos id ->
      let age = age_of id in
      match bucket_of age with
      | None -> ()
      | Some raw ->
          let older = pos and younger = total - 1 - pos in
          let d = Dyngraph.d graph in
          raw.pair_slots_older <- raw.pair_slots_older +. float_of_int (d * older);
          raw.pair_slots_younger <- raw.pair_slots_younger +. float_of_int (d * younger);
          raw.count <- raw.count + 1;
          List.iter
            (fun target ->
              if target < id then raw.slots_to_older <- raw.slots_to_older + 1
              else raw.slots_to_younger <- raw.slots_to_younger + 1)
            (Dyngraph.out_targets graph id))
    ids

let finalize raws ~bounds ~predicted_older ~bound_younger =
  Array.mapi
    (fun i raw ->
      let lo, hi = bounds i in
      let mid = (lo + hi) / 2 in
      {
        age_lo = lo;
        age_hi = hi;
        p_older =
          (if raw.pair_slots_older > 0. then
             float_of_int raw.slots_to_older /. raw.pair_slots_older
           else nan);
        p_younger =
          (if raw.pair_slots_younger > 0. then
             float_of_int raw.slots_to_younger /. raw.pair_slots_younger
           else nan);
        predicted_older = predicted_older mid;
        bound_younger;
        samples = raw.count;
      })
    raws

let measure_streaming ~rng ~n ~d ~regenerate ~snapshots ~buckets () =
  let model = Streaming_model.create ~rng ~n ~d ~regenerate () in
  Streaming_model.warm_up model;
  let width = max 1 (n / buckets) in
  let raws = Array.init buckets (fun _ -> new_raw ()) in
  let bucket_of age =
    if age < 1 || age > n then None
    else begin
      let b = min (buckets - 1) ((age - 1) / width) in
      Some raws.(b)
    end
  in
  for _ = 1 to snapshots do
    let graph = Streaming_model.graph model in
    aggregate graph ~bucket_of ~age_of:(fun id -> Streaming_model.age_of model id);
    Streaming_model.run model (n / 2)
  done;
  let fn = float_of_int n in
  finalize raws
    ~bounds:(fun i -> ((i * width) + 1, min n ((i + 1) * width)))
    ~predicted_older:(fun mid ->
      if regenerate then
        (* Lemma 3.14: (1/(n-1)) (1 + 1/(n-1))^k with k = age - 1. *)
        1. /. (fn -. 1.) *. ((1. +. (1. /. (fn -. 1.))) ** float_of_int (max 0 (mid - 1)))
      else 1. /. (fn -. 1.))
    ~bound_younger:(1. /. (fn -. 1.))

let measure_poisson ~rng ~n ~d ~regenerate ~snapshots ~buckets () =
  let model = Poisson_model.create ~rng ~n ~d ~regenerate () in
  Poisson_model.warm_up model;
  let max_age = 4 * n in
  let width = max 1 (max_age / buckets) in
  let raws = Array.init buckets (fun _ -> new_raw ()) in
  let bucket_of age =
    if age < 0 || age >= max_age then None
    else Some raws.(min (buckets - 1) (age / width))
  in
  for _ = 1 to snapshots do
    let graph = Poisson_model.graph model in
    let now = Poisson_model.round model in
    aggregate graph ~bucket_of
      ~age_of:(fun id -> now - Dyngraph.birth_of graph id);
    Poisson_model.run_rounds model n
  done;
  let fn = float_of_int n in
  finalize raws
    ~bounds:(fun i -> (i * width, min max_age ((i + 1) * width)))
    ~predicted_older:(fun mid ->
      if regenerate then
        (* Lemma 4.15's upper bound (1/(0.8 n)) (1 + i/(1.7 n)). *)
        1. /. (0.8 *. fn) *. (1. +. (float_of_int mid /. (1.7 *. fn)))
      else 1. /. fn)
    ~bound_younger:(1. /. (0.8 *. fn))
