type kind = SDG | SDGR | PDG | PDGR

let all_kinds = [ SDG; SDGR; PDG; PDGR ]

let kind_name = function
  | SDG -> "SDG"
  | SDGR -> "SDGR"
  | PDG -> "PDG"
  | PDGR -> "PDGR"

let kind_of_string s =
  match String.uppercase_ascii s with
  | "SDG" -> Some SDG
  | "SDGR" -> Some SDGR
  | "PDG" -> Some PDG
  | "PDGR" -> Some PDGR
  | _ -> None

let is_streaming = function SDG | SDGR -> true | PDG | PDGR -> false
let regenerates = function SDGR | PDGR -> true | SDG | PDG -> false

type t = Streaming of Streaming_model.t | Poisson of Poisson_model.t

let create ~rng ?(lambda = 1.0) kind ~n ~d =
  if is_streaming kind then begin
    (* Streaming churn (Definition 3.2) has no rate parameter: one birth
       per round, lifetime exactly n.  Refuse a lambda that could not
       take effect rather than silently ignore it. *)
    if lambda <> 1.0 then
      invalid_arg
        (Printf.sprintf
           "Models.create: %s is a streaming model; lambda = %g is not \
            expressible (only Poisson models take an arrival rate)"
           (kind_name kind) lambda);
    Streaming (Streaming_model.create ~rng ~n ~d ~regenerate:(regenerates kind) ())
  end
  else Poisson (Poisson_model.create ~rng ~lambda ~n ~d ~regenerate:(regenerates kind) ())

let kind = function
  | Streaming m -> if Streaming_model.regenerates m then SDGR else SDG
  | Poisson m -> if Poisson_model.regenerates m then PDGR else PDG

let n = function Streaming m -> Streaming_model.n m | Poisson m -> Poisson_model.n m
let d = function Streaming m -> Streaming_model.d m | Poisson m -> Poisson_model.d m

let graph = function
  | Streaming m -> Streaming_model.graph m
  | Poisson m -> Poisson_model.graph m

let warm_up = function
  | Streaming m -> Streaming_model.warm_up m
  | Poisson m -> Poisson_model.warm_up m

let snapshot = function
  | Streaming m -> Streaming_model.snapshot m
  | Poisson m -> Poisson_model.snapshot m

let advance t k =
  match t with
  | Streaming m -> Streaming_model.run m k
  | Poisson m -> Poisson_model.run_until_time m (Poisson_model.time m +. float_of_int k)

let advance_batch t k =
  match t with
  | Streaming m -> Streaming_model.run m k
  | Poisson m ->
      Poisson_model.run_until_time_batched m (Poisson_model.time m +. float_of_int k)

let warm_up_batch = function
  | Streaming m -> Streaming_model.warm_up m
  | Poisson m -> Poisson_model.warm_up_batched m

let flood ?max_rounds t =
  match t with
  | Streaming m -> Flood.run_streaming ?max_rounds m
  | Poisson m -> Flood.run_poisson_discretized ?max_rounds m

module Codec = Churnet_util.Codec

let encode w = function
  | Streaming m ->
      Codec.u8 w 0;
      Streaming_model.encode w m
  | Poisson m ->
      Codec.u8 w 1;
      Poisson_model.encode w m

let decode r =
  match Codec.read_u8 r with
  | 0 -> Streaming (Streaming_model.decode r)
  | 1 -> Poisson (Poisson_model.decode r)
  | b -> raise (Codec.Error (Printf.sprintf "Models.decode: bad model tag %d" b))
