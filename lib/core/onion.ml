module Prng = Churnet_util.Prng

type result = {
  phases : int;
  y_layer_sizes : int array;
  o_layer_sizes : int array;
  total_young : int;
  total_old : int;
  reached_target : bool;
  growth_factors : float array;
}

(* Node of age a (1 <= a <= n; the source s has age 0 = just joined).
   At its birth the alive population consisted of the nodes of current
   age a+1 .. a+n-1 (n-1 of them); a request target of current age > n-1+?
   ... any target of current age >= n is already dead at t0. *)

(* --- resumable phase state ------------------------------------------ *)

(* The streaming onion-skin process consumes ALL of its randomness at
   materialization ({!start} samples every request up front, deferred
   decisions made concrete); the phase loop is purely deterministic.
   The state below is therefore self-contained: serialize it between
   phases and the resumed process replays identically with no PRNG to
   restore.  [prev_set] is per-phase staging (cleared before use) and is
   recreated empty on decode. *)
type state = {
  n : int;
  d : int;
  young_requests : int array array;
  y_phase : int array; (* 0 = untouched, k > 0 = joined at phase k *)
  o_phase : int array;
  mutable y_layers : int list; (* head = latest phase *)
  mutable o_layers : int list;
  mutable prev_o_layer : int list;
  mutable total_y : int;
  mutable total_o : int;
  mutable phase : int;
  mutable running : bool;
  prev_set : Churnet_util.Bitset.t; (* transient *)
}

let state_phase st = st.phase
let state_finished st = not st.running

module Codec = Churnet_util.Codec

let encode_state w st =
  Codec.varint w st.n;
  Codec.varint w st.d;
  Codec.array (fun w a -> Codec.int_array w a) w st.young_requests;
  Codec.int_array w st.y_phase;
  Codec.int_array w st.o_phase;
  Codec.int_list w st.y_layers;
  Codec.int_list w st.o_layers;
  Codec.int_list w st.prev_o_layer;
  Codec.varint w st.total_y;
  Codec.varint w st.total_o;
  Codec.varint w st.phase;
  Codec.bool w st.running

let decode_state r =
  let n = Codec.read_varint r in
  let d = Codec.read_varint r in
  let young_requests = Codec.read_array (fun r -> Codec.read_int_array r) r in
  let y_phase = Codec.read_int_array r in
  let o_phase = Codec.read_int_array r in
  let y_layers = Codec.read_int_list r in
  let o_layers = Codec.read_int_list r in
  let prev_o_layer = Codec.read_int_list r in
  let total_y = Codec.read_varint r in
  let total_o = Codec.read_varint r in
  let phase = Codec.read_varint r in
  let running = Codec.read_bool r in
  if
    n < 16 || d < 2
    || Array.length young_requests <> n / 2
    || Array.length y_phase <> n + 1
    || Array.length o_phase <> n + 1
    || phase < 0 || total_y < 0 || total_o < 0
    || List.length y_layers <> phase
    || List.length o_layers <> phase + 1
  then raise (Codec.Error "Onion.decode_state: inconsistent fields");
  {
    n;
    d;
    young_requests;
    y_phase;
    o_phase;
    y_layers;
    o_layers;
    prev_o_layer;
    total_y;
    total_o;
    phase;
    running;
    prev_set = Churnet_util.Bitset.create (n + 1);
  }

let target_of ~n ~d = max 1 (n / d)
let logn_of n = int_of_float (Float.ceil (log (float_of_int n)))

let start ~rng ~n ~d () =
  if d < 2 || d mod 2 <> 0 then invalid_arg "Onion.run: d must be even and >= 2";
  if n < 16 then invalid_arg "Onion.run: n too small";
  let logn = logn_of n in
  let half = n / 2 in
  let is_young a = a >= 1 && a < half in
  let is_old a = a >= half && a <= n - logn in
  (* Sample every node's requests once (deferred decision, materialized).
     requests.(a).(i) = current age of the target of request i of the node
     with age a; targets with age >= n are dead (encoded as -1). *)
  let sample_request a =
    let target_age = a + 1 + Prng.int rng (n - 1) in
    if target_age >= n then -1 else target_age
  in
  (* Source requests: age 0, full d requests allowed (Phase 0). *)
  let source_requests = Array.init d (fun _ -> sample_request 0) in
  let young_requests =
    (* Only young nodes ever reveal requests in phases >= 1. *)
    Array.init half (fun a -> if is_young a then Array.init d (fun _ -> sample_request a) else [||])
  in
  (* Membership per age: 0 = untouched, k>0 = joined at phase k. *)
  let y_phase = Array.make (n + 1) 0 in
  let o_phase = Array.make (n + 1) 0 in
  (* Phase 0: source links to old nodes. *)
  let o0 = ref [] in
  Array.iter
    (fun t -> if t >= 0 && is_old t && o_phase.(t) = 0 then begin
         o_phase.(t) <- 1;
         o0 := t :: !o0
       end)
    source_requests;
  {
    n;
    d;
    young_requests;
    y_phase;
    o_phase;
    y_layers = [];
    o_layers = [ List.length !o0 ];
    prev_o_layer = !o0;
    total_y = 0;
    total_o = List.length !o0;
    phase = 0;
    running = List.length !o0 > 0;
    prev_set = Churnet_util.Bitset.create (n + 1);
  }

let phase_step st =
  let n = st.n and d = st.d in
  let logn = logn_of n in
  let half = n / 2 in
  let is_young a = a >= 1 && a < half in
  let is_old a = a >= half && a <= n - logn in
  let target = target_of ~n ~d in
  st.phase <- st.phase + 1;
  let k = st.phase in
  (* Step 1: young nodes not yet informed whose type-B request
     (indices d/2 .. d-1) hits the previous old layer. *)
  Churnet_util.Bitset.clear st.prev_set;
  List.iter (fun a -> Churnet_util.Bitset.add st.prev_set a) st.prev_o_layer;
  let new_young = ref [] in
  for a = 1 to half - 1 do
    if is_young a && st.y_phase.(a) = 0 then begin
      let hit = ref false in
      for i = d / 2 to d - 1 do
        let t = st.young_requests.(a).(i) in
        if t >= 0 && Churnet_util.Bitset.mem st.prev_set t then hit := true
      done;
      if !hit then begin
        st.y_phase.(a) <- k;
        new_young := a :: !new_young
      end
    end
  done;
  let ny = List.length !new_young in
  st.y_layers <- ny :: st.y_layers;
  st.total_y <- st.total_y + ny;
  (* Step 2: old nodes hit by a type-A request (indices 0 .. d/2-1)
     of the newly informed young nodes. *)
  let new_old = ref [] in
  List.iter
    (fun a ->
      for i = 0 to (d / 2) - 1 do
        let t = st.young_requests.(a).(i) in
        if t >= 0 && is_old t && st.o_phase.(t) = 0 then begin
          st.o_phase.(t) <- k;
          new_old := t :: !new_old
        end
      done)
    !new_young;
  let no = List.length !new_old in
  st.o_layers <- no :: st.o_layers;
  st.total_o <- st.total_o + no;
  st.prev_o_layer <- !new_old;
  (* Stop when layers die out, the target is met, or we are clearly in
     the saturation regime. *)
  if ny = 0 || no = 0 then st.running <- false;
  if st.total_y >= target && st.total_o >= target then st.running <- false;
  if st.phase > (4 * logn) + 8 then st.running <- false

let finish_state st =
  let target = target_of ~n:st.n ~d:st.d in
  let o_layer_sizes = Array.of_list (List.rev st.o_layers) in
  let y_layer_sizes = Array.of_list (List.rev st.y_layers) in
  let growth_factors =
    (* Interleave o/y layers in temporal order: O_0, Y_1, O_1, Y_2, ... *)
    let temporal = ref [] in
    let oy = Array.length o_layer_sizes and yy = Array.length y_layer_sizes in
    for k = 0 to max oy yy - 1 do
      if k < oy then temporal := float_of_int o_layer_sizes.(k) :: !temporal;
      if k < yy then temporal := float_of_int y_layer_sizes.(k) :: !temporal
    done;
    (* temporal currently holds O_0, Y_1, O_1, ... reversed; restore order *)
    let temporal = Array.of_list (List.rev !temporal) in
    (* Note: loop above pushed O_k then Y_k; the paper's order is O_0,
       Y_1, O_1, Y_2 ... which matches since Y_0 is the source alone. *)
    let m = Array.length temporal in
    if m < 2 then [||]
    else
      Array.init (m - 1) (fun i ->
          if temporal.(i) > 0. then temporal.(i + 1) /. temporal.(i) else nan)
  in
  {
    phases = st.phase;
    y_layer_sizes;
    o_layer_sizes;
    total_young = st.total_y;
    total_old = st.total_o;
    reached_target = st.total_y >= target && st.total_o >= target;
    growth_factors;
  }

let run ~rng ~n ~d () =
  let st = start ~rng ~n ~d () in
  while not (state_finished st) do
    phase_step st
  done;
  finish_state st

let success_probability ~rng ~n ~d ~trials () =
  let ok = ref 0 in
  for _ = 1 to trials do
    let r = run ~rng:(Prng.split rng) ~n ~d () in
    if r.reached_target then incr ok
  done;
  float_of_int !ok /. float_of_int trials

(* Extended (Poisson) onion-skin process, Section 7.2.4.

   Population: the m = n nodes alive at t0, ranked 1..n from youngest to
   oldest.  Young = ranks 1..n/2, old = the rest.  Under deferred
   decisions a request of any node targets a (near-)uniform member of the
   population; we sample targets uniformly over 1..n excluding the
   requester.  Each node reached for the first time flips a death coin
   with probability ln n / n and, if it dies, joins no layer. *)
let run_poisson ~rng ~n ~d () =
  if d < 2 || d mod 2 <> 0 then invalid_arg "Onion.run_poisson: d must be even and >= 2";
  if n < 16 then invalid_arg "Onion.run_poisson: n too small";
  let fn = float_of_int n in
  let p_die = log fn /. fn in
  let half = n / 2 in
  let is_young r = r >= 1 && r <= half in
  let is_old r = r > half && r <= n in
  let sample_target self =
    let rec go () =
      let t = 1 + Prng.int rng n in
      if t = self then go () else t
    in
    go ()
  in
  (* Deferred decisions, materialized once per young node (only young
     nodes ever issue requests in phases >= 1; the source is rank 0,
     outside the population, with its own d requests). *)
  let source_requests = Array.init d (fun _ -> 1 + Prng.int rng n) in
  let young_requests =
    Array.init (half + 1) (fun r ->
        if r >= 1 then Array.init d (fun _ -> sample_target r) else [||])
  in
  let dead = Array.make (n + 1) false in
  let roll_death r = if Prng.bernoulli rng p_die then dead.(r) <- true in
  let y_phase = Array.make (n + 1) 0 in
  let o_phase = Array.make (n + 1) 0 in
  let o_layers = ref [] and y_layers = ref [] in
  (* Phase 0: the source's links to old nodes. *)
  let o0 = ref [] in
  Array.iter
    (fun t ->
      if is_old t && o_phase.(t) = 0 && not dead.(t) then begin
        roll_death t;
        if not dead.(t) then begin
          o_phase.(t) <- 1;
          o0 := t :: !o0
        end
      end)
    source_requests;
  o_layers := [ List.length !o0 ];
  let prev_o_layer = ref !o0 in
  let total_y = ref 0 and total_o = ref (List.length !o0) in
  let target = max 1 (n / 20) in
  let phase = ref 0 in
  let logn = int_of_float (Float.ceil (log fn)) in
  (* Reused across phases: membership of the previous old layer. *)
  let prev_set = Churnet_util.Bitset.create (n + 1) in
  let continue = ref (List.length !o0 > 0) in
  while !continue do
    incr phase;
    let k = !phase in
    Churnet_util.Bitset.clear prev_set;
    List.iter (fun a -> Churnet_util.Bitset.add prev_set a) !prev_o_layer;
    (* Step 1: fresh young nodes whose type-B request hits the previous
       old layer; each flips the death coin on first contact. *)
    let new_young = ref [] in
    for r = 1 to half do
      if is_young r && y_phase.(r) = 0 && not dead.(r) then begin
        let hit = ref false in
        for i = d / 2 to d - 1 do
          if Churnet_util.Bitset.mem prev_set young_requests.(r).(i) then hit := true
        done;
        if !hit then begin
          roll_death r;
          if not dead.(r) then begin
            y_phase.(r) <- k;
            new_young := r :: !new_young
          end
        end
      end
    done;
    let ny = List.length !new_young in
    y_layers := ny :: !y_layers;
    total_y := !total_y + ny;
    (* Step 2: old nodes hit by a type-A request of the new young layer. *)
    let new_old = ref [] in
    List.iter
      (fun r ->
        for i = 0 to (d / 2) - 1 do
          let t = young_requests.(r).(i) in
          if is_old t && o_phase.(t) = 0 && not dead.(t) then begin
            roll_death t;
            if not dead.(t) then begin
              o_phase.(t) <- k;
              new_old := t :: !new_old
            end
          end
        done)
      !new_young;
    let no = List.length !new_old in
    o_layers := no :: !o_layers;
    total_o := !total_o + no;
    prev_o_layer := !new_old;
    if ny = 0 || no = 0 then continue := false;
    if !total_y >= target && !total_o >= target then continue := false;
    if !phase > (4 * logn) + 8 then continue := false
  done;
  let o_layer_sizes = Array.of_list (List.rev !o_layers) in
  let y_layer_sizes = Array.of_list (List.rev !y_layers) in
  let growth_factors =
    let temporal = ref [] in
    let oy = Array.length o_layer_sizes and yy = Array.length y_layer_sizes in
    for k = 0 to max oy yy - 1 do
      if k < oy then temporal := float_of_int o_layer_sizes.(k) :: !temporal;
      if k < yy then temporal := float_of_int y_layer_sizes.(k) :: !temporal
    done;
    let temporal = Array.of_list (List.rev !temporal) in
    let m = Array.length temporal in
    if m < 2 then [||]
    else
      Array.init (m - 1) (fun i ->
          if temporal.(i) > 0. then temporal.(i + 1) /. temporal.(i) else nan)
  in
  {
    phases = !phase;
    y_layer_sizes;
    o_layer_sizes;
    total_young = !total_y;
    total_old = !total_o;
    reached_target = !total_y >= target && !total_o >= target;
    growth_factors;
  }

let success_probability_poisson ~rng ~n ~d ~trials () =
  let ok = ref 0 in
  for _ = 1 to trials do
    let r = run_poisson ~rng:(Prng.split rng) ~n ~d () in
    if r.reached_target then incr ok
  done;
  float_of_int !ok /. float_of_int trials
