module Dyngraph = Churnet_graph.Dyngraph
module Bitset = Churnet_util.Bitset
module Intvec = Churnet_util.Intvec

type trace = {
  rounds : int;
  informed_per_round : int array;
  population_per_round : int array;
  completed : bool;
  completion_round : int option;
  peak_informed : int;
  peak_coverage : float;
  final_informed : int;
  final_population : int;
  extinct : bool;
  extinction_round : int option;
}

let coverage_at tr k =
  let len = Array.length tr.informed_per_round in
  if len = 0 then nan
  else begin
    let i = min k (len - 1) in
    let pop = tr.population_per_round.(i) in
    (* Post-extinction rounds can have an empty population; coverage is
       then undefined — a deliberate nan, not an accidental inf. *)
    if pop <= 0 then nan
    else float_of_int tr.informed_per_round.(i) /. float_of_int pop
  end

(* Shared trace assembly from per-round logs. *)
let finish ~completed ~completion_round ~extinct ~extinction_round informed_log
    population_log =
  let informed_per_round = Array.of_list (List.rev informed_log) in
  let population_per_round = Array.of_list (List.rev population_log) in
  let peak_informed = Array.fold_left max 0 informed_per_round in
  let peak_coverage =
    (* nan until a round with a live population contributes: a trace whose
       population was empty throughout has no defined coverage. *)
    let best = ref nan in
    Array.iteri
      (fun i inf ->
        let pop = population_per_round.(i) in
        if pop > 0 then begin
          let c = float_of_int inf /. float_of_int pop in
          if Float.is_nan !best || c > !best then best := c
        end)
      informed_per_round;
    !best
  in
  let len = Array.length informed_per_round in
  {
    rounds = len - 1;
    informed_per_round;
    population_per_round;
    completed;
    completion_round;
    peak_informed;
    peak_coverage;
    final_informed = (if len = 0 then 0 else informed_per_round.(len - 1));
    final_population = (if len = 0 then 0 else population_per_round.(len - 1));
    extinct;
    extinction_round;
  }

(* The informed set is a bitset over node ids.  Ids grow without bound
   under churn, so membership tests must tolerate ids beyond the current
   capacity and insertions must grow it. *)
let bs_mem bs id = id < Bitset.capacity bs && Bitset.mem bs id

let bs_add bs id =
  Bitset.ensure_capacity bs (id + 1);
  Bitset.add bs id

exception Found

(* Grow the informed set by one synchronous hop on the current graph.
   Scans whichever side of the cut is smaller: the informed set's
   neighborhoods, or the uninformed nodes' neighborhoods.  [scratch] is
   cleared and used to stage the newly informed ids, so the hot path
   allocates nothing (the informed set itself only reallocates on
   capacity doubling). *)
let expand_informed graph informed scratch =
  let alive = Dyngraph.alive_count graph in
  (* informed <= alive: callers prune dead ids after every churn step. *)
  let informed_alive = Bitset.cardinal informed in
  Intvec.clear scratch;
  (* Hoisted out of the scan loops: closures allocated per scanned node
     would dominate the hop's allocation budget. *)
  let stage v = if not (bs_mem informed v) then Intvec.push scratch v in
  let mark_found u = if bs_mem informed u then raise_notrace Found in
  if informed_alive <= alive - informed_alive then
    Bitset.iter
      (fun u ->
        if Dyngraph.is_alive graph u then
          Dyngraph.iter_neighbors graph u stage)
      informed
  else
    Dyngraph.iter_alive graph (fun v ->
        if not (bs_mem informed v) then
          let touches_informed =
            match Dyngraph.iter_neighbors graph v mark_found with
            | () -> false
            | exception Found -> true
          in
          if touches_informed then Intvec.push scratch v);
  Intvec.iter (fun v -> bs_add informed v) scratch

(* Frontier-based hop: scan only the informed nodes that can still have
   uninformed neighbors, instead of re-scanning the full informed set.

   Invariant (holds on entry): every alive uninformed node adjacent to an
   informed node is adjacent to a member of [frontier].  Proof sketch of
   maintenance: a hop informs every alive uninformed neighbor of every
   frontier node, so right after the hop no scanned node has an
   uninformed neighbor.  Between hops the pairs (informed u, uninformed
   alive v) adjacent to each other can only be created by (a) a node
   informed in the hop itself — it enters the new frontier below — or
   (b) an edge created during churn with exactly one informed endpoint —
   the caller re-arms that endpoint via {!frontier_arm} from the graph's
   edge hook (births, regeneration and protocol [connect] all fire it).
   Deaths only remove edges and informed nodes never become uninformed,
   so nothing else can break the invariant.  Consequently the hop informs
   exactly the same set a full rescan would, in the same ascending-id
   staging order — traces are byte-identical, only cheaper. *)
let expand_informed_frontier graph informed frontier scratch =
  Intvec.clear scratch;
  let stage v = if not (bs_mem informed v) then Intvec.push scratch v in
  Bitset.iter
    (fun u ->
      if bs_mem informed u && Dyngraph.is_alive graph u then
        Dyngraph.iter_neighbors graph u stage)
    frontier;
  Bitset.clear frontier;
  Intvec.iter
    (fun v ->
      bs_add informed v;
      Bitset.ensure_capacity frontier (v + 1);
      Bitset.add frontier v)
    scratch

let frontier_arm frontier id =
  Bitset.ensure_capacity frontier (id + 1);
  Bitset.add frontier id

(* Adaptive hop: the frontier hop and the full rescan inform the same
   set (see above), so each round can pick whichever is cheaper without
   any observable difference.  Rough operation counts: a frontier hop
   scans the frontier bitset words plus a full neighbor iteration per
   frontier member; a rescan scans the smaller of the informed /
   uninformed sides, where the uninformed side costs one membership test
   per alive node (iter_alive) plus an early-exiting neighbor probe per
   uninformed node.  The frontier wins in the sparse early rounds and in
   the long near-complete tail (where the rescan still sweeps every
   alive node); the rescan wins in the one or two crossover rounds where
   the frontier is a large fraction of the graph. *)
let expand_informed_auto graph informed frontier scratch =
  let deg = 2 * Dyngraph.d graph in
  let alive = Dyngraph.alive_count graph in
  let inf = Bitset.cardinal informed in
  let frontier_cost =
    (Bitset.capacity frontier / 64) + (Bitset.cardinal frontier * deg)
  in
  let rescan_cost =
    if inf <= alive - inf then (Bitset.capacity informed / 64) + (inf * deg)
    else alive + ((alive - inf) * 2)
  in
  if frontier_cost <= rescan_cost then
    expand_informed_frontier graph informed frontier scratch
  else begin
    expand_informed graph informed scratch;
    (* [expand_informed] leaves [scratch] holding the newly informed ids
       (possibly with duplicates) — exactly the next frontier. *)
    Bitset.clear frontier;
    Intvec.iter (fun v -> frontier_arm frontier v) scratch
  end

let prune_dead graph informed scratch =
  Intvec.clear scratch;
  Bitset.iter
    (fun id -> if not (Dyngraph.is_alive graph id) then Intvec.push scratch id)
    informed;
  Intvec.iter (fun id -> Bitset.remove informed id) scratch

(* --- resumable cross-round state ------------------------------------ *)

(* Everything flooding carries from one round to the next, factored out
   of the run loops so it can be serialized mid-flood (checkpointing)
   and so both the synchronous and discretized drivers share one shape.
   [scratch] and [candidates] are per-round staging space: cleared
   before every use, hence transient and recreated on decode.
   [frontier] is the synchronous driver's set of informed nodes that may
   still have uninformed neighbors; it is an optimization cache, not
   state — rebuilding it conservatively as the whole informed set (what
   {!decode_state} does) changes nothing observable, so the checkpoint
   format carries no frontier field. *)
type state = {
  informed : Bitset.t;
  frontier : Bitset.t; (* transient cache; see above *)
  scratch : Intvec.t; (* transient *)
  candidates : Intvec.t; (* transient; used by the discretized driver *)
  mutable informed_log : int list; (* head = latest round *)
  mutable population_log : int list;
  mutable round : int;
  max_rounds : int;
  mutable completed : bool;
  mutable completion_round : int option;
  mutable extinct : bool;
  mutable extinction_round : int option;
}

let state_round st = st.round
let state_finished st = st.completed || st.extinct || st.round >= st.max_rounds

let finish_state st =
  finish ~completed:st.completed ~completion_round:st.completion_round
    ~extinct:st.extinct ~extinction_round:st.extinction_round st.informed_log
    st.population_log

module Codec = Churnet_util.Codec

let encode_state w st =
  Bitset.encode w st.informed;
  Codec.int_list w st.informed_log;
  Codec.int_list w st.population_log;
  Codec.varint w st.round;
  Codec.varint w st.max_rounds;
  Codec.bool w st.completed;
  Codec.option (fun w r -> Codec.varint w r) w st.completion_round;
  Codec.bool w st.extinct;
  Codec.option (fun w r -> Codec.varint w r) w st.extinction_round

let decode_state r =
  let informed = Bitset.decode r in
  let informed_log = Codec.read_int_list r in
  let population_log = Codec.read_int_list r in
  let round = Codec.read_varint r in
  let max_rounds = Codec.read_varint r in
  let completed = Codec.read_bool r in
  let completion_round = Codec.read_option (fun r -> Codec.read_varint r) r in
  let extinct = Codec.read_bool r in
  let extinction_round = Codec.read_option (fun r -> Codec.read_varint r) r in
  if
    round < 0 || max_rounds < 0
    || List.length informed_log <> round + 1
    || List.length population_log <> round + 1
    || (completed && completion_round = None)
    || (extinct && extinction_round = None)
  then raise (Codec.Error "Flood.decode_state: inconsistent fields");
  {
    informed;
    (* Conservative frontier: rescanning every informed node on the first
       post-resume hop yields the same newly-informed set as the exact
       frontier would (scanning a superset never changes the result). *)
    frontier = Bitset.copy informed;
    scratch = Intvec.create ~capacity:256 ();
    candidates = Intvec.create ~capacity:1024 ();
    informed_log;
    population_log;
    round;
    max_rounds;
    completed;
    completion_round;
    extinct;
    extinction_round;
  }

let make_state ~max_rounds ~source ~population =
  let informed = Bitset.create (source + 64) in
  Bitset.add informed source;
  let frontier = Bitset.create (source + 64) in
  Bitset.add frontier source;
  {
    informed;
    frontier;
    scratch = Intvec.create ~capacity:256 ();
    candidates = Intvec.create ~capacity:1024 ();
    informed_log = [ 1 ];
    population_log = [ population ];
    round = 0;
    max_rounds;
    completed = false;
    completion_round = None;
    extinct = false;
    extinction_round = None;
  }

let sync_start ~max_rounds ~graph ~step ~newest =
  (* The source is the node joining the network at round t0. *)
  step ();
  let source = newest () in
  make_state ~max_rounds ~source ~population:(Dyngraph.alive_count graph)

let sync_round ~graph ~step ~newest st =
  st.round <- st.round + 1;
  (* I_t = (I_{t-1} U boundary in G_{t-1}) /\ N_t *)
  expand_informed_auto graph st.informed st.frontier st.scratch;
  (* During churn, an edge with exactly one informed endpoint can put an
     uninformed node next to a long-informed one; re-arm that endpoint so
     the next hop rescans it (see expand_informed_frontier).  Chain to
     any hook already installed (e.g. an event recorder) and restore it
     afterwards. *)
  let prev_hook = Dyngraph.edge_hook graph in
  Dyngraph.set_edge_hook graph
    (Some
       (fun ~src ~dst ->
         (match prev_hook with None -> () | Some f -> f ~src ~dst);
         let src_informed = bs_mem st.informed src in
         let dst_informed = bs_mem st.informed dst in
         if src_informed && not dst_informed then frontier_arm st.frontier src
         else if dst_informed && not src_informed then frontier_arm st.frontier dst));
  step ();
  Dyngraph.set_edge_hook graph prev_hook;
  prune_dead graph st.informed st.scratch;
  let alive = Dyngraph.alive_count graph in
  let inf = Bitset.cardinal st.informed in
  st.informed_log <- inf :: st.informed_log;
  st.population_log <- alive :: st.population_log;
  let newborn = newest () in
  let uninformed = alive - inf in
  if uninformed = 0 || (uninformed = 1 && not (bs_mem st.informed newborn)) then begin
    st.completed <- true;
    st.completion_round <- Some st.round
  end
  else if inf = 0 then begin
    (* Extinction: every informed node died before passing the message
       on.  Nothing can revive the flood, so stop here instead of
       spinning to [max_rounds]. *)
    st.extinct <- true;
    st.extinction_round <- Some st.round
  end

let run_custom ?max_rounds ~graph ~step ~newest ~default_max_rounds () =
  let max_rounds = Option.value ~default:default_max_rounds max_rounds in
  let st = sync_start ~max_rounds ~graph ~step ~newest in
  while not (state_finished st) do
    sync_round ~graph ~step ~newest st
  done;
  finish_state st

let run_streaming ?max_rounds model =
  let n = Streaming_model.n model in
  run_custom ?max_rounds
    ~graph:(Streaming_model.graph model)
    ~step:(fun () -> Streaming_model.step model)
    ~newest:(fun () -> Streaming_model.newest model)
    ~default_max_rounds:(4 * n) ()

(* Candidate edges recorded at the start of a unit interval are
   flat-encoded as 4 consecutive ints in a scratch vector:
   [owner]'s out-slot [slot] pointed at [other]; the uninformed endpoint
   was [learner].  The message crosses only if the same slot still holds
   the same target at the end of the interval and both endpoints
   survived. *)

let poisson_start ~max_rounds model =
  let graph = Poisson_model.graph model in
  (* Flood from the next newborn: advance jumps until a birth occurs. *)
  let rec until_birth () =
    let before = Dyngraph.alive_count graph in
    Poisson_model.step model;
    if Dyngraph.alive_count graph <= before then until_birth ()
  in
  until_birth ();
  let source =
    match Poisson_model.newest model with Some s -> s | None -> assert false
  in
  make_state ~max_rounds ~source ~population:(Dyngraph.alive_count graph)

let poisson_round model st =
  let graph = Poisson_model.graph model in
  let d = Dyngraph.d graph in
  let informed = st.informed in
  let candidates = st.candidates in
  st.round <- st.round + 1;
  (* Record the informed-to-uninformed edges present at time t. *)
  Intvec.clear candidates;
  let push_candidate ~owner ~slot ~other ~learner =
    Intvec.push candidates owner;
    Intvec.push candidates slot;
    Intvec.push candidates other;
    Intvec.push candidates learner
  in
  Bitset.iter
    (fun u ->
      if Dyngraph.is_alive graph u then begin
        for i = 0 to d - 1 do
          let w = Dyngraph.out_slot graph u i in
          if w >= 0 && not (bs_mem informed w) then
            push_candidate ~owner:u ~slot:i ~other:w ~learner:w
        done;
        Dyngraph.iter_in_neighbors graph u (fun v ->
            if not (bs_mem informed v) then
              for j = 0 to d - 1 do
                if Dyngraph.out_slot graph v j = u then
                  push_candidate ~owner:v ~slot:j ~other:u ~learner:v
              done)
      end)
    informed;
  (* Advance the churn by one unit of time. *)
  let birth_round_start = Poisson_model.round model in
  Poisson_model.run_until_time model (Poisson_model.time model +. 1.0);
  (* Deliver along candidates whose edge survived the whole interval. *)
  let m = Intvec.length candidates / 4 in
  for k = 0 to m - 1 do
    let owner = Intvec.get candidates (4 * k) in
    let slot = Intvec.get candidates ((4 * k) + 1) in
    let other = Intvec.get candidates ((4 * k) + 2) in
    let learner = Intvec.get candidates ((4 * k) + 3) in
    if
      Dyngraph.is_alive graph owner
      && Dyngraph.is_alive graph other
      && Dyngraph.out_slot graph owner slot = other
    then bs_add informed learner
  done;
  prune_dead graph informed st.scratch;
  let alive = Dyngraph.alive_count graph in
  let inf = Bitset.cardinal informed in
  st.informed_log <- inf :: st.informed_log;
  st.population_log <- alive :: st.population_log;
  (* Completion: everyone alive is informed, except possibly nodes born
     during the interval just elapsed (Definition 4.3 cannot reach them
     yet). *)
  let all_covered = ref true in
  Dyngraph.iter_alive graph (fun id ->
      if (not (bs_mem informed id)) && Dyngraph.birth_of graph id <= birth_round_start
      then all_covered := false);
  if !all_covered && inf > 1 then begin
    st.completed <- true;
    st.completion_round <- Some st.round
  end
  else if inf = 0 then begin
    (* Extinction: flooding can die out entirely in PDG.  Once no
       informed node is left the process is over — stop immediately and
       record the round, rather than looping to [max_rounds]. *)
    st.extinct <- true;
    st.extinction_round <- Some st.round
  end

let run_poisson_discretized ?max_rounds model =
  let n = Poisson_model.n model in
  let max_rounds =
    Option.value
      ~default:(int_of_float (8. *. log (float_of_int n)) + 60)
      max_rounds
  in
  let st = poisson_start ~max_rounds model in
  while not (state_finished st) do
    poisson_round model st
  done;
  finish_state st

module Async = struct
  type result = {
    completed : bool;
    completion_time : float option;
    informed_total : int;
    final_coverage : float;
    events : int;
    extinct : bool;
  }

  let run ?max_time model =
    let n = Poisson_model.n model in
    let max_time =
      Option.value ~default:((8. *. log (float_of_int n)) +. 50.) max_time
    in
    let graph = Poisson_model.graph model in
    let rec until_birth () =
      let before = Dyngraph.alive_count graph in
      Poisson_model.step model;
      if Dyngraph.alive_count graph <= before then until_birth ()
    in
    until_birth ();
    let source =
      match Poisson_model.newest model with Some s -> s | None -> assert false
    in
    let t0 = Poisson_model.time model in
    let deadline = t0 +. max_time in
    let informed : (int, float) Hashtbl.t = Hashtbl.create 1024 in
    let deliveries : int Churnet_util.Heap.t = Churnet_util.Heap.create () in
    let ever_informed = ref 0 in
    let inform id at =
      if (not (Hashtbl.mem informed id)) && Dyngraph.is_alive graph id then begin
        Hashtbl.replace informed id at;
        incr ever_informed;
        Dyngraph.iter_neighbors graph id (fun v ->
            if not (Hashtbl.mem informed v) then
              Churnet_util.Heap.push deliveries (at +. 1.) v)
      end
    in
    (* New edges towards informed nodes trigger a delivery one unit later
       (Definition 4.2: neighbor at instant t => informed at t + 1). *)
    Dyngraph.set_edge_hook graph
      (Some
         (fun ~src ~dst ->
           let now = Poisson_model.time model in
           let src_informed = Hashtbl.mem informed src in
           let dst_informed = Hashtbl.mem informed dst in
           if src_informed && not dst_informed then
             Churnet_util.Heap.push deliveries (now +. 1.) dst
           else if dst_informed && not src_informed then
             Churnet_util.Heap.push deliveries (now +. 1.) src));
    (* Exact O(1) coverage bookkeeping: [informed_alive] counts informed
       nodes that are still alive; the death hook keeps it current. *)
    let informed_alive = ref 0 in
    Dyngraph.set_death_hook graph
      (Some (fun id -> if Hashtbl.mem informed id then decr informed_alive));
    let inform id at =
      if (not (Hashtbl.mem informed id)) && Dyngraph.is_alive graph id then begin
        inform id at;
        incr informed_alive
      end
    in
    inform source t0;
    let events = ref 0 in
    let completed = ref false in
    let completion_time = ref None in
    let extinct = ref false in
    let stop = ref false in
    (* Time of the event processed last — a delivery's scheduled instant
       or the churn jump just executed.  Completion is stamped with this,
       not with the model clock: when a delivery completes the flood the
       model clock still reads the previous jump. *)
    let last_event_time = ref t0 in
    while not !stop do
      let next_jump = Poisson_model.next_jump_time model in
      let next_delivery = Churnet_util.Heap.peek deliveries in
      let now_candidate =
        match next_delivery with
        | Some (td, _) when td <= next_jump -> `Delivery td
        | _ -> `Jump next_jump
      in
      (match now_candidate with
      | `Delivery td ->
          (* Deliveries past the deadline are outside the observation
             window, exactly like jumps past the deadline. *)
          if td > deadline then stop := true
          else begin
            (match Churnet_util.Heap.pop deliveries with
            | Some (td, v) -> inform v td
            | None -> ());
            last_event_time := td
          end
      | `Jump tj ->
          if tj > deadline then stop := true
          else begin
            Poisson_model.step model;
            incr events;
            last_event_time := Poisson_model.time model
          end);
      if not !stop then begin
        if !informed_alive = Dyngraph.alive_count graph && !informed_alive > 0 then begin
          completed := true;
          completion_time := Some (!last_event_time -. t0);
          stop := true
        end
        else if !informed_alive = 0 && Churnet_util.Heap.is_empty deliveries then begin
          (* Extinction: no informed node alive and nothing pending. *)
          extinct := true;
          stop := true
        end
      end
    done;
    Dyngraph.set_edge_hook graph None;
    Dyngraph.set_death_hook graph None;
    let alive = Dyngraph.alive_count graph in
    let informed_alive = ref 0 in
    (* lint: allow no-hashtbl-order — pure count over entries; addition
       commutes. *)
    Hashtbl.iter (fun id _ -> if Dyngraph.is_alive graph id then incr informed_alive) informed;
    {
      completed = !completed;
      completion_time = !completion_time;
      informed_total = !ever_informed;
      final_coverage =
        (if alive = 0 then nan else float_of_int !informed_alive /. float_of_int alive);
      events = !events;
      extinct = !extinct;
    }
end
