module Dyngraph = Churnet_graph.Dyngraph

type trace = {
  rounds : int;
  informed_per_round : int array;
  population_per_round : int array;
  completed : bool;
  completion_round : int option;
  peak_informed : int;
  peak_coverage : float;
  final_informed : int;
  final_population : int;
}

let coverage_at tr k =
  let len = Array.length tr.informed_per_round in
  if len = 0 then nan
  else begin
    let i = min k (len - 1) in
    float_of_int tr.informed_per_round.(i) /. float_of_int tr.population_per_round.(i)
  end

(* Shared trace assembly from per-round logs. *)
let finish ~completed ~completion_round informed_log population_log =
  let informed_per_round = Array.of_list (List.rev informed_log) in
  let population_per_round = Array.of_list (List.rev population_log) in
  let peak_informed = Array.fold_left max 0 informed_per_round in
  let peak_coverage =
    let best = ref 0. in
    Array.iteri
      (fun i inf ->
        let pop = population_per_round.(i) in
        if pop > 0 then best := Float.max !best (float_of_int inf /. float_of_int pop))
      informed_per_round;
    !best
  in
  let len = Array.length informed_per_round in
  {
    rounds = len - 1;
    informed_per_round;
    population_per_round;
    completed;
    completion_round;
    peak_informed;
    peak_coverage;
    final_informed = (if len = 0 then 0 else informed_per_round.(len - 1));
    final_population = (if len = 0 then 0 else population_per_round.(len - 1));
  }

(* Grow the informed set by one synchronous hop on the current graph.
   Scans whichever side of the cut is smaller: the informed set's
   neighborhoods, or the uninformed nodes' neighborhoods. *)
let expand_informed graph informed =
  let alive = Dyngraph.alive_count graph in
  let informed_alive = ref 0 in
  Hashtbl.iter (fun id () -> if Dyngraph.is_alive graph id then incr informed_alive) informed;
  let newly = ref [] in
  if !informed_alive <= alive - !informed_alive then
    Hashtbl.iter
      (fun u () ->
        if Dyngraph.is_alive graph u then
          List.iter
            (fun v -> if not (Hashtbl.mem informed v) then newly := v :: !newly)
            (Dyngraph.neighbors graph u))
      informed
  else
    Dyngraph.iter_alive graph (fun v ->
        if not (Hashtbl.mem informed v) then
          let touches_informed =
            List.exists (fun u -> Hashtbl.mem informed u) (Dyngraph.neighbors graph v)
          in
          if touches_informed then newly := v :: !newly);
  List.iter (fun v -> Hashtbl.replace informed v ()) !newly

let prune_dead graph informed =
  let dead = ref [] in
  Hashtbl.iter (fun id () -> if not (Dyngraph.is_alive graph id) then dead := id :: !dead) informed;
  List.iter (Hashtbl.remove informed) !dead

let run_custom ?max_rounds ~graph ~step ~newest ~default_max_rounds () =
  let max_rounds = Option.value ~default:default_max_rounds max_rounds in
  (* The source is the node joining the network at round t0. *)
  step ();
  let source = newest () in
  let informed : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  Hashtbl.replace informed source ();
  let informed_log = ref [ 1 ] in
  let population_log = ref [ Dyngraph.alive_count graph ] in
  let completed = ref false in
  let completion_round = ref None in
  let r = ref 0 in
  while (not !completed) && !r < max_rounds do
    incr r;
    (* I_t = (I_{t-1} U boundary in G_{t-1}) /\ N_t *)
    expand_informed graph informed;
    step ();
    prune_dead graph informed;
    let alive = Dyngraph.alive_count graph in
    let inf = Hashtbl.length informed in
    informed_log := inf :: !informed_log;
    population_log := alive :: !population_log;
    let newborn = newest () in
    let uninformed = alive - inf in
    if uninformed = 0 || (uninformed = 1 && not (Hashtbl.mem informed newborn)) then begin
      completed := true;
      completion_round := Some !r
    end
  done;
  finish ~completed:!completed ~completion_round:!completion_round !informed_log
    !population_log

let run_streaming ?max_rounds model =
  let n = Streaming_model.n model in
  run_custom ?max_rounds
    ~graph:(Streaming_model.graph model)
    ~step:(fun () -> Streaming_model.step model)
    ~newest:(fun () -> Streaming_model.newest model)
    ~default_max_rounds:(4 * n) ()

(* A candidate edge recorded at the start of a unit interval: [owner]'s
   out-slot [slot] pointed at [other]; the uninformed endpoint was
   [learner].  The message crosses only if the same slot still holds the
   same target at the end of the interval and both endpoints survived. *)
type candidate = { owner : int; slot : int; other : int; learner : int }

let run_poisson_discretized ?max_rounds model =
  let n = Poisson_model.n model in
  let max_rounds =
    Option.value
      ~default:(int_of_float (8. *. log (float_of_int n)) + 60)
      max_rounds
  in
  let graph = Poisson_model.graph model in
  (* Flood from the next newborn: advance jumps until a birth occurs. *)
  let rec until_birth () =
    let before = Dyngraph.alive_count graph in
    Poisson_model.step model;
    if Dyngraph.alive_count graph <= before then until_birth ()
  in
  until_birth ();
  let source =
    match Poisson_model.newest model with Some s -> s | None -> assert false
  in
  let informed : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  Hashtbl.replace informed source ();
  let informed_log = ref [ 1 ] in
  let population_log = ref [ Dyngraph.alive_count graph ] in
  let completed = ref false in
  let completion_round = ref None in
  let r = ref 0 in
  while (not !completed) && !r < max_rounds do
    incr r;
    (* Record the informed-to-uninformed edges present at time t. *)
    let candidates = ref [] in
    Hashtbl.iter
      (fun u () ->
        if Dyngraph.is_alive graph u then begin
          let slots = Dyngraph.out_slots_raw graph u in
          Array.iteri
            (fun i w ->
              if w >= 0 && not (Hashtbl.mem informed w) then
                candidates := { owner = u; slot = i; other = w; learner = w } :: !candidates)
            slots;
          List.iter
            (fun v ->
              if not (Hashtbl.mem informed v) then begin
                let vslots = Dyngraph.out_slots_raw graph v in
                Array.iteri
                  (fun j target ->
                    if target = u then
                      candidates :=
                        { owner = v; slot = j; other = u; learner = v } :: !candidates)
                  vslots
              end)
            (Dyngraph.in_neighbors graph u)
        end)
      informed;
    (* Advance the churn by one unit of time. *)
    let birth_round_start = Poisson_model.round model in
    Poisson_model.run_until_time model (Poisson_model.time model +. 1.0);
    (* Deliver along candidates whose edge survived the whole interval. *)
    List.iter
      (fun c ->
        if
          Dyngraph.is_alive graph c.owner
          && Dyngraph.is_alive graph c.other
          && (Dyngraph.out_slots_raw graph c.owner).(c.slot) = c.other
        then Hashtbl.replace informed c.learner ())
      !candidates;
    prune_dead graph informed;
    let alive = Dyngraph.alive_count graph in
    let inf = Hashtbl.length informed in
    informed_log := inf :: !informed_log;
    population_log := alive :: !population_log;
    (* Completion: everyone alive is informed, except possibly nodes born
       during the interval just elapsed (Definition 4.3 cannot reach them
       yet). *)
    let all_covered = ref true in
    Dyngraph.iter_alive graph (fun id ->
        if (not (Hashtbl.mem informed id)) && Dyngraph.birth_of graph id <= birth_round_start
        then all_covered := false);
    if !all_covered && inf > 1 then begin
      completed := true;
      completion_round := Some !r
    end;
    (* Extinction: flooding can die out entirely in PDG. *)
    if inf = 0 then completed := false
  done;
  finish ~completed:!completed ~completion_round:!completion_round !informed_log
    !population_log

module Async = struct
  type result = {
    completed : bool;
    completion_time : float option;
    informed_total : int;
    final_coverage : float;
    events : int;
  }

  let run ?max_time model =
    let n = Poisson_model.n model in
    let max_time =
      Option.value ~default:((8. *. log (float_of_int n)) +. 50.) max_time
    in
    let graph = Poisson_model.graph model in
    let rec until_birth () =
      let before = Dyngraph.alive_count graph in
      Poisson_model.step model;
      if Dyngraph.alive_count graph <= before then until_birth ()
    in
    until_birth ();
    let source =
      match Poisson_model.newest model with Some s -> s | None -> assert false
    in
    let t0 = Poisson_model.time model in
    let deadline = t0 +. max_time in
    let informed : (int, float) Hashtbl.t = Hashtbl.create 1024 in
    let deliveries : int Churnet_util.Heap.t = Churnet_util.Heap.create () in
    let ever_informed = ref 0 in
    let inform id at =
      if (not (Hashtbl.mem informed id)) && Dyngraph.is_alive graph id then begin
        Hashtbl.replace informed id at;
        incr ever_informed;
        List.iter
          (fun v ->
            if not (Hashtbl.mem informed v) then
              Churnet_util.Heap.push deliveries (at +. 1.) v)
          (Dyngraph.neighbors graph id)
      end
    in
    (* New edges towards informed nodes trigger a delivery one unit later
       (Definition 4.2: neighbor at instant t => informed at t + 1). *)
    Dyngraph.set_edge_hook graph
      (Some
         (fun ~src ~dst ->
           let now = Poisson_model.time model in
           let src_informed = Hashtbl.mem informed src in
           let dst_informed = Hashtbl.mem informed dst in
           if src_informed && not dst_informed then
             Churnet_util.Heap.push deliveries (now +. 1.) dst
           else if dst_informed && not src_informed then
             Churnet_util.Heap.push deliveries (now +. 1.) src));
    (* Exact O(1) coverage bookkeeping: [informed_alive] counts informed
       nodes that are still alive; the death hook keeps it current. *)
    let informed_alive = ref 0 in
    Dyngraph.set_death_hook graph
      (Some (fun id -> if Hashtbl.mem informed id then decr informed_alive));
    let inform id at =
      if (not (Hashtbl.mem informed id)) && Dyngraph.is_alive graph id then begin
        inform id at;
        incr informed_alive
      end
    in
    inform source t0;
    let events = ref 0 in
    let completed = ref false in
    let completion_time = ref None in
    let stop = ref false in
    while not !stop do
      let next_jump = Poisson_model.next_jump_time model in
      let next_delivery = Churnet_util.Heap.peek deliveries in
      let now_candidate =
        match next_delivery with
        | Some (td, _) when td <= next_jump -> `Delivery td
        | _ -> `Jump next_jump
      in
      (match now_candidate with
      | `Delivery _ ->
          (match Churnet_util.Heap.pop deliveries with
          | Some (td, v) -> inform v td
          | None -> ())
      | `Jump tj ->
          if tj > deadline then stop := true
          else begin
            Poisson_model.step model;
            incr events
          end);
      if not !stop then begin
        if !informed_alive = Dyngraph.alive_count graph && !informed_alive > 0 then begin
          completed := true;
          completion_time := Some (Poisson_model.time model -. t0);
          stop := true
        end
        else if !informed_alive = 0 && Churnet_util.Heap.is_empty deliveries then
          (* Extinction: no informed node alive and nothing pending. *)
          stop := true
      end
    done;
    Dyngraph.set_edge_hook graph None;
    Dyngraph.set_death_hook graph None;
    let alive = Dyngraph.alive_count graph in
    let informed_alive = ref 0 in
    Hashtbl.iter (fun id _ -> if Dyngraph.is_alive graph id then incr informed_alive) informed;
    {
      completed = !completed;
      completion_time = !completion_time;
      informed_total = !ever_informed;
      final_coverage =
        (if alive = 0 then nan else float_of_int !informed_alive /. float_of_int alive);
      events = !events;
    }
end
