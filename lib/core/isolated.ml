module Dyngraph = Churnet_graph.Dyngraph

type census = {
  population : int;
  isolated_now : int;
  isolated_forever : int;
  tracked : int;
  isolated_frac : float;
  forever_frac_of_tracked : float;
}

let paper_bound_sdg ~n ~d = float_of_int n *. exp (-2. *. float_of_int d) /. 6.
let paper_bound_pdg ~n ~d = float_of_int n *. exp (-2. *. float_of_int d) /. 18.

let collect_isolated graph =
  let acc = ref [] in
  Dyngraph.iter_alive graph (fun id -> if Dyngraph.degree graph id = 0 then acc := id :: !acc);
  !acc

(* Track a set of currently isolated nodes until each dies; a node stays in
   the "forever isolated" set as long as it never acquires an edge.  The
   [step] callback advances the model by one unit of churn; [alive_checks]
   bounds the watch. *)
let watch_until_death graph isolated_ids ~max_track ~step ~max_steps =
  let tracked =
    if List.length isolated_ids <= max_track then isolated_ids
    else begin
      (* Keep a deterministic prefix: the census is a count, not a sample,
         so any subset works for the per-node "forever" frequency. *)
      List.filteri (fun i _ -> i < max_track) isolated_ids
    end
  in
  let pending = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace pending id ()) tracked;
  let forever = ref 0 in
  let steps = ref 0 in
  while Hashtbl.length pending > 0 && !steps < max_steps do
    incr steps;
    step ();
    let resolved = ref [] in
    (* lint: allow no-hashtbl-order — per-node census checks are independent;
       counter increments and removals commute. *)
    Hashtbl.iter
      (fun id () ->
        if not (Dyngraph.is_alive graph id) then begin
          (* Died while still monitored: it was isolated at every check. *)
          incr forever;
          resolved := id :: !resolved
        end
        else if Dyngraph.degree graph id > 0 then resolved := id :: !resolved)
      pending;
    List.iter (Hashtbl.remove pending) !resolved
  done;
  (!forever, List.length tracked)

let census_streaming ?(max_track = 2000) ?(watch = true) model =
  let graph = Streaming_model.graph model in
  let population = Dyngraph.alive_count graph in
  let isolated = collect_isolated graph in
  let isolated_now = List.length isolated in
  let n = Streaming_model.n model in
  let forever, tracked =
    if watch then
      watch_until_death graph isolated ~max_track
        ~step:(fun () -> Streaming_model.step model)
        ~max_steps:(n + 1)
    else (0, 0)
  in
  {
    population;
    isolated_now;
    isolated_forever = forever;
    tracked;
    isolated_frac = float_of_int isolated_now /. float_of_int population;
    forever_frac_of_tracked =
      (if tracked = 0 then nan else float_of_int forever /. float_of_int tracked);
  }

let census_poisson ?(max_track = 2000) ?(watch = true) model =
  let graph = Poisson_model.graph model in
  let population = Dyngraph.alive_count graph in
  let isolated = collect_isolated graph in
  let isolated_now = List.length isolated in
  let n = Poisson_model.n model in
  let max_steps =
    int_of_float (20. *. float_of_int n *. log (float_of_int (max 3 n)))
  in
  let forever, tracked =
    if watch then
      watch_until_death graph isolated ~max_track
        ~step:(fun () -> Poisson_model.step model)
        ~max_steps
    else (0, 0)
  in
  {
    population;
    isolated_now;
    isolated_forever = forever;
    tracked;
    isolated_frac = float_of_int isolated_now /. float_of_int population;
    forever_frac_of_tracked =
      (if tracked = 0 then nan else float_of_int forever /. float_of_int tracked);
  }
