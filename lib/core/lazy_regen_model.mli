(** Ablation of the edge-regeneration rule (DESIGN.md, ablation A1).

    PDGR regenerates a lost out-slot {e instantly} (Definition 4.14,
    rule 3).  This variant repairs lost slots only at periodic maintenance
    ticks, every [period] time units; between ticks the graph degrades
    towards PDG.  [period -> 0] recovers PDGR; large periods interpolate
    towards the non-regenerating model, showing how much of the expander
    property instant regeneration actually buys. *)

type t

val create :
  rng:Churnet_util.Prng.t -> n:int -> d:int -> period:float -> unit -> t
(** [period] > 0 in continuous-time units. *)

val n : t -> int
val d : t -> int
val period : t -> float
val graph : t -> Churnet_graph.Dyngraph.t
val step : t -> unit
val advance_time : t -> float -> unit
val warm_up : t -> unit
val time : t -> float
val snapshot : t -> Churnet_graph.Snapshot.t
val newest : t -> Churnet_graph.Dyngraph.node_id option
val flood : ?max_rounds:int -> t -> Flood.trace
val broken_slots : t -> int
(** Out-slots currently awaiting the next maintenance tick. *)
