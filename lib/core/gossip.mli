(** Randomized gossip on the dynamic models — an extension beyond the
    paper's flooding process.

    Flooding (Definition 3.3) sends to {e all} neighbors each round; real
    epidemic protocols contact one random neighbor per round.  This module
    implements the three classic variants on any of the four models:

    - [Push]: every informed node sends to one uniformly random neighbor;
    - [Pull]: every uninformed node queries one uniformly random neighbor
      and learns the rumor if that neighbor is informed;
    - [Push_pull]: both.

    On static expanders push-pull completes in O(log n) rounds; these
    simulations show the same holds on the regenerating dynamic models,
    while the non-regenerating models stall on their isolated nodes —
    the flooding dichotomy of Table 1 survives the weaker communication
    primitive. *)

type strategy = Push | Pull | Push_pull

val strategy_name : strategy -> string

type trace = {
  rounds : int;
  informed_per_round : int array;
  population_per_round : int array;
  completed : bool;
  completion_round : int option;
  peak_coverage : float;
  messages_sent : int;  (** total point-to-point contacts *)
  extinct : bool;
      (** every informed node died before passing the rumor on; the trace
          ends at that round instead of running to the round bound *)
  extinction_round : int option;
}

val run :
  ?max_rounds:int -> rng:Churnet_util.Prng.t -> strategy:strategy -> Models.t -> trace
(** Run gossip from the next newborn on a warmed-up model.  One gossip
    round = one churn round (streaming) or one unit of continuous time
    (Poisson), matching the paper's time normalization.  [rng] drives the
    random neighbor choices: gossip, unlike flooding, is a randomized
    protocol, and its generator must come from the caller so trials draw
    distinct randomness (the old implementation hard-coded one seed,
    making every trial's gossip choices identical). *)
