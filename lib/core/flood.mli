(** The flooding processes of the paper.

    - {!run_streaming}: the synchronous flooding of Definition 3.3 over a
      streaming model (SDG / SDGR).  The source is the node joining the
      network at the starting round, as in the paper.
    - {!run_poisson_discretized}: the discretized flooding of
      Definition 4.3 over a Poisson model (PDG / PDGR): informed nodes
      transmit at integer times, and a message crosses an edge only if
      that specific edge survived the whole unit interval and the
      receiver is alive at its end.
    - {!Async}: the asynchronous flooding of Definition 4.2, event-driven
      on the real line (a node that is a neighbor of an informed node at
      any instant t is informed at t + 1 if still alive). *)

type trace = {
  rounds : int;  (** flooding rounds executed *)
  informed_per_round : int array;  (** |I_t| after each round, starting with |I_{t0}| = 1 *)
  population_per_round : int array;
  completed : bool;  (** I_t covered every node alive long enough to be reachable *)
  completion_round : int option;
  peak_informed : int;
  peak_coverage : float;  (** max over rounds of |I_t| / |N_t| *)
  final_informed : int;
  final_population : int;
  extinct : bool;
      (** the informed set died out entirely (|I_t| = 0 before coverage);
          the trace ends at that round instead of running to the round
          bound *)
  extinction_round : int option;
}

val coverage_at : trace -> int -> float
(** [coverage_at tr k] = |I_{t0+k}| / |N_{t0+k}|, or the final coverage if
    the flood ended earlier.  [nan] when that round's population is empty
    (post-extinction rounds): coverage of nobody is undefined, and an
    accidental [inf] must never escape into reports. *)

val expand_informed :
  Churnet_graph.Dyngraph.t -> Churnet_util.Bitset.t -> Churnet_util.Intvec.t -> unit
(** One synchronous flooding hop by full rescan: add to [informed] (a
    bitset over node ids) every alive node adjacent to an informed node.
    [scratch] is cleared and reused as staging space; the call allocates
    only when the informed bitset must grow.  Callers must keep
    [informed] pruned to alive ids (see {!run_custom}).  Exposed as the
    reference kernel for the benchmarks; the drivers use
    {!expand_informed_frontier}. *)

val expand_informed_frontier :
  Churnet_graph.Dyngraph.t ->
  Churnet_util.Bitset.t ->
  Churnet_util.Bitset.t ->
  Churnet_util.Intvec.t ->
  unit
(** [expand_informed_frontier graph informed frontier scratch]: one
    synchronous hop scanning only [frontier] — the informed nodes that
    may still have uninformed neighbors — instead of the whole informed
    set.  On return [frontier] holds exactly the newly informed nodes.
    Informs the same set as {!expand_informed} provided the caller
    maintains the frontier invariant: between hops, every edge created
    with exactly one informed endpoint re-arms that endpoint into
    [frontier] (the synchronous driver does this from the graph's edge
    hook). *)

val expand_informed_auto :
  Churnet_graph.Dyngraph.t ->
  Churnet_util.Bitset.t ->
  Churnet_util.Bitset.t ->
  Churnet_util.Intvec.t ->
  unit
(** [expand_informed_auto graph informed frontier scratch]: one
    synchronous hop through whichever of {!expand_informed_frontier} and
    {!expand_informed} a per-round cost model predicts is cheaper (the
    frontier in sparse and near-complete rounds, the two-sided rescan in
    the crossover rounds where the frontier spans much of the graph).
    Both kernels inform identical sets, so the choice is unobservable in
    results — only in speed.  After a rescan round the frontier is
    rebuilt as exactly the newly informed nodes, so the invariant of
    {!expand_informed_frontier} carries over.  This is the hop the
    synchronous driver ({!sync_round}) uses. *)

(** {1 Resumable flooding state}

    Both round-based drivers (synchronous and discretized) carry the same
    cross-round state, factored into an explicit value so an in-flight
    flood can be checkpointed between rounds and resumed elsewhere.  The
    per-round staging vectors are transient: {!decode_state} recreates
    them empty, which is indistinguishable because every round clears
    them before use. *)

type state

val state_round : state -> int
(** Rounds executed so far. *)

val state_finished : state -> bool
(** The flood has completed, gone extinct, or hit its round bound. *)

val encode_state : Churnet_util.Codec.writer -> state -> unit
val decode_state : Churnet_util.Codec.reader -> state

val sync_start :
  max_rounds:int ->
  graph:Churnet_graph.Dyngraph.t ->
  step:(unit -> unit) ->
  newest:(unit -> Churnet_graph.Dyngraph.node_id) ->
  state
(** Advance one churn round, inform the newborn source, and return the
    initial state (round 0 logged). *)

val sync_round :
  graph:Churnet_graph.Dyngraph.t ->
  step:(unit -> unit) ->
  newest:(unit -> Churnet_graph.Dyngraph.node_id) ->
  state ->
  unit
(** One synchronous flooding round (Definition 3.3): adaptive expand
    ({!expand_informed_auto}), churn, prune, log, then test
    completion/extinction.  During [step] the graph's edge hook is
    temporarily chained (and restored after) to keep the frontier
    invariant of {!expand_informed_frontier}; the result is
    byte-identical to a full rescan per hop, only faster. *)

val poisson_start : max_rounds:int -> Poisson_model.t -> state
(** Advance churn until a birth occurs, inform that newborn, and return
    the initial state. *)

val poisson_round : Poisson_model.t -> state -> unit
(** One discretized flooding round (Definition 4.3) over a unit interval
    of model time. *)

val finish_state : state -> trace
(** Assemble the final trace from a finished (or abandoned) state. *)

val run_custom :
  ?max_rounds:int ->
  graph:Churnet_graph.Dyngraph.t ->
  step:(unit -> unit) ->
  newest:(unit -> Churnet_graph.Dyngraph.node_id) ->
  default_max_rounds:int ->
  unit ->
  trace
(** Synchronous flooding (Definition 3.3 semantics) over any round-based
    dynamic graph: [step] advances one churn round, [newest] names the
    node born in the latest round.  Used by {!run_streaming} and by the
    protocol baselines in [churnet_p2p]. *)

val run_streaming : ?max_rounds:int -> Streaming_model.t -> trace
(** Inserts the source with the next round's newborn and floods until
    completion (I_t contains all of N_{t-1} /\ N_t), extinction, or
    [max_rounds] (default [4 * n]).  The model must be warmed up. *)

val run_poisson_discretized : ?max_rounds:int -> Poisson_model.t -> trace
(** Discretized flooding from the next newborn.  Completion here means
    every alive node is informed except possibly nodes born during the
    last unit interval (they have not yet had a full interval of
    adjacency, so Definition 4.3 cannot have informed them).  Stops early
    with [extinct = true] when the informed set dies out. *)

module Async : sig
  type result = {
    completed : bool;
    completion_time : float option;
        (** time since the source was informed, stamped with the event
            that completed coverage *)
    informed_total : int;  (** distinct nodes ever informed *)
    final_coverage : float;  (** informed alive / alive at the end *)
    events : int;  (** churn jumps executed during the flood *)
    extinct : bool;  (** no informed node alive and no pending delivery *)
  }

  val run : ?max_time:float -> Poisson_model.t -> result
  (** Event-driven flooding per Definition 4.2 from the next newborn.
      Stops at full coverage of the alive set, at extinction (no informed
      node alive and no pending delivery), or after [max_time] time units
      (default [8 * log n + 50]).  No event past the deadline — delivery
      or churn jump — is processed. *)
end
