module Dyngraph = Churnet_graph.Dyngraph
module Poisson_churn = Churnet_churn.Poisson_churn
module Prng = Churnet_util.Prng

type t = {
  n : int;
  d : int;
  period : float;
  rng : Prng.t;
  graph : Dyngraph.t;
  churn : Poisson_churn.t;
  broken : (int, unit) Hashtbl.t; (* nodes with empty slots awaiting repair *)
  mutable next_tick : float;
  mutable time : float;
}

let create ~rng ~n ~d ~period () =
  if period <= 0. then invalid_arg "Lazy_regen_model.create: period must be positive";
  let graph_rng = Prng.split rng in
  let churn_rng = Prng.split rng in
  {
    n;
    d;
    period;
    rng;
    graph = Dyngraph.create ~rng:graph_rng ~d ~regenerate:false ();
    churn = Poisson_churn.create ~rng:churn_rng ~n ();
    broken = Hashtbl.create 256;
    next_tick = period;
    time = 0.;
  }

let n t = t.n
let d t = t.d
let period t = t.period
let graph t = t.graph
let time t = t.time

let repair t id =
  if Dyngraph.is_alive t.graph id then begin
    let missing () = t.d - Dyngraph.out_degree t.graph id in
    let progress = ref true in
    while missing () > 0 && !progress do
      if Dyngraph.alive_count t.graph < 2 then progress := false
      else begin
        let rec pick tries =
          if tries = 0 then None
          else begin
            let cand = Dyngraph.random_alive t.graph in
            if cand <> id then Some cand else pick (tries - 1)
          end
        in
        match pick 8 with
        | Some cand -> if not (Dyngraph.connect t.graph ~src:id ~dst:cand) then progress := false
        | None -> progress := false
      end
    done
  end

let maintenance t =
  (* lint: allow no-hashtbl-order — repair order follows the table's
     insertion history, itself a pure function of the seed; replays are
     bit-identical. *)
  let pending = Hashtbl.fold (fun id () acc -> id :: acc) t.broken [] in
  Hashtbl.reset t.broken;
  List.iter (repair t) pending

let step t =
  let alive = Dyngraph.alive_count t.graph in
  let decision, dt = Poisson_churn.decide t.churn ~alive in
  t.time <- t.time +. dt;
  (match decision with
  | Poisson_churn.Birth ->
      ignore (Dyngraph.add_node t.graph ~birth:(Poisson_churn.round t.churn))
  | Poisson_churn.Death ->
      let victim = Dyngraph.random_alive t.graph in
      let orphans = Dyngraph.in_neighbors t.graph victim in
      Dyngraph.kill t.graph victim;
      Hashtbl.remove t.broken victim;
      List.iter
        (fun u -> if Dyngraph.is_alive t.graph u then Hashtbl.replace t.broken u ())
        orphans);
  while t.time >= t.next_tick do
    maintenance t;
    t.next_tick <- t.next_tick +. t.period
  done

let advance_time t span =
  let deadline = t.time +. span in
  while t.time < deadline do
    step t
  done

let warm_up t =
  for _ = 1 to 12 * t.n do
    step t
  done

let snapshot t = Dyngraph.snapshot t.graph

(* Ids are monotone with birth, so the arena's birth-list tail is the
   youngest alive node — O(1), no cached id to invalidate. *)
let newest t = Dyngraph.newest_alive t.graph

let flood ?max_rounds t =
  let default = int_of_float (8. *. log (float_of_int t.n)) + 60 in
  let rec until_birth () =
    let before = Dyngraph.alive_count t.graph in
    step t;
    if Dyngraph.alive_count t.graph <= before then until_birth ()
  in
  let first = ref true in
  Flood.run_custom ?max_rounds ~graph:t.graph
    ~step:(fun () ->
      if !first then begin
        first := false;
        until_birth ()
      end
      else advance_time t 1.0)
    ~newest:(fun () -> match newest t with Some id -> id | None -> -1)
    ~default_max_rounds:default ()

let broken_slots t =
  let acc = ref 0 in
  (* lint: allow no-hashtbl-order — pure sum over entries; addition commutes. *)
  Hashtbl.iter
    (fun id () ->
      if Dyngraph.is_alive t.graph id then
        acc := !acc + (t.d - Dyngraph.out_degree t.graph id))
    t.broken;
  !acc
