(** Isolated-node census (Lemma 3.5 for SDG, Lemma 4.10 for PDG).

    Both lemmas assert that, w.h.p., a snapshot contains Omega(n e^{-2d})
    nodes of degree zero that moreover remain isolated for the rest of
    their lifetime.  [census_*] counts degree-zero nodes in the current
    snapshot and then runs the model forward, watching each of them until
    death, to report how many were isolated {e for good}. *)

type census = {
  population : int;
  isolated_now : int;  (** degree-0 nodes in the starting snapshot *)
  isolated_forever : int;  (** of those, nodes that stayed degree-0 until death *)
  tracked : int;  (** isolated nodes actually tracked (capped for large counts) *)
  isolated_frac : float;  (** isolated_now / population *)
  forever_frac_of_tracked : float;
}

val paper_bound_sdg : n:int -> d:int -> float
(** Lemma 3.5's lower bound (1/6) n e^{-2d}. *)

val paper_bound_pdg : n:int -> d:int -> float
(** Lemma 4.10's lower bound (1/18) n e^{-2d}. *)

val census_streaming : ?max_track:int -> ?watch:bool -> Streaming_model.t -> census
(** Census on a warmed-up SDG/SDGR model; with [watch] (default true) runs
    the model [n] extra rounds (every tracked node's full residual
    lifetime) to decide which isolated nodes stay isolated for good.
    [watch:false] skips the forward run and reports zero tracked nodes. *)

val census_poisson : ?max_track:int -> ?watch:bool -> Poisson_model.t -> census
(** Census on a warmed-up PDG/PDGR model; with [watch] runs until every
    tracked node died (bounded by [20 n ln n] jumps). *)
