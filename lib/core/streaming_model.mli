(** The streaming dynamic graphs of Section 3: SDG (Definition 3.4,
    [regenerate = false]) and SDGR (Definition 3.13, [regenerate = true]).

    Node churn follows Definition 3.2: one node is born per round and
    lives exactly [n] rounds, so after round [n] the population is pinned
    at [n] and every round replaces the oldest node with a fresh one.
    Within a round the dying node leaves {e before} the newborn samples
    its [d] connection requests, matching N_t in the paper. *)

type t

val create :
  rng:Churnet_util.Prng.t -> n:int -> d:int -> regenerate:bool -> unit -> t

val n : t -> int
val d : t -> int
val regenerates : t -> bool
val round : t -> int
(** Rounds executed so far (0 before any {!step}). *)

val graph : t -> Churnet_graph.Dyngraph.t
val step : t -> unit
(** Execute one round: kill the node of age [n] (if any), then insert a
    newborn that issues its [d] requests. *)

val run : t -> int -> unit
(** [run t k] executes [k] rounds. *)

val warm_up : t -> unit
(** Run [2 n] rounds so the population is exactly [n] and the age
    distribution is in its steady state (every theorem assumes
    [t >= n]). *)

val newest : t -> Churnet_graph.Dyngraph.node_id
(** The node born in the latest round (the canonical flooding source). *)

val age_of : t -> Churnet_graph.Dyngraph.node_id -> int
(** Age in rounds (>= 1 right after birth round, matching the paper's
    "age k at round t if it joined at round t - k" plus our convention
    that the newborn of the current round has age 0). *)

val snapshot : t -> Churnet_graph.Snapshot.t

val encode : Churnet_util.Codec.writer -> t -> unit
(** Serialize the model (graph arena included) for checkpoints. *)

val decode : Churnet_util.Codec.reader -> t
