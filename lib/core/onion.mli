(** The onion-skin process of Section 3.1.2 — the paper's main proof
    gadget for Theorem 3.8 (flooding informs a large fraction of an SDG
    in O(log n) rounds).

    The process restricts flooding on the snapshot G_{t0} to alternating
    paths: young nodes (age < n/2) connect to old nodes (age in
    [n/2, n - log n]) only, each node's d birth requests being split into
    type-A requests (indices 1..d/2, used young -> newly-reached old) and
    type-B requests (indices d/2+1..d, used young -> previously-reached
    old).  Phase k adds the layer of young nodes whose type-B request hits
    O_{k-1} - O_{k-2} and then the layer of old nodes hit by a type-A
    request of those young nodes — exactly the iteration analyzed by
    Claim 3.10, which predicts multiplicative layer growth ~ d/20.

    Because the process only reveals each request once (deferred
    decisions) and streaming churn is deterministic, it can be simulated
    from ages alone: a node of age a sampled its requests uniformly over
    the nodes of age a+1 .. a+n-1 at time t0 (those still alive have age
    < n). *)

type result = {
  phases : int;  (** phases executed before the layers stopped growing *)
  y_layer_sizes : int array;  (** |Y_k - Y_{k-1}| per phase *)
  o_layer_sizes : int array;  (** |O_k - O_{k-1}| per phase, starting with |O_0| *)
  total_young : int;  (** |Y_final| *)
  total_old : int;  (** |O_final| *)
  reached_target : bool;  (** both totals reached n/d (Lemma 3.9's goal) *)
  growth_factors : float array;  (** per-phase layer growth ratios *)
}

val run : rng:Churnet_util.Prng.t -> n:int -> d:int -> unit -> result
(** Simulate one realization of the onion-skin process on a fresh SDG
    age structure with parameters [n] (population) and [d] (requests,
    must be even and >= 2).  Equivalent to {!start} followed by
    {!phase_step} until {!state_finished}, then {!finish_state}. *)

(** {1 Resumable phase state}

    The streaming process consumes all of its randomness in {!start}
    (deferred decisions materialized up front); the phase loop is purely
    deterministic.  A serialized state is therefore self-contained — no
    PRNG needs restoring — and a decoded state replays the remaining
    phases identically.  The per-phase staging bitset is transient and
    recreated empty by {!decode_state}. *)

type state

val state_phase : state -> int
val state_finished : state -> bool
val encode_state : Churnet_util.Codec.writer -> state -> unit
val decode_state : Churnet_util.Codec.reader -> state

val start : rng:Churnet_util.Prng.t -> n:int -> d:int -> unit -> state
(** Materialize every request and run phase 0 (the source's links). *)

val phase_step : state -> unit
(** One phase: the young layer reached through type-B requests into the
    previous old layer, then the old layer hit by their type-A requests. *)

val finish_state : state -> result

val success_probability :
  rng:Churnet_util.Prng.t -> n:int -> d:int -> trials:int -> unit -> float
(** Fraction of independent realizations for which {!result.reached_target}
    holds.  Lemma 3.9 predicts at least [1 - 4 e^{-d/100}] for d >= 200;
    empirically the bound is extremely loose and already holds for much
    smaller d. *)

val run_poisson : rng:Churnet_util.Prng.t -> n:int -> d:int -> unit -> result
(** The {e extended} onion-skin process of Section 7.2.4 (the Poisson
    counterpart used to prove Theorem 4.13): the population is split into
    the younger and older half by rank at time t0; requests are uniform
    over the whole population (the paper's near-uniform 1/Theta(n)
    destination probability); and — the key difference — every newly
    informed node immediately dies with probability [ln n / n], modelling
    the worst case where a node that will die within the flooding window
    dies the moment it is reached, informing nobody.  The target for
    {!result.reached_target} is m/20 informed in each class (Lemma 7.8). *)

val success_probability_poisson :
  rng:Churnet_util.Prng.t -> n:int -> d:int -> trials:int -> unit -> float
(** Success rate of {!run_poisson}.  Theorem 4.13 predicts
    [1 - 2 e^{-d/576} - o(1)] for d >= 1152 — vacuous below d ~ 400;
    empirically the process succeeds from d of a few dozen. *)
