(** Uniform front-end over the four dynamic-graph models of the paper,
    used by the experiment harness, the examples and the benches.

    | kind | churn (Def) | edges (Def) | regeneration |
    |------|-------------|-------------|--------------|
    | SDG  | streaming 3.2 | 3.4  | no  |
    | SDGR | streaming 3.2 | 3.13 | yes |
    | PDG  | Poisson 4.1   | 4.9  | no  |
    | PDGR | Poisson 4.1   | 4.14 | yes | *)

type kind = SDG | SDGR | PDG | PDGR

val all_kinds : kind list
val kind_name : kind -> string
val kind_of_string : string -> kind option
val is_streaming : kind -> bool
val regenerates : kind -> bool

type t =
  | Streaming of Streaming_model.t
  | Poisson of Poisson_model.t

val create : rng:Churnet_util.Prng.t -> ?lambda:float -> kind -> n:int -> d:int -> t
(** [lambda] (default 1, the paper's normalization) is the Poisson
    arrival rate, forwarded to {!Poisson_model.create} for PDG/PDGR.
    Streaming models have no rate parameter; [Invalid_argument] when
    [lambda <> 1.0] for SDG/SDGR rather than a silently ignored knob. *)

val kind : t -> kind
val n : t -> int
val d : t -> int
val graph : t -> Churnet_graph.Dyngraph.t
val warm_up : t -> unit
val snapshot : t -> Churnet_graph.Snapshot.t

val advance : t -> int -> unit
(** Advance churn: [k] rounds for streaming models, [k] time units for
    Poisson models (so one unit of [advance] is one expected birth in
    both time scales, matching the paper's normalization lambda = 1). *)

val advance_batch : t -> int -> unit
(** Same contract — and byte-identical resulting state — as {!advance},
    but Poisson models take the batched hot path
    ({!Poisson_model.run_until_time_batched}): a whole run of jumps is
    pre-drawn from the churn PRNG and applied in one arena pass.
    Streaming models already advance round-at-a-time and are unchanged.
    Preferred at XL scale. *)

val warm_up_batch : t -> unit
(** {!warm_up} through the batched path (byte-identical final state). *)

val flood : ?max_rounds:int -> t -> Flood.trace
(** Flooding in the model's native semantics: synchronous (Def 3.3) for
    streaming, discretized (Def 4.3) for Poisson. *)

val encode : Churnet_util.Codec.writer -> t -> unit
(** Serialize a model (either semantics) for checkpoints. *)

val decode : Churnet_util.Codec.reader -> t
