(** Numeric verification of the paper's closed-form bounds and of the
    "by standard calculus" steps its proofs assert without detail.

    Everything here is exact arithmetic on the paper's formulas (in log
    space where needed), not simulation; the T1 experiment and the test
    suite check each claim at concrete parameter values. *)

(** {1 Headline bound functions} *)

val isolated_lower_sdg : n:int -> d:int -> float
(** Lemma 3.5: (1/6) n e^{-2d}. *)

val isolated_lower_pdg : n:int -> d:int -> float
(** Lemma 4.10: (1/18) n e^{-2d}. *)

val coverage_target_sdg : d:int -> float
(** Theorem 3.8: 1 - e^{-d/10}. *)

val coverage_target_pdg : d:int -> float
(** Theorem 4.13: 1 - e^{-d/20}. *)

val onion_success_lower : d:int -> float
(** Lemma 3.9 / Claim 3.11: 1 - 4 e^{-d/100} (clamped at 0). *)

val edge_prob_older_sdgr : n:int -> age:int -> float
(** Lemma 3.14: (1/(n-1)) (1 + 1/(n-1))^{age-1}. *)

val edge_prob_older_pdgr_bound : n:int -> age_rounds:int -> float
(** Lemma 4.15: (1/(0.8 n)) (1 + i/(1.7 n)). *)

(** {1 Verified calculus steps} *)

val claim_3_11_product : d:int -> float
(** The infinite product c = prod_{i>=0} (1 - e^{-a_i d / 100}) with
    a_i = (d/20)^i, evaluated to machine precision (the tail is summed
    until it is below 1e-16).  Claim 3.11 asserts c >= 1 - 4 e^{-d/100}
    for d >= 200. *)

val log_binomial : int -> int -> float
(** ln (n choose k), exact via lgamma-style log-factorials. *)

val union_bound_static : n:int -> d:int -> float
(** Lemma B.1's union bound: sum_{s=1}^{n/2} C(n,s) C(n-s,0.1s)
    (1.1 s / (n-1))^{d s}, computed in log space.  The lemma asserts it is
    at most n^{-(d-2)} for d >= 3. *)

val union_bound_sdgr_small : n:int -> d:int -> float
(** Lemma 6.4's union bound (SDGR small sets): sum_{s=1}^{n/4} C(n,s)
    C(n-s,0.1s) (1.1 s e/(n-1))^{d s}.  Asserted <= 1/n^4 for d >= 21. *)

val union_bound_sdg_large : n:int -> d:int -> float
(** Lemma 3.6's union bound (SDG large sets): sum over s in
    [n e^{-d/10}, n/2] of C(n,s) C(n-s,0.1s) e^{-d s (n - 1.1 s)/(2n)}.
    Asserted <= 1/n^4 for d >= 20. *)

val qm_total_mass : n:int -> k:int -> d:int -> float
(** Section 4.3.1: the total mass sum_m q_m of the comparison
    distribution q_m = (10/9)(0.6 n^2/k^2) e^{-0.4 m}
    min(1, (1.1 k (0.6 m + 1)/(0.8 n))^d) over m = 1..L with L = 7 ln n.
    The proof needs sum q_m <= 1 (for d >= 30, k <= n/14) so that the KL
    inequality applies. *)
