module Dyngraph = Churnet_graph.Dyngraph
module Poisson_churn = Churnet_churn.Poisson_churn
module Prng = Churnet_util.Prng

type t = {
  n : int;
  d : int;
  cap : int;
  retries : int;
  rng : Prng.t;
  graph : Dyngraph.t;
  churn : Poisson_churn.t;
  deficient : (int, unit) Hashtbl.t; (* nodes with empty slots to repair *)
  mutable time : float;
}

let create ~rng ?(retries = 16) ~n ~d ~cap () =
  if cap < 1 then invalid_arg "Capped_model.create: cap must be >= 1";
  let graph_rng = Prng.split rng in
  let churn_rng = Prng.split rng in
  {
    n;
    d;
    cap;
    retries;
    rng;
    graph = Dyngraph.create ~rng:graph_rng ~d ~regenerate:false ();
    churn = Poisson_churn.create ~rng:churn_rng ~n ();
    deficient = Hashtbl.create 256;
    time = 0.;
  }

let n t = t.n
let d t = t.d
let cap t = t.cap
let graph t = t.graph
let time t = t.time

(* Sample a uniform alive candidate below the in-degree cap. *)
let sample_below_cap t ~self =
  let alive = Dyngraph.alive_count t.graph in
  if alive < 2 then None
  else begin
    let rec go tries =
      if tries = 0 then None
      else begin
        let cand = Dyngraph.random_alive t.graph in
        if cand <> self && Dyngraph.in_degree t.graph cand < t.cap then Some cand
        else go (tries - 1)
      end
    in
    go t.retries
  end

let try_fill t id =
  if Dyngraph.is_alive t.graph id then begin
    let missing () = t.d - Dyngraph.out_degree t.graph id in
    let progress = ref true in
    while missing () > 0 && !progress do
      match sample_below_cap t ~self:id with
      | Some cand -> if not (Dyngraph.connect t.graph ~src:id ~dst:cand) then progress := false
      | None -> progress := false
    done;
    if missing () > 0 then Hashtbl.replace t.deficient id ()
    else Hashtbl.remove t.deficient id
  end
  else Hashtbl.remove t.deficient id

let step t =
  let alive = Dyngraph.alive_count t.graph in
  let decision, dt = Poisson_churn.decide t.churn ~alive in
  t.time <- t.time +. dt;
  (match decision with
  | Poisson_churn.Birth ->
      let id =
        Dyngraph.add_node_with_targets t.graph ~birth:(Poisson_churn.round t.churn)
          ~targets:[||]
      in
      Hashtbl.replace t.deficient id ()
  | Poisson_churn.Death ->
      let victim = Dyngraph.random_alive t.graph in
      let orphans = Dyngraph.in_neighbors t.graph victim in
      Dyngraph.kill t.graph victim;
      Hashtbl.remove t.deficient victim;
      List.iter
        (fun u -> if Dyngraph.is_alive t.graph u then Hashtbl.replace t.deficient u ())
        orphans);
  (* Repair pass. *)
  (* lint: allow no-hashtbl-order — repair order follows the table's
     insertion history, itself a pure function of the seed; replays are
     bit-identical. *)
  let pending = Hashtbl.fold (fun id () acc -> id :: acc) t.deficient [] in
  List.iter (try_fill t) pending

let advance_time t span =
  let deadline = t.time +. span in
  while t.time < deadline do
    step t
  done

let warm_up t =
  for _ = 1 to 12 * t.n do
    step t
  done

let snapshot t = Dyngraph.snapshot t.graph

(* Ids are monotone with birth, so the arena's birth-list tail is the
   youngest alive node — O(1), no cached id to invalidate. *)
let newest t = Dyngraph.newest_alive t.graph

let flood ?max_rounds t =
  let default = int_of_float (8. *. log (float_of_int t.n)) + 60 in
  let rec until_birth () =
    let before = Dyngraph.alive_count t.graph in
    step t;
    if Dyngraph.alive_count t.graph <= before then until_birth ()
  in
  let first = ref true in
  Flood.run_custom ?max_rounds ~graph:t.graph
    ~step:(fun () ->
      if !first then begin
        first := false;
        until_birth ()
      end
      else advance_time t 1.0)
    ~newest:(fun () -> match newest t with Some id -> id | None -> -1)
    ~default_max_rounds:default ()

let max_in_degree t =
  let worst = ref 0 in
  Dyngraph.iter_alive t.graph (fun id ->
      let x = Dyngraph.in_degree t.graph id in
      if x > !worst then worst := x);
  !worst

let mean_out_degree t =
  let acc = ref 0 and count = ref 0 in
  Dyngraph.iter_alive t.graph (fun id ->
      acc := !acc + Dyngraph.out_degree t.graph id;
      incr count);
  if !count = 0 then nan else float_of_int !acc /. float_of_int !count

let parked_slots t =
  let acc = ref 0 in
  (* lint: allow no-hashtbl-order — pure sum over entries; addition commutes. *)
  Hashtbl.iter
    (fun id () ->
      if Dyngraph.is_alive t.graph id then
        acc := !acc + (t.d - Dyngraph.out_degree t.graph id))
    t.deficient;
  !acc
