(** The static baseline of Lemma B.1: a fixed random graph on n nodes in
    which every node picks d out-neighbors uniformly at random.  The lemma
    states it is a Theta(1)-expander w.h.p. for every d >= 3; the benches
    use it as the churn-free control for both expansion and flooding. *)

val generate :
  rng:Churnet_util.Prng.t -> n:int -> d:int -> unit -> Churnet_graph.Snapshot.t
(** Sample one static d-out random graph. *)

val flooding_rounds :
  rng:Churnet_util.Prng.t -> n:int -> d:int -> unit -> int option
(** BFS eccentricity of a random source = rounds synchronous flooding
    needs on a static snapshot; [None] if the source's component does not
    cover the graph. *)
