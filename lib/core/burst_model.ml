module Dyngraph = Churnet_graph.Dyngraph
module Prng = Churnet_util.Prng

type t = {
  n : int;
  d : int;
  burst_every : int;
  burst_size : int;
  rng : Prng.t;
  base : Streaming_model.t;
  mutable bursts : int;
}

let create ~rng ~n ~d ~burst_every ~burst_size () =
  if burst_every < 1 then invalid_arg "Burst_model.create: burst_every must be >= 1";
  if burst_size < 0 || burst_size >= n then
    invalid_arg "Burst_model.create: burst_size must be in [0, n)";
  let base_rng = Prng.split rng in
  {
    n;
    d;
    burst_every;
    burst_size;
    rng;
    base = Streaming_model.create ~rng:base_rng ~n ~d ~regenerate:true ();
    bursts = 0;
  }

let n t = t.n
let d t = t.d
let graph t = Streaming_model.graph t.base
let round t = Streaming_model.round t.base

(* The adversary removes [burst_size] uniformly random alive nodes
   (excluding this round's newborn so a flooding source cannot be erased
   by the burst that coincides with its birth) and inserts the same
   number of fresh nodes, each creating its d uniform requests. *)
let fire_burst t =
  t.bursts <- t.bursts + 1;
  let g = graph t in
  let newborn = Streaming_model.newest t.base in
  for _ = 1 to t.burst_size do
    if Dyngraph.alive_count g > 2 then begin
      let rec victim tries =
        let v = Dyngraph.random_alive g in
        if v <> newborn || tries = 0 then v else victim (tries - 1)
      in
      Dyngraph.kill g (victim 8)
    end
  done;
  for _ = 1 to t.burst_size do
    ignore (Dyngraph.add_node g ~birth:(Streaming_model.round t.base))
  done

let step t =
  Streaming_model.step t.base;
  (* A node killed early by a burst leaves a hole in the deterministic
     death schedule (its scheduled round kills nobody); compensate with a
     uniformly random death so the population stays pinned at n. *)
  let g = graph t in
  let newborn = Streaming_model.newest t.base in
  while Dyngraph.alive_count g > t.n do
    let rec victim tries =
      let v = Dyngraph.random_alive g in
      if v <> newborn || tries = 0 then v else victim (tries - 1)
    in
    Dyngraph.kill g (victim 8)
  done;
  if Streaming_model.round t.base mod t.burst_every = 0 && t.burst_size > 0 then
    fire_burst t

let run t k =
  for _ = 1 to k do
    step t
  done

let warm_up t = run t (2 * t.n)
let newest t = Streaming_model.newest t.base
let snapshot t = Streaming_model.snapshot t.base

let flood ?max_rounds t =
  Flood.run_custom ?max_rounds ~graph:(graph t)
    ~step:(fun () -> step t)
    ~newest:(fun () -> newest t)
    ~default_max_rounds:(4 * t.n) ()

let bursts_fired t = t.bursts
