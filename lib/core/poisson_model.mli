(** The Poisson dynamic graphs of Section 4: PDG (Definition 4.9,
    [regenerate = false]) and PDGR (Definition 4.14, [regenerate = true]).

    Node churn follows Definition 4.1 with lambda = 1 and mu = 1/n,
    simulated through the jump chain of Definition 4.5: each step is a
    birth with probability lambda/(N mu + lambda), otherwise the death of
    a uniformly random alive node; inter-event times are
    Exp(N mu + lambda). *)

type t

val create :
  rng:Churnet_util.Prng.t -> ?lambda:float -> n:int -> d:int -> regenerate:bool -> unit -> t
(** [lambda] (default 1) is the arrival rate; the death rate is lambda/n
    so the stationary population stays [n].  Message transmission still
    takes one unit of continuous time, so larger [lambda] means more
    churn per flooding round — the S1 experiment measures how behaviour
    rescales. *)

val n : t -> int
val d : t -> int
val regenerates : t -> bool
val graph : t -> Churnet_graph.Dyngraph.t
val round : t -> int
(** Jump-chain index r of T_r. *)

val time : t -> float
(** Continuous time elapsed. *)

val population : t -> int

val step : t -> unit
(** Execute one jump (birth or death). *)

val next_jump_time : t -> float
(** Absolute time at which the next jump will occur.  Drawing is lazy and
    idempotent: the returned value is the one the next [step] executes.
    Used by the asynchronous flooding simulator to interleave message
    deliveries with churn on the real line. *)

val run_rounds : t -> int -> unit

val run_until_time : t -> float -> unit
(** Execute jumps until continuous time reaches the given absolute value.
    The jump that crosses the deadline is {e not} executed (the clock
    advances past it on the next [step]). *)

val warm_up : t -> unit
(** Run [12 n] jumps: the population reaches its stationary band
    (Lemma 4.4 needs t >= 3n) and the age distribution mixes (about six
    mean lifetimes). *)

val run_until_time_batched : t -> float -> unit
(** Same contract — and byte-identical resulting state, PRNG streams
    included — as {!run_until_time}, but jumps are pre-drawn in bulk from
    the churn PRNG ([Poisson_churn.decide_batch]) and applied through a
    single arena pass ([Dyngraph.churn_batch]).  The two PRNG streams are
    independent by construction, which is what makes the reordering
    invisible.  Several times faster at large [n]; preferred for the XL
    tier. *)

val run_rounds_batched : t -> int -> unit
(** Batched {!run_rounds}: executes exactly [k] jumps (a pre-drawn
    pending jump counts as the first), byte-identical final state. *)

val warm_up_batched : t -> unit
(** {!warm_up} through the batched path. *)

val newest : t -> Churnet_graph.Dyngraph.node_id option
(** The most recently born alive node, if any. *)

val snapshot : t -> Churnet_graph.Snapshot.t

val encode : Churnet_util.Codec.writer -> t -> unit
(** Serialize the model for checkpoints, including the lazily pre-drawn
    pending jump (already taken from the churn PRNG, hence state). *)

val decode : Churnet_util.Codec.reader -> t
