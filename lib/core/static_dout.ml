module Prng = Churnet_util.Prng
module Snapshot = Churnet_graph.Snapshot

let generate ~rng ~n ~d () =
  if n < 2 then invalid_arg "Static_dout.generate: n < 2";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for _ = 1 to d do
      let rec pick () =
        let v = Prng.int rng n in
        if v = u then pick () else v
      in
      edges := (u, pick ()) :: !edges
    done
  done;
  Snapshot.of_edges ~n !edges

let flooding_rounds ~rng ~n ~d () =
  let snap = generate ~rng ~n ~d () in
  let dist = Snapshot.bfs snap 0 in
  let ecc = ref 0 and full = ref true in
  Array.iter
    (fun dv -> if dv < 0 then full := false else if dv > !ecc then ecc := dv)
    dist;
  if !full then Some !ecc else None
