module Dist = Churnet_util.Dist

let isolated_lower_sdg ~n ~d = float_of_int n *. exp (-2. *. float_of_int d) /. 6.
let isolated_lower_pdg ~n ~d = float_of_int n *. exp (-2. *. float_of_int d) /. 18.
let coverage_target_sdg ~d = 1. -. exp (-.(float_of_int d /. 10.))
let coverage_target_pdg ~d = 1. -. exp (-.(float_of_int d /. 20.))
let onion_success_lower ~d = Float.max 0. (1. -. (4. *. exp (-.(float_of_int d /. 100.))))

let edge_prob_older_sdgr ~n ~age =
  let fn = float_of_int n in
  1. /. (fn -. 1.) *. ((1. +. (1. /. (fn -. 1.))) ** float_of_int (max 0 (age - 1)))

let edge_prob_older_pdgr_bound ~n ~age_rounds =
  let fn = float_of_int n in
  1. /. (0.8 *. fn) *. (1. +. (float_of_int age_rounds /. (1.7 *. fn)))

let claim_3_11_product ~d =
  let fd = float_of_int d in
  (* log c = sum_i log(1 - e^{-a_i d/100}); terms go doubly-exponentially
     to 0, so a few dozen suffice. *)
  let log_c = ref 0. in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let a_i = (fd /. 20.) ** float_of_int !i in
    let x = exp (-.(a_i *. fd /. 100.)) in
    if x >= 1. then begin
      (* degenerate (tiny d): the factor is <= 0, the product collapses *)
      log_c := neg_infinity;
      continue := false
    end
    else begin
      let term = log1p (-.x) in
      log_c := !log_c +. term;
      if Float.abs term < 1e-16 || !i > 10_000 then continue := false;
      incr i
    end
  done;
  exp !log_c

let log_binomial n k =
  if k < 0 || k > n then neg_infinity
  else Dist.log_factorial n -. Dist.log_factorial k -. Dist.log_factorial (n - k)

(* Log-space summation: log(sum exp(l_i)) with the usual max trick. *)
let log_sum_exp terms =
  match terms with
  | [] -> neg_infinity
  | _ ->
      let m = List.fold_left Float.max neg_infinity terms in
      if m = neg_infinity then neg_infinity
      else m +. log (List.fold_left (fun acc l -> acc +. exp (l -. m)) 0. terms)

(* Shared driver: sum_{s in range} C(n,s) C(n-s, floor(0.1 s)) * exp(per_set_log s). *)
let union_bound ~n ~s_lo ~s_hi ~per_set_log =
  let terms = ref [] in
  for s = max 1 s_lo to s_hi do
    let t = int_of_float (0.1 *. float_of_int s) in
    let l = log_binomial n s +. log_binomial (n - s) t +. per_set_log s in
    terms := l :: !terms
  done;
  exp (log_sum_exp !terms)

let union_bound_static ~n ~d =
  let fn = float_of_int n in
  union_bound ~n ~s_lo:1 ~s_hi:(n / 2) ~per_set_log:(fun s ->
      let fs = float_of_int s in
      float_of_int (d * s) *. log (1.1 *. fs /. (fn -. 1.)))

let union_bound_sdgr_small ~n ~d =
  let fn = float_of_int n in
  union_bound ~n ~s_lo:1 ~s_hi:(n / 4) ~per_set_log:(fun s ->
      let fs = float_of_int s in
      float_of_int (d * s) *. log (1.1 *. fs *. Float.exp 1. /. (fn -. 1.)))

let union_bound_sdg_large ~n ~d =
  let fn = float_of_int n and fd = float_of_int d in
  let s_lo = int_of_float (fn *. exp (-.fd /. 10.)) in
  union_bound ~n ~s_lo ~s_hi:(n / 2) ~per_set_log:(fun s ->
      let fs = float_of_int s in
      -.(fd *. fs *. (fn -. (1.1 *. fs)) /. (2. *. fn)))

let qm_total_mass ~n ~k ~d =
  let fn = float_of_int n and fk = float_of_int k and fd = float_of_int d in
  let l = int_of_float (7. *. log fn) in
  let total = ref 0. in
  for m = 1 to l do
    let fm = float_of_int m in
    let base = 10. /. 9. *. (0.6 *. fn *. fn /. (fk *. fk)) *. exp (-0.4 *. fm) in
    let cut = Float.min 1. ((1.1 *. fk *. ((0.6 *. fm) +. 1.) /. (0.8 *. fn)) ** fd) in
    total := !total +. (base *. cut)
  done;
  !total
