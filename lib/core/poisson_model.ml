module Dyngraph = Churnet_graph.Dyngraph
module Poisson_churn = Churnet_churn.Poisson_churn
module Prng = Churnet_util.Prng
module Dist = Churnet_util.Dist

type t = {
  n : int;
  d : int;
  graph : Dyngraph.t;
  churn : Poisson_churn.t;
  rng : Prng.t;
  (* Time of the next pending jump, drawn lazily; [None] = not drawn.  We
     pre-draw so [run_until_time] can stop exactly at a deadline without
     executing the jump that crosses it. *)
  mutable pending : (Poisson_churn.decision * float) option;
  mutable time : float;
  (* Scratch for the batched runners — not state (refilled per batch,
     never serialized). *)
  batch_dec : Bytes.t;
  batch_dts : float array;
}

let batch_cap = 4096

let create ~rng ?lambda ~n ~d ~regenerate () =
  if n < 2 then invalid_arg "Poisson_model.create: n must be >= 2";
  let graph_rng = Prng.split rng in
  let churn_rng = Prng.split rng in
  let graph = Dyngraph.create ~rng:graph_rng ~d ~regenerate () in
  let churn = Poisson_churn.create ~rng:churn_rng ?lambda ~n () in
  {
    n;
    d;
    graph;
    churn;
    rng;
    pending = None;
    time = 0.;
    batch_dec = Bytes.create batch_cap;
    batch_dts = Array.make batch_cap 0.;
  }

let n t = t.n
let d t = t.d
let regenerates t = Dyngraph.regenerate t.graph
let graph t = t.graph
let round t = Poisson_churn.round t.churn
let time t = t.time
let population t = Dyngraph.alive_count t.graph

let draw_pending t =
  match t.pending with
  | Some p -> p
  | None ->
      let p = Poisson_churn.decide t.churn ~alive:(Dyngraph.alive_count t.graph) in
      t.pending <- Some p;
      p

let execute t (decision, dt) =
  t.pending <- None;
  t.time <- t.time +. dt;
  match decision with
  | Poisson_churn.Birth ->
      ignore (Dyngraph.add_node t.graph ~birth:(Poisson_churn.round t.churn))
  | Poisson_churn.Death ->
      let victim = Dyngraph.random_alive t.graph in
      Dyngraph.kill t.graph victim

let step t = execute t (draw_pending t)

let next_jump_time t =
  let _, dt = draw_pending t in
  t.time +. dt

let run_rounds t k =
  for _ = 1 to k do
    step t
  done

let run_until_time t deadline =
  let continue = ref true in
  while !continue do
    let ((_, dt) as pending) = draw_pending t in
    if t.time +. dt > deadline then continue := false else execute t pending
  done

let warm_up t = run_rounds t (12 * t.n)

(* ------------------------------------------------------------------ *)
(* Batched runners                                                     *)
(* ------------------------------------------------------------------ *)

(* The churn PRNG and the graph PRNG are independent streams (split at
   [create]), so a run of jumps can be drawn from the churn side first
   ([Poisson_churn.decide_batch], tracking the population incrementally)
   and only then applied to the arena in one pass
   ([Dyngraph.churn_batch]).  Both streams see exactly the draw sequence
   of the per-jump interleave, [t.time] accumulates the same dts by the
   same additions in the same order, and a run ends with the deadline-
   crossing jump pending exactly as [run_until_time] leaves it — so the
   batched and per-jump paths produce byte-identical encoded models (a
   differential test asserts this).  What batching buys is constant
   factor: no per-jump pending option, no per-call dispatch, and
   [Dyngraph.churn_batch]'s cheaper birth path. *)

(* One drawn-and-applied batch.  Preconditions: [t.pending = None] and
   [t.time <= deadline].  Returns the number of jumps applied; on return
   [t.pending] holds the deadline-crossing jump if one was drawn. *)
let run_batch t ~deadline ~limit =
  (* Births executed by [execute] are stamped with the churn round as of
     their own draw; once the whole batch is pre-drawn the round has
     advanced past all of them, so stamps are recovered arithmetically:
     batch position i was draw number [round0 + 1 + i]. *)
  let round0 = Poisson_churn.round t.churn in
  let count, pending =
    Poisson_churn.decide_batch t.churn
      ~alive:(Dyngraph.alive_count t.graph)
      ~deadline ~limit ~decisions:t.batch_dec ~dts:t.batch_dts
  in
  Dyngraph.churn_batch t.graph ~decisions:t.batch_dec ~count ~birth0:(round0 + 1);
  for i = 0 to count - 1 do
    t.time <- t.time +. t.batch_dts.(i)
  done;
  t.pending <- pending;
  count

let run_until_time_batched t deadline =
  let blocked =
    match t.pending with
    | None -> false
    | Some ((_, dt) as p) ->
        if t.time +. dt > deadline then true
        else begin
          execute t p;
          false
        end
  in
  if not blocked then begin
    let continue = ref true in
    while !continue do
      let count = run_batch t ~deadline ~limit:batch_cap in
      if count < batch_cap || t.pending <> None then continue := false
    done
  end

let run_rounds_batched t k =
  let remaining = ref k in
  (* A pre-drawn pending jump is the next jump of the chain: executing it
     counts towards [k], exactly as [step] would. *)
  (match t.pending with
  | Some p when !remaining > 0 ->
      execute t p;
      decr remaining
  | _ -> ());
  while !remaining > 0 do
    let count = run_batch t ~deadline:infinity ~limit:(min !remaining batch_cap) in
    remaining := !remaining - count
  done

let warm_up_batched t = run_rounds_batched t (12 * t.n)

(* Ids are monotone with birth, so the youngest alive node — the arena's
   birth-list tail — is exactly the most recent surviving newborn.  This
   replaces a cached id whose invalidation forced an O(alive) rescan
   whenever the cached newborn had died. *)
let newest t = Dyngraph.newest_alive t.graph

let snapshot t = Dyngraph.snapshot t.graph

module Codec = Churnet_util.Codec

let encode w t =
  Codec.varint w t.n;
  Codec.varint w t.d;
  Dyngraph.encode w t.graph;
  Poisson_churn.encode w t.churn;
  Prng.encode w t.rng;
  (* The lazily pre-drawn jump is state: it was already taken from the
     churn PRNG, so dropping it would shift every subsequent draw. *)
  Codec.option
    (fun w (decision, dt) ->
      Codec.u8 w (match decision with Poisson_churn.Birth -> 0 | Poisson_churn.Death -> 1);
      Codec.f64 w dt)
    w t.pending;
  Codec.f64 w t.time

let decode r =
  let n = Codec.read_varint r in
  let d = Codec.read_varint r in
  let graph = Dyngraph.decode r in
  let churn = Poisson_churn.decode r in
  let rng = Prng.decode r in
  let pending =
    Codec.read_option
      (fun r ->
        let decision =
          match Codec.read_u8 r with
          | 0 -> Poisson_churn.Birth
          | 1 -> Poisson_churn.Death
          | b ->
              raise
                (Codec.Error
                   (Printf.sprintf "Poisson_model.decode: bad decision tag %d" b))
        in
        let dt = Codec.read_f64 r in
        (decision, dt))
      r
  in
  let time = Codec.read_f64 r in
  if n < 2 || d < 1 then raise (Codec.Error "Poisson_model.decode: inconsistent fields");
  {
    n;
    d;
    graph;
    churn;
    rng;
    pending;
    time;
    batch_dec = Bytes.create batch_cap;
    batch_dts = Array.make batch_cap 0.;
  }
