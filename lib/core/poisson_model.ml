module Dyngraph = Churnet_graph.Dyngraph
module Poisson_churn = Churnet_churn.Poisson_churn
module Prng = Churnet_util.Prng
module Dist = Churnet_util.Dist

type t = {
  n : int;
  d : int;
  graph : Dyngraph.t;
  churn : Poisson_churn.t;
  rng : Prng.t;
  (* Time of the next pending jump, drawn lazily; [None] = not drawn.  We
     pre-draw so [run_until_time] can stop exactly at a deadline without
     executing the jump that crosses it. *)
  mutable pending : (Poisson_churn.decision * float) option;
  mutable time : float;
}

let create ~rng ?lambda ~n ~d ~regenerate () =
  if n < 2 then invalid_arg "Poisson_model.create: n must be >= 2";
  let graph_rng = Prng.split rng in
  let churn_rng = Prng.split rng in
  let graph = Dyngraph.create ~rng:graph_rng ~d ~regenerate () in
  let churn = Poisson_churn.create ~rng:churn_rng ?lambda ~n () in
  { n; d; graph; churn; rng; pending = None; time = 0. }

let n t = t.n
let d t = t.d
let regenerates t = Dyngraph.regenerate t.graph
let graph t = t.graph
let round t = Poisson_churn.round t.churn
let time t = t.time
let population t = Dyngraph.alive_count t.graph

let draw_pending t =
  match t.pending with
  | Some p -> p
  | None ->
      let p = Poisson_churn.decide t.churn ~alive:(Dyngraph.alive_count t.graph) in
      t.pending <- Some p;
      p

let execute t (decision, dt) =
  t.pending <- None;
  t.time <- t.time +. dt;
  match decision with
  | Poisson_churn.Birth ->
      ignore (Dyngraph.add_node t.graph ~birth:(Poisson_churn.round t.churn))
  | Poisson_churn.Death ->
      let victim = Dyngraph.random_alive t.graph in
      Dyngraph.kill t.graph victim

let step t = execute t (draw_pending t)

let next_jump_time t =
  let _, dt = draw_pending t in
  t.time +. dt

let run_rounds t k =
  for _ = 1 to k do
    step t
  done

let run_until_time t deadline =
  let continue = ref true in
  while !continue do
    let ((_, dt) as pending) = draw_pending t in
    if t.time +. dt > deadline then continue := false else execute t pending
  done

let warm_up t = run_rounds t (12 * t.n)

(* Ids are monotone with birth, so the youngest alive node — the arena's
   birth-list tail — is exactly the most recent surviving newborn.  This
   replaces a cached id whose invalidation forced an O(alive) rescan
   whenever the cached newborn had died. *)
let newest t = Dyngraph.newest_alive t.graph

let snapshot t = Dyngraph.snapshot t.graph

module Codec = Churnet_util.Codec

let encode w t =
  Codec.varint w t.n;
  Codec.varint w t.d;
  Dyngraph.encode w t.graph;
  Poisson_churn.encode w t.churn;
  Prng.encode w t.rng;
  (* The lazily pre-drawn jump is state: it was already taken from the
     churn PRNG, so dropping it would shift every subsequent draw. *)
  Codec.option
    (fun w (decision, dt) ->
      Codec.u8 w (match decision with Poisson_churn.Birth -> 0 | Poisson_churn.Death -> 1);
      Codec.f64 w dt)
    w t.pending;
  Codec.f64 w t.time

let decode r =
  let n = Codec.read_varint r in
  let d = Codec.read_varint r in
  let graph = Dyngraph.decode r in
  let churn = Poisson_churn.decode r in
  let rng = Prng.decode r in
  let pending =
    Codec.read_option
      (fun r ->
        let decision =
          match Codec.read_u8 r with
          | 0 -> Poisson_churn.Birth
          | 1 -> Poisson_churn.Death
          | b ->
              raise
                (Codec.Error
                   (Printf.sprintf "Poisson_model.decode: bad decision tag %d" b))
        in
        let dt = Codec.read_f64 r in
        (decision, dt))
      r
  in
  let time = Codec.read_f64 r in
  if n < 2 || d < 1 then raise (Codec.Error "Poisson_model.decode: inconsistent fields");
  { n; d; graph; churn; rng; pending; time }
