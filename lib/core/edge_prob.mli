(** Empirical edge-destination probabilities (Lemma 3.14 for SDGR,
    Lemma 4.15 for PDGR).

    Both lemmas bound the probability that a fixed request of a node [u]
    of age k+1 points at a fixed node [v]:

    - if [v] is younger than [u]: at most 1/(n-1) (streaming), 1/(0.8 n)
      (Poisson);
    - if [v] is older: (1/(n-1)) (1 + 1/(n-1))^k (streaming, exactly),
      at most (1/(0.8 n)) (1 + i/(1.7 n)) (Poisson).

    We estimate the per-pair probability by age bucket: for nodes of age
    in a bucket, the number of their slots pointing at older (younger)
    nodes, divided by [d * (#older pairs)] (resp. younger), aggregated
    over many snapshots. *)

type bucket = {
  age_lo : int;
  age_hi : int;
  p_older : float;  (** empirical per-(request, target) probability, older targets *)
  p_younger : float;  (** same for younger targets *)
  predicted_older : float;  (** the lemma's value at the bucket midpoint *)
  bound_younger : float;  (** the lemma's upper bound for younger targets *)
  samples : int;
}

val measure_streaming :
  rng:Churnet_util.Prng.t ->
  n:int -> d:int -> regenerate:bool -> snapshots:int -> buckets:int -> unit ->
  bucket array
(** Build a warmed-up streaming model, then take [snapshots] snapshots
    spaced n/2 rounds apart and aggregate slot-destination statistics into
    [buckets] age buckets. *)

val measure_poisson :
  rng:Churnet_util.Prng.t ->
  n:int -> d:int -> regenerate:bool -> snapshots:int -> buckets:int -> unit ->
  bucket array
(** Same for the Poisson model; ages are measured in jump-chain rounds and
    bucketed up to 4 n (older nodes are rare). *)
