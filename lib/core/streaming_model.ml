module Dyngraph = Churnet_graph.Dyngraph
module Prng = Churnet_util.Prng

type t = {
  n : int;
  d : int;
  graph : Dyngraph.t;
  mutable round : int;
  (* id of the node born at round r is [birth_ids.(r mod (n+1))]; the
     streaming schedule is deterministic so a circular buffer suffices. *)
  birth_ids : int array;
  mutable newest : int;
}

let create ~rng ~n ~d ~regenerate () =
  if n < 2 then invalid_arg "Streaming_model.create: n must be >= 2";
  let graph = Dyngraph.create ~rng ~d ~regenerate () in
  { n; d; graph; round = 0; birth_ids = Array.make n (-1); newest = -1 }

let n t = t.n
let d t = t.d
let regenerates t = Dyngraph.regenerate t.graph
let round t = t.round
let graph t = t.graph

let step t =
  t.round <- t.round + 1;
  (* Death of the node born n rounds ago happens first, so the newborn
     samples among N_t = nodes born in (t - n, t). *)
  (* The circular buffer has period n: the slot about to be overwritten
     holds the node born exactly n rounds ago, which dies now. *)
  let slot = t.round mod t.n in
  let dying = t.birth_ids.(slot) in
  if dying >= 0 && Dyngraph.is_alive t.graph dying then Dyngraph.kill t.graph dying;
  let id = Dyngraph.add_node t.graph ~birth:t.round in
  t.birth_ids.(slot) <- id;
  t.newest <- id

let run t k =
  for _ = 1 to k do
    step t
  done

let warm_up t = run t (2 * t.n)

let newest t =
  if t.newest < 0 then invalid_arg "Streaming_model.newest: no rounds executed";
  t.newest

let age_of t id = t.round - Dyngraph.birth_of t.graph id
let snapshot t = Dyngraph.snapshot t.graph

module Codec = Churnet_util.Codec

let encode w t =
  Codec.varint w t.n;
  Codec.varint w t.d;
  Dyngraph.encode w t.graph;
  Codec.varint w t.round;
  Codec.int_array w t.birth_ids;
  Codec.varint w t.newest

let decode r =
  let n = Codec.read_varint r in
  let d = Codec.read_varint r in
  let graph = Dyngraph.decode r in
  let round = Codec.read_varint r in
  let birth_ids = Codec.read_int_array r in
  let newest = Codec.read_varint r in
  if n < 2 || d < 1 || round < 0 || Array.length birth_ids <> n then
    raise (Codec.Error "Streaming_model.decode: inconsistent fields");
  { n; d; graph; round; birth_ids; newest }
