let recommended_domains () = min 8 (Domain.recommended_domain_count ())

let map ?domains f xs =
  let n = Array.length xs in
  let domains =
    match domains with Some d -> max 1 d | None -> recommended_domains ()
  in
  if n = 0 then [||]
  else if domains <= 1 || n = 1 then Array.map f xs
  else begin
    let workers = min domains n in
    let results = Array.make n None in
    let failure = Atomic.make None in
    let chunk = (n + workers - 1) / workers in
    let run lo hi () =
      try
        for i = lo to hi do
          results.(i) <- Some (f xs.(i))
        done
      with exn -> Atomic.set failure (Some exn)
    in
    let handles =
      List.init workers (fun w ->
          let lo = w * chunk in
          let hi = min (n - 1) (((w + 1) * chunk) - 1) in
          if lo > hi then None else Some (Domain.spawn (run lo hi)))
    in
    List.iter (function Some h -> Domain.join h | None -> ()) handles;
    (match Atomic.get failure with Some exn -> raise exn | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let init ?domains n f = map ?domains f (Array.init n Fun.id)
