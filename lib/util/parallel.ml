let recommended_domains () = min 8 (Domain.recommended_domain_count ())

let domains_from_env () =
  match Sys.getenv_opt "CHURNET_DOMAINS" with
  | None | Some "" -> recommended_domains ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> d
      | _ ->
          invalid_arg
            (Printf.sprintf "CHURNET_DOMAINS=%S: expected a positive integer" s))

let map ?domains f xs =
  let n = Array.length xs in
  let domains =
    match domains with Some d -> max 1 d | None -> domains_from_env ()
  in
  (* Checkpoint integration.  Site numbers are allocated per [map] call
     in execution order — even for empty calls, so the numbering never
     depends on input sizes — and unit indices are input positions.
     Both are independent of the domain count, which is what makes a
     journal written at one CHURNET_DOMAINS resumable at any other. *)
  let journal = Checkpoint.active () in
  let site =
    match journal with Some j -> Checkpoint.alloc_site j | None -> -1
  in
  let eval i x =
    match journal with
    | None -> f x
    | Some j -> (
        match Checkpoint.find j ~site ~index:i with
        | Some v -> v
        | None ->
            let v = f x in
            Checkpoint.record j ~site ~index:i v;
            (* Cache hits do not tick: [--crash-at k] counts freshly
               computed units, so kill points in a resumed run line up
               with remaining work, not with restored history. *)
            Checkpoint.crash_tick ();
            v)
  in
  let results =
    if n = 0 then [||]
    else if domains <= 1 || n = 1 then Array.mapi eval xs
    else begin
      let workers = min domains n in
      let results = Array.make n None in
      (* First failure wins: later failures in other domains are dropped, and
         the winning exception is re-raised with its original backtrace. *)
      let failure = Atomic.make None in
      let chunk = (n + workers - 1) / workers in
      let run lo hi () =
        try
          for i = lo to hi do
            results.(i) <- Some (eval i xs.(i))
          done
        with exn ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set failure None (Some (exn, bt)))
      in
      let handles =
        List.init workers (fun w ->
            let lo = w * chunk in
            let hi = min (n - 1) (((w + 1) * chunk) - 1) in
            if lo > hi then None else Some (Domain.spawn (run lo hi)))
      in
      List.iter (function Some h -> Domain.join h | None -> ()) handles;
      (match Atomic.get failure with
      | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
      | None -> ());
      Array.map (function Some v -> v | None -> assert false) results
    end
  in
  (match journal with Some j -> Checkpoint.flush j | None -> ());
  results

let init ?domains n f = map ?domains f (Array.init n Fun.id)

let replicate ?domains ~rng ~trials f =
  if trials < 0 then invalid_arg "Parallel.replicate: trials must be >= 0";
  (* Pre-split one generator per trial *in trial order* before any domain
     is spawned: the sub-streams — hence the results — are identical
     whatever the domain count, and identical to a serial
     [for _ = 1 to trials do ... (Prng.split rng) ... done] loop. *)
  let trial_rngs = Array.init trials (fun _ -> Prng.split rng) in
  map ?domains f trial_rngs
