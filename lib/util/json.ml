type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Arr of t list
  | Obj of (string * t) list

let float_opt = function Some v -> Float v | None -> Null
let of_finite v = if Float.is_finite v then Float v else Null

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal that round-trips; forced to contain '.' or 'e' so it
   re-parses as a float, not an int. *)
let float_repr v =
  let s =
    let short = Printf.sprintf "%.12g" v in
    if float_of_string short = v then short else Printf.sprintf "%.17g" v
  in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"

let add_value ~pretty buf v =
  let indent depth =
    if pretty then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_finite f then Buffer.add_string buf (float_repr f)
        else Buffer.add_string buf "null"
    | String s -> escape_into buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            go (depth + 1) item)
          items;
        indent depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            escape_into buf k;
            Buffer.add_char buf ':';
            if pretty then Buffer.add_char buf ' ';
            go (depth + 1) item)
          fields;
        indent depth;
        Buffer.add_char buf '}'
  in
  go 0 v

let to_string ?(pretty = false) v =
  let buf = Buffer.create 1024 in
  add_value ~pretty buf v;
  Buffer.contents buf

let to_channel ?(pretty = false) oc v =
  let buf = Buffer.create 1024 in
  add_value ~pretty buf v;
  Buffer.output_buffer oc buf

let write_file ?(pretty = false) path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      to_channel ~pretty oc v;
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail (Printf.sprintf "expected %c, got %c" c got)
    | None -> fail (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      value
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  (* [int_of_string] signals bad hex digits with [Failure]; a truncated
     escape raises [Parse_error].  Only those mean "malformed escape":
     anything else (Out_of_memory, Stack_overflow) must keep unwinding. *)
  let hex4_opt () =
    try Some (hex4 ()) with Failure _ | Parse_error _ -> None
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "truncated escape";
           let c = s.[!pos] in
           advance ();
           match c with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | 'r' -> Buffer.add_char buf '\r'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
               let code =
                 match hex4_opt () with
                 | None -> fail "bad \\u escape"
                 | Some hi when hi >= 0xD800 && hi <= 0xDBFF ->
                     (* surrogate pair *)
                     if
                       !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                     then begin
                       pos := !pos + 2;
                       match hex4_opt () with
                       | Some lo when lo >= 0xDC00 && lo <= 0xDFFF ->
                           0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00)
                       | _ -> fail "bad low surrogate"
                     end
                     else fail "lone high surrogate"
                 | Some code -> code
               in
               add_utf8 buf code
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          loop ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_digit () =
      match peek () with Some c when c >= '0' && c <= '9' -> true | _ -> false
    in
    if not (is_digit ()) then fail "malformed number";
    while is_digit () do
      advance ()
    done;
    let fractional = ref false in
    if peek () = Some '.' then begin
      fractional := true;
      advance ();
      if not (is_digit ()) then fail "malformed number (missing fraction digits)";
      while is_digit () do
        advance ()
      done
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        fractional := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        if not (is_digit ()) then fail "malformed number (missing exponent)";
        while is_digit () do
          advance ()
        done
    | _ -> ());
    let lexeme = String.sub s start (!pos - start) in
    if !fractional then Float (float_of_string lexeme)
    else
      match int_of_string_opt lexeme with
      | Some i -> Int i
      | None -> Float (float_of_string lexeme)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, value) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, value) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (value :: acc)
            | Some ']' ->
                advance ();
                List.rev (value :: acc)
            | _ -> fail "expected , or ] in array"
          in
          Arr (items [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage after document";
  v

let of_string s =
  match parse s with
  | v -> Ok v
  | exception Parse_error (pos, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" pos msg)
  | exception Failure msg -> Error (Printf.sprintf "JSON parse error: %s" msg)

let of_string_exn s =
  match of_string s with Ok v -> v | Error msg -> failwith msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let as_string = function String s -> Some s | _ -> None
let as_bool = function Bool b -> Some b | _ -> None
let as_int = function Int i -> Some i | _ -> None

let as_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let as_list = function Arr items -> items | _ -> []
