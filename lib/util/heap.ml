(* Equal-priority ties break on a monotone insertion sequence number, so
   simultaneous events pop in FIFO order — a stable, documented order —
   instead of whatever array positions the heap shape happened to give
   them.  Async flooding schedules many deliveries at the same instant
   (every neighbor of a newly informed node gets [now + 1]), so without
   the tiebreak the pop order of simultaneous events would shift
   whenever unrelated insertions rebalanced the heap. *)
type 'a t = {
  mutable keys : float array;
  mutable seqs : int array;
  mutable vals : 'a option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () =
  {
    keys = Array.make 16 0.;
    seqs = Array.make 16 0;
    vals = Array.make 16 None;
    size = 0;
    next_seq = 0;
  }

let length h = h.size
let is_empty h = h.size = 0

let grow h =
  let cap = Array.length h.keys in
  let keys = Array.make (2 * cap) 0. in
  let seqs = Array.make (2 * cap) 0 in
  let vals = Array.make (2 * cap) None in
  Array.blit h.keys 0 keys 0 cap;
  Array.blit h.seqs 0 seqs 0 cap;
  Array.blit h.vals 0 vals 0 cap;
  h.keys <- keys;
  h.seqs <- seqs;
  h.vals <- vals

let swap h i j =
  let k = h.keys.(i) in
  h.keys.(i) <- h.keys.(j);
  h.keys.(j) <- k;
  let s = h.seqs.(i) in
  h.seqs.(i) <- h.seqs.(j);
  h.seqs.(j) <- s;
  let v = h.vals.(i) in
  h.vals.(i) <- h.vals.(j);
  h.vals.(j) <- v

(* Lexicographic (key, seq) order: seq values are unique, so this is a
   strict total order and the heap property needs no tie handling. *)
let less h i j =
  h.keys.(i) < h.keys.(j) || (h.keys.(i) = h.keys.(j) && h.seqs.(i) < h.seqs.(j))

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h i parent then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && less h l !smallest then smallest := l;
  if r < h.size && less h r !smallest then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h priority v =
  if h.size = Array.length h.keys then grow h;
  h.keys.(h.size) <- priority;
  h.seqs.(h.size) <- h.next_seq;
  h.next_seq <- h.next_seq + 1;
  h.vals.(h.size) <- Some v;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let key = h.keys.(0) in
    let v = h.vals.(0) in
    h.size <- h.size - 1;
    h.keys.(0) <- h.keys.(h.size);
    h.seqs.(0) <- h.seqs.(h.size);
    h.vals.(0) <- h.vals.(h.size);
    h.vals.(h.size) <- None;
    if h.size > 0 then sift_down h 0 else h.next_seq <- 0;
    match v with Some x -> Some (key, x) | None -> assert false
  end

let peek h =
  if h.size = 0 then None
  else match h.vals.(0) with Some x -> Some (h.keys.(0), x) | None -> assert false

let clear h =
  Array.fill h.vals 0 h.size None;
  h.size <- 0;
  h.next_seq <- 0
