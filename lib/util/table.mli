(** Plain-text table rendering for experiment reports, plus CSV output.
    Every bench/experiment prints its "paper vs measured" rows through
    this module so the output is uniform and machine-greppable. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; short rows are padded with empty cells. *)

val render : t -> string
(** Render with aligned ASCII borders. *)

val to_csv : t -> string
(** RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines). *)

val to_json : t -> Json.t
(** [{"headers": [...], "rows": [[...], ...]}] — cells stay the strings
    that the text rendering shows, so the JSON mirrors the report. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

(** {1 Cell formatting helpers} *)

val fmt_float : ?digits:int -> float -> string
(** Fixed-point with [digits] decimals (default 4); handles nan/inf. *)

val fmt_pct : float -> string
(** Render a proportion as a percentage with 2 decimals. *)

val fmt_ci : float * float -> string
(** Render an interval as "[lo, hi]". *)

val fmt_sci : float -> string
(** Scientific notation with 3 significant digits. *)
