(** Minimal fork-join parallelism over OCaml 5 domains.

    Experiments are embarrassingly parallel across trials (each trial owns
    its PRNG, split deterministically up front), so a static block
    partition over a few domains is all that is needed.  Falls back to
    sequential execution when [domains <= 1] or on runtimes with a single
    recommended domain. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count], capped at 8 (the experiments are
    memory-bandwidth-bound beyond that). *)

val domains_from_env : unit -> int
(** The default worker count: [CHURNET_DOMAINS] if set (must be a positive
    integer, [Invalid_argument] otherwise), else {!recommended_domains}.
    Read at every call, so the environment can be changed between runs. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map f xs] with the results in input order.  [f] must be safe to run
    concurrently on distinct elements (no shared mutable state — in
    particular, no shared {!Prng.t}).  If several elements fail, the
    first exception {e reported} wins (later failures are dropped) and is
    re-raised in the caller with its backtrace preserved.

    When a {!Checkpoint} journal is installed, every call allocates the
    next call-site number (in execution order, empty calls included) and
    each element is served from the journal when cached, else computed,
    recorded under (site, index) and counted as one crash-injection
    tick.  Site and index numbering are independent of [domains], so a
    journal resumes identically at any [CHURNET_DOMAINS]. *)

val init : ?domains:int -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init]. *)

val replicate : ?domains:int -> rng:Prng.t -> trials:int -> (Prng.t -> 'a) -> 'a array
(** [replicate ~rng ~trials f] runs [trials] independent replications of
    [f], each on its own generator pre-split from [rng] in trial order
    before any domain starts.  Consequently the result array is
    order-stable and bit-identical across every [domains] setting —
    including the serial [domains:1] path — and identical to the
    historical serial loop [for _ = 1 to trials do ... f (Prng.split rng) ... done].
    [rng] is advanced by exactly [trials] splits. *)
