(** Minimal fork-join parallelism over OCaml 5 domains.

    Experiments are embarrassingly parallel across trials (each trial owns
    its PRNG, split deterministically up front), so a static block
    partition over a few domains is all that is needed.  Falls back to
    sequential execution when [domains <= 1] or on runtimes with a single
    recommended domain. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count], capped at 8 (the experiments are
    memory-bandwidth-bound beyond that). *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map f xs] with the results in input order.  [f] must be safe to run
    concurrently on distinct elements (no shared mutable state — in
    particular, no shared {!Prng.t}).  Exceptions raised by [f] are
    re-raised in the caller. *)

val init : ?domains:int -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init]. *)
