(** Disjoint-set forest with path compression and union by rank.
    Used for connected-component analysis of graph snapshots. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled 0..n-1. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> bool
(** Merge two sets; [true] iff they were previously distinct. *)

val same : t -> int -> int -> bool
val count : t -> int
(** Number of disjoint sets. *)

val component_sizes : t -> int list
(** Sizes of all components, unordered. *)
