(** Descriptive statistics for experiment reporting: streaming moments,
    quantiles, histograms, confidence intervals and least-squares fits
    (including the [a * log n + b] fits used to check the O(log n)
    flooding-time theorems). *)

(** {1 Streaming accumulator} *)

module Acc : sig
  type t
  (** Welford accumulator for count / mean / variance / min / max. *)

  val create : unit -> t
  val add : t -> float -> unit
  val add_int : t -> int -> unit
  val count : t -> int
  val mean : t -> float
  (** Mean; [nan] when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; [nan] when count < 2. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val stderr_mean : t -> float
  (** Standard error of the mean. *)

  val ci95 : t -> float * float
  (** Normal-approximation 95% confidence interval for the mean. *)

  val merge : t -> t -> t
  (** Combine two accumulators (parallel composition).  The result is
      always a fresh accumulator — never an alias of either input — so
      adding to it cannot mutate the arguments. *)
end

(** {1 Batch helpers} *)

val mean : float array -> float
val variance : float array -> float
val stddev : float array -> float
val median : float array -> float
val quantile : float array -> float -> float
(** [quantile xs q] with linear interpolation; [q] in [0,1].  Does not
    mutate its argument. *)

val fraction_where : ('a -> bool) -> 'a array -> float
(** Fraction of elements satisfying the predicate; [nan] when empty. *)

(** {1 Histograms} *)

module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t

  val add : t -> float -> unit
  (** File [x] into its bin (clamping below [lo] into bin 0 and above
      [hi] into the last bin).  NaN samples are not binned — they only
      bump {!nan_count} — because a NaN would otherwise land in bin 0 by
      floating-comparison accident and distort the distribution. *)

  val counts : t -> int array

  val total : t -> int
  (** Samples binned so far; excludes NaN samples. *)

  val nan_count : t -> int
  (** NaN samples rejected by {!add}. *)

  val bin_mid : t -> int -> float
  val normalized : t -> float array
  (** Per-bin probability mass (counts / total). *)
end

(** {1 Fits} *)

type fit = { slope : float; intercept : float; r2 : float }

val linear_fit : (float * float) array -> fit
(** Ordinary least squares y = slope * x + intercept. *)

val log_fit : (float * float) array -> fit
(** Fit y = slope * ln x + intercept (checks O(log n) scalings).
    All x must be positive. *)

val pearson : (float * float) array -> float
(** Correlation coefficient. *)

(** {1 Hypothesis helpers} *)

val binomial_ci95 : successes:int -> trials:int -> float * float
(** Wilson-score 95% interval for a proportion. *)

val chi_square_uniform : int array -> float
(** Chi-square statistic of observed counts against the uniform law. *)

val ks_statistic : float array -> (float -> float) -> float
(** One-sample Kolmogorov-Smirnov statistic: sup |F_empirical - F| for a
    given CDF [F].  Does not mutate its argument.  For n samples, values
    around [1.36 / sqrt n] correspond to the 5% critical level. *)
