let entropy p =
  Array.fold_left (fun acc x -> if x > 0. then acc -. (x *. log x) else acc) 0. p

let check_lengths p q =
  if Array.length p <> Array.length q then invalid_arg "Kl: length mismatch"

let kl_divergence p q =
  check_lengths p q;
  let acc = ref 0. in
  Array.iteri
    (fun i pi ->
      if pi > 0. then
        if q.(i) <= 0. then acc := infinity
        else acc := !acc +. (pi *. log (pi /. q.(i))))
    p;
  !acc

let normalize v =
  let total = Array.fold_left ( +. ) 0. v in
  if total <= 0. then invalid_arg "Kl.normalize: non-positive total mass";
  Array.map (fun x -> x /. total) v

let of_counts counts = normalize (Array.map float_of_int counts)

let cross_entropy p q =
  check_lengths p q;
  let acc = ref 0. in
  Array.iteri
    (fun i pi ->
      if pi > 0. then
        if q.(i) <= 0. then acc := infinity else acc := !acc -. (pi *. log q.(i)))
    p;
  !acc

let total_variation p q =
  check_lengths p q;
  let acc = ref 0. in
  Array.iteri (fun i pi -> acc := !acc +. Float.abs (pi -. q.(i))) p;
  !acc /. 2.
