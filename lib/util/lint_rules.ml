type finding = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
  witness : string list;
}

type context = { path : string; lex : Lint_lexer.t; has_mli : bool }

type project = {
  p_graph : Lint_graph.t;
  p_interfaces : (string * Lint_lexer.t) list;
}

type check =
  | File of (context -> finding list)
  | Project of (project -> finding list)
  | Synthetic

type rule = { name : string; doc : string; check : check }

(* ------------------------------------------------------------------ *)
(* Path and token helpers                                              *)
(* ------------------------------------------------------------------ *)

let under dir path =
  let ld = String.length dir and lp = String.length path in
  lp > ld + 1 && String.sub path 0 (ld + 1) = dir ^ "/"

(* Text of token [i], or "" out of range: lets scans look at neighbors
   without bounds noise. *)
let tok (tks : Lint_lexer.token array) i =
  if i >= 0 && i < Array.length tks then tks.(i).Lint_lexer.text else ""

let finding ~rule ~path ~(at : Lint_lexer.token) ?(witness = []) message =
  {
    rule;
    file = path;
    line = at.Lint_lexer.line;
    col = at.Lint_lexer.col;
    message;
    witness;
  }

(* Shared scan: call [f i tks] on every token index, collect findings. *)
let scan_tokens ctx f =
  let tks = ctx.lex.Lint_lexer.tokens in
  let out = ref [] in
  Array.iteri
    (fun i _ -> match f tks i with Some fd -> out := fd :: !out | None -> ())
    tks;
  List.rev !out

let definition_keywords = [ "let"; "and"; "rec"; "val"; "external"; "method" ]

let has_prefix prefix s =
  let lp = String.length prefix in
  String.length s >= lp && String.sub s 0 lp = prefix

(* ------------------------------------------------------------------ *)
(* no-stdlib-random                                                    *)
(* ------------------------------------------------------------------ *)

let prng_home = "lib/util/prng.ml"

let no_stdlib_random =
  let name = "no-stdlib-random" in
  {
    name;
    doc =
      "all randomness flows through Prng; only lib/util/prng.ml may touch \
       Stdlib.Random";
    check =
      File
        (fun ctx ->
          if ctx.path = prng_home then []
          else
            scan_tokens ctx (fun tks i ->
                let prev = tok tks (i - 1) and prev2 = tok tks (i - 2) in
                if
                  tok tks i = "Random"
                  && (prev <> "." || prev2 = "Stdlib")
                  && not (List.mem prev definition_keywords)
                  && prev <> "module"
                then
                  Some
                    (finding ~rule:name ~path:ctx.path ~at:tks.(i)
                       "Stdlib.Random breaks seed-reproducibility; draw from a \
                        Prng.t threaded from the experiment seed")
                else None));
  }

(* ------------------------------------------------------------------ *)
(* no-polymorphic-sort                                                 *)
(* ------------------------------------------------------------------ *)

let no_polymorphic_sort =
  let name = "no-polymorphic-sort" in
  {
    name;
    doc =
      "bare polymorphic `compare' is banned (sorts included); use \
       Int.compare / Float.compare / String.compare";
    check =
      File
        (fun ctx ->
          scan_tokens ctx (fun tks i ->
              if tok tks i <> "compare" then None
              else
                let prev = tok tks (i - 1)
                and prev2 = tok tks (i - 2)
                and next = tok tks (i + 1) in
                let qualified = prev = "." in
                let poly_qualified =
                  qualified && (prev2 = "Stdlib" || prev2 = "Poly")
                in
                let is_definition = List.mem prev definition_keywords in
                let is_label = prev = "~" || next = ":" in
                if
                  poly_qualified
                  || ((not qualified) && (not is_definition) && not is_label)
                then
                  Some
                    (finding ~rule:name ~path:ctx.path ~at:tks.(i)
                       "polymorphic compare: ordering silently depends on \
                        runtime representation; use a monomorphic comparator \
                        (Int.compare, Float.compare, String.compare, ...)")
                else None));
  }

(* ------------------------------------------------------------------ *)
(* no-hashtbl-order                                                    *)
(* ------------------------------------------------------------------ *)

let hashtbl_restricted_dirs = [ "lib/graph"; "lib/core"; "lib/experiments" ]

let hashtbl_order_sensitive =
  [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

let no_hashtbl_order =
  let name = "no-hashtbl-order" in
  {
    name;
    doc =
      "Hashtbl.iter/fold leak table order into results in lib/graph, \
       lib/core, lib/experiments; rewrite order-insensitively or suppress \
       with a reason";
    check =
      File
        (fun ctx ->
          if
            not (List.exists (fun d -> under d ctx.path) hashtbl_restricted_dirs)
          then []
          else
            scan_tokens ctx (fun tks i ->
                if
                  tok tks i = "Hashtbl"
                  && tok tks (i + 1) = "."
                  && List.mem (tok tks (i + 2)) hashtbl_order_sensitive
                  && tok tks (i - 1) <> "."
                then
                  Some
                    (finding ~rule:name ~path:ctx.path ~at:tks.(i)
                       (Printf.sprintf
                          "Hashtbl.%s iterates in table order, which depends \
                           on insertion history; sort the result or suppress \
                           with a written reason if order provably cannot leak"
                          (tok tks (i + 2))))
                else None));
  }

(* ------------------------------------------------------------------ *)
(* no-wildcard-exn                                                     *)
(* ------------------------------------------------------------------ *)

(* Associating each `with' with its opening `try'/`match' is done with a
   stack, recording the brace depth at push time so that record updates
   [{ e with ... }] inside a try body do not steal the pop.  `with type'
   / `with module' constraints are skipped outright. *)
let no_wildcard_exn =
  let name = "no-wildcard-exn" in
  {
    name;
    doc =
      "`try ... with _ ->' swallows Out_of_memory, Stack_overflow and \
       programming errors alike; match the exceptions you mean";
    check =
      File
        (fun ctx ->
          let tks = ctx.lex.Lint_lexer.tokens in
          let out = ref [] in
          let stack = ref [] in
          let brace_depth = ref 0 in
          Array.iteri
            (fun i (t : Lint_lexer.token) ->
              match t.Lint_lexer.text with
              | "{" -> incr brace_depth
              | "}" -> decr brace_depth
              | "try" -> stack := (`Try, !brace_depth) :: !stack
              | "match" -> stack := (`Match, !brace_depth) :: !stack
              | "with" -> (
                  let next = tok tks (i + 1) in
                  if next = "type" || next = "module" then ()
                  else
                    match !stack with
                    | (kind, depth) :: rest when depth >= !brace_depth ->
                        stack := rest;
                        if kind = `Try && next = "_" && tok tks (i + 2) = "->"
                        then
                          out :=
                            finding ~rule:name ~path:ctx.path ~at:t
                              "wildcard exception handler: catches \
                               Out_of_memory/Stack_overflow/Assert_failure; \
                               name the exception constructors instead"
                            :: !out
                    | _ -> ())
              | _ -> ())
            tks;
          List.rev !out);
  }

(* ------------------------------------------------------------------ *)
(* no-wallclock                                                        *)
(* ------------------------------------------------------------------ *)

let wallclock_allowed path =
  path = "lib/experiments/telemetry.ml" || under "bench" path

let wallclock_calls =
  [ ("Unix", "gettimeofday"); ("Unix", "time"); ("Sys", "time") ]

let no_wallclock =
  let name = "no-wallclock" in
  {
    name;
    doc =
      "wall-clock reads belong in lib/experiments/telemetry.ml and bench/ \
       only; simulation results must not observe real time";
    check =
      File
        (fun ctx ->
          if wallclock_allowed ctx.path then []
          else
            scan_tokens ctx (fun tks i ->
                let here = (tok tks i, tok tks (i + 2)) in
                if
                  tok tks (i + 1) = "."
                  && tok tks (i - 1) <> "."
                  && List.exists (fun c -> c = here) wallclock_calls
                then
                  Some
                    (finding ~rule:name ~path:ctx.path ~at:tks.(i)
                       (Printf.sprintf
                          "%s.%s observes wall-clock time; route timing \
                           through Telemetry so simulations stay a pure \
                           function of the seed"
                          (fst here) (snd here)))
                else None));
  }

(* ------------------------------------------------------------------ *)
(* mli-coverage                                                        *)
(* ------------------------------------------------------------------ *)

let mli_coverage =
  let name = "mli-coverage" in
  {
    name;
    doc = "every lib/**/*.ml must have a matching .mli interface";
    check =
      File
        (fun ctx ->
          if under "lib" ctx.path && not ctx.has_mli then
            [
              {
                rule = name;
                file = ctx.path;
                line = 1;
                col = 1;
                message =
                  "missing interface file: add a .mli so the module's public \
                   surface is explicit";
                witness = [];
              };
            ]
          else []);
  }

(* ------------------------------------------------------------------ *)
(* no-print-in-lib                                                     *)
(* ------------------------------------------------------------------ *)

let print_allowed =
  [ "lib/experiments/report.ml"; "lib/util/table.ml"; "lib/util/asciiplot.ml" ]

(* The Stdlib console writers, by name: a prefix match would also catch
   unrelated identifiers that merely start with print_. *)
let stdlib_printers =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_bytes"; "print_int"; "print_float"; "prerr_string";
    "prerr_endline"; "prerr_newline"; "prerr_char"; "prerr_bytes";
    "prerr_int"; "prerr_float";
  ]

(* Is the token at [i] a direct console write?  Shared between
   no-print-in-lib (direct uses in lib/) and no-io-transitive (callers
   that reach one). *)
let is_print_site tks i =
  let t = tok tks i in
  let prev = tok tks (i - 1) in
  let direct_print =
    List.mem t stdlib_printers
    && prev <> "."
    && not (List.mem prev definition_keywords)
  in
  let formatted_print =
    (t = "Printf" || t = "Format")
    && tok tks (i + 1) = "."
    && (tok tks (i + 2) = "printf" || tok tks (i + 2) = "eprintf")
    && prev <> "."
  in
  direct_print || formatted_print

let no_print_in_lib =
  let name = "no-print-in-lib" in
  {
    name;
    doc =
      "stdout writes in lib/ must go through Report/Table/Asciiplot so text \
       output stays byte-reproducible";
    check =
      File
        (fun ctx ->
          if (not (under "lib" ctx.path)) || List.mem ctx.path print_allowed
          then []
          else
            scan_tokens ctx (fun tks i ->
                if is_print_site tks i then
                  Some
                    (finding ~rule:name ~path:ctx.path ~at:tks.(i)
                       "direct console output from lib/; emit through \
                        Report/Table/Asciiplot (or return the string) so \
                        experiment output stays controlled")
                else None));
  }

(* ------------------------------------------------------------------ *)
(* Shared semantic-pass helpers                                        *)
(* ------------------------------------------------------------------ *)

let def_label (d : Lint_graph.def) =
  d.Lint_graph.d_module ^ "." ^ d.Lint_graph.d_name

let witness_of_path defs = List.map def_label defs

let unit_of p (d : Lint_graph.def) = p.p_graph.Lint_graph.units.(d.Lint_graph.d_unit)

let def_token p (d : Lint_graph.def) =
  let u = unit_of p d in
  let tks = u.Lint_graph.u_lex.Lint_lexer.tokens in
  let k = d.Lint_graph.d_span.Lint_tree.s_first in
  if k >= 0 && k < Array.length tks then Some tks.(k) else None

(* Does the unit's token at [i] name the module [target] (directly or
   through one of the unit's `module X = Lib.X' aliases)? *)
let resolves_to (tree : Lint_tree.t) name target =
  name = target
  || Array.exists
       (fun (a, tgt) -> a = name && tgt = target)
       tree.Lint_tree.aliases

(* ------------------------------------------------------------------ *)
(* prng-flow                                                           *)
(* ------------------------------------------------------------------ *)

(* The PR 5 `Gossip.run' bug class: a stream created from a literal (or
   shared at module level) makes every trial draw the same randomness,
   invisibly.  Every draw must reach its call site through a function
   parameter or a Prng.split of one, so streams in lib/ may only be
   *created* from data that flowed in. *)
let prng_flow =
  let name = "prng-flow" in
  {
    name;
    doc =
      "Prng streams in lib/ must be threaded through parameters or split; \
       literal-seeded or module-level streams repeat randomness across \
       trials";
    check =
      Project
        (fun p ->
          let g = p.p_graph in
          let out = ref [] in
          Array.iteri
            (fun ui (u : Lint_graph.unit_info) ->
              let path = u.Lint_graph.u_path in
              if under "lib" path && path <> prng_home then begin
                let lex = u.Lint_graph.u_lex in
                let tree = u.Lint_graph.u_tree in
                let tks = lex.Lint_lexer.tokens in
                (* literal-seeded streams: Prng.create <literal> *)
                Array.iteri
                  (fun i _ ->
                    if
                      tok tks i = "create"
                      && tok tks (i - 1) = "."
                      && resolves_to tree (tok tks (i - 2)) "Prng"
                    then begin
                      let arg = tok tks (i + 1) in
                      if String.length arg > 0 && arg.[0] >= '0' && arg.[0] <= '9'
                      then
                        let witness =
                          match Lint_tree.enclosing_toplevel tree i with
                          | Some bd ->
                              [ u.Lint_graph.u_module ^ "."
                                ^ bd.Lint_tree.b_name ]
                          | None -> []
                        in
                        out :=
                          finding ~rule:name ~path ~at:tks.(i - 2) ~witness
                            (Printf.sprintf
                               "Prng.create %s: a literal-seeded stream draws \
                                the same randomness on every trial; thread \
                                ~rng from the experiment seed (or Prng.split \
                                a threaded stream)"
                               arg)
                          :: !out
                    end)
                  tks;
                (* module-level streams: a zero-parameter top-level value
                   whose body creates a stream is shared by every caller *)
                Array.iter
                  (fun (d : Lint_graph.def) ->
                    if d.Lint_graph.d_unit = ui && d.Lint_graph.d_params = []
                    then begin
                      let body = d.Lint_graph.d_body in
                      let creates = ref false in
                      for i = body.Lint_tree.s_first to body.Lint_tree.s_last do
                        if
                          tok tks i = "create"
                          && tok tks (i - 1) = "."
                          && resolves_to tree (tok tks (i - 2)) "Prng"
                        then creates := true
                      done;
                      if !creates then begin
                        (* witness: the first function that consumes the
                           shared stream, via the caller edges *)
                        let pred =
                          Lint_graph.bfs g ~edges:`Callers
                            ~roots:[ d.Lint_graph.d_id ]
                        in
                        let consumer =
                          Lint_graph.find_defs g ~f:(fun c ->
                              c.Lint_graph.d_id <> d.Lint_graph.d_id
                              && pred.(c.Lint_graph.d_id) >= 0)
                        in
                        let witness =
                          match consumer with
                          | c :: _ ->
                              witness_of_path (Lint_graph.path g ~pred c)
                          | [] -> [ def_label d ]
                        in
                        match def_token p d with
                        | Some at ->
                            out :=
                              finding ~rule:name ~path ~at ~witness
                                (Printf.sprintf
                                   "module-level Prng stream `%s' is shared \
                                    by every caller; accept ~rng as a \
                                    parameter so each trial draws from its \
                                    own split"
                                   d.Lint_graph.d_name)
                              :: !out
                        | None -> ()
                      end
                    end)
                  g.Lint_graph.defs
              end)
            g.Lint_graph.units;
          List.rev !out);
  }

(* ------------------------------------------------------------------ *)
(* no-io-transitive                                                    *)
(* ------------------------------------------------------------------ *)

let no_io_transitive =
  let name = "no-io-transitive" in
  {
    name;
    doc =
      "nothing in lib/ may transitively reach a stdout/stderr writer \
       outside the report layer; the witness shows the call chain";
    check =
      Project
        (fun p ->
          let g = p.p_graph in
          (* direct writers outside the report layer are the taint roots *)
          let direct d =
            let u = unit_of p d in
            if List.mem u.Lint_graph.u_path print_allowed then false
            else begin
              let tks = u.Lint_graph.u_lex.Lint_lexer.tokens in
              let body = d.Lint_graph.d_body in
              let found = ref false in
              for i = body.Lint_tree.s_first to body.Lint_tree.s_last do
                if is_print_site tks i then found := true
              done;
              !found
            end
          in
          let roots =
            Lint_graph.find_defs g ~f:(fun d -> direct d)
          in
          let root_set = List.sort_uniq Int.compare roots in
          let pred = Lint_graph.bfs g ~edges:`Callers ~roots:root_set in
          let out = ref [] in
          Array.iter
            (fun (d : Lint_graph.def) ->
              let u = unit_of p d in
              let path = u.Lint_graph.u_path in
              if
                under "lib" path
                && (not (List.mem path print_allowed))
                && pred.(d.Lint_graph.d_id) >= 0
                && not (List.mem d.Lint_graph.d_id root_set)
              then begin
                (* path from the writer up to [d]; reverse it so the
                   witness reads caller -> ... -> writer *)
                let chain =
                  List.rev (Lint_graph.path g ~pred d.Lint_graph.d_id)
                in
                match def_token p d with
                | Some at ->
                    out :=
                      finding ~rule:name ~path ~at
                        ~witness:(witness_of_path chain)
                        (Printf.sprintf
                           "`%s' reaches a console writer outside the report \
                            layer; return the text (or route through \
                            Report/Table/Asciiplot) instead"
                           d.Lint_graph.d_name)
                      :: !out
                | None -> ()
              end)
            g.Lint_graph.defs;
          List.rev !out);
  }

(* ------------------------------------------------------------------ *)
(* hot-path-alloc                                                      *)
(* ------------------------------------------------------------------ *)

(* The registered kernel entry points: the flooding round kernels, the
   churn jump kernels (add_node + kill ARE the jump: the paper's churn
   process replaces a killed node by a fresh birth), and the per-
   candidate expansion scorer. *)
let kernel_entries (d : Lint_graph.def) =
  let m = d.Lint_graph.d_module and x = d.Lint_graph.d_name in
  (m = "Flood" && has_prefix "expand_informed" x)
  || (m = "Dyngraph" && (x = "add_node" || x = "kill"))
  || (m = "Probe" && x = "consider")

let alloc_list_combinators =
  [
    "map"; "mapi"; "map2"; "filter"; "filter_map"; "concat"; "concat_map";
    "append"; "rev"; "rev_append"; "rev_map"; "init"; "sort"; "stable_sort";
    "fast_sort"; "merge"; "split"; "combine"; "flatten"; "of_seq"; "to_seq";
  ]

let hot_path_alloc =
  let name = "hot-path-alloc" in
  {
    name;
    doc =
      "functions reachable from the kernel entry points \
       (Flood.expand_informed*, Dyngraph.add_node/kill, Probe.consider) \
       must not allocate per element: no List combinators, per-iteration \
       closures, tuples or partial applications";
    check =
      Project
        (fun p ->
          let g = p.p_graph in
          let roots = Lint_graph.find_defs g ~f:kernel_entries in
          let pred = Lint_graph.bfs g ~edges:`Calls ~roots in
          let out = ref [] in
          Array.iter
            (fun (d : Lint_graph.def) ->
              let u = unit_of p d in
              let path = u.Lint_graph.u_path in
              if under "lib" path && pred.(d.Lint_graph.d_id) >= 0 then begin
                let witness =
                  witness_of_path (Lint_graph.path g ~pred d.Lint_graph.d_id)
                in
                let lex = u.Lint_graph.u_lex in
                let tree = u.Lint_graph.u_tree in
                let tks = lex.Lint_lexer.tokens in
                let body = d.Lint_graph.d_body in
                let emit ~at msg =
                  out := finding ~rule:name ~path ~at ~witness msg :: !out
                in
                (* pattern/type regions where a `,' is not a tuple
                   construction: let/and..=, fun..->, |..->, with..->,
                   :..terminator *)
                let ntk = Array.length tks in
                let masked = Array.make (max 1 ntk) false in
                let mask_from i stops =
                  let j = ref (i + 1) in
                  while
                    !j < ntk
                    && (not (List.mem (tok tks !j) stops))
                    && !j <= body.Lint_tree.s_last + 1
                  do
                    if !j < ntk then masked.(!j) <- true;
                    incr j
                  done
                in
                for i = max 0 body.Lint_tree.s_first
                    to min (ntk - 1) body.Lint_tree.s_last do
                  match tok tks i with
                  | "let" | "and" -> mask_from i [ "=" ]
                  | "fun" -> mask_from i [ "->" ]
                  | "|" | "with" -> mask_from i [ "->" ]
                  | ":" -> mask_from i [ "="; ")"; "->"; ";" ]
                  | _ -> ()
                done;
                let depth = ref 0 in
                for i = max 0 body.Lint_tree.s_first
                    to min (ntk - 1) body.Lint_tree.s_last do
                  let t = tok tks i in
                  (match t with
                  | "(" -> incr depth
                  | ")" -> decr depth
                  | _ -> ());
                  (* List combinators allocate per element *)
                  if
                    t = "List"
                    && tok tks (i + 1) = "."
                    && List.mem (tok tks (i + 2)) alloc_list_combinators
                    && tok tks (i - 1) <> "."
                  then
                    emit ~at:tks.(i)
                      (Printf.sprintf
                         "List.%s allocates a cons cell per element in a \
                          kernel hot path; use an array, Intvec or an index \
                          loop"
                         (tok tks (i + 2)))
                  (* list append allocates the whole left spine *)
                  else if t = "@" && i > body.Lint_tree.s_first then
                    emit ~at:tks.(i)
                      "list append (@) copies its left operand in a kernel \
                       hot path; use Intvec.push or preallocated arrays"
                  (* tuple construction outside pattern/type position *)
                  else if
                    t = "," && !depth >= 1 && i < ntk && not masked.(i)
                  then
                    emit ~at:tks.(i)
                      "tuple construction in a kernel hot path allocates per \
                       call; return components separately or use a \
                       preallocated record"
                  (* per-iteration closures *)
                  else if
                    (t = "fun" || t = "function")
                    && Lint_tree.in_nested_lambda_or_loop tree i
                  then
                    emit ~at:tks.(i)
                      "closure allocated per iteration of an enclosing \
                       loop/lambda in a kernel hot path; hoist it or inline \
                       the loop"
                done
              end)
            g.Lint_graph.defs;
          (* partial applications: a parenthesized application of a known
             def with fewer arguments than parameters *)
          Array.iter
            (fun (d : Lint_graph.def) ->
              let u = unit_of p d in
              let path = u.Lint_graph.u_path in
              if under "lib" path && pred.(d.Lint_graph.d_id) >= 0 then begin
                let witness =
                  witness_of_path (Lint_graph.path g ~pred d.Lint_graph.d_id)
                in
                let lex = u.Lint_graph.u_lex in
                let tks = lex.Lint_lexer.tokens in
                let ntk = Array.length tks in
                let body = d.Lint_graph.d_body in
                for i = max 0 body.Lint_tree.s_first
                    to min (ntk - 1) body.Lint_tree.s_last do
                  if tok tks (i - 1) = "(" && tok tks (i + 1) = "." then begin
                    (* (M.f a1 .. am): resolve f's arity and count args *)
                    let m = tok tks i and x = tok tks (i + 2) in
                    let target =
                      let u_tree = u.Lint_graph.u_tree in
                      let resolved =
                        match
                          Array.find_opt
                            (fun (a, _) -> a = m)
                            u_tree.Lint_tree.aliases
                        with
                        | Some (_, t) -> t
                        | None -> m
                      in
                      match Lint_graph.find_def g ~module_:resolved ~name:x with
                      | id :: _ -> Some g.Lint_graph.defs.(id)
                      | [] -> None
                    in
                    match target with
                    | Some callee
                      when List.length callee.Lint_graph.d_params >= 1 -> (
                        let arity = List.length callee.Lint_graph.d_params in
                        (* count simple argument atoms up to the `)' *)
                        let args = ref 0 in
                        let j = ref (i + 3) in
                        let ok = ref true in
                        let stop = ref false in
                        while (not !stop) && !ok && !j < ntk do
                          let t = tok tks !j in
                          if t = ")" then stop := true
                          else if t = "(" then begin
                            (* a parenthesized argument counts once *)
                            let dep = ref 1 in
                            incr j;
                            while !dep > 0 && !j < ntk do
                              (match tok tks !j with
                              | "(" -> incr dep
                              | ")" -> decr dep
                              | _ -> ());
                              incr j
                            done;
                            decr j;
                            incr args
                          end
                          else if t = "~" || t = "?" then begin
                            (* labelled argument: ~l:v *)
                            incr args;
                            j := !j + 2;
                            if tok tks !j = ":" then incr j
                          end
                          else if t = "." then ()
                          else if
                            String.length t > 0
                            && (t.[0] = '_'
                               || (t.[0] >= 'a' && t.[0] <= 'z')
                               || (t.[0] >= 'A' && t.[0] <= 'Z')
                               || (t.[0] >= '0' && t.[0] <= '9'))
                          then begin
                            (* qualified atoms M.x count once: skip the
                               dotted tail *)
                            while tok tks (!j + 1) = "." do
                              j := !j + 2
                            done;
                            incr args
                          end
                          else ok := false;
                          if (not !stop) && !ok then incr j
                        done;
                        if !ok && !stop && !args >= 1 && !args < arity then
                          out :=
                            finding ~rule:name ~path ~at:tks.(i) ~witness
                              (Printf.sprintf
                                 "partial application of %s.%s (%d of %d \
                                  arguments) allocates a closure in a kernel \
                                  hot path; apply it fully or hoist the \
                                  partial application"
                                 m x !args arity)
                            :: !out)
                    | _ -> ()
                  end
                done
              end)
            g.Lint_graph.defs;
          List.rev !out);
  }

(* ------------------------------------------------------------------ *)
(* dead-export                                                         *)
(* ------------------------------------------------------------------ *)

let dead_export =
  let name = "dead-export" in
  {
    name;
    doc =
      ".mli-declared values never referenced outside their own module are \
       dead surface; delete them or move them under test-only interfaces";
    check =
      Project
        (fun p ->
          let g = p.p_graph in
          let out = ref [] in
          List.iter
            (fun (path, (lex : Lint_lexer.t)) ->
              if under "lib" path then begin
                let module_ = Lint_graph.module_of_path path in
                let tks = lex.Lint_lexer.tokens in
                let ntk = Array.length tks in
                for i = 0 to ntk - 1 do
                  if
                    (tok tks i = "val" || tok tks i = "external")
                    && tok tks (i - 1) <> "."
                  then begin
                    let vname = tok tks (i + 1) in
                    (* skip operators (val ( + ) : ...): their uses are
                       not reliably trackable *)
                    if
                      String.length vname > 0
                      && (vname.[0] = '_'
                         || (vname.[0] >= 'a' && vname.[0] <= 'z'))
                    then
                      if
                        Lint_graph.external_ref_count g ~module_ ~name:vname
                        = 0
                      then
                        out :=
                          finding ~rule:name ~path ~at:tks.(i)
                            (Printf.sprintf
                               "val %s is never referenced outside %s; drop \
                                it from the interface or delete the \
                                implementation"
                               vname module_)
                          :: !out
                  end
                done
              end)
            p.p_interfaces;
          List.rev !out);
  }

(* ------------------------------------------------------------------ *)
(* unused-pragma (engine-implemented)                                  *)
(* ------------------------------------------------------------------ *)

let unused_pragma =
  {
    name = "unused-pragma";
    doc =
      "a `(* lint: allow *)' pragma that suppresses nothing is stale; \
       pragmas must expire with the code they excused";
    check = Synthetic;
  }

(* ------------------------------------------------------------------ *)
(* Catalogue                                                           *)
(* ------------------------------------------------------------------ *)

let all =
  [
    no_stdlib_random;
    no_polymorphic_sort;
    no_hashtbl_order;
    no_wildcard_exn;
    no_wallclock;
    mli_coverage;
    no_print_in_lib;
    prng_flow;
    no_io_transitive;
    hot_path_alloc;
    dead_export;
    unused_pragma;
  ]

let names = List.map (fun r -> r.name) all
let is_rule name = List.mem name names

let compare_findings a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule
