type finding = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

type context = { path : string; lex : Lint_lexer.t; has_mli : bool }
type rule = { name : string; doc : string; check : context -> finding list }

(* ------------------------------------------------------------------ *)
(* Path and token helpers                                              *)
(* ------------------------------------------------------------------ *)

let under dir path =
  let ld = String.length dir and lp = String.length path in
  lp > ld + 1 && String.sub path 0 (ld + 1) = dir ^ "/"

(* Text of token [i], or "" out of range: lets scans look at neighbors
   without bounds noise. *)
let tok (tks : Lint_lexer.token array) i =
  if i >= 0 && i < Array.length tks then tks.(i).Lint_lexer.text else ""

let finding ~rule ~ctx ~(at : Lint_lexer.token) message =
  {
    rule;
    file = ctx.path;
    line = at.Lint_lexer.line;
    col = at.Lint_lexer.col;
    message;
  }

(* Shared scan: call [f i tks] on every token index, collect findings. *)
let scan_tokens ctx f =
  let tks = ctx.lex.Lint_lexer.tokens in
  let out = ref [] in
  Array.iteri
    (fun i _ -> match f tks i with Some fd -> out := fd :: !out | None -> ())
    tks;
  List.rev !out

let definition_keywords = [ "let"; "and"; "rec"; "val"; "external"; "method" ]

(* ------------------------------------------------------------------ *)
(* no-stdlib-random                                                    *)
(* ------------------------------------------------------------------ *)

let prng_home = "lib/util/prng.ml"

let no_stdlib_random =
  let name = "no-stdlib-random" in
  {
    name;
    doc =
      "all randomness flows through Prng; only lib/util/prng.ml may touch \
       Stdlib.Random";
    check =
      (fun ctx ->
        if ctx.path = prng_home then []
        else
          scan_tokens ctx (fun tks i ->
              let prev = tok tks (i - 1) and prev2 = tok tks (i - 2) in
              if
                tok tks i = "Random"
                && (prev <> "." || prev2 = "Stdlib")
                && not (List.mem prev definition_keywords)
                && prev <> "module"
              then
                Some
                  (finding ~rule:name ~ctx ~at:tks.(i)
                     "Stdlib.Random breaks seed-reproducibility; draw from a \
                      Prng.t threaded from the experiment seed")
              else None));
  }

(* ------------------------------------------------------------------ *)
(* no-polymorphic-sort                                                 *)
(* ------------------------------------------------------------------ *)

let no_polymorphic_sort =
  let name = "no-polymorphic-sort" in
  {
    name;
    doc =
      "bare polymorphic `compare' is banned (sorts included); use \
       Int.compare / Float.compare / String.compare";
    check =
      (fun ctx ->
        scan_tokens ctx (fun tks i ->
            if tok tks i <> "compare" then None
            else
              let prev = tok tks (i - 1)
              and prev2 = tok tks (i - 2)
              and next = tok tks (i + 1) in
              let qualified = prev = "." in
              let poly_qualified =
                qualified && (prev2 = "Stdlib" || prev2 = "Poly")
              in
              let is_definition = List.mem prev definition_keywords in
              let is_label = prev = "~" || next = ":" in
              if
                poly_qualified
                || ((not qualified) && (not is_definition) && not is_label)
              then
                Some
                  (finding ~rule:name ~ctx ~at:tks.(i)
                     "polymorphic compare: ordering silently depends on \
                      runtime representation; use a monomorphic comparator \
                      (Int.compare, Float.compare, String.compare, ...)")
              else None));
  }

(* ------------------------------------------------------------------ *)
(* no-hashtbl-order                                                    *)
(* ------------------------------------------------------------------ *)

let hashtbl_restricted_dirs = [ "lib/graph"; "lib/core"; "lib/experiments" ]

let hashtbl_order_sensitive =
  [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

let no_hashtbl_order =
  let name = "no-hashtbl-order" in
  {
    name;
    doc =
      "Hashtbl.iter/fold leak table order into results in lib/graph, \
       lib/core, lib/experiments; rewrite order-insensitively or suppress \
       with a reason";
    check =
      (fun ctx ->
        if not (List.exists (fun d -> under d ctx.path) hashtbl_restricted_dirs)
        then []
        else
          scan_tokens ctx (fun tks i ->
              if
                tok tks i = "Hashtbl"
                && tok tks (i + 1) = "."
                && List.mem (tok tks (i + 2)) hashtbl_order_sensitive
                && tok tks (i - 1) <> "."
              then
                Some
                  (finding ~rule:name ~ctx ~at:tks.(i)
                     (Printf.sprintf
                        "Hashtbl.%s iterates in table order, which depends on \
                         insertion history; sort the result or suppress with \
                         a written reason if order provably cannot leak"
                        (tok tks (i + 2))))
              else None));
  }

(* ------------------------------------------------------------------ *)
(* no-wildcard-exn                                                     *)
(* ------------------------------------------------------------------ *)

(* Associating each `with' with its opening `try'/`match' is done with a
   stack, recording the brace depth at push time so that record updates
   [{ e with ... }] inside a try body do not steal the pop.  `with type'
   / `with module' constraints are skipped outright. *)
let no_wildcard_exn =
  let name = "no-wildcard-exn" in
  {
    name;
    doc =
      "`try ... with _ ->' swallows Out_of_memory, Stack_overflow and \
       programming errors alike; match the exceptions you mean";
    check =
      (fun ctx ->
        let tks = ctx.lex.Lint_lexer.tokens in
        let out = ref [] in
        let stack = ref [] in
        let brace_depth = ref 0 in
        Array.iteri
          (fun i (t : Lint_lexer.token) ->
            match t.Lint_lexer.text with
            | "{" -> incr brace_depth
            | "}" -> decr brace_depth
            | "try" -> stack := (`Try, !brace_depth) :: !stack
            | "match" -> stack := (`Match, !brace_depth) :: !stack
            | "with" -> (
                let next = tok tks (i + 1) in
                if next = "type" || next = "module" then ()
                else
                  match !stack with
                  | (kind, depth) :: rest when depth >= !brace_depth ->
                      stack := rest;
                      if kind = `Try && next = "_" && tok tks (i + 2) = "->"
                      then
                        out :=
                          finding ~rule:name ~ctx ~at:t
                            "wildcard exception handler: catches \
                             Out_of_memory/Stack_overflow/Assert_failure; \
                             name the exception constructors instead"
                          :: !out
                  | _ -> ())
            | _ -> ())
          tks;
        List.rev !out);
  }

(* ------------------------------------------------------------------ *)
(* no-wallclock                                                        *)
(* ------------------------------------------------------------------ *)

let wallclock_allowed path = path = "lib/experiments/telemetry.ml" || under "bench" path

let wallclock_calls = [ ("Unix", "gettimeofday"); ("Unix", "time"); ("Sys", "time") ]

let no_wallclock =
  let name = "no-wallclock" in
  {
    name;
    doc =
      "wall-clock reads belong in lib/experiments/telemetry.ml and bench/ \
       only; simulation results must not observe real time";
    check =
      (fun ctx ->
        if wallclock_allowed ctx.path then []
        else
          scan_tokens ctx (fun tks i ->
              let here = (tok tks i, tok tks (i + 2)) in
              if
                tok tks (i + 1) = "."
                && tok tks (i - 1) <> "."
                && List.exists (fun c -> c = here) wallclock_calls
              then
                Some
                  (finding ~rule:name ~ctx ~at:tks.(i)
                     (Printf.sprintf
                        "%s.%s observes wall-clock time; route timing through \
                         Telemetry so simulations stay a pure function of the \
                         seed"
                        (fst here) (snd here)))
              else None));
  }

(* ------------------------------------------------------------------ *)
(* mli-coverage                                                        *)
(* ------------------------------------------------------------------ *)

let mli_coverage =
  let name = "mli-coverage" in
  {
    name;
    doc = "every lib/**/*.ml must have a matching .mli interface";
    check =
      (fun ctx ->
        if under "lib" ctx.path && not ctx.has_mli then
          [
            {
              rule = name;
              file = ctx.path;
              line = 1;
              col = 1;
              message =
                "missing interface file: add a .mli so the module's public \
                 surface is explicit";
            };
          ]
        else []);
  }

(* ------------------------------------------------------------------ *)
(* no-print-in-lib                                                     *)
(* ------------------------------------------------------------------ *)

let print_allowed =
  [ "lib/experiments/report.ml"; "lib/util/table.ml"; "lib/util/asciiplot.ml" ]

(* The Stdlib console writers, by name: a prefix match would also catch
   unrelated identifiers that merely start with print_. *)
let stdlib_printers =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_bytes"; "print_int"; "print_float"; "prerr_string";
    "prerr_endline"; "prerr_newline"; "prerr_char"; "prerr_bytes";
    "prerr_int"; "prerr_float";
  ]

let no_print_in_lib =
  let name = "no-print-in-lib" in
  {
    name;
    doc =
      "stdout writes in lib/ must go through Report/Table/Asciiplot so text \
       output stays byte-reproducible";
    check =
      (fun ctx ->
        if (not (under "lib" ctx.path)) || List.mem ctx.path print_allowed then
          []
        else
          scan_tokens ctx (fun tks i ->
              let t = tok tks i in
              let prev = tok tks (i - 1) in
              let direct_print =
                List.mem t stdlib_printers
                && prev <> "."
                && not (List.mem prev definition_keywords)
              in
              let formatted_print =
                (t = "Printf" || t = "Format")
                && tok tks (i + 1) = "."
                && (tok tks (i + 2) = "printf" || tok tks (i + 2) = "eprintf")
                && prev <> "."
              in
              if direct_print || formatted_print then
                Some
                  (finding ~rule:name ~ctx ~at:tks.(i)
                     "direct console output from lib/; emit through \
                      Report/Table/Asciiplot (or return the string) so \
                      experiment output stays controlled")
              else None));
  }

(* ------------------------------------------------------------------ *)
(* Catalogue                                                           *)
(* ------------------------------------------------------------------ *)

let all =
  [
    no_stdlib_random;
    no_polymorphic_sort;
    no_hashtbl_order;
    no_wildcard_exn;
    no_wallclock;
    mli_coverage;
    no_print_in_lib;
  ]

let names = List.map (fun r -> r.name) all
let is_rule name = List.mem name names

let compare_findings a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule
