(* Dependency-free versioned binary codec for checkpoint files.

   Framing: the schema magic line, an 8-byte little-endian payload
   length, the payload, and a CRC-32 of the payload.  Readers validate
   all three before any field is decoded, so a truncated or corrupted
   checkpoint (the expected failure mode of a SIGKILLed writer) is
   detected up front instead of surfacing as a garbled decode. *)

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type writer = Buffer.t

let writer () = Buffer.create 4096
let contents (w : writer) = Buffer.contents w

type reader = { data : string; mutable pos : int; limit : int }

let reader ?(pos = 0) ?limit data =
  let limit = match limit with Some l -> l | None -> String.length data in
  if pos < 0 || limit > String.length data || pos > limit then
    fail "Codec.reader: bounds [%d, %d) outside data of length %d" pos limit
      (String.length data);
  { data; pos; limit }

let remaining r = r.limit - r.pos
let at_end r = r.pos >= r.limit

let expect_end r =
  if not (at_end r) then fail "Codec: %d trailing bytes after decode" (remaining r)

let need r n =
  if remaining r < n then
    fail "Codec: truncated input (need %d bytes, have %d)" n (remaining r)

(* --- primitives --- *)

let u8 w v = Buffer.add_char w (Char.chr (v land 0xff))

let read_u8 r =
  need r 1;
  let v = Char.code (String.unsafe_get r.data r.pos) in
  r.pos <- r.pos + 1;
  v

(* Zigzag + LEB128: small magnitudes (the common case for counts and
   ids) take one byte; the full native int range round-trips. *)
let varint w v =
  let z = (v lsl 1) lxor (v asr (Sys.int_size - 1)) in
  let rec go z =
    if z land lnot 0x7f = 0 then u8 w z
    else begin
      u8 w (0x80 lor (z land 0x7f));
      go (z lsr 7)
    end
  in
  go z

let read_varint r =
  let rec go shift acc =
    if shift >= Sys.int_size then fail "Codec: varint overflow";
    let b = read_u8 r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  let z = go 0 0 in
  (z lsr 1) lxor (-(z land 1))

let i64 w v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  Buffer.add_bytes w b

let read_i64 r =
  need r 8;
  let v = Bytes.get_int64_le (Bytes.unsafe_of_string r.data) r.pos in
  r.pos <- r.pos + 8;
  v

let f64 w v = i64 w (Int64.bits_of_float v)
let read_f64 r = Int64.float_of_bits (read_i64 r)

let bool w v = u8 w (if v then 1 else 0)

let read_bool r =
  match read_u8 r with
  | 0 -> false
  | 1 -> true
  | b -> fail "Codec: invalid bool byte %d" b

let string w s =
  varint w (String.length s);
  Buffer.add_string w s

let read_string r =
  let len = read_varint r in
  if len < 0 then fail "Codec: negative string length %d" len;
  need r len;
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

let option enc w = function
  | None -> bool w false
  | Some v ->
      bool w true;
      enc w v

let read_option dec r = if read_bool r then Some (dec r) else None

let array enc w a =
  varint w (Array.length a);
  Array.iter (fun v -> enc w v) a

let read_array dec r =
  let len = read_varint r in
  if len < 0 then fail "Codec: negative array length %d" len;
  (* Guard against absurd lengths from corrupted input before allocating. *)
  if len > remaining r then fail "Codec: array length %d exceeds input" len;
  Array.init len (fun _ -> dec r)

let int_array w a = array varint w a
let read_int_array r = read_array read_varint r

(* Lists are encoded front-to-back; decode rebuilds the same order. *)
let int_list w l =
  varint w (List.length l);
  List.iter (fun v -> varint w v) l

let read_int_list r =
  let len = read_varint r in
  if len < 0 then fail "Codec: negative list length %d" len;
  if len > remaining r then fail "Codec: list length %d exceeds input" len;
  let acc = ref [] in
  for _ = 1 to len do
    acc := read_varint r :: !acc
  done;
  List.rev !acc

(* --- CRC-32 (IEEE 802.3, reflected), table-driven --- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 <> 0 then c := 0xedb88320 lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff

(* --- framing --- *)

let schema = "churnet-ckpt/1"

let frame ~schema:tag fill =
  let w = writer () in
  fill w;
  let payload = contents w in
  let out = Buffer.create (String.length payload + String.length tag + 16) in
  Buffer.add_string out tag;
  Buffer.add_char out '\n';
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int (String.length payload));
  Buffer.add_bytes out b;
  Buffer.add_string out payload;
  Bytes.set_int64_le b 0 (Int64.of_int (crc32 payload));
  Buffer.add_subbytes out b 0 4;
  Buffer.contents out

let unframe ~schema:tag data =
  let magic = tag ^ "\n" in
  let mlen = String.length magic in
  if String.length data < mlen || String.sub data 0 mlen <> magic then
    fail "Codec: bad magic (expected %S)" tag;
  if String.length data < mlen + 8 then fail "Codec: truncated header";
  let payload_len =
    Int64.to_int (Bytes.get_int64_le (Bytes.unsafe_of_string data) mlen)
  in
  if payload_len < 0 || String.length data < mlen + 8 + payload_len + 4 then
    fail "Codec: truncated payload (declared %d bytes)" payload_len;
  if String.length data > mlen + 8 + payload_len + 4 then
    fail "Codec: %d trailing bytes after the frame"
      (String.length data - (mlen + 8 + payload_len + 4));
  let payload_start = mlen + 8 in
  let payload = String.sub data payload_start payload_len in
  let stored =
    Int64.to_int
      (Int64.logand
         (Int64.of_int32
            (Bytes.get_int32_le (Bytes.unsafe_of_string data)
               (payload_start + payload_len)))
         0xffffffffL)
  in
  let actual = crc32 payload in
  if stored <> actual then
    fail "Codec: checksum mismatch (stored %08x, computed %08x)" stored actual;
  reader payload

(* --- files --- *)

let read_file ~schema:tag path =
  let ic =
    try open_in_bin path
    with Sys_error e -> fail "Codec: cannot open %s: %s" path e
  in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  unframe ~schema:tag data

(* Atomic + durable write: the bytes land in a sibling temp file first
   and the final name appears only via rename, so a crash mid-write can
   never leave a half-written checkpoint under the real path.  The temp
   file is fsynced before the rename — otherwise a power loss could make
   the rename durable while the data is not, leaving a truncated file
   under the real path, exactly the torn state the rename is meant to
   rule out.  A failed write unlinks the temp file instead of leaking
   it, and the temp name carries a pid + per-process counter suffix so
   concurrent writers (sweep worker domains, parallel processes)
   checkpointing the same path never clobber each other's staging
   bytes. *)
let tmp_seq = Atomic.make 0

let remove_noerr path = try Sys.remove path with Sys_error _ -> ()

let write_file ~schema:tag path fill =
  let data = frame ~schema:tag fill in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_seq 1)
  in
  let oc =
    try open_out_bin tmp
    with Sys_error e -> fail "Codec: cannot write %s: %s" tmp e
  in
  (try
     output_string oc data;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc)
   with
  | Sys_error e ->
      close_out_noerr oc;
      remove_noerr tmp;
      fail "Codec: cannot write %s: %s" tmp e
  | Unix.Unix_error (err, _, _) ->
      close_out_noerr oc;
      remove_noerr tmp;
      fail "Codec: cannot sync %s: %s" tmp (Unix.error_message err));
  close_out_noerr oc;
  try Sys.rename tmp path
  with Sys_error e ->
    remove_noerr tmp;
    fail "Codec: cannot rename %s to %s: %s" tmp path e
