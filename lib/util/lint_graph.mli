(** Cross-file symbol index and call graph for churnet-lint.

    Nodes are top-level bindings (functions {e and} module-level
    values) of every parsed unit; edges are resolved identifier
    references — qualified paths through each unit's module aliases,
    and bare identifiers through same-file bindings and
    [open]/[include] scopes, with shadowing by parameters, nested lets
    and lambda parameters honored.

    Like {!Lint_tree}, resolution is a total heuristic: it
    over-approximates edges rather than raising, which is the right
    bias for reachability-style rules (hot-path-alloc,
    no-io-transitive) and reference-counting rules (dead-export). *)

type def = {
  d_id : int;  (** index into {!t.defs} *)
  d_unit : int;  (** index into {!t.units} *)
  d_module : string;  (** file module name, e.g. ["Flood"] *)
  d_submodule : string list;  (** submodule path within the file *)
  d_name : string;
  d_params : Lint_tree.param list;
  d_span : Lint_tree.span;  (** whole binding *)
  d_body : Lint_tree.span;  (** right-hand side *)
  d_line : int;  (** 1-based line of the bound name *)
  d_col : int;  (** 1-based column of the bound name *)
}

type unit_info = {
  u_path : string;
  u_module : string;  (** derived from the basename, e.g. ["Flood"] *)
  u_lex : Lint_lexer.t;
  u_tree : Lint_tree.t;
}

type t = {
  units : unit_info array;
  defs : def array;
  calls : int list array;  (** def id -> callee def ids *)
  callers : int list array;  (** def id -> caller def ids *)
  external_refs : (string * string, int) Hashtbl.t;
      (** (module, name) -> number of references from other units;
          includes qualified references to values without a parsed def
          (pattern bindings, interface-only names) *)
}

val module_of_path : string -> string
(** ["lib/core/flood.ml"] -> ["Flood"]. *)

val build : (string * Lint_lexer.t * Lint_tree.t) list -> t
(** [build units] indexes the given (path, lexed, parsed) units and
    resolves references between them.  Total: never raises. *)

val find_defs : t -> f:(def -> bool) -> int list
(** Def ids satisfying [f], in definition order. *)

val find_def : t -> module_:string -> name:string -> int list
(** Def ids matching exactly (file module, bound name). *)

val bfs : t -> edges:[ `Calls | `Callers ] -> roots:int list -> int array
(** Breadth-first reachability from [roots] over the chosen edge
    direction.  Returns the predecessor array: [pred.(d)] is the node
    through which [d] was first reached, [d] itself for a root, and
    [-1] when unreachable. *)

val path : t -> pred:int array -> int -> def list
(** The witness chain from a root to the given def id under a {!bfs}
    predecessor array, root first; empty when unreachable. *)

val external_ref_count : t -> module_:string -> name:string -> int
(** How many references to [module_.name] were seen from {e other}
    units — the dead-export test. *)
