(** Compact bitset over 0..capacity-1.
    Used for informed-set membership during large floods.

    The capacity is fixed by {!create} but can be raised explicitly with
    {!ensure_capacity} (amortized-O(1) doubling), which lets flooding
    simulations track node ids that keep growing with churn.  All other
    operations raise [Invalid_argument] outside [0, capacity). *)

type t

val create : int -> t
val capacity : t -> int

val ensure_capacity : t -> int -> unit
(** [ensure_capacity t c] grows the index space to at least [c] (to at
    least double the current capacity when growing, so repeated one-id
    extensions stay amortized O(1)).  Existing members are preserved;
    shrinking never happens. *)

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val cardinal : t -> int
val clear : t -> unit

val copy : t -> t
(** Independent copy: mutations on either side never reach the other. *)

val iter : (int -> unit) -> t -> unit
(** Ascending order.  The scan is word-level: all-zero 8-byte words are
    skipped with one load, and only set bits pay per-bit work.  [f] may
    remove the element it was just called on (each byte of the underlying
    store is snapshotted before its bits are visited); any other
    concurrent mutation is unspecified. *)

val iter_words : (int -> int64 -> unit) -> t -> unit
(** [iter_words f t] calls [f offset word] for each 64-bit little-endian
    word of the store, [offset] being the index of the word's lowest bit
    (a multiple of 64).  The final word is zero-padded when the store is
    not a multiple of 8 bytes.  Bit [i] of [word] set means
    [mem t (offset + i)]. *)

val encode : Codec.writer -> t -> unit
(** Serialize capacity, cardinal and the raw bit words for checkpoints. *)

val decode : Codec.reader -> t
(** Rejects (with [Codec.Error]) a payload whose recorded cardinal does
    not equal the popcount of the decoded words, in addition to the
    structural length checks. *)
