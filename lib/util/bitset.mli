(** Compact fixed-capacity bitset over 0..capacity-1.
    Used for informed-set membership during large floods. *)

type t

val create : int -> t
val capacity : t -> int
val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val cardinal : t -> int
val clear : t -> unit
val iter : (int -> unit) -> t -> unit
