(** A small OCaml lexer for churnet-lint.

    [lex] splits a source file into its {e code tokens} and its
    {e comments}, which is exactly the distinction the lint rules need:
    token rules must never fire on text inside a comment, a string
    literal, a quoted string or a character literal, while suppression
    pragmas live inside comments.

    The lexer understands:
    - nested [(* ... *)] comments, including string and quoted-string
      literals inside comments (whose content cannot close the comment),
      and the classic ['"'] character-literal-in-comment corner case;
    - ["..."] string literals with backslash escapes;
    - [{id|...|id}] quoted strings with arbitrary lowercase delimiters;
    - character literals, including escaped ones (['\n'], ['\'']) and
      ones containing lexer-significant characters (['"'], ['(']),
      disambiguated from type variables (['a]) and from primes inside
      identifiers ([x']);
    - identifiers, numbers, and maximal runs of operator characters
      (so [->] arrives as a single token, and [Foo.bar] as three).

    String, quoted-string and character literals produce no tokens at
    all: lint rules only ever see real code. *)

type token = {
  text : string;  (** the lexeme, e.g. ["Hashtbl"], ["."], ["->"] *)
  line : int;  (** 1-based line of the first character *)
  col : int;  (** 1-based column of the first character *)
}

type comment = {
  c_text : string;  (** comment body without the outer [(*]/[*)] *)
  c_line : int;  (** 1-based line where the comment opens *)
  c_end_line : int;  (** 1-based line where the comment closes *)
}

type t = {
  tokens : token array;  (** code tokens, in source order *)
  comments : comment array;  (** comments, in source order *)
}

val lex : string -> t
(** [lex source] tokenizes [source].  The lexer is total: malformed
    input (unterminated comment or string) never raises; scanning
    simply stops at end of input. *)
