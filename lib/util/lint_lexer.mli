(** A small OCaml lexer for churnet-lint.

    [lex] splits a source file into its {e code tokens} and its
    {e comments}, which is exactly the distinction the lint rules need:
    token rules must never fire on text inside a comment, a string
    literal, a quoted string or a character literal, while suppression
    pragmas live inside comments.

    The lexer understands:
    - nested [(* ... *)] comments, including string and quoted-string
      literals inside comments (whose content cannot close the comment),
      and the classic ['"'] character-literal-in-comment corner case;
    - ["..."] string literals with backslash escapes;
    - [{id|...|id}] quoted strings with arbitrary lowercase delimiters;
    - character literals, including escaped ones (['\n'], ['\'']) and
      ones containing lexer-significant characters (['"'], ['(']),
      disambiguated from type variables (['a]) and from primes inside
      identifiers ([x']);
    - identifiers, numbers, and maximal runs of operator characters
      (so [->] arrives as a single token, and [Foo.bar] as three).

    String, quoted-string and character literals produce no tokens at
    all: lint rules only ever see real code. *)

type token = {
  text : string;  (** the lexeme, e.g. ["Hashtbl"], ["."], ["->"] *)
  line : int;  (** 1-based line of the first character *)
  col : int;  (** 1-based column of the first character *)
}

type comment = {
  c_text : string;  (** comment body without the outer [(*]/[*)] *)
  c_line : int;  (** 1-based line where the comment opens *)
  c_end_line : int;  (** 1-based line where the comment closes *)
}

type diagnostic = {
  d_message : string;  (** what is malformed, e.g. unterminated comment *)
  d_line : int;  (** 1-based line where the offending construct opens *)
  d_col : int;  (** 1-based column where it opens *)
}

type t = {
  tokens : token array;  (** code tokens, in source order *)
  comments : comment array;  (** comments, in source order *)
  diagnostics : diagnostic array;
      (** malformed-input notes (unterminated comment, string or quoted
          string reaching end of file), positioned at the opener so a
          silent truncation of the tail of a file is never invisible *)
}

val lex : string -> t
(** [lex source] tokenizes [source].  The lexer is total: malformed
    input (unterminated comment or string) never raises; scanning stops
    at end of input and the truncation is reported in
    {!t.diagnostics}.  Line endings: LF, CRLF and bare CR all advance
    the line counter; a CR in a CRLF pair never shifts columns. *)
