let exponential rng lambda =
  if lambda <= 0. then invalid_arg "Dist.exponential: lambda <= 0";
  (* Inversion; 1 - u avoids log 0. *)
  -.log (1. -. Prng.unit_float rng) /. lambda

let log_factorial_table =
  lazy
    (let t = Array.make 256 0. in
     for k = 2 to 255 do
       t.(k) <- t.(k - 1) +. log (float_of_int k)
     done;
     t)

let log_factorial k =
  if k < 0 then invalid_arg "Dist.log_factorial: negative argument";
  if k < 256 then (Lazy.force log_factorial_table).(k)
  else
    (* Stirling series with the 1/12k correction: accurate to ~1e-8 here. *)
    let n = float_of_int k in
    ((n +. 0.5) *. log n) -. n
    +. (0.5 *. log (2. *. Float.pi))
    +. (1. /. (12. *. n))
    -. (1. /. (360. *. n *. n *. n))

let poisson_pmf mean k =
  if mean < 0. || k < 0 then 0.
  else if mean = 0. then if k = 0 then 1. else 0.
  else exp ((float_of_int k *. log mean) -. mean -. log_factorial k)

let poisson rng mean =
  if mean < 0. then invalid_arg "Dist.poisson: negative mean";
  if mean = 0. then 0
  else begin
    (* Knuth (multiply uniforms until below e^-m) is only safe while
       e^-m stays comfortably above the subnormal range: the running
       product underflows to 0. before crossing e^-m once m is large
       (observable from m/2 ≈ 700 upward), silently capping the
       variate.  e^-30 ≈ 9.4e-14, so 30-sized stages keep every stage
       exact; Poisson additivity makes the chunked sum exact too. *)
    let knuth m =
      let l = exp (-.m) in
      let rec go k p =
        let p = p *. Prng.unit_float rng in
        if p <= l then k else go (k + 1) p
      in
      go 0 1.
    in
    if mean < 30. then knuth mean
    else begin
      let acc = ref 0 in
      let rest = ref mean in
      while !rest > 30. do
        acc := !acc + knuth 30.;
        rest := !rest -. 30.
      done;
      !acc + knuth !rest
    end
  end

let geometric rng p =
  if p <= 0. || p > 1. then invalid_arg "Dist.geometric: p out of (0,1]";
  if p = 1. then 0
  else
    let u = 1. -. Prng.unit_float rng in
    int_of_float (Float.floor (log u /. log (1. -. p)))

let binomial rng n p =
  if n < 0 then invalid_arg "Dist.binomial: negative n";
  if p <= 0. then 0
  else if p >= 1. then n
  else if float_of_int n *. p < 32. then begin
    (* Waiting-time method: each success consumes Geometric(p) >= 1
       trials; count successes until the n trials are exhausted. *)
    let q = log (1. -. p) in
    let rec go count trials_used =
      let u = 1. -. Prng.unit_float rng in
      let skip = 1 + int_of_float (Float.floor (log u /. q)) in
      let trials_used = trials_used + skip in
      if trials_used > n then count else go (count + 1) trials_used
    in
    let c = go 0 0 in
    min c n
  end
  else begin
    (* Direct Bernoulli sum; n is moderate in all our uses. *)
    let c = ref 0 in
    for _ = 1 to n do
      if Prng.bernoulli rng p then incr c
    done;
    !c
  end

let std_normal rng =
  let u1 = 1. -. Prng.unit_float rng in
  let u2 = Prng.unit_float rng in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let exponential_pdf lambda x = if x < 0. then 0. else lambda *. exp (-.lambda *. x)
