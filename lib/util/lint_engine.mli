(** churnet-lint driver: file discovery, the shared per-file parse
    cache, suppression pragmas, baseline bookkeeping and report
    assembly.

    Every scanned file is read, lexed and (for [.ml]) structurally
    parsed exactly once; file rules, project rules (symbol index + call
    graph via {!Lint_graph}), pragma parsing and syntax diagnostics all
    consume that one parse, so adding rules does not add file I/O.

    Suppression pragmas live in ordinary comments (in [.ml] {e and}
    [.mli] files):

    {v
    (* lint: allow <rule> — reason *)        suppress on this and the next line
    (* lint: allow-file <rule> — reason *)   suppress in the whole file
    v}

    A pragma must name a known rule and carry a non-empty reason (after
    an optional "—" or "--" separator); otherwise it is itself reported
    under the synthetic rule [bad-pragma].  A pragma that suppresses
    {e nothing} is reported under [unused-pragma], so suppressions
    expire with the code they excused.  Lexer-level damage
    (unterminated comment or string — i.e. a silently truncated scan)
    is reported under the synthetic rule [bad-syntax] at the position
    of the offending opener.

    The baseline file grandfathers known findings: one [rule file:line]
    entry per line, ['#'] comments allowed.  Findings matching a
    baseline entry do not fail the run; baseline entries that no longer
    fire are reported as {e expired} so the file shrinks monotonically
    to empty. *)

type config = {
  paths : string list;  (** files or directories to scan *)
  root : string option;
      (** interpret [paths] (and report findings) relative to this
          directory; rules key off repo-relative prefixes like "lib/",
          so fixture trees are linted with their own root *)
  baseline_path : string option;
  json_path : string option;  (** write a [churnet-lint/2] report here *)
  update_baseline : bool;
      (** rewrite the baseline to exactly the current findings *)
}

type baseline_entry = { b_rule : string; b_file : string; b_line : int }

type outcome = {
  findings : Lint_rules.finding list;
      (** new findings (not baselined, not suppressed), sorted *)
  baselined : int;  (** findings absorbed by the baseline *)
  suppressed : int;  (** findings silenced by pragmas *)
  expired : baseline_entry list;  (** baseline entries that no longer fire *)
  files_scanned : int;  (** [.ml] and [.mli] files *)
}

val run : config -> (outcome, string) result
(** Scan, lint, apply pragmas and baseline, and honor [json_path] /
    [update_baseline].  [Error msg] reports unusable inputs (missing
    path, malformed baseline); it never raises. *)

val render : outcome -> string
(** Human-readable report: one
    [file:line:col: [rule] message [path: A -> B]] line per finding
    plus a summary line (and expired-baseline notices). *)

val to_json : outcome -> Json.t
(** The [churnet-lint/2] report document: each finding carries its
    rule's one-line doc and (for graph rules) the witness call path. *)

val exit_code : outcome -> int
(** [0] when {!outcome.findings} is empty, [1] otherwise. *)
