(** churnet-lint driver: file discovery, suppression pragmas, baseline
    bookkeeping and report assembly.

    Suppression pragmas live in ordinary comments:

    {v
    (* lint: allow <rule> — reason *)        suppress on this and the next line
    (* lint: allow-file <rule> — reason *)   suppress in the whole file
    v}

    A pragma must name a known rule and carry a non-empty reason (after
    an optional "—" or "--" separator); otherwise it is itself reported
    under the synthetic rule [bad-pragma].

    The baseline file grandfathers known findings: one [rule file:line]
    entry per line, ['#'] comments allowed.  Findings matching a
    baseline entry do not fail the run; baseline entries that no longer
    fire are reported as {e expired} so the file shrinks monotonically
    to empty. *)

type config = {
  paths : string list;  (** files or directories to scan *)
  baseline_path : string option;
  json_path : string option;  (** write a [churnet-lint/1] report here *)
  update_baseline : bool;
      (** rewrite the baseline to exactly the current findings *)
}

type baseline_entry = { b_rule : string; b_file : string; b_line : int }

type outcome = {
  findings : Lint_rules.finding list;
      (** new findings (not baselined, not suppressed), sorted *)
  baselined : int;  (** findings absorbed by the baseline *)
  suppressed : int;  (** findings silenced by pragmas *)
  expired : baseline_entry list;  (** baseline entries that no longer fire *)
  files_scanned : int;
}

val run : config -> (outcome, string) result
(** Scan, lint, apply pragmas and baseline, and honor [json_path] /
    [update_baseline].  [Error msg] reports unusable inputs (missing
    path, malformed baseline); it never raises. *)

val render : outcome -> string
(** Human-readable report: one [file:line:col: [rule] message] line per
    finding plus a summary line (and expired-baseline notices). *)

val to_json : outcome -> Json.t
(** The [churnet-lint/1] report document. *)

val exit_code : outcome -> int
(** [0] when {!outcome.findings} is empty, [1] otherwise. *)
