type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }
let add_row t row = t.rows <- row :: t.rows

let pad_to n row =
  let len = List.length row in
  if len >= n then row else row @ List.init (n - len) (fun _ -> "")

let render t =
  let ncols = List.length t.headers in
  let rows = List.rev_map (pad_to ncols) t.rows in
  let all = t.headers :: rows in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell)
        row)
    all;
  let buf = Buffer.create 1024 in
  let sep () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line row =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' ');
        Buffer.add_string buf " |")
      row;
    Buffer.add_char buf '\n'
  in
  sep ();
  line t.headers;
  sep ();
  List.iter line rows;
  sep ();
  Buffer.contents buf

let csv_cell s =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if needs_quote then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_csv t =
  let buf = Buffer.create 1024 in
  let line row =
    Buffer.add_string buf (String.concat "," (List.map csv_cell row));
    Buffer.add_char buf '\n'
  in
  line t.headers;
  List.iter line (List.rev t.rows);
  Buffer.contents buf

let to_json t =
  Json.Obj
    [
      ("headers", Json.Arr (List.map (fun h -> Json.String h) t.headers));
      ( "rows",
        Json.Arr
          (List.rev_map
             (fun row -> Json.Arr (List.map (fun c -> Json.String c) row))
             t.rows) );
    ]

let print t = print_string (render t)

let fmt_float ?(digits = 4) x =
  if Float.is_nan x then "nan"
  else if Float.is_integer x && Float.abs x < 1e15 && digits = 0 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.*f" digits x

let fmt_pct x =
  if Float.is_nan x then "nan" else Printf.sprintf "%.2f%%" (100. *. x)

let fmt_ci (lo, hi) = Printf.sprintf "[%s, %s]" (fmt_float lo) (fmt_float hi)
let fmt_sci x = Printf.sprintf "%.3g" x
