(** Growable int vector with O(1) amortized push and O(1) reuse via
    {!clear} (no shrinking).  The simulation kernels keep one per run as
    scratch space, so the per-round hot loops allocate nothing. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 16) is the initial backing-store size; must be
    >= 1. *)

val length : t -> int

val clear : t -> unit
(** Logical reset; the backing store is kept for reuse. *)

val push : t -> int -> unit
val get : t -> int -> int
val iter : (int -> unit) -> t -> unit
