(** Growable int vector with O(1) amortized push and O(1) reuse via
    {!clear} (no shrinking).  The simulation kernels keep one per run as
    scratch space, so the per-round hot loops allocate nothing. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 16) is the initial backing-store size; must be
    >= 1. *)

val length : t -> int

val clear : t -> unit
(** Logical reset; the backing store is kept for reuse. *)

val push : t -> int -> unit
val get : t -> int -> int

val pop : t -> int
(** Remove and return the last element; raises [Invalid_argument] when
    empty.  Together with {!push} this makes an [Intvec] a LIFO stack
    (the graph arena's free-slot list). *)

val mem : t -> int -> bool
(** Linear-scan membership.  The graph core calls it on in-edge lists of
    expected size O(d), where a scan beats any hashed structure. *)

val swap_remove_first : t -> int -> bool
(** Remove one occurrence of a value by overwriting it with the last
    element and shrinking — O(length) scan, O(1) removal, order not
    preserved.  Returns [false] (and leaves the vector unchanged) when
    the value is absent.  This is the multiset-decrement of the graph
    arena's in-edge lists, where duplicates encode edge multiplicity. *)

val iter : (int -> unit) -> t -> unit

val encode : Codec.writer -> t -> unit
(** Serialize the live prefix for checkpoints (capacity is not state). *)

val decode : Codec.reader -> t
