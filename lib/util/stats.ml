module Acc = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable lo : float;
    mutable hi : float;
  }

  let create () = { n = 0; mean = 0.; m2 = 0.; lo = infinity; hi = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.lo then t.lo <- x;
    if x > t.hi then t.hi <- x

  let add_int t x = add t (float_of_int x)
  let count t = t.n
  let mean t = if t.n = 0 then nan else t.mean
  let variance t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.lo
  let max t = t.hi

  let stderr_mean t =
    if t.n < 2 then nan else stddev t /. sqrt (float_of_int t.n)

  let ci95 t =
    let half = 1.96 *. stderr_mean t in
    (mean t -. half, mean t +. half)

  let copy t = { n = t.n; mean = t.mean; m2 = t.m2; lo = t.lo; hi = t.hi }

  (* Always a fresh record: returning [a] itself when [b] is empty would
     alias the mutable input, so a later [add] on the merge result would
     silently mutate [a]. *)
  let merge a b =
    if a.n = 0 then copy b
    else if b.n = 0 then copy a
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
      in
      { n; mean; m2; lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
    end
end

let mean xs =
  let n = Array.length xs in
  if n = 0 then nan else Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then nan
  else begin
    let m = mean xs in
    let s = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    s /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    if q <= 0. then sorted.(0)
    else if q >= 1. then sorted.(n - 1)
    else begin
      let pos = q *. float_of_int (n - 1) in
      let i = int_of_float (Float.floor pos) in
      let frac = pos -. float_of_int i in
      if i + 1 >= n then sorted.(n - 1)
      else sorted.(i) +. (frac *. (sorted.(i + 1) -. sorted.(i)))
    end
  end

let median xs = quantile xs 0.5

let fraction_where p xs =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let c = Array.fold_left (fun acc x -> if p x then acc + 1 else acc) 0 xs in
    float_of_int c /. float_of_int n
  end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    bins : int;
    counts : int array;
    mutable total : int;
    mutable nan_count : int;
  }

  let create ~lo ~hi ~bins =
    if bins <= 0 || hi <= lo then invalid_arg "Histogram.create";
    { lo; hi; bins; counts = Array.make bins 0; total = 0; nan_count = 0 }

  (* NaN compares false with everything, so [int_of_float (Float.floor nan)]
     would land in bin 0 and silently distort the distribution.  Count such
     samples separately instead of filing them anywhere. *)
  let add t x =
    if Float.is_nan x then t.nan_count <- t.nan_count + 1
    else begin
      let b =
        let raw = (x -. t.lo) /. (t.hi -. t.lo) *. float_of_int t.bins in
        let i = int_of_float (Float.floor raw) in
        if i < 0 then 0 else if i >= t.bins then t.bins - 1 else i
      in
      t.counts.(b) <- t.counts.(b) + 1;
      t.total <- t.total + 1
    end

  let counts t = Array.copy t.counts
  let total t = t.total
  let nan_count t = t.nan_count

  let bin_mid t i =
    t.lo +. ((float_of_int i +. 0.5) /. float_of_int t.bins *. (t.hi -. t.lo))

  let normalized t =
    if t.total = 0 then Array.make t.bins 0.
    else Array.map (fun c -> float_of_int c /. float_of_int t.total) t.counts
end

type fit = { slope : float; intercept : float; r2 : float }

let linear_fit pts =
  let n = Array.length pts in
  if n < 2 then { slope = nan; intercept = nan; r2 = nan }
  else begin
    let fn = float_of_int n in
    let sx = ref 0. and sy = ref 0. and sxx = ref 0. and sxy = ref 0. in
    Array.iter
      (fun (x, y) ->
        sx := !sx +. x;
        sy := !sy +. y;
        sxx := !sxx +. (x *. x);
        sxy := !sxy +. (x *. y))
      pts;
    let denom = (fn *. !sxx) -. (!sx *. !sx) in
    if Float.abs denom < 1e-12 then { slope = nan; intercept = nan; r2 = nan }
    else begin
      let slope = ((fn *. !sxy) -. (!sx *. !sy)) /. denom in
      let intercept = (!sy -. (slope *. !sx)) /. fn in
      let ybar = !sy /. fn in
      let ss_tot = ref 0. and ss_res = ref 0. in
      Array.iter
        (fun (x, y) ->
          let pred = (slope *. x) +. intercept in
          ss_tot := !ss_tot +. ((y -. ybar) *. (y -. ybar));
          ss_res := !ss_res +. ((y -. pred) *. (y -. pred)))
        pts;
      let r2 = if !ss_tot <= 0. then 1. else 1. -. (!ss_res /. !ss_tot) in
      { slope; intercept; r2 }
    end
  end

let log_fit pts =
  let mapped = Array.map (fun (x, y) -> (log x, y)) pts in
  linear_fit mapped

let pearson pts =
  let n = Array.length pts in
  if n < 2 then nan
  else begin
    let xs = Array.map fst pts and ys = Array.map snd pts in
    let mx = mean xs and my = mean ys in
    let num = ref 0. and dx = ref 0. and dy = ref 0. in
    Array.iter
      (fun (x, y) ->
        num := !num +. ((x -. mx) *. (y -. my));
        dx := !dx +. ((x -. mx) *. (x -. mx));
        dy := !dy +. ((y -. my) *. (y -. my)))
      pts;
    if !dx <= 0. || !dy <= 0. then nan else !num /. sqrt (!dx *. !dy)
  end

let binomial_ci95 ~successes ~trials =
  if trials = 0 then (nan, nan)
  else begin
    let z = 1.96 in
    let n = float_of_int trials in
    let p = float_of_int successes /. n in
    let z2 = z *. z in
    let denom = 1. +. (z2 /. n) in
    let center = (p +. (z2 /. (2. *. n))) /. denom in
    let half = z *. sqrt (((p *. (1. -. p)) +. (z2 /. (4. *. n))) /. n) /. denom in
    (Float.max 0. (center -. half), Float.min 1. (center +. half))
  end

let chi_square_uniform counts =
  let k = Array.length counts in
  let total = Array.fold_left ( + ) 0 counts in
  if k = 0 || total = 0 then nan
  else begin
    let expected = float_of_int total /. float_of_int k in
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0. counts
  end

let ks_statistic xs cdf =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    let fn = float_of_int n in
    let worst = ref 0. in
    Array.iteri
      (fun i x ->
        let f = cdf x in
        let lo = float_of_int i /. fn and hi = float_of_int (i + 1) /. fn in
        worst := Float.max !worst (Float.max (Float.abs (f -. lo)) (Float.abs (hi -. f))))
      sorted;
    !worst
  end
