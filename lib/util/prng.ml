type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64 step, used only for seeding so that nearby seeds yield
   unrelated xoshiro states. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) in
  create seed

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits (what fits a native int)
     to avoid modulo bias. *)
  let rec go () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then go () else v
  in
  go ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 random bits scaled to [0,1). *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r *. 0x1.0p-53

let float t bound = unit_float t *. bound
let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = unit_float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k > n then invalid_arg "Prng.sample_without_replacement: k > n";
  if k * 3 >= n then begin
    (* Dense case: partial Fisher-Yates on the full range. *)
    let a = Array.init n (fun i -> i) in
    for i = 0 to k - 1 do
      let j = int_in t i (n - 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done;
    Array.sub a 0 k
  end
  else begin
    (* Sparse case: rejection into a hash set. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))

(* Checkpoint support: the full state is the four xoshiro words. *)
let encode w t =
  Codec.i64 w t.s0;
  Codec.i64 w t.s1;
  Codec.i64 w t.s2;
  Codec.i64 w t.s3

let decode r =
  let s0 = Codec.read_i64 r in
  let s1 = Codec.read_i64 r in
  let s2 = Codec.read_i64 r in
  let s3 = Codec.read_i64 r in
  { s0; s1; s2; s3 }
