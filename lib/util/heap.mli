(** Binary min-heap keyed by float priorities.

    Used as the event queue of the asynchronous (continuous-time) flooding
    process of Definition 4.2, where churn events and message deliveries
    interleave on the real line.

    Equal priorities pop in insertion (FIFO) order: ties break on a
    monotone internal sequence number, so the order of simultaneous
    events is a documented property of the interface rather than an
    artifact of the heap's array layout.  The async flood schedules many
    deliveries at identical instants, and replays must not depend on how
    unrelated insertions happened to rebalance the heap. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h priority v] inserts [v] with [priority]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element; among equal
    priorities, the least recently pushed. *)

val peek : 'a t -> (float * 'a) option
(** Return the minimum-priority element without removing it. *)

val clear : 'a t -> unit
