(** Binary min-heap keyed by float priorities.

    Used as the event queue of the asynchronous (continuous-time) flooding
    process of Definition 4.2, where churn events and message deliveries
    interleave on the real line. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h priority v] inserts [v] with [priority]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element. *)

val peek : 'a t -> (float * 'a) option
(** Return the minimum-priority element without removing it. *)

val clear : 'a t -> unit
