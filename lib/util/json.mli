(** Dependency-free JSON values: a writer (compact and pretty) plus a
    small recursive-descent parser, used by the observability layer
    (report/telemetry serialization, BENCH_*.json trajectories).

    Non-finite floats have no JSON representation; the writer emits
    [null] for nan/inf, so numeric fields that may be undefined parse
    back as [Null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Arr of t list
  | Obj of (string * t) list

(** {1 Construction helpers} *)

val float_opt : float option -> t
(** [Float v] for [Some v], [Null] for [None]. *)

val of_finite : float -> t
(** [Float v] when [v] is finite, [Null] otherwise — what the writer
    would emit anyway, made explicit at construction time. *)

(** {1 Writing} *)

val to_string : ?pretty:bool -> t -> string
(** Serialize. Compact by default ([{"a":1}]); [~pretty:true] indents
    with two spaces. Strings are escaped per RFC 8259; non-finite
    floats become [null]; finite floats round-trip exactly. *)

val to_channel : ?pretty:bool -> out_channel -> t -> unit

val write_file : ?pretty:bool -> string -> t -> unit
(** Write to a file (truncating), with a trailing newline. *)

(** {1 Parsing} *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document. Numbers without ['.'], ['e'] or
    ['E'] parse as [Int] (falling back to [Float] on overflow); the
    error string includes the byte offset of the failure. *)

val of_string_exn : string -> t
(** Like {!of_string} but raises [Failure] on malformed input. *)

(** {1 Accessors} (all total — [None]/[[]] on shape mismatch) *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]. *)

val as_string : t -> string option
val as_bool : t -> bool option
val as_int : t -> int option

val as_float : t -> float option
(** Accepts both [Float] and [Int]. *)

val as_list : t -> t list
(** The elements of an [Arr]; [[]] for anything else. *)
