(** Dependency-free versioned binary codec for checkpoint files.

    Values are written field by field into a {!writer} and read back in
    the same order from a {!reader}.  A complete value is framed as

    {v <schema>\n <payload length : int64 LE> <payload> <CRC-32 : 4 bytes LE> v}

    so that readers reject wrong-schema, truncated and corrupted files
    before decoding a single field.  The current schema tag is
    {!schema} ([churnet-ckpt/1]); bump the suffix on any layout change.

    Integers use zigzag LEB128 varints (small magnitudes are one byte,
    the full native range round-trips); floats are their IEEE-754 bits
    (bit-exact round-trip, NaN payloads included). *)

exception Error of string
(** Raised on any malformed input: bad magic, bad checksum, truncation,
    out-of-range values.  Encoding never raises. *)

val schema : string
(** ["churnet-ckpt/1"] — the schema tag of every checkpoint this build
    writes. *)

(** {1 Writing} *)

type writer

val writer : unit -> writer
val contents : writer -> string
(** Raw unframed payload accumulated so far. *)

val u8 : writer -> int -> unit
val varint : writer -> int -> unit
val i64 : writer -> int64 -> unit
val f64 : writer -> float -> unit
val bool : writer -> bool -> unit
val string : writer -> string -> unit
val option : (writer -> 'a -> unit) -> writer -> 'a option -> unit
val array : (writer -> 'a -> unit) -> writer -> 'a array -> unit
val int_array : writer -> int array -> unit
val int_list : writer -> int list -> unit

(** {1 Reading} *)

type reader

val reader : ?pos:int -> ?limit:int -> string -> reader
val remaining : reader -> int
val at_end : reader -> bool

val expect_end : reader -> unit
(** Raise {!Error} unless the reader consumed its whole input — catches
    schema drift where a decoder silently ignores trailing fields. *)

val read_u8 : reader -> int
val read_varint : reader -> int
val read_i64 : reader -> int64
val read_f64 : reader -> float
val read_bool : reader -> bool
val read_string : reader -> string
val read_option : (reader -> 'a) -> reader -> 'a option
val read_array : (reader -> 'a) -> reader -> 'a array
val read_int_array : reader -> int array
val read_int_list : reader -> int list

(** {1 Framing and files} *)

val crc32 : string -> int
(** CRC-32 (IEEE 802.3, reflected polynomial), as used by the frame
    trailer.  Exposed for tests. *)

val frame : schema:string -> (writer -> unit) -> string
(** [frame ~schema fill] runs [fill] on a fresh writer and wraps the
    payload in the magic/length/CRC envelope. *)

val unframe : schema:string -> string -> reader
(** Validate the envelope and return a reader over the payload. *)

val write_file : schema:string -> string -> (writer -> unit) -> unit
(** Framed {!frame} output written atomically and durably: the bytes go
    to a collision-safe temp sibling (pid + counter suffix, so
    concurrent writers to the same path never share staging files), are
    fsynced, and reach [path] only through [Sys.rename] — a crash at any
    point leaves either the old file or the complete new one, never a
    torn or truncated checkpoint.  A failed write removes the temp file
    and raises {!Error}. *)

val read_file : schema:string -> string -> reader
(** Read and {!unframe} a whole file. *)
