(* A lightweight structural parser over the Lint_lexer token stream.

   churnet-lint's semantic rules need just enough structure to reason
   about dataflow and reachability: which let-bindings exist (with their
   parameters and nesting), which modules a file opens or aliases, and
   where lambdas and loops sit (a closure allocated per loop iteration
   is a very different animal from one allocated per call).

   The parser is a deliberate heuristic, not a grammar: it tracks
   bracket/block depth, classifies each `let' by whether its binding is
   eventually closed by `in' (expression let) or by the next structure
   item (top-level let), and records spans as inclusive token-index
   ranges.  Two hard guarantees, enforced by construction and checked by
   qcheck properties in the test suite:

   - totality: [parse] never raises, on any token stream (the cursor
     advances monotonically; malformed input degrades to coarser spans);
   - nesting: every recorded span lies within its parent binding's span,
     and every span's endpoints index real lexer tokens. *)

type span = { s_first : int; s_last : int }

type param_kind = Positional | Labelled | Optional

type param = { p_name : string; p_kind : param_kind }

type binding = {
  b_name : string;
  b_params : param list;
  b_module_path : string list;
  b_toplevel : bool;
  b_span : span;
  b_body : span;
  b_name_index : int;
}

type open_decl = { o_module : string; o_scope : span }

type t = {
  bindings : binding array;
  opens : open_decl array;
  aliases : (string * string) array;
  includes : string array;
  lambdas : span array;
  loops : span array;
}

let span_contains outer i = i >= outer.s_first && i <= outer.s_last
let span_within inner outer =
  inner.s_first >= outer.s_first && inner.s_last <= outer.s_last

(* Internal mutable accumulator; converted to the immutable [t] at the
   end.  Bindings carry a mutable toplevel flag because a `let' chain's
   classification (expression vs structure item) is only known once its
   terminator is seen. *)
type builder = {
  mutable bs : pre_binding list;
  mutable ops : open_decl list;
  mutable als : (string * string) list;
  mutable incs : string list;
  mutable lams : span list;
  mutable lps : span list;
}

and pre_binding = {
  mutable pb_name : string;
  mutable pb_params : param list;
  pb_module_path : string list;
  mutable pb_toplevel : bool;
  mutable pb_first : int;
  mutable pb_last : int;
  mutable pb_body_first : int;
  mutable pb_body_last : int;
  mutable pb_name_index : int;
}

let keywords_starting_item =
  [ "module"; "type"; "open"; "include"; "exception"; "external"; "val";
    "class"; ";;" ]

let is_upper_ident s =
  String.length s > 0 && s.[0] >= 'A' && s.[0] <= 'Z'

let is_lower_ident s =
  String.length s > 0
  && (s.[0] = '_' || (s.[0] >= 'a' && s.[0] <= 'z'))

(* How a scan of an expression / binding body stopped. *)
type stop =
  | Stop_in of int  (* index of the `in' token *)
  | Stop_and of int  (* index of the `and' token *)
  | Stop_item of int  (* index of the token that starts the next item *)
  | Stop_close of int  (* index of an unmatched closer (`end', `)', ...) *)
  | Stop_eof of int  (* first index past the last token *)

let parse (lex : Lint_lexer.t) =
  let tks = lex.Lint_lexer.tokens in
  let n = Array.length tks in
  let text i = if i >= 0 && i < n then tks.(i).Lint_lexer.text else "" in
  let b = { bs = []; ops = []; als = []; incs = []; lams = []; lps = [] } in
  (* Consume a balanced group starting at an opener token; returns the
     index just past the matching closer (or [n] when unbalanced).
     Openers/closers are depth-counted without kind matching: robustness
     over precision. *)
  let opener = function
    | "(" | "[" | "{" | "begin" | "struct" | "sig" | "object" | "do" -> true
    | _ -> false
  and closer = function
    | ")" | "]" | "}" | "end" | "done" -> true
    | _ -> false
  in
  let skip_group i =
    let depth = ref 0 in
    let j = ref i in
    let continue = ref true in
    while !continue && !j < n do
      let t = text !j in
      if opener t then incr depth
      else if closer t then begin
        decr depth;
        if !depth <= 0 then continue := false
      end;
      incr j
    done;
    !j
  in
  (* Parse a dotted module path [A.B.C] starting at [i]; returns the
     list of segments and the index past the path. *)
  let parse_module_path i =
    let segs = ref [] in
    let j = ref i in
    let continue = ref true in
    while !continue do
      if is_upper_ident (text !j) then begin
        segs := text !j :: !segs;
        if text (!j + 1) = "." && is_upper_ident (text (!j + 2)) then
          j := !j + 2
        else begin
          incr j;
          continue := false
        end
      end
      else continue := false
    done;
    (List.rev !segs, !j)
  in
  (* Parse the parameter list of a let binding: cursor just past the
     bound name, scan until the top-level [=] (or a terminator when the
     binding is malformed).  Returns (params, index of `=' + 1 or stop). *)
  let parse_params i =
    let params = ref [] in
    let j = ref i in
    let stopped = ref None in
    let continue = ref true in
    let add name kind = params := { p_name = name; p_kind = kind } :: !params in
    (* First lowercase identifier inside a group, as the conventional
       name of a pattern/annotated parameter. *)
    let group_param_name gfirst glast =
      let name = ref "_" in
      let k = ref (gfirst + 1) in
      while !name = "_" && !k < glast do
        if is_lower_ident (text !k) then name := text !k;
        incr k
      done;
      !name
    in
    while !continue && !j < n do
      let t = text !j in
      if t = "=" then begin
        incr j;
        continue := false
      end
      else if t = "~" || t = "?" then begin
        let kind = if t = "?" then Optional else Labelled in
        if is_lower_ident (text (!j + 1)) then begin
          add (text (!j + 1)) kind;
          j := !j + 2;
          (* ~name:pattern — the label is the parameter; skip the pattern *)
          if text !j = ":" then
            if text (!j + 1) = "(" then j := skip_group (!j + 1)
            else j := !j + 2
        end
        else if text (!j + 1) = "(" then begin
          (* ~(name : t) / ?(name = default) *)
          let stop = skip_group (!j + 1) in
          add (group_param_name (!j + 1) (stop - 1)) kind;
          j := stop
        end
        else incr j
      end
      else if t = "(" || t = "{" || t = "[" then begin
        let stop = skip_group !j in
        if t = "(" && text (!j + 1) = ")" then add "()" Positional
        else add (group_param_name !j (stop - 1)) Positional;
        j := stop
      end
      else if t = ":" then begin
        (* return-type annotation: skip type tokens up to the `=' *)
        let depth = ref 0 in
        let k = ref (!j + 1) in
        let scanning = ref true in
        while !scanning && !k < n do
          let u = text !k in
          if opener u then incr depth
          else if closer u then begin
            decr depth;
            if !depth < 0 then scanning := false
          end
          else if !depth = 0 && u = "=" then scanning := false
          else if !depth = 0 && (u = "in" || u = "let" || List.mem u keywords_starting_item)
          then scanning := false;
          if !scanning then incr k
        done;
        j := !k;
        if text !j = "=" then begin
          incr j;
          continue := false
        end
        else begin
          stopped := Some !j;
          continue := false
        end
      end
      else if is_lower_ident t then begin
        add t Positional;
        incr j
      end
      else if t = "in" || t = "and" || List.mem t keywords_starting_item
              || t = "let" || closer t || t = "" then begin
        stopped := Some !j;
        continue := false
      end
      else incr j
    done;
    (List.rev !params, !j, !stopped)
  in
  (* Forward declarations for the mutually recursive scanners. *)
  let rec parse_expr ~path ~from =
    (* Scan an expression starting at [from]; stop at a terminator at
       relative depth 0.  Records nested bindings, lambdas, loops and
       local opens found along the way.  Returns (stop, resume): the
       expression's last token is just before the stop index, and
       [resume] is where the caller should continue scanning — these
       differ only when a nested `let' turned out to be the next
       structure item, in which case the nested parse has already
       consumed (and recorded) that item so re-scanning it would both
       duplicate bindings and go quadratic. *)
    let depth = ref 0 in
    let i = ref from in
    let result = ref None in
    let resume_override = ref None in
    (* Lambda and loop spans close when depth drops below their base
       depth or when this expression stops. *)
    let lam_stack = ref [] in
    let loop_stack = ref [] in
    (* A lambda/loop opened at base depth [d] stays open while the
       current depth is >= d; it closes (span ending at [last]) when the
       group enclosing it closes, i.e. when depth drops below [d]. *)
    let close_spans_at ~last ~below =
      let keep, close = List.partition (fun (_, d) -> d <= below) !lam_stack in
      List.iter
        (fun (s, _) ->
          if last >= s then b.lams <- { s_first = s; s_last = last } :: b.lams)
        close;
      lam_stack := keep;
      let keep, close = List.partition (fun (_, d) -> d <= below) !loop_stack in
      List.iter
        (fun (s, _) ->
          if last >= s then b.lps <- { s_first = s; s_last = last } :: b.lps)
        close;
      loop_stack := keep
    in
    while !result = None && !i <= n do
      if !i >= n then result := Some (Stop_eof n)
      else begin
        let t = text !i in
        if t = "fun" || t = "function" then begin
          lam_stack := (!i, !depth) :: !lam_stack;
          incr i
        end
        else if t = "for" || t = "while" then begin
          loop_stack := (!i, !depth) :: !loop_stack;
          incr i
        end
        else if t = "let" then begin
          if text (!i + 1) = "open" then begin
            (* let open M in ... — scoped to the rest of this expression;
               the recorded scope is closed when the expression stops. *)
            let segs, past = parse_module_path (!i + 2) in
            (match segs with
            | [] -> ()
            | segs ->
                let last_seg = List.nth segs (List.length segs - 1) in
                b.ops <-
                  { o_module = last_seg; o_scope = { s_first = !i; s_last = n - 1 } }
                  :: b.ops);
            i := if text past = "in" then past + 1 else past
          end
          else if text (!i + 1) = "module" then begin
            (* let module X = ... in — skip the module expression *)
            let depth' = ref 0 in
            let k = ref (!i + 2) in
            let scanning = ref true in
            while !scanning && !k < n do
              let u = text !k in
              if opener u then incr depth'
              else if closer u then begin
                decr depth';
                if !depth' < 0 then scanning := false
              end
              else if !depth' = 0 && u = "in" then scanning := false;
              if !scanning then incr k
            done;
            i := if text !k = "in" then !k + 1 else !k
          end
          else begin
            let let_idx = !i in
            match parse_let ~path ~from:!i with
            | past, Stop_in _ -> i := past
            | past, (Stop_item _ | Stop_close _ | Stop_eof _ | Stop_and _) ->
                (* No `in' ever arrived: that `let' was really the next
                   structure item.  This expression ends just before it,
                   but the nested parse already consumed (and recorded)
                   the whole chain, so the caller resumes after it. *)
                resume_override := Some past;
                result := Some (Stop_item let_idx)
          end
        end
        else if opener t then begin
          (* Local open M.( ... ) *)
          (if t = "(" && text (!i - 1) = "." && is_upper_ident (text (!i - 2))
           then
             let stop = skip_group !i in
             b.ops <-
               {
                 o_module = text (!i - 2);
                 o_scope = { s_first = !i; s_last = max !i (stop - 1) };
               }
               :: b.ops);
          incr depth;
          incr i
        end
        else if closer t then begin
          decr depth;
          if !depth < 0 then result := Some (Stop_close !i)
          else begin
            (* [done] closes exactly the innermost loop opened at this
               depth; other closers only close constructs whose base
               depth sits strictly deeper than the new depth. *)
            (if t = "done" then
               match !loop_stack with
               | (s, d) :: rest when d = !depth ->
                   b.lps <- { s_first = s; s_last = !i } :: b.lps;
                   loop_stack := rest
               | _ -> ());
            close_spans_at ~last:!i ~below:!depth;
            incr i
          end
        end
        else if !depth = 0 && t = "in" then result := Some (Stop_in !i)
        else if !depth = 0 && t = "and" then result := Some (Stop_and !i)
        else if !depth = 0 && List.mem t keywords_starting_item then
          result := Some (Stop_item !i)
        else incr i
      end
    done;
    let stop = match !result with Some s -> s | None -> Stop_eof n in
    let stop_index =
      match stop with
      | Stop_in k | Stop_and k | Stop_item k | Stop_close k | Stop_eof k -> k
    in
    close_spans_at ~last:(max from (stop_index - 1)) ~below:(-1);
    let resume =
      match !resume_override with Some r -> r | None -> stop_index
    in
    (stop, resume)

  and parse_let ~path ~from =
    (* Cursor on a `let' (or chained `and').  Parses one binding and, on
       an `and' terminator, the rest of the chain.  Returns (index past
       everything consumed, final stop reason).  The chain's bindings
       are classified toplevel iff the final stop is not `in'. *)
    let chain = ref [] in
    let i = ref (from + 1) in
    if text !i = "rec" then incr i;
    let finished = ref None in
    let start = ref from in
    while !finished = None do
      (* name *)
      let name, name_index =
        let t = text !i in
        if is_lower_ident t then begin
          let idx = !i in
          incr i;
          (t, idx)
        end
        else if t = "(" && text (!i + 1) = ")" then begin
          let idx = !i in
          i := !i + 2;
          ("()", idx)
        end
        else if t = "(" then begin
          (* operator definition or tuple pattern: take the first inner
             token as the conventional name *)
          let idx = !i + 1 in
          let stop = skip_group !i in
          i := stop;
          (text idx, idx)
        end
        else if t = "{" || t = "[" then begin
          (* record / array pattern binding *)
          let idx = !i in
          i := skip_group !i;
          ("_", idx)
        end
        else begin
          let idx = !i in
          if t <> "" && t <> "=" then incr i;
          ("_", idx)
        end
      in
      let params, past_eq, param_stop = parse_params !i in
      let pb =
        {
          pb_name = name;
          pb_params = params;
          pb_module_path = path;
          pb_toplevel = false;
          pb_first = !start;
          pb_last = past_eq;
          pb_body_first = past_eq;
          pb_body_last = past_eq;
          pb_name_index = name_index;
        }
      in
      b.bs <- pb :: b.bs;
      chain := pb :: !chain;
      (match param_stop with
      | Some at ->
          (* Malformed binding (no `='): classify by what stopped it. *)
          pb.pb_last <- max !start (at - 1);
          pb.pb_body_first <- at;
          pb.pb_body_last <- max !start (at - 1);
          let t = text at in
          if t = "in" then begin
            finished := Some (at + 1, Stop_in at)
          end
          else if t = "and" then begin
            start := at;
            i := at + 1
          end
          else if at >= n then finished := Some (n, Stop_eof n)
          else finished := Some (at, Stop_item at)
      | None -> (
          i := past_eq;
          let stop, resume = parse_expr ~path ~from:past_eq in
          let stop_index =
            match stop with
            | Stop_in k | Stop_and k | Stop_item k | Stop_close k | Stop_eof k
              -> k
          in
          (* A body made only of literals contributes no tokens (the
             lexer drops them), leaving an empty span (first > last). *)
          pb.pb_body_last <- stop_index - 1;
          pb.pb_last <- max !start (stop_index - 1);
          match stop with
          | Stop_in k -> finished := Some (k + 1, stop)
          | Stop_and k ->
              start := k;
              i := k + 1
          | Stop_item _ | Stop_close _ | Stop_eof _ ->
              finished := Some (resume, stop)))
    done;
    let past, stop = match !finished with Some r -> r | None -> (n, Stop_eof n) in
    let is_toplevel = match stop with Stop_in _ -> false | _ -> true in
    List.iter (fun pb -> pb.pb_toplevel <- is_toplevel) !chain;
    (past, stop)
  in
  (* Structure items at one module level.  Returns the index past the
     level (past the `end' for submodules, [n] for the file). *)
  let rec parse_structure ~path ~from ~until_end =
    let i = ref from in
    let finished = ref false in
    while (not !finished) && !i < n do
      let t = text !i in
      if t = "let" then begin
        let past, _stop = parse_let ~path ~from:!i in
        i := max past (!i + 1)
      end
      else if t = "open" then begin
        let segs, past = parse_module_path (!i + 1) in
        (match segs with
        | [] -> ()
        | segs ->
            let last_seg = List.nth segs (List.length segs - 1) in
            b.ops <-
              { o_module = last_seg; o_scope = { s_first = !i; s_last = n - 1 } }
              :: b.ops);
        i := max past (!i + 1)
      end
      else if t = "include" then begin
        let segs, past = parse_module_path (!i + 1) in
        (match segs with
        | [] -> ()
        | segs -> b.incs <- List.nth segs (List.length segs - 1) :: b.incs);
        i := max past (!i + 1)
      end
      else if t = "module" && text (!i + 1) = "type" then begin
        (* module type X = sig ... end / abstract: skip to the next item *)
        i := skip_item (!i + 2)
      end
      else if t = "module" then begin
        let name = text (!i + 1) in
        (* scan past functor params / signature constraint to the `=' *)
        let k = ref (!i + 2) in
        let scanning = ref true in
        let depth = ref 0 in
        while !scanning && !k < n do
          let u = text !k in
          if opener u then incr depth
          else if closer u then decr depth
          else if !depth = 0 && u = "=" then scanning := false
          else if !depth = 0 && (u = "struct" || List.mem u keywords_starting_item || u = "let")
          then scanning := false;
          if !scanning then incr k
        done;
        if text !k = "=" && text (!k + 1) = "struct" then begin
          let past = parse_structure ~path:(path @ [ name ]) ~from:(!k + 2) ~until_end:true in
          i := past
        end
        else if text !k = "=" then begin
          (* module alias / functor application: record last segment *)
          let segs, past = parse_module_path (!k + 1) in
          (match segs with
          | [] -> ()
          | segs ->
              if is_upper_ident name then
                b.als <- (name, List.nth segs (List.length segs - 1)) :: b.als);
          i := max past (skip_item (!k + 1))
        end
        else i := skip_item (!i + 1)
      end
      else if t = "end" && until_end then begin
        i := !i + 1;
        finished := true
      end
      else i := skip_item !i
    done;
    !i
  and skip_item i =
    (* Consume a non-let structure item (type decl, exception, ...) up
       to the start of the next item at depth 0.  Stops *before* an
       unmatched closer so an enclosing [parse_structure] can see its
       `end'. *)
    let depth = ref 0 in
    let j = ref (min n (i + 1)) in
    let continue = ref true in
    while !continue && !j < n do
      let t = text !j in
      if opener t then begin
        incr depth;
        incr j
      end
      else if closer t then begin
        decr depth;
        if !depth < 0 then continue := false else incr j
      end
      else if !depth = 0 && (t = "let" || List.mem t keywords_starting_item)
      then continue := false
      else incr j
    done;
    max (i + 1) !j
  in
  let _ = parse_structure ~path:[] ~from:0 ~until_end:false in
  let clamp s =
    { s_first = max 0 (min s.s_first (max 0 (n - 1)));
      s_last = max 0 (min s.s_last (max 0 (n - 1))) }
  in
  let bindings =
    List.rev_map
      (fun pb ->
        {
          b_name = pb.pb_name;
          b_params = pb.pb_params;
          b_module_path = pb.pb_module_path;
          b_toplevel = pb.pb_toplevel;
          b_span = clamp { s_first = pb.pb_first; s_last = pb.pb_last };
          b_body = clamp { s_first = pb.pb_body_first; s_last = pb.pb_body_last };
          b_name_index = max 0 (min pb.pb_name_index (max 0 (n - 1)));
        })
      b.bs
  in
  {
    bindings = Array.of_list bindings;
    opens = Array.of_list (List.rev_map (fun o -> { o with o_scope = clamp o.o_scope }) b.ops);
    aliases = Array.of_list (List.rev b.als);
    includes = Array.of_list (List.rev b.incs);
    lambdas = Array.of_list (List.rev_map clamp b.lams);
    loops = Array.of_list (List.rev_map clamp b.lps);
  }

(* The innermost binding whose span contains token [i], preferring later
   (more deeply nested) bindings on ties. *)
let enclosing_binding t i =
  let best = ref None in
  Array.iter
    (fun bd ->
      if span_contains bd.b_span i then
        match !best with
        | None -> best := Some bd
        | Some prev ->
            let w b = b.b_span.s_last - b.b_span.s_first in
            if w bd <= w prev then best := Some bd)
    t.bindings;
  !best

(* The innermost *toplevel* binding containing token [i]. *)
let enclosing_toplevel t i =
  let best = ref None in
  Array.iter
    (fun bd ->
      if bd.b_toplevel && span_contains bd.b_span i then
        match !best with
        | None -> best := Some bd
        | Some prev ->
            let w b = b.b_span.s_last - b.b_span.s_first in
            if w bd <= w prev then best := Some bd)
    t.bindings;
  !best

let in_lambda t i = Array.exists (fun s -> span_contains s i) t.lambdas
let in_loop t i = Array.exists (fun s -> span_contains s i) t.loops

(* Is token [i] inside a lambda or loop that is itself nested inside
   another lambda or loop?  (I.e., would an allocation here happen per
   iteration rather than per call?) *)
let in_nested_lambda_or_loop t i =
  let containing =
    List.filter
      (fun s -> span_contains s i)
      (Array.to_list t.lambdas @ Array.to_list t.loops)
  in
  List.length containing >= 2
