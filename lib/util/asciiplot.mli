(** Terminal plots for the "figures" the benchmark harness regenerates.
    Since the container has no plotting stack, figures are rendered as
    ASCII scatter/line charts plus the underlying series as a table. *)

type series = { label : string; points : (float * float) array }

val plot :
  ?width:int ->
  ?height:int ->
  ?logx:bool ->
  ?logy:bool ->
  title:string ->
  xlabel:string ->
  ylabel:string ->
  series list ->
  string
(** Render one chart containing all series (each series gets its own glyph
    from [*+o#@x%&]).  Axis ranges are computed from the data; log scales
    drop non-positive values. *)

val bar : title:string -> (string * float) list -> string
(** Horizontal bar chart for labelled values.  Bars are scaled by the
    largest absolute value; negative entries render with ['-'] instead
    of ['#'], and nan entries render as an empty bar. *)
