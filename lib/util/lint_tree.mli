(** A lightweight structural parser over the {!Lint_lexer} token stream.

    churnet-lint's semantic rules need just enough structure to reason
    about dataflow and reachability: which let-bindings exist (with
    their parameters, module path and nesting), which modules a file
    opens, aliases or includes, and where lambdas and loops sit.

    The parser is a deliberate heuristic, not a grammar: it tracks
    bracket/block depth, classifies each [let] by whether its binding
    is eventually closed by [in] (expression let) or by the next
    structure item (top-level let), and records spans as inclusive
    token-index ranges into [lex.tokens].

    Two hard guarantees, checked by qcheck properties in the test
    suite:

    - totality: {!parse} never raises, on any token stream (the cursor
      advances monotonically; malformed input degrades to coarser
      spans);
    - validity: every recorded span satisfies
      [0 <= s_first] and [s_last <= Array.length lex.tokens - 1], and a
      binding's body span lies within its binding span. *)

type span = {
  s_first : int;  (** first token index of the construct (inclusive) *)
  s_last : int;  (** last token index (inclusive) *)
}

type param_kind = Positional | Labelled | Optional

type param = {
  p_name : string;  (** parameter name; ["_"] or ["()"] when patterned *)
  p_kind : param_kind;
}

type binding = {
  b_name : string;  (** bound name; ["_"]/["()"] for pattern bindings *)
  b_params : param list;  (** parameters, in source order *)
  b_module_path : string list;
      (** enclosing submodule path within the file, outermost first *)
  b_toplevel : bool;  (** structure item (no closing [in])? *)
  b_span : span;  (** whole binding, from its [let]/[and] *)
  b_body : span;
      (** the right-hand side after [=]; may be {e empty}
          ([s_first > s_last]) when the body is literal-only, since
          literals contribute no lexer tokens *)
  b_name_index : int;  (** token index of the bound name *)
}

type open_decl = {
  o_module : string;  (** last segment of the opened path *)
  o_scope : span;  (** tokens where the open is in force *)
}

type t = {
  bindings : binding array;
  opens : open_decl array;
  aliases : (string * string) array;
      (** [module A = B] aliases: (alias, last segment of target) *)
  includes : string array;  (** last segments of [include]d paths *)
  lambdas : span array;  (** [fun]/[function] expressions *)
  loops : span array;  (** [for]/[while] loops *)
}

val parse : Lint_lexer.t -> t
(** [parse lex] builds the structural summary of a token stream.  Total:
    never raises, whatever the input. *)

val span_contains : span -> int -> bool
(** [span_contains s i] is true when token index [i] lies in [s]. *)

val span_within : span -> span -> bool
(** [span_within inner outer]: does [inner] lie entirely in [outer]? *)

val enclosing_binding : t -> int -> binding option
(** Innermost binding whose span contains token [i]. *)

val enclosing_toplevel : t -> int -> binding option
(** Innermost {e top-level} binding whose span contains token [i] — the
    unit of the call graph. *)

val in_lambda : t -> int -> bool
(** Is token [i] inside a [fun]/[function] body? *)

val in_loop : t -> int -> bool
(** Is token [i] inside a [for]/[while] body? *)

val in_nested_lambda_or_loop : t -> int -> bool
(** Is token [i] inside a lambda or loop that is itself nested inside
    another lambda or loop (i.e. the code here runs per iteration of an
    enclosing construct, not just per call)? *)
