type config = {
  paths : string list;
  root : string option;
  baseline_path : string option;
  json_path : string option;
  update_baseline : bool;
}

type baseline_entry = { b_rule : string; b_file : string; b_line : int }

type outcome = {
  findings : Lint_rules.finding list;
  baselined : int;
  suppressed : int;
  expired : baseline_entry list;
  files_scanned : int;
}

(* Rules implemented by the engine itself rather than the catalogue:
   bad-pragma (a malformed suppression) and bad-syntax (the lexer hit a
   construct it could not finish — unterminated comment/string).  They
   are valid pragma and baseline targets. *)
let bad_pragma_rule = "bad-pragma"
let bad_syntax_rule = "bad-syntax"
let engine_rules = [ bad_pragma_rule; bad_syntax_rule ]

let known_rule name = Lint_rules.is_rule name || List.mem name engine_rules

(* ------------------------------------------------------------------ *)
(* Paths and file discovery                                            *)
(* ------------------------------------------------------------------ *)

let normalize_path p =
  let p = String.map (fun c -> if c = '\\' then '/' else c) p in
  let absolute = String.length p > 0 && p.[0] = '/' in
  let parts =
    List.filter (fun s -> s <> "" && s <> ".") (String.split_on_char '/' p)
  in
  (if absolute then "/" else "") ^ String.concat "/" parts

let has_suffix suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

(* Depth-first walk in sorted order (determinism: findings must not
   depend on readdir order).  Hidden and build directories and files
   ('.'- or '_'-prefixed) are skipped. *)
let rec walk acc path =
  if Sys.is_directory path then begin
    let entries = Sys.readdir path in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        if entry = "" || entry.[0] = '.' || entry.[0] = '_' then acc
        else walk acc (path ^ "/" ^ entry))
      acc entries
  end
  else if has_suffix ".ml" path || has_suffix ".mli" path then
    normalize_path path :: acc
  else acc

(* Reported paths are always relative to [root] (the repo root by
   default), because the rule set keys off repo-relative prefixes like
   "lib/". *)
let collect_files ~root paths =
  let fs_of p =
    match root with
    | None -> normalize_path p
    | Some r -> normalize_path (r ^ "/" ^ p)
  in
  let rel_of fs =
    match root with
    | None -> fs
    | Some r ->
        let prefix = normalize_path r ^ "/" in
        let lp = String.length prefix in
        if String.length fs >= lp && String.sub fs 0 lp = prefix then
          String.sub fs lp (String.length fs - lp)
        else fs
  in
  let missing = List.filter (fun p -> not (Sys.file_exists (fs_of p))) paths in
  if missing <> [] then
    Error ("no such file or directory: " ^ String.concat ", " missing)
  else
    let all = List.fold_left (fun acc p -> walk acc (fs_of p)) [] paths in
    let all = List.sort_uniq String.compare all in
    let all = List.map (fun fs -> (rel_of fs, fs)) all in
    let mls = List.filter (fun (rel, _) -> has_suffix ".ml" rel) all in
    let mlis = List.filter (fun (rel, _) -> has_suffix ".mli" rel) all in
    Ok (mls, mlis)

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* ------------------------------------------------------------------ *)
(* Suppression pragmas                                                 *)
(* ------------------------------------------------------------------ *)

type pragma_kind =
  | Allow_lines of int * int  (* from line, to line inclusive *)
  | Allow_file

(* One parsed pragma, with a mutable hit count so stale ones can be
   reported under unused-pragma. *)
type pragma = {
  pg_rule : string;
  pg_kind : pragma_kind;
  pg_file : string;
  pg_line : int;
  mutable pg_hits : int;
}

let em_dash = "\xe2\x80\x94"

(* A "dash word" is any run of ASCII dashes and/or em-dashes: the
   decorative separator between a pragma's rule name and its reason. *)
let is_dash_word w =
  let n = String.length w in
  let rec go i =
    if i >= n then true
    else if w.[i] = '-' then go (i + 1)
    else if n - i >= 3 && String.sub w i 3 = em_dash then go (i + 3)
    else false
  in
  n > 0 && go 0

let split_words s =
  List.filter
    (fun w -> w <> "")
    (String.split_on_char ' '
       (String.map
          (fun c -> if c = '\t' || c = '\n' || c = '\r' then ' ' else c)
          s))

(* Parse one comment.  Returns a pragma, a bad-pragma finding, or
   nothing when the comment is not a lint directive at all. *)
let parse_pragma ~path (c : Lint_lexer.comment) =
  let text = String.trim c.Lint_lexer.c_text in
  if not (String.length text >= 5 && String.sub text 0 5 = "lint:") then `None
  else
    let bad message =
      `Bad
        {
          Lint_rules.rule = bad_pragma_rule;
          file = path;
          line = c.Lint_lexer.c_line;
          col = 1;
          message;
          witness = [];
        }
    in
    let directive = String.trim (String.sub text 5 (String.length text - 5)) in
    match split_words directive with
    | keyword :: rule :: rest when keyword = "allow" || keyword = "allow-file"
      ->
        if not (known_rule rule) then
          bad
            (Printf.sprintf "unknown rule %S in lint pragma (known: %s)" rule
               (String.concat ", " (Lint_rules.names @ engine_rules)))
        else
          let reason =
            let rec drop_dashes words =
              match words with
              | w :: tl when is_dash_word w -> drop_dashes tl
              | _ -> words
            in
            String.concat " " (drop_dashes rest)
          in
          if String.trim reason = "" then
            bad
              (Printf.sprintf
                 "lint pragma for %S has no reason; write `(* lint: %s %s \
                  \xe2\x80\x94 why this is safe *)'"
                 rule keyword rule)
          else
            let kind =
              if keyword = "allow-file" then Allow_file
              else
                Allow_lines (c.Lint_lexer.c_line, c.Lint_lexer.c_end_line + 1)
            in
            `Pragma
              {
                pg_rule = rule;
                pg_kind = kind;
                pg_file = path;
                pg_line = c.Lint_lexer.c_line;
                pg_hits = 0;
              }
    | _ ->
        bad
          "malformed lint pragma; expected `lint: allow <rule> \xe2\x80\x94 \
           reason' or `lint: allow-file <rule> \xe2\x80\x94 reason'"

let pragmas_of ~path (lex : Lint_lexer.t) =
  Array.fold_left
    (fun (pragmas, bad) c ->
      match parse_pragma ~path c with
      | `None -> (pragmas, bad)
      | `Pragma p -> (p :: pragmas, bad)
      | `Bad f -> (pragmas, f :: bad))
    ([], []) lex.Lint_lexer.comments

(* Find the pragma suppressing [f], if any, and record the hit. *)
let suppressing_pragma pragmas (f : Lint_rules.finding) =
  match
    List.find_opt
      (fun p ->
        p.pg_file = f.Lint_rules.file
        && p.pg_rule = f.Lint_rules.rule
        &&
        match p.pg_kind with
        | Allow_file -> true
        | Allow_lines (lo, hi) ->
            f.Lint_rules.line >= lo && f.Lint_rules.line <= hi)
      pragmas
  with
  | Some p ->
      p.pg_hits <- p.pg_hits + 1;
      true
  | None -> false

(* ------------------------------------------------------------------ *)
(* Baseline                                                            *)
(* ------------------------------------------------------------------ *)

let parse_baseline_line ~lineno line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    match split_words line with
    | [ rule; loc ] -> (
        match String.rindex_opt loc ':' with
        | None ->
            Error
              (Printf.sprintf "baseline line %d: expected `rule file:line'"
                 lineno)
        | Some i -> (
            let file = String.sub loc 0 i in
            let num = String.sub loc (i + 1) (String.length loc - i - 1) in
            match int_of_string_opt num with
            | None ->
                Error
                  (Printf.sprintf "baseline line %d: bad line number %S" lineno
                     num)
            | Some l ->
                if known_rule rule then
                  Ok
                    (Some
                       { b_rule = rule; b_file = normalize_path file; b_line = l })
                else
                  Error
                    (Printf.sprintf "baseline line %d: unknown rule %S" lineno
                       rule)))
    | _ ->
        Error
          (Printf.sprintf "baseline line %d: expected `rule file:line'" lineno)

let parse_baseline content =
  let lines = String.split_on_char '\n' content in
  let rec go lineno acc lines =
    match lines with
    | [] -> Ok (List.rev acc)
    | line :: tl -> (
        match parse_baseline_line ~lineno line with
        | Ok None -> go (lineno + 1) acc tl
        | Ok (Some e) -> go (lineno + 1) (e :: acc) tl
        | Error _ as e -> e)
  in
  go 1 [] lines

let load_baseline = function
  | None -> Ok []
  | Some path ->
      if not (Sys.file_exists path) then
        Error ("baseline file not found: " ^ path)
      else (
        match read_file path with
        | content -> parse_baseline content
        | exception Sys_error msg -> Error msg)

let compare_entries a b =
  let c = String.compare a.b_file b.b_file in
  if c <> 0 then c
  else
    let c = Int.compare a.b_line b.b_line in
    if c <> 0 then c else String.compare a.b_rule b.b_rule

(* Subtract the baseline from the findings (multiset semantics: one
   entry absorbs one finding).  Returns the surviving findings, the
   number absorbed, and the entries that matched nothing. *)
let apply_baseline entries findings =
  let remaining = ref entries in
  let absorbed = ref 0 in
  let survives (f : Lint_rules.finding) =
    let matches e =
      e.b_rule = f.Lint_rules.rule
      && e.b_file = f.Lint_rules.file
      && e.b_line = f.Lint_rules.line
    in
    match List.partition matches !remaining with
    | [], _ -> true
    | _ :: extra, rest ->
        remaining := extra @ rest;
        incr absorbed;
        false
  in
  let fresh = List.filter survives findings in
  (fresh, !absorbed, List.sort compare_entries !remaining)

let baseline_header =
  "# churnet-lint baseline: grandfathered findings, one `rule file:line' per\n\
   # line.  New code must stay clean; shrink this file, never grow it.\n"

let write_baseline path findings =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc baseline_header;
      List.iter
        (fun (f : Lint_rules.finding) ->
          output_string oc
            (Printf.sprintf "%s %s:%d\n" f.Lint_rules.rule f.Lint_rules.file
               f.Lint_rules.line))
        findings)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

(* One scanned source file, read / lexed / parsed exactly once and
   shared by every consumer (file rules, project rules, pragmas,
   diagnostics): the per-file parse cache that keeps @runtest latency
   flat as the rule count grows. *)
type parsed = {
  ps_rel : string;
  ps_lex : Lint_lexer.t;
  ps_tree : Lint_tree.t option;  (* None for interfaces *)
  ps_has_mli : bool;
}

let load_parsed ~is_ml (rel, fs) =
  match read_file fs with
  | exception Sys_error msg -> Error msg
  | src ->
      let lex = Lint_lexer.lex src in
      Ok
        {
          ps_rel = rel;
          ps_lex = lex;
          ps_tree = (if is_ml then Some (Lint_tree.parse lex) else None);
          ps_has_mli = is_ml && Sys.file_exists (fs ^ "i");
        }

let diagnostics_findings (p : parsed) =
  Array.to_list p.ps_lex.Lint_lexer.diagnostics
  |> List.map (fun (d : Lint_lexer.diagnostic) ->
         {
           Lint_rules.rule = bad_syntax_rule;
           file = p.ps_rel;
           line = d.Lint_lexer.d_line;
           col = d.Lint_lexer.d_col;
           message = d.Lint_lexer.d_message;
           witness = [];
         })

let to_json outcome =
  let finding_json (f : Lint_rules.finding) =
    let doc =
      match
        List.find_opt
          (fun (r : Lint_rules.rule) -> r.Lint_rules.name = f.Lint_rules.rule)
          Lint_rules.all
      with
      | Some r -> r.Lint_rules.doc
      | None ->
          if f.Lint_rules.rule = bad_pragma_rule then
            "malformed or unreasoned lint suppression pragma"
          else if f.Lint_rules.rule = bad_syntax_rule then
            "the lexer could not finish a construct (unterminated \
             comment/string); the tail of the file was not checked"
          else ""
    in
    Json.Obj
      [
        ("rule", Json.String f.Lint_rules.rule);
        ("doc", Json.String doc);
        ("file", Json.String f.Lint_rules.file);
        ("line", Json.Int f.Lint_rules.line);
        ("col", Json.Int f.Lint_rules.col);
        ("message", Json.String f.Lint_rules.message);
        ( "witness",
          Json.Arr
            (List.map (fun w -> Json.String w) f.Lint_rules.witness) );
      ]
  in
  let entry_json e =
    Json.Obj
      [
        ("rule", Json.String e.b_rule);
        ("file", Json.String e.b_file);
        ("line", Json.Int e.b_line);
      ]
  in
  Json.Obj
    [
      ("schema", Json.String "churnet-lint/2");
      ("files_scanned", Json.Int outcome.files_scanned);
      ( "rules",
        Json.Arr
          (List.map
             (fun (r : Lint_rules.rule) ->
               Json.Obj
                 [
                   ("name", Json.String r.Lint_rules.name);
                   ("doc", Json.String r.Lint_rules.doc);
                 ])
             Lint_rules.all) );
      ("findings", Json.Arr (List.map finding_json outcome.findings));
      ("baselined", Json.Int outcome.baselined);
      ("suppressed", Json.Int outcome.suppressed);
      ("expired_baseline", Json.Arr (List.map entry_json outcome.expired));
    ]

let run config =
  match collect_files ~root:config.root config.paths with
  | Error _ as e -> e
  | Ok (mls, mlis) -> (
      match load_baseline config.baseline_path with
      | Error _ as e -> e
      | Ok entries -> (
          (* Phase 1: read, lex and parse every file exactly once. *)
          let rec load_all acc ~is_ml files =
            match files with
            | [] -> Ok (List.rev acc)
            | f :: tl -> (
                match load_parsed ~is_ml f with
                | Error _ as e -> e
                | Ok p -> load_all (p :: acc) ~is_ml tl)
          in
          match load_all [] ~is_ml:true mls with
          | Error _ as e -> e
          | Ok ml_parsed -> (
              match load_all [] ~is_ml:false mlis with
              | Error _ as e -> e
              | Ok mli_parsed ->
                  let all_parsed = ml_parsed @ mli_parsed in
                  (* Phase 2: rules.  File rules per unit; project rules
                     once over the shared parse. *)
                  let file_findings =
                    List.concat_map
                      (fun p ->
                        let ctx =
                          {
                            Lint_rules.path = p.ps_rel;
                            lex = p.ps_lex;
                            has_mli = p.ps_has_mli;
                          }
                        in
                        List.concat_map
                          (fun (r : Lint_rules.rule) ->
                            match r.Lint_rules.check with
                            | Lint_rules.File check -> check ctx
                            | Lint_rules.Project _ | Lint_rules.Synthetic -> [])
                          Lint_rules.all)
                      ml_parsed
                  in
                  let project =
                    {
                      Lint_rules.p_graph =
                        Lint_graph.build
                          (List.filter_map
                             (fun p ->
                               match p.ps_tree with
                               | Some tree -> Some (p.ps_rel, p.ps_lex, tree)
                               | None -> None)
                             ml_parsed);
                      p_interfaces =
                        List.map (fun p -> (p.ps_rel, p.ps_lex)) mli_parsed;
                    }
                  in
                  let project_findings =
                    List.concat_map
                      (fun (r : Lint_rules.rule) ->
                        match r.Lint_rules.check with
                        | Lint_rules.Project check -> check project
                        | Lint_rules.File _ | Lint_rules.Synthetic -> [])
                      Lint_rules.all
                  in
                  let syntax_findings =
                    List.concat_map diagnostics_findings all_parsed
                  in
                  let pragmas, bad_pragma_findings =
                    List.fold_left
                      (fun (ps, bad) p ->
                        let ps', bad' =
                          pragmas_of ~path:p.ps_rel p.ps_lex
                        in
                        (ps @ ps', bad @ bad'))
                      ([], []) all_parsed
                  in
                  (* Phase 3: suppression, then stale-pragma detection.
                     Hits are counted by [suppressing_pragma]; a pragma
                     allowing unused-pragma earns its keep by
                     suppressing one. *)
                  let raw =
                    file_findings @ project_findings @ syntax_findings
                  in
                  let kept, dropped =
                    List.partition
                      (fun f -> not (suppressing_pragma pragmas f))
                      raw
                  in
                  let unused0 =
                    List.filter
                      (fun p ->
                        p.pg_hits = 0 && p.pg_rule <> "unused-pragma")
                      pragmas
                  in
                  let unused_findings0 =
                    List.map
                      (fun p ->
                        {
                          Lint_rules.rule = "unused-pragma";
                          file = p.pg_file;
                          line = p.pg_line;
                          col = 1;
                          message =
                            Printf.sprintf
                              "pragma allows %S but suppresses nothing; the \
                               code it excused is gone, so remove it"
                              p.pg_rule;
                          witness = [];
                        })
                      unused0
                  in
                  let unused_kept, unused_dropped =
                    List.partition
                      (fun f -> not (suppressing_pragma pragmas f))
                      unused_findings0
                  in
                  (* unused-pragma pragmas that themselves suppressed
                     nothing (no second level: kept deliberately simple) *)
                  let stale_meta =
                    List.filter
                      (fun p ->
                        p.pg_hits = 0 && p.pg_rule = "unused-pragma")
                      pragmas
                    |> List.map (fun p ->
                           {
                             Lint_rules.rule = "unused-pragma";
                             file = p.pg_file;
                             line = p.pg_line;
                             col = 1;
                             message =
                               "pragma allows \"unused-pragma\" but \
                                suppresses nothing; remove it";
                             witness = [];
                           })
                  in
                  let suppressed =
                    List.length dropped + List.length unused_dropped
                  in
                  let found =
                    List.sort Lint_rules.compare_findings
                      (bad_pragma_findings @ kept @ unused_kept @ stale_meta)
                  in
                  let fresh, baselined, expired =
                    apply_baseline entries found
                  in
                  let files_scanned = List.length all_parsed in
                  let outcome =
                    if config.update_baseline then begin
                      (match config.baseline_path with
                      | Some p -> write_baseline p found
                      | None -> ());
                      {
                        findings = [];
                        baselined = List.length found;
                        suppressed;
                        expired = [];
                        files_scanned;
                      }
                    end
                    else
                      {
                        findings = fresh;
                        baselined;
                        suppressed;
                        expired;
                        files_scanned;
                      }
                  in
                  (match config.json_path with
                  | Some p -> Json.write_file p (to_json outcome)
                  | None -> ());
                  Ok outcome)))

let render_finding (f : Lint_rules.finding) =
  let base =
    Printf.sprintf "%s:%d:%d: [%s] %s" f.Lint_rules.file f.Lint_rules.line
      f.Lint_rules.col f.Lint_rules.rule f.Lint_rules.message
  in
  match f.Lint_rules.witness with
  | [] -> base
  | w -> base ^ " [path: " ^ String.concat " -> " w ^ "]"

let render outcome =
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string buf (render_finding f);
      Buffer.add_char buf '\n')
    outcome.findings;
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf
           "churnet-lint: baseline entry no longer fires: %s %s:%d (remove it \
            or rerun with --update-baseline)\n"
           e.b_rule e.b_file e.b_line))
    outcome.expired;
  Buffer.add_string buf
    (Printf.sprintf
       "churnet-lint: %d finding(s), %d baselined, %d suppressed, %d file(s) \
        scanned\n"
       (List.length outcome.findings)
       outcome.baselined outcome.suppressed outcome.files_scanned);
  Buffer.contents buf

let exit_code outcome = if outcome.findings = [] then 0 else 1
