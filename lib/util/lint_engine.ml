type config = {
  paths : string list;
  baseline_path : string option;
  json_path : string option;
  update_baseline : bool;
}

type baseline_entry = { b_rule : string; b_file : string; b_line : int }

type outcome = {
  findings : Lint_rules.finding list;
  baselined : int;
  suppressed : int;
  expired : baseline_entry list;
  files_scanned : int;
}

let bad_pragma_rule = "bad-pragma"

(* ------------------------------------------------------------------ *)
(* Paths and file discovery                                            *)
(* ------------------------------------------------------------------ *)

let normalize_path p =
  let p = String.map (fun c -> if c = '\\' then '/' else c) p in
  let absolute = String.length p > 0 && p.[0] = '/' in
  let parts =
    List.filter (fun s -> s <> "" && s <> ".") (String.split_on_char '/' p)
  in
  (if absolute then "/" else "") ^ String.concat "/" parts

let has_suffix suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

(* Depth-first walk in sorted order (determinism: findings must not
   depend on readdir order).  Hidden and build directories and files
   ('.'- or '_'-prefixed) are skipped. *)
let rec walk acc path =
  if Sys.is_directory path then begin
    let entries = Sys.readdir path in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        if entry = "" || entry.[0] = '.' || entry.[0] = '_' then acc
        else walk acc (path ^ "/" ^ entry))
      acc entries
  end
  else if has_suffix ".ml" path || has_suffix ".mli" path then
    normalize_path path :: acc
  else acc

let collect_files paths =
  let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
  if missing <> [] then
    Error ("no such file or directory: " ^ String.concat ", " missing)
  else
    let all =
      List.fold_left (fun acc p -> walk acc (normalize_path p)) [] paths
    in
    let all = List.sort_uniq String.compare all in
    let mls = List.filter (fun p -> has_suffix ".ml" p) all in
    let mlis = List.filter (fun p -> has_suffix ".mli" p) all in
    Ok (mls, mlis)

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

(* ------------------------------------------------------------------ *)
(* Suppression pragmas                                                 *)
(* ------------------------------------------------------------------ *)

type pragma =
  | Allow_lines of string * int * int  (* rule, from line, to line inclusive *)
  | Allow_file of string

let em_dash = "\xe2\x80\x94"

(* A "dash word" is any run of ASCII dashes and/or em-dashes: the
   decorative separator between a pragma's rule name and its reason. *)
let is_dash_word w =
  let n = String.length w in
  let rec go i =
    if i >= n then true
    else if w.[i] = '-' then go (i + 1)
    else if n - i >= 3 && String.sub w i 3 = em_dash then go (i + 3)
    else false
  in
  n > 0 && go 0

let split_words s =
  List.filter (fun w -> w <> "")
    (String.split_on_char ' '
       (String.map (fun c -> if c = '\t' || c = '\n' || c = '\r' then ' ' else c) s))

(* Parse one comment.  Returns a pragma, a bad-pragma finding, or
   nothing when the comment is not a lint directive at all. *)
let parse_pragma ~path (c : Lint_lexer.comment) =
  let text = String.trim c.Lint_lexer.c_text in
  if not (String.length text >= 5 && String.sub text 0 5 = "lint:") then `None
  else
    let bad message =
      `Bad
        {
          Lint_rules.rule = bad_pragma_rule;
          file = path;
          line = c.Lint_lexer.c_line;
          col = 1;
          message;
        }
    in
    let directive = String.trim (String.sub text 5 (String.length text - 5)) in
    match split_words directive with
    | keyword :: rule :: rest when keyword = "allow" || keyword = "allow-file" ->
        if not (Lint_rules.is_rule rule) then
          bad
            (Printf.sprintf
               "unknown rule %S in lint pragma (known: %s)" rule
               (String.concat ", " Lint_rules.names))
        else
          let reason =
            let rec drop_dashes words =
              match words with
              | w :: tl when is_dash_word w -> drop_dashes tl
              | _ -> words
            in
            String.concat " " (drop_dashes rest)
          in
          if String.trim reason = "" then
            bad
              (Printf.sprintf
                 "lint pragma for %S has no reason; write `(* lint: %s %s \
                  \xe2\x80\x94 why this is safe *)'"
                 rule keyword rule)
          else if keyword = "allow-file" then `Pragma (Allow_file rule)
          else
            `Pragma
              (Allow_lines (rule, c.Lint_lexer.c_line, c.Lint_lexer.c_end_line + 1))
    | _ ->
        bad
          "malformed lint pragma; expected `lint: allow <rule> \xe2\x80\x94 \
           reason' or `lint: allow-file <rule> \xe2\x80\x94 reason'"

let pragmas_of ~path (lex : Lint_lexer.t) =
  Array.fold_left
    (fun (pragmas, bad) c ->
      match parse_pragma ~path c with
      | `None -> (pragmas, bad)
      | `Pragma p -> (p :: pragmas, bad)
      | `Bad f -> (pragmas, f :: bad))
    ([], []) lex.Lint_lexer.comments

let suppressed_by pragmas (f : Lint_rules.finding) =
  List.exists
    (fun p ->
      match p with
      | Allow_file rule -> rule = f.Lint_rules.rule
      | Allow_lines (rule, lo, hi) ->
          rule = f.Lint_rules.rule && f.Lint_rules.line >= lo
          && f.Lint_rules.line <= hi)
    pragmas

(* ------------------------------------------------------------------ *)
(* Baseline                                                            *)
(* ------------------------------------------------------------------ *)

let parse_baseline_line ~lineno line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    match split_words line with
    | [ rule; loc ] -> (
        match String.rindex_opt loc ':' with
        | None ->
            Error
              (Printf.sprintf "baseline line %d: expected `rule file:line'"
                 lineno)
        | Some i -> (
            let file = String.sub loc 0 i in
            let num = String.sub loc (i + 1) (String.length loc - i - 1) in
            match int_of_string_opt num with
            | None ->
                Error
                  (Printf.sprintf "baseline line %d: bad line number %S" lineno
                     num)
            | Some l ->
                if Lint_rules.is_rule rule || rule = bad_pragma_rule then
                  Ok (Some { b_rule = rule; b_file = normalize_path file; b_line = l })
                else
                  Error
                    (Printf.sprintf "baseline line %d: unknown rule %S" lineno
                       rule)))
    | _ ->
        Error
          (Printf.sprintf "baseline line %d: expected `rule file:line'" lineno)

let parse_baseline content =
  let lines = String.split_on_char '\n' content in
  let rec go lineno acc lines =
    match lines with
    | [] -> Ok (List.rev acc)
    | line :: tl -> (
        match parse_baseline_line ~lineno line with
        | Ok None -> go (lineno + 1) acc tl
        | Ok (Some e) -> go (lineno + 1) (e :: acc) tl
        | Error _ as e -> e)
  in
  go 1 [] lines

let load_baseline = function
  | None -> Ok []
  | Some path ->
      if not (Sys.file_exists path) then
        Error ("baseline file not found: " ^ path)
      else (
        match read_file path with
        | content -> parse_baseline content
        | exception Sys_error msg -> Error msg)

let compare_entries a b =
  let c = String.compare a.b_file b.b_file in
  if c <> 0 then c
  else
    let c = Int.compare a.b_line b.b_line in
    if c <> 0 then c else String.compare a.b_rule b.b_rule

(* Subtract the baseline from the findings (multiset semantics: one
   entry absorbs one finding).  Returns the surviving findings, the
   number absorbed, and the entries that matched nothing. *)
let apply_baseline entries findings =
  let remaining = ref entries in
  let absorbed = ref 0 in
  let survives (f : Lint_rules.finding) =
    let matches e =
      e.b_rule = f.Lint_rules.rule
      && e.b_file = f.Lint_rules.file
      && e.b_line = f.Lint_rules.line
    in
    match List.partition matches !remaining with
    | [], _ -> true
    | _ :: extra, rest ->
        remaining := extra @ rest;
        incr absorbed;
        false
  in
  let fresh = List.filter survives findings in
  (fresh, !absorbed, List.sort compare_entries !remaining)

let baseline_header =
  "# churnet-lint baseline: grandfathered findings, one `rule file:line' per\n\
   # line.  New code must stay clean; shrink this file, never grow it.\n"

let write_baseline path findings =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc baseline_header;
      List.iter
        (fun (f : Lint_rules.finding) ->
          output_string oc
            (Printf.sprintf "%s %s:%d\n" f.Lint_rules.rule f.Lint_rules.file
               f.Lint_rules.line))
        findings)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let lint_file ~mli_paths path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | src ->
      let lex = Lint_lexer.lex src in
      let has_mli =
        List.mem (path ^ "i") mli_paths || Sys.file_exists (path ^ "i")
      in
      let ctx = { Lint_rules.path; lex; has_mli } in
      let raw =
        List.concat_map (fun r -> r.Lint_rules.check ctx) Lint_rules.all
      in
      let pragmas, bad = pragmas_of ~path lex in
      let kept, dropped =
        List.partition (fun f -> not (suppressed_by pragmas f)) raw
      in
      Ok (bad @ kept, List.length dropped)

let to_json outcome =
  let finding_json (f : Lint_rules.finding) =
    Json.Obj
      [
        ("rule", Json.String f.Lint_rules.rule);
        ("file", Json.String f.Lint_rules.file);
        ("line", Json.Int f.Lint_rules.line);
        ("col", Json.Int f.Lint_rules.col);
        ("message", Json.String f.Lint_rules.message);
      ]
  in
  let entry_json e =
    Json.Obj
      [
        ("rule", Json.String e.b_rule);
        ("file", Json.String e.b_file);
        ("line", Json.Int e.b_line);
      ]
  in
  Json.Obj
    [
      ("schema", Json.String "churnet-lint/1");
      ("files_scanned", Json.Int outcome.files_scanned);
      ( "rules",
        Json.Arr
          (List.map
             (fun (r : Lint_rules.rule) ->
               Json.Obj
                 [
                   ("name", Json.String r.Lint_rules.name);
                   ("doc", Json.String r.Lint_rules.doc);
                 ])
             Lint_rules.all) );
      ("findings", Json.Arr (List.map finding_json outcome.findings));
      ("baselined", Json.Int outcome.baselined);
      ("suppressed", Json.Int outcome.suppressed);
      ("expired_baseline", Json.Arr (List.map entry_json outcome.expired));
    ]

let run config =
  match collect_files config.paths with
  | Error _ as e -> e
  | Ok (mls, mli_paths) -> (
      match load_baseline config.baseline_path with
      | Error _ as e -> e
      | Ok entries -> (
          let rec lint_all acc suppressed files =
            match files with
            | [] -> Ok (List.rev acc, suppressed)
            | f :: tl -> (
                match lint_file ~mli_paths f with
                | Error _ as e -> e
                | Ok (fs, dropped) -> lint_all (fs :: acc) (suppressed + dropped) tl)
          in
          match lint_all [] 0 mls with
          | Error _ as e -> e
          | Ok (per_file, suppressed) ->
              let found =
                List.sort Lint_rules.compare_findings (List.concat per_file)
              in
              let fresh, baselined, expired = apply_baseline entries found in
              let outcome =
                if config.update_baseline then begin
                  (match config.baseline_path with
                  | Some p -> write_baseline p found
                  | None -> ());
                  {
                    findings = [];
                    baselined = List.length found;
                    suppressed;
                    expired = [];
                    files_scanned = List.length mls;
                  }
                end
                else
                  {
                    findings = fresh;
                    baselined;
                    suppressed;
                    expired;
                    files_scanned = List.length mls;
                  }
              in
              (match config.json_path with
              | Some p -> Json.write_file p (to_json outcome)
              | None -> ());
              Ok outcome))

let render outcome =
  let buf = Buffer.create 256 in
  List.iter
    (fun (f : Lint_rules.finding) ->
      Buffer.add_string buf
        (Printf.sprintf "%s:%d:%d: [%s] %s\n" f.Lint_rules.file
           f.Lint_rules.line f.Lint_rules.col f.Lint_rules.rule
           f.Lint_rules.message))
    outcome.findings;
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf
           "churnet-lint: baseline entry no longer fires: %s %s:%d (remove it \
            or rerun with --update-baseline)\n"
           e.b_rule e.b_file e.b_line))
    outcome.expired;
  Buffer.add_string buf
    (Printf.sprintf
       "churnet-lint: %d finding(s), %d baselined, %d suppressed, %d file(s) \
        scanned\n"
       (List.length outcome.findings)
       outcome.baselined outcome.suppressed outcome.files_scanned);
  Buffer.contents buf

let exit_code outcome = if outcome.findings = [] then 0 else 1
