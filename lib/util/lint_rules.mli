(** The churnet-lint rule catalogue.

    Two rule families share it:

    - {e file rules} are pure functions from one lexed source file to
      findings (the PR 3 token rules);
    - {e project rules} consume the whole-project semantic pass — the
      {!Lint_tree} structural parse of every unit plus the
      {!Lint_graph} symbol index / call graph — and can therefore see
      dataflow (prng-flow), reachability (no-io-transitive,
      hot-path-alloc) and cross-file reference counts (dead-export).
      Their findings may carry a {e witness}: the call path that proves
      the claim.

    Rules only ever see {e code} tokens ({!Lint_lexer.lex} already
    stripped comments and string/char literals), so a banned construct
    mentioned in a comment or inside a string never fires.

    The catalogue guards the determinism contract of the reproduction:
    all randomness flows through [Prng] streams threaded from the
    experiment seed, all orderings are explicit, nothing in [lib/]
    writes to stdout behind the report layer's back, and the kernel hot
    paths stay allocation-lean. *)

type finding = {
  rule : string;  (** rule name, e.g. ["prng-flow"] *)
  file : string;  (** normalized repo-relative path *)
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
  message : string;
  witness : string list;
      (** for graph rules: the call path supporting the finding,
          outermost first (e.g.
          [["Flood.expand_informed"; "Bitset.iter"]]); empty for token
          rules *)
}

type context = {
  path : string;  (** normalized repo-relative path, '/'-separated *)
  lex : Lint_lexer.t;
  has_mli : bool;  (** a sibling interface file exists for this [.ml] *)
}

type project = {
  p_graph : Lint_graph.t;  (** index over every scanned [.ml] unit *)
  p_interfaces : (string * Lint_lexer.t) list;
      (** every scanned [.mli], as (path, lexed) *)
}

type check =
  | File of (context -> finding list)  (** runs once per file *)
  | Project of (project -> finding list)  (** runs once per lint run *)
  | Synthetic
      (** emitted by the engine itself (unused-pragma needs the
          suppression machinery); listed here so the catalogue, pragmas
          and docs stay complete *)

type rule = {
  name : string;
  doc : string;  (** one-line description for [--list-rules] and JSON *)
  check : check;
}

val all : rule list
(** The full catalogue, in documentation order. *)

val names : string list
(** Names of every rule in {!all}. *)

val is_rule : string -> bool
(** [is_rule name] is true when [name] names a rule in {!all} (used to
    validate suppression pragmas and baseline entries). *)

val compare_findings : finding -> finding -> int
(** Total order: file, then line, then column, then rule name. *)
