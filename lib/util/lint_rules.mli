(** The churnet-lint rule catalogue.

    Every rule is a pure function from a lexed source file to findings.
    Rules only ever see {e code} tokens ({!Lint_lexer.lex} already
    stripped comments and string/char literals), so a banned construct
    mentioned in a comment or inside a string never fires.

    The catalogue guards the determinism contract of the reproduction:
    all randomness flows through [Prng], all orderings are explicit, and
    nothing in [lib/] writes to stdout behind the report layer's back. *)

type finding = {
  rule : string;  (** rule name, e.g. ["no-polymorphic-sort"] *)
  file : string;  (** normalized repo-relative path *)
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
  message : string;
}

type context = {
  path : string;  (** normalized repo-relative path, '/'-separated *)
  lex : Lint_lexer.t;
  has_mli : bool;  (** a sibling interface file exists for this [.ml] *)
}

type rule = {
  name : string;
  doc : string;  (** one-line description for [--list-rules] and JSON *)
  check : context -> finding list;
}

val all : rule list
(** The full catalogue, in documentation order. *)

val names : string list
(** Names of every rule in {!all}. *)

val is_rule : string -> bool
(** [is_rule name] is true when [name] names a rule in {!all} (used to
    validate suppression pragmas and baseline entries). *)

val compare_findings : finding -> finding -> int
(** Total order: file, then line, then column, then rule name. *)
