type t = { mutable words : Bytes.t; mutable capacity : int; mutable cardinal : int }

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create";
  { words = Bytes.make ((capacity + 7) / 8) '\000'; capacity; cardinal = 0 }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let ensure_capacity t capacity =
  if capacity < 0 then invalid_arg "Bitset.ensure_capacity"
  else if capacity > t.capacity then begin
    (* Amortized doubling so hot loops that grow one id at a time stay O(1). *)
    let capacity = max capacity (2 * t.capacity) in
    let words = Bytes.make ((capacity + 7) / 8) '\000' in
    Bytes.blit t.words 0 words 0 (Bytes.length t.words);
    t.words <- words;
    t.capacity <- capacity
  end

let mem t i =
  check t i;
  Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let byte = Char.code (Bytes.get t.words (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  if byte land mask = 0 then begin
    Bytes.set t.words (i lsr 3) (Char.chr (byte lor mask));
    t.cardinal <- t.cardinal + 1
  end

let remove t i =
  check t i;
  let byte = Char.code (Bytes.get t.words (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  if byte land mask <> 0 then begin
    Bytes.set t.words (i lsr 3) (Char.chr (byte land lnot mask));
    t.cardinal <- t.cardinal - 1
  end

let cardinal t = t.cardinal

let clear t =
  Bytes.fill t.words 0 (Bytes.length t.words) '\000';
  t.cardinal <- 0

let copy t =
  { words = Bytes.copy t.words; capacity = t.capacity; cardinal = t.cardinal }

(* Index of the lowest set bit per byte value; entry 0 is never read. *)
let ctz8 =
  let a = Array.make 256 0 in
  for v = 1 to 255 do
    let i = ref 0 in
    while v land (1 lsl !i) = 0 do
      incr i
    done;
    a.(v) <- !i
  done;
  a

let popcount8 =
  let a = Array.make 256 0 in
  for v = 1 to 255 do
    a.(v) <- a.(v lsr 1) + (v land 1)
  done;
  a

(* Drain the set bits of one byte, lowest first: a table lookup per set
   bit and a clear-lowest-bit trick, so cost scales with the population
   of the byte rather than 8 mask tests.  The byte value is a snapshot,
   which is what lets [f] remove the element it was just handed. *)
let[@inline] visit_byte f base byte =
  let m = ref byte in
  while !m <> 0 do
    f (base lor Array.unsafe_get ctz8 !m);
    m := !m land (!m - 1)
  done

let iter f t =
  (* Scan 8-byte words and skip all-zero ones with a single load: the
     dominant case when the set is sparse in a large id space (e.g. the
     informed set early in a flood).  Only nonzero words descend to their
     bytes, and only nonzero bytes pay per-bit work. *)
  let words = t.words in
  let nbytes = Bytes.length words in
  let full = nbytes land lnot 7 in
  let b = ref 0 in
  while !b < full do
    if Int64.equal (Bytes.get_int64_le words !b) 0L then b := !b + 8
    else begin
      let stop = !b + 8 in
      while !b < stop do
        visit_byte f (!b lsl 3) (Char.code (Bytes.unsafe_get words !b));
        incr b
      done
    end
  done;
  while !b < nbytes do
    visit_byte f (!b lsl 3) (Char.code (Bytes.unsafe_get words !b));
    incr b
  done

let iter_words f t =
  let words = t.words in
  let nbytes = Bytes.length words in
  let full = nbytes land lnot 7 in
  let b = ref 0 in
  while !b < full do
    f (!b lsl 3) (Bytes.get_int64_le words !b);
    b := !b + 8
  done;
  if !b < nbytes then begin
    (* Tail word (capacity not a multiple of 64): assemble the remaining
       bytes little-endian and zero-pad the rest. *)
    let w = ref 0L in
    for i = nbytes - 1 downto !b do
      w := Int64.logor (Int64.shift_left !w 8)
             (Int64.of_int (Char.code (Bytes.unsafe_get words i)))
    done;
    f (!b lsl 3) !w
  end

(* Checkpoint support: capacity, cardinal and the raw words.  The words
   array length is pinned to (capacity + 7) / 8 by construction, so the
   decoder validates it and a decode/encode cycle is byte-identical. *)
let encode w t =
  Codec.varint w t.capacity;
  Codec.varint w t.cardinal;
  Codec.string w (Bytes.to_string t.words)

let decode r =
  let capacity = Codec.read_varint r in
  let cardinal = Codec.read_varint r in
  let s = Codec.read_string r in
  if capacity < 0 || cardinal < 0 || String.length s <> (capacity + 7) / 8 then
    raise (Codec.Error "Bitset.decode: inconsistent fields");
  (* A length-consistent but bit-corrupted payload would desync
     [cardinal] from the actual bits — and Flood uses [cardinal] for
     completion/extinction detection on resume — so the popcount is
     validated, not trusted. *)
  let pop = ref 0 in
  String.iter (fun c -> pop := !pop + popcount8.(Char.code c)) s;
  if !pop <> cardinal then
    raise (Codec.Error "Bitset.decode: cardinal does not match words popcount");
  { words = Bytes.of_string s; capacity; cardinal }
