type t = { mutable words : Bytes.t; mutable capacity : int; mutable cardinal : int }

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create";
  { words = Bytes.make ((capacity + 7) / 8) '\000'; capacity; cardinal = 0 }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let ensure_capacity t capacity =
  if capacity < 0 then invalid_arg "Bitset.ensure_capacity"
  else if capacity > t.capacity then begin
    (* Amortized doubling so hot loops that grow one id at a time stay O(1). *)
    let capacity = max capacity (2 * t.capacity) in
    let words = Bytes.make ((capacity + 7) / 8) '\000' in
    Bytes.blit t.words 0 words 0 (Bytes.length t.words);
    t.words <- words;
    t.capacity <- capacity
  end

let mem t i =
  check t i;
  Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let byte = Char.code (Bytes.get t.words (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  if byte land mask = 0 then begin
    Bytes.set t.words (i lsr 3) (Char.chr (byte lor mask));
    t.cardinal <- t.cardinal + 1
  end

let remove t i =
  check t i;
  let byte = Char.code (Bytes.get t.words (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  if byte land mask <> 0 then begin
    Bytes.set t.words (i lsr 3) (Char.chr (byte land lnot mask));
    t.cardinal <- t.cardinal - 1
  end

let cardinal t = t.cardinal

let clear t =
  Bytes.fill t.words 0 (Bytes.length t.words) '\000';
  t.cardinal <- 0

let iter f t =
  (* Skip all-zero bytes: dominant when the set is sparse in a large id
     space (e.g. the informed set early in a flood). *)
  for b = 0 to Bytes.length t.words - 1 do
    let byte = Char.code (Bytes.get t.words b) in
    if byte <> 0 then
      for o = 0 to 7 do
        if byte land (1 lsl o) <> 0 then f ((b lsl 3) lor o)
      done
  done

(* Checkpoint support: capacity, cardinal and the raw words.  The words
   array length is pinned to (capacity + 7) / 8 by construction, so the
   decoder validates it and a decode/encode cycle is byte-identical. *)
let encode w t =
  Codec.varint w t.capacity;
  Codec.varint w t.cardinal;
  Codec.string w (Bytes.to_string t.words)

let decode r =
  let capacity = Codec.read_varint r in
  let cardinal = Codec.read_varint r in
  let s = Codec.read_string r in
  if capacity < 0 || cardinal < 0 || String.length s <> (capacity + 7) / 8 then
    raise (Codec.Error "Bitset.decode: inconsistent fields");
  { words = Bytes.of_string s; capacity; cardinal }
