type t = { words : Bytes.t; capacity : int; mutable cardinal : int }

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create";
  { words = Bytes.make ((capacity + 7) / 8) '\000'; capacity; cardinal = 0 }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let byte = Char.code (Bytes.get t.words (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  if byte land mask = 0 then begin
    Bytes.set t.words (i lsr 3) (Char.chr (byte lor mask));
    t.cardinal <- t.cardinal + 1
  end

let remove t i =
  check t i;
  let byte = Char.code (Bytes.get t.words (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  if byte land mask <> 0 then begin
    Bytes.set t.words (i lsr 3) (Char.chr (byte land lnot mask));
    t.cardinal <- t.cardinal - 1
  end

let cardinal t = t.cardinal

let clear t =
  Bytes.fill t.words 0 (Bytes.length t.words) '\000';
  t.cardinal <- 0

let iter f t =
  for i = 0 to t.capacity - 1 do
    if Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0 then f i
  done
