type t = { mutable buf : int array; mutable len : int }

let create ?(capacity = 16) () =
  if capacity < 1 then invalid_arg "Intvec.create";
  { buf = Array.make capacity 0; len = 0 }

let length t = t.len
let clear t = t.len <- 0

let push t v =
  if t.len = Array.length t.buf then begin
    let bigger = Array.make (2 * t.len) 0 in
    Array.blit t.buf 0 bigger 0 t.len;
    t.buf <- bigger
  end;
  t.buf.(t.len) <- v;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Intvec.get";
  t.buf.(i)

let pop t =
  if t.len = 0 then invalid_arg "Intvec.pop: empty";
  t.len <- t.len - 1;
  t.buf.(t.len)

let mem t v =
  let rec go i = i < t.len && (t.buf.(i) = v || go (i + 1)) in
  go 0

let swap_remove_first t v =
  let rec find i = if i >= t.len then -1 else if t.buf.(i) = v then i else find (i + 1) in
  let i = find 0 in
  if i < 0 then false
  else begin
    t.len <- t.len - 1;
    t.buf.(i) <- t.buf.(t.len);
    true
  end

let iter f t =
  for i = 0 to t.len - 1 do
    f t.buf.(i)
  done

(* Checkpoint support: only the live prefix is state; capacity is a
   performance detail the decoder re-derives. *)
let encode w t = Codec.int_array w (Array.sub t.buf 0 t.len)

let decode r =
  let a = Codec.read_int_array r in
  let len = Array.length a in
  { buf = (if len = 0 then Array.make 16 0 else a); len }
