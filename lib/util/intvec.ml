type t = { mutable buf : int array; mutable len : int }

let create ?(capacity = 16) () =
  if capacity < 1 then invalid_arg "Intvec.create";
  { buf = Array.make capacity 0; len = 0 }

let length t = t.len
let clear t = t.len <- 0

let push t v =
  if t.len = Array.length t.buf then begin
    let bigger = Array.make (2 * t.len) 0 in
    Array.blit t.buf 0 bigger 0 t.len;
    t.buf <- bigger
  end;
  t.buf.(t.len) <- v;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Intvec.get";
  t.buf.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.buf.(i)
  done
