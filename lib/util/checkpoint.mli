(** Work-unit checkpoint journal for crash/resume of long runs.

    churnet runs are pure functions of (seed, scale, command), and
    their parallel fan-outs enumerate work units deterministically and
    independently of the domain count.  The journal memoizes completed
    unit results keyed by (site, index) — [site] numbers the
    {!Parallel} call sites in execution order, [index] the unit within
    a call — so a resumed run replays the identical schedule, takes
    cache hits for the units the crashed run persisted, recomputes the
    rest, and produces byte-identical output either way.

    The file format is {!Codec}-framed (schema [churnet-ckpt/1],
    length-prefixed, CRC-32-checked) and written atomically; payloads
    are [Marshal]ed, guarded by a caller-supplied [meta] identity line
    (executable digest + command + seed + scale) that {!load} refuses
    to mismatch.  Units whose results cannot be marshaled (closures)
    are skipped and recomputed on resume.

    A journal is installed ambiently around a run ({!install});
    {!Parallel.map} and friends consult {!active} on every call. *)

type t

exception Mismatch of string
(** Raised by {!load} when the stored meta line differs from the
    current run's — resuming under a different binary, command, seed
    or scale would decode foreign [Marshal] payloads. *)

type stats = {
  mutable units_stored : int;  (** results recorded this process *)
  mutable units_restored : int;  (** cache hits served this process *)
  mutable writes : int;  (** journal files written *)
  mutable write_seconds : float;  (** total time in journal writes *)
}

val create : path:string -> every:int -> meta:string -> t
(** [create ~path ~every ~meta] starts a fresh journal (overwriting any
    file at [path]) that persists itself after every [every] newly
    stored units, and once immediately — so even a crash before the
    first unit completes leaves a resumable (empty) journal. *)

val load : path:string -> every:int -> meta:string -> t
(** Reopen an existing journal for a resumed run.  Raises {!Mismatch}
    if the stored meta line is not exactly [meta], {!Codec.Error} on a
    corrupt or truncated file. *)

val inspect : string -> string * int
(** [inspect path] = (meta line, stored unit count), without meta
    validation.  Used by the fault-injection harness to size kill
    points. *)

val units : t -> int
(** Units currently held (restored + stored). *)

val install : t -> unit
(** Make [t] the ambient journal consulted by {!Parallel}.  At most one
    journal may be installed ([Invalid_argument] otherwise). *)

val uninstall : unit -> unit
val active : unit -> t option

val alloc_site : t -> int
(** Next call-site number, in execution order.  Called once per
    {!Parallel.map} invocation; deterministic because experiment
    orchestration is sequential. *)

val find : t -> site:int -> index:int -> 'a option
(** Cache lookup.  The ['a] is trusted ([Marshal.from_string]), which
    is why {!load} insists on an exact meta match. *)

val record : t -> site:int -> index:int -> 'a -> unit
(** Store a completed unit (thread-safe; called from worker domains).
    Persists the journal when [every] new units have accumulated. *)

val flush : t -> unit
(** Persist now if any stored unit is unwritten. *)

val finalize : t -> unit
(** {!flush}, then uninstall [t] if it is the ambient journal. *)

val stats : t -> stats
(** Snapshot of this process's journal activity. *)

val active_stats : unit -> stats option
(** {!stats} of the ambient journal, if one is installed.  Telemetry
    polls this around each experiment. *)

(** {1 Fault injection} *)

val crash_after : int -> (unit -> unit) -> unit
(** [crash_after k hook] fires [hook] exactly as the [k]-th progress
    tick ({!crash_tick}) after arming happens (arming resets the tick
    count).  The CLI's [--crash-at] arms a self-SIGKILL here to
    exercise crash/resume. *)

val crash_tick : unit -> unit
(** Count one completed work unit towards {!crash_after}.  Called by
    {!Parallel} for every freshly computed (non-cache-hit) unit and by
    the CLI's record-replay step loop. *)

(** {1 Clock injection} *)

val set_clock : (unit -> float) -> unit
(** Install the wall-clock used to time journal writes.  Defaults to a
    zero clock: simulation libraries may not read real time (see the
    no-wallclock lint rule), so the CLI injects Telemetry's clock. *)
