type series = { label : string; points : (float * float) array }

let glyphs = [| '*'; '+'; 'o'; '#'; '@'; 'x'; '%'; '&' |]

let plot ?(width = 64) ?(height = 18) ?(logx = false) ?(logy = false) ~title ~xlabel ~ylabel
    series =
  let transform logscale v = if logscale then log v else v in
  let usable (x, y) = (not (logx && x <= 0.)) && not (logy && y <= 0.) in
  let all_points =
    List.concat_map (fun s -> Array.to_list s.points) series |> List.filter usable
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "=== %s ===\n" title);
  if all_points = [] then begin
    Buffer.add_string buf "(no data)\n";
    Buffer.contents buf
  end
  else begin
    let xs = List.map (fun (x, _) -> transform logx x) all_points in
    let ys = List.map (fun (_, y) -> transform logy y) all_points in
    let xmin = List.fold_left Float.min infinity xs
    and xmax = List.fold_left Float.max neg_infinity xs
    and ymin = List.fold_left Float.min infinity ys
    and ymax = List.fold_left Float.max neg_infinity ys in
    let xspan = if xmax -. xmin <= 0. then 1. else xmax -. xmin in
    let yspan = if ymax -. ymin <= 0. then 1. else ymax -. ymin in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si s ->
        let glyph = glyphs.(si mod Array.length glyphs) in
        Array.iter
          (fun (x, y) ->
            if usable (x, y) then begin
              let tx = transform logx x and ty = transform logy y in
              let col =
                int_of_float ((tx -. xmin) /. xspan *. float_of_int (width - 1))
              in
              let row =
                height - 1
                - int_of_float ((ty -. ymin) /. yspan *. float_of_int (height - 1))
              in
              if row >= 0 && row < height && col >= 0 && col < width then
                grid.(row).(col) <- glyph
            end)
          s.points)
      series;
    let inv logscale v = if logscale then exp v else v in
    let ytop = inv logy ymax and ybot = inv logy ymin in
    Array.iteri
      (fun i row ->
        let margin =
          if i = 0 then Printf.sprintf "%10.3g |" ytop
          else if i = height - 1 then Printf.sprintf "%10.3g |" ybot
          else Printf.sprintf "%10s |" ""
        in
        Buffer.add_string buf margin;
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
    Buffer.add_string buf
      (Printf.sprintf "%10s  %.3g%s%.3g\n" ""
         (inv logx xmin)
         (String.make (max 1 (width - 16)) ' ')
         (inv logx xmax));
    Buffer.add_string buf
      (Printf.sprintf "x: %s%s   y: %s%s\n" xlabel
         (if logx then " (log)" else "")
         ylabel
         (if logy then " (log)" else ""));
    List.iteri
      (fun si s ->
        Buffer.add_string buf
          (Printf.sprintf "  %c = %s\n" glyphs.(si mod Array.length glyphs) s.label))
      series;
    Buffer.contents buf
  end

let bar ~title entries =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "=== %s ===\n" title);
  (* Scale by the largest magnitude so negative entries (e.g. a negative
     assortativity) get a well-defined, non-crashing length. *)
  let vmax =
    List.fold_left
      (fun acc (_, v) -> if Float.is_nan v then acc else Float.max acc (Float.abs v))
      0. entries
  in
  let lmax = List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries in
  List.iter
    (fun (label, v) ->
      let n =
        if vmax <= 0. || Float.is_nan v then 0
        else max 0 (int_of_float ((Float.abs v /. vmax *. 50.) +. 0.5))
      in
      let glyph = if v < 0. then '-' else '#' in
      Buffer.add_string buf
        (Printf.sprintf "%-*s | %s %.4g\n" lmax label (String.make n glyph) v))
    entries;
  Buffer.contents buf
