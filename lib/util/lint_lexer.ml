type token = { text : string; line : int; col : int }
type comment = { c_text : string; c_line : int; c_end_line : int }
type diagnostic = { d_message : string; d_line : int; d_col : int }

type t = {
  tokens : token array;
  comments : comment array;
  diagnostics : diagnostic array;
}

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_cont c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_digit c = c >= '0' && c <= '9'

let is_operator_char c =
  match c with
  | '!' | '$' | '%' | '&' | '*' | '+' | '-' | '.' | '/' | ':' | '<' | '='
  | '>' | '?' | '@' | '^' | '|' | '~' ->
      true
  | _ -> false

let lex src =
  let n = String.length src in
  let tokens = ref [] in
  let comments = ref [] in
  let diagnostics = ref [] in
  let i = ref 0 in
  let line = ref 1 in
  let bol = ref 0 in
  let col_of pos bol = pos - bol + 1 in
  (* Every single-character advance goes through [bump] so that line and
     beginning-of-line tracking stay correct inside literals and comments.
     A bare carriage return (classic-Mac line ending) counts as a line
     break; in a CRLF pair only the '\n' does, and because [bol] is set
     past the '\n' the '\r' can never shift the columns of the next
     line's tokens. *)
  let bump () =
    (match src.[!i] with
    | '\n' ->
        incr line;
        bol := !i + 1
    | '\r' when not (!i + 1 < n && src.[!i + 1] = '\n') ->
        incr line;
        bol := !i + 1
    | _ -> ());
    incr i
  in
  let diagnose ~at message =
    diagnostics :=
      { d_message = message; d_line = fst at; d_col = snd at } :: !diagnostics
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  (* Skip a double-quote-delimited string literal (cursor on the opening
     quote).  A backslash always protects the next character, which
     covers escaped quotes, backslashes, numeric escapes and line
     continuations alike. *)
  let skip_string () =
    let at = (!line, col_of !i !bol) in
    bump ();
    let closed = ref false in
    while (not !closed) && !i < n do
      match src.[!i] with
      | '\\' ->
          bump ();
          if !i < n then bump ()
      | '"' ->
          bump ();
          closed := true
      | _ -> bump ()
    done;
    if not !closed then
      diagnose ~at "unterminated string literal (reaches end of file)"
  in
  (* If the cursor sits on the '{' of a quoted string [{id|...|id}],
     skip the whole literal and return [true]; otherwise leave the
     cursor alone and return [false]. *)
  let skip_quoted_string_if_any () =
    let j = ref (!i + 1) in
    while
      !j < n
      && (match src.[!j] with 'a' .. 'z' | '_' -> true | _ -> false)
    do
      incr j
    done;
    if !j < n && src.[!j] = '|' then begin
      let at = (!line, col_of !i !bol) in
      let delim = String.sub src (!i + 1) (!j - !i - 1) in
      let dlen = String.length delim in
      (* consume up to and including the opening '|' *)
      while !i <= !j do
        bump ()
      done;
      let closer_at pos =
        pos + dlen + 1 < n
        && src.[pos] = '|'
        && String.sub src (pos + 1) dlen = delim
        && src.[pos + dlen + 1] = '}'
      in
      let closed = ref false in
      while (not !closed) && !i < n do
        if closer_at !i then begin
          for _ = 0 to dlen + 1 do
            bump ()
          done;
          closed := true
        end
        else bump ()
      done;
      if not !closed then
        diagnose ~at "unterminated quoted string literal (reaches end of file)";
      true
    end
    else false
  in
  (* Cursor on a single quote.  Skip a character literal if one starts
     here; otherwise (type variable, label quote) skip just the quote.
     Returns with the cursor past whatever was consumed. *)
  let skip_char_or_quote () =
    if peek 1 = Some '\\' then begin
      (* escaped literal: '\n', '\'', '\065', '\xFF', '\u{1F600}' *)
      bump ();
      bump ();
      if !i < n then bump ();
      while !i < n && src.[!i] <> '\'' do
        bump ()
      done;
      if !i < n then bump ()
    end
    else if
      peek 2 = Some '\''
      && (match peek 1 with Some ('\'' | '\\') -> false | Some _ -> true | None -> false)
    then begin
      (* plain literal, including '"', '(', '*' *)
      bump ();
      bump ();
      bump ()
    end
    else bump ()
  in
  (* Cursor on "(*".  Consume the whole (possibly nested) comment,
     recording its body.  String, quoted-string and character literals
     inside the comment cannot open or close it, matching the OCaml
     lexer's own behavior. *)
  let skip_comment () =
    let start_line = !line in
    let at = (!line, col_of !i !bol) in
    let buf = Buffer.create 64 in
    bump ();
    bump ();
    let depth = ref 1 in
    while !depth > 0 && !i < n do
      if src.[!i] = '(' && peek 1 = Some '*' then begin
        incr depth;
        Buffer.add_string buf "(*";
        bump ();
        bump ()
      end
      else if src.[!i] = '*' && peek 1 = Some ')' then begin
        decr depth;
        if !depth > 0 then Buffer.add_string buf "*)";
        bump ();
        bump ()
      end
      else if src.[!i] = '"' then begin
        let start = !i in
        skip_string ();
        Buffer.add_substring buf src start (!i - start)
      end
      else if src.[!i] = '{' then begin
        let start = !i in
        if skip_quoted_string_if_any () then
          Buffer.add_substring buf src start (!i - start)
        else begin
          Buffer.add_char buf '{';
          bump ()
        end
      end
      else if src.[!i] = '\'' then begin
        let start = !i in
        skip_char_or_quote ();
        Buffer.add_substring buf src start (!i - start)
      end
      else begin
        Buffer.add_char buf src.[!i];
        bump ()
      end
    done;
    if !depth > 0 then
      diagnose ~at "unterminated comment (reaches end of file)";
    comments :=
      { c_text = Buffer.contents buf; c_line = start_line; c_end_line = !line }
      :: !comments
  in
  let emit start start_bol start_line =
    tokens :=
      {
        text = String.sub src start (!i - start);
        line = start_line;
        col = col_of start start_bol;
      }
      :: !tokens
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then bump ()
    else if c = '(' && peek 1 = Some '*' then skip_comment ()
    else if c = '"' then skip_string ()
    else if c = '{' then begin
      if not (skip_quoted_string_if_any ()) then begin
        let start = !i and sb = !bol and sl = !line in
        bump ();
        emit start sb sl
      end
    end
    else if c = '\'' then skip_char_or_quote ()
    else if is_ident_start c then begin
      let start = !i and sb = !bol and sl = !line in
      while !i < n && is_ident_cont src.[!i] do
        bump ()
      done;
      emit start sb sl
    end
    else if is_digit c then begin
      let start = !i and sb = !bol and sl = !line in
      let number_cont () =
        !i < n
        &&
        match src.[!i] with
        | '0' .. '9' | 'a' .. 'z' | 'A' .. 'Z' | '_' | '.' -> true
        | '+' | '-' -> (
            match src.[!i - 1] with 'e' | 'E' | 'p' | 'P' -> true | _ -> false)
        | _ -> false
      in
      bump ();
      while number_cont () do
        bump ()
      done;
      emit start sb sl
    end
    else if is_operator_char c then begin
      let start = !i and sb = !bol and sl = !line in
      while !i < n && is_operator_char src.[!i] do
        bump ()
      done;
      emit start sb sl
    end
    else begin
      (* parentheses, brackets, comma, semicolon, backtick, ... *)
      let start = !i and sb = !bol and sl = !line in
      bump ();
      emit start sb sl
    end
  done;
  {
    tokens = Array.of_list (List.rev !tokens);
    comments = Array.of_list (List.rev !comments);
    diagnostics = Array.of_list (List.rev !diagnostics);
  }
