(** Deterministic pseudo-random number generation.

    All randomness in churnet flows through values of type {!t}, so that
    every simulation is reproducible from a single 64-bit seed.  The
    generator is xoshiro256** seeded through SplitMix64, the standard
    recommendation of Blackman & Vigna; it is fast, has a 2^256 - 1 period
    and passes BigCrush. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator deterministically from [seed]
    (any int, including negative values). *)

val split : t -> t
(** [split t] derives a new, statistically independent generator from [t],
    advancing [t].  Useful to give each replica of an experiment its own
    stream. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future outputs). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound-1].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform on [0, bound). *)

val unit_float : t -> float
(** Uniform on [0,1) with 53 bits of precision. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct values uniformly
    from [0, n-1].  Requires [k <= n]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val encode : Codec.writer -> t -> unit
(** Serialize the generator state (4 fixed int64 words) for checkpoints. *)

val decode : Codec.reader -> t
(** Rebuild a generator with exactly the encoded future output stream. *)
