(** Samplers and probability functions for the distributions used by the
    Poisson dynamic-graph models: exponential inter-arrival times and
    lifetimes (Definition 4.1), Poisson arrival counts, and a few helpers
    used by the statistical validation experiments. *)

val exponential : Prng.t -> float -> float
(** [exponential rng lambda] samples Exp(lambda) by inversion.
    Mean is [1 /. lambda].  [lambda] must be positive. *)

val poisson : Prng.t -> float -> int
(** [poisson rng mean] samples a Poisson variate.  Uses Knuth
    multiplication for means below 30 and, for larger means, a sum of
    independent Knuth stages of mean at most 30 each — exact by Poisson
    additivity, O(mean) time, and immune to the [exp (-.mean)]
    underflow that silently caps single-stage Knuth at large means. *)

val geometric : Prng.t -> float -> int
(** [geometric rng p] is the number of failures before the first success of
    a Bernoulli(p), i.e. supported on 0, 1, 2, ... *)

val binomial : Prng.t -> int -> float -> int
(** [binomial rng n p] samples Bin(n, p) in O(min(n, expected)). *)

val std_normal : Prng.t -> float
(** Standard normal via Box-Muller. *)

val exponential_pdf : float -> float -> float
(** [exponential_pdf lambda x] is the density of Exp(lambda) at [x]. *)

val poisson_pmf : float -> int -> float
(** [poisson_pmf mean k] is the Poisson probability mass at [k],
    computed in log space for stability. *)

val log_factorial : int -> float
(** [log_factorial k] = ln k!, via Stirling for large [k] with a cached
    table for small values. *)
