(* Cross-file symbol index and call graph for churnet-lint.

   Nodes are the top-level bindings of every parsed unit (including
   zero-parameter values: a module-level `let rng = ...' is exactly the
   kind of node prng-flow cares about).  Edges are resolved identifier
   references: qualified paths through the unit's module aliases, and
   bare identifiers through same-file bindings and `open'/`include'
   scopes.  Resolution is heuristic — like Lint_tree it prefers
   totality and over-approximation over precision — but shadowing by
   function parameters, nested lets and lambda parameters is honored so
   the common `fun rng -> ...' does not leak edges to an unrelated
   top-level `rng'. *)

type def = {
  d_id : int;
  d_unit : int;  (* index into [units] *)
  d_module : string;  (* file module name, e.g. "Flood" *)
  d_submodule : string list;  (* submodule path within the file *)
  d_name : string;
  d_params : Lint_tree.param list;
  d_span : Lint_tree.span;
  d_body : Lint_tree.span;
  d_line : int;
  d_col : int;
}

type unit_info = {
  u_path : string;
  u_module : string;
  u_lex : Lint_lexer.t;
  u_tree : Lint_tree.t;
}

type t = {
  units : unit_info array;
  defs : def array;
  calls : int list array;  (* def id -> callee def ids *)
  callers : int list array;  (* def id -> caller def ids *)
  external_refs : (string * string, int) Hashtbl.t;
      (* (module, name) -> number of references from OTHER units; also
         counts qualified references whose value had no parsed def *)
}

let module_of_path path =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename path))

let is_upper_ident s = String.length s > 0 && s.[0] >= 'A' && s.[0] <= 'Z'

let is_lower_ident s =
  String.length s > 0
  && (s.[0] = '_' || (s.[0] >= 'a' && s.[0] <= 'z'))

(* Lambda parameters are not recorded by Lint_tree; recover them here:
   the lower identifiers between `fun' and the first `->' at depth 0.
   [function] has no parameter tokens before `->', which is fine. *)
let lambda_params (lex : Lint_lexer.t) (s : Lint_tree.span) =
  let tks = lex.Lint_lexer.tokens in
  let n = Array.length tks in
  let names = ref [] in
  let depth = ref 0 in
  let j = ref (s.Lint_tree.s_first + 1) in
  let continue = ref true in
  while !continue && !j < n && !j <= s.Lint_tree.s_last do
    let t = tks.(!j).Lint_lexer.text in
    if t = "->" && !depth = 0 then continue := false
    else begin
      (match t with
      | "(" | "[" | "{" -> incr depth
      | ")" | "]" | "}" -> decr depth
      | _ -> if is_lower_ident t then names := t :: !names);
      incr j
    end
  done;
  !names

let build units_list =
  let units =
    Array.of_list
      (List.map
         (fun (path, lex, tree) ->
           { u_path = path; u_module = module_of_path path; u_lex = lex;
             u_tree = tree })
         units_list)
  in
  (* --- defs -------------------------------------------------------- *)
  let defs = ref [] in
  let ndefs = ref 0 in
  (* (module, name) -> def ids; first-come order preserved per key *)
  let by_key : (string * string, int list) Hashtbl.t = Hashtbl.create 256 in
  (* unit index -> (name -> def ids) for bare same-file resolution *)
  let by_unit_name : (int * string, int list) Hashtbl.t = Hashtbl.create 256 in
  (* unit index -> binding name_index set, to skip definition sites *)
  let name_sites : (int * int, unit) Hashtbl.t = Hashtbl.create 256 in
  Array.iteri
    (fun ui u ->
      let tks = u.u_lex.Lint_lexer.tokens in
      Array.iter
        (fun (bd : Lint_tree.binding) ->
          Hashtbl.replace name_sites (ui, bd.Lint_tree.b_name_index) ();
          if bd.Lint_tree.b_toplevel then begin
            let id = !ndefs in
            incr ndefs;
            let name_tok =
              let k = bd.Lint_tree.b_name_index in
              if k >= 0 && k < Array.length tks then Some tks.(k) else None
            in
            let line, col =
              match name_tok with
              | Some tk -> (tk.Lint_lexer.line, tk.Lint_lexer.col)
              | None -> (1, 1)
            in
            let d =
              {
                d_id = id;
                d_unit = ui;
                d_module = u.u_module;
                d_submodule = bd.Lint_tree.b_module_path;
                d_name = bd.Lint_tree.b_name;
                d_params = bd.Lint_tree.b_params;
                d_span = bd.Lint_tree.b_span;
                d_body = bd.Lint_tree.b_body;
                d_line = line;
                d_col = col;
              }
            in
            defs := d :: !defs;
            let add tbl key =
              let prev = try Hashtbl.find tbl key with Not_found -> [] in
              Hashtbl.replace tbl key (prev @ [ id ])
            in
            add by_key (u.u_module, d.d_name);
            (* a def inside submodule S of file M is also addressable
               as S.name through the last submodule segment *)
            (match List.rev d.d_submodule with
            | last :: _ -> add by_key (last, d.d_name)
            | [] -> ());
            add by_unit_name (ui, d.d_name)
          end)
        u.u_tree.Lint_tree.bindings)
    units;
  let defs = Array.of_list (List.rev !defs) in
  let n = Array.length defs in
  let calls = Array.make n [] in
  let callers = Array.make n [] in
  let external_refs : (string * string, int) Hashtbl.t = Hashtbl.create 64 in
  let unit_modules : (string, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri (fun ui u -> Hashtbl.replace unit_modules u.u_module ui) units;
  (* --- references -------------------------------------------------- *)
  let add_edge caller callee =
    if caller <> callee && not (List.mem callee calls.(caller)) then begin
      calls.(caller) <- callee :: calls.(caller);
      callers.(callee) <- caller :: callers.(callee)
    end
  in
  let bump_external m x =
    let prev = try Hashtbl.find external_refs (m, x) with Not_found -> 0 in
    Hashtbl.replace external_refs (m, x) (prev + 1)
  in
  Array.iteri
    (fun ui u ->
      let tks = u.u_lex.Lint_lexer.tokens in
      let tree = u.u_tree in
      let ntk = Array.length tks in
      let text i = if i >= 0 && i < ntk then tks.(i).Lint_lexer.text else "" in
      let aliases = tree.Lint_tree.aliases in
      let resolve_module m =
        let m =
          match
            Array.find_opt (fun (a, _) -> a = m) aliases
          with
          | Some (_, target) -> target
          | None -> m
        in
        if Hashtbl.mem unit_modules m then Some m else None
      in
      (* shadow entries: (name, span) for params of every binding and
         every lambda; nested (non-toplevel) bindings shadow over their
         own span too *)
      let shadows = ref [] in
      Array.iter
        (fun (bd : Lint_tree.binding) ->
          List.iter
            (fun (p : Lint_tree.param) ->
              if is_lower_ident p.Lint_tree.p_name then
                shadows := (p.Lint_tree.p_name, bd.Lint_tree.b_span) :: !shadows)
            bd.Lint_tree.b_params;
          if not bd.Lint_tree.b_toplevel then
            shadows := (bd.Lint_tree.b_name, bd.Lint_tree.b_span) :: !shadows)
        tree.Lint_tree.bindings;
      Array.iter
        (fun s -> List.iter
            (fun p -> shadows := (p, s) :: !shadows)
            (lambda_params u.u_lex s))
        tree.Lint_tree.lambdas;
      let shadowed name i =
        List.exists
          (fun (sn, sp) -> sn = name && Lint_tree.span_contains sp i)
          !shadows
      in
      let record_ref i target_module x =
        match Hashtbl.find_opt by_key (target_module, x) with
        | Some (callee :: _) ->
            let callee_def = defs.(callee) in
            (* external counts are keyed by the callee's UNIT module so a
               reference through a submodule path (Stats.Histogram.add)
               still marks the export in stats.mli as used *)
            if callee_def.d_unit <> ui then
              bump_external callee_def.d_module x;
            (match Lint_tree.enclosing_toplevel tree i with
            | Some (bd : Lint_tree.binding) -> (
                match
                  Hashtbl.find_opt by_unit_name (ui, bd.Lint_tree.b_name)
                with
                | Some ids -> (
                    (* pick the caller def whose span contains i *)
                    match
                      List.find_opt
                        (fun id ->
                          Lint_tree.span_contains defs.(id).d_span i)
                        ids
                    with
                    | Some caller -> add_edge caller callee
                    | None -> ())
                | None -> ())
            | None -> ())
        | _ ->
            (* no parsed def (value from a pattern binding, or declared
               only in the interface): still counts as an external use *)
            if Hashtbl.mem unit_modules target_module
               && (match Hashtbl.find_opt unit_modules target_module with
                  | Some tu -> tu <> ui
                  | None -> false)
            then bump_external target_module x
      in
      for i = 0 to ntk - 1 do
        let x = text i in
        if is_lower_ident x && not (Hashtbl.mem name_sites (ui, i)) then begin
          if text (i - 1) = "." then begin
            if is_upper_ident (text (i - 2)) then begin
              (* qualified: collect the whole dotted path M1...Mk.x and
                 try the innermost segment first (defs inside submodule
                 S are keyed under S), then the outermost unit module *)
              let outer = ref (text (i - 2)) in
              let j = ref (i - 2) in
              while text (!j - 1) = "." && is_upper_ident (text (!j - 2)) do
                outer := text (!j - 2);
                j := !j - 2
              done;
              let expand m =
                match Array.find_opt (fun (a, _) -> a = m) aliases with
                | Some (_, target) -> target
                | None -> m
              in
              let innermost = expand (text (i - 2)) in
              let outermost = expand !outer in
              if Hashtbl.mem by_key (innermost, x) then
                record_ref i innermost x
              else record_ref i outermost x
            end
            (* else: record field access -- not a value reference *)
          end
          else if not (shadowed x i) then begin
            (* bare: same file first, then opens/includes *)
            match Hashtbl.find_opt by_unit_name (ui, x) with
            | Some ids -> (
                match Lint_tree.enclosing_toplevel tree i with
                | Some bd -> (
                    match
                      List.find_opt
                        (fun id -> defs.(id).d_name <> bd.Lint_tree.b_name) ids
                    with
                    | Some callee -> (
                        match
                          Hashtbl.find_opt by_unit_name (ui, bd.Lint_tree.b_name)
                        with
                        | Some cids -> (
                            match
                              List.find_opt
                                (fun id ->
                                  Lint_tree.span_contains defs.(id).d_span i)
                                cids
                            with
                            | Some caller -> add_edge caller callee
                            | None -> ())
                        | None -> ())
                    | None -> ())
                | None -> ())
            | None ->
                let via_open =
                  Array.to_list tree.Lint_tree.opens
                  |> List.filter_map (fun (o : Lint_tree.open_decl) ->
                         if Lint_tree.span_contains o.Lint_tree.o_scope i then
                           resolve_module o.Lint_tree.o_module
                         else None)
                in
                let via_include =
                  Array.to_list tree.Lint_tree.includes
                  |> List.filter_map resolve_module
                in
                List.iter
                  (fun m ->
                    if Hashtbl.mem by_key (m, x) then record_ref i m x)
                  (via_open @ via_include)
          end
        end
      done)
    units;
  { units; defs; calls; callers; external_refs }

let find_defs t ~f =
  Array.to_list t.defs |> List.filter f |> List.map (fun d -> d.d_id)

let find_def t ~module_ ~name =
  find_defs t ~f:(fun d -> d.d_module = module_ && d.d_name = name)

(* BFS over [calls] (or [callers]) from [roots].  Returns the
   predecessor array: pred.(d) = the node through which [d] was first
   reached (itself for a root, -1 when unreachable). *)
let bfs t ~edges ~roots =
  let n = Array.length t.defs in
  let adj = match edges with `Calls -> t.calls | `Callers -> t.callers in
  let pred = Array.make n (-1) in
  let q = Queue.create () in
  List.iter
    (fun r ->
      if r >= 0 && r < n && pred.(r) = -1 then begin
        pred.(r) <- r;
        Queue.add r q
      end)
    roots;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if pred.(v) = -1 then begin
          pred.(v) <- u;
          Queue.add v q
        end)
      adj.(u)
  done;
  pred

(* The chain of defs from a root to [d] under [pred] (root first).
   Empty when [d] was not reached. *)
let path t ~pred d =
  if d < 0 || d >= Array.length pred || pred.(d) = -1 then []
  else begin
    let rec up acc d = if pred.(d) = d then d :: acc else up (d :: acc) pred.(d) in
    List.map (fun id -> t.defs.(id)) (up [] d)
  end

let external_ref_count t ~module_ ~name =
  try Hashtbl.find t.external_refs (module_, name) with Not_found -> 0
