(* Work-unit checkpoint journal.

   Experiments are arbitrary closures, so churnet does not snapshot
   their continuations.  Instead it exploits the repo's determinism
   guarantee: a run is a pure function of (seed, scale, command), and
   its parallel fan-outs ({!Parallel.map} / [replicate]) enumerate work
   units in a deterministic order that is independent of the domain
   count.  The journal memoizes each completed unit's result under a
   (site, index) key — [site] numbers the [Parallel] call sites in
   execution order, [index] the unit within the call — and a resumed
   run replays the same deterministic schedule, taking cache hits for
   every unit the crashed run persisted and recomputing the rest.  The
   final output is byte-identical either way.

   Payloads are [Marshal]ed, which is only safe against the exact value
   layout the writing executable used; the [meta] line (executable
   digest + command identity, built by the CLI) is checked on [load] so
   a checkpoint can never be decoded by a different binary or replayed
   under a different command, seed or scale.  A unit whose result
   cannot be marshaled (e.g. it contains a closure) is simply not
   journaled: resume then recomputes it, which is slower but equally
   deterministic.

   Files go through {!Codec} framing (schema + length + CRC-32) and are
   written atomically, so the journal on disk is always a valid prefix
   of the run — exactly what a SIGKILL mid-run must guarantee. *)

exception Mismatch of string

type stats = {
  mutable units_stored : int;
  mutable units_restored : int;
  mutable writes : int;
  mutable write_seconds : float;
}

let stats_zero () =
  { units_stored = 0; units_restored = 0; writes = 0; write_seconds = 0. }

type t = {
  path : string;
  every : int;
  meta : string;
  lock : Mutex.t;
  entries : ((int * int), string) Hashtbl.t; (* (site, index) -> payload *)
  mutable sites : int;
  mutable dirty : int; (* units stored since the last write *)
  stats : stats;
}

(* The simulation libraries may not observe wall-clock time (see the
   no-wallclock lint rule); write timing uses whatever clock the
   harness injects — Telemetry's in the CLI, the zero clock in tests. *)
let clock = ref (fun () -> 0.)
let set_clock f = clock := f

(* --- fault injection ------------------------------------------------ *)

(* [crash_after k hook] arms the hook to fire as the k-th work unit
   completes (checkpoint units or any other progress tick).  The CLI
   arms a self-SIGKILL here to drive the crash/resume harness; the
   counter is global and atomic because units complete on worker
   domains. *)
let crash_at = ref 0 (* 0 = disarmed *)
let crash_hook = ref (fun () -> ())
let completed = Atomic.make 0

let crash_after k hook =
  if k < 1 then invalid_arg "Checkpoint.crash_after: k must be >= 1";
  (* Count from the arming point, so arming is meaningful even after
     earlier ticks (the tests re-arm mid-process). *)
  Atomic.set completed 0;
  crash_at := k;
  crash_hook := hook

let crash_tick () =
  let n = 1 + Atomic.fetch_and_add completed 1 in
  if !crash_at > 0 && n = !crash_at then !crash_hook ()

(* --- journal lifecycle ---------------------------------------------- *)

let encode_payload t w =
  Codec.string w t.meta;
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.entries [] in
  let keys =
    List.sort
      (fun (s1, i1) (s2, i2) ->
        if s1 <> s2 then Int.compare s1 s2 else Int.compare i1 i2)
      keys
  in
  Codec.varint w (List.length keys);
  List.iter
    (fun ((site, index) as k) ->
      Codec.varint w site;
      Codec.varint w index;
      Codec.string w (Hashtbl.find t.entries k))
    keys

(* Callers hold [t.lock]. *)
let write_locked t =
  let t0 = !clock () in
  Codec.write_file ~schema:Codec.schema t.path (encode_payload t);
  t.stats.writes <- t.stats.writes + 1;
  t.stats.write_seconds <- t.stats.write_seconds +. (!clock () -. t0);
  t.dirty <- 0

let create ~path ~every ~meta =
  if every < 1 then invalid_arg "Checkpoint.create: every must be >= 1";
  let t =
    {
      path;
      every;
      meta;
      lock = Mutex.create ();
      entries = Hashtbl.create 64;
      sites = 0;
      dirty = 0;
      stats = stats_zero ();
    }
  in
  (* Write the empty journal immediately: a crash before the first
     flush must still leave a resumable file (one that simply caches
     nothing). *)
  write_locked t;
  t

let read_entries path =
  let r = Codec.read_file ~schema:Codec.schema path in
  let meta = Codec.read_string r in
  let count = Codec.read_varint r in
  if count < 0 then raise (Codec.Error "Checkpoint: negative entry count");
  let entries = Hashtbl.create (max 64 (2 * count)) in
  for _ = 1 to count do
    let site = Codec.read_varint r in
    let index = Codec.read_varint r in
    let payload = Codec.read_string r in
    Hashtbl.replace entries (site, index) payload
  done;
  Codec.expect_end r;
  (meta, entries)

let load ~path ~every ~meta =
  if every < 1 then invalid_arg "Checkpoint.load: every must be >= 1";
  let stored_meta, entries = read_entries path in
  if stored_meta <> meta then
    raise
      (Mismatch
         (Printf.sprintf
            "checkpoint %s was written by a different run\n  stored:  %s\n  current: %s"
            path stored_meta meta));
  {
    path;
    every;
    meta;
    lock = Mutex.create ();
    entries;
    sites = 0;
    dirty = 0;
    stats = stats_zero ();
  }

let inspect path =
  let meta, entries = read_entries path in
  (meta, Hashtbl.length entries)

let units t = Mutex.protect t.lock (fun () -> Hashtbl.length t.entries)

(* --- ambient installation ------------------------------------------- *)

(* One journal at a time, installed by the harness around a whole run.
   [Parallel] reads it on the orchestrating domain only; worker domains
   touch the journal through {!record}, which locks. *)
let current : t option ref = ref None

let install t =
  (match !current with
  | Some _ -> invalid_arg "Checkpoint.install: a journal is already installed"
  | None -> ());
  current := Some t

let uninstall () = current := None
let active () = !current

(* --- the memo table -------------------------------------------------- *)

let alloc_site t =
  Mutex.protect t.lock (fun () ->
      let s = t.sites in
      t.sites <- s + 1;
      s)

let find : type a. t -> site:int -> index:int -> a option =
 fun t ~site ~index ->
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.entries (site, index) with
      | None -> None
      | Some payload ->
          t.stats.units_restored <- t.stats.units_restored + 1;
          Some (Marshal.from_string payload 0))

let record t ~site ~index v =
  match
    (* Closures (and other unmarshalable values) cannot be journaled;
       skipping them costs recomputation on resume, never correctness. *)
    try Some (Marshal.to_string v []) with Invalid_argument _ -> None
  with
  | None -> ()
  | Some payload ->
      Mutex.protect t.lock (fun () ->
          Hashtbl.replace t.entries (site, index) payload;
          t.stats.units_stored <- t.stats.units_stored + 1;
          t.dirty <- t.dirty + 1;
          if t.dirty >= t.every then write_locked t)

let flush t =
  Mutex.protect t.lock (fun () -> if t.dirty > 0 then write_locked t)

let finalize t =
  Mutex.protect t.lock (fun () -> if t.dirty > 0 then write_locked t);
  match !current with Some c when c == t -> current := None | _ -> ()

let stats t =
  Mutex.protect t.lock (fun () ->
      {
        units_stored = t.stats.units_stored;
        units_restored = t.stats.units_restored;
        writes = t.stats.writes;
        write_seconds = t.stats.write_seconds;
      })

let active_stats () = Option.map stats !current
