(** Information-theoretic helpers.

    The paper's key technical tool for the Poisson model with edge
    regeneration (Section 4.3.1) interprets the log-probability that an age
    "demographic" fails to expand as a Kullback-Leibler divergence between
    two distributions over age slices, and applies the KL non-negativity
    inequality (Theorem A.3).  These functions implement that machinery and
    are used by the demographics experiment (F9). *)

val entropy : float array -> float
(** Shannon entropy in nats of a probability vector (0 log 0 = 0). *)

val kl_divergence : float array -> float array -> float
(** [kl_divergence p q] = sum p_i ln (p_i / q_i).  Returns [infinity] when
    [p] puts mass where [q] has none; raises [Invalid_argument] on length
    mismatch. *)

val normalize : float array -> float array
(** Scale a non-negative vector to sum to 1.  Raises on zero or negative
    total mass. *)

val of_counts : int array -> float array
(** Empirical distribution from counts. *)

val cross_entropy : float array -> float array -> float
(** [cross_entropy p q] = - sum p_i ln q_i. *)

val total_variation : float array -> float array -> float
(** Total variation distance, (1/2) * L1. *)
