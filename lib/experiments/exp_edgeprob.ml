(* F8: edge destination probabilities (Lemmas 3.14 and 4.15). *)

open Churnet_core
module Table = Churnet_util.Table

let f8 ~seed ~scale =
  let n = Scale.pick scale ~smoke:300 ~standard:800 ~full:2000 in
  let snapshots = Scale.pick scale ~smoke:8 ~standard:30 ~full:80 in
  let buckets = 4 in
  (* The two measurements are independent (each owns its PRNG), so they
     are a two-unit parallel fan-out — and thereby two checkpointable
     work units for crash/resume. *)
  let measurements =
    Churnet_util.Parallel.map
      (fun which ->
        match which with
        | `Sdgr ->
            Edge_prob.measure_streaming ~rng:(Churnet_util.Prng.create seed) ~n ~d:6
              ~regenerate:true ~snapshots ~buckets ()
        | `Pdgr ->
            Edge_prob.measure_poisson ~rng:(Churnet_util.Prng.create (seed + 1)) ~n
              ~d:6 ~regenerate:true ~snapshots:(max 3 (snapshots / 4)) ~buckets ())
      [| `Sdgr; `Pdgr |]
  in
  let sdgr = measurements.(0) in
  let pdgr = measurements.(1) in
  let table_of name (bs : Edge_prob.bucket array) =
    let t =
      Table.create
        [ name ^ " ages"; "p_older measured"; "p_older predicted"; "p_younger"; "bound"; "samples" ]
    in
    Array.iter
      (fun (b : Edge_prob.bucket) ->
        Table.add_row t
          [
            Printf.sprintf "[%d, %d]" b.age_lo b.age_hi;
            Table.fmt_sci b.p_older;
            Table.fmt_sci b.predicted_older;
            Table.fmt_sci b.p_younger;
            Table.fmt_sci b.bound_younger;
            string_of_int b.samples;
          ])
      bs;
    t
  in
  let populated =
    Array.to_list sdgr |> List.filter (fun (b : Edge_prob.bucket) -> b.samples > 300)
  in
  let ratios =
    List.map (fun (b : Edge_prob.bucket) -> b.p_older /. b.predicted_older) populated
  in
  let within_band = List.for_all (fun r -> r > 0.6 && r < 1.4) ratios in
  let monotone =
    match populated with
    | first :: _ :: _ ->
        let last = List.nth populated (List.length populated - 1) in
        last.p_older >= first.p_older
    | _ -> false
  in
  let younger_ok =
    List.for_all
      (fun (b : Edge_prob.bucket) ->
        Float.is_nan b.p_younger || b.p_younger <= b.bound_younger *. 1.25)
      populated
  in
  Report.make ~id:"F8" ~title:"Edge-destination probabilities (Lemmas 3.14 / 4.15)"
    ~tables:[ table_of "SDGR" sdgr; table_of "PDGR" pdgr ]
    [
      Report.check
        ~claim:"SDGR: a request of an age-(k+1) node targets a fixed older node with prob (1/(n-1))(1+1/(n-1))^k"
        ~expected:"measured/predicted within [0.6, 1.4] in every populated bucket"
        ~measured:
          (String.concat ", " (List.map (fun r -> Printf.sprintf "%.2f" r) ratios))
        ~holds:within_band;
      Report.check ~claim:"the older-target probability grows with the chooser's age"
        ~expected:"p_older monotone over age buckets"
        ~measured:(if monotone then "monotone" else "not monotone")
        ~holds:monotone;
      Report.check ~claim:"younger targets are hit with probability <= 1/(n-1)"
        ~expected:"measured p_younger below the bound"
        ~measured:(if younger_ok then "all buckets below bound" else "bound violated")
        ~holds:younger_ok;
    ]
