(** Per-experiment telemetry: wall-clock time and GC deltas captured
    around one experiment run, plus the run configuration (seed, scale,
    domain count) so a serialized report is self-describing.  This is
    what turns a report into a point on the perf trajectory — the
    BENCH_*.json files diffable across commits. *)

type t = {
  wall_seconds : float;  (** elapsed wall-clock time *)
  minor_words : float;  (** [Gc.quick_stat] delta *)
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  domains : int;  (** worker domains the run was configured with *)
  seed : int;
  scale : Scale.t;
}

val measure :
  seed:int -> scale:Scale.t -> ?domains:int -> (unit -> 'a) -> 'a * t
(** [measure ~seed ~scale f] runs [f ()] and returns its result together
    with the wall-clock/GC telemetry of the call.  [?domains] defaults
    to [Churnet_util.Parallel.domains_from_env ()].  GC counters come
    from the calling domain's [Gc.quick_stat], so allocation performed
    by worker domains is attributed approximately under parallelism. *)

val to_json : t -> Churnet_util.Json.t
(** Flat object: wall_seconds, minor/promoted/major words, collection
    counts, domains, seed and scale (as a string). *)
