(** Per-experiment telemetry: wall-clock time and GC deltas captured
    around one experiment run, plus the run configuration (seed, scale,
    domain count) so a serialized report is self-describing.  This is
    what turns a report into a point on the perf trajectory — the
    BENCH_*.json files diffable across commits. *)

type ckpt = {
  units_stored : int;  (** work units journaled during the run *)
  units_restored : int;  (** units served from the journal (resume hits) *)
  writes : int;  (** journal file writes *)
  write_seconds : float;  (** wall-clock time spent writing the journal *)
}

type t = {
  wall_seconds : float;  (** elapsed wall-clock time *)
  minor_words : float;  (** [Gc.quick_stat] delta *)
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  domains : int;  (** worker domains the run was configured with *)
  seed : int;
  scale : Scale.t;
  checkpoint : ckpt option;
      (** checkpoint-journal activity during the run; [None] when no
          journal was installed *)
  peak_rss_kb : int option;
      (** the process's peak resident set (VmHWM, in kB) as of the end of
          the run; [None] where procfs is unavailable.  Process-wide and
          monotone: in a multi-cell run it carries the maximum over this
          cell {e and all predecessors}. *)
  cell_peak_rss_kb : int option;
      (** the watermark when it is honestly attributable to this cell:
          [Some] (the end-of-run VmHWM) only when the watermark rose
          during the measured call, [None] when it predates the cell (a
          predecessor's footprint) or procfs is unavailable *)
}

val now : unit -> float
(** The wall clock ([Unix.gettimeofday]).  Telemetry is the one library
    module allowed to observe wall-clock time (churnet-lint's
    no-wallclock rule); callers that need a clock — e.g. the CLI handing
    one to [Checkpoint.set_clock] — must take this one rather than
    reading the OS clock themselves. *)

val peak_rss_kb : unit -> int option
(** The process's peak resident set so far (VmHWM from
    [/proc/self/status], in kB); monotone over the process lifetime.
    [None] where procfs is unavailable.  The kernels bench reports it
    next to its timings for the XL memory envelope. *)

val measure :
  seed:int -> scale:Scale.t -> ?domains:int -> (unit -> 'a) -> 'a * t
(** [measure ~seed ~scale f] runs [f ()] and returns its result together
    with the wall-clock/GC telemetry of the call.  [?domains] defaults
    to [Churnet_util.Parallel.domains_from_env ()].  GC counters come
    from the calling domain's [Gc.quick_stat], so allocation performed
    by worker domains is attributed approximately under parallelism.
    When a {!Churnet_util.Checkpoint} journal is installed the telemetry
    also carries the journal-activity delta across the call. *)

val to_json : t -> Churnet_util.Json.t
(** Flat object: wall_seconds, minor/promoted/major words, collection
    counts, domains, seed and scale (as a string); plus "peak_rss_kb" /
    "cell_peak_rss_kb" when known and a "checkpoint" object (units
    stored/restored, writes, write_seconds) when a journal was
    active. *)
