(* E1 (Lemma 3.5), E2 (Lemma 4.10), F3 (isolated fraction vs d). *)

open Churnet_core
module Prng = Churnet_util.Prng
module Table = Churnet_util.Table

let census_for ?(watch = true) kind ~rng ~n ~d =
  match kind with
  | `SDG ->
      let m = Streaming_model.create ~rng ~n ~d ~regenerate:false () in
      Streaming_model.warm_up m;
      Isolated.census_streaming ~max_track:1000 ~watch m
  | `PDG ->
      let m = Poisson_model.create ~rng ~n ~d ~regenerate:false () in
      Poisson_model.warm_up m;
      Isolated.census_poisson ~max_track:500 ~watch m

let run_isolated ~id ~title kind ~seed ~scale =
  let n = Scale.pick scale ~smoke:800 ~standard:4000 ~full:20000 in
  let trials = Scale.pick scale ~smoke:1 ~standard:3 ~full:10 in
  let rng = Prng.create seed in
  let table =
    Table.create
      [ "d"; "population"; "isolated"; "frac"; "paper bound"; "bound/n"; "forever frac" ]
  in
  let checks = ref [] in
  List.iter
    (fun d ->
      let bound =
        match kind with
        | `SDG -> Isolated.paper_bound_sdg ~n ~d
        | `PDG -> Isolated.paper_bound_pdg ~n ~d
      in
      let isolated_total = ref 0 and pop_total = ref 0 in
      let forever_fracs = ref [] in
      let censuses =
        Churnet_util.Parallel.replicate ~rng ~trials (fun rng ->
            census_for kind ~rng ~n ~d)
      in
      Array.iter
        (fun (c : Isolated.census) ->
          isolated_total := !isolated_total + c.isolated_now;
          pop_total := !pop_total + c.population;
          if not (Float.is_nan c.forever_frac_of_tracked) then
            forever_fracs := c.forever_frac_of_tracked :: !forever_fracs)
        censuses;
      let mean_isolated = float_of_int !isolated_total /. float_of_int trials in
      let mean_pop = float_of_int !pop_total /. float_of_int trials in
      let forever =
        match !forever_fracs with
        | [] -> nan
        | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
      in
      Table.add_row table
        [
          string_of_int d;
          Table.fmt_float ~digits:0 mean_pop;
          Table.fmt_float ~digits:1 mean_isolated;
          Table.fmt_pct (mean_isolated /. mean_pop);
          Table.fmt_float ~digits:1 bound;
          Table.fmt_sci (bound /. float_of_int n);
          Table.fmt_pct forever;
        ];
      if d = 2 then begin
        checks :=
          Report.check_values
            ~claim:
              (Printf.sprintf
                 "%s snapshots contain Omega(n e^{-2d}) isolated nodes (d = %d)"
                 (match kind with `SDG -> "SDG" | `PDG -> "PDG")
                 d)
            ~expected:(Printf.sprintf ">= %.1f isolated nodes" bound)
            ~measured:(Printf.sprintf "%.1f isolated nodes on average" mean_isolated)
            ~expected_value:bound ~measured_value:mean_isolated
            ~holds:(mean_isolated >= bound)
          :: !checks;
        checks :=
          Report.check_values
            ~claim:"isolated nodes remain isolated for the rest of their lifetime"
            ~expected:"a constant fraction of them stay isolated until death"
            ~measured:(Printf.sprintf "%.1f%% of tracked isolated nodes stayed isolated" (100. *. forever))
            ~expected_value:0.25 ~measured_value:forever
            ~holds:(forever > 0.25)
          :: !checks
      end)
    [ 1; 2; 3; 4 ];
  Report.make ~id ~title ~tables:[ table ] (List.rev !checks)

let e1 ~seed ~scale =
  run_isolated ~id:"E1" ~title:"Isolated nodes in SDG (Lemma 3.5)" `SDG ~seed ~scale

let e2 ~seed ~scale =
  run_isolated ~id:"E2" ~title:"Isolated nodes in PDG (Lemma 4.10)" `PDG ~seed ~scale

(* F3: isolated fraction as a function of d, against the e^{-2d} law. *)
let f3 ~seed ~scale =
  let n = Scale.pick scale ~smoke:800 ~standard:4000 ~full:20000 in
  let ds = [ 1; 2; 3; 4; 5; 6 ] in
  let rng = Prng.create seed in
  let table = Table.create [ "d"; "SDG frac"; "PDG frac"; "(1/6)e^-2d"; "(1/18)e^-2d" ] in
  let sdg_series = ref [] and pdg_series = ref [] and law = ref [] in
  (* Pre-split in the historical order (SDG then PDG per d), then run all
     censuses in parallel. *)
  let jobs = ref [] in
  List.iter
    (fun d ->
      let r_sdg = Prng.split rng in
      let r_pdg = Prng.split rng in
      jobs := (`PDG, d, r_pdg) :: (`SDG, d, r_sdg) :: !jobs)
    ds;
  let censuses =
    Churnet_util.Parallel.map
      (fun (kind, d, rng) -> census_for ~watch:false kind ~rng ~n ~d)
      (Array.of_list (List.rev !jobs))
  in
  List.iteri
    (fun i d ->
      let c_sdg = censuses.(2 * i) in
      let c_pdg = censuses.((2 * i) + 1) in
      let b_sdg = exp (-2. *. float_of_int d) /. 6. in
      let b_pdg = exp (-2. *. float_of_int d) /. 18. in
      Table.add_row table
        [
          string_of_int d;
          Table.fmt_sci c_sdg.isolated_frac;
          Table.fmt_sci c_pdg.isolated_frac;
          Table.fmt_sci b_sdg;
          Table.fmt_sci b_pdg;
        ];
      sdg_series := (float_of_int d, c_sdg.isolated_frac) :: !sdg_series;
      pdg_series := (float_of_int d, c_pdg.isolated_frac) :: !pdg_series;
      law := (float_of_int d, b_sdg) :: !law)
    ds;
  let fig =
    Churnet_util.Asciiplot.plot ~logy:true ~title:"F3: isolated fraction vs d"
      ~xlabel:"d" ~ylabel:"isolated fraction"
      [
        { label = "SDG measured"; points = Array.of_list (List.rev !sdg_series) };
        { label = "PDG measured"; points = Array.of_list (List.rev !pdg_series) };
        { label = "(1/6) e^{-2d} bound"; points = Array.of_list (List.rev !law) };
      ]
  in
  (* The decay rate: log of the fraction should drop by ~1-2 per unit d.
     Only fit points with enough isolated nodes to be statistically
     meaningful (expected count >= 5), otherwise the tail is pure noise. *)
  let pts =
    List.rev_map (fun (dd, f) -> (dd, f)) !sdg_series
    |> List.filter (fun (_, f) -> f *. float_of_int n >= 5.)
    |> List.map (fun (dd, f) -> (dd, log f))
    |> Array.of_list
  in
  let fit = Churnet_util.Stats.linear_fit pts in
  Report.make ~id:"F3" ~title:"Isolated fraction decays exponentially in d"
    ~tables:[ table ] ~figures:[ fig ]
    [
      Report.check ~claim:"isolated fraction decays as e^{-Theta(d)}"
        ~expected:"log-fraction slope vs d clearly negative (between -3 and -0.7)"
        ~measured:(Printf.sprintf "slope %.2f (R2 %.3f) over %d points" fit.slope fit.r2 (Array.length pts))
        ~holds:(fit.slope < -0.7 && fit.slope > -3.0);
      Report.check ~claim:"measured fraction dominates the paper's lower bound"
        ~expected:"SDG fraction >= (1/6) e^{-2d} for every d"
        ~measured:"see table"
        ~holds:
          (List.for_all2
             (fun (_, f) (_, b) -> f >= b || f = 0.)
             (List.rev !sdg_series) (List.rev !law));
    ]
