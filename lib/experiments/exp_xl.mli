(** E13: the XL tier — the PDG at populations up to 10⁶ under live churn,
    exercised through the batched churn path
    ([Poisson_model.warm_up_batched]) and measured through
    [Churnet_graph.Stream_stats] so no CSR snapshot is ever built.
    Re-checks Lemma 4.4 (stationary band), Lemma 4.10 (isolated nodes)
    and Theorems 4.12/4.13 (fast partial coverage) at scale. *)

val e13 : seed:int -> scale:Scale.t -> Report.t
