(** Numeric verification of the paper's calculus claims (T1).
    Each entry point matches the {!Registry} run signature: it consumes a
    seed and a scale and returns the experiment's {!Report.t}. *)

val t1 : seed:int -> scale:Scale.t -> Report.t
