(* F5: the onion-skin process (Section 3.1.2, Claim 3.10, Lemma 3.9). *)

open Churnet_core
module Prng = Churnet_util.Prng
module Table = Churnet_util.Table
module Stats = Churnet_util.Stats

let f5 ~seed ~scale =
  let n = Scale.pick scale ~smoke:2000 ~standard:20000 ~full:100000 in
  let trials = Scale.pick scale ~smoke:5 ~standard:30 ~full:100 in
  let rng = Prng.create seed in
  let ds = [ 40; 60; 100; 200 ] in
  let table =
    Table.create
      [ "d"; "success frac"; "paper bound 1-4e^{-d/100}"; "mean phases"; "mean early growth"; "d/20" ]
  in
  let checks = ref [] in
  List.iter
    (fun d ->
      let successes = ref 0 in
      let phases_acc = Stats.Acc.create () in
      let growth_acc = Stats.Acc.create () in
      for _ = 1 to trials do
        let r = Onion.run ~rng:(Prng.split rng) ~n ~d () in
        if r.reached_target then incr successes;
        Stats.Acc.add_int phases_acc r.phases;
        (* Early growth factors, before saturation. *)
        Array.iteri
          (fun i g ->
            if i < 2 && not (Float.is_nan g) then Stats.Acc.add growth_acc g)
          r.growth_factors
      done;
      let frac = float_of_int !successes /. float_of_int trials in
      let bound = Float.max 0. (1. -. (4. *. exp (-.(float_of_int d /. 100.)))) in
      Table.add_row table
        [
          string_of_int d;
          Table.fmt_pct frac;
          Table.fmt_pct bound;
          Table.fmt_float ~digits:1 (Stats.Acc.mean phases_acc);
          Table.fmt_float ~digits:2 (Stats.Acc.mean growth_acc);
          Table.fmt_float ~digits:2 (float_of_int d /. 20.);
        ];
      if d = 200 then
        checks :=
          Report.check
            ~claim:"onion-skin succeeds with probability >= 1 - 4 e^{-d/100} (Lemma 3.9, d >= 200)"
            ~expected:(Printf.sprintf ">= %.1f%%" (100. *. bound))
            ~measured:(Printf.sprintf "%.1f%% over %d trials" (100. *. frac) trials)
            ~holds:(frac >= bound)
          :: !checks;
      if d = 100 then
        checks :=
          Report.check
            ~claim:"layers grow multiplicatively ~ d/20 per step while small (Claim 3.10)"
            ~expected:(Printf.sprintf "early growth factor >= 1 and of order d/20 = %.1f" (float_of_int d /. 20.))
            ~measured:(Printf.sprintf "mean early growth %.2f" (Stats.Acc.mean growth_acc))
            ~holds:(Stats.Acc.mean growth_acc > 1.5)
          :: !checks)
    ds;
  (* Extended (Poisson) onion-skin of Section 7.2.4, with death coins. *)
  let poisson_table =
    Table.create [ "d"; "success frac (Poisson)"; "Thm 4.13 bound 1-2e^{-d/576}" ]
  in
  List.iter
    (fun d ->
      let frac =
        Onion.success_probability_poisson ~rng:(Prng.split rng) ~n ~d
          ~trials:(max 5 (trials / 2)) ()
      in
      let bound = Float.max 0. (1. -. (2. *. exp (-.(float_of_int d /. 576.)))) in
      Table.add_row poisson_table
        [ string_of_int d; Table.fmt_pct frac; Table.fmt_pct bound ];
      if d = 100 then
        checks :=
          Report.check
            ~claim:"the extended onion-skin (Section 7.2.4, with death coins) also reaches m/20 nodes"
            ~expected:"high success probability (the Thm 4.13 bound is vacuous below d ~ 400)"
            ~measured:(Printf.sprintf "%.0f%% at d = %d" (100. *. frac) d)
            ~holds:(frac >= 0.8)
          :: !checks)
    [ 40; 100 ];
  (* One detailed realization: layer sizes per phase. *)
  let detail = Onion.run ~rng:(Prng.split rng) ~n ~d:100 () in
  let layer_table = Table.create [ "phase"; "|Y_k - Y_{k-1}|"; "|O_k - O_{k-1}|" ] in
  let phases = max (Array.length detail.y_layer_sizes) (Array.length detail.o_layer_sizes) in
  for k = 0 to phases - 1 do
    let y = if k < Array.length detail.y_layer_sizes then string_of_int detail.y_layer_sizes.(k) else "-" in
    let o = if k < Array.length detail.o_layer_sizes then string_of_int detail.o_layer_sizes.(k) else "-" in
    Table.add_row layer_table [ string_of_int k; y; o ]
  done;
  Report.make ~id:"F5" ~title:"Onion-skin layer growth (Sections 3.1.2 and 7.2.4)"
    ~tables:[ table; poisson_table; layer_table ]
    (List.rev !checks)
