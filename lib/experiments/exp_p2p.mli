(** PDGR vs P2P protocol baselines (F10).
    Each entry point matches the {!Registry} run signature: it consumes a
    seed and a scale and returns the experiment's {!Report.t}. *)

val f10 : seed:int -> scale:Scale.t -> Report.t
