(** Lambda-normalization invariance (S1).
    Each entry point matches the {!Registry} run signature: it consumes a
    seed and a scale and returns the experiment's {!Report.t}. *)

val s1 : seed:int -> scale:Scale.t -> Report.t
