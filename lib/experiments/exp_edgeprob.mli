(** Edge-destination probabilities (F8).
    Each entry point matches the {!Registry} run signature: it consumes a
    seed and a scale and returns the experiment's {!Report.t}. *)

val f8 : seed:int -> scale:Scale.t -> Report.t
