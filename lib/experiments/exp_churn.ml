(* E12: churn-process lemmas (4.4, 4.6-4.8) and F9 (age demographics /
   KL divergence, the Section 4.3.1 machinery). *)

open Churnet_core
module Prng = Churnet_util.Prng
module Table = Churnet_util.Table
module Population = Churnet_churn.Population
module Kl = Churnet_util.Kl

let e12 ~seed ~scale =
  let n = Scale.pick scale ~smoke:500 ~standard:4000 ~full:20000 in
  let rounds = Scale.pick scale ~smoke:(10 * 500) ~standard:(25 * 4000) ~full:(25 * 20000) in
  let stats = Population.simulate ~rng:(Prng.create seed) ~n ~rounds () in
  let table = Table.create [ "quantity"; "paper"; "measured" ] in
  let fn = float_of_int n in
  Table.add_row table
    [ "E[|N_t|]"; Printf.sprintf "n = %d" n; Table.fmt_float ~digits:1 stats.pop_mean ];
  Table.add_row table
    [
      "Pr(0.9n <= |N_t| <= 1.1n)";
      ">= 1 - 2 e^{-sqrt n} (Lemma 4.4)";
      Table.fmt_pct stats.frac_in_09_11;
    ];
  Table.add_row table
    [
      "death fraction of jumps";
      "in [0.47, 0.53] (Lemma 4.7)";
      Table.fmt_pct stats.death_frac;
    ];
  Table.add_row table
    [
      "max node age (jumps)";
      Printf.sprintf "<= 7 n ln n = %.0f (Lemma 4.8)" (7. *. fn *. log fn);
      string_of_int stats.max_age_rounds;
    ];
  Table.add_row table
    [
      "mean lifetime (continuous)";
      Printf.sprintf "1/mu = %d" n;
      Table.fmt_float ~digits:1 stats.lifetime_mean;
    ];
  Report.make ~id:"E12" ~title:"Poisson churn statistics (Lemmas 4.4, 4.6-4.8)"
    ~tables:[ table ]
    [
      Report.check ~claim:"|N_t| concentrates in [0.9 n, 1.1 n]"
        ~expected:"fraction of jumps in band close to 1"
        ~measured:(Table.fmt_pct stats.frac_in_09_11)
        ~holds:(stats.frac_in_09_11 > 0.9);
      Report.check ~claim:"next jump is a death with probability in [0.47, 0.53]"
        ~expected:"[0.47, 0.53]"
        ~measured:(Table.fmt_pct stats.death_frac)
        ~holds:(stats.death_frac > 0.45 && stats.death_frac < 0.55);
      Report.check ~claim:"no node survives 7 n ln n jumps"
        ~expected:(Printf.sprintf "max age < %.0f" (7. *. fn *. log fn))
        ~measured:(string_of_int stats.max_age_rounds)
        ~holds:(float_of_int stats.max_age_rounds < 7. *. fn *. log fn);
      Report.check ~claim:"mean lifetime is 1/mu = n time units"
        ~expected:(string_of_int n)
        ~measured:(Table.fmt_float ~digits:1 stats.lifetime_mean)
        ~holds:(Float.abs (stats.lifetime_mean -. fn) /. fn < 0.25);
    ]

(* F9: snapshot age demographics vs the model's prediction, via the KL
   divergence machinery of Section 4.3.1.

   Streaming: ages are exactly uniform on {0, ..., n-1}.
   Poisson: the age (in jumps) of an alive node is geometric-like with
   per-jump survival ~ (1 - 1/(2n)); bucketed into L slices of width n,
   slice m carries mass ~ e^{-m/2} (1 - e^{-1/2}) — the paper's
   K_1, ..., K_L profile. *)

let f9 ~seed ~scale =
  let n = Scale.pick scale ~smoke:500 ~standard:3000 ~full:10000 in
  let rng = Prng.create seed in
  let buckets = 10 in
  let slices = 8 in
  (* The streaming and Poisson halves are independent; pre-split their
     rngs in the historical order and run both in parallel. *)
  let stream_rng = Prng.split rng in
  let poisson_rng = Prng.split rng in
  let stream_job () =
    let sm = Streaming_model.create ~rng:stream_rng ~n ~d:4 ~regenerate:false () in
    Streaming_model.warm_up sm;
    let stream_counts = Array.make buckets 0 in
    Churnet_graph.Dyngraph.iter_alive (Streaming_model.graph sm) (fun id ->
        let age = Streaming_model.age_of sm id in
        let b = min (buckets - 1) (age * buckets / n) in
        stream_counts.(b) <- stream_counts.(b) + 1);
    stream_counts
  in
  let poisson_job () =
    (* Poisson demographics: slices of n jumps (the paper's K_m). *)
    let pm = Poisson_model.create ~rng:poisson_rng ~n ~d:4 ~regenerate:false () in
    Poisson_model.warm_up pm;
    (* extra mixing so the geometric tail is populated *)
    Poisson_model.run_rounds_batched pm (6 * n);
    let poisson_counts = Array.make slices 0 in
    let now = Poisson_model.round pm in
    Churnet_graph.Dyngraph.iter_alive (Poisson_model.graph pm) (fun id ->
        let age = now - Churnet_graph.Dyngraph.birth_of (Poisson_model.graph pm) id in
        let b = min (slices - 1) (age / n) in
        poisson_counts.(b) <- poisson_counts.(b) + 1);
    poisson_counts
  in
  let counts = Churnet_util.Parallel.map (fun job -> job ()) [| stream_job; poisson_job |] in
  let stream_counts = counts.(0) and poisson_counts = counts.(1) in
  let stream_emp = Kl.of_counts stream_counts in
  let stream_model = Array.make buckets (1. /. float_of_int buckets) in
  let stream_kl = Kl.kl_divergence stream_emp stream_model in
  let poisson_emp = Kl.of_counts poisson_counts in
  (* Slice m (width n jumps) survives with probability ~ e^{-m/2}: the
     per-jump death hazard of a given node is ~ 1/(2n) (Lemma 4.7). *)
  let poisson_model_dist =
    Kl.normalize
      (Array.init slices (fun m -> exp (-.(float_of_int m /. 2.))))
  in
  let poisson_kl = Kl.kl_divergence poisson_emp poisson_model_dist in
  let table = Table.create [ "model"; "buckets"; "KL(empirical || predicted)"; "TV distance" ] in
  Table.add_row table
    [
      "streaming (uniform ages)";
      string_of_int buckets;
      Table.fmt_float stream_kl;
      Table.fmt_float (Kl.total_variation stream_emp stream_model);
    ];
  Table.add_row table
    [
      "Poisson (geometric slices)";
      string_of_int slices;
      Table.fmt_float poisson_kl;
      Table.fmt_float (Kl.total_variation poisson_emp poisson_model_dist);
    ];
  let demo_table = Table.create [ "slice"; "poisson empirical"; "poisson predicted" ] in
  Array.iteri
    (fun m p ->
      Table.add_row demo_table
        [
          Printf.sprintf "age in [%d n, %d n)" m (m + 1);
          Table.fmt_float p;
          Table.fmt_float poisson_model_dist.(m);
        ])
    poisson_emp;
  Report.make ~id:"F9"
    ~title:"Age demographics match the model (KL machinery of Section 4.3.1)"
    ~tables:[ table; demo_table ]
    [
      Report.check ~claim:"streaming ages are uniform"
        ~expected:"KL(empirical || uniform) ~ 0"
        ~measured:(Table.fmt_float stream_kl)
        ~holds:(stream_kl < 0.01);
      Report.check ~claim:"Poisson age slices decay like e^{-m/2} (the K_m profile)"
        ~expected:"KL(empirical || geometric slices) small"
        ~measured:(Table.fmt_float poisson_kl)
        ~holds:(poisson_kl < 0.1);
    ]
