(** The experiment registry: one entry per Table 1 cell (E1-E12), per
    derived figure (F1-F11), per extension/ablation study (X1-X3, A1),
    and the numeric theory checks (T1).  See DESIGN.md for the full
    index. *)

type entry = {
  id : string;
  title : string;
  group : string;  (** "table1", "figures", "extensions" or "theory" *)
  run : seed:int -> scale:Scale.t -> Report.t;
}

val all : entry list
val find : string -> entry option
(** Case-insensitive lookup by id. *)

val table1 : entry list
val figures : entry list
val extensions : entry list
val theory : entry list

val run_cell : id:string -> seed:int -> scale:Scale.t -> Report.t
(** Run one cell by id (case-insensitive) with explicit parameter
    overrides — the sweep planner invokes every cell with its own seed
    and scale from the grid config rather than one baked-in CLI pair.
    Raises [Invalid_argument] naming the valid ids on an unknown id. *)

val run_all :
  ?ids:string list -> seed:int -> scale:Scale.t -> unit -> Report.t list
(** Run the selected experiments (default: all) and return their reports
    in registry order.  Ids are matched case-insensitively; raises
    [Invalid_argument] naming every unknown id (and the valid ones)
    instead of silently dropping it. *)

val run_timed :
  ?ids:string list ->
  seed:int ->
  scale:Scale.t ->
  unit ->
  (Report.t * Telemetry.t) list
(** Like {!run_all} but wraps each experiment in
    {!Telemetry.measure}, pairing every report with its wall-clock and
    GC telemetry.  Same id validation. *)

val summary : Report.t list -> Churnet_util.Table.t
(** Build the final roll-up table of check outcomes. *)

val reports_to_json :
  seed:int ->
  scale:Scale.t ->
  domains:int ->
  (Report.t * Telemetry.t) list ->
  Churnet_util.Json.t
(** The envelope the CLI writes for [--json]: schema tag
    ["churnet-report/1"], run configuration, and one
    {!Report.to_json} (with telemetry) per report. *)
