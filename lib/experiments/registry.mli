(** The experiment registry: one entry per Table 1 cell (E1-E12), per
    derived figure (F1-F11), per extension/ablation study (X1-X3, A1),
    and the numeric theory checks (T1).  See DESIGN.md for the full
    index. *)

type entry = {
  id : string;
  title : string;
  group : string;  (** "table1", "figures", "extensions" or "theory" *)
  run : seed:int -> scale:Scale.t -> Report.t;
}

val all : entry list
val find : string -> entry option
(** Case-insensitive lookup by id. *)

val table1 : entry list
val figures : entry list
val extensions : entry list
val theory : entry list

val run_all :
  ?ids:string list -> seed:int -> scale:Scale.t -> unit -> Report.t list
(** Run the selected experiments (default: all) and return their reports
    in registry order. *)

val summary : Report.t list -> Churnet_util.Table.t
(** Build the final roll-up table of check outcomes. *)
