(* Extension experiments beyond the paper's stated results:

   X1 — bounded-degree dynamics (the Section 5 open question): expansion
        and flooding of PDGR with an in-degree cap, as the cap approaches d.
   X2 — gossip (push / pull / push-pull) instead of flooding: the Table 1
        dichotomy under a one-contact-per-round primitive.
   X3 — adversarial burst churn on SDGR: how much oblivious batch churn
        the O(log n) flooding tolerates (related work [2, 4]).
   A1 — ablation of the instant-regeneration rule: repairs batched every
        `period` time units interpolate between PDGR and PDG. *)

open Churnet_core
module Prng = Churnet_util.Prng
module Table = Churnet_util.Table
module Stats = Churnet_util.Stats
module Probe = Churnet_expansion.Probe
module Snapshot = Churnet_graph.Snapshot

(* --- X1: in-degree caps --- *)

let x1 ~seed ~scale =
  let n = Scale.pick scale ~smoke:400 ~standard:2000 ~full:6000 in
  let trials = Scale.pick scale ~smoke:2 ~standard:4 ~full:10 in
  let d = 8 in
  let rng = Prng.create seed in
  let caps = [ d + 1; 2 * d; 4 * d; max_int ] in
  let cap_name c = if c = max_int then "inf (PDGR)" else string_of_int c in
  let table =
    Table.create
      [ "cap"; "max in-deg"; "mean out-deg"; "parked slots"; "min expansion"; "flood rounds"; "flood coverage" ]
  in
  let results = ref [] in
  List.iter
    (fun cap ->
      let mk rng =
        let m = Capped_model.create ~rng ~n ~d ~cap () in
        Capped_model.warm_up m;
        m
      in
      let m = mk (Prng.split rng) in
      let snap = Capped_model.snapshot m in
      let probe = Probe.probe ~rng:(Prng.split rng) snap in
      let rounds_acc = Stats.Acc.create () and cov_acc = Stats.Acc.create () in
      let traces =
        Churnet_util.Parallel.replicate ~rng ~trials (fun rng ->
            Capped_model.flood (mk rng))
      in
      Array.iter
        (fun tr ->
          (match tr.Flood.completion_round with
          | Some r -> Stats.Acc.add_int rounds_acc r
          | None -> ());
          Stats.Acc.add cov_acc tr.Flood.peak_coverage)
        traces;
      Table.add_row table
        [
          cap_name cap;
          string_of_int (Capped_model.max_in_degree m);
          Table.fmt_float ~digits:2 (Capped_model.mean_out_degree m);
          string_of_int (Capped_model.parked_slots m);
          Table.fmt_float ~digits:3 probe.min_expansion;
          Table.fmt_float ~digits:1 (Stats.Acc.mean rounds_acc);
          Table.fmt_pct (Stats.Acc.mean cov_acc);
        ];
      results := (cap, (probe.min_expansion, Stats.Acc.mean cov_acc, Capped_model.max_in_degree m)) :: !results)
    caps;
  let exp_of c = let e, _, _ = List.assoc c !results in e in
  let cov_of c = let _, cv, _ = List.assoc c !results in cv in
  let maxin_of c = let _, _, mi = List.assoc c !results in mi in
  Report.make ~id:"X1"
    ~title:"Bounded-degree dynamics keep expanding (Section 5 open question)"
    ~tables:[ table ]
    [
      Report.check
        ~claim:"an in-degree cap of 2d preserves expansion and fast flooding"
        ~expected:"min expansion > 0 and coverage ~ 1 at cap = 2d"
        ~measured:
          (Printf.sprintf "cap 2d: expansion %.3f, coverage %.1f%%, max in-deg %d"
             (exp_of (2 * d)) (100. *. cov_of (2 * d)) (maxin_of (2 * d)))
        ~holds:(exp_of (2 * d) > 0.05 && cov_of (2 * d) > 0.95);
      Report.check ~claim:"the cap truly bounds the degree (vs Theta(log n) uncapped)"
        ~expected:(Printf.sprintf "max in-degree = %d at cap %d, larger without cap" (2 * d) (2 * d))
        ~measured:
          (Printf.sprintf "capped: %d, uncapped: %d" (maxin_of (2 * d)) (maxin_of max_int))
        ~holds:(maxin_of (2 * d) <= 2 * d && maxin_of max_int > 2 * d);
    ]

(* --- X2: gossip --- *)

let x2 ~seed ~scale =
  let n = Scale.pick scale ~smoke:300 ~standard:2000 ~full:6000 in
  let trials = Scale.pick scale ~smoke:2 ~standard:4 ~full:10 in
  let rng = Prng.create seed in
  let table =
    Table.create
      [ "model"; "strategy"; "completed"; "mean rounds"; "mean coverage"; "messages/node/round" ]
  in
  let interesting = ref [] in
  List.iter
    (fun (kind, d) ->
      List.iter
        (fun strategy ->
          let rounds_acc = Stats.Acc.create () and cov_acc = Stats.Acc.create () in
          let msg_acc = Stats.Acc.create () in
          let completed = ref 0 in
          let traces =
            Churnet_util.Parallel.replicate ~rng ~trials (fun rng ->
                (* Separate streams for the model and the protocol, split
                   before the model consumes anything, so each trial's
                   gossip choices are independent of its churn draws. *)
                let grng = Prng.split rng in
                let m = Models.create ~rng kind ~n ~d in
                Models.warm_up_batch m;
                Gossip.run ~rng:grng ~strategy m)
          in
          Array.iter
            (fun (tr : Gossip.trace) ->
              if tr.completed then begin
                incr completed;
                match tr.completion_round with
                | Some r -> Stats.Acc.add_int rounds_acc r
                | None -> ()
              end;
              Stats.Acc.add cov_acc tr.peak_coverage;
              if tr.rounds > 0 then
                Stats.Acc.add msg_acc
                  (float_of_int tr.messages_sent /. float_of_int (tr.rounds * n)))
            traces;
          Table.add_row table
            [
              Models.kind_name kind;
              Gossip.strategy_name strategy;
              Printf.sprintf "%d/%d" !completed trials;
              Table.fmt_float ~digits:1 (Stats.Acc.mean rounds_acc);
              Table.fmt_pct (Stats.Acc.mean cov_acc);
              Table.fmt_float ~digits:2 (Stats.Acc.mean msg_acc);
            ];
          interesting :=
            ((kind, strategy), (float_of_int !completed /. float_of_int trials,
                                Stats.Acc.mean cov_acc, Stats.Acc.mean rounds_acc))
            :: !interesting)
        [ Gossip.Push; Gossip.Pull; Gossip.Push_pull ])
    [ (Models.SDGR, 8); (Models.PDGR, 8); (Models.SDG, 8) ];
  let get k = List.assoc k !interesting in
  let pp_completed, _, pp_rounds = get (Models.SDGR, Gossip.Push_pull) in
  let _, sdg_cov, _ = get (Models.SDG, Gossip.Push_pull) in
  Report.make ~id:"X2" ~title:"Gossip (one contact per round) preserves the Table 1 dichotomy"
    ~tables:[ table ]
    [
      Report.check ~claim:"push-pull gossip completes on SDGR in O(log n) rounds"
        ~expected:"all trials complete within ~ c log n rounds"
        ~measured:(Printf.sprintf "%.0f%% completed, mean %.1f rounds" (100. *. pp_completed) pp_rounds)
        ~holds:(pp_completed >= 0.99 && pp_rounds < (6. *. log (float_of_int n)) +. 15.);
      Report.check ~claim:"gossip still reaches most of SDG but cannot complete (isolated nodes)"
        ~expected:"high coverage, no completion requirement"
        ~measured:(Printf.sprintf "SDG push-pull coverage %.1f%%" (100. *. sdg_cov))
        ~holds:(sdg_cov > 0.7);
    ]

(* --- X3: adversarial burst churn --- *)

let x3 ~seed ~scale =
  let n = Scale.pick scale ~smoke:400 ~standard:2000 ~full:8000 in
  let trials = Scale.pick scale ~smoke:2 ~standard:5 ~full:12 in
  let d = 12 in
  let burst_every = 4 in
  let rng = Prng.create seed in
  let burst_sizes = [ 0; n / 100; n / 20; n / 5 ] in
  let table =
    Table.create
      [ "burst size (every 4 rounds)"; "completed"; "mean rounds"; "mean coverage" ]
  in
  let rows = ref [] in
  List.iter
    (fun burst_size ->
      let completed = ref 0 in
      let rounds_acc = Stats.Acc.create () and cov_acc = Stats.Acc.create () in
      let traces =
        Churnet_util.Parallel.replicate ~rng ~trials (fun rng ->
            let m = Burst_model.create ~rng ~n ~d ~burst_every ~burst_size () in
            Burst_model.warm_up m;
            Burst_model.flood
              ~max_rounds:(int_of_float (20. *. log (float_of_int n)) + 40) m)
      in
      Array.iter
        (fun tr ->
          if tr.Flood.completed then begin
            incr completed;
            match tr.Flood.completion_round with
            | Some r -> Stats.Acc.add_int rounds_acc r
            | None -> ()
          end;
          Stats.Acc.add cov_acc tr.Flood.peak_coverage)
        traces;
      Table.add_row table
        [
          string_of_int burst_size;
          Printf.sprintf "%d/%d" !completed trials;
          Table.fmt_float ~digits:1 (Stats.Acc.mean rounds_acc);
          Table.fmt_pct (Stats.Acc.mean cov_acc);
        ];
      rows := (burst_size, (float_of_int !completed /. float_of_int trials, Stats.Acc.mean cov_acc)) :: !rows)
    burst_sizes;
  let frac_of b = fst (List.assoc b !rows) in
  let cov_of b = snd (List.assoc b !rows) in
  Report.make ~id:"X3"
    ~title:"SDGR flooding under oblivious burst churn (related work [2,4] regime)"
    ~tables:[ table ]
    [
      Report.check ~claim:"moderate bursts (n/100 nodes every 4 rounds) do not break flooding"
        ~expected:"completion rate and coverage stay near the burst-free level"
        ~measured:
          (Printf.sprintf "no burst: %.0f%% / burst n/100: %.0f%% completed"
             (100. *. frac_of 0) (100. *. frac_of (n / 100)))
        ~holds:(frac_of (n / 100) >= frac_of 0 -. 0.21);
      Report.check ~claim:"even n/5-node bursts keep coverage high (regeneration heals the cuts)"
        ~expected:"coverage > 90% at burst size n/5"
        ~measured:(Table.fmt_pct (cov_of (n / 5)))
        ~holds:(cov_of (n / 5) > 0.9);
    ]

(* --- A1: regeneration latency ablation --- *)

let a1 ~seed ~scale =
  let n = Scale.pick scale ~smoke:400 ~standard:2000 ~full:6000 in
  let trials = Scale.pick scale ~smoke:2 ~standard:4 ~full:10 in
  let d = 4 in
  let rng = Prng.create seed in
  let periods = [ 0.25; 1.0; 5.0; 25.0; 100.0 ] in
  let table =
    Table.create
      [ "repair period"; "broken slots"; "isolated"; "min expansion"; "flood coverage"; "completed" ]
  in
  let rows = ref [] in
  List.iter
    (fun period ->
      let m = Lazy_regen_model.create ~rng:(Prng.split rng) ~n ~d ~period () in
      Lazy_regen_model.warm_up m;
      let snap = Lazy_regen_model.snapshot m in
      let probe = Probe.probe ~rng:(Prng.split rng) snap in
      let isolated = List.length (Snapshot.isolated snap) in
      (* Broken-slot counts oscillate with the repair phase; average over a
         few instants spread across repair periods. *)
      let broken =
        let acc = ref 0 in
        for _ = 1 to 8 do
          Lazy_regen_model.advance_time m (period /. 3.);
          acc := !acc + Lazy_regen_model.broken_slots m
        done;
        !acc / 8
      in
      let completed = ref 0 in
      let cov_acc = Stats.Acc.create () in
      let traces =
        Churnet_util.Parallel.replicate ~rng ~trials (fun rng ->
            let fm = Lazy_regen_model.create ~rng ~n ~d ~period () in
            Lazy_regen_model.warm_up fm;
            Lazy_regen_model.flood fm)
      in
      Array.iter
        (fun tr ->
          if tr.Flood.completed then incr completed;
          Stats.Acc.add cov_acc tr.Flood.peak_coverage)
        traces;
      Table.add_row table
        [
          Table.fmt_float ~digits:2 period;
          string_of_int broken;
          string_of_int isolated;
          Table.fmt_float ~digits:3 probe.min_expansion;
          Table.fmt_pct (Stats.Acc.mean cov_acc);
          Printf.sprintf "%d/%d" !completed trials;
        ];
      rows := (period, (probe.min_expansion, Stats.Acc.mean cov_acc, broken)) :: !rows)
    periods;
  let exp_of p = let e, _, _ = List.assoc p !rows in e in
  let broken_of p = let _, _, b = List.assoc p !rows in b in
  Report.make ~id:"A1"
    ~title:"Ablation: how fast must edge regeneration be? (instant vs batched repair)"
    ~tables:[ table ]
    [
      Report.check
        ~claim:"repairing once per expected message delay (period ~ 1) already preserves expansion"
        ~expected:"min expansion > 0 at period 1.0"
        ~measured:(Printf.sprintf "expansion %.3f at period 1.0" (exp_of 1.0))
        ~holds:(exp_of 1.0 > 0.03);
      Report.check
        ~claim:"slower repair degrades the graph towards PDG (more broken slots)"
        ~expected:"time-averaged broken slots increase with the repair period"
        ~measured:
          (Printf.sprintf "period 0.25: %d, period 100: %d broken slots" (broken_of 0.25)
             (broken_of 100.0))
        ~holds:(broken_of 100.0 > broken_of 0.25);
    ]
