(* E13: the XL tier — the PDG at populations approaching the paper's
   motivating systems (Section 1.1's Bitcoin unreachable-node network).
   One cell, three claims re-checked at n up to 10^6 under live churn:
   the stationary-population band of Lemma 4.4, the Omega(n e^{-2d})
   isolated nodes of Lemma 4.10, and the fast partial coverage of
   Theorems 4.12/4.13.  Runs the batched churn path end to end and reads
   every statistic through [Stream_stats], so the cell never materializes
   a CSR snapshot — the point of the tier is that peak memory stays at
   the arena itself. *)

open Churnet_core
module Prng = Churnet_util.Prng
module Table = Churnet_util.Table
module Stream_stats = Churnet_graph.Stream_stats

let e13 ~seed ~scale =
  let n =
    Scale.pick scale ~smoke:10_000 ~standard:100_000 ~full:300_000 ~xl:1_000_000
  in
  let d = 2 in
  let trials = 2 in
  let budget = int_of_float (6. *. log (float_of_int n)) + 20 in
  let rng = Prng.create seed in
  let results =
    Churnet_util.Parallel.replicate ~rng ~trials (fun rng ->
        let m = Poisson_model.create ~rng ~n ~d ~regenerate:false () in
        Poisson_model.warm_up_batched m;
        let stats = Stream_stats.collect (Poisson_model.graph m) in
        let tr = Flood.run_poisson_discretized ~max_rounds:budget m in
        ( stats.Stream_stats.population,
          stats.Stream_stats.isolated,
          stats.Stream_stats.max_degree,
          stats.Stream_stats.mean_degree,
          tr.Flood.peak_coverage,
          tr.Flood.rounds ))
  in
  let bound = Isolated.paper_bound_pdg ~n ~d in
  let table =
    Table.create
      [
        "trial";
        "population";
        "isolated";
        "paper bound";
        "max deg";
        "mean deg";
        "peak coverage";
        "rounds";
      ]
  in
  let pop_min = ref max_int and pop_max = ref 0 in
  let isolated_total = ref 0 in
  let cov_total = ref 0. in
  Array.iteri
    (fun i (pop, isolated, max_deg, mean_deg, coverage, rounds) ->
      pop_min := min !pop_min pop;
      pop_max := max !pop_max pop;
      isolated_total := !isolated_total + isolated;
      cov_total := !cov_total +. coverage;
      Table.add_row table
        [
          string_of_int (i + 1);
          string_of_int pop;
          string_of_int isolated;
          Table.fmt_float ~digits:1 bound;
          string_of_int max_deg;
          Table.fmt_float ~digits:2 mean_deg;
          Table.fmt_pct coverage;
          string_of_int rounds;
        ])
    results;
  let mean_isolated = float_of_int !isolated_total /. float_of_int trials in
  let mean_coverage = !cov_total /. float_of_int trials in
  Report.make ~id:"E13"
    ~title:(Printf.sprintf "XL tier: PDG at n = %d under live churn" n)
    ~tables:[ table ]
    [
      Report.check_values
        ~claim:"population stays in the Lemma 4.4 stationary band at XL scale"
        ~expected:(Printf.sprintf "every trial within [%d, %d]" (n / 2) (3 * n / 2))
        ~measured:(Printf.sprintf "populations in [%d, %d]" !pop_min !pop_max)
        ~expected_value:(float_of_int n)
        ~measured_value:(float_of_int !pop_max)
        ~holds:(!pop_min >= n / 2 && !pop_max <= 3 * n / 2);
      Report.check_values
        ~claim:
          (Printf.sprintf
             "snapshots contain Omega(n e^{-2d}) isolated nodes (Lemma 4.10, d = %d)" d)
        ~expected:(Printf.sprintf ">= %.1f isolated nodes" bound)
        ~measured:(Printf.sprintf "%.1f isolated nodes on average" mean_isolated)
        ~expected_value:bound ~measured_value:mean_isolated
        ~holds:(mean_isolated >= bound);
      Report.check_values
        ~claim:"flooding still reaches a constant fraction in O(log n) rounds"
        ~expected:
          (Printf.sprintf ">= 50%% mean peak coverage within %d rounds" budget)
        ~measured:(Printf.sprintf "%.0f%% mean peak coverage" (100. *. mean_coverage))
        ~expected_value:0.5 ~measured_value:mean_coverage
        ~holds:(mean_coverage >= 0.5);
    ]
