(* F14: the quantitative in-degree law of the models without edge
   regeneration.  In SDG, a node of age a has been a potential target of
   exactly a*d later requests, each hitting it with probability 1/(n-1),
   so its in-degree is Binomial(a d, 1/(n-1)) ~ Poisson(d a / n).  The
   same law holds in expectation for PDG with a measured in rounds/2
   (one birth every other jump).  This is the mechanism behind
   Lemma 3.5's e^{-2d}: an age-n node is isolated iff its Poisson(d)
   in-degree is 0 AND its d out-edges all died. *)

open Churnet_core
module Dyngraph = Churnet_graph.Dyngraph
module Prng = Churnet_util.Prng
module Table = Churnet_util.Table
module Stats = Churnet_util.Stats
module Kl = Churnet_util.Kl
module Dist = Churnet_util.Dist

let f14 ~seed ~scale =
  let n = Scale.pick scale ~smoke:600 ~standard:3000 ~full:10000 in
  let d = 5 in
  let snapshots = Scale.pick scale ~smoke:5 ~standard:20 ~full:60 in
  let rng = Prng.create seed in
  let m = Streaming_model.create ~rng:(Prng.split rng) ~n ~d ~regenerate:false () in
  Streaming_model.warm_up m;
  (* Mean in-degree per age decile, against d * a / n. *)
  let buckets = 10 in
  (* Distribution of in-degrees in the oldest decile, against Poisson. *)
  let max_k = 4 * d in
  (* The whole sweep is one checkpointable work unit: its result is the
     plain data (per-bucket means, old-decile histogram) the report is
     rendered from, so a resumed run skips the simulation entirely. *)
  let indeg_means, old_hist =
    (Churnet_util.Parallel.map
       (fun () ->
         let indeg_acc = Array.init buckets (fun _ -> Stats.Acc.create ()) in
         let old_hist = Array.make (max_k + 1) 0 in
         for _ = 1 to snapshots do
           let g = Streaming_model.graph m in
           Dyngraph.iter_alive g (fun id ->
               let age = Streaming_model.age_of m id in
               let b = min (buckets - 1) (age * buckets / n) in
               let indeg = Dyngraph.in_degree g id in
               Stats.Acc.add_int indeg_acc.(b) indeg;
               if b = buckets - 1 then
                 old_hist.(min max_k indeg) <- old_hist.(min max_k indeg) + 1);
           Streaming_model.run m (n / 2)
         done;
         (Array.map Stats.Acc.mean indeg_acc, old_hist))
       [| () |]).(0)
  in
  let table = Table.create [ "age bucket"; "mean in-degree"; "predicted d*a/n" ] in
  let worst_ratio = ref 1. in
  Array.iteri
    (fun b measured ->
      let mid_age = (float_of_int b +. 0.5) /. float_of_int buckets in
      let predicted = float_of_int d *. mid_age in
      if predicted > 0.3 then begin
        let r = measured /. predicted in
        if Float.abs (log r) > Float.abs (log !worst_ratio) then worst_ratio := r
      end;
      Table.add_row table
        [
          Printf.sprintf "[%.1f n, %.1f n)"
            (float_of_int b /. float_of_int buckets)
            (float_of_int (b + 1) /. float_of_int buckets);
          Table.fmt_float ~digits:3 measured;
          Table.fmt_float ~digits:3 predicted;
        ])
    indeg_means;
  (* Distribution check in the oldest decile: age ~ 0.95 n so the law is
     Poisson(0.95 d). *)
  let lambda = 0.95 *. float_of_int d in
  let model = Array.init (max_k + 1) (fun k -> Dist.poisson_pmf lambda k) in
  let model = Kl.normalize model in
  let empirical = Kl.of_counts old_hist in
  let kl = Kl.kl_divergence empirical model in
  let tv = Kl.total_variation empirical model in
  let dist_table = Table.create [ "in-degree k"; "empirical"; "Poisson(0.95 d)" ] in
  Array.iteri
    (fun k p ->
      if k <= 2 * d then
        Table.add_row dist_table
          [ string_of_int k; Table.fmt_float p; Table.fmt_float model.(k) ])
    empirical;
  Report.make ~id:"F14"
    ~title:"In-degree law of SDG: age-a nodes have Poisson(d a / n) in-degree"
    ~tables:[ table; dist_table ]
    [
      Report.check ~claim:"mean in-degree grows linearly with age, slope d/n"
        ~expected:"measured/predicted within [0.8, 1.25] in every populated bucket"
        ~measured:(Printf.sprintf "worst ratio %.3f" !worst_ratio)
        ~holds:(!worst_ratio > 0.8 && !worst_ratio < 1.25);
      (let samples = Array.fold_left ( + ) 0 old_hist in
       let bins =
         Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 old_hist
       in
       (* Sampling noise alone produces TV ~ sqrt(bins / N); allow that
          plus a small systematic margin. *)
       let tolerance =
         0.05 +. (1.2 *. sqrt (float_of_int (max 1 bins) /. float_of_int (max 1 samples)))
       in
       Report.check
         ~claim:"old nodes' in-degree distribution is Poisson (the engine of Lemma 3.5)"
         ~expected:(Printf.sprintf "TV below %.3f (%d samples)" tolerance samples)
         ~measured:(Printf.sprintf "KL %.4f, TV %.4f" kl tv)
         ~holds:(tv < tolerance));
      (let p0_measured = empirical.(0) in
       let p0_theory = exp (-.lambda) in
       Report.check
         ~claim:"P(in-degree 0) ~ e^{-0.95 d} for the oldest nodes (the isolated-node rate)"
         ~expected:(Printf.sprintf "about %.4f" p0_theory)
         ~measured:(Table.fmt_float p0_measured)
         ~holds:
           (p0_measured < 4. *. p0_theory +. 0.01
           && p0_measured > p0_theory /. 4. -. 0.01));
    ]
