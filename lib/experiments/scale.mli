(** Effort knobs shared by all experiments.  [Smoke] keeps everything
    small enough for CI-style runs (seconds), [Standard] is the default
    used by the benchmark harness, [Full] is for overnight-quality
    statistics. *)

type t = Smoke | Standard | Full

val of_string : string -> t option
val to_string : t -> string

val pick : t -> smoke:'a -> standard:'a -> full:'a -> 'a
(** Select a value by scale. *)
