(** Effort knobs shared by all experiments.  [Smoke] keeps everything
    small enough for CI-style runs (seconds), [Standard] is the default
    used by the benchmark harness, [Full] is for overnight-quality
    statistics, [XL] is the million-node tier: population sizes where the
    paper's asymptotic claims become visually unambiguous but a flat CSR
    snapshot no longer fits comfortably in memory. *)

type t = Smoke | Standard | Full | XL

val of_string : string -> t option
val to_string : t -> string

val all : t list
(** Every tier, smallest first. *)

val names : string list
(** The parseable tier names in [all] order — for CLI error messages
    that must list the valid values. *)

val pick : ?xl:'a -> t -> smoke:'a -> standard:'a -> full:'a -> 'a
(** Select a value by scale.  [?xl] defaults to the [full] value, so
    experiments that have no dedicated million-node configuration run
    their full-scale one under [XL]. *)
