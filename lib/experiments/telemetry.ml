module Json = Churnet_util.Json
module Checkpoint = Churnet_util.Checkpoint

type ckpt = {
  units_stored : int;
  units_restored : int;
  writes : int;
  write_seconds : float;
}

type t = {
  wall_seconds : float;
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  domains : int;
  seed : int;
  scale : Scale.t;
  checkpoint : ckpt option;
  peak_rss_kb : int option;
  cell_peak_rss_kb : int option;
}

(* Telemetry is the one library module allowed to read the wall clock
   (see churnet-lint's no-wallclock rule); everything else — including
   the CLI — borrows this accessor. *)
let now () = Unix.gettimeofday ()

(* VmHWM ("high-water mark") from /proc/self/status: the process's peak
   resident set, in kB.  It is monotone over the process lifetime, so one
   read after the measured call captures the peak the run reached — the
   number the XL tier's memory envelope is stated in.  [None] on systems
   without procfs (or a different status format); telemetry then simply
   omits the field. *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> None
        | line ->
            let prefix = "VmHWM:" in
            if String.length line > String.length prefix
               && String.sub line 0 (String.length prefix) = prefix
            then
              let rest =
                String.trim
                  (String.sub line (String.length prefix)
                     (String.length line - String.length prefix))
              in
              let kb =
                match String.index_opt rest ' ' with
                | Some i -> String.sub rest 0 i
                | None -> rest
              in
              int_of_string_opt kb
            else scan ()
      in
      let result = scan () in
      close_in_noerr ic;
      result

let ckpt_delta (s0 : Checkpoint.stats option) (s1 : Checkpoint.stats option) =
  match (s0, s1) with
  | Some a, Some b ->
      Some
        {
          units_stored = b.Checkpoint.units_stored - a.Checkpoint.units_stored;
          units_restored = b.Checkpoint.units_restored - a.Checkpoint.units_restored;
          writes = b.Checkpoint.writes - a.Checkpoint.writes;
          write_seconds = b.Checkpoint.write_seconds -. a.Checkpoint.write_seconds;
        }
  | None, Some b ->
      Some
        {
          units_stored = b.Checkpoint.units_stored;
          units_restored = b.Checkpoint.units_restored;
          writes = b.Checkpoint.writes;
          write_seconds = b.Checkpoint.write_seconds;
        }
  | _, None -> None

let measure ~seed ~scale ?domains f =
  let domains =
    match domains with
    | Some d -> d
    | None -> Churnet_util.Parallel.domains_from_env ()
  in
  let c0 = Checkpoint.active_stats () in
  let rss0 = peak_rss_kb () in
  let g0 = Gc.quick_stat () in
  let t0 = now () in
  let result = f () in
  let wall_seconds = now () -. t0 in
  let g1 = Gc.quick_stat () in
  let rss1 = peak_rss_kb () in
  let c1 = Checkpoint.active_stats () in
  (* VmHWM is process-wide and monotone, so in a multi-cell run every
     cell after the first inherits the maximum of its predecessors.  The
     watermark is honestly attributable to *this* cell only when it rose
     during the call; when it predates the cell we omit the per-cell
     field rather than report a predecessor's footprint. *)
  let cell_peak_rss_kb =
    match (rss0, rss1) with
    | Some before, Some after when after > before -> Some after
    | _ -> None
  in
  ( result,
    {
      wall_seconds;
      minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
      major_words = g1.Gc.major_words -. g0.Gc.major_words;
      minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
      major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
      domains;
      seed;
      scale;
      checkpoint = ckpt_delta c0 c1;
      peak_rss_kb = rss1;
      cell_peak_rss_kb;
    } )

let ckpt_to_json c =
  Json.Obj
    [
      ("units_stored", Json.Int c.units_stored);
      ("units_restored", Json.Int c.units_restored);
      ("writes", Json.Int c.writes);
      ("write_seconds", Json.of_finite c.write_seconds);
    ]

let to_json t =
  Json.Obj
    ([
       ("wall_seconds", Json.of_finite t.wall_seconds);
       ("minor_words", Json.of_finite t.minor_words);
       ("promoted_words", Json.of_finite t.promoted_words);
       ("major_words", Json.of_finite t.major_words);
       ("minor_collections", Json.Int t.minor_collections);
       ("major_collections", Json.Int t.major_collections);
       ("domains", Json.Int t.domains);
       ("seed", Json.Int t.seed);
       ("scale", Json.String (Scale.to_string t.scale));
     ]
    @ (match t.peak_rss_kb with None -> [] | Some kb -> [ ("peak_rss_kb", Json.Int kb) ])
    @ (match t.cell_peak_rss_kb with
      | None -> []
      | Some kb -> [ ("cell_peak_rss_kb", Json.Int kb) ])
    @ match t.checkpoint with None -> [] | Some c -> [ ("checkpoint", ckpt_to_json c) ])
