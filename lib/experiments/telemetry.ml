module Json = Churnet_util.Json

type t = {
  wall_seconds : float;
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  domains : int;
  seed : int;
  scale : Scale.t;
}

let measure ~seed ~scale ?domains f =
  let domains =
    match domains with
    | Some d -> d
    | None -> Churnet_util.Parallel.domains_from_env ()
  in
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let g1 = Gc.quick_stat () in
  ( result,
    {
      wall_seconds;
      minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
      major_words = g1.Gc.major_words -. g0.Gc.major_words;
      minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
      major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
      domains;
      seed;
      scale;
    } )

let to_json t =
  Json.Obj
    [
      ("wall_seconds", Json.of_finite t.wall_seconds);
      ("minor_words", Json.of_finite t.minor_words);
      ("promoted_words", Json.of_finite t.promoted_words);
      ("major_words", Json.of_finite t.major_words);
      ("minor_collections", Json.Int t.minor_collections);
      ("major_collections", Json.Int t.major_collections);
      ("domains", Json.Int t.domains);
      ("seed", Json.Int t.seed);
      ("scale", Json.String (Scale.to_string t.scale));
    ]
