type check = { claim : string; expected : string; measured : string; holds : bool }

type t = {
  id : string;
  title : string;
  checks : check list;
  tables : Churnet_util.Table.t list;
  figures : string list;
}

let check ~claim ~expected ~measured ~holds = { claim; expected; measured; holds }

let make ~id ~title ?(tables = []) ?(figures = []) checks =
  { id; title; checks; tables; figures }

let all_hold t = List.for_all (fun c -> c.holds) t.checks

let render t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "\n================ %s — %s ================\n" t.id t.title);
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "[%s] %s\n       paper:    %s\n       measured: %s\n"
           (if c.holds then "PASS" else "FAIL")
           c.claim c.expected c.measured))
    t.checks;
  List.iter
    (fun table ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (Churnet_util.Table.render table))
    t.tables;
  List.iter
    (fun fig ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf fig)
    t.figures;
  Buffer.contents buf

let summary_row t =
  let total = List.length t.checks in
  let ok = List.length (List.filter (fun c -> c.holds) t.checks) in
  [ t.id; t.title; Printf.sprintf "%d/%d checks hold" ok total ]
