module Json = Churnet_util.Json

type check = {
  claim : string;
  expected : string;
  measured : string;
  expected_value : float option;
  measured_value : float option;
  holds : bool;
}

type t = {
  id : string;
  title : string;
  checks : check list;
  tables : Churnet_util.Table.t list;
  figures : string list;
}

let check ~claim ~expected ~measured ~holds =
  { claim; expected; measured; expected_value = None; measured_value = None; holds }

let check_values ~claim ~expected ~measured ~expected_value ~measured_value ~holds =
  {
    claim;
    expected;
    measured;
    expected_value = Some expected_value;
    measured_value = Some measured_value;
    holds;
  }

let make ~id ~title ?(tables = []) ?(figures = []) checks =
  { id; title; checks; tables; figures }

let all_hold t = List.for_all (fun c -> c.holds) t.checks

let render t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "\n================ %s — %s ================\n" t.id t.title);
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "[%s] %s\n       paper:    %s\n       measured: %s\n"
           (if c.holds then "PASS" else "FAIL")
           c.claim c.expected c.measured))
    t.checks;
  List.iter
    (fun table ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (Churnet_util.Table.render table))
    t.tables;
  List.iter
    (fun fig ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf fig)
    t.figures;
  Buffer.contents buf

let summary_row t =
  let total = List.length t.checks in
  let ok = List.length (List.filter (fun c -> c.holds) t.checks) in
  [ t.id; t.title; Printf.sprintf "%d/%d checks hold" ok total ]

let check_to_json c =
  Json.Obj
    [
      ("claim", Json.String c.claim);
      ("expected", Json.String c.expected);
      ("measured", Json.String c.measured);
      ("expected_value", Json.float_opt c.expected_value);
      ("measured_value", Json.float_opt c.measured_value);
      ("holds", Json.Bool c.holds);
    ]

let to_json ?telemetry t =
  let base =
    [
      ("id", Json.String t.id);
      ("title", Json.String t.title);
      ("all_hold", Json.Bool (all_hold t));
      ("checks", Json.Arr (List.map check_to_json t.checks));
      ("tables", Json.Arr (List.map Churnet_util.Table.to_json t.tables));
      ("figures", Json.Arr (List.map (fun f -> Json.String f) t.figures));
    ]
  in
  let tele =
    match telemetry with
    | None -> []
    | Some tm -> [ ("telemetry", Telemetry.to_json tm) ]
  in
  Json.Obj (base @ tele)
