(* E3 (Lemma 3.6), E4 (Lemma 4.11), E5 (Theorem 3.15), E6 (Theorem 4.16),
   F6 (expansion vs set size), F7 (static baseline, Lemma B.1). *)

open Churnet_core
module Prng = Churnet_util.Prng
module Table = Churnet_util.Table
module Probe = Churnet_expansion.Probe
module Spectral = Churnet_expansion.Spectral
module Snapshot = Churnet_graph.Snapshot

let snapshot_of kind ~rng ~n ~d =
  let m = Models.create ~rng kind ~n ~d in
  Models.warm_up_batch m;
  Models.snapshot m

(* Shared engine: probe min expansion over [min_size, n/2] across several
   independent snapshots, report the worst observation. *)
let probe_snapshots kind ~rng ~n ~d ~min_size_of ~snapshots =
  let worst = ref infinity in
  let witness = ref None in
  let spectral_gaps = ref [] in
  (* Two splits per snapshot (model, then probe), in the historical serial
     order; the independent snapshots then run in parallel. *)
  let pairs =
    Array.init snapshots (fun _ ->
        let model_rng = Prng.split rng in
        let probe_rng = Prng.split rng in
        (model_rng, probe_rng))
  in
  let results =
    Churnet_util.Parallel.map
      (fun (model_rng, probe_rng) ->
        let snap = snapshot_of kind ~rng:model_rng ~n ~d in
        let min_size = min_size_of (Snapshot.n snap) in
        let r = Probe.probe ~rng:probe_rng ~min_size snap in
        let sp = Spectral.analyze ~iters:120 snap in
        (r, sp))
      pairs
  in
  Array.iter
    (fun ((r : Probe.report), (sp : Spectral.report)) ->
      if r.min_expansion < !worst then begin
        worst := r.min_expansion;
        witness := Some r.witness
      end;
      spectral_gaps := sp.spectral_gap :: !spectral_gaps)
    results;
  let mean_gap =
    List.fold_left ( +. ) 0. !spectral_gaps /. float_of_int (List.length !spectral_gaps)
  in
  (!worst, !witness, mean_gap)

let expansion_experiment ~id ~title kind ~d ~threshold ~min_size_of ~size_label ~seed
    ~scale =
  let n = Scale.pick scale ~smoke:500 ~standard:2500 ~full:10000 in
  let snapshots = Scale.pick scale ~smoke:1 ~standard:3 ~full:8 in
  let rng = Prng.create seed in
  let worst, witness, mean_gap =
    probe_snapshots kind ~rng ~n ~d ~min_size_of ~snapshots
  in
  let witness_desc =
    match witness with
    | Some (w : Probe.witness) ->
        Printf.sprintf "worst candidate: %s set of size %d, expansion %.3f" w.family
          w.size w.expansion
    | None -> "no candidate in range"
  in
  let table = Table.create [ "quantity"; "value" ] in
  Table.add_row table [ "model"; Models.kind_name kind ];
  Table.add_row table [ "n"; string_of_int n ];
  Table.add_row table [ "d"; string_of_int d ];
  Table.add_row table [ "size range"; size_label n ];
  Table.add_row table [ "snapshots probed"; string_of_int snapshots ];
  Table.add_row table [ "min expansion found"; Table.fmt_float worst ];
  Table.add_row table [ "witness"; witness_desc ];
  Table.add_row table [ "mean spectral gap (largest comp)"; Table.fmt_float mean_gap ];
  Report.make ~id ~title ~tables:[ table ]
    [
      Report.check
        ~claim:(Printf.sprintf "%s: candidate sets in range expand by >= %.1f" (Models.kind_name kind) threshold)
        ~expected:(Printf.sprintf "min expansion >= %.1f w.h.p." threshold)
        ~measured:(Printf.sprintf "min over probe family = %.3f (%s)" worst witness_desc)
        ~holds:(worst >= threshold);
    ]

let e3 ~seed ~scale =
  expansion_experiment ~id:"E3" ~title:"Large-set expansion of SDG (Lemma 3.6)"
    Models.SDG ~d:20 ~threshold:0.1
    ~min_size_of:(fun n ->
      max 2 (int_of_float (float_of_int n *. exp (-.(20. /. 10.)))))
    ~size_label:(fun n ->
      Printf.sprintf "[n e^{-d/10}, n/2] = [%d, %d]"
        (int_of_float (float_of_int n *. exp (-2.)))
        (n / 2))
    ~seed ~scale

let e4 ~seed ~scale =
  expansion_experiment ~id:"E4" ~title:"Large-set expansion of PDG (Lemma 4.11)"
    Models.PDG ~d:20 ~threshold:0.1
    ~min_size_of:(fun n -> max 2 (int_of_float (float_of_int n *. exp (-1.))))
    ~size_label:(fun n ->
      Printf.sprintf "[n e^{-d/20}, n/2] = [%d, %d]"
        (int_of_float (float_of_int n *. exp (-1.)))
        (n / 2))
    ~seed ~scale

let e5 ~seed ~scale =
  expansion_experiment ~id:"E5"
    ~title:"Full vertex expansion of SDGR (Theorem 3.15)" Models.SDGR ~d:14
    ~threshold:0.1
    ~min_size_of:(fun _ -> 1)
    ~size_label:(fun n -> Printf.sprintf "[1, n/2] = [1, %d]" (n / 2))
    ~seed ~scale

let e6 ~seed ~scale =
  expansion_experiment ~id:"E6"
    ~title:"Full vertex expansion of PDGR (Theorem 4.16)" Models.PDGR ~d:35
    ~threshold:0.1
    ~min_size_of:(fun _ -> 1)
    ~size_label:(fun n -> Printf.sprintf "[1, n/2] = [1, %d]" (n / 2))
    ~seed ~scale

(* F6: expansion profile across set sizes for all four models. *)
let f6 ~seed ~scale =
  let n = Scale.pick scale ~smoke:400 ~standard:2000 ~full:6000 in
  let rng = Prng.create seed in
  let sizes =
    let acc = ref [] and s = ref 1 in
    while !s <= n / 2 do
      acc := !s :: !acc;
      s := max (!s + 1) (!s * 2)
    done;
    Array.of_list (List.rev !acc)
  in
  let table =
    Table.create
      ("size"
      :: List.map (fun k -> Models.kind_name k) Models.all_kinds)
  in
  let jobs = ref [] in
  List.iter
    (fun kind ->
      let model_rng = Prng.split rng in
      let profile_rng = Prng.split rng in
      jobs := (kind, model_rng, profile_rng) :: !jobs)
    Models.all_kinds;
  let profiles =
    Array.to_list
      (Churnet_util.Parallel.map
         (fun (kind, model_rng, profile_rng) ->
           let d = if Models.regenerates kind then 35 else 20 in
           let snap = snapshot_of kind ~rng:model_rng ~n ~d in
           (kind, Probe.expansion_profile ~rng:profile_rng snap ~sizes))
         (Array.of_list (List.rev !jobs)))
  in
  Array.iteri
    (fun i s ->
      Table.add_row table
        (string_of_int s
        :: List.map
             (fun (_, prof) ->
               let _, e = prof.(i) in
               Table.fmt_float ~digits:3 e)
             profiles))
    sizes;
  let series =
    List.map
      (fun (kind, prof) ->
        Churnet_util.Asciiplot.
          {
            label = Models.kind_name kind;
            points =
              Array.map (fun (s, e) -> (float_of_int s, Float.max e 1e-3)) prof;
          })
      profiles
  in
  let fig =
    Churnet_util.Asciiplot.plot ~logx:true
      ~title:"F6: min candidate expansion vs set size" ~xlabel:"|S|"
      ~ylabel:"|dS|/|S|" series
  in
  let regen_ok =
    List.for_all
      (fun (kind, prof) ->
        (not (Models.regenerates kind))
        || Array.for_all (fun (_, e) -> Float.is_nan e || e >= 0.1) prof)
      profiles
  in
  Report.make ~id:"F6" ~title:"Expansion profile across set sizes" ~tables:[ table ]
    ~figures:[ fig ]
    [
      Report.check
        ~claim:"regenerating models expand at every size; plain models only at large sizes"
        ~expected:"SDGR/PDGR >= 0.1 for all sizes"
        ~measured:(if regen_ok then "all sampled sizes >= 0.1" else "a size below 0.1 found")
        ~holds:regen_ok;
    ]

(* F7: the static d-out baseline (Lemma B.1): expander iff d >= 3. *)
let f7 ~seed ~scale =
  let n = Scale.pick scale ~smoke:500 ~standard:2000 ~full:8000 in
  let rng = Prng.create seed in
  let table =
    Table.create [ "d"; "min expansion (probe)"; "largest comp"; "flood rounds" ]
  in
  let results = ref [] in
  let ds = [ 1; 2; 3; 4; 6 ] in
  let jobs = ref [] in
  List.iter
    (fun d ->
      let gen_rng = Prng.split rng in
      let probe_rng = Prng.split rng in
      let flood_rng = Prng.split rng in
      jobs := (d, gen_rng, probe_rng, flood_rng) :: !jobs)
    ds;
  let rows =
    Churnet_util.Parallel.map
      (fun (d, gen_rng, probe_rng, flood_rng) ->
        let snap = Static_dout.generate ~rng:gen_rng ~n ~d () in
        let r = Probe.probe ~rng:probe_rng snap in
        let comp = Snapshot.largest_component snap in
        let flood =
          match Static_dout.flooding_rounds ~rng:flood_rng ~n ~d () with
          | Some rounds -> string_of_int rounds
          | None -> "incomplete"
        in
        (d, r.min_expansion, comp, flood))
      (Array.of_list (List.rev !jobs))
  in
  Array.iter
    (fun (d, min_expansion, comp, flood) ->
      Table.add_row table
        [
          string_of_int d;
          Table.fmt_float ~digits:3 min_expansion;
          Printf.sprintf "%d/%d" comp n;
          flood;
        ];
      results := (d, min_expansion) :: !results)
    rows;
  let get d = List.assoc d !results in
  Report.make ~id:"F7" ~title:"Static d-out random graph is an expander for d >= 3 (Lemma B.1)"
    ~tables:[ table ]
    [
      Report.check ~claim:"d >= 3 yields Theta(1) expansion"
        ~expected:"min expansion clearly positive at d = 3, 4, 6"
        ~measured:
          (Printf.sprintf "d=3: %.3f, d=4: %.3f, d=6: %.3f" (get 3) (get 4) (get 6))
        ~holds:(get 3 > 0.05 && get 4 > 0.1 && get 6 > 0.1);
      Report.check ~claim:"d = 1 is not an expander"
        ~expected:"min expansion ~ 0 (disconnected)"
        ~measured:(Printf.sprintf "d=1: %.3f" (get 1))
        ~holds:(get 1 < 0.05);
    ]
