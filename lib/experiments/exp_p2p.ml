(* F10: the PDGR model vs protocol-driven P2P baselines (Bitcoin-like
   addr-gossip, random-walk tokens, centralized cache). *)

open Churnet_core
module Prng = Churnet_util.Prng
module Table = Churnet_util.Table
module Stats = Churnet_util.Stats
module Snapshot = Churnet_graph.Snapshot

type row = {
  name : string;
  flood_rounds : float;
  coverage : float;
  max_degree : int;
  mean_degree : float;
  giant_frac : float;
}

let f10 ~seed ~scale =
  let n = Scale.pick scale ~smoke:300 ~standard:1500 ~full:6000 in
  let trials = Scale.pick scale ~smoke:2 ~standard:4 ~full:10 in
  let d = 8 in
  let rng = Prng.create seed in
  let summarize name mk_flood mk_snapshot =
    let rounds_acc = Stats.Acc.create () and cov_acc = Stats.Acc.create () in
    for _ = 1 to trials do
      let tr : Flood.trace = mk_flood (Prng.split rng) in
      (match tr.completion_round with
      | Some r -> Stats.Acc.add_int rounds_acc r
      | None -> ());
      Stats.Acc.add cov_acc tr.peak_coverage
    done;
    let s : Snapshot.t = mk_snapshot (Prng.split rng) in
    {
      name;
      flood_rounds = Stats.Acc.mean rounds_acc;
      coverage = Stats.Acc.mean cov_acc;
      max_degree = Snapshot.max_degree s;
      mean_degree = Snapshot.mean_degree s;
      giant_frac =
        float_of_int (Snapshot.largest_component s) /. float_of_int (Snapshot.n s);
    }
  in
  let pdgr =
    summarize "PDGR (paper, d=8)"
      (fun rng ->
        let m = Poisson_model.create ~rng ~n ~d ~regenerate:true () in
        Poisson_model.warm_up m;
        Flood.run_poisson_discretized m)
      (fun rng ->
        let m = Poisson_model.create ~rng ~n ~d ~regenerate:true () in
        Poisson_model.warm_up m;
        Poisson_model.snapshot m)
  in
  let bitcoin =
    summarize "Bitcoin-like (target 8, cap 125)"
      (fun rng ->
        let m = Churnet_p2p.Bitcoin_like.create ~rng ~n () in
        Churnet_p2p.Bitcoin_like.warm_up m;
        Churnet_p2p.Bitcoin_like.flood m)
      (fun rng ->
        let m = Churnet_p2p.Bitcoin_like.create ~rng ~n () in
        Churnet_p2p.Bitcoin_like.warm_up m;
        Churnet_p2p.Bitcoin_like.snapshot m)
  in
  let rw =
    summarize "random-walk tokens (Cooper et al.)"
      (fun rng ->
        let m = Churnet_p2p.Rw_streaming.create ~rng ~n ~d () in
        Churnet_p2p.Rw_streaming.warm_up m;
        Churnet_p2p.Rw_streaming.flood ~max_rounds:(6 * int_of_float (log (float_of_int n)) + 40) m)
      (fun rng ->
        let m = Churnet_p2p.Rw_streaming.create ~rng ~n ~d () in
        Churnet_p2p.Rw_streaming.warm_up m;
        Churnet_p2p.Rw_streaming.snapshot m)
  in
  let cache =
    summarize "central cache (Pandurangan et al.)"
      (fun rng ->
        let m = Churnet_p2p.Cache_protocol.create ~rng ~n ~d () in
        Churnet_p2p.Cache_protocol.warm_up m;
        Churnet_p2p.Cache_protocol.flood ~max_rounds:(6 * int_of_float (log (float_of_int n)) + 40) m)
      (fun rng ->
        let m = Churnet_p2p.Cache_protocol.create ~rng ~n ~d () in
        Churnet_p2p.Cache_protocol.warm_up m;
        Churnet_p2p.Cache_protocol.snapshot m)
  in
  let local =
    summarize "local update (Duchon-Duvignau)"
      (fun rng ->
        let m = Churnet_p2p.Local_update.create ~rng ~n ~d () in
        Churnet_p2p.Local_update.warm_up m;
        Churnet_p2p.Local_update.flood
          ~max_rounds:(6 * int_of_float (log (float_of_int n)) + 40) m)
      (fun rng ->
        let m = Churnet_p2p.Local_update.create ~rng ~n ~d () in
        Churnet_p2p.Local_update.warm_up m;
        Churnet_p2p.Local_update.snapshot m)
  in
  let rows = [ pdgr; bitcoin; rw; cache; local ] in
  let table =
    Table.create
      [ "network"; "flood rounds"; "peak coverage"; "max deg"; "mean deg"; "giant comp" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.name;
          Table.fmt_float ~digits:1 r.flood_rounds;
          Table.fmt_pct r.coverage;
          string_of_int r.max_degree;
          Table.fmt_float ~digits:2 r.mean_degree;
          Table.fmt_pct r.giant_frac;
        ])
    rows;
  Report.make ~id:"F10" ~title:"PDGR vs protocol-driven P2P baselines" ~tables:[ table ]
    [
      Report.check
        ~claim:"the Bitcoin-like network behaves like PDGR (the paper's motivating analogy)"
        ~expected:"similar flooding rounds (within 3x) and near-total coverage for both"
        ~measured:
          (Printf.sprintf "PDGR %.1f rounds / %.0f%%; Bitcoin-like %.1f rounds / %.0f%%"
             pdgr.flood_rounds (100. *. pdgr.coverage) bitcoin.flood_rounds
             (100. *. bitcoin.coverage))
        ~holds:
          (pdgr.coverage > 0.95 && bitcoin.coverage > 0.95
          && bitcoin.flood_rounds < 3. *. pdgr.flood_rounds +. 5.);
      Report.check ~claim:"algorithm-free PDGR matches algorithmic maintenance on connectivity"
        ~expected:"giant component ~ 100% for PDGR and Bitcoin-like"
        ~measured:
          (Printf.sprintf "PDGR %.1f%%, Bitcoin %.1f%%, RW %.1f%%, cache %.1f%%"
             (100. *. pdgr.giant_frac) (100. *. bitcoin.giant_frac)
             (100. *. rw.giant_frac) (100. *. cache.giant_frac))
        ~holds:(pdgr.giant_frac > 0.99 && bitcoin.giant_frac > 0.95);
    ]
