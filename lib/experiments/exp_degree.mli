(** Degree structure of SDGR/PDGR (F4).
    Each entry point matches the {!Registry} run signature: it consumes a
    seed and a scale and returns the experiment's {!Report.t}. *)

val f4 : seed:int -> scale:Scale.t -> Report.t
