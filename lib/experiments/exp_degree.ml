(* F4: degree structure of the regenerating models — max degree Theta(log n)
   (Section 5's closing remark) and the degree distribution. *)

open Churnet_core
module Prng = Churnet_util.Prng
module Table = Churnet_util.Table
module Stats = Churnet_util.Stats
module Snapshot = Churnet_graph.Snapshot

let f4 ~seed ~scale =
  let ns =
    Scale.pick scale ~smoke:[ 250; 500 ] ~standard:[ 500; 1000; 2000; 4000; 8000 ]
      ~full:[ 1000; 2000; 4000; 8000; 16000; 32000 ]
  in
  let d = 8 in
  let rng = Prng.create seed in
  let table =
    Table.create [ "n"; "SDGR max deg"; "SDGR mean deg"; "PDGR max deg"; "PDGR mean deg" ]
  in
  let sdgr_pts = ref [] and pdgr_pts = ref [] in
  (* Two splits per n (SDGR then PDGR), in the historical serial order;
     the per-n snapshots then build in parallel. *)
  let jobs = ref [] in
  List.iter
    (fun n ->
      let r1 = Prng.split rng in
      let r2 = Prng.split rng in
      jobs := (Models.PDGR, n, r2) :: (Models.SDGR, n, r1) :: !jobs)
    ns;
  let snaps =
    Churnet_util.Parallel.map
      (fun (kind, n, rng) ->
        let m = Models.create ~rng kind ~n ~d in
        Models.warm_up_batch m;
        Models.snapshot m)
      (Array.of_list (List.rev !jobs))
  in
  List.iteri
    (fun i n ->
      let s1 = snaps.(2 * i) and s2 = snaps.((2 * i) + 1) in
      Table.add_row table
        [
          string_of_int n;
          string_of_int (Snapshot.max_degree s1);
          Table.fmt_float ~digits:2 (Snapshot.mean_degree s1);
          string_of_int (Snapshot.max_degree s2);
          Table.fmt_float ~digits:2 (Snapshot.mean_degree s2);
        ];
      sdgr_pts := (float_of_int n, float_of_int (Snapshot.max_degree s1)) :: !sdgr_pts;
      pdgr_pts := (float_of_int n, float_of_int (Snapshot.max_degree s2)) :: !pdgr_pts)
    ns;
  let arr l = Array.of_list (List.rev l) in
  let fig =
    Churnet_util.Asciiplot.plot ~logx:true ~title:"F4: max degree vs n (d = 8)"
      ~xlabel:"n" ~ylabel:"max degree"
      [
        { label = "SDGR"; points = arr !sdgr_pts };
        { label = "PDGR"; points = arr !pdgr_pts };
      ]
  in
  (* Degree histogram at the largest n. *)
  let n = List.nth ns (List.length ns - 1) in
  let m = Models.create ~rng:(Prng.split rng) Models.SDGR ~n ~d in
  Models.warm_up_batch m;
  let s = Models.snapshot m in
  let hist = Snapshot.degree_histogram s in
  let hist_table = Table.create [ "degree"; "count" ] in
  Array.iteri
    (fun deg count ->
      if count > 0 then Table.add_row hist_table [ string_of_int deg; string_of_int count ])
    hist;
  let fit = Stats.log_fit (arr !sdgr_pts) in
  let largest = snd (List.hd !sdgr_pts) in
  Report.make ~id:"F4" ~title:"Degree structure of the regenerating models"
    ~tables:[ table; hist_table ] ~figures:[ fig ]
    [
      (let log_budget = (6. *. log (float_of_int n)) +. float_of_int d in
       Report.check ~claim:"max degree is Theta(log n) (Section 5 remark)"
         ~expected:
           (Printf.sprintf
              "max degree at n = %d between d and 6 ln n + d = %.0f (and below sqrt n)" n
              log_budget)
         ~measured:
           (Printf.sprintf "max deg %.0f at n = %d; fit %.2f ln n + %.2f" largest n
              fit.slope fit.intercept)
         ~holds:(largest <= log_budget && largest >= float_of_int d));
      Report.check ~claim:"SDGR keeps exactly dn edges (mean degree ~ 2d as a multigraph)"
        ~expected:(Printf.sprintf "mean distinct-neighbor degree slightly below %d" (2 * d))
        ~measured:(Table.fmt_float ~digits:2 (Snapshot.mean_degree s))
        ~holds:
          (Snapshot.mean_degree s > 0.8 *. float_of_int (2 * d)
          && Snapshot.mean_degree s <= float_of_int (2 * d) +. 0.5);
    ]
