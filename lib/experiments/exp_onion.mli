(** Onion-skin layer growth (F5).
    Each entry point matches the {!Registry} run signature: it consumes a
    seed and a scale and returns the experiment's {!Report.t}. *)

val f5 : seed:int -> scale:Scale.t -> Report.t
