(** Expansion experiments (Lemmas 3.6/4.11, Theorems 3.15/4.16; F6/F7).
    Each entry point matches the {!Registry} run signature: it consumes a
    seed and a scale and returns the experiment's {!Report.t}. *)

val e3 : seed:int -> scale:Scale.t -> Report.t

val e4 : seed:int -> scale:Scale.t -> Report.t

val e5 : seed:int -> scale:Scale.t -> Report.t

val e6 : seed:int -> scale:Scale.t -> Report.t

val f6 : seed:int -> scale:Scale.t -> Report.t

val f7 : seed:int -> scale:Scale.t -> Report.t
