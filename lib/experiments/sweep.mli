(** Declarative parameter sweeps over the paper's grid.

    A sweep config (JSON, schema ["churnet-sweep-config/1"]) declares a
    grid of (model x n x d x lambda x seed) cells and/or a list of
    registry experiment cells; {!run} executes every cell — grid cells
    through {!Churnet_util.Parallel.map}, so the ambient
    {!Churnet_util.Checkpoint} journal makes each one a resumable work
    unit — and {!to_json} aggregates the results into one
    ["churnet-sweep/1"] trajectory document whose bytes depend only on
    the config (never on domain count, telemetry or crash/resume
    history). *)

type grid = {
  models : Churnet_core.Models.kind list;
  ns : int list;
  ds : int list;
  lambdas : float list;  (** default [[1.0]], the paper's normalization *)
  grid_seeds : int list;
}

type experiments = {
  ids : string list;  (** registry ids, validated at parse time *)
  exp_seeds : int list;  (** default [[42]] *)
  exp_scale : Scale.t;  (** default [Smoke] *)
}

type config = {
  name : string;
  grid : grid option;
  experiments : experiments option;
}

type cell = {
  model : Churnet_core.Models.kind;
  n : int;
  d : int;
  lambda : float;
  cell_seed : int;
}

type metrics = {
  population : int;
  isolated : int;
  max_degree : int;
  mean_degree : float;
  rounds : int;
  half_coverage_round : int option;
      (** first round with >= 50% of the live population informed *)
  completion_round : int option;
  completed : bool;
  extinct : bool;
  peak_coverage : float;
  final_coverage : float;
}

type exp_result = {
  exp_id : string;
  exp_seed : int;
  report : Report.t;
  telemetry : Telemetry.t;
      (** side channel for the CLI's stderr lines; never serialized into
          the sweep document *)
}

type outcome = {
  config : config;
  exp_results : exp_result list;
  cell_results : (cell * metrics) array;  (** in {!cells} order *)
}

val config_of_json : Churnet_util.Json.t -> (config, string) result
(** Parse and validate: schema tag, non-empty duplicate-free axes, known
    model names and experiment ids, positive n/d/lambda, and no
    streaming model combined with lambda <> 1. *)

val config_of_file : string -> (config, string) result
(** {!config_of_json} on the parsed contents of a JSON file. *)

val config_to_json : config -> Churnet_util.Json.t
(** Canonical form (defaults filled in): echoed into the trajectory
    document and digested into the checkpoint-journal identity line. *)

val cells : config -> cell list
(** Grid expansion, models -> n -> d -> lambda -> seeds in listed order.
    The order is part of the on-disk format: cell index = work-unit
    index in the checkpoint journal. *)

val run : ?progress:(string -> unit) -> config -> outcome
(** Execute the sweep: experiment cells sequentially (their internal
    [Parallel.map] calls own the journal sites), then all grid cells
    through one flat [Parallel.map].  [progress] receives one short
    line per scheduling step (the CLI forwards it to stderr). *)

val all_hold : outcome -> bool
(** Whether every check of every experiment cell holds. *)

val to_json : outcome -> Churnet_util.Json.t
(** The ["churnet-sweep/1"] trajectory document: config echo, one
    report object per experiment cell (without telemetry), one metrics
    object per grid cell, and the rendered figures.  A pure function of
    the config — byte-identical across serial, multi-domain and
    crash-resumed runs. *)

val render : outcome -> string
(** Human-readable rollup: experiment reports and summary, grid metrics
    table, and the asymptotic-shape figures (flooding rounds vs n on a
    log axis when the grid spans >= 2 population sizes, peak coverage
    vs d when it spans >= 2 degrees). *)
