(* E7 (Theorem 3.7), E8 (Theorem 3.8), E9 (Theorems 4.12/4.13),
   E10 (Theorem 3.16), E11 (Theorem 4.20), F1 (flooding time vs n),
   F2 (coverage vs d). *)

open Churnet_core
module Prng = Churnet_util.Prng
module Parallel = Churnet_util.Parallel
module Table = Churnet_util.Table
module Stats = Churnet_util.Stats

let flood_once kind ~rng ~n ~d ~max_rounds =
  let m = Models.create ~rng kind ~n ~d in
  Models.warm_up_batch m;
  Models.flood ~max_rounds m

(* --- E7: flooding in SDG can stall, and completion needs Omega_d(n). --- *)

let e7 ~seed ~scale =
  let n = Scale.pick scale ~smoke:300 ~standard:1500 ~full:6000 in
  let trials = Scale.pick scale ~smoke:20 ~standard:120 ~full:600 in
  let rng = Prng.create seed in
  let table =
    Table.create
      [ "d"; "trials"; "stall frac"; "extinct frac"; "95% CI"; "mean peak coverage" ]
  in
  let stall_fracs = ref [] in
  List.iter
    (fun d ->
      let traces =
        Parallel.replicate ~rng ~trials (fun rng ->
            flood_once Models.SDG ~rng ~n ~d ~max_rounds:40)
      in
      let stalls = ref 0 in
      let extinctions = ref 0 in
      let cov = Stats.Acc.create () in
      Array.iter
        (fun tr ->
          if tr.Flood.peak_informed <= d + 1 then incr stalls;
          if tr.Flood.extinct then incr extinctions;
          Stats.Acc.add cov tr.Flood.peak_coverage)
        traces;
      let frac = float_of_int !stalls /. float_of_int trials in
      Table.add_row table
        [
          string_of_int d;
          string_of_int trials;
          Table.fmt_pct frac;
          Table.fmt_pct (float_of_int !extinctions /. float_of_int trials);
          Table.fmt_ci (Stats.binomial_ci95 ~successes:!stalls ~trials);
          Table.fmt_pct (Stats.Acc.mean cov);
        ];
      stall_fracs := (d, frac) :: !stall_fracs)
    [ 1; 2; 3 ];
  (* Completion lower bound: residual lifetime of forever-isolated nodes. *)
  let m = Streaming_model.create ~rng:(Prng.split rng) ~n ~d:2 ~regenerate:false () in
  Streaming_model.warm_up m;
  let c = Isolated.census_streaming ~max_track:400 m in
  let d1_stall = List.assoc 1 !stall_fracs in
  let d3_stall = List.assoc 3 !stall_fracs in
  Report.make ~id:"E7" ~title:"Flooding in SDG fails with constant probability (Theorem 3.7)"
    ~tables:[ table ]
    [
      Report.check_values
        ~claim:"flooding stalls at <= d+1 informed nodes with probability Omega_d(1)"
        ~expected:"a clearly positive stall fraction at small d"
        ~measured:(Printf.sprintf "d=1: %.1f%%, d=3: %.1f%%" (100. *. d1_stall) (100. *. d3_stall))
        ~expected_value:0.02 ~measured_value:d1_stall
        ~holds:(d1_stall > 0.02);
      Report.check ~claim:"stall probability decreases with d (the Omega(e^{-d^2}) shape)"
        ~expected:"stall fraction at d=3 below d=1"
        ~measured:(Printf.sprintf "%.1f%% -> %.1f%%" (100. *. d1_stall) (100. *. d3_stall))
        ~holds:(d3_stall <= d1_stall);
      Report.check ~claim:"completion takes Omega_d(n) rounds (isolated nodes must die first)"
        ~expected:"forever-isolated nodes exist at time t0 (their residual life is up to n rounds)"
        ~measured:
          (Printf.sprintf "%d isolated nodes at t0, %d of %d tracked stayed isolated until death"
             c.isolated_now c.isolated_forever c.tracked)
        ~holds:(c.isolated_forever > 0);
    ]

(* --- E8: flooding covers a 1 - e^{-Omega(d)} fraction in O(log n). --- *)

let coverage_experiment ~id ~title kind ~exponent_divisor ~seed ~scale =
  let n = Scale.pick scale ~smoke:500 ~standard:3000 ~full:10000 in
  let trials = Scale.pick scale ~smoke:3 ~standard:10 ~full:30 in
  let rng = Prng.create seed in
  let budget = int_of_float (6. *. log (float_of_int n)) + 20 in
  let table =
    Table.create
      [ "d"; "target frac"; "success frac"; "mean rounds to target"; "mean peak cov" ]
  in
  let checks = ref [] in
  List.iter
    (fun d ->
      let target = 1. -. exp (-.(float_of_int d /. exponent_divisor)) in
      let successes = ref 0 in
      let rounds_acc = Stats.Acc.create () in
      let cov_acc = Stats.Acc.create () in
      let traces =
        Parallel.replicate ~rng ~trials (fun rng ->
            flood_once kind ~rng ~n ~d ~max_rounds:budget)
      in
      Array.iter
        (fun tr ->
          Stats.Acc.add cov_acc tr.Flood.peak_coverage;
          (* first round reaching target coverage *)
          let hit = ref None in
          Array.iteri
            (fun i inf ->
              let pop = tr.Flood.population_per_round.(i) in
              if
                !hit = None && pop > 0
                && float_of_int inf /. float_of_int pop >= target
              then hit := Some i)
            tr.Flood.informed_per_round;
          match !hit with
          | Some r ->
              incr successes;
              Stats.Acc.add_int rounds_acc r
          | None -> ())
        traces;
      let frac = float_of_int !successes /. float_of_int trials in
      Table.add_row table
        [
          string_of_int d;
          Table.fmt_pct target;
          Table.fmt_pct frac;
          Table.fmt_float ~digits:1 (Stats.Acc.mean rounds_acc);
          Table.fmt_pct (Stats.Acc.mean cov_acc);
        ];
      if d = 16 then
        checks :=
          Report.check_values
            ~claim:
              (Printf.sprintf
                 "%s flooding informs a (1 - e^{-d/%g}) fraction within O(log n) rounds"
                 (Models.kind_name kind) exponent_divisor)
            ~expected:
              (Printf.sprintf "most trials reach %.0f%% coverage within %d rounds"
                 (100. *. target) budget)
            ~measured:
              (Printf.sprintf "%.0f%% of trials, mean %.1f rounds" (100. *. frac)
                 (Stats.Acc.mean rounds_acc))
            ~expected_value:0.7 ~measured_value:frac
            ~holds:(frac >= 0.7)
          :: !checks)
    [ 8; 16; 24 ];
  Report.make ~id ~title ~tables:[ table ] (List.rev !checks)

let e8 ~seed ~scale =
  coverage_experiment ~id:"E8"
    ~title:"SDG flooding reaches a 1 - e^{-Omega(d)} fraction fast (Theorem 3.8)"
    Models.SDG ~exponent_divisor:10. ~seed ~scale

let e9 ~seed ~scale =
  let base =
    coverage_experiment ~id:"E9"
      ~title:"PDG flooding reaches a 1 - e^{-Omega(d)} fraction fast (Theorems 4.12/4.13)"
      Models.PDG ~exponent_divisor:20. ~seed ~scale
  in
  (* Theorem 4.12 (negative, asynchronous flooding of Def 4.2): with small
     d the rumor dies out with constant probability. *)
  let n = Scale.pick scale ~smoke:200 ~standard:800 ~full:2500 in
  let trials = Scale.pick scale ~smoke:15 ~standard:60 ~full:200 in
  let rng = Prng.create (seed + 17) in
  let stall_table =
    Table.create [ "d"; "trials"; "async stall frac"; "extinct frac"; "95% CI" ]
  in
  let fracs = ref [] in
  List.iter
    (fun d ->
      let results =
        Parallel.replicate ~rng ~trials (fun rng ->
            let m = Poisson_model.create ~rng ~n ~d ~regenerate:false () in
            Poisson_model.warm_up m;
            Flood.Async.run ~max_time:40. m)
      in
      let stalls = ref 0 in
      let extinctions = ref 0 in
      Array.iter
        (fun (r : Flood.Async.result) ->
          if (not r.completed) && r.informed_total <= d + 1 then incr stalls;
          if r.extinct then incr extinctions)
        results;
      let frac = float_of_int !stalls /. float_of_int trials in
      fracs := (d, frac) :: !fracs;
      Table.add_row stall_table
        [
          string_of_int d;
          string_of_int trials;
          Table.fmt_pct frac;
          Table.fmt_pct (float_of_int !extinctions /. float_of_int trials);
          Table.fmt_ci (Stats.binomial_ci95 ~successes:!stalls ~trials);
        ])
    [ 1; 2 ];
  let d1 = List.assoc 1 !fracs and d2 = List.assoc 2 !fracs in
  let stall_check =
    Report.check
      ~claim:"asynchronous flooding (Def 4.2) dies at <= d+1 nodes with probability Omega_d(1) (Thm 4.12)"
      ~expected:"clearly positive extinction fraction at d = 1, decreasing in d"
      ~measured:(Printf.sprintf "d=1: %.1f%%, d=2: %.1f%%" (100. *. d1) (100. *. d2))
      ~holds:(d1 > 0.02 && d2 <= d1)
  in
  Report.make ~id:base.Report.id ~title:base.Report.title
    ~tables:(base.Report.tables @ [ stall_table ])
    (base.Report.checks @ [ stall_check ])

(* --- E10 / E11: flooding completes in O(log n) with regeneration. --- *)

let completion_experiment ~id ~title kind ~d ~seed ~scale =
  let ns =
    Scale.pick scale ~smoke:[ 200; 400 ] ~standard:[ 500; 1000; 2000; 4000 ]
      ~full:[ 1000; 2000; 4000; 8000; 16000 ]
  in
  let trials = Scale.pick scale ~smoke:2 ~standard:5 ~full:15 in
  let rng = Prng.create seed in
  (* Two degree regimes: the theorem's d (where diameters are tiny and the
     growth is hard to resolve) and a diagnostic small degree where the
     log n growth is plainly visible. *)
  let d_small = 4 in
  let table =
    Table.create
      [ "n"; "trials";
        Printf.sprintf "completed (d=%d)" d;
        Printf.sprintf "mean rounds (d=%d)" d;
        Printf.sprintf "completed (d=%d)" d_small;
        Printf.sprintf "mean rounds (d=%d)" d_small;
        Printf.sprintf "rounds/ln n (d=%d)" d_small ]
  in
  let points = ref [] and points_small = ref [] in
  let all_completed = ref true in
  List.iter
    (fun n ->
      let measure dd =
        let acc = Stats.Acc.create () in
        let completed = ref 0 in
        let traces =
          Parallel.replicate ~rng ~trials (fun rng ->
              flood_once kind ~rng ~n ~d:dd
                ~max_rounds:(int_of_float (20. *. log (float_of_int n)) + 40))
        in
        Array.iter
          (fun tr ->
            if tr.Flood.completed then begin
              incr completed;
              match tr.Flood.completion_round with
              | Some r -> Stats.Acc.add_int acc r
              | None -> ()
            end)
          traces;
        (!completed, Stats.Acc.mean acc)
      in
      let completed, mean_rounds = measure d in
      let completed_small, mean_small = measure d_small in
      if completed < trials then all_completed := false;
      Table.add_row table
        [
          string_of_int n;
          string_of_int trials;
          Printf.sprintf "%d/%d" completed trials;
          Table.fmt_float ~digits:1 mean_rounds;
          Printf.sprintf "%d/%d" completed_small trials;
          Table.fmt_float ~digits:1 mean_small;
          Table.fmt_float ~digits:2 (mean_small /. log (float_of_int n));
        ];
      points := (float_of_int n, mean_rounds) :: !points;
      points_small := (float_of_int n, mean_small) :: !points_small)
    ns;
  let fit = Stats.log_fit (Array.of_list (List.rev !points_small)) in
  let figure =
    Churnet_util.Asciiplot.plot ~logx:true
      ~title:(Printf.sprintf "%s: completion rounds vs n" id)
      ~xlabel:"n" ~ylabel:"rounds"
      [
        { label = Printf.sprintf "%s d=%d (theorem)" (Models.kind_name kind) d;
          points = Array.of_list (List.rev !points) };
        { label = Printf.sprintf "%s d=%d (diagnostic)" (Models.kind_name kind) d_small;
          points = Array.of_list (List.rev !points_small) };
      ]
  in
  Report.make ~id ~title ~tables:[ table ] ~figures:[ figure ]
    [
      Report.check
        ~claim:(Printf.sprintf "%s flooding completes w.h.p." (Models.kind_name kind))
        ~expected:"every trial completes"
        ~measured:(if !all_completed then "all trials completed" else "some trials failed")
        ~holds:!all_completed;
      (let n_max = List.nth ns (List.length ns - 1) in
       let rounds_at_max =
         match List.rev !points_small with
         | [] -> nan
         | pts -> snd (List.nth pts (List.length pts - 1))
       in
       let budget = (4. *. log (float_of_int n_max)) +. 10. in
       Report.check ~claim:"completion time is O(log n) (diagnostic d = 4 series)"
         ~expected:
           (Printf.sprintf "rounds at n = %d at most 4 ln n + 10 = %.1f" n_max budget)
         ~measured:
           (Printf.sprintf "%.1f rounds at n = %d; fit %.2f ln n + %.2f (R2 %.3f)"
              rounds_at_max n_max fit.slope fit.intercept fit.r2)
         ~holds:(rounds_at_max <= budget && fit.slope < 8.));
    ]

let e10 ~seed ~scale =
  completion_experiment ~id:"E10"
    ~title:"SDGR flooding completes in O(log n) (Theorem 3.16)" Models.SDGR ~d:21 ~seed
    ~scale

let e11 ~seed ~scale =
  completion_experiment ~id:"E11"
    ~title:"PDGR flooding completes in O(log n) (Theorem 4.20)" Models.PDGR ~d:35 ~seed
    ~scale

(* --- F1: flooding time vs n across all models + baseline. --- *)

let f1 ~seed ~scale =
  let ns =
    Scale.pick scale ~smoke:[ 200; 400 ] ~standard:[ 500; 1000; 2000; 4000 ]
      ~full:[ 1000; 2000; 4000; 8000; 16000 ]
  in
  let trials = Scale.pick scale ~smoke:2 ~standard:4 ~full:10 in
  let rng = Prng.create seed in
  (* SDG/PDG: rounds to 50% coverage; SDGR/PDGR: completion rounds;
     static: BFS eccentricity. *)
  let half_coverage_rounds kind ~n ~d =
    let acc = Stats.Acc.create () in
    let budget = int_of_float (6. *. log (float_of_int n)) + 20 in
    let traces =
      Parallel.replicate ~rng ~trials (fun rng ->
          flood_once kind ~rng ~n ~d ~max_rounds:budget)
    in
    Array.iter
      (fun tr ->
        let hit = ref None in
        Array.iteri
          (fun i inf ->
            let pop = tr.Flood.population_per_round.(i) in
            if !hit = None && pop > 0 && 2 * inf >= pop then hit := Some i)
          tr.Flood.informed_per_round;
        match !hit with Some r -> Stats.Acc.add_int acc r | None -> ())
      traces;
    Stats.Acc.mean acc
  in
  let completion_rounds kind ~n ~d =
    let acc = Stats.Acc.create () in
    let budget = int_of_float (20. *. log (float_of_int n)) + 40 in
    let traces =
      Parallel.replicate ~rng ~trials (fun rng ->
          flood_once kind ~rng ~n ~d ~max_rounds:budget)
    in
    Array.iter
      (fun tr ->
        match tr.Flood.completion_round with
        | Some r -> Stats.Acc.add_int acc r
        | None -> ())
      traces;
    Stats.Acc.mean acc
  in
  let static_rounds ~n ~d =
    let acc = Stats.Acc.create () in
    let results =
      Parallel.replicate ~rng ~trials (fun rng ->
          Static_dout.flooding_rounds ~rng ~n ~d ())
    in
    Array.iter
      (function Some r -> Stats.Acc.add_int acc r | None -> ())
      results;
    Stats.Acc.mean acc
  in
  let table =
    Table.create
      [ "n"; "SDG (50% cov)"; "PDG (50% cov)"; "SDGR (complete)"; "PDGR (complete)"; "static d-out (ecc)" ]
  in
  let series = Hashtbl.create 8 in
  let push key pt =
    Hashtbl.replace series key (pt :: Option.value ~default:[] (Hashtbl.find_opt series key))
  in
  List.iter
    (fun n ->
      let sdg = half_coverage_rounds Models.SDG ~n ~d:12 in
      let pdg = half_coverage_rounds Models.PDG ~n ~d:16 in
      let sdgr = completion_rounds Models.SDGR ~n ~d:21 in
      let pdgr = completion_rounds Models.PDGR ~n ~d:35 in
      let static = static_rounds ~n ~d:4 in
      Table.add_row table
        [
          string_of_int n;
          Table.fmt_float ~digits:1 sdg;
          Table.fmt_float ~digits:1 pdg;
          Table.fmt_float ~digits:1 sdgr;
          Table.fmt_float ~digits:1 pdgr;
          Table.fmt_float ~digits:1 static;
        ];
      let fn = float_of_int n in
      push "SDG" (fn, sdg);
      push "PDG" (fn, pdg);
      push "SDGR" (fn, sdgr);
      push "PDGR" (fn, pdgr);
      push "static" (fn, static))
    ns;
  let get key = Array.of_list (List.rev (Hashtbl.find series key)) in
  let fig =
    Churnet_util.Asciiplot.plot ~logx:true ~title:"F1: flooding rounds vs n"
      ~xlabel:"n" ~ylabel:"rounds"
      [
        { label = "SDG 50% coverage (d=12)"; points = get "SDG" };
        { label = "PDG 50% coverage (d=16)"; points = get "PDG" };
        { label = "SDGR completion (d=21)"; points = get "SDGR" };
        { label = "PDGR completion (d=35)"; points = get "PDGR" };
        { label = "static d-out eccentricity (d=4)"; points = get "static" };
      ]
  in
  let sdgr_fit = Stats.log_fit (get "SDGR") in
  let largest_n = float_of_int (List.nth ns (List.length ns - 1)) in
  let sdgr_points = get "SDGR" in
  let rounds_at_largest = snd sdgr_points.(Array.length sdgr_points - 1) in
  Report.make ~id:"F1" ~title:"Flooding time scales logarithmically in n" ~tables:[ table ]
    ~figures:[ fig ]
    [
      Report.check ~claim:"SDGR completion grows like log n, not n"
        ~expected:"rounds at largest n well below sqrt(n)"
        ~measured:
          (Printf.sprintf "%.1f rounds at n = %.0f (fit %.2f ln n + %.2f)"
             rounds_at_largest largest_n sdgr_fit.slope sdgr_fit.intercept)
        ~holds:(rounds_at_largest < sqrt largest_n);
    ]

(* --- F2: peak coverage vs d for the non-regenerating models. --- *)

let f2 ~seed ~scale =
  let n = Scale.pick scale ~smoke:400 ~standard:2500 ~full:8000 in
  let trials = Scale.pick scale ~smoke:2 ~standard:6 ~full:20 in
  let rng = Prng.create seed in
  let ds = [ 2; 4; 6; 8; 12; 16; 24 ] in
  let budget = int_of_float (6. *. log (float_of_int n)) + 20 in
  let table = Table.create [ "d"; "SDG mean peak cov"; "PDG mean peak cov"; "1 - e^{-d/10}" ] in
  let sdg_series = ref [] and pdg_series = ref [] and law = ref [] in
  List.iter
    (fun d ->
      let mean_cov kind =
        let acc = Stats.Acc.create () in
        let traces =
          Parallel.replicate ~rng ~trials (fun rng ->
              flood_once kind ~rng ~n ~d ~max_rounds:budget)
        in
        Array.iter (fun tr -> Stats.Acc.add acc tr.Flood.peak_coverage) traces;
        Stats.Acc.mean acc
      in
      let sdg = mean_cov Models.SDG and pdg = mean_cov Models.PDG in
      let theory = 1. -. exp (-.(float_of_int d /. 10.)) in
      Table.add_row table
        [
          string_of_int d;
          Table.fmt_pct sdg;
          Table.fmt_pct pdg;
          Table.fmt_pct theory;
        ];
      sdg_series := (float_of_int d, sdg) :: !sdg_series;
      pdg_series := (float_of_int d, pdg) :: !pdg_series;
      law := (float_of_int d, theory) :: !law)
    ds;
  let arr l = Array.of_list (List.rev l) in
  let fig =
    Churnet_util.Asciiplot.plot ~title:"F2: flooding coverage vs d" ~xlabel:"d"
      ~ylabel:"coverage"
      [
        { label = "SDG mean peak coverage"; points = arr !sdg_series };
        { label = "PDG mean peak coverage"; points = arr !pdg_series };
        { label = "1 - e^{-d/10} (paper's shape)"; points = arr !law };
      ]
  in
  let sdg_small = snd (List.nth (List.rev !sdg_series) 0) in
  let sdg_large = snd (List.hd !sdg_series) in
  Report.make ~id:"F2" ~title:"Coverage approaches 1 as 1 - e^{-Omega(d)}" ~tables:[ table ]
    ~figures:[ fig ]
    [
      Report.check ~claim:"coverage is increasing in d and approaches 1"
        ~expected:"coverage at d=24 close to 1 and not below d=2"
        ~measured:(Printf.sprintf "d=2: %.1f%%, d=24: %.1f%%" (100. *. sdg_small) (100. *. sdg_large))
        ~holds:(sdg_large > 0.95 && sdg_large >= sdg_small -. 0.01);
    ]

(* --- F11: asynchronous flooding (Definition 4.2) vs the discretized
   process (Definition 4.3). --- *)

let f11 ~seed ~scale =
  let ns = Scale.pick scale ~smoke:[ 200 ] ~standard:[ 400; 800; 1600 ] ~full:[ 500; 1000; 2000; 4000 ] in
  let trials = Scale.pick scale ~smoke:2 ~standard:4 ~full:10 in
  let d = 35 in
  let rng = Prng.create seed in
  let table =
    Table.create [ "n"; "async mean time"; "async completed"; "discretized mean rounds"; "discretized completed" ]
  in
  let async_pts = ref [] in
  let dominated = ref true in
  List.iter
    (fun n ->
      let async_acc = Stats.Acc.create () and disc_acc = Stats.Acc.create () in
      let async_done = ref 0 and disc_done = ref 0 in
      (* Each trial consumes two splits (async model, then discretized
         model), in the same order as the historical serial loop. *)
      let pairs =
        Array.init trials (fun _ ->
            let ra = Prng.split rng in
            let rd = Prng.split rng in
            (ra, rd))
      in
      let results =
        Parallel.map
          (fun (ra, rd) ->
            let m = Poisson_model.create ~rng:ra ~n ~d ~regenerate:true () in
            Poisson_model.warm_up m;
            let r = Flood.Async.run m in
            let m2 = Poisson_model.create ~rng:rd ~n ~d ~regenerate:true () in
            Poisson_model.warm_up m2;
            let tr = Flood.run_poisson_discretized m2 in
            (r, tr))
          pairs
      in
      Array.iter
        (fun ((r : Flood.Async.result), tr) ->
          if r.completed then begin
            incr async_done;
            match r.completion_time with
            | Some t -> Stats.Acc.add async_acc t
            | None -> ()
          end;
          if tr.Flood.completed then begin
            incr disc_done;
            match tr.Flood.completion_round with
            | Some r -> Stats.Acc.add_int disc_acc r
            | None -> ()
          end)
        results;
      let am = Stats.Acc.mean async_acc and dm = Stats.Acc.mean disc_acc in
      if not (am <= dm +. 2.) then dominated := false;
      Table.add_row table
        [
          string_of_int n;
          Table.fmt_float ~digits:1 am;
          Printf.sprintf "%d/%d" !async_done trials;
          Table.fmt_float ~digits:1 dm;
          Printf.sprintf "%d/%d" !disc_done trials;
        ];
      async_pts := (float_of_int n, am) :: !async_pts)
    ns;
  let fit = Stats.log_fit (Array.of_list (List.rev !async_pts)) in
  Report.make ~id:"F11"
    ~title:"Asynchronous flooding dominates the discretized process (Defs 4.2 vs 4.3)"
    ~tables:[ table ]
    [
      Report.check
        ~claim:"the discretized process is a worst case: async completion is never slower"
        ~expected:"async mean completion time <= discretized mean rounds (+ slack)"
        ~measured:(if !dominated then "async <= discretized at every n" else "violated at some n")
        ~holds:!dominated;
      (let n_max = List.nth ns (List.length ns - 1) in
       let time_at_max =
         match List.rev !async_pts with [] -> nan | pts -> snd (List.nth pts (List.length pts - 1))
       in
       let budget = (4. *. log (float_of_int n_max)) +. 10. in
       Report.check ~claim:"async flooding time is O(log n)"
         ~expected:(Printf.sprintf "time at n = %d at most 4 ln n + 10 = %.1f" n_max budget)
         ~measured:
           (Printf.sprintf "%.1f at n = %d; fit %.2f ln n + %.2f" time_at_max n_max
              fit.slope fit.intercept)
         ~holds:(time_at_max <= budget));
    ]
