(** Poisson-churn statistics (Lemmas 4.4/4.7/4.8) and age demographics.
    Each entry point matches the {!Registry} run signature: it consumes a
    seed and a scale and returns the experiment's {!Report.t}. *)

val e12 : seed:int -> scale:Scale.t -> Report.t

val f9 : seed:int -> scale:Scale.t -> Report.t
